// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls out.
// Each benchmark regenerates its experiment's rows/series and reports them
// as benchmark metrics; EXPERIMENTS.md records paper-vs-measured.
//
// Run:
//
//	go test -bench=. -benchmem
//
// The campaigns sample the configuration space so the full suite stays in
// minutes; the cmd/ tools run the same experiments exhaustively.
package repro

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/bist"
	"repro/internal/bitstream"
	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/fpga"
	"repro/internal/payload"
	"repro/internal/place"
	"repro/internal/scrub"
	"repro/internal/seu"
	"repro/internal/tmr"
)

// benchCfg is the shared experiment scale: catalog designs on the Small
// geometry with sampled injection.
func benchCfg() core.Config {
	return core.Config{Geom: device.Small(), Seed: 1, Sample: 0.02}
}

// --- Table I: SEU sensitivity per design ------------------------------------

func BenchmarkTableI(b *testing.B) {
	for _, spec := range designs.Catalog() {
		spec := spec
		if !hasTable(spec, 1) {
			continue
		}
		b.Run(sanitize(spec.Name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := core.Sensitivity(benchCfg(), spec.Name, false)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.SlicesUsed), "slices")
				b.ReportMetric(100*rep.Sensitivity(), "sens%")
				b.ReportMetric(100*rep.NormalizedSensitivity(), "norm%")
				b.ReportMetric(float64(rep.Injections), "injections")
			}
		})
	}
}

// --- Table II: error persistence per design ---------------------------------

func BenchmarkTableII(b *testing.B) {
	for _, spec := range designs.Catalog() {
		spec := spec
		if !hasTable(spec, 2) {
			continue
		}
		b.Run(sanitize(spec.Name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := core.Sensitivity(benchCfg(), spec.Name, true)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*rep.Sensitivity(), "sens%")
				b.ReportMetric(100*rep.PersistenceRatio(), "persist%")
			}
		})
	}
}

// --- Fig. 4: on-orbit scan cycle (180 ms for three XQVR1000s) ----------------

func BenchmarkFig4_ScrubCycle(b *testing.B) {
	g := device.XQVR1000()
	var ports []*fpga.Port
	var goldens []*bitstream.Memory
	for i := 0; i < 3; i++ {
		f := fpga.New(g)
		bs := fpga.NewConfigBuilder(g).FullBitstream()
		if err := f.FullConfigure(bs); err != nil {
			b.Fatal(err)
		}
		ports = append(ports, fpga.NewPort(f))
		goldens = append(goldens, f.ConfigMemory().Clone())
	}
	mgr, err := scrub.New(ports, goldens, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.ScanOnce(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(mgr.ScanCycleTime().Milliseconds()), "virtual-ms/scan")
	b.ReportMetric(float64(g.FrameBytes()), "frame-bytes")
}

// --- Fig. 5: wire BIST via repeated partial reconfiguration ------------------

func BenchmarkFig5_WireBIST(b *testing.B) {
	g := device.Tiny()
	for i := 0; i < b.N; i++ {
		f := fpga.New(g)
		if err := f.FullConfigure(fpga.NewConfigBuilder(g).FullBitstream()); err != nil {
			b.Fatal(err)
		}
		port := fpga.NewPort(f)
		f.SetStuck(device.Segment{R: 3, C: 4, S: 6}, true)
		rep, err := bist.WireTest(f, port)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Faults) == 0 {
			b.Fatal("injected fault not isolated")
		}
		b.ReportMetric(float64(rep.Reconfigurations), "reconfigs")
		b.ReportMetric(float64(rep.Readbacks), "readbacks")
		b.ReportMetric(float64(rep.WiresTested), "wires")
	}
}

// --- Fig. 7: persistent error trace ------------------------------------------

func BenchmarkFig7_PersistentTrace(b *testing.B) {
	cfg := benchCfg()
	cfg.Sample = 0.05
	for i := 0; i < b.N; i++ {
		tr, _, err := core.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		diverged := 0
		for _, pt := range tr[40:] {
			if !pt.Match {
				diverged++
			}
		}
		b.ReportMetric(float64(diverged)/float64(len(tr)-40)*100, "post-repair-diverged%")
	}
}

// --- Fig. 8: the injection loop (214 us/bit; 5.8M bits in ~20 min) -----------

func BenchmarkFig8_InjectionLoop(b *testing.B) {
	spec, err := designs.ByName("MULT 12")
	if err != nil {
		b.Fatal(err)
	}
	p, err := place.Place(spec.Build(), device.Small())
	if err != nil {
		b.Fatal(err)
	}
	// Sequential vs sharded vs triage-off vs fastsim-off throughput on the
	// same campaign: the reports are identical by construction, only
	// wall-us/bit moves.
	type variant struct {
		name    string
		workers int
		triage  bool
		fastsim bool
	}
	variants := []variant{
		{"workers-1", 1, true, true},
		{"workers-1-triage-off", 1, false, true},
		{"workers-1-fastsim-off", 1, true, false},
	}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		variants = append(variants,
			variant{fmt.Sprintf("workers-%d", n), n, true, true},
			variant{fmt.Sprintf("workers-%d-triage-off", n), n, false, true},
			variant{fmt.Sprintf("workers-%d-fastsim-off", n), n, true, false})
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			bd, err := board.New(p, 1)
			if err != nil {
				b.Fatal(err)
			}
			opts := seu.DefaultOptions()
			opts.ClassifyPersistence = false
			opts.Seed = 1
			opts.Workers = v.workers
			opts.MaxBits = 2000
			opts.Sample = 1
			opts.Triage = v.triage
			opts.FastSim = v.fastsim
			b.ResetTimer()
			var injections, skipped, cyclesRun, cyclesSkipped int64
			for i := 0; i < b.N; i++ {
				rep, err := seu.Run(bd, opts)
				if err != nil {
					b.Fatal(err)
				}
				injections += rep.Injections
				skipped += rep.TriageSkipped
				cyclesRun += rep.CyclesSimulated
				cyclesSkipped += rep.CyclesSkipped
			}
			b.StopTimer()
			perInj := b.Elapsed() / time.Duration(maxi64(1, injections))
			b.ReportMetric(float64(perInj.Nanoseconds())/1000, "wall-us/bit")
			b.ReportMetric(float64(skipped)/float64(maxi64(1, injections))*100, "triage-skipped%")
			b.ReportMetric(float64(cyclesRun)/float64(maxi64(1, int64(b.N))), "cycles-simulated")
			b.ReportMetric(float64(cyclesSkipped)/float64(maxi64(1, cyclesRun+cyclesSkipped))*100, "early-exit-skipped%")
			b.ReportMetric(214, "virtual-us/bit")
			full := time.Duration(device.XQVR1000().TotalBits()) * board.InjectLoopTime
			b.ReportMetric(full.Minutes(), "virtual-min/5.8Mbit-sweep")
		})
	}
}

// --- Figs. 11-12: beam validation (97.6 % correlation) ------------------------

func BenchmarkFig12_BeamCorrelation(b *testing.B) {
	cfg := core.Config{Geom: device.Tiny(), Seed: 11, Sample: 1}
	for i := 0; i < b.N; i++ {
		beamRep, _, err := core.BeamValidation(cfg, "MULT 12", 300)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*beamRep.Correlation(), "correlation%")
		b.ReportMetric(float64(beamRep.Strikes), "strikes")
		b.ReportMetric(float64(beamRep.OutputErrors), "output-errors")
	}
}

// --- Figs. 13-14: half-latch mitigation (RadDRC, ~100x) -----------------------

func BenchmarkFig14_HalfLatchRadDRC(b *testing.B) {
	cfg := core.Config{Geom: device.Tiny(), Seed: 1, Sample: 1}
	for i := 0; i < b.N; i++ {
		rep, err := core.HalfLatchStudy(cfg, "LFSR 18", 150)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rep.Census.UsedSites)), "used-halflatches")
		b.ReportMetric(float64(rep.ErrorsBefore), "errors-before")
		b.ReportMetric(float64(rep.ErrorsAfter), "errors-after")
		b.ReportMetric(rep.ResistanceRatio, "resistance-x")
	}
}

// --- §I rates: orbit availability ---------------------------------------------

func BenchmarkOrbit_Availability(b *testing.B) {
	for _, mode := range []struct {
		name   string
		flares []payload.FlareWindow
	}{
		{"Quiet", nil},
		{"Flare", []payload.FlareWindow{{Start: 0, End: 100 * time.Hour}}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := core.Mission(core.Config{Geom: device.Tiny(), Seed: 5, Sample: 1},
					"MULT 12", 100*time.Hour, mode.flares)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Upsets), "upsets/100h")
				b.ReportMetric(rep.Availability*1e6, "availability-ppm")
				b.ReportMetric(float64(rep.MeanDetectionLatency.Milliseconds()), "latency-ms")
			}
		})
	}
}

// --- Ablations -----------------------------------------------------------------

// BenchmarkAblation_ScrubReadbackSpeed: detection latency is bounded by the
// scan period, which scales with the per-frame readback time — the design
// trade the paper's 180 ms cycle embodies.
func BenchmarkAblation_ScrubReadbackSpeed(b *testing.B) {
	for _, speedup := range []int{1, 4} {
		speedup := speedup
		b.Run(fmt.Sprintf("readback-x%d", speedup), func(b *testing.B) {
			g := device.Small()
			f := fpga.New(g)
			if err := f.FullConfigure(fpga.NewConfigBuilder(g).FullBitstream()); err != nil {
				b.Fatal(err)
			}
			port := fpga.NewPort(f)
			port.FrameReadTime /= time.Duration(speedup)
			mgr, err := scrub.New([]*fpga.Port{port}, []*bitstream.Memory{f.ConfigMemory().Clone()}, nil)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := mgr.ScanOnce(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(mgr.ScanCycleTime().Microseconds()), "virtual-us/scan")
		})
	}
}

// BenchmarkAblation_TMR: full TMR without placement-domain isolation — the
// voters mask single-copy upsets, but routing shared between copies (long
// lines) limits the gain, the classic domain-crossing caveat.
func BenchmarkAblation_TMR(b *testing.B) {
	c := designs.LFSRCluster("tmr-ablation", 2, 2, 8)
	trip, err := tmr.Triplicate(c)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, circuitIdx int) {
		for i := 0; i < b.N; i++ {
			src := c
			if circuitIdx == 1 {
				src = trip
			}
			p, err := place.Place(src, device.Small())
			if err != nil {
				b.Fatal(err)
			}
			bd, err := board.New(p, 5)
			if err != nil {
				b.Fatal(err)
			}
			opts := seu.DefaultOptions()
			opts.Sample = 0.1
			opts.Seed = 5
			opts.ClassifyPersistence = false
			rep, err := seu.Run(bd, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*rep.Sensitivity(), "sens%")
			b.ReportMetric(float64(rep.SlicesUsed), "slices")
		}
	}
	b.Run("Plain", func(b *testing.B) { run(b, 0) })
	b.Run("TMR", func(b *testing.B) { run(b, 1) })
}

// BenchmarkAblation_SamplingAccuracy: sampled campaigns estimate the
// exhaustive sensitivity; this reports the estimate at two rates so drift
// is visible in CI history.
func BenchmarkAblation_SamplingAccuracy(b *testing.B) {
	for _, sample := range []float64{0.05, 0.5} {
		sample := sample
		b.Run(fmt.Sprintf("sample-%.2f", sample), func(b *testing.B) {
			cfg := core.Config{Geom: device.Tiny(), Seed: 9, Sample: sample}
			for i := 0; i < b.N; i++ {
				rep, err := core.Sensitivity(cfg, "MULT 12", false)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*rep.Sensitivity(), "sens%")
			}
		})
	}
}

// BenchmarkAblation_PlacementDensity: route-through cost of packing density
// (the MaxSitesPerCLB knob) — the fabric-level trade DESIGN.md documents.
func BenchmarkAblation_PlacementDensity(b *testing.B) {
	spec, err := designs.ByName("MULT 36")
	if err != nil {
		b.Fatal(err)
	}
	for _, ms := range []int{1, 2} {
		ms := ms
		b.Run(fmt.Sprintf("sites-per-clb-%d", ms), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := place.PlaceOpt(spec.Build(), device.Small(), place.Options{MaxSitesPerCLB: ms})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(p.RouteThroughs), "route-throughs")
				b.ReportMetric(float64(p.LongLinesUsed), "long-lines")
				b.ReportMetric(float64(p.SlicesUsed()), "slices")
			}
		})
	}
}

// BenchmarkAblation_RepairGranularity: frame repair vs full reconfiguration —
// the reason partial reconfiguration matters (§IV-B).
func BenchmarkAblation_RepairGranularity(b *testing.B) {
	frame := fpga.DefaultFrameWriteTime
	full := fpga.DefaultFullConfigTime
	b.ReportMetric(float64(frame.Microseconds()), "frame-repair-us")
	b.ReportMetric(float64(full.Microseconds()), "full-reconfig-us")
	b.ReportMetric(float64(full)/float64(frame), "ratio")
}

// --- helpers -------------------------------------------------------------------

func hasTable(spec designs.Spec, t int) bool {
	for _, x := range spec.Tables {
		if x == t {
			return true
		}
	}
	return false
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch r {
		case ' ', '/':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
