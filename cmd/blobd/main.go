// Command blobd is a standalone content-addressed checkpoint blob server —
// the S3-stand-in for fabric deployments that want checkpoint traffic off
// the coordinator:
//
//	blobd -addr 127.0.0.1:8500 -dir /var/lib/blobd
//
// Keys are sha256 content hashes, so puts are idempotent and gets are
// end-to-end verifiable; a client that receives corrupted bytes detects it
// without trusting this server. With no -dir the store is in-memory and
// vanishes on exit (fine for tests, wrong for durable campaigns).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fabric"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8500", "listen address (port 0 picks a free port)")
		dir      = flag.String("dir", "", "blob directory (empty = in-memory store)")
		addrFile = flag.String("addr-file", "", "write the bound address here once listening (for scripts)")
	)
	flag.Parse()
	if err := run(*addr, *dir, *addrFile); err != nil {
		fmt.Fprintln(os.Stderr, "blobd:", err)
		os.Exit(1)
	}
}

func run(addr, dir, addrFile string) error {
	var store fabric.BlobStore
	var err error
	if dir == "" {
		store = fabric.NewMemStore()
	} else if store, err = fabric.NewDirStore(dir); err != nil {
		return err
	}

	mux := http.NewServeMux()
	mux.Handle("/api/v1/blobs", fabric.BlobHandler(store))
	mux.Handle("/api/v1/blobs/", fabric.BlobHandler(store))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}
	backing := "mem"
	if dir != "" {
		backing = dir
	}
	fmt.Printf("blobd listening on %s (store %s)\n", bound, backing)

	srv := &http.Server{Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Println("blobd: stopped")
	return nil
}
