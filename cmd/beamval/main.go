// Command beamval reproduces the paper's accelerator validation (§III-B,
// Figs. 11-12): it builds a design's exhaustive SEU sensitivity map on the
// simulated SLAAC-1V, then runs the design in a simulated proton beam tuned
// to ~1 upset per 0.5 s observation, and reports the correlation between
// beam-induced output errors and the simulator's predictions. The paper
// measured 97.6 % agreement.
//
// Example:
//
//	beamval -design "LFSR 18" -obs 500 -geom tiny
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/device"
)

func main() {
	var (
		design = flag.String("design", "LFSR 18", "catalogued design under test")
		obs    = flag.Int("obs", 400, "number of 0.5 s beam observations")
		geom   = flag.String("geom", "tiny", "device geometry: tiny|small|xqvr1000")
		sample = flag.Float64("sample", 1.0, "sensitivity-map sampling (1 = exhaustive, as validation requires)")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	g := map[string]device.Geometry{
		"tiny": device.Tiny(), "small": device.Small(), "xqvr1000": device.XQVR1000(),
	}[*geom]
	if g.Rows == 0 {
		fmt.Fprintf(os.Stderr, "unknown geometry %q\n", *geom)
		os.Exit(2)
	}
	cfg := core.Config{Geom: g, Seed: *seed, Sample: *sample}

	fmt.Printf("building sensitivity map for %q on %s ...\n", *design, g)
	beamRep, simRep, err := core.BeamValidation(cfg, *design, *obs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "beamval:", err)
		os.Exit(1)
	}
	fmt.Printf("simulator: %s\n", simRep)
	fmt.Printf("%s\n", beamRep)
	fmt.Printf("correlation: %.1f%%   (paper: 97.6%%)\n", 100*beamRep.Correlation())
}
