// Command raddrc runs the half-latch study of §III-C: a census of the
// half-latch keepers a design depends on, the RadDRC mitigation pass
// (rewriting hidden-keeper constants into scrubbable configuration
// constants), and a before/after beam comparison (the paper measured ~100x
// better failure resistance for mitigated designs).
//
// Example:
//
//	raddrc -design "LFSR 18" -obs 300
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/seu"
)

func main() {
	var (
		design  = flag.String("design", "LFSR 18", "catalogued design")
		obs     = flag.Int("obs", 200, "beam observations per run")
		geom    = flag.String("geom", "tiny", "device geometry: tiny|small|xqvr1000")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "parallelism for any injection campaigns in the flow (0 = GOMAXPROCS)")
		triage  = flag.Bool("triage", true, "skip provably-inert configuration bits in injection campaigns; results are identical either way")
		fastsim = flag.Bool("fastsim", true, "use the activity-driven settling kernel and lock-step convergence early exit; results are identical either way")
		kernel  = flag.String("kernel", "auto", "settling kernel for injection campaigns: auto (follow -fastsim), event, or sweep; results are identical at any choice")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	g := map[string]device.Geometry{
		"tiny": device.Tiny(), "small": device.Small(), "xqvr1000": device.XQVR1000(),
	}[*geom]
	if g.Rows == 0 {
		fmt.Fprintf(os.Stderr, "unknown geometry %q\n", *geom)
		os.Exit(2)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "raddrc:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "raddrc:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "raddrc:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "raddrc:", err)
			}
		}()
	}
	kern, err := seu.ParseKernel(*kernel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "raddrc:", err)
		os.Exit(2)
	}
	cfg := core.Config{Geom: g, Seed: *seed, Sample: 1, Workers: *workers, NoTriage: !*triage, NoFastSim: !*fastsim, Kernel: kern}
	rep, err := core.HalfLatchStudy(cfg, *design, *obs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "raddrc:", err)
		os.Exit(1)
	}
	fmt.Printf("design %q on %s\n", *design, g)
	fmt.Printf("  %s\n", rep.Census)
	fmt.Printf("  RadDRC mitigated %d half-latch constants\n", rep.Mitigated)
	fmt.Printf("  half-latch beam: %d output errors before, %d after\n", rep.ErrorsBefore, rep.ErrorsAfter)
	if rep.ErrorsAfter == 0 {
		fmt.Printf("  resistance improvement: >= %.0fx (no failures after mitigation; paper: ~100x)\n", rep.ResistanceRatio)
	} else {
		fmt.Printf("  resistance improvement: %.1fx (paper: ~100x)\n", rep.ResistanceRatio)
	}
}
