// Command raddrc runs the half-latch study of §III-C: a census of the
// half-latch keepers a design depends on, the RadDRC mitigation pass
// (rewriting hidden-keeper constants into scrubbable configuration
// constants), and a before/after beam comparison (the paper measured ~100x
// better failure resistance for mitigated designs).
//
// Example:
//
//	raddrc -design "LFSR 18" -obs 300
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
)

func main() {
	var (
		obs     = flag.Int("obs", 200, "beam observations per run")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	cf := core.RegisterCampaignFlags(flag.CommandLine, core.CampaignSpec{
		Design: "LFSR 18", Geom: "tiny", Seed: 1, Sample: 1,
	})
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "raddrc:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "raddrc:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "raddrc:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "raddrc:", err)
			}
		}()
	}
	cfg, err := cf.Resolve()
	if err != nil {
		fmt.Fprintln(os.Stderr, "raddrc:", err)
		os.Exit(2)
	}
	rep, err := core.HalfLatchStudy(cfg, cf.Spec.Design, *obs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "raddrc:", err)
		os.Exit(1)
	}
	fmt.Printf("design %q on %s\n", cf.Spec.Design, cfg.Geom)
	fmt.Printf("  %s\n", rep.Census)
	fmt.Printf("  RadDRC mitigated %d half-latch constants\n", rep.Mitigated)
	fmt.Printf("  half-latch beam: %d output errors before, %d after\n", rep.ErrorsBefore, rep.ErrorsAfter)
	if rep.ErrorsAfter == 0 {
		fmt.Printf("  resistance improvement: >= %.0fx (no failures after mitigation; paper: ~100x)\n", rep.ResistanceRatio)
	} else {
		fmt.Printf("  resistance improvement: %.1fx (paper: ~100x)\n", rep.ResistanceRatio)
	}
}
