package main

import (
	"bytes"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
)

// TestSubmitStreamVerifyGolden is the CI smoke loop in-process: boot the
// daemon on a random port, submit a catalog-design injection job through the
// client code, follow the NDJSON stream to completion, and require the
// served report to be byte-identical to the pinned `seusim -json` golden
// corpus for the same campaign.
func TestSubmitStreamVerifyGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden campaign in -short mode")
	}
	sched, err := campaign.New(campaign.Config{Dir: t.TempDir(), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Stop(time.Minute)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: campaign.Handler(sched)}
	go srv.Serve(ln)
	defer srv.Close()
	a := api{server: "http://" + ln.Addr().String()}

	if text, err := a.text("/healthz"); err != nil || strings.TrimSpace(text) != "ok" {
		t.Fatalf("healthz: %q, %v", text, err)
	}

	// The golden corpus campaign: cmd/seusim/testdata pins `seusim -json
	// -design "LFSR 72"` at small geometry, seed 1, 1% sample.
	spec := core.CampaignSpec{Design: "LFSR 72", Geom: "small", Seed: 1, Sample: 0.01, Workers: 1}
	stat, err := a.submit(campaign.JobSpec{Kind: campaign.KindSEU, SEU: &spec})
	if err != nil {
		t.Fatal(err)
	}

	events := 0
	last, err := a.stream(stat.ID, func(ev campaign.Event) bool {
		events++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.State != campaign.StateDone || !last.Final {
		t.Fatalf("stream ended %+v, want final done", last)
	}
	if events < 2 {
		t.Fatalf("saw %d events, want streamed progress", events)
	}

	got, err := a.report(stat.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("..", "seusim", "testdata", "design-LFSR_72.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("campaignd report (%d bytes) differs from seusim golden corpus (%d bytes)", len(got), len(want))
	}

	metrics, err := a.text("/metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{
		`campaignd_jobs{state="done"} 1`,
		"campaignd_injections_total",
		"campaignd_checkpoint_age_seconds",
	} {
		if !strings.Contains(metrics, m) {
			t.Errorf("metrics missing %q", m)
		}
	}
}
