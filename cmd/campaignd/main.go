// Command campaignd is the campaign service daemon and its control client.
//
// Serve mode runs the checkpointed job scheduler behind an HTTP API:
//
//	campaignd serve -addr 127.0.0.1:8433 -state /var/lib/campaignd -workers 4
//
// Every other subcommand is the campaignctl client, speaking to a running
// daemon — enough for CI smoke tests and shell scripting:
//
//	campaignd submit -server http://127.0.0.1:8433 -design "LFSR 72" -sample 0.01
//	campaignd wait   -server http://127.0.0.1:8433 -job j0123456789ab
//	campaignd report -server http://127.0.0.1:8433 -job j0123456789ab
//	campaignd cancel -server http://127.0.0.1:8433 -job j0123456789ab
//	campaignd status -server ... [-job ID] | stream -job ID | metrics | health
//
// A SIGINT/SIGTERM to the daemon drains gracefully: running chunks finish
// and checkpoint, the active job re-queues, and the next daemon started on
// the same -state directory resumes it with a byte-identical final report.
//
// With -fabric=coordinator the daemon also exposes the distributed fabric
// API (lease/complete/heartbeat) and an embedded blob server, and SEU sweep
// chunks are executed by campaignworker processes instead of the local pool:
//
//	campaignd serve -addr 127.0.0.1:8433 -state /var/lib/campaignd -fabric coordinator
//	campaignworker -coordinator http://127.0.0.1:8433
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "serve":
		err = runServe(args)
	case "submit":
		err = runSubmit(args)
	case "status":
		err = runStatus(args)
	case "stream":
		err = runStream(args)
	case "wait":
		err = runWait(args)
	case "cancel":
		err = runCancel(args)
	case "report":
		err = runReport(args)
	case "metrics":
		err = runMetrics(args)
	case "health":
		err = runHealth(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "campaignd: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: campaignd <command> [flags]

daemon:
  serve    run the campaign scheduler behind an HTTP API

client (campaignctl):
  submit   submit a job (flags or -spec JSON), print its status
  status   print one job's status (-job) or the full job list
  stream   follow a job's NDJSON progress events
  wait     follow a job until terminal; exit non-zero unless done
  cancel   cancel a job
  report   print a done job's final report (exact stored bytes)
  metrics  dump the daemon's Prometheus metrics
  health   check daemon liveness

Run 'campaignd <command> -h' for command flags.`)
}
