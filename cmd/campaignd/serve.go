package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fabric"
)

// buildBlobStore resolves a -blob flag value into a store. "dir" (or "")
// keeps checkpoints in files under the state directory, "mem" holds them in
// memory (they die with the daemon — resume relies on recompute), and an
// http(s) URL points at a remote blob server (blobd or another campaignd).
func buildBlobStore(spec core.FabricSpec, stateDir string) (fabric.BlobStore, error) {
	switch spec.Blob {
	case "", "dir":
		return fabric.NewDirStore(filepath.Join(stateDir, "blobs"))
	case "mem":
		return fabric.NewMemStore(), nil
	default:
		return fabric.NewHTTPStore(spec.Blob), nil
	}
}

// runServe boots the scheduler and serves the API until SIGINT/SIGTERM.
func runServe(args []string) error {
	fs := flag.NewFlagSet("campaignd serve", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8433", "listen address (port 0 picks a free port)")
		state    = fs.String("state", "campaignd-state", "checkpoint root directory")
		workers  = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		chunks   = fs.Int("chunks", campaign.DefaultChunks, "max checkpoint chunks per SEU sweep")
		grace    = fs.Duration("grace", 30*time.Second, "drain window before in-flight work is cancelled hard")
		addrFile = fs.String("addr-file", "", "write the bound address here once listening (for scripts)")
	)
	fspec := core.RegisterFabricFlags(fs, core.FabricSpec{})
	fs.Parse(args)
	if err := fspec.Validate(); err != nil {
		return err
	}

	blobs, err := buildBlobStore(*fspec, *state)
	if err != nil {
		return err
	}
	cfg := campaign.Config{
		Dir: *state, Workers: *workers, Chunks: *chunks, Blobs: blobs,
		Retention: fabric.RetentionPolicy{MaxBlobs: fspec.RetainBlobs, MaxAge: fspec.RetainAge},
	}
	var coord *fabric.Coordinator
	if fspec.Coordinator() {
		coord, err = fabric.NewCoordinator(fabric.CoordConfig{Store: blobs, LeaseTTL: fspec.LeaseTTL})
		if err != nil {
			return err
		}
		defer coord.Close()
		cfg.Coordinator = coord
	}
	sched, err := campaign.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}
	mode := "single-node"
	if coord != nil {
		mode = "fabric coordinator"
	}
	fmt.Printf("campaignd listening on %s (state %s, %s)\n", bound, *state, mode)

	mux := http.NewServeMux()
	if coord != nil {
		// Fabric API plus the embedded blob server workers default to.
		mux.Handle("/api/v1/fabric/", fabric.Handler(coord))
		mux.Handle("/api/v1/blobs", fabric.BlobHandler(blobs))
		mux.Handle("/api/v1/blobs/", fabric.BlobHandler(blobs))
	}
	mux.Handle("/", campaign.Handler(sched))
	srv := &http.Server{Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		sched.Stop(*grace)
		return err
	case <-ctx.Done():
	}
	fmt.Println("campaignd: draining (checkpointing in-flight shards)")
	// Stop the listener first so no new jobs arrive mid-drain, then drain
	// the scheduler: in-flight chunks checkpoint and the active job
	// re-queues for the next daemon on this state directory.
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "campaignd: http shutdown:", err)
	}
	sched.Stop(*grace)
	fmt.Println("campaignd: stopped")
	return nil
}
