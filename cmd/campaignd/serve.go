package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaign"
)

// runServe boots the scheduler and serves the API until SIGINT/SIGTERM.
func runServe(args []string) error {
	fs := flag.NewFlagSet("campaignd serve", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8433", "listen address (port 0 picks a free port)")
		state    = fs.String("state", "campaignd-state", "checkpoint root directory")
		workers  = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		chunks   = fs.Int("chunks", campaign.DefaultChunks, "max checkpoint chunks per SEU sweep")
		grace    = fs.Duration("grace", 30*time.Second, "drain window before in-flight work is cancelled hard")
		addrFile = fs.String("addr-file", "", "write the bound address here once listening (for scripts)")
	)
	fs.Parse(args)

	sched, err := campaign.New(campaign.Config{Dir: *state, Workers: *workers, Chunks: *chunks})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("campaignd listening on %s (state %s)\n", bound, *state)

	srv := &http.Server{Handler: campaign.Handler(sched)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		sched.Stop(*grace)
		return err
	case <-ctx.Done():
	}
	fmt.Println("campaignd: draining (checkpointing in-flight shards)")
	// Stop the listener first so no new jobs arrive mid-drain, then drain
	// the scheduler: in-flight chunks checkpoint and the active job
	// re-queues for the next daemon on this state directory.
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "campaignd: http shutdown:", err)
	}
	sched.Stop(*grace)
	fmt.Println("campaignd: stopped")
	return nil
}
