package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
)

// api is a minimal client for the campaignd HTTP API.
type api struct{ server string }

func (a api) url(path string) string { return strings.TrimRight(a.server, "/") + path }

func (a api) decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, apiErr.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}
	if v == nil {
		return nil
	}
	return json.Unmarshal(body, v)
}

func (a api) submit(spec campaign.JobSpec) (*campaign.Status, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(a.url("/api/v1/jobs"), "application/json", bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	var stat campaign.Status
	if err := a.decode(resp, &stat); err != nil {
		return nil, err
	}
	return &stat, nil
}

func (a api) status(id string) (*campaign.Status, error) {
	resp, err := http.Get(a.url("/api/v1/jobs/" + id))
	if err != nil {
		return nil, err
	}
	var stat campaign.Status
	if err := a.decode(resp, &stat); err != nil {
		return nil, err
	}
	return &stat, nil
}

func (a api) list() ([]campaign.Status, error) {
	resp, err := http.Get(a.url("/api/v1/jobs"))
	if err != nil {
		return nil, err
	}
	var out []campaign.Status
	if err := a.decode(resp, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func (a api) cancel(id string) (*campaign.Status, error) {
	resp, err := http.Post(a.url("/api/v1/jobs/"+id+"/cancel"), "application/json", nil)
	if err != nil {
		return nil, err
	}
	var stat campaign.Status
	if err := a.decode(resp, &stat); err != nil {
		return nil, err
	}
	return &stat, nil
}

func (a api) report(id string) ([]byte, error) {
	resp, err := http.Get(a.url("/api/v1/jobs/" + id + "/report"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return body, nil
}

// stream follows a job's NDJSON events, calling fn per event until fn
// returns false, the stream ends, or an event is final. Returns the last
// event seen.
func (a api) stream(id string, fn func(campaign.Event) bool) (campaign.Event, error) {
	var last campaign.Event
	resp, err := http.Get(a.url("/api/v1/jobs/" + id + "/stream"))
	if err != nil {
		return last, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return last, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev campaign.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return last, fmt.Errorf("bad stream line %q: %w", sc.Text(), err)
		}
		last = ev
		if !fn(ev) || ev.Final {
			return last, nil
		}
	}
	return last, sc.Err()
}

func (a api) text(path string) (string, error) {
	resp, err := http.Get(a.url(path))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return string(body), nil
}

func serverFlag(fs *flag.FlagSet) *string {
	return fs.String("server", "http://127.0.0.1:8433", "campaignd base URL")
}

func jobFlag(fs *flag.FlagSet) *string {
	return fs.String("job", "", "job ID")
}

func needJob(job string) error {
	if job == "" {
		return fmt.Errorf("-job is required")
	}
	return nil
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// runSubmit submits a job. The SEU path reuses the shared campaign flag set
// (same defaults and spellings as seusim); arbitrary jobs go through -spec.
func runSubmit(args []string) error {
	fs := flag.NewFlagSet("campaignd submit", flag.ExitOnError)
	server := serverFlag(fs)
	specFile := fs.String("spec", "", "submit this JobSpec JSON file instead of building one from flags (- for stdin)")
	cf := core.RegisterCampaignFlags(fs, core.CampaignSpec{Geom: "small", Seed: 1, Sample: 0.01, Workers: 1})
	wait := fs.Bool("wait", false, "follow the job and exit when it is terminal")
	fs.Parse(args)

	var spec campaign.JobSpec
	if *specFile != "" {
		var b []byte
		var err error
		if *specFile == "-" {
			b, err = io.ReadAll(os.Stdin)
		} else {
			b, err = os.ReadFile(*specFile)
		}
		if err != nil {
			return err
		}
		if err := json.Unmarshal(b, &spec); err != nil {
			return fmt.Errorf("parsing %s: %w", *specFile, err)
		}
	} else {
		if cf.Spec.Design == "" {
			return fmt.Errorf("either -design or -spec is required")
		}
		seuSpec := cf.ResolveSpec()
		spec = campaign.JobSpec{Kind: campaign.KindSEU, SEU: &seuSpec}
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	a := api{server: *server}
	stat, err := a.submit(spec)
	if err != nil {
		return err
	}
	if !*wait {
		return printJSON(stat)
	}
	return followJob(a, stat.ID)
}

func runStatus(args []string) error {
	fs := flag.NewFlagSet("campaignd status", flag.ExitOnError)
	server := serverFlag(fs)
	job := jobFlag(fs)
	fs.Parse(args)
	a := api{server: *server}
	if *job == "" {
		list, err := a.list()
		if err != nil {
			return err
		}
		return printJSON(list)
	}
	stat, err := a.status(*job)
	if err != nil {
		return err
	}
	return printJSON(stat)
}

func runStream(args []string) error {
	fs := flag.NewFlagSet("campaignd stream", flag.ExitOnError)
	server := serverFlag(fs)
	job := jobFlag(fs)
	fs.Parse(args)
	if err := needJob(*job); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	_, err := api{server: *server}.stream(*job, func(ev campaign.Event) bool {
		enc.Encode(ev)
		return true
	})
	return err
}

func runWait(args []string) error {
	fs := flag.NewFlagSet("campaignd wait", flag.ExitOnError)
	server := serverFlag(fs)
	job := jobFlag(fs)
	fs.Parse(args)
	if err := needJob(*job); err != nil {
		return err
	}
	return followJob(api{server: *server}, *job)
}

// followJob streams progress to stderr until the job is terminal; the exit
// status reflects whether it finished done.
func followJob(a api, id string) error {
	last, err := a.stream(id, func(ev campaign.Event) bool {
		fmt.Fprintf(os.Stderr, "%s %-9s %d/%d chunks  %d injections  %d failures\n",
			ev.Job, ev.State, ev.ChunksDone, ev.ChunksTotal, ev.Injections, ev.Failures)
		return true
	})
	if err != nil {
		return err
	}
	if last.State != campaign.StateDone {
		return fmt.Errorf("job %s finished %s (%s)", id, last.State, last.Error)
	}
	return nil
}

func runCancel(args []string) error {
	fs := flag.NewFlagSet("campaignd cancel", flag.ExitOnError)
	server := serverFlag(fs)
	job := jobFlag(fs)
	fs.Parse(args)
	if err := needJob(*job); err != nil {
		return err
	}
	stat, err := api{server: *server}.cancel(*job)
	if err != nil {
		return err
	}
	return printJSON(stat)
}

func runReport(args []string) error {
	fs := flag.NewFlagSet("campaignd report", flag.ExitOnError)
	server := serverFlag(fs)
	job := jobFlag(fs)
	fs.Parse(args)
	if err := needJob(*job); err != nil {
		return err
	}
	b, err := api{server: *server}.report(*job)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(b)
	return err
}

func runMetrics(args []string) error {
	fs := flag.NewFlagSet("campaignd metrics", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	text, err := api{server: *server}.text("/metrics")
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}

func runHealth(args []string) error {
	fs := flag.NewFlagSet("campaignd health", flag.ExitOnError)
	server := serverFlag(fs)
	fs.Parse(args)
	text, err := api{server: *server}.text("/healthz")
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}
