// Command scrubsim exercises the on-orbit fault detection and correction
// architecture (Fig. 4): single detect/repair demonstrations, scan-cycle
// timing at flight geometry, and full mission availability simulations with
// solar-flare windows.
//
// Examples:
//
//	scrubsim -demo
//	scrubsim -cycle -geom xqvr1000
//	scrubsim -mission 720h -flare 24h:48h
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/payload"
)

func main() {
	var (
		demo    = flag.Bool("demo", false, "inject one artificial SEU and show the detect/repair loop")
		cycle   = flag.Bool("cycle", false, "print the scan-cycle timing for a 3-device board")
		mission = flag.Duration("mission", 0, "run a mission of this duration")
		flares  = flag.String("flare", "", "comma-separated flare windows start:end (e.g. 24h:48h)")
		design  = flag.String("design", "MULT 12", "catalogued design to fly")
		geom    = flag.String("geom", "small", "device geometry: tiny|small|xqvr1000")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	g := map[string]device.Geometry{
		"tiny": device.Tiny(), "small": device.Small(), "xqvr1000": device.XQVR1000(),
	}[*geom]
	if g.Rows == 0 {
		fmt.Fprintf(os.Stderr, "unknown geometry %q\n", *geom)
		os.Exit(2)
	}
	cfg := core.Config{Geom: g, Seed: *seed, Sample: 1}

	switch {
	case *cycle:
		rep, err := core.ScrubDemo(cfg, *design)
		check(err)
		fmt.Printf("board of 3 devices (%s)\n", g)
		fmt.Printf("  frame size:          %d bytes\n", rep.FrameBytes)
		fmt.Printf("  scan cycle:          %v   (paper: ~180 ms for 3 XQVR1000s)\n", rep.ScanCycle)
		fmt.Printf("  single-frame repair: %v\n", rep.RepairTime)
	case *demo:
		rep, err := core.ScrubDemo(cfg, *design)
		check(err)
		fmt.Printf("artificial SEU inserted into device 1; scan results:\n")
		for _, d := range rep.Detections {
			fmt.Printf("  %s\n", d)
		}
		fmt.Printf("scan cycle %v, repair %v per frame\n", rep.ScanCycle, rep.RepairTime)
	case *mission > 0:
		var windows []payload.FlareWindow
		if *flares != "" {
			for _, w := range strings.Split(*flares, ",") {
				parts := strings.SplitN(w, ":", 2)
				if len(parts) != 2 {
					fmt.Fprintf(os.Stderr, "bad flare window %q\n", w)
					os.Exit(2)
				}
				start, err := time.ParseDuration(parts[0])
				check(err)
				end, err := time.ParseDuration(parts[1])
				check(err)
				windows = append(windows, payload.FlareWindow{Start: start, End: end})
			}
		}
		rep, err := core.Mission(cfg, *design, *mission, windows)
		check(err)
		fmt.Println(rep)
		fmt.Printf("  scan cycle %v; expected quiet-rate upsets %.1f (paper: 1.2/h for 9 FPGAs)\n",
			rep.ScanCycle, 1.2*rep.Duration.Hours())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scrubsim:", err)
		os.Exit(1)
	}
}
