// Command crosscheck runs the randomized differential conformance suite:
// seeded random designs swept over the full campaign-configuration lattice
// with byte-identical-report and metamorphic-invariant checking.
//
//	crosscheck -designs 200 -seed 1
//
// exits non-zero on the first conformance violation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/crosscheck"
	"repro/internal/device"
)

func main() {
	var (
		designs  = flag.Int("designs", 200, "number of generated designs to sweep")
		seed     = flag.Int64("seed", 1, "suite seed (designs, sampling, and stimulus all derive from it)")
		geom     = flag.String("geom", "tiny", "device geometry: tiny or small")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "designs checked concurrently")
		verbose  = flag.Bool("v", false, "print one line per design")
	)
	flag.Parse()

	var g device.Geometry
	switch *geom {
	case "tiny":
		g = device.Tiny()
	case "small":
		g = device.Small()
	default:
		fmt.Fprintf(os.Stderr, "crosscheck: unknown geometry %q (tiny|small)\n", *geom)
		os.Exit(2)
	}

	start := time.Now()
	var done, raw int
	var injections, failures, persistent int64
	progress := func(r crosscheck.Result) {
		done++
		if r.Raw {
			raw++
		}
		injections += r.Injections
		failures += r.Failures
		persistent += r.Persistent
		if *verbose {
			fmt.Printf("ok %-12s points=%d injections=%d failures=%d persistent=%d\n",
				r.Design, r.Points, r.Injections, r.Failures, r.Persistent)
		} else if done%10 == 0 {
			fmt.Printf("… %d/%d designs conformant\n", done, *designs)
		}
	}

	// Ctrl-C / SIGTERM stops launching designs and lets in-flight checks
	// finish, so an aborted run still reports what it covered.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := crosscheck.CheckSuiteContext(ctx, g, *designs, *seed, *parallel, progress); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "crosscheck: interrupted after %d/%d designs (all checked designs conformant)\n", done, *designs)
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "crosscheck: CONFORMANCE VIOLATION\n%v\n", err)
		os.Exit(1)
	}
	pts := len(crosscheck.Lattice())
	fmt.Printf("PASS: %d designs (%d raw-fabric) × %d lattice points on %s, %d injections (%d sensitive, %d persistent) in %v\n",
		done, raw, pts, g, injections*int64(pts+1), failures, persistent, time.Since(start).Round(time.Millisecond))
}
