// Command seusim runs the paper's SEU fault-injection experiments: per-design
// sensitivity campaigns (Table I), persistence classification (Table II), and
// the persistent-error trace of Fig. 7.
//
// Examples:
//
//	seusim -table 1 -sample 0.05
//	seusim -table 2
//	seusim -design "LFSR 72" -sample 0.1
//	seusim -fig7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/device"
)

func geometryFlag(name string) device.Geometry {
	switch name {
	case "tiny":
		return device.Tiny()
	case "small":
		return device.Small()
	case "xqvr1000":
		return device.XQVR1000()
	default:
		fmt.Fprintf(os.Stderr, "unknown geometry %q (tiny|small|xqvr1000)\n", name)
		os.Exit(2)
	}
	return device.Geometry{}
}

func main() {
	var (
		table   = flag.Int("table", 0, "reproduce paper table 1 or 2")
		fig7    = flag.Bool("fig7", false, "reproduce the Fig. 7 persistent-error trace")
		design  = flag.String("design", "", "run a single catalogued design")
		geom    = flag.String("geom", "small", "device geometry: tiny|small|xqvr1000")
		sample  = flag.Float64("sample", 0.05, "fraction of configuration bits to inject (1 = exhaustive)")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "parallel injection workers, each on a cloned board replica; results are identical at any count (0 = GOMAXPROCS)")
	)
	flag.Parse()
	cfg := core.Config{Geom: geometryFlag(*geom), Seed: *seed, Sample: *sample, Workers: *workers}

	switch {
	case *table == 1:
		fmt.Printf("Table I — SEU sensitivity (geometry %s, sample %.3f)\n", cfg.Geom, *sample)
		fmt.Printf("%-16s %14s %9s %8s %8s %8s\n", "Design", "Slices", "Injects", "Failures", "Sens", "Norm")
		rows, err := core.TableI(cfg)
		check(err)
		for _, r := range rows {
			fmt.Println(r)
		}
	case *table == 2:
		fmt.Printf("Table II — error persistence (geometry %s, sample %.3f)\n", cfg.Geom, *sample)
		fmt.Printf("%-16s %6s %8s %8s\n", "Design", "Slices", "Sens", "Persist")
		rows, err := core.TableII(cfg)
		check(err)
		for _, r := range rows {
			fmt.Println(r)
		}
	case *fig7:
		tr, bit, err := core.Fig7(cfg)
		check(err)
		fmt.Printf("Fig. 7 — persistent error trace (upset bit %d, frame %d)\n", bit, bit.Frame(cfg.Geom))
		fmt.Printf("%8s %12s %12s %s\n", "cycle", "expected", "actual", "match")
		for _, pt := range tr {
			mark := ""
			if !pt.Match {
				mark = "  <-- diverged"
			}
			fmt.Printf("%8d %12d %12d %v%s\n", pt.Cycle, pt.Expected, pt.Actual, pt.Match, mark)
		}
	case *design != "":
		rep, err := core.Sensitivity(cfg, *design, true)
		check(err)
		fmt.Println(rep)
		fmt.Printf("simulated test time %v (%v per injection), wall time %v\n",
			rep.SimulatedTime, board.InjectLoopTime, rep.WallTime)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "seusim:", err)
		os.Exit(1)
	}
}
