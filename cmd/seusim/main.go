// Command seusim runs the paper's SEU fault-injection experiments: per-design
// sensitivity campaigns (Table I), persistence classification (Table II), and
// the persistent-error trace of Fig. 7.
//
// Examples:
//
//	seusim -table 1 -sample 0.05
//	seusim -table 2
//	seusim -design "LFSR 72" -sample 0.1
//	seusim -design "MULT 12" -json
//	seusim -fig7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/board"
	"repro/internal/core"
)

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	check(enc.Encode(v))
}

func main() {
	var (
		table   = flag.Int("table", 0, "reproduce paper table 1 or 2")
		fig7    = flag.Bool("fig7", false, "reproduce the Fig. 7 persistent-error trace")
		jsonOut = flag.Bool("json", false, "emit results as JSON (table and design modes)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	cf := core.RegisterCampaignFlags(flag.CommandLine, core.CampaignSpec{
		Geom: "small", Seed: 1, Sample: 0.05,
	})
	flag.Parse()
	cfg, err := cf.Resolve()
	check(err)
	design := &cf.Spec.Design

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			check(err)
			defer f.Close()
			runtime.GC()
			check(pprof.WriteHeapProfile(f))
		}()
	}

	switch {
	case *table == 1:
		rows, err := core.TableI(cfg)
		check(err)
		if *jsonOut {
			emitJSON(rows)
			return
		}
		fmt.Printf("Table I — SEU sensitivity (geometry %s, sample %.3f)\n", cfg.Geom, cfg.Sample)
		fmt.Printf("%-16s %14s %9s %8s %8s %8s\n", "Design", "Slices", "Injects", "Failures", "Sens", "Norm")
		for _, r := range rows {
			fmt.Println(r)
		}
	case *table == 2:
		rows, err := core.TableII(cfg)
		check(err)
		if *jsonOut {
			emitJSON(rows)
			return
		}
		fmt.Printf("Table II — error persistence (geometry %s, sample %.3f)\n", cfg.Geom, cfg.Sample)
		fmt.Printf("%-16s %6s %8s %8s\n", "Design", "Slices", "Sens", "Persist")
		for _, r := range rows {
			fmt.Println(r)
		}
	case *fig7:
		tr, bit, err := core.Fig7(cfg)
		check(err)
		fmt.Printf("Fig. 7 — persistent error trace (upset bit %d, frame %d)\n", bit, bit.Frame(cfg.Geom))
		fmt.Printf("%8s %12s %12s %s\n", "cycle", "expected", "actual", "match")
		for _, pt := range tr {
			mark := ""
			if !pt.Match {
				mark = "  <-- diverged"
			}
			fmt.Printf("%8d %12d %12d %v%s\n", pt.Cycle, pt.Expected, pt.Actual, pt.Match, mark)
		}
	case *design != "":
		rep, err := core.Sensitivity(cfg, *design, true)
		check(err)
		if *jsonOut {
			emitJSON(core.NewCampaignReport(rep, cfg))
			return
		}
		fmt.Println(rep)
		fmt.Printf("triage skipped %d of %d injections without board activity\n",
			rep.TriageSkipped, rep.Injections)
		fmt.Printf("simulated test time %v (%v per injection), wall time %v\n",
			rep.SimulatedTime, board.InjectLoopTime, rep.WallTime)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "seusim:", err)
		os.Exit(1)
	}
}
