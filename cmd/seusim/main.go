// Command seusim runs the paper's SEU fault-injection experiments: per-design
// sensitivity campaigns (Table I), persistence classification (Table II), and
// the persistent-error trace of Fig. 7.
//
// Examples:
//
//	seusim -table 1 -sample 0.05
//	seusim -table 2
//	seusim -design "LFSR 72" -sample 0.1
//	seusim -design "MULT 12" -json
//	seusim -fig7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/seu"
)

func geometryFlag(name string) device.Geometry {
	switch name {
	case "tiny":
		return device.Tiny()
	case "small":
		return device.Small()
	case "xqvr1000":
		return device.XQVR1000()
	default:
		fmt.Fprintf(os.Stderr, "unknown geometry %q (tiny|small|xqvr1000)\n", name)
		os.Exit(2)
	}
	return device.Geometry{}
}

// campaignJSON is the machine-readable form of one campaign Report, emitted
// by -json for CI artifacts, golden-report regression corpora, and
// downstream analysis. It carries only deterministic fields — wall time is
// deliberately absent, and the per-kind maps marshal in fixed kind order —
// so re-running the same campaign produces byte-identical output.
type campaignJSON struct {
	Design           string         `json:"design"`
	Geometry         string         `json:"geometry"`
	Slices           int            `json:"slices"`
	UtilizationPct   float64        `json:"utilization_pct"`
	Injections       int64          `json:"injections"`
	Failures         int64          `json:"failures"`
	Persistent       int64          `json:"persistent"`
	TriageSkipped    int64          `json:"triage_skipped"`
	SensitivityPct   float64        `json:"sensitivity_pct"`
	NormalizedPct    float64        `json:"normalized_sensitivity_pct"`
	PersistencePct   float64        `json:"persistence_pct"`
	InjectionsByKind seu.KindCounts `json:"injections_by_kind"`
	FailuresByKind   seu.KindCounts `json:"failures_by_kind"`
	SimulatedTimeSec float64        `json:"simulated_time_seconds"`
	Sample           float64        `json:"sample"`
	Seed             int64          `json:"seed"`
	Workers          int            `json:"workers"`
	Triage           bool           `json:"triage"`
	FastSim          bool           `json:"fastsim"`
	Kernel           string         `json:"kernel"`
	CyclesSimulated  int64          `json:"cycles_simulated"`
	CyclesSkipped    int64          `json:"cycles_skipped"`
}

func campaignToJSON(rep *seu.Report, cfg core.Config) campaignJSON {
	return campaignJSON{
		Design:           rep.Design,
		Geometry:         rep.Geom.String(),
		Slices:           rep.SlicesUsed,
		UtilizationPct:   100 * float64(rep.SlicesUsed) / float64(rep.Geom.Slices()),
		Injections:       rep.Injections,
		Failures:         rep.Failures,
		Persistent:       rep.Persistent,
		TriageSkipped:    rep.TriageSkipped,
		SensitivityPct:   100 * rep.Sensitivity(),
		NormalizedPct:    100 * rep.NormalizedSensitivity(),
		PersistencePct:   100 * rep.PersistenceRatio(),
		InjectionsByKind: rep.InjectionsByKind,
		FailuresByKind:   rep.FailuresByKind,
		SimulatedTimeSec: rep.SimulatedTime.Seconds(),
		Sample:           cfg.Sample,
		Seed:             cfg.Seed,
		Workers:          cfg.Workers,
		Triage:           !cfg.NoTriage,
		FastSim:          !cfg.NoFastSim,
		Kernel:           cfg.Kernel.String(),
		CyclesSimulated:  rep.CyclesSimulated,
		CyclesSkipped:    rep.CyclesSkipped,
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	check(enc.Encode(v))
}

func main() {
	var (
		table   = flag.Int("table", 0, "reproduce paper table 1 or 2")
		fig7    = flag.Bool("fig7", false, "reproduce the Fig. 7 persistent-error trace")
		design  = flag.String("design", "", "run a single catalogued design")
		geom    = flag.String("geom", "small", "device geometry: tiny|small|xqvr1000")
		sample  = flag.Float64("sample", 0.05, "fraction of configuration bits to inject (1 = exhaustive)")
		maxBits = flag.Int64("maxbits", 0, "cap injections per design at the first N selected bits (0 = no cap)")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "parallel injection workers, each on a cloned board replica; results are identical at any count (0 = GOMAXPROCS)")
		triage  = flag.Bool("triage", true, "skip provably-inert configuration bits via static cone-of-influence analysis; reports are byte-identical either way")
		fastsim = flag.Bool("fastsim", true, "use the activity-driven settling kernel and lock-step convergence early exit; reports are byte-identical either way")
		kernel  = flag.String("kernel", "auto", "settling kernel: auto (follow -fastsim), event, or sweep; reports are byte-identical at any choice")
		jsonOut = flag.Bool("json", false, "emit results as JSON (table and design modes)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	kern, err := seu.ParseKernel(*kernel)
	check(err)
	cfg := core.Config{Geom: geometryFlag(*geom), Seed: *seed, Sample: *sample, MaxBits: *maxBits, Workers: *workers, NoTriage: !*triage, NoFastSim: !*fastsim, Kernel: kern}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			check(err)
			defer f.Close()
			runtime.GC()
			check(pprof.WriteHeapProfile(f))
		}()
	}

	switch {
	case *table == 1:
		rows, err := core.TableI(cfg)
		check(err)
		if *jsonOut {
			emitJSON(rows)
			return
		}
		fmt.Printf("Table I — SEU sensitivity (geometry %s, sample %.3f)\n", cfg.Geom, *sample)
		fmt.Printf("%-16s %14s %9s %8s %8s %8s\n", "Design", "Slices", "Injects", "Failures", "Sens", "Norm")
		for _, r := range rows {
			fmt.Println(r)
		}
	case *table == 2:
		rows, err := core.TableII(cfg)
		check(err)
		if *jsonOut {
			emitJSON(rows)
			return
		}
		fmt.Printf("Table II — error persistence (geometry %s, sample %.3f)\n", cfg.Geom, *sample)
		fmt.Printf("%-16s %6s %8s %8s\n", "Design", "Slices", "Sens", "Persist")
		for _, r := range rows {
			fmt.Println(r)
		}
	case *fig7:
		tr, bit, err := core.Fig7(cfg)
		check(err)
		fmt.Printf("Fig. 7 — persistent error trace (upset bit %d, frame %d)\n", bit, bit.Frame(cfg.Geom))
		fmt.Printf("%8s %12s %12s %s\n", "cycle", "expected", "actual", "match")
		for _, pt := range tr {
			mark := ""
			if !pt.Match {
				mark = "  <-- diverged"
			}
			fmt.Printf("%8d %12d %12d %v%s\n", pt.Cycle, pt.Expected, pt.Actual, pt.Match, mark)
		}
	case *design != "":
		rep, err := core.Sensitivity(cfg, *design, true)
		check(err)
		if *jsonOut {
			emitJSON(campaignToJSON(rep, cfg))
			return
		}
		fmt.Println(rep)
		fmt.Printf("triage skipped %d of %d injections without board activity\n",
			rep.TriageSkipped, rep.Injections)
		fmt.Printf("simulated test time %v (%v per injection), wall time %v\n",
			rep.SimulatedTime, board.InjectLoopTime, rep.WallTime)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "seusim:", err)
		os.Exit(1)
	}
}
