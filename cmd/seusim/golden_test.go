package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
)

// Golden-report corpus: canonical -json outputs for the paper-table catalog
// designs, pinned under testdata/. The campaign pipeline promises its
// reports are a pure function of (geometry, design, seed, sample, maxbits) —
// independent of worker count, triage, fastsim, and kernel choice — so these
// files only legitimately change when the simulator's semantics change.
// Regenerate with:
//
//	go test ./cmd/seusim -run Golden -update

var update = flag.Bool("update", false, "rewrite golden JSON files under testdata/")

// goldenCfg samples 1% of the bitstream uniformly (no MaxBits cap, which
// would take an ascending-address prefix and land mostly in pad frames), so
// every design's golden report records real failures and persistence.
func goldenCfg() core.Config {
	return core.Config{Geom: device.Small(), Seed: 1, Sample: 0.01, Workers: 1}
}

func marshalGolden(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	// emitJSON uses json.Encoder, which terminates with a newline.
	return append(b, '\n')
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./cmd/seusim -run Golden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: -json output diverged from the golden corpus.\nIf the simulator's semantics changed intentionally, regenerate with:\n  go test ./cmd/seusim -run Golden -update\ngot:\n%swant:\n%s", name, got, want)
	}
}

func TestGoldenTableI(t *testing.T) {
	rows, err := core.TableI(goldenCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1.json", marshalGolden(t, rows))
}

func TestGoldenTableII(t *testing.T) {
	rows, err := core.TableII(goldenCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table2.json", marshalGolden(t, rows))
}

func TestGoldenDesignReports(t *testing.T) {
	cfg := goldenCfg()
	for _, name := range []string{"LFSR 72", "MULT 12"} {
		rep, err := core.Sensitivity(cfg, name, true)
		if err != nil {
			t.Fatal(err)
		}
		file := "design-" + sanitize(name) + ".json"
		checkGolden(t, file, marshalGolden(t, core.NewCampaignReport(rep, cfg)))
	}
}

// TestJSONByteIdentical is the reproducibility acceptance check: the same
// campaign run twice must serialize to byte-identical -json output.
func TestJSONByteIdentical(t *testing.T) {
	cfg := goldenCfg()
	run := func() []byte {
		rep, err := core.Sensitivity(cfg, "LFSR 72", true)
		if err != nil {
			t.Fatal(err)
		}
		return marshalGolden(t, core.NewCampaignReport(rep, cfg))
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical runs serialized differently:\n%s\nvs\n%s", a, b)
	}
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		if r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}
