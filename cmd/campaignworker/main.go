// Command campaignworker is a fabric worker node. It registers with a
// campaignd coordinator, leases SEU sweep chunks, runs them on local
// replicas, and commits results as content-addressed blobs:
//
//	campaignworker -coordinator http://127.0.0.1:8433 -slots 4
//
// By default chunk blobs are uploaded to the coordinator's embedded blob
// server; point -blob at a standalone blobd (or S3-style endpoint) to keep
// checkpoint traffic off the coordinator. A worker holds no durable state:
// kill it at any point and its leased chunks expire and are re-issued to the
// surviving workers with no effect on the final report.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fabric"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "http://127.0.0.1:8433", "campaignd coordinator base URL")
		blob        = flag.String("blob", "", "blob server base URL (default: the coordinator's embedded store)")
		name        = flag.String("name", "", "worker name advertised to the coordinator (default: hostname)")
		slots       = flag.Int("slots", 0, "concurrent chunk slots (0 = GOMAXPROCS)")
		poll        = flag.Duration("poll", 500*time.Millisecond, "idle lease poll interval")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := fabric.RunWorker(ctx, fabric.WorkerOptions{
		Coordinator: *coordinator,
		Blob:        *blob,
		Name:        *name,
		Slots:       *slots,
		Poll:        *poll,
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "campaignworker:", err)
		os.Exit(1)
	}
	fmt.Println("campaignworker: stopped")
}
