// Command missionsim flies a fleet of scrub-managed FPGA boards through a
// simulated orbital radiation environment and compares scrub strategies on
// availability, MTTR, and scrub latency. The simulation is deterministic per
// seed: the same seed yields a byte-identical mission report at any -workers
// value.
//
// Examples:
//
//	missionsim -seed 1 -fleet 256
//	missionsim -scenario paper -json
//	missionsim -fleet 64 -strategies blind,readback -duration 72h -flux 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/mission"
	"repro/internal/scrub"
)

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "missionsim:", err)
		os.Exit(1)
	}
}

// paperScanTarget is the paper's quoted payload scan: reading back all nine
// FPGAs takes about 180 ms.
const paperScanTarget = 180 * time.Millisecond

// paperScenario returns the canned nine-FPGA flight payload: three boards'
// worth of the paper's stack per fleet slot is collapsed to one nine-device
// board, the scrub timing scaled so a full readback scan of the board takes
// the paper's 180 ms, and a flare-active environment so both regimes appear.
func paperScenario(cfg mission.Config) mission.Config {
	cfg.DevicesPerBoard = 9
	cfg.Design = "LFSR 72"
	geom, err := core.ParseGeometry("small")
	check(err)
	cfg.Geom = geom
	// Scale the cost model so nine devices' readback scan = 180 ms.
	t := scrub.DefaultTiming()
	boardScan := time.Duration(9*geom.TotalFrames()) * t.FrameRead
	cfg.Timing = t.Scale(float64(paperScanTarget) / float64(boardScan))
	env := mission.DefaultEnv()
	env.FlareMeanEvery = 36 * time.Hour
	env.FlareMeanDuration = 6 * time.Hour
	cfg.Env = env
	if cfg.Duration == 0 {
		cfg.Duration = 14 * 24 * time.Hour
	}
	if cfg.Boards == 0 {
		cfg.Boards = 32
	}
	return cfg
}

func main() {
	var (
		seed     = flag.Int64("seed", 1, "mission seed (report is byte-identical per seed)")
		fleet    = flag.Int("fleet", 0, "number of boards (0 = scenario/package default)")
		devices  = flag.Int("devices", 0, "FPGAs per board (0 = default 9)")
		duration = flag.Duration("duration", 0, "mission length (0 = default)")
		strats   = flag.String("strategies", "", "comma-separated scrub strategies (default: all)")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS); never changes output")
		design   = flag.String("design", "", "catalogued design name")
		geomName = flag.String("geom", "", "device geometry: tiny|small|xqvr1000")
		flux     = flag.Float64("flux", 0, "flux multiplier on both regime rates")
		coverage = flag.Float64("coverage", 0, "redundancy strategy sensitive-bit coverage (0 = 0.8)")
		scenario = flag.String("scenario", "", "canned scenario: paper (nine-FPGA/180 ms payload)")
		jsonOut  = flag.Bool("json", false, "emit the mission report JSON instead of the table")
	)
	flag.Parse()

	cfg := mission.Config{
		Seed:               *seed,
		Boards:             *fleet,
		DevicesPerBoard:    *devices,
		Duration:           *duration,
		Workers:            *workers,
		Design:             *design,
		RedundancyCoverage: *coverage,
	}
	switch *scenario {
	case "":
	case "paper":
		cfg = paperScenario(cfg)
		// Explicit flags still override the canned scenario.
		if *devices != 0 {
			cfg.DevicesPerBoard = *devices
		}
		if *design != "" {
			cfg.Design = *design
		}
	default:
		check(fmt.Errorf("unknown scenario %q (want: paper)", *scenario))
	}
	if *geomName != "" {
		geom, err := core.ParseGeometry(*geomName)
		check(err)
		cfg.Geom = geom
	}
	if *strats != "" {
		list, err := scrub.ParseStrategies(*strats)
		check(err)
		cfg.Strategies = list
	}
	if *flux != 0 {
		if cfg.Env.QuietPerHour == 0 && cfg.Env.FlarePerHour == 0 {
			cfg.Env = mission.DefaultEnv()
		}
		cfg.Env.FluxScale = *flux
	}

	rep, err := mission.Run(cfg)
	check(err)
	if *jsonOut {
		out, err := rep.Marshal()
		check(err)
		_, err = os.Stdout.Write(out)
		check(err)
		return
	}
	rep.WriteTable(os.Stdout)
}
