package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/mission"
)

// Golden mission-report corpus: canonical -json outputs pinned under
// testdata/. The mission simulator promises its report is a pure function
// of the seed and configuration — independent of worker count and
// scheduling — so these files only legitimately change when the simulator's
// semantics change. Regenerate with:
//
//	go test ./cmd/missionsim -run Golden -update

var update = flag.Bool("update", false, "rewrite golden JSON files under testdata/")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./cmd/missionsim -run Golden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: mission report diverged from the golden corpus.\nIf the simulator's semantics changed intentionally, regenerate with:\n  go test ./cmd/missionsim -run Golden -update\ngot:\n%swant:\n%s", name, got, want)
	}
}

func goldenReport(t *testing.T, cfg mission.Config) []byte {
	t.Helper()
	rep, err := mission.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGoldenMissionReport pins the default fleet's report for seed 1. The
// worker count deliberately differs from anything CI uses: the bytes must
// not care.
func TestGoldenMissionReport(t *testing.T) {
	checkGolden(t, "mission-seed1.json", goldenReport(t, mission.Config{
		Seed:     1,
		Boards:   8,
		Duration: 24 * time.Hour,
		Design:   "LFSR 18",
		Geom:     device.Tiny(),
		Workers:  3,
	}))
}

// TestGoldenPaperScenario pins the canned nine-FPGA/180 ms payload scenario
// at a CI-sized fleet and duration.
func TestGoldenPaperScenario(t *testing.T) {
	cfg := paperScenario(mission.Config{Seed: 1})
	cfg.Boards = 2
	cfg.Duration = 48 * time.Hour
	cfg.Workers = 5
	checkGolden(t, "paper-scenario.json", goldenReport(t, cfg))
}
