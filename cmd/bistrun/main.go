// Command bistrun runs the permanent-fault built-in self-tests of §II-B:
// the wire test (one design repeatedly partially reconfigured — Fig. 5),
// the CLB pattern-register test, and the BRAM address-in-data test.
// Optional stuck-at faults can be injected first to demonstrate isolation.
//
// Examples:
//
//	bistrun -all
//	bistrun -wire -stuck 3,4,6:1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bist"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fpga"
)

func main() {
	var (
		wire  = flag.Bool("wire", false, "run the wire test")
		clb   = flag.Bool("clb", false, "run the CLB test")
		bram  = flag.Bool("bram", false, "run the BRAM test")
		all   = flag.Bool("all", false, "run every test")
		geom  = flag.String("geom", "tiny", "device geometry: tiny|small|xqvr1000")
		stuck = flag.String("stuck", "", "inject stuck-at faults first: r,c,slot:v;... (v 0 or 1)")
	)
	flag.Parse()
	g, err := core.ParseGeometry(*geom)
	if err != nil {
		fail(err)
	}
	f := fpga.New(g)
	if err := f.FullConfigure(fpga.NewConfigBuilder(g).FullBitstream()); err != nil {
		fail(err)
	}
	port := fpga.NewPort(f)

	if *stuck != "" {
		for _, spec := range strings.Split(*stuck, ";") {
			parts := strings.SplitN(spec, ":", 2)
			coords := strings.Split(parts[0], ",")
			if len(coords) != 3 || len(parts) != 2 {
				fail(fmt.Errorf("bad stuck spec %q (want r,c,slot:v)", spec))
			}
			r, _ := strconv.Atoi(coords[0])
			c, _ := strconv.Atoi(coords[1])
			s, _ := strconv.Atoi(coords[2])
			f.SetStuck(device.Segment{R: r, C: c, S: s}, parts[1] == "1")
			fmt.Printf("injected stuck-at-%s at seg(%d,%d)#%d\n", parts[1], r, c, s)
		}
	}

	if *wire || *all {
		rep, err := bist.WireTest(f, port)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
		for _, flt := range rep.Faults {
			fmt.Printf("  %s\n", flt)
		}
	}
	if *clb || *all {
		rep, err := bist.CLBTest(f, port)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
		for _, flt := range rep.Faults {
			fmt.Printf("  CLB (%d,%d) site %d faulty\n", flt.R, flt.C, flt.Site)
		}
	}
	if *bram || *all {
		rep, err := bist.BRAMTest(f, port)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
		for _, flt := range rep.Faults {
			fmt.Printf("  BRAM col %d block %d word %d: got %04x want %04x\n",
				flt.Col, flt.Block, flt.Word, flt.Got, flt.Want)
		}
	}
	if !*wire && !*clb && !*bram && !*all {
		flag.Usage()
		os.Exit(2)
	}
	reads, writes := port.Stats()
	fmt.Printf("configuration interface: %d frame reads, %d frame writes, %v virtual time\n",
		reads, writes, port.Elapsed())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bistrun:", err)
	os.Exit(1)
}
