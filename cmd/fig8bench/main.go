// Command fig8bench times the Fig. 8 injection loop across the kernel and
// scheduling variants (fastsim on/off, triage on/off, sequential/sharded,
// scalar vs 64-lane vector kernel, event-drain vs full-sweep lane settling)
// and emits a machine-readable JSON report. CI commits the result as
// BENCH_PR8.json (BENCH_PR3.json preserves the scalar-era baseline,
// BENCH_PR6.json the pre-amortization vector era, BENCH_PR7.json the
// sweep-settling vector era) so kernel speedups are tracked in-repo, next
// to the code that produces them.
//
// With -baseline the same run doubles as a regression gate: the process
// exits non-zero if any variant present in both reports is more than
// -regress-pct percent above its ns/injection in the committed report.
// Per-variant comparison catches a regression in one kernel that a
// still-fast sibling variant would mask under a best-vs-best rule;
// variants added since the baseline are skipped.
//
// Examples:
//
//	fig8bench -out BENCH_PR8.json
//	fig8bench -baseline BENCH_PR8.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/place"
	"repro/internal/seu"
)

// variantResult is one timed campaign configuration. All variants run the
// identical campaign (same design, seed, and bit sample) and produce
// byte-identical reports; only the wall time moves.
type variantResult struct {
	Name            string  `json:"name"`
	Workers         int     `json:"workers"`
	Triage          bool    `json:"triage"`
	FastSim         bool    `json:"fastsim"`
	Kernel          string  `json:"kernel"`
	Injections      int64   `json:"injections"`
	Failures        int64   `json:"failures"`
	WallSeconds     float64 `json:"wall_seconds"`
	NsPerInjection  float64 `json:"ns_per_injection"`
	CyclesSimulated int64   `json:"cycles_simulated"`
	CyclesSkipped   int64   `json:"cycles_skipped"`
	EarlyExitPct    float64 `json:"early_exit_pct"`
}

type benchReport struct {
	Design     string `json:"design"`
	Geometry   string `json:"geometry"`
	MaxBits    int64  `json:"max_bits"`
	Seed       int64  `json:"seed"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Reps is the timed repetitions per variant; each variant reports its
	// fastest repetition.
	Reps     int             `json:"reps"`
	Variants []variantResult `json:"variants"`
	// SpeedupFastSim is the wall-time ratio of the sequential fastsim-off
	// run over the sequential fastsim-on run — the headline number for the
	// event kernel plus convergence early exit.
	SpeedupFastSim float64 `json:"speedup_fastsim_x"`
	// SpeedupVector is the wall-time ratio of the best sequential scalar
	// point (workers-1: triage + fastsim, the PR 3 headline) over the
	// sequential vector-kernel run of the identical campaign.
	SpeedupVector float64 `json:"speedup_vector_x"`
	// PR3BestNsPerInjection is the committed PR 3 baseline for the same
	// workload (BENCH_PR3.json, "workers-1"), kept here so the vector
	// kernel's improvement over the scalar era is visible in one file.
	PR3BestNsPerInjection float64 `json:"pr3_best_ns_per_injection"`
}

// pr3BestNsPerInjection is BENCH_PR3.json's "workers-1" ns/injection on the
// default workload (MULT 12, small, 2000 bits, seed 1).
const pr3BestNsPerInjection = 24449.8025

func main() {
	var (
		design   = flag.String("design", "MULT 12", "catalogued design")
		geom     = flag.String("geom", "small", "device geometry: tiny|small|xqvr1000")
		maxBits  = flag.Int64("maxbits", 2000, "bits injected per variant")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "write JSON here (default stdout)")
		baseline = flag.String("baseline", "", "prior fig8bench JSON of the identical workload; exit non-zero if any shared variant's ns/injection regresses beyond -regress-pct")
		regress  = flag.Float64("regress-pct", 15, "allowed per-variant ns/injection regression against -baseline, in percent")
		reps     = flag.Int("reps", 3, "timed repetitions per variant; the fastest is reported (the sub-10ms vector variants are otherwise dominated by scheduler noise)")
	)
	flag.Parse()

	g, err := core.ParseGeometry(*geom)
	check(err)

	spec, err := designs.ByName(*design)
	check(err)
	p, err := place.Place(spec.Build(), g)
	check(err)

	type variant struct {
		name    string
		workers int
		triage  bool
		fastsim bool
		kernel  seu.Kernel
	}
	nproc := runtime.GOMAXPROCS(0)
	variants := []variant{
		{"workers-1-fastsim-off-triage-off", 1, false, false, seu.KernelAuto},
		{"workers-1-fastsim-off", 1, true, false, seu.KernelAuto},
		{"workers-1-triage-off", 1, false, true, seu.KernelAuto},
		{"workers-1", 1, true, true, seu.KernelAuto},
		{"workers-1-vector-triage-off", 1, false, true, seu.KernelVector},
		{"workers-1-vector", 1, true, true, seu.KernelVector},
		{"workers-1-vector-sweep", 1, true, true, seu.KernelVectorSweep},
	}
	if nproc > 1 {
		variants = append(variants,
			variant{fmt.Sprintf("workers-%d-fastsim-off", nproc), nproc, true, false, seu.KernelAuto},
			variant{fmt.Sprintf("workers-%d", nproc), nproc, true, true, seu.KernelAuto},
			variant{fmt.Sprintf("workers-%d-vector", nproc), nproc, true, true, seu.KernelVector})
	}

	rep := benchReport{
		Design:     *design,
		Geometry:   g.String(),
		MaxBits:    *maxBits,
		Seed:       *seed,
		GoMaxProcs: nproc,
		Reps:       *reps,
	}
	// Ctrl-C aborts the in-flight variant between injections rather than
	// leaving a half-timed report behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var refInjections, refFailures int64 = -1, -1
	var offWall, onWall, vecWall float64
	if *reps < 1 {
		*reps = 1
	}
	for _, v := range variants {
		opts := seu.DefaultOptions()
		opts.ClassifyPersistence = false
		opts.Seed = *seed
		opts.Workers = v.workers
		opts.MaxBits = *maxBits
		opts.Sample = 1
		opts.Triage = v.triage
		opts.FastSim = v.fastsim
		opts.Kernel = v.kernel
		// Every repetition runs the identical campaign; the fastest wall
		// time is the least scheduler-disturbed measurement of the same
		// work, which is what the regression gate should compare. The loop
		// is adaptive: it keeps timing until the floor has not improved for
		// -reps consecutive attempts (capped at five times that), so a
		// burst of machine load buys more attempts at a quiet window
		// instead of polluting the figure — the millisecond-scale vector
		// variants are otherwise at the mercy of one scheduler hiccup.
		var r *seu.Report
		var wall time.Duration
		sinceImproved := 0
		for attempt := 0; attempt < *reps*5 && (attempt < *reps || sinceImproved < *reps); attempt++ {
			bd, err := board.New(p, 1)
			check(err)
			start := time.Now()
			rr, err := seu.RunContext(ctx, bd, opts)
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "fig8bench: interrupted, no report written")
				os.Exit(130)
			}
			check(err)
			if w := time.Since(start); r == nil || w < wall {
				r, wall = rr, w
				sinceImproved = 0
			} else {
				sinceImproved++
			}
		}
		if refInjections < 0 {
			refInjections, refFailures = r.Injections, r.Failures
		} else if r.Injections != refInjections || r.Failures != refFailures {
			fmt.Fprintf(os.Stderr, "fig8bench: variant %s saw %d injections / %d failures, reference saw %d / %d — campaigns diverged\n",
				v.name, r.Injections, r.Failures, refInjections, refFailures)
			os.Exit(1)
		}
		total := r.CyclesSimulated + r.CyclesSkipped
		res := variantResult{
			Name:            v.name,
			Workers:         v.workers,
			Triage:          v.triage,
			FastSim:         v.fastsim,
			Kernel:          v.kernel.String(),
			Injections:      r.Injections,
			Failures:        r.Failures,
			WallSeconds:     wall.Seconds(),
			NsPerInjection:  float64(wall.Nanoseconds()) / float64(max64(1, r.Injections)),
			CyclesSimulated: r.CyclesSimulated,
			CyclesSkipped:   r.CyclesSkipped,
			EarlyExitPct:    100 * float64(r.CyclesSkipped) / float64(max64(1, total)),
		}
		rep.Variants = append(rep.Variants, res)
		if v.workers == 1 && v.triage {
			switch v.kernel {
			case seu.KernelVector:
				vecWall = res.WallSeconds
			case seu.KernelVectorSweep:
				// Tracked per-variant by the regression gate; not part of a
				// headline ratio (the event drain is the vector figurehead).
			default:
				if v.fastsim {
					onWall = res.WallSeconds
				} else {
					offWall = res.WallSeconds
				}
			}
		}
		fmt.Fprintf(os.Stderr, "%-34s %8d inj  %8.3fs  %10.0f ns/inj  early-exit %5.1f%%\n",
			v.name, res.Injections, res.WallSeconds, res.NsPerInjection, res.EarlyExitPct)
	}
	if onWall > 0 {
		rep.SpeedupFastSim = offWall / onWall
	}
	if vecWall > 0 {
		rep.SpeedupVector = onWall / vecWall
	}
	rep.PR3BestNsPerInjection = pr3BestNsPerInjection

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		check(err)
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	check(enc.Encode(rep))

	if *baseline != "" {
		check(checkBaseline(*baseline, &rep, *regress))
	}
}

// bestVariant returns the fastest variant of a report by ns/injection — the
// regression gate's headline figure, deliberately insensitive to which
// variant wins (a PR may legitimately shift the winner).
func bestVariant(rep *benchReport) (string, float64, error) {
	name, best := "", 0.0
	for _, v := range rep.Variants {
		if v.NsPerInjection <= 0 {
			continue
		}
		if name == "" || v.NsPerInjection < best {
			name, best = v.Name, v.NsPerInjection
		}
	}
	if name == "" {
		return "", 0, errors.New("report has no timed variants")
	}
	return name, best, nil
}

// checkBaseline compares rep against a committed baseline report of the
// identical workload, variant by variant: every variant timed in both
// reports must stay within pct percent of its baseline ns/injection.
// Matching by name (not best-vs-best) means a regression in one kernel
// cannot hide behind a still-fast sibling variant; variants added since
// the baseline was committed are skipped — they have nothing to compare
// against until the baseline is refreshed. The workload must match field
// for field — comparing ns/injection across different designs, geometries,
// bit counts, or seeds would be meaningless.
func checkBaseline(path string, rep *benchReport, pct float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.Design != rep.Design || base.Geometry != rep.Geometry ||
		base.MaxBits != rep.MaxBits || base.Seed != rep.Seed {
		return fmt.Errorf("baseline %s benchmarks a different workload (%s/%s/%d bits/seed %d vs %s/%s/%d bits/seed %d) — not comparable",
			path, base.Design, base.Geometry, base.MaxBits, base.Seed,
			rep.Design, rep.Geometry, rep.MaxBits, rep.Seed)
	}
	baseByName := make(map[string]variantResult, len(base.Variants))
	for _, v := range base.Variants {
		if v.NsPerInjection > 0 {
			baseByName[v.Name] = v
		}
	}
	checked := 0
	var regressions []string
	for _, v := range rep.Variants {
		bv, ok := baseByName[v.Name]
		if !ok || v.NsPerInjection <= 0 {
			continue
		}
		checked++
		limit := bv.NsPerInjection * (1 + pct/100)
		if v.NsPerInjection > limit {
			regressions = append(regressions, fmt.Sprintf("%s: %.1f ns/injection vs baseline %.1f (limit %.1f, +%.0f%%)",
				v.Name, v.NsPerInjection, bv.NsPerInjection, limit, pct))
			continue
		}
		fmt.Fprintf(os.Stderr, "baseline ok: %-34s %10.1f ns/inj vs %10.1f (limit +%.0f%%)\n",
			v.Name, v.NsPerInjection, bv.NsPerInjection, pct)
	}
	if checked == 0 {
		return fmt.Errorf("baseline %s shares no timed variants with this run — nothing compared", path)
	}
	if len(regressions) > 0 {
		msg := "regression:"
		for _, r := range regressions {
			msg += "\n  " + r
		}
		return errors.New(msg)
	}
	if name, best, err := bestVariant(rep); err == nil {
		fmt.Fprintf(os.Stderr, "baseline ok: %d variants within +%.0f%%; best %s at %.1f ns/inj\n",
			checked, pct, name, best)
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig8bench:", err)
		os.Exit(1)
	}
}
