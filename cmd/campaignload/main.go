// Command campaignload hammers a running campaignd with concurrent API
// clients and reports latency percentiles and error rate as JSON:
//
//	campaignload -server http://127.0.0.1:8433 -clients 200 -requests 100
//
// Each client optionally submits a job first (same spec for every client —
// submission is idempotent by job ID, so the daemon sees one job and a
// stampede of readers), then cycles through list/status/metrics/stream/
// health reads. Exit status is non-zero when the error rate exceeds
// -max-error-rate, so CI can gate on a small profile.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fabric"
)

func main() {
	fs := flag.NewFlagSet("campaignload", flag.ExitOnError)
	var (
		server   = fs.String("server", "http://127.0.0.1:8433", "campaignd base URL")
		clients  = fs.Int("clients", 50, "concurrent clients")
		requests = fs.Int("requests", 100, "operations per client")
		timeout  = fs.Duration("timeout", 10*time.Second, "per-request timeout")
		maxErr   = fs.Float64("max-error-rate", 0.01, "exit non-zero above this error rate")
	)
	cf := core.RegisterCampaignFlags(fs, core.CampaignSpec{Geom: "small", Seed: 1, Sample: 0.01, Workers: 1})
	fs.Parse(os.Args[1:])

	opt := fabric.LoadTestOptions{
		Server:   *server,
		Clients:  *clients,
		Requests: *requests,
		Timeout:  *timeout,
	}
	if cf.Spec.Design != "" {
		seuSpec := cf.ResolveSpec()
		body, err := json.Marshal(campaign.JobSpec{Kind: campaign.KindSEU, SEU: &seuSpec})
		if err != nil {
			fatal(err)
		}
		opt.SubmitBody = body
	}

	rep, err := fabric.LoadTest(context.Background(), opt)
	if err != nil {
		fatal(err)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
	if rep.ErrorRate > *maxErr {
		fmt.Fprintf(os.Stderr, "campaignload: error rate %.4f exceeds limit %.4f\n", rep.ErrorRate, *maxErr)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "campaignload:", err)
	os.Exit(1)
}
