// Package bitstream implements the configuration-data layer of the FPGA
// model: the frame-addressed configuration memory, per-frame CRC codebooks
// used by the scrubbing fault manager, readback masks for live LUT-RAM and
// BRAM content, and a packetized bitstream format whose full-configuration
// form (and only that form) carries the start-up command that initializes
// half-latches.
package bitstream

import (
	"fmt"
	"math/bits"

	"repro/internal/device"
)

// Memory is a dense configuration memory for one device. Bits are addressed
// by device.BitAddr (frame*frameLength + offset).
type Memory struct {
	geom  device.Geometry
	words []uint64
	// gen holds one generation counter per frame, bumped by every mutation
	// that touches the frame (bit writes, frame writes, whole-memory
	// copies). Scrub fast paths compare generations to prove a frame
	// untouched since its last golden verification without re-reading it.
	gen      []uint64
	frameLen int64
	// muts counts every mutation (any granularity). Callers that derive
	// values from the full content — ConfigHiddenHash, campaign
	// fingerprints — compare it to prove the memory unchanged since their
	// last digest without re-reading a single word.
	muts uint64
}

// NewMemory returns an all-zero configuration memory for geometry g.
func NewMemory(g device.Geometry) *Memory {
	n := (g.TotalBits() + 63) / 64
	return &Memory{
		geom:     g,
		words:    make([]uint64, n),
		gen:      make([]uint64, g.TotalFrames()),
		frameLen: int64(g.FrameLength()),
	}
}

// touch records a mutation of the frame containing bit a.
func (m *Memory) touch(a device.BitAddr) {
	m.gen[int64(a)/m.frameLen]++
	m.muts++
}

// Mutations returns the total mutation counter: equal values at two points
// in time prove the memory's bits did not change in between.
func (m *Memory) Mutations() uint64 { return m.muts }

// FrameGen returns the generation counter of frame idx. The counter
// increases on every mutation touching the frame; equal generations at two
// points in time prove the frame's bits did not change in between.
func (m *Memory) FrameGen(idx int) uint64 { return m.gen[idx] }

// Geometry returns the geometry this memory was sized for.
func (m *Memory) Geometry() device.Geometry { return m.geom }

// Get returns bit a.
func (m *Memory) Get(a device.BitAddr) bool {
	return m.words[a>>6]&(1<<(uint(a)&63)) != 0
}

// Set writes bit a.
func (m *Memory) Set(a device.BitAddr, v bool) {
	m.touch(a)
	if v {
		m.words[a>>6] |= 1 << (uint(a) & 63)
	} else {
		m.words[a>>6] &^= 1 << (uint(a) & 63)
	}
}

// Flip inverts bit a and returns the new value.
func (m *Memory) Flip(a device.BitAddr) bool {
	m.touch(a)
	m.words[a>>6] ^= 1 << (uint(a) & 63)
	return m.Get(a)
}

// SetField writes an unsigned value into w consecutive bits starting at a
// (LSB first). Note: configuration fields are generally NOT contiguous in
// absolute address space (frame-major layout interleaves CLB rows); use
// Scatter/Gather with the device package's per-bit address functions for
// those.
func (m *Memory) SetField(a device.BitAddr, w int, v uint64) {
	for i := 0; i < w; i++ {
		m.Set(a+device.BitAddr(i), v&(1<<uint(i)) != 0)
	}
}

// Field reads an unsigned value from w consecutive bits starting at a. See
// the contiguity caveat on SetField.
func (m *Memory) Field(a device.BitAddr, w int) uint64 {
	var v uint64
	for i := 0; i < w; i++ {
		if m.Get(a + device.BitAddr(i)) {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Scatter writes a w-bit value through a per-bit address function,
// respecting the frame-major interleaving of configuration fields.
func (m *Memory) Scatter(w int, v uint64, addrOf func(i int) device.BitAddr) {
	for i := 0; i < w; i++ {
		m.Set(addrOf(i), v&(1<<uint(i)) != 0)
	}
}

// Gather reads a w-bit value through a per-bit address function.
func (m *Memory) Gather(w int, addrOf func(i int) device.BitAddr) uint64 {
	var v uint64
	for i := 0; i < w; i++ {
		if m.Get(addrOf(i)) {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Clone returns a deep copy, frame generations included.
func (m *Memory) Clone() *Memory {
	w := make([]uint64, len(m.words))
	copy(w, m.words)
	gen := make([]uint64, len(m.gen))
	copy(gen, m.gen)
	return &Memory{geom: m.geom, words: w, gen: gen, frameLen: m.frameLen, muts: m.muts}
}

// CopyFrom overwrites this memory with the contents of src (same geometry).
// Every frame counts as touched.
func (m *Memory) CopyFrom(src *Memory) {
	copy(m.words, src.words)
	for i := range m.gen {
		m.gen[i]++
	}
	m.muts++
}

// Equal reports whether two memories hold identical bits.
func (m *Memory) Equal(o *Memory) bool {
	if len(m.words) != len(o.words) {
		return false
	}
	for i, w := range m.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Hash folds the full memory content into the running FNV-1a-style hash h.
// Used by the state-hash diagnostics; not comparison-grade on its own (use
// Equal for exactness).
func (m *Memory) Hash(h uint64) uint64 {
	for _, w := range m.words {
		h ^= w
		h *= 1099511628211
	}
	return h
}

// PopCount returns the number of set bits (useful for corruption audits).
func (m *Memory) PopCount() int {
	n := 0
	for _, w := range m.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Frame extracts frame idx as a byte slice of FrameBytes length. Bits are
// packed LSB-first within each byte, matching Memory's word order.
func (m *Memory) Frame(idx int) Frame {
	g := m.geom
	if idx < 0 || idx >= g.TotalFrames() {
		panic(fmt.Sprintf("bitstream: frame %d out of range [0,%d)", idx, g.TotalFrames()))
	}
	fl := g.FrameLength()
	data := make([]byte, g.FrameBytes())
	base := device.BitAddr(int64(idx) * int64(fl))
	for i := 0; i < fl; i++ {
		if m.Get(base + device.BitAddr(i)) {
			data[i>>3] |= 1 << (uint(i) & 7)
		}
	}
	return Frame{Index: idx, Data: data}
}

// WriteFrame overwrites frame f.Index with f.Data.
func (m *Memory) WriteFrame(f Frame) error {
	g := m.geom
	if f.Index < 0 || f.Index >= g.TotalFrames() {
		return fmt.Errorf("bitstream: frame %d out of range [0,%d)", f.Index, g.TotalFrames())
	}
	if len(f.Data) != g.FrameBytes() {
		return fmt.Errorf("bitstream: frame %d payload %d bytes, want %d", f.Index, len(f.Data), g.FrameBytes())
	}
	fl := g.FrameLength()
	base := device.BitAddr(int64(f.Index) * int64(fl))
	for i := 0; i < fl; i++ {
		m.Set(base+device.BitAddr(i), f.Data[i>>3]&(1<<(uint(i)&7)) != 0)
	}
	return nil
}

// DiffFrames returns the indices of frames that differ between m and o.
func (m *Memory) DiffFrames(o *Memory) []int {
	g := m.geom
	var out []int
	fl := int64(g.FrameLength())
	for idx := 0; idx < g.TotalFrames(); idx++ {
		lo := int64(idx) * fl
		hi := lo + fl
		if m.rangeDiffers(o, lo, hi) {
			out = append(out, idx)
		}
	}
	return out
}

// FrameEqual reports whether frame idx holds identical bits in m and o.
func (m *Memory) FrameEqual(o *Memory, idx int) bool {
	fl := int64(m.geom.FrameLength())
	lo := int64(idx) * fl
	return !m.rangeDiffers(o, lo, lo+fl)
}

// DiffBits returns every bit address at which m and o differ, up to max
// addresses (max <= 0 means unlimited).
func (m *Memory) DiffBits(o *Memory, max int) []device.BitAddr {
	var out []device.BitAddr
	for wi := range m.words {
		x := m.words[wi] ^ o.words[wi]
		for x != 0 {
			b := bits.TrailingZeros64(x)
			a := device.BitAddr(wi*64 + b)
			if int64(a) < m.geom.TotalBits() {
				out = append(out, a)
				if max > 0 && len(out) >= max {
					return out
				}
			}
			x &= x - 1
		}
	}
	return out
}

func (m *Memory) rangeDiffers(o *Memory, lo, hi int64) bool {
	// Word-at-a-time with masks for the partial words at the edges.
	wLo, wHi := lo>>6, (hi-1)>>6
	for w := wLo; w <= wHi; w++ {
		x := m.words[w] ^ o.words[w]
		if x == 0 {
			continue
		}
		if w == wLo {
			x &= ^uint64(0) << (uint(lo) & 63)
		}
		if w == wHi {
			if top := uint(hi) & 63; top != 0 {
				x &= (1 << top) - 1
			}
		}
		if x != 0 {
			return true
		}
	}
	return false
}
