package bitstream

import (
	"testing"

	"repro/internal/device"
)

// TestFrameGenTracksMutations pins the contract the injection campaign's
// dirty-frame fast path relies on: every mutation path bumps the generation
// counter of exactly the frames it touches, and equal generations prove a
// frame unchanged.
func TestFrameGenTracksMutations(t *testing.T) {
	g := device.Tiny()
	m := NewMemory(g)
	fl := int64(g.FrameLength())
	a := device.BitAddr(5*fl + 7)

	if m.FrameGen(5) != 0 {
		t.Fatal("fresh memory has nonzero generation")
	}
	m.Set(a, true)
	if m.FrameGen(5) != 1 {
		t.Errorf("Set did not bump generation: %d", m.FrameGen(5))
	}
	m.Set(a, true) // same value still counts as a touch
	m.Flip(a)
	if m.FrameGen(5) != 3 {
		t.Errorf("generation after Set+Set+Flip = %d, want 3", m.FrameGen(5))
	}
	if m.FrameGen(4) != 0 || m.FrameGen(6) != 0 {
		t.Error("mutation leaked into neighbouring frames' generations")
	}

	before := m.FrameGen(2)
	if err := m.WriteFrame(NewMemory(g).Frame(2)); err != nil {
		t.Fatal(err)
	}
	if m.FrameGen(2) <= before {
		t.Error("WriteFrame did not bump the frame generation")
	}
}

func TestFrameGenCloneAndCopyFrom(t *testing.T) {
	g := device.Tiny()
	m := NewMemory(g)
	m.Set(device.BitAddr(3), true)
	m.Flip(device.BitAddr(int64(g.FrameLength()) * 9))

	cl := m.Clone()
	for f := 0; f < g.TotalFrames(); f++ {
		if cl.FrameGen(f) != m.FrameGen(f) {
			t.Fatalf("Clone dropped generation of frame %d", f)
		}
	}

	// CopyFrom rewrites every frame, so every generation must move even for
	// frames whose bits happen to be identical.
	var prev []uint64
	for f := 0; f < g.TotalFrames(); f++ {
		prev = append(prev, cl.FrameGen(f))
	}
	cl.CopyFrom(m)
	for f := 0; f < g.TotalFrames(); f++ {
		if cl.FrameGen(f) == prev[f] {
			t.Fatalf("CopyFrom left frame %d generation unchanged", f)
		}
	}
	if !cl.Equal(m) {
		t.Fatal("CopyFrom changed contents")
	}
}
