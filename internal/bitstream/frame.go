package bitstream

import (
	"fmt"
	"hash/crc32"

	"repro/internal/device"
)

// Frame is one configuration frame: the smallest unit of readback and
// partial reconfiguration, exactly as on Virtex. For the paper's XQVR1000
// geometry a frame is 156 bytes.
type Frame struct {
	Index int
	Data  []byte
}

// Clone returns a deep copy of the frame.
func (f Frame) Clone() Frame {
	d := make([]byte, len(f.Data))
	copy(d, f.Data)
	return Frame{Index: f.Index, Data: d}
}

// CRC returns the frame's CRC-32 (IEEE), the check the Actel fault manager
// computes during its continuous readback scan.
func (f Frame) CRC() uint32 { return crc32.ChecksumIEEE(f.Data) }

// MaskedCRC returns the CRC computed with masked bit positions forced to
// zero. The fault manager uses masked CRCs for frames that contain live
// LUT-RAM or BRAM content, which legitimately changes while the design runs
// (paper §II-C, §IV-A).
func (f Frame) MaskedCRC(mask []byte) uint32 {
	if mask == nil {
		return f.CRC()
	}
	buf := make([]byte, len(f.Data))
	for i, b := range f.Data {
		var m byte
		if i < len(mask) {
			m = mask[i]
		}
		buf[i] = b &^ m
	}
	return crc32.ChecksumIEEE(buf)
}

// Codebook stores the expected per-frame CRCs of a golden configuration.
// On the flight system the codebook is loaded from flash into the Actel's
// local SRAM.
type Codebook struct {
	geom device.Geometry
	crcs []uint32
	mask *Mask // optional readback mask applied before CRC
}

// BuildCodebook computes the per-frame CRC table of a golden memory. If
// mask is non-nil, masked frames use masked CRCs.
func BuildCodebook(golden *Memory, mask *Mask) *Codebook {
	g := golden.Geometry()
	cb := &Codebook{geom: g, crcs: make([]uint32, g.TotalFrames()), mask: mask}
	for i := 0; i < g.TotalFrames(); i++ {
		f := golden.Frame(i)
		cb.crcs[i] = f.MaskedCRC(mask.frameMask(i))
	}
	return cb
}

// Frames returns the number of entries in the codebook.
func (cb *Codebook) Frames() int { return len(cb.crcs) }

// Check verifies a read-back frame against the codebook; it reports true
// when the frame is clean.
func (cb *Codebook) Check(f Frame) bool {
	if f.Index < 0 || f.Index >= len(cb.crcs) {
		return false
	}
	return f.MaskedCRC(cb.mask.frameMask(f.Index)) == cb.crcs[f.Index]
}

// Expected returns the stored CRC for frame idx.
func (cb *Codebook) Expected(idx int) uint32 { return cb.crcs[idx] }

// Mask marks configuration bits that must be ignored during readback
// comparison because the design legitimately modifies them at run time
// (LUTs used as RAM/shift registers, BRAM content). The paper discusses why
// such masking — or stopping the clock — is mandatory (§II-C).
type Mask struct {
	geom   device.Geometry
	frames map[int][]byte
}

// NewMask returns an empty mask for geometry g.
func NewMask(g device.Geometry) *Mask {
	return &Mask{geom: g, frames: make(map[int][]byte)}
}

// MaskBit marks a single configuration bit as dynamic.
func (m *Mask) MaskBit(a device.BitAddr) {
	idx := a.Frame(m.geom)
	off := a.Offset(m.geom)
	fm, ok := m.frames[idx]
	if !ok {
		fm = make([]byte, m.geom.FrameBytes())
		m.frames[idx] = fm
	}
	fm[off>>3] |= 1 << (uint(off) & 7)
}

// MaskedFrames returns the number of frames with at least one masked bit.
func (m *Mask) MaskedFrames() int {
	if m == nil {
		return 0
	}
	return len(m.frames)
}

// Covers reports whether bit a is masked.
func (m *Mask) Covers(a device.BitAddr) bool {
	if m == nil {
		return false
	}
	fm, ok := m.frames[a.Frame(m.geom)]
	if !ok {
		return false
	}
	off := a.Offset(m.geom)
	return fm[off>>3]&(1<<(uint(off)&7)) != 0
}

func (m *Mask) frameMask(idx int) []byte {
	if m == nil {
		return nil
	}
	return m.frames[idx]
}

func (f Frame) String() string {
	return fmt.Sprintf("frame %d (%d bytes, crc %08x)", f.Index, len(f.Data), f.CRC())
}
