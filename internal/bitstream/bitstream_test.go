package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/device"
)

func randomized(g device.Geometry, seed int64) *Memory {
	m := NewMemory(g)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 2000; i++ {
		m.Set(device.BitAddr(rng.Int63n(g.TotalBits())), true)
	}
	return m
}

func TestMemoryGetSetFlip(t *testing.T) {
	g := device.Tiny()
	m := NewMemory(g)
	a := device.BitAddr(12345 % g.TotalBits())
	if m.Get(a) {
		t.Fatal("fresh memory should be zero")
	}
	m.Set(a, true)
	if !m.Get(a) {
		t.Fatal("Set(true) not visible")
	}
	if v := m.Flip(a); v {
		t.Fatal("Flip should have cleared the bit")
	}
	if v := m.Flip(a); !v {
		t.Fatal("Flip should have set the bit")
	}
	if m.PopCount() != 1 {
		t.Fatalf("PopCount = %d, want 1", m.PopCount())
	}
}

func TestFieldRoundTrip(t *testing.T) {
	g := device.Tiny()
	m := NewMemory(g)
	f := func(raw uint16, pos uint32) bool {
		a := device.BitAddr(int64(pos) % (g.TotalBits() - 16))
		m.SetField(a, 16, uint64(raw))
		return m.Field(a, 16) == uint64(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	g := device.Tiny()
	m := randomized(g, 1)
	for idx := 0; idx < g.TotalFrames(); idx += 7 {
		f := m.Frame(idx)
		if len(f.Data) != g.FrameBytes() {
			t.Fatalf("frame %d has %d bytes, want %d", idx, len(f.Data), g.FrameBytes())
		}
		m2 := NewMemory(g)
		if err := m2.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
		back := m2.Frame(idx)
		for i := range f.Data {
			if f.Data[i] != back.Data[i] {
				t.Fatalf("frame %d byte %d mismatch", idx, i)
			}
		}
	}
}

func TestWriteFrameValidation(t *testing.T) {
	g := device.Tiny()
	m := NewMemory(g)
	if err := m.WriteFrame(Frame{Index: -1, Data: make([]byte, g.FrameBytes())}); err == nil {
		t.Error("negative frame index accepted")
	}
	if err := m.WriteFrame(Frame{Index: g.TotalFrames(), Data: make([]byte, g.FrameBytes())}); err == nil {
		t.Error("out-of-range frame index accepted")
	}
	if err := m.WriteFrame(Frame{Index: 0, Data: make([]byte, 3)}); err == nil {
		t.Error("short frame payload accepted")
	}
}

func TestCloneAndEqualAndDiff(t *testing.T) {
	g := device.Tiny()
	m := randomized(g, 2)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone differs")
	}
	a := device.BitAddr(999 % g.TotalBits())
	c.Flip(a)
	if m.Equal(c) {
		t.Fatal("flip not detected by Equal")
	}
	diffs := m.DiffBits(c, 0)
	if len(diffs) != 1 || diffs[0] != a {
		t.Fatalf("DiffBits = %v, want [%d]", diffs, a)
	}
	frames := m.DiffFrames(c)
	if len(frames) != 1 || frames[0] != a.Frame(g) {
		t.Fatalf("DiffFrames = %v, want [%d]", frames, a.Frame(g))
	}
	c.CopyFrom(m)
	if !m.Equal(c) {
		t.Fatal("CopyFrom did not restore equality")
	}
}

func TestDiffBitsMax(t *testing.T) {
	g := device.Tiny()
	m := NewMemory(g)
	o := NewMemory(g)
	for i := int64(0); i < 10; i++ {
		o.Set(device.BitAddr(i*100), true)
	}
	if got := m.DiffBits(o, 3); len(got) != 3 {
		t.Fatalf("DiffBits(max=3) returned %d", len(got))
	}
	if got := m.DiffBits(o, 0); len(got) != 10 {
		t.Fatalf("DiffBits(max=0) returned %d, want 10", len(got))
	}
}

func TestCodebookDetectsSingleBitUpsets(t *testing.T) {
	g := device.Tiny()
	golden := randomized(g, 3)
	cb := BuildCodebook(golden, nil)
	if cb.Frames() != g.TotalFrames() {
		t.Fatalf("codebook has %d frames, want %d", cb.Frames(), g.TotalFrames())
	}
	// Clean frames pass.
	for idx := 0; idx < g.TotalFrames(); idx += 11 {
		if !cb.Check(golden.Frame(idx)) {
			t.Fatalf("clean frame %d failed CRC", idx)
		}
	}
	// Any single-bit flip in any sampled frame is caught.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		a := device.BitAddr(rng.Int63n(g.TotalBits()))
		corrupted := golden.Clone()
		corrupted.Flip(a)
		if cb.Check(corrupted.Frame(a.Frame(g))) {
			t.Fatalf("flip at %d not detected", a)
		}
	}
	if cb.Check(Frame{Index: -1}) || cb.Check(Frame{Index: cb.Frames()}) {
		t.Error("out-of-range frame index passed Check")
	}
}

func TestMaskedCRCIgnoresMaskedBits(t *testing.T) {
	g := device.Tiny()
	golden := randomized(g, 5)
	// Mask one "LUT-RAM" bit; changes there must not trip the codebook,
	// changes elsewhere in the same frame must.
	dynamic := g.LUTBitAddr(2, 3, 1, 7)
	mask := NewMask(g)
	mask.MaskBit(dynamic)
	if !mask.Covers(dynamic) {
		t.Fatal("mask does not cover its own bit")
	}
	if mask.Covers(dynamic + 1) {
		t.Fatal("mask covers unmasked bit")
	}
	cb := BuildCodebook(golden, mask)

	live := golden.Clone()
	live.Flip(dynamic)
	if !cb.Check(live.Frame(dynamic.Frame(g))) {
		t.Error("masked dynamic bit tripped the CRC")
	}
	live.Flip(g.LUTBitAddr(2, 3, 1, 8)) // neighbouring, unmasked
	if cb.Check(live.Frame(dynamic.Frame(g))) {
		t.Error("unmasked upset went undetected in a masked frame")
	}
}

func TestNilMaskBehaviour(t *testing.T) {
	var m *Mask
	if m.Covers(0) {
		t.Error("nil mask covers bits")
	}
	if m.MaskedFrames() != 0 {
		t.Error("nil mask has frames")
	}
	f := Frame{Index: 0, Data: []byte{1, 2, 3}}
	if f.MaskedCRC(nil) != f.CRC() {
		t.Error("nil frame mask changed CRC")
	}
}

func TestFullBitstreamRoundTrip(t *testing.T) {
	g := device.Tiny()
	m := randomized(g, 6)
	bs := Full(m)
	if !bs.IsFull() {
		t.Fatal("Full() bitstream not marked full")
	}
	if bs.FrameCount() != g.TotalFrames() {
		t.Fatalf("full bitstream has %d frames, want %d", bs.FrameCount(), g.TotalFrames())
	}
	raw := bs.Marshal()
	back, err := Unmarshal(g, raw)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMemory(g)
	startup, err := back.Apply(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !startup {
		t.Error("full bitstream did not signal startup")
	}
	if !m.Equal(m2) {
		t.Error("memory after full configuration differs from source")
	}
}

func TestPartialBitstreamTouchesOnlyItsFrames(t *testing.T) {
	g := device.Tiny()
	m := randomized(g, 7)
	target := NewMemory(g)
	frames := []int{0, 5, 9}
	bs := Partial(m, frames)
	if bs.IsFull() {
		t.Fatal("partial bitstream marked full")
	}
	startup, err := bs.Apply(target)
	if err != nil {
		t.Fatal(err)
	}
	if startup {
		t.Error("partial bitstream must not run start-up")
	}
	diff := target.DiffFrames(m)
	for _, f := range frames {
		for _, d := range diff {
			if d == f {
				t.Fatalf("frame %d was written but still differs", f)
			}
		}
	}
	if want := g.TotalFrames() - len(frames); len(diff) < want-2000 { // most frames still zero vs randomized
		t.Fatalf("unexpected diff count %d", len(diff))
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	g := device.Tiny()
	cases := [][]byte{
		nil,
		[]byte("XXXX\x00\x00\x00\x10"),
		append([]byte("RCFG"), 0, 0, 0, 99), // wrong frame size
	}
	for i, raw := range cases {
		if _, err := Unmarshal(g, raw); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Truncated packet.
	bs := Full(randomized(g, 8))
	raw := bs.Marshal()
	if _, err := Unmarshal(g, raw[:len(raw)-5]); err == nil {
		t.Error("truncated stream accepted")
	}
	// Unknown opcode.
	bad := append([]byte{}, raw[:8]...)
	bad = append(bad, 0x77, 0, 0, 0, 0, 0, 0, 0, 0)
	if _, err := Unmarshal(g, bad); err == nil {
		t.Error("unknown opcode accepted")
	}
}

func TestMarshalUnmarshalQuick(t *testing.T) {
	g := device.Tiny()
	f := func(seed int64, nFrames uint8) bool {
		m := randomized(g, seed)
		var frames []int
		for i := 0; i < int(nFrames%16); i++ {
			frames = append(frames, (i*7)%g.TotalFrames())
		}
		bs := Partial(m, frames)
		back, err := Unmarshal(g, bs.Marshal())
		if err != nil {
			return false
		}
		return back.FrameCount() == bs.FrameCount() && back.IsFull() == bs.IsFull()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
