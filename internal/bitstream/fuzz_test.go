package bitstream

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/device"
)

// FuzzPacketParse drives Unmarshal with arbitrary bytes: it must never
// panic, and any input it accepts must re-encode canonically — decode →
// encode → decode is a fixed point, the canonical encoding is stable, and
// an accepted bitstream always applies cleanly to a fresh memory (Unmarshal
// owes Apply fully-validated frame indices and sizes).
func FuzzPacketParse(f *testing.F) {
	g := device.Tiny()
	m := NewMemory(g)
	m.Set(device.BitAddr(5), true)
	m.Set(device.BitAddr(int64(g.FrameLength())+17), true)
	full := Full(m).Marshal()
	partial := Partial(m, []int{0, 3}).Marshal()
	f.Add(full)
	f.Add(partial)
	f.Add([]byte("RCFG"))
	f.Add(full[:20])
	bad := append([]byte(nil), partial...)
	bad[0] = 'X'
	f.Add(bad)

	f.Fuzz(func(t *testing.T, raw []byte) {
		bs, err := Unmarshal(g, raw)
		if err != nil {
			return
		}
		enc := bs.Marshal()
		bs2, err := Unmarshal(g, enc)
		if err != nil {
			t.Fatalf("re-unmarshal of canonical encoding failed: %v", err)
		}
		if !reflect.DeepEqual(bs.Packets, bs2.Packets) {
			t.Fatalf("decode→encode→decode is not a fixed point")
		}
		if enc2 := bs2.Marshal(); !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding is unstable")
		}
		fresh := NewMemory(g)
		startup, err := bs.Apply(fresh)
		if err != nil {
			t.Fatalf("accepted bitstream failed to apply: %v", err)
		}
		if startup != bs.IsFull() {
			t.Fatalf("Apply startup=%v, IsFull=%v", startup, bs.IsFull())
		}
	})
}

// FuzzFrameCodec exercises the readback-CRC path: for arbitrary frame
// content, mask bytes, and a bit position, a flip of a masked bit must be
// invisible to the masked CRC and the codebook check, while a flip of an
// unmasked bit must be caught by both (CRC-32 detects all single-bit
// errors).
func FuzzFrameCodec(f *testing.F) {
	g := device.Tiny()
	fb := g.FrameBytes()
	f.Add(make([]byte, fb), []byte{0xFF, 0x00, 0x0F}, uint16(0))
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF}, []byte(nil), uint16(13))
	f.Add(bytes.Repeat([]byte{0xA5}, fb), bytes.Repeat([]byte{0x80}, fb), uint16(7777))

	f.Fuzz(func(t *testing.T, data, maskBytes []byte, bitIdx uint16) {
		fr := Frame{Index: 0, Data: data}
		if fr.MaskedCRC(nil) != fr.CRC() {
			t.Fatalf("nil mask changed the CRC")
		}

		// Normalize to one exact frame of geometry g so the memory/codebook
		// layer accepts it; the raw-CRC properties above already covered
		// arbitrary lengths.
		buf := make([]byte, fb)
		copy(buf, data)
		m := NewMemory(g)
		if err := m.WriteFrame(Frame{Index: 0, Data: buf}); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		bits := g.FrameLength()
		i := int(bitIdx) % bits
		masked := i/8 < len(maskBytes) && maskBytes[i/8]&(1<<(uint(i)&7)) != 0
		mk := NewMask(g)
		for o := 0; o < bits; o++ {
			if o/8 < len(maskBytes) && maskBytes[o/8]&(1<<(uint(o)&7)) != 0 {
				mk.MaskBit(device.BitAddr(o))
			}
		}
		if mk.Covers(device.BitAddr(i)) != masked {
			t.Fatalf("mask.Covers(%d)=%v, want %v", i, !masked, masked)
		}

		cb := BuildCodebook(m, mk)
		if !cb.Check(m.Frame(0)) {
			t.Fatalf("golden frame fails its own codebook")
		}
		if cb.Check(Frame{Index: -1, Data: buf}) || cb.Check(Frame{Index: cb.Frames(), Data: buf}) {
			t.Fatalf("out-of-range frame index accepted")
		}

		flipped := append([]byte(nil), buf...)
		flipped[i/8] ^= 1 << (uint(i) & 7)
		got := cb.Check(Frame{Index: 0, Data: flipped})
		if masked && !got {
			t.Fatalf("flip of masked bit %d detected by masked CRC", i)
		}
		if !masked && got {
			t.Fatalf("flip of unmasked bit %d missed by CRC scan", i)
		}
	})
}
