package bitstream

import (
	"encoding/binary"
	"fmt"

	"repro/internal/device"
)

// The packetized bitstream format. It is a simplified stand-in for the
// Virtex configuration packet protocol: a sync word, frame-address/data
// write packets, and a start-up command. The distinction the paper leans on
// is preserved exactly: only a FULL configuration ends with OpStartup, and
// only the start-up sequence initializes half-latches; a PARTIAL
// configuration writes frames without start-up and therefore cannot restore
// half-latch state (§III-C).

// Op is a bitstream packet opcode.
type Op uint8

const (
	// OpSync begins a configuration session.
	OpSync Op = 0xAA
	// OpWriteFrame carries one frame of configuration data.
	OpWriteFrame Op = 0x01
	// OpStartup ends a full configuration: FFs load their init values and
	// half-latches are initialized.
	OpStartup Op = 0x02
	// OpNop is ignored.
	OpNop Op = 0x00
)

// Packet is one bitstream command.
type Packet struct {
	Op    Op
	Frame int    // for OpWriteFrame
	Data  []byte // for OpWriteFrame
}

// Bitstream is an ordered packet sequence plus the geometry it targets.
type Bitstream struct {
	Geom    device.Geometry
	Packets []Packet
}

// Full assembles a complete configuration bitstream for memory m: sync,
// every frame in order, start-up.
func Full(m *Memory) *Bitstream {
	g := m.Geometry()
	bs := &Bitstream{Geom: g}
	bs.Packets = append(bs.Packets, Packet{Op: OpSync})
	for i := 0; i < g.TotalFrames(); i++ {
		f := m.Frame(i)
		bs.Packets = append(bs.Packets, Packet{Op: OpWriteFrame, Frame: i, Data: f.Data})
	}
	bs.Packets = append(bs.Packets, Packet{Op: OpStartup})
	return bs
}

// Partial assembles a partial-reconfiguration bitstream carrying only the
// given frames of m. No start-up command is included.
func Partial(m *Memory, frames []int) *Bitstream {
	g := m.Geometry()
	bs := &Bitstream{Geom: g}
	bs.Packets = append(bs.Packets, Packet{Op: OpSync})
	for _, i := range frames {
		f := m.Frame(i)
		bs.Packets = append(bs.Packets, Packet{Op: OpWriteFrame, Frame: i, Data: f.Data})
	}
	return bs
}

// IsFull reports whether the bitstream ends with a start-up command.
func (bs *Bitstream) IsFull() bool {
	return len(bs.Packets) > 0 && bs.Packets[len(bs.Packets)-1].Op == OpStartup
}

// FrameCount returns the number of frame-write packets.
func (bs *Bitstream) FrameCount() int {
	n := 0
	for _, p := range bs.Packets {
		if p.Op == OpWriteFrame {
			n++
		}
	}
	return n
}

// Wire format: magic "RCFG", u32 frameBytes, then packets as
// [op u8][frame u32][len u32][data]. This is what the simulated flash
// module stores and the 10 Mbit spacecraft link uploads.

var magic = []byte("RCFG")

// Marshal serializes the bitstream.
func (bs *Bitstream) Marshal() []byte {
	out := make([]byte, 0, 8+len(bs.Packets)*(9+bs.Geom.FrameBytes()))
	out = append(out, magic...)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(bs.Geom.FrameBytes()))
	out = append(out, u32[:]...)
	for _, p := range bs.Packets {
		out = append(out, byte(p.Op))
		binary.BigEndian.PutUint32(u32[:], uint32(p.Frame))
		out = append(out, u32[:]...)
		binary.BigEndian.PutUint32(u32[:], uint32(len(p.Data)))
		out = append(out, u32[:]...)
		out = append(out, p.Data...)
	}
	return out
}

// Unmarshal parses a serialized bitstream targeting geometry g.
func Unmarshal(g device.Geometry, raw []byte) (*Bitstream, error) {
	if len(raw) < 8 || string(raw[:4]) != string(magic) {
		return nil, fmt.Errorf("bitstream: bad magic")
	}
	fb := int(binary.BigEndian.Uint32(raw[4:8]))
	if fb != g.FrameBytes() {
		return nil, fmt.Errorf("bitstream: frame size %d does not match geometry (%d)", fb, g.FrameBytes())
	}
	bs := &Bitstream{Geom: g}
	p := raw[8:]
	for len(p) > 0 {
		if len(p) < 9 {
			return nil, fmt.Errorf("bitstream: truncated packet header")
		}
		op := Op(p[0])
		frame := int(binary.BigEndian.Uint32(p[1:5]))
		n := int(binary.BigEndian.Uint32(p[5:9]))
		p = p[9:]
		if n > len(p) {
			return nil, fmt.Errorf("bitstream: truncated packet payload (%d > %d)", n, len(p))
		}
		var data []byte
		if n > 0 {
			data = make([]byte, n)
			copy(data, p[:n])
			p = p[n:]
		}
		switch op {
		case OpSync, OpStartup, OpNop:
			if n != 0 {
				return nil, fmt.Errorf("bitstream: op %#x must not carry data", op)
			}
		case OpWriteFrame:
			if frame < 0 || frame >= g.TotalFrames() {
				return nil, fmt.Errorf("bitstream: frame %d out of range", frame)
			}
			if n != g.FrameBytes() {
				return nil, fmt.Errorf("bitstream: frame %d payload %d bytes, want %d", frame, n, g.FrameBytes())
			}
		default:
			return nil, fmt.Errorf("bitstream: unknown op %#x", op)
		}
		bs.Packets = append(bs.Packets, Packet{Op: op, Frame: frame, Data: data})
	}
	return bs, nil
}

// Apply writes every frame packet into memory m and reports whether the
// stream ended with a start-up command.
func (bs *Bitstream) Apply(m *Memory) (startup bool, err error) {
	for _, p := range bs.Packets {
		switch p.Op {
		case OpWriteFrame:
			if err := m.WriteFrame(Frame{Index: p.Frame, Data: p.Data}); err != nil {
				return false, err
			}
		case OpStartup:
			startup = true
		}
	}
	return startup, nil
}
