package fpga

import (
	"repro/internal/device"
)

// CompiledDesign is the struct-of-arrays form of one golden decode, built
// once per campaign and shared read-only by every worker's lane machines.
//
// The array-of-structs decode (clbs[i].lut[l].inSel[k] → candID → netVal)
// costs the vector kernel two dependent loads and a keeper branch per LUT
// input per sweep. Compilation flattens the hot fields into contiguous
// slices indexed by dense net/LUT/FF id and resolves every indirection to a
// single index into one flat per-lane state array:
//
//	state[0 : nets]          dense nets (CLB outputs, long lines, pins) —
//	                         CLB output net id == dense LUT id, so Settle
//	                         writes state[li] directly
//	state[constZero]         always 0   — undriven input-mux taps without a
//	state[constOne]          always ^0  — keeper, CE constants, keeper taps
//	state[bramBase ...]      BRAM output registers, one word per data bit
//
// Folding the half-latch keepers and CE constants into two constant state
// words is what removes the per-read branch: an input-select or CE field
// compiles to exactly one state index, whatever it decodes to. Long-line
// membership flattens into a CSR over the same index space (BRAM dout
// drivers point at the BRAM words), so the wired-AND loop has no
// driver-kind branch either.
//
// A CompiledDesign also freezes the campaign's canonical start state (the
// post-reset snapshot every injection begins from) and the golden
// evaluation plan (active LUTs in topological order, active CLBs), so
// building a worker's VectorBoard from a shared CompiledDesign allocates
// lane words and nothing else.
type CompiledDesign struct {
	geom  device.Geometry
	nets  int // dense net count; also the CLB-output/long-line/pin id space
	words int // len of the flat per-lane state: nets + 2 consts + BRAM bits

	constZero int32
	constOne  int32
	bramBase  int32 // state index of (block 0, data bit 0)
	llNetBase int32 // net id of long line 0 (= 4*CLBs)
	pinBase   int32 // net id of pin 0
	lls       int   // long-line count

	// slotID resolves input-mux slot (clb*InMuxWays + s) to its state
	// index: the tapped net, or the keeper constant when undriven.
	slotID []int32

	// Per dense LUT id (== its output net id).
	truth []uint16
	inID  []int32  // LUTInputs entries per LUT, pre-resolved state indices
	muxW  []uint64 // ^0 when the output mux selects the FF, else 0

	// Per dense FF id.
	ceID      []int32  // resolved CE source state index
	dinvW     []uint64 // ^0 when the D input is inverted, else 0
	ceHLConst []int32  // constOne/constZero per the FF's half-latch keeper

	// Long-line wired-AND membership, CSR over state indices.
	llStart []int32
	llDrv   []int32
	llKeep  []uint64 // keeper word read when a line has no live driver
	// llExternal lists lines with at least one non-CLB driver (BRAM dout
	// words, which change in Clock without an in-sweep refresh edge). Only
	// these — plus lines carrying lane overlays — can change value at a
	// sweep boundary, so Settle's end-of-sweep refresh is restricted to
	// them.
	llExternal []int32

	// In-sweep refresh edges: CLB-output net id → driven lines, CSR.
	byOutStart []int32
	byOutLL    []int32

	// Golden evaluation plan.
	evalBase    []int32 // active LUTs, topological order
	evalBasePos []int32 // f.pos of each evalBase entry, for overlay merges
	clockBase   []int32 // active CLBs, ascending
	lutPos      []int32 // topological position of every LUT
	activeLUT   []bool
	clbActive   []bool

	// BRAM read path (writable BRAM never reaches the vector kernel).
	bramEnID   []int32 // per block: enable-port state index, -1 constant-0
	bramAddrID []int32 // BRAMAddrBits per block
	bramMem    [][]uint16

	// Event-vector machinery (vecevent.go). fanStart/fanLUT is the golden
	// fanout CSR over dense net ids: the ACTIVE LUTs consuming each net,
	// mirroring the scalar event kernel's fanout lists (inactive LUTs
	// evaluate to constant 0 whatever their inputs do, so they are never
	// subscribed; overlay-activated LUTs subscribe per batch through the
	// Vector's fanAdd side table). orderLUT maps topological position to
	// dense LUT id (the compiled copy of f.order, covering every LUT so
	// overlay extras resolve too). bramLL lists, per BRAM block, the long
	// lines any of its dout words drive — the refresh targets when a block's
	// output register changes at a clock edge.
	fanStart []int32
	fanLUT   []int32
	orderLUT []int32
	bramLL   [][]int32

	// Canonical campaign start state, broadcast to all lanes.
	canonState []uint64
	canonLut   []uint64
	canonFF    []uint64
	// canonSettled records whether the canonical state is a proven settling
	// fixpoint (the final canonical sweep confirmed no change). False means
	// the design was frozen mid-oscillation at the MaxSweeps bound, and
	// every restore to canon must schedule a full re-evaluation so the
	// event drain continues the trajectory the way a sweep would.
	canonSettled bool

	maxSweeps int
}

// Compile flattens f's decoded configuration and current settled state into
// the shared read-only form. The caller must have put f into the campaign's
// canonical state first (pins low, Reset) — that state is frozen into the
// compiled design as every lane's start state — and f must not be
// history-coupled (the planner's demotions guarantee campaign use never is).
func (f *FPGA) Compile() *CompiledDesign {
	if f.orderStale {
		f.rebuildOrder()
	}
	g := f.geom
	nets := g.NumNets()
	clbs := g.CLBs()
	luts := g.LUTs()
	blocks := g.BRAMBlocks()
	c := &CompiledDesign{
		geom:      g,
		nets:      nets,
		words:     nets + 2 + blocks*device.BRAMWidth,
		constZero: int32(nets),
		constOne:  int32(nets + 1),
		bramBase:  int32(nets + 2),
		llNetBase: int32(4 * clbs),
		pinBase:   int32(f.pinNetID(0)),
		lls:       len(f.llDrivers),
		maxSweeps: f.MaxSweeps,
		bramMem:   f.bramMem,
	}

	// Input-mux slots: one resolved state index each.
	c.slotID = make([]int32, len(f.candID))
	for si, id := range f.candID {
		switch {
		case id >= 0:
			c.slotID[si] = id
		case f.inHL[si]:
			c.slotID[si] = c.constOne
		default:
			c.slotID[si] = c.constZero
		}
	}

	// LUTs.
	c.truth = make([]uint16, luts)
	c.inID = make([]int32, luts*device.LUTInputs)
	c.muxW = make([]uint64, luts)
	// FFs.
	ffs := clbs * device.FFsPerCLB
	c.ceID = make([]int32, ffs)
	c.dinvW = make([]uint64, ffs)
	c.ceHLConst = make([]int32, ffs)
	for clb := 0; clb < clbs; clb++ {
		cfg := &f.clbs[clb]
		for l := 0; l < device.LUTsPerCLB; l++ {
			li := clb*device.LUTsPerCLB + l
			c.truth[li] = cfg.lut[l].truth
			for in := 0; in < device.LUTInputs; in++ {
				c.inID[li*device.LUTInputs+in] = c.slotID[clb*device.InMuxWays+int(cfg.lut[l].inSel[in])]
			}
			if cfg.outMuxFF[l] {
				c.muxW[li] = ^uint64(0)
			}
		}
		for k := 0; k < device.FFsPerCLB; k++ {
			i := clb*device.FFsPerCLB + k
			ff := &cfg.ff[k]
			if f.ceHL[i] {
				c.ceHLConst[i] = c.constOne
			} else {
				c.ceHLConst[i] = c.constZero
			}
			switch ff.ceMode {
			case device.CEHalfLatch:
				c.ceID[i] = c.ceHLConst[i]
			case device.CERouted:
				c.ceID[i] = c.slotID[clb*device.InMuxWays+int(ff.ceSel)]
			case device.CEConstZero:
				c.ceID[i] = c.constZero
			default: // CEConstOne
				c.ceID[i] = c.constOne
			}
			if ff.dInv {
				c.dinvW[i] = ^uint64(0)
			}
		}
	}

	// Long-line membership CSR. Driver state index: CLB output net id, or
	// the BRAM dout bit's state word — disjoint ranges, so llDrv entries
	// are unambiguous values (the lane-overlay skip matches by value).
	c.llStart = make([]int32, c.lls+1)
	c.llKeep = make([]uint64, c.lls)
	for ll, drv := range f.llDrivers {
		c.llStart[ll+1] = c.llStart[ll] + int32(len(drv))
		if f.llHL[ll] {
			c.llKeep[ll] = ^uint64(0)
		}
	}
	c.llDrv = make([]int32, c.llStart[c.lls])
	c.bramLL = make([][]int32, blocks)
	for ll, drv := range f.llDrivers {
		at := c.llStart[ll]
		external := false
		for i, ref := range drv {
			if ref.bram {
				c.llDrv[at+int32(i)] = c.bramBase + int32(ref.idx*device.BRAMWidth+ref.out)
				c.bramLL[ref.idx] = append(c.bramLL[ref.idx], int32(ll))
				external = true
			} else {
				c.llDrv[at+int32(i)] = int32(ref.idx*4 + ref.out)
			}
		}
		if external {
			c.llExternal = append(c.llExternal, int32(ll))
		}
	}

	// Refresh edges.
	c.byOutStart = make([]int32, 4*clbs+1)
	for id, lls := range f.llByOut {
		c.byOutStart[id+1] = c.byOutStart[id] + int32(len(lls))
	}
	c.byOutLL = make([]int32, c.byOutStart[4*clbs])
	for id, lls := range f.llByOut {
		copy(c.byOutLL[c.byOutStart[id]:], lls)
	}

	// Evaluation plan.
	c.lutPos = append([]int32(nil), f.pos...)
	c.activeLUT = append([]bool(nil), f.activeLUT...)
	c.clbActive = append([]bool(nil), f.clbActive...)
	for _, li := range f.order {
		if f.activeLUT[li] {
			c.evalBase = append(c.evalBase, li)
			c.evalBasePos = append(c.evalBasePos, f.pos[li])
		}
	}
	for idx := 0; idx < clbs; idx++ {
		if f.clbActive[idx] {
			c.clockBase = append(c.clockBase, int32(idx))
		}
	}

	// Event-vector fanout: golden-active LUT consumers per dense net id.
	// Constants and BRAM dout words sit above the net range, so only real
	// nets get fanout rows — exactly the ids Settle and Clock can dirty.
	// Duplicate entries (a LUT tapping the same net twice) are harmless:
	// scheduling is idempotent through the sched state bytes.
	c.orderLUT = append([]int32(nil), f.order...)
	c.fanStart = make([]int32, nets+1)
	for _, li := range c.evalBase {
		for in := 0; in < device.LUTInputs; in++ {
			if id := c.inID[int(li)*device.LUTInputs+in]; id < int32(nets) {
				c.fanStart[id+1]++
			}
		}
	}
	for id := 0; id < nets; id++ {
		c.fanStart[id+1] += c.fanStart[id]
	}
	c.fanLUT = make([]int32, c.fanStart[nets])
	fanFill := make([]int32, nets)
	for _, li := range c.evalBase {
		for in := 0; in < device.LUTInputs; in++ {
			if id := c.inID[int(li)*device.LUTInputs+in]; id < int32(nets) {
				c.fanLUT[c.fanStart[id]+fanFill[id]] = li
				fanFill[id]++
			}
		}
	}

	// BRAM read ports.
	c.bramEnID = make([]int32, blocks)
	c.bramAddrID = make([]int32, blocks*device.BRAMAddrBits)
	for bi := 0; bi < blocks; bi++ {
		cfg := &f.brams[bi]
		c.bramEnID[bi] = c.compilePortNetID(f, bi, cfg.en)
		for j := 0; j < device.BRAMAddrBits; j++ {
			c.bramAddrID[bi*device.BRAMAddrBits+j] = c.compilePortNetID(f, bi, cfg.addr[j])
		}
	}

	// Canonical start state.
	c.canonState = make([]uint64, c.words)
	for i, b := range f.netVal {
		if b {
			c.canonState[i] = ^uint64(0)
		}
	}
	c.canonState[c.constOne] = ^uint64(0)
	for bi, w := range f.bramOut {
		base := int(c.bramBase) + bi*device.BRAMWidth
		for j := 0; j < device.BRAMWidth; j++ {
			if w&(1<<uint(j)) != 0 {
				c.canonState[base+j] = ^uint64(0)
			}
		}
	}
	c.canonLut = broadcastBools(f.lutVal)
	c.canonFF = broadcastBools(f.ffVal)
	// The canonical state comes out of Reset, which ends in a Settle;
	// finishing under the sweep bound proves the last sweep (or drain
	// round) confirmed a fixpoint. Hitting the bound leaves it ambiguous —
	// treated as mid-oscillation, the conservative side.
	c.canonSettled = f.lastSweeps < f.MaxSweeps
	return c
}

// compilePortNetID resolves a BRAM port-input field to the dense net id it
// samples, mirroring bramPortValue's row clamp. -1 means constant 0.
func (c *CompiledDesign) compilePortNetID(f *FPGA, bi int, sel bramPortSel) int32 {
	if !sel.valid {
		return -1
	}
	bc, blk := f.bramColBlk(bi)
	g := f.geom
	r := g.BRAMRowBase(blk) + int(sel.rowOff)
	if r >= g.Rows {
		r = g.Rows - 1
	}
	c2 := g.BRAMAdjCol(bc)
	return int32((r*g.Cols+c2)*4 + int(sel.out))
}

// Geometry returns the compiled design's device geometry.
func (c *CompiledDesign) Geometry() device.Geometry { return c.geom }
