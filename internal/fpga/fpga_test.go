package fpga

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/device"
)

// configure builds a device from a builder's full bitstream.
func configure(t *testing.T, b *ConfigBuilder) *FPGA {
	t.Helper()
	f := New(b.Geometry())
	if err := f.FullConfigure(b.FullBitstream()); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestUnconfiguredDeviceIsUnprogrammed(t *testing.T) {
	f := New(device.Tiny())
	if !f.Unprogrammed() {
		t.Fatal("fresh device should be unprogrammed")
	}
	if f.NetValue(0) {
		t.Fatal("unprogrammed device must read zero")
	}
}

func TestFullConfigureRequiresStartup(t *testing.T) {
	g := device.Tiny()
	f := New(g)
	b := NewConfigBuilder(g)
	if err := f.FullConfigure(b.PartialBitstream([]int{0})); err == nil {
		t.Fatal("FullConfigure accepted a partial bitstream")
	}
	if err := f.PartialConfigure(b.FullBitstream()); err == nil {
		t.Fatal("PartialConfigure accepted a full bitstream")
	}
}

func TestInverterReadsPin(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	// CLB (2,0): LUT0 = NOT(input0), input0 from slot 4 = west pin (2,0).
	b.SetLUT(2, 0, 0, TruthNot)
	b.RouteInput(2, 0, 0, 0, 4)
	f := configure(t, b)

	f.SetPin(g.PinWest(2, 0), false)
	f.Settle()
	if !f.OutValue(2, 0, 0) {
		t.Error("NOT(0) should be 1")
	}
	f.SetPin(g.PinWest(2, 0), true)
	f.Settle()
	if f.OutValue(2, 0, 0) {
		t.Error("NOT(1) should be 0")
	}
}

func TestBufferChainSettlesQuickly(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	// Row 0: CLB (0,c) buffers its west neighbour's output 0.
	for c := 0; c < g.Cols; c++ {
		b.SetLUT(0, c, 0, TruthBuf)
		b.RouteInput(0, c, 0, 0, 4) // west
	}
	f := configure(t, b)
	f.SetPin(g.PinWest(0, 0), true)
	sweeps := f.Settle()
	if !f.OutValue(0, g.Cols-1, 0) {
		t.Fatal("value did not propagate along the buffer chain")
	}
	if sweeps > 3 {
		t.Errorf("topo-ordered settle took %d sweeps for a forward chain", sweeps)
	}
	f.SetPin(g.PinWest(0, 0), false)
	f.Settle()
	if f.OutValue(0, g.Cols-1, 0) {
		t.Fatal("0 did not propagate")
	}
}

func TestFlipFlopPipeline(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	// Two-stage pipeline in row 3: pin -> FF(3,0) -> FF(3,1).
	b.SetLUT(3, 0, 0, TruthBuf)
	b.RouteInput(3, 0, 0, 0, 4) // west pin
	b.SetFF(3, 0, 0, false, device.CEConstOne, 0, false)
	b.SetOutMux(3, 0, 0, true)
	b.SetLUT(3, 1, 0, TruthBuf)
	b.RouteInput(3, 1, 0, 0, 4) // west neighbour = (3,0)
	b.SetFF(3, 1, 0, false, device.CEConstOne, 0, false)
	b.SetOutMux(3, 1, 0, true)
	f := configure(t, b)

	pin := g.PinWest(3, 0)
	f.SetPin(pin, true)
	if f.OutValue(3, 1, 0) {
		t.Fatal("pipeline output should be 0 before any clock")
	}
	f.Step()
	if f.OutValue(3, 1, 0) {
		t.Fatal("value arrived one cycle early")
	}
	if !f.OutValue(3, 0, 0) {
		t.Fatal("stage 1 did not capture")
	}
	f.Step()
	if !f.OutValue(3, 1, 0) {
		t.Fatal("value did not arrive after two cycles")
	}
	if f.Cycle() != 2 {
		t.Errorf("cycle counter = %d, want 2", f.Cycle())
	}
}

func TestFFInitAndReset(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	// FF with init=1, CE=const0: holds its init value forever.
	b.SetLUT(1, 1, 0, TruthZero)
	b.SetFF(1, 1, 0, true, device.CEConstZero, 0, false)
	b.SetOutMux(1, 1, 0, true)
	f := configure(t, b)
	if !f.OutValue(1, 1, 0) {
		t.Fatal("FF init value not loaded at start-up")
	}
	f.StepN(3)
	if !f.OutValue(1, 1, 0) {
		t.Fatal("CE=const0 FF changed state")
	}
	f.SetFFValue(1, 1, 0, false)
	f.Settle()
	if f.OutValue(1, 1, 0) {
		t.Fatal("direct FF poke not visible")
	}
	f.Reset()
	if !f.OutValue(1, 1, 0) {
		t.Fatal("Reset did not restore FF init value")
	}
}

func TestDInvert(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	b.SetLUT(2, 2, 1, TruthZero) // D = 0
	b.SetFF(2, 2, 1, false, device.CEConstOne, 0, true)
	b.SetOutMux(2, 2, 1, true)
	f := configure(t, b)
	f.Step()
	if !f.OutValue(2, 2, 1) {
		t.Fatal("dInv FF should load NOT(0) = 1")
	}
}

func TestLongLineRouting(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	// (5,0) computes NOT(pin) and drives row long line 0 of row 5.
	b.SetLUT(5, 0, 0, TruthNot)
	b.RouteInput(5, 0, 0, 0, 4)
	b.DriveLL(5, 0, 0, 0) // row channel 0, source = output 0
	// (5,7) buffers row long line channel 0 (slot 24).
	b.SetLUT(5, 7, 0, TruthBuf)
	b.RouteInput(5, 7, 0, 0, 24)
	f := configure(t, b)

	f.SetPin(g.PinWest(5, 0), false)
	f.Settle()
	if !f.OutValue(5, 7, 0) {
		t.Fatal("long line did not carry 1 across the row")
	}
	f.SetPin(g.PinWest(5, 0), true)
	f.Settle()
	if f.OutValue(5, 7, 0) {
		t.Fatal("long line did not carry 0")
	}
}

func TestLongLineWiredAND(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	// Two drivers on row line (6, ch1): (6,0) drives NOT(pinA), (6,3)
	// drives NOT(pinB). Reader at (6,6).
	for _, c := range []int{0, 3} {
		b.SetLUT(6, c, 0, TruthNot)
		b.DriveLL(6, c, 1, 0)
	}
	b.RouteInput(6, 0, 0, 0, 4)  // west pin
	b.RouteInput(6, 3, 0, 0, 12) // north neighbour (5,3) out0 = const 0
	b.SetLUT(6, 6, 0, TruthBuf)
	b.RouteInput(6, 6, 0, 0, 25) // row LL ch 1
	f := configure(t, b)

	f.SetPin(g.PinWest(6, 0), false) // driver A = 1, driver B = NOT(0)=1
	f.Settle()
	if !f.OutValue(6, 6, 0) {
		t.Fatal("wired-AND of 1,1 should be 1")
	}
	f.SetPin(g.PinWest(6, 0), true) // driver A = 0
	f.Settle()
	if f.OutValue(6, 6, 0) {
		t.Fatal("wired-AND of 0,1 should be 0")
	}
}

func TestUndrivenInputReadsHalfLatchOne(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	// CLB (2,2): slot 20 (hex north, r<6) is undriven -> half-latch 1.
	b.SetLUT(2, 2, 0, TruthBuf)
	b.RouteInput(2, 2, 0, 0, 20)
	f := configure(t, b)
	f.Settle()
	if !f.OutValue(2, 2, 0) {
		t.Fatal("undriven input should read half-latch constant 1")
	}
	// Upset the keeper: the constant becomes 0. Readback sees nothing.
	before := f.ConfigMemory().Clone()
	f.FlipHalfLatch(HalfLatchSite{Kind: HLInput, R: 2, C: 2, Slot: 20})
	f.Settle()
	if f.OutValue(2, 2, 0) {
		t.Fatal("half-latch upset had no effect")
	}
	if !f.ConfigMemory().Equal(before) {
		t.Fatal("half-latch upset disturbed configuration memory (readback would see it)")
	}
}

func TestHalfLatchCENotRestoredByPartialConfig(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	// Toggle FF: D = NOT(own out0). CE from half-latch (the paper's Fig. 14
	// scenario).
	b.SetLUT(4, 4, 0, TruthNot)
	b.RouteInput(4, 4, 0, 0, 0) // own output 0 (registered)
	b.SetFF(4, 4, 0, false, device.CEHalfLatch, 0, false)
	b.SetOutMux(4, 4, 0, true)
	f := configure(t, b)

	f.Step()
	if !f.OutValue(4, 4, 0) {
		t.Fatal("toggle FF did not toggle")
	}
	// Proton upsets the CE keeper: the FF freezes.
	site := HalfLatchSite{Kind: HLCE, R: 4, C: 4, FF: 0}
	f.FlipHalfLatch(site)
	v := f.OutValue(4, 4, 0)
	f.StepN(5)
	if f.OutValue(4, 4, 0) != v {
		t.Fatal("FF with upset CE keeper should be frozen")
	}
	// Partial reconfiguration of the CLB's frames does NOT recover it.
	var frames []int
	for cb := 0; cb < device.CLBConfigBits; cb += device.BitsPerCLBRow {
		frames = append(frames, g.CLBBitOf(4, 4, cb).Frame(g))
	}
	if err := f.PartialConfigure(bitstream.Partial(f.ConfigMemory(), frames)); err != nil {
		t.Fatal(err)
	}
	f.StepN(2)
	if f.OutValue(4, 4, 0) != v {
		t.Fatal("partial reconfiguration must not restore half-latches")
	}
	// Full reconfiguration (start-up sequence) recovers.
	if err := f.FullConfigure(b.FullBitstream()); err != nil {
		t.Fatal(err)
	}
	f.Step()
	if !f.OutValue(4, 4, 0) {
		t.Fatal("full reconfiguration did not restore the half-latch")
	}
	// RestoreHalfLatch models spontaneous recovery.
	f.FlipHalfLatch(site)
	f.RestoreHalfLatch(site)
	if !f.HalfLatchValue(site) {
		t.Fatal("RestoreHalfLatch did not restore the keeper")
	}
}

func TestHalfLatchSitesCensus(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	b.SetFF(0, 0, 0, false, device.CERouted, 4, false)
	b.SetFF(0, 0, 1, false, device.CEConstOne, 0, false)
	// FF (0,0,2) stays in default CEHalfLatch mode.
	f := configure(t, b)
	sites := f.HalfLatchSites()
	var ce, in, ll int
	for _, s := range sites {
		switch s.Kind {
		case HLCE:
			ce++
		case HLInput:
			in++
		case HLLongLine:
			ll++
		}
	}
	// Every FF not explicitly moved off half-latch CE contributes one site.
	wantCE := g.CLBs()*device.FFsPerCLB - 2
	if ce != wantCE {
		t.Errorf("CE keeper census = %d, want %d", ce, wantCE)
	}
	// Hex-north taps of rows 0..5 are undriven.
	wantIn := device.HexDistance * g.Cols * 4
	if in != wantIn {
		t.Errorf("input keeper census = %d, want %d", in, wantIn)
	}
	// No long line is driven in this design.
	wantLL := device.LongLinesPerRow*g.Rows + device.LongLinesPerCol*g.Cols
	if ll != wantLL {
		t.Errorf("long-line keeper census = %d, want %d", ll, wantLL)
	}
}

func TestInjectBitChangesBehaviourAndRepairRestoresIt(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	b.SetLUT(2, 0, 0, TruthNot)
	b.RouteInput(2, 0, 0, 0, 4)
	// Tie the unused inputs to a stable 0 (north neighbour's constant-0
	// output) so the injected truth bit cannot form a feedback oscillation.
	b.RouteInput(2, 0, 0, 1, 12)
	b.RouteInput(2, 0, 0, 2, 12)
	b.RouteInput(2, 0, 0, 3, 12)
	f := configure(t, b)
	golden := f.ConfigMemory().Clone()

	f.SetPin(g.PinWest(2, 0), true)
	f.Settle()
	if f.OutValue(2, 0, 0) {
		t.Fatal("precondition: NOT(1) = 0")
	}
	// Flip the truth-table bit the current input addresses. Input 0 = 1,
	// inputs 1..3 read a constant 0, so the index is 1.
	a := g.LUTBitAddr(2, 0, 0, 1)
	f.InjectBit(a)
	f.Settle()
	if !f.OutValue(2, 0, 0) {
		t.Fatal("injected LUT bit did not change behaviour")
	}
	// Repair via partial reconfiguration of the damaged frame, as the
	// scrubber would.
	port := NewPort(f)
	if err := port.WriteFrame(golden.Frame(a.Frame(g))); err != nil {
		t.Fatal(err)
	}
	f.Settle()
	if f.OutValue(2, 0, 0) {
		t.Fatal("frame repair did not restore behaviour")
	}
	if !f.ConfigMemory().Equal(golden) {
		t.Fatal("configuration memory not restored")
	}
}

func TestInjectPadBitIsBehaviourNeutral(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	b.SetLUT(2, 0, 0, TruthNot)
	b.RouteInput(2, 0, 0, 0, 4)
	f := configure(t, b)
	f.SetPin(g.PinWest(2, 0), true)
	f.Settle()
	// A padding bit inside the same CLB: flips must not change behaviour
	// but must be visible to readback (frame CRC).
	a := g.CLBBitOf(2, 0, device.CBModeledBits+5)
	port := NewPort(f)
	before, _ := port.ReadFrame(a.Frame(g))
	f.InjectBit(a)
	f.Settle()
	if f.OutValue(2, 0, 0) {
		t.Fatal("pad bit changed behaviour")
	}
	after, _ := port.ReadFrame(a.Frame(g))
	if before.CRC() == after.CRC() {
		t.Fatal("pad-bit upset invisible to readback CRC")
	}
}

func TestReadbackDoesNotSeeFFState(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	b.SetLUT(3, 3, 0, TruthNot)
	b.RouteInput(3, 3, 0, 0, 0)
	b.SetFF(3, 3, 0, false, device.CEConstOne, 0, false)
	b.SetOutMux(3, 3, 0, true)
	f := configure(t, b)
	port := NewPort(f)
	frames1, err := port.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	f.StepN(3) // toggle FF changes user state
	frames2, err := port.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range frames1 {
		if frames1[i].CRC() != frames2[i].CRC() {
			t.Fatalf("frame %d readback changed with FF state", i)
		}
	}
}

func TestStuckAtFault(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	b.SetLUT(2, 0, 0, TruthBuf)
	b.RouteInput(2, 0, 0, 0, 4)
	f := configure(t, b)
	f.SetPin(g.PinWest(2, 0), false)
	f.Settle()
	if f.OutValue(2, 0, 0) {
		t.Fatal("precondition failed")
	}
	seg := device.Segment{R: 2, C: 0, S: 4}
	f.SetStuck(seg, true)
	f.Settle()
	if !f.OutValue(2, 0, 0) {
		t.Fatal("stuck-at-1 not observed")
	}
	if got := f.StuckFaults(); len(got) != 1 || !got[seg] {
		t.Fatalf("StuckFaults = %v", got)
	}
	f.ClearStuck(seg)
	f.Settle()
	if f.OutValue(2, 0, 0) {
		t.Fatal("ClearStuck did not remove the fault")
	}
	f.SetStuck(seg, false)
	f.SetPin(g.PinWest(2, 0), true)
	f.Settle()
	if f.OutValue(2, 0, 0) {
		t.Fatal("stuck-at-0 not observed")
	}
	f.ClearAllStuck()
	f.Settle()
	if !f.OutValue(2, 0, 0) {
		t.Fatal("ClearAllStuck did not remove the fault")
	}
}

func TestUnprogrammedUpsetAndRecovery(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	b.SetLUT(2, 0, 0, TruthNot)
	b.RouteInput(2, 0, 0, 0, 4)
	f := configure(t, b)
	f.Settle()
	if !f.OutValue(2, 0, 0) {
		t.Fatal("precondition")
	}
	f.UpsetControlLogic()
	if f.OutValue(2, 0, 0) {
		t.Fatal("unprogrammed device should read 0")
	}
	port := NewPort(f)
	fr, err := port.ReadFrame(0)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Data[0] != 0xFF {
		t.Fatal("unprogrammed readback should return junk")
	}
	if err := port.WriteFrame(bitstream.Frame{Index: 0, Data: make([]byte, g.FrameBytes())}); err == nil {
		t.Fatal("partial configuration of an unprogrammed device should fail")
	}
	if err := port.FullConfigure(b.FullBitstream()); err != nil {
		t.Fatal(err)
	}
	f.Settle()
	if !f.OutValue(2, 0, 0) {
		t.Fatal("full reconfiguration did not recover the device")
	}
}

func TestSRLShiftAndReadbackHazard(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	// SRL at (7,0): shift-in from west pin (input 3), tap addressed by
	// inputs 0..2 which read own output 0; initial content zero. Route
	// inputs 0..2 to slot 16 (south neighbour... row 7 is the last row:
	// slot 16 is a south pin held at 0) so the tap reads address 0: the
	// most recent shift-in.
	b.SetLUT(7, 0, 0, TruthZero)
	b.SetSRL(7, 0, 0, true)
	b.RouteInput(7, 0, 0, 3, 4)  // din = west pin
	b.RouteInput(7, 0, 0, 0, 16) // south pin (0)
	b.RouteInput(7, 0, 0, 1, 16)
	b.RouteInput(7, 0, 0, 2, 16)
	b.SetFF(7, 0, 0, false, device.CEConstOne, 0, false)
	f := configure(t, b)

	f.SetPin(g.PinWest(7, 0), true)
	f.Step()
	if !f.OutValue(7, 0, 0) {
		t.Fatal("SRL did not shift in a 1")
	}
	// The shift is visible in configuration memory (live design state).
	if f.ConfigMemory().Field(g.LUTBitAddr(7, 0, 0, 0), 1) != 1 {
		t.Fatal("SRL state not reflected in configuration memory")
	}
	// Readback of the truth-table frame while the clock runs corrupts the
	// shift register (paper §II-C).
	port := NewPort(f)
	port.ClockRunning = true
	port.HazardousReadback = true
	frame := g.LUTBitAddr(7, 0, 0, 0).Frame(g)
	if _, err := port.ReadFrame(frame); err != nil {
		t.Fatal(err)
	}
	haz := port.Hazards()
	if len(haz) == 0 || haz[0].Kind != HazardSRLCorrupted {
		t.Fatalf("expected SRL hazard, got %v", haz)
	}
	f.Settle()
	if f.OutValue(7, 0, 0) {
		t.Fatal("hazard should have corrupted the SRL tap value")
	}
	// With the clock stopped, readback is safe.
	port.ClockRunning = false
	f.SetPin(g.PinWest(7, 0), true)
	f.Step() // shift back in a 1
	if _, err := port.ReadFrame(frame); err != nil {
		t.Fatal(err)
	}
	if len(port.Hazards()) != 0 {
		t.Fatal("clock-stopped readback should be hazard-free")
	}
	if !f.OutValue(7, 0, 0) {
		t.Fatal("clock-stopped readback disturbed the SRL")
	}
}

func TestBRAMReadWriteAndInterference(t *testing.T) {
	g := device.Tiny() // 8 rows, 1 BRAM col, 1 block, adjacent CLB col 4
	b := NewConfigBuilder(g)
	adj := g.BRAMAdjCol(0)
	// Enable: CLB (0,adj) out0 = const 1.
	b.SetLUT(0, adj, 0, TruthOne)
	b.BindBRAMEN(0, 0, 0, 0)
	// Address and WE default to 0 (unbound addr bits are invalid -> 0);
	// read-only port at address 0.
	b.SetBRAMWord(0, 0, 0, 0xBEEF)
	// dout bit 0 drives column long line ch 0; reader at (2,adj) slot 28.
	b.DriveBRAMDout(0, 0, 0, 0)
	b.SetLUT(2, adj, 0, TruthBuf)
	b.RouteInput(2, adj, 0, 0, 28)
	f := configure(t, b)

	f.Step()
	if f.BRAMOut(0) != 0xBEEF {
		t.Fatalf("BRAM dout = %#x, want 0xBEEF", f.BRAMOut(0))
	}
	if !f.OutValue(2, adj, 0) {
		t.Fatal("BRAM dout bit 0 did not reach the fabric via the long line")
	}
	if f.BRAMWord(0, 0) != 0xBEEF {
		t.Fatal("BRAM content cache wrong")
	}

	// Reading a content frame back while the clock runs corrupts the output
	// register on the next access.
	port := NewPort(f)
	contentFrame := g.BRAMContentBitAddr(0, 0, 0, 0).Frame(g)
	if _, err := port.ReadFrame(contentFrame); err != nil {
		t.Fatal(err)
	}
	haz := port.Hazards()
	if len(haz) != 1 || haz[0].Kind != HazardBRAMInterference {
		t.Fatalf("expected BRAM interference hazard, got %v", haz)
	}
	f.Step()
	if f.BRAMOut(0) != 0 {
		t.Fatal("interference should corrupt the BRAM output register")
	}
	f.Step()
	if f.BRAMOut(0) != 0xBEEF {
		t.Fatal("BRAM should recover on the following access")
	}
}

func TestBRAMWritePath(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	adj := g.BRAMAdjCol(0)
	b.SetLUT(0, adj, 0, TruthOne) // en = 1
	b.BindBRAMEN(0, 0, 0, 0)
	// WE from CLB (1,adj) out0 = buffered west pin... row 1, col 4 reads
	// west neighbour (1,3) which is const 0 unless configured; use a
	// LUT-one to write always.
	b.SetLUT(1, adj, 0, TruthOne)
	b.BindBRAMWE(0, 0, 1, 0)
	// din bit 0 from CLB (3,adj) out0 = const 1.
	b.SetLUT(3, adj, 0, TruthOne)
	b.BindBRAMDin(0, 0, 0, 3, 0)
	f := configure(t, b)

	f.Step()
	if f.BRAMWord(0, 0) != 1 {
		t.Fatalf("BRAM write-through failed: word0 = %#x", f.BRAMWord(0, 0))
	}
	if f.BRAMOut(0) != 1 {
		t.Fatalf("BRAM dout after write = %#x, want 1 (write-first then register)", f.BRAMOut(0))
	}
	// The write landed in configuration memory too — the §IV-B
	// read-modify-write problem: scrub repair with the original frame would
	// wipe live state.
	if f.ConfigMemory().Field(g.BRAMContentBitAddr(0, 0, 0, 0), 1) != 1 {
		t.Fatal("BRAM write not reflected in configuration memory")
	}
}

func TestPortTimingAccounting(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	f := configure(t, b)
	port := NewPort(f)
	if _, err := port.ReadFrame(0); err != nil {
		t.Fatal(err)
	}
	if err := port.WriteFrame(f.ConfigMemory().Frame(1)); err != nil {
		t.Fatal(err)
	}
	want := DefaultFrameReadTime + DefaultFrameWriteTime
	if port.Elapsed() != want {
		t.Errorf("elapsed = %v, want %v", port.Elapsed(), want)
	}
	r, w := port.Stats()
	if r != 1 || w != 1 {
		t.Errorf("stats = (%d,%d), want (1,1)", r, w)
	}
	port.ResetElapsed()
	if port.Elapsed() != 0 {
		t.Error("ResetElapsed failed")
	}
	if _, err := port.ReadFrame(-1); err == nil {
		t.Error("out-of-range readback accepted")
	}
}

func TestMuxAndMajorityTruthTables(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	// Majority voter at (6,2): inputs 0,1,2 from west/north/south
	// neighbours' out0. Configure neighbours as constants.
	b.SetLUT(6, 1, 0, TruthOne) // west = 1
	b.SetLUT(5, 2, 0, TruthOne) // north = 1
	b.SetLUT(7, 2, 0, TruthZero)
	b.SetLUT(6, 2, 0, TruthMaj3)
	b.RouteInput(6, 2, 0, 0, 4)  // west
	b.RouteInput(6, 2, 0, 1, 12) // north
	b.RouteInput(6, 2, 0, 2, 16) // south
	f := configure(t, b)
	f.Settle()
	if !f.OutValue(6, 2, 0) {
		t.Fatal("maj(1,1,0) should be 1")
	}
	// Break the north input to 0: maj(1,0,0) = 0.
	for i := 0; i < device.LUTBits; i++ {
		f.ConfigMemory().Set(g.LUTBitAddr(5, 2, 0, i), false)
	}
	f.reDecodeBit(g.LUTBitAddr(5, 2, 0, 0))
	f.Settle()
	if f.OutValue(6, 2, 0) {
		t.Fatal("maj(1,0,0) should be 0")
	}
}

func TestRMWRepairPreservesLiveSRLState(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	// SRL shift register at (7,0): live state in configuration memory.
	b.SetLUT(7, 0, 0, TruthZero)
	b.SetSRL(7, 0, 0, true)
	b.RouteInput(7, 0, 0, 3, 4)  // din = west pin
	b.RouteInput(7, 0, 0, 0, 16) // tap address 0 (south pin, constant 0)
	b.RouteInput(7, 0, 0, 1, 16)
	b.RouteInput(7, 0, 0, 2, 16)
	b.SetFF(7, 0, 0, false, device.CEConstOne, 0, false)
	// A plain LUT in the same COLUMN (same configuration frames) to take
	// an SEU.
	b.SetLUT(6, 0, 0, TruthNot)
	b.RouteInput(6, 0, 0, 0, 16) // south neighbour = the SRL's output
	f := configure(t, b)
	golden := f.ConfigMemory().Clone()

	// Run: shift a 1 in, so live SRL state differs from the init value.
	f.SetPin(g.PinWest(7, 0), true)
	f.Step()
	if !f.OutValue(7, 0, 0) {
		t.Fatal("precondition: SRL should hold a 1")
	}
	// An SEU hits the neighbouring LUT's truth bits — same frame as the
	// SRL's live content bit.
	hit := g.LUTBitAddr(6, 0, 0, 0)
	f.InjectBit(hit)
	frameIdx := hit.Frame(g)

	// Plain repair would clobber the SRL's live content back to zero.
	// RMW repair with a mask over the SRL's truth bits preserves it.
	mask := make([]byte, g.FrameBytes())
	for i := 0; i < device.LUTBits; i++ {
		a := g.LUTBitAddr(7, 0, 0, i)
		if a.Frame(g) == frameIdx {
			off := a.Offset(g)
			mask[off>>3] |= 1 << (uint(off) & 7)
		}
	}
	port := NewPort(f)
	port.ClockRunning = false // stop the clock for the RMW, per §II-C
	if err := port.RepairFrameRMW(golden.Frame(frameIdx), mask); err != nil {
		t.Fatal(err)
	}
	// The SEU is repaired...
	if f.ConfigMemory().Get(hit) != golden.Get(hit) {
		t.Fatal("RMW did not repair the upset bit")
	}
	// ...and the live SRL state survived.
	f.Settle()
	if !f.OutValue(7, 0, 0) {
		t.Fatal("RMW repair clobbered live SRL state")
	}

	// Contrast: plain frame repair resets the SRL to its init value.
	f.InjectBit(hit)
	if err := port.WriteFrame(golden.Frame(frameIdx)); err != nil {
		t.Fatal(err)
	}
	f.Settle()
	if f.OutValue(7, 0, 0) {
		t.Fatal("plain repair should have clobbered the SRL (that is the §IV-B problem)")
	}
}
