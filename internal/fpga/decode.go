package fpga

import (
	"repro/internal/device"
)

// decodeAll re-decodes every CLB and BRAM from configuration memory and
// rebuilds all derived tables.
func (f *FPGA) decodeAll() {
	for i := range f.llDrivers {
		f.llDrivers[i] = f.llDrivers[i][:0]
	}
	g := f.geom
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			f.decodeCLB(r, c, false)
		}
	}
	for bc := 0; bc < g.BRAMCols; bc++ {
		for blk := 0; blk < g.BRAMBlocksPerCol(); blk++ {
			f.decodeBRAM(bc, blk, false)
		}
	}
	// Rebuild driver lists in one pass now that configs are decoded.
	f.rebuildLLDrivers()
	f.loadBRAMContentAll()
	f.orderStale = true
	f.fanStale = true
}

// redecodeFrame re-decodes the resources a just-written frame configures.
// Used by partial reconfiguration, which touches a single column per frame.
func (f *FPGA) redecodeFrame(frame int) {
	g := f.geom
	switch {
	case frame < g.CLBFrames():
		c := frame / device.FramesPerCLBCol
		for r := 0; r < g.Rows; r++ {
			f.decodeCLB(r, c, true)
		}
		f.rebuildLLByOut()
	case frame < g.CLBFrames()+g.BRAMFrames():
		bf := frame - g.CLBFrames()
		bc := bf / device.BRAMFramesPerCol
		for blk := 0; blk < g.BRAMBlocksPerCol(); blk++ {
			f.decodeBRAM(bc, blk, true)
			f.loadBRAMContent(f.bramIndex(bc, blk))
		}
		f.rebuildLLByOut()
	}
	f.orderStale = true
}

// decodeCLB decodes the CLB at (r, c). When incremental is true its
// long-line driver entries are updated in place.
func (f *FPGA) decodeCLB(r, c int, incremental bool) {
	g := f.geom
	idx := r*g.Cols + c
	if incremental {
		f.removeLLDriversOf(idx)
		// Unsubscribe against the old decode before it is overwritten.
		if f.eventSim && !f.fanStale {
			f.dropFanoutOf(idx)
		}
	}
	var cfg clbCfg
	for l := 0; l < device.LUTsPerCLB; l++ {
		l := l
		cfg.lut[l].truth = uint16(f.cm.Gather(device.LUTBits, func(i int) device.BitAddr {
			return g.LUTBitAddr(r, c, l, i)
		}))
		for in := 0; in < device.LUTInputs; in++ {
			in := in
			cfg.lut[l].inSel[in] = uint8(f.cm.Gather(device.InMuxSelBits, func(i int) device.BitAddr {
				return g.InMuxBitAddr(r, c, l*device.LUTInputs+in, i)
			}))
		}
		cfg.lut[l].srl = f.cm.Get(g.LUTModeBitAddr(r, c, l))
	}
	for k := 0; k < device.FFsPerCLB; k++ {
		cfg.ff[k].init = f.cm.Get(g.FFBitAddr(r, c, k, device.FFInitBit))
		mode := uint8(0)
		if f.cm.Get(g.FFBitAddr(r, c, k, device.FFCEModeLo)) {
			mode |= 1
		}
		if f.cm.Get(g.FFBitAddr(r, c, k, device.FFCEModeHi)) {
			mode |= 2
		}
		cfg.ff[k].ceMode = device.CEMode(mode)
		k := k
		cfg.ff[k].ceSel = uint8(f.cm.Gather(device.InMuxSelBits, func(i int) device.BitAddr {
			return g.FFBitAddr(r, c, k, device.FFCESelBase+i)
		}))
		cfg.ff[k].dInv = f.cm.Get(g.FFBitAddr(r, c, k, device.FFDInvBit))
	}
	for o := 0; o < device.OutputsPerCLB; o++ {
		cfg.outMuxFF[o] = f.cm.Get(g.OutMuxBitAddr(r, c, o))
	}
	for d := 0; d < device.LLDriversPerCLB; d++ {
		cfg.ll[d].enable = f.cm.Get(g.LLDrvBitAddr(r, c, d, device.LLEnableBit))
		d := d
		cfg.ll[d].src = uint8(f.cm.Gather(2, func(i int) device.BitAddr {
			return g.LLDrvBitAddr(r, c, d, device.LLSrcBase+i)
		}))
	}
	f.clbs[idx] = cfg
	clbActive := false
	for l := 0; l < device.LUTsPerCLB; l++ {
		li := int32(idx*device.LUTsPerCLB + l)
		f.activeLUT[li] = cfg.lut[l].truth != 0 || cfg.lut[l].srl || cfg.outMuxFF[l]
		if f.activeLUT[li] {
			clbActive = true
		}
		if cfg.ff[l] != (ffCfg{}) {
			clbActive = true
		}
	}
	f.clbActive[idx] = clbActive
	if !f.dirtyCLB[idx] {
		f.dirtyCLB[idx] = true
		f.dirtyCLBList = append(f.dirtyCLBList, int32(idx))
	}
	f.evalStale = true
	if incremental {
		f.addLLDriversOf(r, c, idx)
		if f.eventSim {
			if !f.fanStale {
				f.addFanoutOf(idx)
			}
			// Mirror the dirty-CLB forcing: the decoded CLB settles once
			// even if it left the active set, and any long line it can
			// drive may have gained or lost a driver.
			f.scheduleCLB(idx)
			for d := 0; d < device.LLDriversPerCLB; d++ {
				f.markLLStale(f.llIndexOf(r, c, d))
			}
		}
	}
}

// llIndexOf returns the dense long-line index of driver slot d of the CLB
// at (r, c): slots 0..3 drive row channels, 4..7 column channels.
func (f *FPGA) llIndexOf(r, c, d int) int {
	if d < device.LongLinesPerRow {
		return r*device.LongLinesPerRow + d
	}
	return device.LongLinesPerRow*f.geom.Rows + c*device.LongLinesPerCol + (d - device.LongLinesPerRow)
}

// llNetID maps a dense long-line index to its dense net ID.
func (f *FPGA) llNetID(ll int) int {
	return 4*f.geom.CLBs() + ll
}

// rebuildLLByOut refreshes the reverse driver indexes used by Settle: CLB
// output -> driven lines, and BRAM block -> driven lines.
func (f *FPGA) rebuildLLByOut() {
	if f.llByOut == nil {
		f.llByOut = make([][]int32, 4*f.geom.CLBs())
	}
	if f.llByBRAM == nil {
		f.llByBRAM = make([][]int32, len(f.brams))
	}
	for i := range f.llByOut {
		f.llByOut[i] = f.llByOut[i][:0]
	}
	for i := range f.llByBRAM {
		f.llByBRAM[i] = f.llByBRAM[i][:0]
	}
	for ll, drv := range f.llDrivers {
		for _, ref := range drv {
			if ref.bram {
				f.llByBRAM[ref.idx] = append(f.llByBRAM[ref.idx], int32(ll))
			} else {
				id := ref.idx*4 + ref.out
				f.llByOut[id] = append(f.llByOut[id], int32(ll))
			}
		}
	}
}

func (f *FPGA) removeLLDriversOf(clbIdx int) {
	g := f.geom
	r, c := clbIdx/g.Cols, clbIdx%g.Cols
	for d := 0; d < device.LLDriversPerCLB; d++ {
		ll := f.llIndexOf(r, c, d)
		drv := f.llDrivers[ll]
		out := drv[:0]
		for _, ref := range drv {
			if !ref.bram && ref.idx == clbIdx {
				continue
			}
			out = append(out, ref)
		}
		f.llDrivers[ll] = out
	}
}

func (f *FPGA) addLLDriversOf(r, c, clbIdx int) {
	cfg := &f.clbs[clbIdx]
	for d := 0; d < device.LLDriversPerCLB; d++ {
		if !cfg.ll[d].enable {
			continue
		}
		ll := f.llIndexOf(r, c, d)
		f.llDrivers[ll] = append(f.llDrivers[ll], driverRef{idx: clbIdx, out: int(cfg.ll[d].src)})
	}
}

func (f *FPGA) rebuildLLDrivers() {
	for i := range f.llDrivers {
		f.llDrivers[i] = f.llDrivers[i][:0]
	}
	g := f.geom
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			f.addLLDriversOf(r, c, r*g.Cols+c)
		}
	}
	for bi := range f.brams {
		f.addBRAMDrivers(bi)
	}
	f.rebuildLLByOut()
}

// bramIndex returns the dense block index of block blk in BRAM column bc.
func (f *FPGA) bramIndex(bc, blk int) int { return bc*f.geom.BRAMBlocksPerCol() + blk }

// bramColBlk is the inverse of bramIndex.
func (f *FPGA) bramColBlk(bi int) (bc, blk int) {
	per := f.geom.BRAMBlocksPerCol()
	return bi / per, bi % per
}

// decodeBRAM decodes port configuration of one block.
func (f *FPGA) decodeBRAM(bc, blk int, incremental bool) {
	g := f.geom
	bi := f.bramIndex(bc, blk)
	if incremental {
		f.removeBRAMDrivers(bi)
	}
	var cfg bramCfg
	sel := func(base, j int) bramPortSel {
		k := base + j*device.BRAMPortInBits
		raw := f.cm.Gather(device.BRAMPortInBits, func(i int) device.BitAddr {
			return g.BRAMPortBitAddr(bc, blk, k+i)
		})
		return bramPortSel{
			valid:  raw&1 != 0,
			rowOff: uint8(raw>>1) & 7,
			out:    uint8(raw>>4) & 3,
		}
	}
	for j := 0; j < device.BRAMAddrBits; j++ {
		cfg.addr[j] = sel(device.BRAMPortAddrBase, j)
	}
	for j := 0; j < device.BRAMWidth; j++ {
		cfg.din[j] = sel(device.BRAMPortDinBase, j)
	}
	cfg.we = sel(device.BRAMPortWEBase, 0)
	cfg.en = sel(device.BRAMPortENBase, 0)
	for ch := 0; ch < device.LongLinesPerCol; ch++ {
		k := device.BRAMPortDoutBase + ch*device.BRAMDoutLLBits
		raw := f.cm.Gather(device.BRAMDoutLLBits, func(i int) device.BitAddr {
			return g.BRAMPortBitAddr(bc, blk, k+i)
		})
		cfg.dout[ch].enable = raw&1 != 0
		cfg.dout[ch].bit = uint8(raw>>1) & 15
	}
	f.brams[bi] = cfg
	if incremental {
		f.addBRAMDrivers(bi)
		if f.eventSim {
			// Any line in the adjacent column may have gained or lost this
			// block's driver.
			adj := f.geom.BRAMAdjCol(bc)
			for ch := 0; ch < device.LongLinesPerCol; ch++ {
				f.markLLStale(device.LongLinesPerRow*f.geom.Rows + adj*device.LongLinesPerCol + ch)
			}
		}
	}
}

func (f *FPGA) addBRAMDrivers(bi int) {
	bc, _ := f.bramColBlk(bi)
	adj := f.geom.BRAMAdjCol(bc)
	cfg := &f.brams[bi]
	for ch := 0; ch < device.LongLinesPerCol; ch++ {
		if !cfg.dout[ch].enable {
			continue
		}
		ll := device.LongLinesPerRow*f.geom.Rows + adj*device.LongLinesPerCol + ch
		f.llDrivers[ll] = append(f.llDrivers[ll], driverRef{bram: true, idx: bi, out: int(cfg.dout[ch].bit)})
	}
}

func (f *FPGA) removeBRAMDrivers(bi int) {
	bc, _ := f.bramColBlk(bi)
	adj := f.geom.BRAMAdjCol(bc)
	for ch := 0; ch < device.LongLinesPerCol; ch++ {
		ll := device.LongLinesPerRow*f.geom.Rows + adj*device.LongLinesPerCol + ch
		drv := f.llDrivers[ll]
		out := drv[:0]
		for _, ref := range drv {
			if ref.bram && ref.idx == bi {
				continue
			}
			out = append(out, ref)
		}
		f.llDrivers[ll] = out
	}
}

// loadBRAMContent refreshes the cached content of block bi from
// configuration memory.
func (f *FPGA) loadBRAMContent(bi int) {
	bc, blk := f.bramColBlk(bi)
	g := f.geom
	for w := 0; w < device.BRAMWords; w++ {
		var v uint16
		for i := 0; i < device.BRAMWidth; i++ {
			if f.cm.Get(g.BRAMContentBitAddr(bc, blk, w, i)) {
				v |= 1 << uint(i)
			}
		}
		f.bramMem[bi][w] = v
	}
}

func (f *FPGA) loadBRAMContentAll() {
	for bi := range f.brams {
		f.loadBRAMContent(bi)
	}
}

// storeBRAMWord writes a word both to the cache and to configuration
// memory — BRAM content is configuration state, which is exactly why
// reading it back while the design runs is hazardous.
func (f *FPGA) storeBRAMWord(bi, w int, v uint16) {
	f.bramMem[bi][w] = v
	bc, blk := f.bramColBlk(bi)
	g := f.geom
	for i := 0; i < device.BRAMWidth; i++ {
		f.cm.Set(g.BRAMContentBitAddr(bc, blk, w, i), v&(1<<uint(i)) != 0)
	}
}

// rebuildOrder computes a topological LUT evaluation order over the decoded
// netlist. Cycles (legal only under corruption) are appended arbitrarily;
// Settle's fixpoint loop handles them.
func (f *FPGA) rebuildOrder() {
	g := f.geom
	n := g.CLBs() * device.LUTsPerCLB
	// Dependency: LUT li consumes nets; a net that is a combinational CLB
	// output maps back to its producing LUT. Registered outputs and pins
	// and long lines driven by registered outputs are cut points.
	indeg := make([]int32, n)
	adj := make([][]int32, n) // producer -> consumers
	addEdge := func(from, to int32) {
		adj[from] = append(adj[from], to)
		indeg[to]++
	}
	// producerOfNet returns the producing LUT of a dense net ID, or -1 if
	// the net is registered/pin/multi-driven-long-line (treated as cut).
	producerOfNet := func(id int32) int32 {
		if id < 0 {
			return -1
		}
		clbOuts := int32(4 * g.CLBs())
		if id < clbOuts {
			clbIdx := id / 4
			o := int(id & 3)
			if f.clbs[clbIdx].outMuxFF[o] {
				return -1 // registered: not a combinational dependency
			}
			return clbIdx*4 + int32(o)
		}
		// Long line: conservative — depends on all its drivers; to keep the
		// graph simple we treat single-driver combinational lines as edges
		// and everything else as cut points.
		llBase := clbOuts
		llCount := int32(device.LongLinesPerRow*g.Rows + device.LongLinesPerCol*g.Cols)
		if id < llBase+llCount {
			drv := f.llDrivers[id-llBase]
			if len(drv) == 1 && !drv[0].bram {
				ref := drv[0]
				if !f.clbs[ref.idx].outMuxFF[ref.out] {
					return int32(ref.idx*4 + ref.out)
				}
			}
		}
		return -1
	}
	for clbIdx := 0; clbIdx < g.CLBs(); clbIdx++ {
		cfg := &f.clbs[clbIdx]
		for l := 0; l < device.LUTsPerCLB; l++ {
			li := int32(clbIdx*4 + l)
			for in := 0; in < device.LUTInputs; in++ {
				src := f.candID[clbIdx*device.InMuxWays+int(cfg.lut[l].inSel[in])]
				if p := producerOfNet(src); p >= 0 && p != li {
					addEdge(p, li)
				}
			}
		}
	}
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	for i := int32(0); i < int32(n); i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	// Append any nodes stuck in cycles.
	if len(order) < n {
		inOrder := make([]bool, n)
		for _, v := range order {
			inOrder[v] = true
		}
		for i := int32(0); i < int32(n); i++ {
			if !inOrder[i] {
				order = append(order, i)
			}
		}
	}
	f.order = order
	for p, li := range order {
		f.pos[li] = int32(p)
	}
	f.orderStale = false
}

// RebuildOrder recomputes the evaluation order after reconfiguration. It is
// optional — simulation remains correct with a stale order — but restores
// single-sweep settling for heavily re-routed configurations.
func (f *FPGA) RebuildOrder() { f.rebuildOrder() }
