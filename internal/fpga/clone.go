package fpga

import (
	"repro/internal/device"
)

// Clone returns an independent deep copy of the device: configuration
// memory, decoded CLB/BRAM configuration, net/FF/BRAM simulation state,
// half-latch keepers, the permanent-fault overlay, and the evaluation
// order all duplicate, so the clone and the original can be stepped and
// corrupted concurrently without sharing mutable state.
//
// Cloning is the cheap-replication primitive of parallel injection
// campaigns: it skips placement and the full-configure decode entirely,
// costing only the memory copies. Static tables that depend solely on
// geometry (the input-mux candidate table) are shared read-only.
func (f *FPGA) Clone() *FPGA {
	n := &FPGA{
		geom:         f.geom,
		cm:           f.cm.Clone(),
		clbs:         append([]clbCfg(nil), f.clbs...),
		brams:        append([]bramCfg(nil), f.brams...),
		candID:       f.candID, // geometry-derived, immutable after New
		netVal:       append([]bool(nil), f.netVal...),
		lutVal:       append([]bool(nil), f.lutVal...),
		ffVal:        append([]bool(nil), f.ffVal...),
		bramOut:      append([]uint16(nil), f.bramOut...),
		inHL:         append([]bool(nil), f.inHL...),
		llHL:         append([]bool(nil), f.llHL...),
		ceHL:         append([]bool(nil), f.ceHL...),
		unprogrammed: f.unprogrammed,
		order:        append([]int32(nil), f.order...),
		orderStale:   f.orderStale,
		activeLUT:    append([]bool(nil), f.activeLUT...),
		clbActive:    append([]bool(nil), f.clbActive...),
		dirtyCLB:     append([]bool(nil), f.dirtyCLB...),
		dirtyCLBList: append([]int32(nil), f.dirtyCLBList...),
		evalList:     append([]int32(nil), f.evalList...),
		clockList:    append([]int32(nil), f.clockList...),
		evalStale:    f.evalStale,
		cycle:        f.cycle,
		MaxSweeps:    f.MaxSweeps,
		lastSweeps:   f.lastSweeps,
		eventSim:     f.eventSim,
		// Fanout lists are rebuilt lazily on the clone's first settle —
		// cheaper than deep-copying a slice per net.
		fanStale:    true,
		pos:         append([]int32(nil), f.pos...),
		sched:       append([]uint8(nil), f.sched...),
		listNext:    append([]int32(nil), f.listNext...),
		staleLL:     append([]int32(nil), f.staleLL...),
		staleLLMark: append([]bool(nil), f.staleLLMark...),
		hiddenGen:   f.hiddenGen,
	}
	n.bramMem = make([][]uint16, len(f.bramMem))
	for i := range f.bramMem {
		n.bramMem[i] = append([]uint16(nil), f.bramMem[i]...)
	}
	n.bramInterference = append([]bool(nil), f.bramInterference...)
	n.llDrivers = make([][]driverRef, len(f.llDrivers))
	for i := range f.llDrivers {
		n.llDrivers[i] = append([]driverRef(nil), f.llDrivers[i]...)
	}
	if f.llByOut != nil { // nil means "not built yet"; keep that state
		n.llByOut = make([][]int32, len(f.llByOut))
		for i := range f.llByOut {
			n.llByOut[i] = append([]int32(nil), f.llByOut[i]...)
		}
	}
	if f.llByBRAM != nil {
		n.llByBRAM = make([][]int32, len(f.llByBRAM))
		for i := range f.llByBRAM {
			n.llByBRAM[i] = append([]int32(nil), f.llByBRAM[i]...)
		}
	}
	n.stuck = make(map[device.Segment]bool, len(f.stuck))
	for k, v := range f.stuck {
		n.stuck[k] = v
	}
	n.hasStuck = f.hasStuck
	return n
}
