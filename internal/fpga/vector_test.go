package fpga

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
	"repro/internal/device"
)

// vectorEligibleMemory builds the dense random configuration the event-kernel
// property test uses, then clears every history-coupled feature — SRL mode
// bits and writable BRAM ports — so the decoded device is vector-eligible
// while still exercising LUTs, routing, long lines, FFs, and read-only BRAM.
func vectorEligibleMemory(g device.Geometry, rng *rand.Rand) *bitstream.Memory {
	total := g.TotalBits()
	m := bitstream.NewMemory(g)
	for i := int64(0); i < total/6; i++ {
		m.Set(device.BitAddr(rng.Int63n(total)), true)
	}
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			for l := 0; l < device.LUTsPerCLB; l++ {
				m.Set(g.LUTModeBitAddr(r, c, l), false)
			}
		}
	}
	for bc := 0; bc < g.BRAMCols; bc++ {
		for blk := 0; blk < g.BRAMBlocksPerCol(); blk++ {
			m.Set(g.BRAMPortBitAddr(bc, blk, device.BRAMPortWEBase), false)
		}
	}
	return m
}

// laneMatchesScalar compares lane of v against the full visible state of a
// scalar device, returning a description of the first divergence ("" = none).
func laneMatchesScalar(v *Vector, lane int, s *FPGA) string {
	for i := range s.netVal {
		if (v.state[i]>>uint(lane)&1 == 1) != s.netVal[i] {
			return "net"
		}
	}
	for i := range s.lutVal {
		if (v.lut[i]>>uint(lane)&1 == 1) != s.lutVal[i] {
			return "lutVal"
		}
	}
	for i := range s.ffVal {
		if (v.ff[i]>>uint(lane)&1 == 1) != s.ffVal[i] {
			return "ffVal"
		}
	}
	for bi := range s.bramOut {
		base := int(v.c.bramBase) + bi*device.BRAMWidth
		for j := 0; j < device.BRAMWidth; j++ {
			if (v.state[base+j]>>uint(lane)&1 == 1) != (s.bramOut[bi]>>uint(j)&1 == 1) {
				return "bramOut"
			}
		}
	}
	return ""
}

// checkVectorAgainstScalars drives a batch of `lanes` single-bit fault
// universes through the vector machine alongside `lanes` independent scalar
// devices carrying the same injections and identical per-lane stimulus, with
// a mid-run repair, asserting every lane's full visible state matches its
// scalar witness after every clock — the property the vector kernel's
// exactness rests on.
func checkVectorAgainstScalars(t *testing.T, seed int64, lanes int) {
	t.Helper()
	g := device.Tiny()
	rng := rand.New(rand.NewSource(seed))
	bs := bitstream.Full(vectorEligibleMemory(g, rng))

	f := New(g)
	f.SetEventDriven(false)
	if err := f.FullConfigure(bs); err != nil {
		t.Fatal(err)
	}
	if f.HistoryCoupled() {
		t.Fatal("eligible memory decoded history-coupled")
	}
	// Canonical campaign state: pins low, user state reset.
	for p := 0; p < g.Pins(); p++ {
		f.SetPin(p, false)
	}
	f.Reset()

	// Pick `lanes` distinct lane-expressible single-bit deltas.
	total := g.TotalBits()
	addrs := make([]device.BitAddr, 0, lanes)
	deltas := make([]VectorDelta, 0, lanes)
	seen := make(map[device.BitAddr]bool)
	for len(addrs) < lanes {
		a := device.BitAddr(rng.Int63n(total))
		if seen[a] {
			continue
		}
		seen[a] = true
		d, ok := f.PlanVectorDelta(a, g.Classify(a))
		if !ok || d.Inert() {
			continue
		}
		addrs = append(addrs, a)
		deltas = append(deltas, d)
	}

	comp := f.Compile()
	gv := NewVector(comp) // clean lanes (the golden side)
	dv := NewVector(comp) // overlaid lanes (the DUT side)
	gv.ResetBatch(lanes)
	dv.ResetBatch(lanes)
	for i, d := range deltas {
		dv.ApplyDelta(i, d)
	}

	// Scalar witnesses: per lane, a clean clone and an injected clone.
	base := make([]*FPGA, lanes)
	sc := make([]*FPGA, lanes)
	for i, a := range addrs {
		base[i] = f.Clone()
		sc[i] = f.Clone()
		sc[i].InjectBit(a)
	}

	repaired := false
	for step := 0; step < 30; step++ {
		if step == 15 {
			// Repair even lanes mid-run: overlay removal on the vector side,
			// flipping the injected bit back on the scalar side.
			for i := 0; i < lanes; i += 2 {
				dv.RemoveDelta(i, deltas[i])
				sc[i].InjectBit(addrs[i])
			}
			repaired = true
		}
		for p := 0; p < g.Pins(); p++ {
			var w uint64
			for i := 0; i < lanes; i++ {
				if rng.Intn(2) == 1 {
					w |= 1 << uint(i)
					base[i].SetPin(p, true)
					sc[i].SetPin(p, true)
				} else {
					base[i].SetPin(p, false)
					sc[i].SetPin(p, false)
				}
			}
			gv.SetPinWord(p, w)
			dv.SetPinWord(p, w)
		}
		gv.Step()
		dv.Step()
		dw := DivergenceWord(gv, dv)
		for i := 0; i < lanes; i++ {
			base[i].Step()
			sc[i].Step()
			if what := laneMatchesScalar(gv, i, base[i]); what != "" {
				t.Fatalf("seed %d step %d: clean lane %d diverged from scalar (%s)", seed, step, i, what)
			}
			if what := laneMatchesScalar(dv, i, sc[i]); what != "" {
				t.Fatalf("seed %d step %d: faulted lane %d (bit %d, repaired=%v) diverged from scalar (%s)",
					seed, step, i, addrs[i], repaired && i%2 == 0, what)
			}
			// DivergenceWord must agree lane-wise with the scalar pair's
			// visible-state comparison (the lock-step early exit reads it).
			scalarDiff := laneMatchesScalar(dv, i, base[i]) != ""
			if (dw>>uint(i)&1 == 1) != scalarDiff {
				t.Fatalf("seed %d step %d: DivergenceWord lane %d = %v, scalar comparison says %v",
					seed, step, i, dw>>uint(i)&1 == 1, scalarDiff)
			}
		}
	}
}

// TestVectorStepMatchesScalarLanes is the 64-lane property test: a random
// full batch of vector-expressible faults must track 64 independent scalar
// simulations bit for bit through stimulus, clocking, and mid-run repair.
func TestVectorStepMatchesScalarLanes(t *testing.T) {
	run := func(seed int64) bool {
		checkVectorAgainstScalars(t, seed, 64)
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}

// TestVectorLaneMaskEdges exercises the live-lane mask at the boundary batch
// sizes: a single lane, one short of a full word, and a full word.
func TestVectorLaneMaskEdges(t *testing.T) {
	for _, lanes := range []int{1, 63, 64} {
		checkVectorAgainstScalars(t, int64(1000+lanes), lanes)
	}
}

// TestVectorScatterLane drives scalar clones forward independently, scatters
// their mid-run state into vector lanes, and asserts the lanes track the
// scalars bit for bit afterwards — the property the demoted-injection
// clean/persist windows (carry lanes) rest on.
func TestVectorScatterLane(t *testing.T) {
	g := device.Tiny()
	rng := rand.New(rand.NewSource(77))
	bs := bitstream.Full(vectorEligibleMemory(g, rng))
	f := New(g)
	f.SetEventDriven(false)
	if err := f.FullConfigure(bs); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < g.Pins(); p++ {
		f.SetPin(p, false)
	}
	f.Reset()

	const lanes = 7
	v := NewVector(f.Compile())
	v.ResetBatch(lanes)
	sc := make([]*FPGA, lanes)
	var snap VectorSnapshot
	for i := range sc {
		sc[i] = f.Clone()
		// Desynchronize: each scalar advances a different number of steps
		// under its own stimulus before being handed to a lane.
		for step := 0; step <= i*3; step++ {
			for p := 0; p < g.Pins(); p++ {
				sc[i].SetPin(p, rng.Intn(2) == 1)
			}
			sc[i].Step()
		}
		sc[i].CaptureVectorSnapshotInto(&snap)
		v.ScatterLane(i, &snap)
	}
	for step := 0; step < 20; step++ {
		for p := 0; p < g.Pins(); p++ {
			var w uint64
			for i := 0; i < lanes; i++ {
				on := rng.Intn(2) == 1
				sc[i].SetPin(p, on)
				if on {
					w |= 1 << uint(i)
				}
			}
			v.SetPinWord(p, w)
		}
		v.Step()
		for i := 0; i < lanes; i++ {
			sc[i].Step()
			if what := laneMatchesScalar(v, i, sc[i]); what != "" {
				t.Fatalf("step %d: scattered lane %d diverged from scalar (%s)", step, i, what)
			}
		}
	}
}
