package fpga

import (
	"repro/internal/device"
)

// Divergence-relevant device state, factored for the board-level lock-step
// detector (board.SLAAC1V.Locked). Two devices whose configuration memories
// are equal AND whose state below is equal will produce identical behaviour
// for identical future stimulus — every input to Settle/clock is either
// configuration (compared via bitstream.Memory), state compared here, or
// the externally-driven pins the board applies identically to both.
//
// BRAM content cache (bramMem) is deliberately absent: storeBRAMWord writes
// through to configuration memory, so the configuration comparison already
// covers it. SRL truth bits live in configuration memory too.

// CoreStateEqual compares the frequently-diverging user state of two
// devices: flip-flops, combinational values, nets, and BRAM output
// registers. Cheap relative to a configuration compare; ordered first by
// the lock detector so a still-diverged pair exits early.
func CoreStateEqual(a, b *FPGA) bool {
	if a.unprogrammed != b.unprogrammed || a.MaxSweeps != b.MaxSweeps {
		return false
	}
	for i, v := range a.ffVal {
		if v != b.ffVal[i] {
			return false
		}
	}
	for i, v := range a.netVal {
		if v != b.netVal[i] {
			return false
		}
	}
	for i, v := range a.lutVal {
		if v != b.lutVal[i] {
			return false
		}
	}
	for i, v := range a.bramOut {
		if v != b.bramOut[i] {
			return false
		}
	}
	for i, v := range a.bramInterference {
		if v != b.bramInterference[i] {
			return false
		}
	}
	return true
}

// HiddenStateEqual compares the hidden state a readback cannot observe:
// half-latch keepers and the permanent stuck-at overlay. Changes rarely;
// callers cache the verdict keyed on HiddenGen.
func HiddenStateEqual(a, b *FPGA) bool {
	for i, v := range a.inHL {
		if v != b.inHL[i] {
			return false
		}
	}
	for i, v := range a.llHL {
		if v != b.llHL[i] {
			return false
		}
	}
	for i, v := range a.ceHL {
		if v != b.ceHL[i] {
			return false
		}
	}
	if len(a.stuck) != len(b.stuck) {
		return false
	}
	for k, v := range a.stuck {
		if bv, ok := b.stuck[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// UserStateEqual reports whether two devices hold identical
// divergence-relevant state outside configuration memory.
func UserStateEqual(a, b *FPGA) bool {
	return CoreStateEqual(a, b) && HiddenStateEqual(a, b)
}

// StateEqual reports whether two devices are fully state-identical:
// configuration memory plus all user and hidden state. From this condition
// identical stimulus provably yields identical trajectories forever.
func StateEqual(a, b *FPGA) bool {
	return UserStateEqual(a, b) && a.cm.Equal(b.cm)
}

// StateHash folds all divergence-relevant state — configuration memory
// (which carries SRL truth bits and BRAM content), flip-flops, nets, BRAM
// output registers, and hidden state — into one 64-bit digest. Diagnostic
// companion to StateEqual: equal states hash equal; the lock detector uses
// the exact comparisons.
func (f *FPGA) StateHash() uint64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mixBools := func(s []bool) {
		var acc, n uint64
		for _, v := range s {
			acc <<= 1
			if v {
				acc |= 1
			}
			if n++; n == 64 {
				mix(acc)
				acc, n = 0, 0
			}
		}
		mix(acc<<1 | n)
	}
	if f.unprogrammed {
		mix(0xDEAD)
	}
	mixBools(f.ffVal)
	mixBools(f.netVal)
	mixBools(f.lutVal)
	mixBools(f.inHL)
	mixBools(f.llHL)
	mixBools(f.ceHL)
	mixBools(f.bramInterference)
	for _, v := range f.bramOut {
		mix(uint64(v))
	}
	// Stuck overlay: order-independent fold (map iteration is randomized).
	var stuckAcc uint64
	for k, v := range f.stuck {
		e := uint64(k.R)<<40 | uint64(k.C)<<20 | uint64(k.S)<<1
		if v {
			e |= 1
		}
		e *= 0x9E3779B97F4A7C15
		stuckAcc += e
	}
	mix(stuckAcc)
	return f.cm.Hash(h)
}

// ConfigHiddenHash digests configuration memory plus all hidden state
// (half-latch keepers, stuck overlay, the unprogrammed flag) — everything
// that determines campaign behaviour once user state has been reset.
// Deliberately excludes user state (ffVal, nets, BRAM output registers):
// board replicas parked between campaigns hold arbitrary user state, which
// ResetCampaignState neutralizes before every injection, so two devices
// with equal ConfigHiddenHash inputs are interchangeable campaign
// substrates. The board replica pool keys on it.
//
// Memoized: every input is covered by a generation counter (cm.Mutations()
// for configuration bits, hiddenGen for half-latches, the stuck overlay,
// control-logic upsets and reconfiguration), so a repeat call on an
// untouched device returns the cached digest without re-reading anything —
// campaign plan lookups call this once per Run.
func (f *FPGA) ConfigHiddenHash() uint64 {
	if f.chHashValid && f.chGen == f.hiddenGen && f.chMut == f.cm.Mutations() {
		return f.chHash
	}
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mixBools := func(s []bool) {
		var acc, n uint64
		for _, v := range s {
			acc <<= 1
			if v {
				acc |= 1
			}
			if n++; n == 64 {
				mix(acc)
				acc, n = 0, 0
			}
		}
		mix(acc<<1 | n)
	}
	if f.unprogrammed {
		mix(0xDEAD)
	}
	mixBools(f.inHL)
	mixBools(f.llHL)
	mixBools(f.ceHL)
	var stuckAcc uint64
	for k, v := range f.stuck {
		e := uint64(k.R)<<40 | uint64(k.C)<<20 | uint64(k.S)<<1
		if v {
			e |= 1
		}
		e *= 0x9E3779B97F4A7C15
		stuckAcc += e
	}
	mix(stuckAcc)
	h = f.cm.Hash(h)
	f.chHash, f.chGen, f.chMut, f.chHashValid = h, f.hiddenGen, f.cm.Mutations(), true
	return h
}

// HiddenGen returns the hidden-state mutation counter: it advances on every
// half-latch flip/restore, stuck-overlay edit, control-logic upset and
// reconfiguration, letting callers cache HiddenStateEqual verdicts (and the
// ConfigHiddenHash memo) between mutations.
func (f *FPGA) HiddenGen() uint64 { return f.hiddenGen }

// HistoryCoupled reports whether the configuration carries live state that
// survives a campaign-style reset — SRL16 shift registers (truth bits are
// design state inside configuration memory), writable enabled BRAM ports
// (content persists across Reset), or a permanent stuck-at overlay. For
// such designs the cycles an injection actually simulates leak into the
// state every later injection observes, so convergence early exit (which
// skips cycles) must stay off to keep reports identical. Mirrors the
// volatility rule the cone triage uses.
func (f *FPGA) HistoryCoupled() bool {
	if f.hasStuck {
		return true
	}
	for i := range f.clbs {
		for l := 0; l < device.LUTsPerCLB; l++ {
			if f.clbs[i].lut[l].srl {
				return true
			}
		}
	}
	for i := range f.brams {
		if f.brams[i].en.valid && f.brams[i].we.valid {
			return true
		}
	}
	return false
}
