// Package fpga implements a behavioural simulator for the Virtex-like
// device modelled by internal/device. The simulator is strictly
// configuration-driven: on every (re)configuration the configuration memory
// is decoded into LUT truth tables, routing selections, flip-flop modes,
// long-line drivers, and BRAM port bindings, and the clocked simulation
// evaluates only that decoded state. Flipping a configuration bit therefore
// changes device behaviour exactly the way a real SEU does, which is the
// property the paper's fault-injection methodology depends on.
//
// The package also models the parts of the device the paper identifies as
// hidden state: half-latch keepers that supply constants to undriven inputs
// (initialized only by the full-configuration start-up sequence, invisible
// to readback, not restored by partial reconfiguration) and the
// configuration control logic whose upset leaves the device unprogrammed.
package fpga

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/device"
)

// lutCfg is the decoded configuration of one LUT and its input routing.
type lutCfg struct {
	truth uint16
	inSel [device.LUTInputs]uint8
	srl   bool // SRL16 mode: truth bits are live shifting state
}

// ffCfg is the decoded configuration of one flip-flop.
type ffCfg struct {
	init   bool
	ceMode device.CEMode
	ceSel  uint8
	dInv   bool
}

// llDrv is one decoded long-line driver.
type llDrv struct {
	enable bool
	src    uint8 // CLB output 0..3
}

// clbCfg is the decoded configuration of one CLB.
type clbCfg struct {
	lut      [device.LUTsPerCLB]lutCfg
	ff       [device.FFsPerCLB]ffCfg
	outMuxFF [device.OutputsPerCLB]bool
	ll       [device.LLDriversPerCLB]llDrv
}

// bramPortSel is one decoded BRAM port-input source field.
type bramPortSel struct {
	valid  bool
	rowOff uint8
	out    uint8
}

// bramCfg is the decoded configuration of one BRAM block.
type bramCfg struct {
	addr [device.BRAMAddrBits]bramPortSel
	din  [device.BRAMWidth]bramPortSel
	we   bramPortSel
	en   bramPortSel
	dout [device.LongLinesPerCol]struct {
		enable bool
		bit    uint8
	}
}

// driverRef identifies one enabled driver of a long line.
type driverRef struct {
	bram bool
	idx  int // CLB index or BRAM index
	out  int // CLB output 0..3, or BRAM dout bit
}

// FPGA is one simulated device instance.
type FPGA struct {
	geom device.Geometry
	cm   *bitstream.Memory

	// Decoded configuration.
	clbs  []clbCfg
	brams []bramCfg

	// Static routing tables (depend only on geometry).
	candID []int32 // per (clb, slot): dense net ID, or -1 for undriven

	// Simulation state.
	netVal  []bool     // dense nets: CLB outputs, long lines, pins
	lutVal  []bool     // combinational LUT outputs (4 per CLB)
	ffVal   []bool     // flip-flop state (4 per CLB)
	bramMem [][]uint16 // cached content per block (mirrors config memory)
	bramOut []uint16   // BRAM output registers

	// Hidden state the paper's half-latch study revolves around. All are
	// initialized only by the full-configuration start-up sequence.
	inHL []bool // keeper per (clb, slot) — read when the tapped wire is undriven
	llHL []bool // keeper per long line — read when no driver is enabled
	ceHL []bool // keeper per FF — read in CEHalfLatch mode
	// unprogrammed models an SEU in the configuration control logic: the
	// device stops functioning until fully reconfigured (paper §III-C).
	unprogrammed bool

	// Long-line driver lists, rebuilt incrementally on reconfiguration.
	llDrivers [][]driverRef
	// llByOut maps a CLB-output net ID to the long lines it drives, so
	// Settle can refresh lines in the same sweep their driver changes.
	llByOut [][]int32

	// Permanent-fault overlay (opens/shorts) for the BIST study.
	stuck    map[device.Segment]bool
	hasStuck bool

	// Evaluation order (topological over the golden netlist). Stale orders
	// remain correct — Settle iterates to a fixpoint — they just cost more
	// sweeps.
	order      []int32
	orderStale bool
	// activeLUT marks LUTs that can produce anything other than a constant
	// 0 (non-zero truth, SRL mode, or a registered output); Settle skips
	// the rest. clbActive marks CLBs with any non-default state-bearing
	// configuration, the set clock() must process. dirtyCLB forces a CLB
	// through one settle and one clock after reconfiguration so resources
	// leaving the active set still reach their quiescent values.
	activeLUT    []bool
	clbActive    []bool
	dirtyCLB     []bool
	dirtyCLBList []int32
	// evalList is the order filtered to active/dirty LUTs; clockList the
	// active/dirty CLBs. Both rebuilt when evalStale.
	evalList  []int32
	clockList []int32
	evalStale bool

	// bramInterference marks blocks whose content frames were read back
	// while the design clock was running: the next write is lost and the
	// output register is corrupted (paper §II-C, §IV-A).
	bramInterference []bool

	// Event-kernel state (see event.go). fanout maps dense net IDs to the
	// LUTs reading them; sched/heapCur/listNext hold the dirty-LUT worklist;
	// staleLL the long lines needing an out-of-Settle refresh; pos each
	// LUT's position in order; llByBRAM a BRAM block's driven lines.
	eventSim    bool
	fanout      [][]int32
	fanStale    bool
	pos         []int32
	sched       []uint8
	heapCur     []int32
	listNext    []int32
	staleLL     []int32
	staleLLMark []bool
	llByBRAM    [][]int32

	// srlScratch is clock()'s reusable buffer of pending SRL16 shifts.
	srlScratch []srlUpdate

	// hiddenGen counts mutations of hidden state (half-latch keepers, the
	// stuck-at overlay, control-logic upsets, reconfiguration) so lock-step
	// detection and the ConfigHiddenHash memo can cache their results.
	hiddenGen uint64

	// ConfigHiddenHash memo: valid while both generation counters match
	// (chMut against cm.Mutations(), chGen against hiddenGen).
	chHash      uint64
	chGen       uint64
	chMut       uint64
	chHashValid bool

	// Cycle counter since the last full configuration or reset.
	cycle int64

	// MaxSweeps bounds the combinational settling loop; corrupted routing
	// can form oscillating loops, which freeze at the bound.
	MaxSweeps int

	lastSweeps int
}

// New returns an unconfigured device of geometry g. All configuration
// memory is zero; the device behaves as a sea of constant-0 logic until a
// full bitstream is loaded.
func New(g device.Geometry) *FPGA {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	f := &FPGA{
		geom:      g,
		cm:        bitstream.NewMemory(g),
		clbs:      make([]clbCfg, g.CLBs()),
		brams:     make([]bramCfg, g.BRAMBlocks()),
		netVal:    make([]bool, g.NumNets()),
		lutVal:    make([]bool, g.CLBs()*device.LUTsPerCLB),
		activeLUT: make([]bool, g.CLBs()*device.LUTsPerCLB),
		clbActive: make([]bool, g.CLBs()),
		dirtyCLB:  make([]bool, g.CLBs()),
		ffVal:     make([]bool, g.CLBs()*device.FFsPerCLB),
		inHL:      make([]bool, g.CLBs()*device.InMuxWays),
		llHL:      make([]bool, device.LongLinesPerRow*g.Rows+device.LongLinesPerCol*g.Cols),
		ceHL:      make([]bool, g.CLBs()*device.FFsPerCLB),
		llDrivers: make([][]driverRef, device.LongLinesPerRow*g.Rows+device.LongLinesPerCol*g.Cols),
		stuck:     make(map[device.Segment]bool),
		MaxSweeps: 64,
		eventSim:  true,
		fanStale:  true,
	}
	f.pos = make([]int32, g.CLBs()*device.LUTsPerCLB)
	f.sched = make([]uint8, g.CLBs()*device.LUTsPerCLB)
	f.staleLLMark = make([]bool, device.LongLinesPerRow*g.Rows+device.LongLinesPerCol*g.Cols)
	f.bramMem = make([][]uint16, g.BRAMBlocks())
	for i := range f.bramMem {
		f.bramMem[i] = make([]uint16, device.BRAMWords)
	}
	f.bramOut = make([]uint16, g.BRAMBlocks())
	f.bramInterference = make([]bool, g.BRAMBlocks())
	f.candID = buildCandidates(g)
	f.unprogrammed = true // no configuration loaded yet
	return f
}

func buildCandidates(g device.Geometry) []int32 {
	out := make([]int32, g.CLBs()*device.InMuxWays)
	i := 0
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			for s := 0; s < device.InMuxWays; s++ {
				out[i] = int32(g.NetID(g.InputCandidate(r, c, s)))
				i++
			}
		}
	}
	return out
}

// Geometry returns the device geometry.
func (f *FPGA) Geometry() device.Geometry { return f.geom }

// ConfigMemory exposes the live configuration memory. The SEU injector and
// the beam model flip bits here; the scrubber reads frames back through the
// ConfigPort instead.
func (f *FPGA) ConfigMemory() *bitstream.Memory { return f.cm }

// Cycle returns the clock cycle count since configuration/reset.
func (f *FPGA) Cycle() int64 { return f.cycle }

// Unprogrammed reports whether the configuration control logic has been
// upset; only a full reconfiguration recovers the device.
func (f *FPGA) Unprogrammed() bool { return f.unprogrammed }

// LastSweeps returns the number of settling sweeps used by the most recent
// combinational evaluation (diagnostic).
func (f *FPGA) LastSweeps() int { return f.lastSweeps }

// FullConfigure loads a complete bitstream: all frames are written, the
// configuration is decoded, and the start-up sequence runs — flip-flops
// load their init values and every half-latch keeper is initialized to 1.
func (f *FPGA) FullConfigure(bs *bitstream.Bitstream) error {
	if !bs.IsFull() {
		return fmt.Errorf("fpga: FullConfigure requires a bitstream with a start-up command")
	}
	if _, err := bs.Apply(f.cm); err != nil {
		return err
	}
	f.decodeAll()
	f.startup()
	return nil
}

// PartialConfigure writes the frames of a partial bitstream into
// configuration memory and re-decodes the affected columns. No start-up
// sequence runs: flip-flop state is preserved and half-latch keepers are
// NOT restored — the limitation the paper's half-latch study documents.
func (f *FPGA) PartialConfigure(bs *bitstream.Bitstream) error {
	if bs.IsFull() {
		return fmt.Errorf("fpga: PartialConfigure given a full bitstream; use FullConfigure")
	}
	for _, p := range bs.Packets {
		if p.Op != bitstream.OpWriteFrame {
			continue
		}
		if err := f.cm.WriteFrame(bitstream.Frame{Index: p.Frame, Data: p.Data}); err != nil {
			return err
		}
		f.redecodeFrame(p.Frame)
	}
	return nil
}

// startup runs the full-configuration start-up sequence.
func (f *FPGA) startup() {
	for i := range f.clbs {
		for k := 0; k < device.FFsPerCLB; k++ {
			f.ffVal[i*device.FFsPerCLB+k] = f.clbs[i].ff[k].init
		}
	}
	for i := range f.inHL {
		f.inHL[i] = true
	}
	for i := range f.llHL {
		f.llHL[i] = true
	}
	for i := range f.ceHL {
		f.ceHL[i] = true
	}
	for i := range f.bramOut {
		f.bramOut[i] = 0
		f.bramInterference[i] = false
	}
	f.unprogrammed = false
	f.cycle = 0
	f.hiddenGen++
	f.rebuildOrder()
	f.invalidateEvents()
	f.Settle()
}

// Reset re-initializes user state (flip-flops to their configured init
// values, BRAM output registers to zero) without touching configuration
// memory or half-latches. This is the "reset the system" step of the
// paper's fault-handling flow (Fig. 4) — note that it does NOT repair
// half-latch upsets.
func (f *FPGA) Reset() {
	for i := range f.clbs {
		for k := 0; k < device.FFsPerCLB; k++ {
			init := f.clbs[i].ff[k].init
			li := i*device.FFsPerCLB + k
			if f.ffVal[li] != init {
				f.ffVal[li] = init
				if f.clbs[i].outMuxFF[k] {
					f.scheduleLUT(int32(li))
				}
			}
		}
	}
	for i := range f.bramOut {
		if f.bramOut[i] != 0 {
			f.bramOut[i] = 0
			f.markBRAMLLStale(i)
		}
	}
	f.cycle = 0
	f.Settle()
}
