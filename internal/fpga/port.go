package fpga

import (
	"fmt"
	"time"

	"repro/internal/bitstream"
	"repro/internal/device"
)

// Port timing defaults, calibrated to the paper's measurements:
//
//   - the Actel fault manager reads every configuration of three XQVR1000s
//     in ~180 ms, i.e. ~12.9 µs per 156-byte frame;
//   - "a single bit can be modified and loaded in 100 µs" over SLAAC-1V's
//     high-speed PCI configuration mode.
const (
	DefaultFrameReadTime  = 12900 * time.Nanosecond
	DefaultFrameWriteTime = 100 * time.Microsecond
	// DefaultFullConfigTime approximates a complete device load plus
	// start-up over SelectMAP.
	DefaultFullConfigTime = 120 * time.Millisecond
)

// HazardKind classifies a readback hazard event.
type HazardKind uint8

const (
	// HazardSRLCorrupted: readback raced a live LUT shift register and
	// corrupted its content.
	HazardSRLCorrupted HazardKind = iota
	// HazardBRAMInterference: readback took over a live BRAM's address
	// lines; the next access is lost and its output register corrupted.
	HazardBRAMInterference
)

func (k HazardKind) String() string {
	switch k {
	case HazardSRLCorrupted:
		return "srl-corrupted"
	case HazardBRAMInterference:
		return "bram-interference"
	}
	return "unknown"
}

// HazardEvent records one readback hazard occurrence.
type HazardEvent struct {
	Kind  HazardKind
	Frame int
	// R, C, L locate the affected LUT for SRL hazards; Block the affected
	// BRAM for interference hazards.
	R, C, L int
	Block   int
}

// Port is the device's configuration interface — the stand-in for Virtex
// SelectMAP. All configuration traffic of the scrubber, the SEU injector,
// and the BIST harness flows through a Port, which accounts virtual time
// so paper-style throughput numbers (scan cycles, injection rates) can be
// reproduced.
type Port struct {
	f *FPGA

	// Timing model.
	FrameReadTime  time.Duration
	FrameWriteTime time.Duration
	FullConfigTime time.Duration

	// ClockRunning marks that the design clock keeps toggling while port
	// operations execute (the normal on-orbit case: "there is no
	// interruption of service required to perform readback").
	ClockRunning bool
	// HazardousReadback enables modelling of the paper's §II-C readback
	// hazards for designs with live LUT-RAM/SRL or BRAM state. With the
	// clock stopped the hazards never fire.
	HazardousReadback bool

	elapsed time.Duration
	hazards []HazardEvent
	reads   int64
	writes  int64
}

// NewPort returns a configuration port for device f with default timing.
func NewPort(f *FPGA) *Port {
	return &Port{
		f:                 f,
		FrameReadTime:     DefaultFrameReadTime,
		FrameWriteTime:    DefaultFrameWriteTime,
		FullConfigTime:    DefaultFullConfigTime,
		ClockRunning:      true,
		HazardousReadback: true,
	}
}

// Device returns the attached device.
func (p *Port) Device() *FPGA { return p.f }

// Elapsed returns accumulated virtual configuration-interface time.
func (p *Port) Elapsed() time.Duration { return p.elapsed }

// ResetElapsed zeroes the virtual clock (campaign bookkeeping).
func (p *Port) ResetElapsed() { p.elapsed = 0 }

// Stats returns the number of frame reads and writes performed.
func (p *Port) Stats() (reads, writes int64) { return p.reads, p.writes }

// Hazards drains the recorded hazard events.
func (p *Port) Hazards() []HazardEvent {
	h := p.hazards
	p.hazards = nil
	return h
}

// ReadFrame reads configuration frame idx back from the device. Readback
// sees only configuration memory: flip-flop state and half-latch keepers
// are invisible, exactly as on the real part. If the design clock is
// running and the frame holds live LUT-SRL or BRAM content, the read
// triggers the corresponding hazard.
func (p *Port) ReadFrame(idx int) (bitstream.Frame, error) {
	g := p.f.geom
	if idx < 0 || idx >= g.TotalFrames() {
		return bitstream.Frame{}, fmt.Errorf("fpga: readback frame %d out of range", idx)
	}
	p.elapsed += p.FrameReadTime
	p.reads++
	if p.f.unprogrammed {
		// An unprogrammed device returns junk; all-ones is distinguishable
		// from any CRC-clean frame.
		junk := make([]byte, g.FrameBytes())
		for i := range junk {
			junk[i] = 0xFF
		}
		return bitstream.Frame{Index: idx, Data: junk}, nil
	}
	frame := p.f.cm.Frame(idx)
	if p.ClockRunning && p.HazardousReadback {
		p.applyReadbackHazards(idx)
	}
	return frame, nil
}

// applyReadbackHazards models the §II-C races for frame idx.
func (p *Port) applyReadbackHazards(idx int) {
	g := p.f.geom
	switch {
	case idx < g.CLBFrames():
		c := idx / device.FramesPerCLBCol
		fr := idx % device.FramesPerCLBCol
		// Which LUT truth-table bits does this frame carry? Frame fr covers
		// per-CLB configuration bits [fr*18, fr*18+18).
		lo, hi := fr*device.BitsPerCLBRow, fr*device.BitsPerCLBRow+device.BitsPerCLBRow
		for l := 0; l < device.LUTsPerCLB; l++ {
			lutLo := device.CBLUTBase + l*device.LUTBits
			lutHi := lutLo + device.LUTBits
			if hi <= lutLo || lo >= lutHi {
				continue
			}
			for r := 0; r < g.Rows; r++ {
				clb := &p.f.clbs[r*g.Cols+c]
				if !clb.lut[l].srl {
					continue
				}
				// The race corrupts the shift register's live content.
				clb.lut[l].truth ^= 1
				p.f.cm.Flip(g.LUTBitAddr(r, c, l, 0))
				p.f.scheduleLUT(int32((r*g.Cols+c)*device.LUTsPerCLB + l))
				p.hazards = append(p.hazards, HazardEvent{
					Kind: HazardSRLCorrupted, Frame: idx, R: r, C: c, L: l,
				})
			}
		}
	case idx < g.CLBFrames()+g.BRAMFrames():
		bf := idx - g.CLBFrames()
		bc := bf / device.BRAMFramesPerCol
		if bf%device.BRAMFramesPerCol >= device.BRAMContentFrames {
			return // port-config frames are static; no hazard
		}
		for blk := 0; blk < g.BRAMBlocksPerCol(); blk++ {
			bi := p.f.bramIndex(bc, blk)
			if !p.f.brams[bi].en.valid {
				continue
			}
			p.f.bramInterference[bi] = true
			p.hazards = append(p.hazards, HazardEvent{
				Kind: HazardBRAMInterference, Frame: idx, Block: bi,
			})
		}
	}
}

// ReadAll reads back every frame (one full readback pass).
func (p *Port) ReadAll() ([]bitstream.Frame, error) {
	g := p.f.geom
	out := make([]bitstream.Frame, 0, g.TotalFrames())
	for i := 0; i < g.TotalFrames(); i++ {
		fr, err := p.ReadFrame(i)
		if err != nil {
			return nil, err
		}
		out = append(out, fr)
	}
	return out, nil
}

// WriteFrame partially reconfigures a single frame while the design runs.
// Flip-flop state is untouched; half-latches are not restored.
func (p *Port) WriteFrame(fr bitstream.Frame) error {
	if p.f.unprogrammed {
		return fmt.Errorf("fpga: device unprogrammed; partial configuration impossible")
	}
	p.elapsed += p.FrameWriteTime
	p.writes++
	if err := p.f.cm.WriteFrame(fr); err != nil {
		return err
	}
	p.f.redecodeFrame(fr.Index)
	return nil
}

// PartialConfigure applies a partial bitstream frame by frame.
func (p *Port) PartialConfigure(bs *bitstream.Bitstream) error {
	if bs.IsFull() {
		return fmt.Errorf("fpga: partial configuration given a full bitstream")
	}
	for _, pk := range bs.Packets {
		if pk.Op != bitstream.OpWriteFrame {
			continue
		}
		if err := p.WriteFrame(bitstream.Frame{Index: pk.Frame, Data: pk.Data}); err != nil {
			return err
		}
	}
	return nil
}

// FullConfigure loads a complete bitstream with start-up: the only
// operation that recovers an unprogrammed device and re-initializes
// half-latches.
func (p *Port) FullConfigure(bs *bitstream.Bitstream) error {
	p.elapsed += p.FullConfigTime
	p.writes += int64(bs.FrameCount())
	return p.f.FullConfigure(bs)
}

// CaptureFF reads the current state of flip-flop k of CLB (r, c) through
// the configuration interface — the Virtex CAPTURE feature, which snapshots
// user state into readback frames. The BIST harness uses it to examine
// test-pattern registers; it costs one frame-read time.
func (p *Port) CaptureFF(r, c, k int) (bool, error) {
	g := p.f.geom
	if r < 0 || r >= g.Rows || c < 0 || c >= g.Cols || k < 0 || k >= device.FFsPerCLB {
		return false, fmt.Errorf("fpga: capture target (%d,%d,%d) out of range", r, c, k)
	}
	p.elapsed += p.FrameReadTime
	p.reads++
	if p.f.unprogrammed {
		return false, nil
	}
	return p.f.FFValue(r, c, k), nil
}

// CaptureColumn snapshots flip-flop k of every CLB in column c in one
// readback pass (one frame-read time, as the state capture of a column
// shares a frame).
func (p *Port) CaptureColumn(c, k int) ([]bool, error) {
	g := p.f.geom
	if c < 0 || c >= g.Cols || k < 0 || k >= device.FFsPerCLB {
		return nil, fmt.Errorf("fpga: capture column %d/%d out of range", c, k)
	}
	p.elapsed += p.FrameReadTime
	p.reads++
	out := make([]bool, g.Rows)
	if p.f.unprogrammed {
		return out, nil
	}
	for r := 0; r < g.Rows; r++ {
		out[r] = p.f.FFValue(r, c, k)
	}
	return out, nil
}

// RepairFrameRMW repairs frame golden.Index with a read-modify-write
// (§IV-B): the frame's current contents are read back, the bits covered by
// mask (live LUT-RAM/SRL or BRAM state) are preserved, everything else is
// restored from the golden frame, and the spliced frame is written back.
// Plain WriteFrame would overwrite live memory contents with their
// initialization values and disturb the running design; RMW is the paper's
// workaround for frame-granularity configuration access. The caveat the
// paper raises — that the state may change between the read and the write —
// applies here too when the clock runs during the operation.
func (p *Port) RepairFrameRMW(golden bitstream.Frame, mask []byte) error {
	current, err := p.ReadFrame(golden.Index)
	if err != nil {
		return err
	}
	spliced := golden.Clone()
	for i := range spliced.Data {
		var m byte
		if i < len(mask) {
			m = mask[i]
		}
		spliced.Data[i] = (golden.Data[i] &^ m) | (current.Data[i] & m)
	}
	return p.WriteFrame(spliced)
}
