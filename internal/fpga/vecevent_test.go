package fpga

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
	"repro/internal/device"
)

// eventSweepPair builds two lane machines over one compiled random design —
// one running the event-driven drain, one the full-sweep loop — with the
// same batch of lane-expressible deltas applied to both, plus the delta
// list for mid-run repair. Shared setup for the equivalence tests below.
func eventSweepPair(t testing.TB, seed int64, lanes int) (ev, sv *Vector, deltas []VectorDelta, g device.Geometry, rng *rand.Rand) {
	g = device.Tiny()
	rng = rand.New(rand.NewSource(seed))
	bs := bitstream.Full(vectorEligibleMemory(g, rng))
	f := New(g)
	f.SetEventDriven(false)
	if err := f.FullConfigure(bs); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < g.Pins(); p++ {
		f.SetPin(p, false)
	}
	f.Reset()

	total := g.TotalBits()
	seen := make(map[device.BitAddr]bool)
	for len(deltas) < lanes {
		a := device.BitAddr(rng.Int63n(total))
		if seen[a] {
			continue
		}
		seen[a] = true
		d, ok := f.PlanVectorDelta(a, g.Classify(a))
		if !ok || d.Inert() {
			continue
		}
		deltas = append(deltas, d)
	}

	comp := f.Compile()
	ev = NewVector(comp)
	sv = NewVector(comp)
	sv.SetEventDriven(false)
	ev.ResetBatch(lanes)
	sv.ResetBatch(lanes)
	for i, d := range deltas {
		ev.ApplyDelta(i, d)
		sv.ApplyDelta(i, d)
	}
	return ev, sv, deltas, g, rng
}

// checkEventMatchesSweep drives the event-drain and full-sweep lane machines
// through identical stimulus, a mid-run repair, and (optionally) a MaxSweeps
// bound low enough to freeze oscillating designs mid-transient, asserting
// the two kernels stay state-identical word for word after every clock.
// This is the drain's core exactness property: one worklist round must be
// bit-for-bit one sweep, end-of-round long-line refresh and pending-lane
// holds included.
func checkEventMatchesSweep(t *testing.T, seed int64, lanes, maxSweeps int) {
	t.Helper()
	ev, sv, deltas, g, rng := eventSweepPair(t, seed, lanes)
	if maxSweeps > 0 {
		ev.MaxSweeps = maxSweeps
		sv.MaxSweeps = maxSweeps
	}
	for step := 0; step < 30; step++ {
		if step == 15 {
			for i := 0; i < lanes; i += 2 {
				ev.RemoveDelta(i, deltas[i])
				sv.RemoveDelta(i, deltas[i])
			}
		}
		for p := 0; p < g.Pins(); p++ {
			w := rng.Uint64()
			ev.SetPinWord(p, w)
			sv.SetPinWord(p, w)
		}
		ev.Step()
		sv.Step()
		if d := DivergenceWord(ev, sv); d != 0 {
			t.Fatalf("seed %d step %d maxSweeps %d: event kernel diverged from sweep kernel in lanes %016x",
				seed, step, ev.MaxSweeps, d)
		}
	}
}

// TestEventVectorSettleMatchesSweep pins the event-driven drain to the
// full-sweep loop over random designs, batches, and stimulus: identical
// state words after every Step, through mid-run repair.
func TestEventVectorSettleMatchesSweep(t *testing.T) {
	run := func(seed int64) bool {
		checkEventMatchesSweep(t, seed, 64, 0)
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}

// TestEventVectorFreezeParity re-runs the equivalence with MaxSweeps clamped
// to 3, so oscillating random designs freeze mid-transient every Settle: the
// drain's round bound and the sweep loop's sweep bound must cut the
// trajectory at the identical point, and the frozen pending worklist must
// resume it identically next Settle.
func TestEventVectorFreezeParity(t *testing.T) {
	for _, seed := range []int64{2, 3, 5, 8} {
		checkEventMatchesSweep(t, seed, 64, 3)
	}
}

// TestEventVectorSettleAllocs is the allocation audit of the hot drain loop:
// after warm-up (worklist, heap, and stale-list capacities grown), a full
// stimulus-change + Step cycle must not allocate at all — the drain reuses
// every scratch structure across batches.
func TestEventVectorSettleAllocs(t *testing.T) {
	ev, _, _, g, rng := eventSweepPair(t, 42, 64)
	step := func() {
		for p := 0; p < g.Pins(); p++ {
			ev.SetPinWord(p, rng.Uint64())
		}
		ev.Step()
	}
	for i := 0; i < 10; i++ {
		step() // warm scratch capacities
	}
	if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
		t.Fatalf("event drain allocated %.1f times per Step; want 0", allocs)
	}
}

// BenchmarkEventVectorStep measures one full-batch Step (settle, clock,
// settle) of the event drain under per-step random stimulus on all 64 lanes.
func BenchmarkEventVectorStep(b *testing.B) {
	ev, _, _, g, rng := eventSweepPair(b, 42, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < g.Pins(); p++ {
			ev.SetPinWord(p, rng.Uint64())
		}
		ev.Step()
	}
}
