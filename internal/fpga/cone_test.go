package fpga

import (
	"testing"

	"repro/internal/device"
)

// twoBufferDesign wires west pin -> buffer at (2,0) -> buffer at (2,1) and
// adds an unrelated configured LUT at (5,5); the observed output is
// clb(2,1).out0, so only the two buffers can influence it.
func twoBufferDesign(g device.Geometry) (*ConfigBuilder, int) {
	b := NewConfigBuilder(g)
	b.SetLUT(2, 0, 0, TruthBuf)
	b.RouteInput(2, 0, 0, 0, 4) // west of column 0: a device pin
	b.SetLUT(2, 1, 0, TruthBuf)
	b.RouteInput(2, 1, 0, 0, 4) // west neighbour: clb(2,0).out0
	b.SetLUT(5, 5, 1, TruthXor2)
	b.RouteInput(5, 5, 1, 0, 4)
	obs := g.NetID(device.NetRef{Kind: device.NetCLBOut, R: 2, C: 1, O: 0})
	return b, obs
}

func TestConeOfInfluenceBasic(t *testing.T) {
	g := device.Tiny()
	b, obs := twoBufferDesign(g)
	f := configure(t, b)
	cone := f.ConeOfInfluence([]int{obs})
	if cone.Volatile {
		t.Fatal("plain combinational design marked volatile")
	}
	inCone := func(r, c, l int) bool { return cone.Site[(r*g.Cols+c)*device.LUTsPerCLB+l] }
	if !inCone(2, 1, 0) || !inCone(2, 0, 0) {
		t.Error("observed buffer chain not in cone")
	}
	if inCone(5, 5, 1) {
		t.Error("unrelated configured LUT pulled into cone")
	}
	sites := 0
	for _, s := range cone.Site {
		if s {
			sites++
		}
	}
	if sites != 2 {
		t.Errorf("cone holds %d sites, want exactly the 2 buffers", sites)
	}
}

func TestSensitivityMaskBasic(t *testing.T) {
	g := device.Tiny()
	b, obs := twoBufferDesign(g)
	f := configure(t, b)
	mask, cone := f.SensitivityMask([]int{obs})
	if cone.Volatile {
		t.Fatal("design marked volatile")
	}
	if !mask.Get(g.LUTBitAddr(2, 1, 0, 3)) || !mask.Get(g.InMuxBitAddr(2, 0, 0, 0)) {
		t.Error("in-cone site bits not marked sensitive")
	}
	if mask.Get(g.LUTBitAddr(5, 5, 1, 3)) {
		t.Error("out-of-cone LUT truth bit marked sensitive")
	}
	if mask.Get(g.LUTBitAddr(2, 1, 1, 0)) {
		t.Error("unused sibling LUT of an in-cone CLB marked sensitive")
	}
	// Padding of an in-cone CLB configures nothing.
	if mask.Get(g.CLBBitOf(2, 1, device.CBModeledBits)) {
		t.Error("CLB padding bit marked sensitive")
	}
	// Frame pad bits beyond the CLB rows configure nothing.
	padBit := device.BitAddr(int64(g.FrameLength()) - 1)
	if mask.Get(padBit) {
		t.Error("frame padding bit marked sensitive")
	}
}

func TestSensitivityMaskLongLines(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	b.SetLUT(3, 3, 0, TruthBuf)
	b.RouteInput(3, 3, 0, 0, 4)
	b.DriveLL(3, 3, 0, 0) // row long line, row 3, channel 0
	b.SetLUT(3, 6, 0, TruthBuf)
	b.RouteInput(3, 6, 0, 0, 24) // tap row LL channel 0
	obs := g.NetID(device.NetRef{Kind: device.NetCLBOut, R: 3, C: 6, O: 0})
	f := configure(t, b)
	mask, cone := f.SensitivityMask([]int{obs})

	if !cone.Line[3*device.LongLinesPerRow+0] {
		t.Fatal("tapped row long line not in cone")
	}
	if !cone.Site[(3*g.Cols+3)*device.LUTsPerCLB] {
		t.Error("wired-AND driver's source site not in cone")
	}
	// Any CLB on the in-cone line could splice a NEW driver onto it: every
	// enable bit along the row stays sensitive, but the source select only
	// matters while its driver is enabled.
	if !mask.Get(g.LLDrvBitAddr(3, 0, 0, device.LLEnableBit)) {
		t.Error("enable bit of a disabled driver on an in-cone line marked inert")
	}
	if mask.Get(g.LLDrvBitAddr(3, 0, 0, device.LLSrcBase)) {
		t.Error("source select of a disabled driver marked sensitive")
	}
	if !mask.Get(g.LLDrvBitAddr(3, 3, 0, device.LLSrcBase)) {
		t.Error("source select of the live driver marked inert")
	}
	// A long line outside the cone is dead weight: all its driver bits are
	// inert, enables included.
	if mask.Get(g.LLDrvBitAddr(5, 0, 0, device.LLEnableBit)) {
		t.Error("enable bit of an out-of-cone row line marked sensitive")
	}
	if mask.Get(g.LLDrvBitAddr(3, 3, 4, device.LLEnableBit)) {
		t.Error("enable bit of an out-of-cone column line marked sensitive")
	}
}

func TestSensitivityMaskVolatileSRL(t *testing.T) {
	g := device.Tiny()
	b, obs := twoBufferDesign(g)
	// An SRL anywhere — even outside the cone — couples outcomes to campaign
	// step history, so triage must refuse the whole design.
	b.SetSRL(5, 5, 1, true)
	f := configure(t, b)
	mask, cone := f.SensitivityMask([]int{obs})
	if !cone.Volatile {
		t.Fatal("SRL design not marked volatile")
	}
	if !mask.Get(g.LUTBitAddr(5, 5, 1, 3)) || !mask.Get(g.CLBBitOf(7, 7, device.CBModeledBits)) {
		t.Error("volatile design's mask is not all-sensitive")
	}
}

func TestSensitivityMaskDeadBRAMColumn(t *testing.T) {
	g := device.Tiny()
	adj := g.BRAMAdjCol(0)
	b := NewConfigBuilder(g)
	b.SetLUT(4, adj, 0, TruthBuf)
	b.RouteInput(4, adj, 0, 0, 28+2) // tap own column's LL channel 2
	obs := g.NetID(device.NetRef{Kind: device.NetCLBOut, R: 4, C: adj, O: 0})
	f := configure(t, b)
	mask, cone := f.SensitivityMask([]int{obs})
	if cone.LiveBRAMCol[0] {
		t.Fatal("unconfigured BRAM column reported live")
	}
	// Flipping a dout enable of even an unconfigured block forces its frozen
	// output register bit onto the wired-AND line; for the in-cone channel
	// that enable must stay sensitive, everything else in the column is inert.
	ch2 := device.BRAMPortDoutBase + 2*device.BRAMDoutLLBits
	if !mask.Get(g.BRAMPortBitAddr(0, 0, ch2)) {
		t.Error("dout enable onto an in-cone column line marked inert")
	}
	if mask.Get(g.BRAMPortBitAddr(0, 0, ch2+1)) {
		t.Error("dout bit-select of a dead block marked sensitive")
	}
	if mask.Get(g.BRAMPortBitAddr(0, 0, device.BRAMPortDoutBase)) {
		t.Error("dout enable onto an out-of-cone channel marked sensitive")
	}
	if mask.Get(g.BRAMContentBitAddr(0, 0, 0, 0)) {
		t.Error("content bit of a dead BRAM column marked sensitive")
	}
}

func TestSensitivityMaskLiveBRAMColumn(t *testing.T) {
	g := device.Tiny()
	b, obs := twoBufferDesign(g)
	// A read-only port binding (EN without WE) makes the column live but not
	// volatile: its interleaved frames stay untriaged, the rest of the
	// fabric still triages normally.
	b.BindBRAMEN(0, 0, 0, 0)
	f := configure(t, b)
	mask, cone := f.SensitivityMask([]int{obs})
	if cone.Volatile {
		t.Fatal("read-only BRAM design marked volatile")
	}
	if !cone.LiveBRAMCol[0] {
		t.Fatal("configured BRAM column not reported live")
	}
	if !mask.Get(g.BRAMContentBitAddr(0, 0, 0, 0)) {
		t.Error("live BRAM column's content bit marked inert")
	}
	if mask.Get(g.LUTBitAddr(5, 5, 1, 3)) {
		t.Error("live BRAM column disabled CLB triage")
	}
}

func TestSensitivityMaskVolatileWritableBRAM(t *testing.T) {
	g := device.Tiny()
	b, obs := twoBufferDesign(g)
	b.BindBRAMEN(0, 0, 0, 0)
	b.BindBRAMWE(0, 0, 0, 1)
	f := configure(t, b)
	_, cone := f.SensitivityMask([]int{obs})
	if !cone.Volatile {
		t.Fatal("writable BRAM design not marked volatile")
	}
}
