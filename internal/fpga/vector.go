package fpga

import (
	"math/bits"

	"repro/internal/device"
)

// Bit-parallel fault simulation: 64 fault universes evaluated per sweep.
//
// A Vector is a lane-parallel re-implementation of the full-sweep kernel in
// sim.go: every bool of device state (netVal, lutVal, ffVal, BRAM output
// register bits) becomes one uint64 word whose lane i holds the value that
// state bit has in fault universe i. All lanes share one read-only
// CompiledDesign — the struct-of-arrays form of the golden decode — and a
// universe's single-bit configuration delta is a per-lane overlay (a patched
// truth table, a flipped output mux, an extra long-line driver, ...)
// consulted during evaluation instead of a re-decode. LUTs evaluate all 64
// universes at once through the truth-table mux identity; wired-AND long
// lines are a lane-wise AND of their driver words; the flip-flop update is
// the classic mux word (d & ce) | (ff &^ ce).
//
// Exactness. Per lane, a Vector sweep is the scalar sweep of sim.go run
// under that lane's configuration:
//
//   - the evaluation list is the golden active set extended by every CLB
//     carrying an overlay — a superset of the scalar active/dirty set in
//     every lane. The extra evaluations are of inactive un-overlaid LUTs,
//     which always evaluate to 0, exactly the value the scalar kernel
//     froze them at (truth 0 and no SRL/registered output implies constant
//     0), so they never change a lane and never mark the sweep changed;
//   - in-sweep long-line refresh triggers are the golden llByOut edges
//     plus the edges added by lane overlays — again a superset in every
//     lane, and a long-line refresh is a stateless recompute, so spurious
//     triggers are no-ops — and every sweep ends with a refresh of all
//     lines, exactly like the scalar kernel;
//   - the sweep loop runs until no lane changes, bounded by MaxSweeps. A
//     lane at fixpoint re-evaluates to itself, so extra sweeps forced by a
//     still-settling (or oscillating) lane are identities; an oscillating
//     lane freezes after exactly MaxSweeps sweeps, the state the scalar
//     kernel freezes it in.
//
// Configurations a per-lane overlay cannot represent exactly — SRL16 shift
// registers, writable BRAM, stuck-at overlays, LUT-mode flips — are never
// given a lane: PlanVectorDelta demotes those bits to the scalar path.
// Demoted bits whose post-repair configuration is provably golden
// (DemotedWindowable) may still ride lanes for their clean-run/persistence
// windows via ScatterLane.

// vectorDeltaKind enumerates the behavioural effects a single configuration
// bit flip can have relative to the golden decode.
type vectorDeltaKind uint8

const (
	// vdNone: the flip provably changes no decoded behaviour (padding,
	// extra frames, FF init bits, fields of disabled resources).
	vdNone vectorDeltaKind = iota
	vdTruth
	vdInSel
	vdOutMux
	vdFFCE
	vdFFDInv
	vdLLAdd
	vdLLRemove
	vdLLSrc
)

// VectorDelta is the decoded behavioural effect of flipping one
// configuration bit, expressed against the golden decode so a lane can
// apply it as an overlay without re-decoding.
type VectorDelta struct {
	kind vectorDeltaKind
	clb  int32
	ll   int32 // dense long-line index (vdLL*)
	l    uint8 // LUT / FF / output index within the CLB
	in   uint8 // LUT input index (vdInSel)
	bit  uint8 // truth-table bit (vdTruth)
	sel  uint8 // new input/CE select (vdInSel, vdFFCE)
	mode device.CEMode
	src  uint8 // golden driver source (vdLLRemove, vdLLSrc), new (vdLLAdd)
	nsrc uint8 // flipped driver source (vdLLSrc)
}

// Inert reports whether the delta provably changes no behaviour: the lane
// would be identical to golden, so the campaign can retire the bit as
// benign without spending a lane on it.
func (d VectorDelta) Inert() bool { return d.kind == vdNone }

// PlanVectorDelta translates a configuration-bit flip into its lane
// overlay. ok=false demotes the bit to the scalar path: the flip creates
// state the lane machinery does not model (an SRL16 whose truth table
// shifts, BRAM content or port changes). The caller is responsible for
// only planning against non-history-coupled devices (no SRLs, no writable
// BRAM, no stuck overlay) whose decode is golden.
func (f *FPGA) PlanVectorDelta(a device.BitAddr, info device.BitInfo) (VectorDelta, bool) {
	switch info.Kind {
	case device.KindPad, device.KindExtra:
		return VectorDelta{}, true
	case device.KindBRAMContent, device.KindBRAMPort:
		return VectorDelta{}, false
	}
	clb := int32(info.R*f.geom.Cols + info.C)
	cfg := &f.clbs[clb]
	cb := info.CB
	switch {
	case cb < device.CBInMuxBase:
		l := cb / device.LUTBits
		if cfg.lut[l].srl {
			return VectorDelta{}, false // live shifting state
		}
		return VectorDelta{kind: vdTruth, clb: clb, l: uint8(l), bit: uint8(cb % device.LUTBits)}, true
	case cb < device.CBFFBase:
		field := (cb - device.CBInMuxBase) / device.InMuxSelBits
		k := (cb - device.CBInMuxBase) % device.InMuxSelBits
		l := field / device.LUTInputs
		in := field % device.LUTInputs
		return VectorDelta{kind: vdInSel, clb: clb, l: uint8(l), in: uint8(in),
			sel: cfg.lut[l].inSel[in] ^ 1<<k}, true
	case cb < device.CBOutMuxBase:
		k := (cb - device.CBFFBase) / device.FFCfgBits
		sub := (cb - device.CBFFBase) % device.FFCfgBits
		ff := &cfg.ff[k]
		switch {
		case sub == device.FFInitBit:
			// Init values load only at full-configuration start-up, which
			// never runs mid-campaign.
			return VectorDelta{}, true
		case sub == device.FFCEModeLo:
			return VectorDelta{kind: vdFFCE, clb: clb, l: uint8(k), mode: ff.ceMode ^ 1, sel: ff.ceSel}, true
		case sub == device.FFCEModeHi:
			return VectorDelta{kind: vdFFCE, clb: clb, l: uint8(k), mode: ff.ceMode ^ 2, sel: ff.ceSel}, true
		case sub >= device.FFCESelBase && sub < device.FFCESelBase+device.InMuxSelBits:
			return VectorDelta{kind: vdFFCE, clb: clb, l: uint8(k), mode: ff.ceMode,
				sel: ff.ceSel ^ 1<<(sub-device.FFCESelBase)}, true
		default: // FFDInvBit
			return VectorDelta{kind: vdFFDInv, clb: clb, l: uint8(k)}, true
		}
	case cb < device.CBLLBase:
		return VectorDelta{kind: vdOutMux, clb: clb, l: uint8(cb - device.CBOutMuxBase)}, true
	case cb < device.CBLUTModeBase:
		d := (cb - device.CBLLBase) / device.LLDrvBits
		sub := (cb - device.CBLLBase) % device.LLDrvBits
		drv := &cfg.ll[d]
		ll := int32(f.llIndexOf(info.R, info.C, d))
		if sub == device.LLEnableBit {
			if drv.enable {
				return VectorDelta{kind: vdLLRemove, clb: clb, ll: ll, src: drv.src}, true
			}
			return VectorDelta{kind: vdLLAdd, clb: clb, ll: ll, src: drv.src}, true
		}
		if !drv.enable {
			// Source select of a disabled driver: decode-identical.
			return VectorDelta{}, true
		}
		k := sub - device.LLSrcBase
		return VectorDelta{kind: vdLLSrc, clb: clb, ll: ll, src: drv.src, nsrc: drv.src ^ 1<<k}, true
	default:
		// LUT-mode bits (and any CLB bit beyond the modelled range is
		// KindPad, handled above): flipping one turns a LUT into a live
		// shift register — history-coupled state the lanes cannot carry.
		return VectorDelta{}, false
	}
}

// DemotedWindowable reports whether a bit PlanVectorDelta demoted to the
// scalar path still qualifies for lane-carried clean-run/persistence
// windows: after the scalar observe phase, the single-frame repair plus
// column scrub provably restore the golden configuration, so the surviving
// divergence is pure behavioural state a lane can carry via ScatterLane.
//
//   - BRAM content flips: the flip lives in the injected frame (restored by
//     the repair write) and, absent a valid write port (such designs are
//     history-coupled and never planned), nothing else ever writes BRAM
//     content.
//   - LUT-mode flips: the transient SRL16 shifts only its own truth bits,
//     which share the injected bit's CLB column — all inside the scrub
//     window.
//   - BRAM port flips stay fully scalar: a flipped write-enable/port field
//     can corrupt content words in frames far outside the scrubbed column.
//   - SRL16 truth bits only demote on history-coupled designs, which never
//     reach the vector path at all.
func (f *FPGA) DemotedWindowable(info device.BitInfo) bool {
	switch info.Kind {
	case device.KindBRAMContent:
		return true
	case device.KindLUT:
		return info.CB >= device.CBLUTModeBase
	}
	return false
}

// VectorSnapshot is a full behavioural-state snapshot (nets, LUT outputs,
// FFs, BRAM output registers): the canonical post-reset state every fault
// universe starts from, or a mid-campaign scalar state being handed to a
// carried lane.
type VectorSnapshot struct {
	net     []bool
	lut     []bool
	ff      []bool
	bramOut []uint16
}

// CaptureVectorSnapshot records the device's current settled state.
func (f *FPGA) CaptureVectorSnapshot() *VectorSnapshot {
	s := &VectorSnapshot{}
	f.CaptureVectorSnapshotInto(s)
	return s
}

// CaptureVectorSnapshotInto records the device's current settled state into
// s, reusing its slices — the allocation-free variant for per-lane carry
// captures on the campaign hot path.
func (f *FPGA) CaptureVectorSnapshotInto(s *VectorSnapshot) {
	s.net = append(s.net[:0], f.netVal...)
	s.lut = append(s.lut[:0], f.lutVal...)
	s.ff = append(s.ff[:0], f.ffVal...)
	s.bramOut = append(s.bramOut[:0], f.bramOut...)
}

// Per-lane overlay records. Each lane carries at most one single-bit delta,
// so patch lists stay tiny; they are scanned, not indexed. All indirections
// are resolved to flat state indices at ApplyDelta time.
type lutLanePatch struct {
	lane  uint8
	truth uint16
	inID  [device.LUTInputs]int32
}

type ceLanePatch struct {
	lane uint8
	ceID int32
}

type llLanePatch struct {
	lane  uint8
	skip  int32 // state index of a golden driver to ignore, -1 none
	addID int32 // state index of an extra driver to AND in, -1 none
}

// Vector is the 64-lane simulation machine for one device. All Vectors
// built from the same CompiledDesign share it read-only; only DUT Vectors
// carry overlays. Per-lane state is one flat []uint64 indexed by the
// compiled layout (dense nets, two constant words, BRAM output bits).
type Vector struct {
	c    *CompiledDesign
	full uint64 // mask of live lanes

	// Lane-parallel state words (lane i = fault universe i).
	state []uint64
	lut   []uint64
	ff    []uint64

	// Batch evaluation plan: the golden active sets extended by overlay
	// CLBs, rebuilt lazily after overlays change.
	evalList  []int32
	clockList []int32
	extraLUTs []int32
	extraCLBs []int32
	evalStale bool

	// Per-lane overlays (DUT side only), reset per batch. The *Touched
	// lists make the reset proportional to the batch's overlay count, not
	// the device size.
	overCLB     []bool
	overCLBList []int32
	lutOver     [][]lutLanePatch
	lutTouched  []int32
	muxXor      []uint64 // lanes with a flipped output mux, per LUT
	muxTouched  []int32
	ceOver      [][]ceLanePatch
	ceTouched   []int32
	dinvXor     []uint64 // lanes with a flipped D inverter, per FF
	dinvTouched []int32
	llOver      [][]llLanePatch
	llTouched   []int32
	// llAddByOut holds in-sweep refresh edges for drivers that exist only
	// in some lane's overlay, keyed by the driving output's net ID.
	llAddByOut   [][]int32
	llAddTouched []int32

	// Event-driven drain state (vecevent.go). sched/heapCur/listNext/
	// staleLL mirror the scalar event kernel at lane-word granularity;
	// fanAdd holds per-batch fanout subscriptions for overlay-patched
	// inputs; active freezes retired lanes through Clock; frozenLanes is
	// the per-lane MaxSweeps-freeze gate consulted by board.LockedWord.
	eventDriven   bool
	denseRound    bool
	active        uint64
	frozenLanes   uint64
	sched         []uint8
	heapCur       []int32
	listNext      []int32
	staleLL       []int32
	staleLLMark   []bool
	llPendW       []uint64
	fanAdd        [][]int32
	fanAddTouched []int32

	statRounds int64
	statDrains int64

	// MaxSweeps mirrors the scalar oscillation bound.
	MaxSweeps int
}

// NewVector builds a lane machine over a shared compiled design. Only lane
// words and overlay tables are allocated; everything read-only lives in c.
func NewVector(c *CompiledDesign) *Vector {
	v := &Vector{
		c:           c,
		state:       make([]uint64, c.words),
		lut:         make([]uint64, len(c.truth)),
		ff:          make([]uint64, len(c.ceID)),
		overCLB:     make([]bool, len(c.clbActive)),
		lutOver:     make([][]lutLanePatch, len(c.truth)),
		muxXor:      make([]uint64, len(c.truth)),
		ceOver:      make([][]ceLanePatch, len(c.ceID)),
		dinvXor:     make([]uint64, len(c.ceID)),
		llOver:      make([][]llLanePatch, c.lls),
		llAddByOut:  make([][]int32, len(c.byOutStart)-1),
		sched:       make([]uint8, len(c.truth)),
		staleLLMark: make([]bool, c.lls),
		llPendW:     make([]uint64, c.lls),
		fanAdd:      make([][]int32, c.nets),
		eventDriven: true,
		active:      ^uint64(0),
		MaxSweeps:   c.maxSweeps,
		evalStale:   true,
	}
	// Fresh lane words are all-zero, not the canonical snapshot; until the
	// first ResetBatch the drain must treat everything as dirty.
	v.invalidateAllVec()
	return v
}

func broadcastBools(src []bool) []uint64 {
	out := make([]uint64, len(src))
	for i, b := range src {
		if b {
			out[i] = ^uint64(0)
		}
	}
	return out
}

// ResetBatch restores every lane to the canonical snapshot, clears all
// overlays, and sets the live-lane mask to the low n lanes.
func (v *Vector) ResetBatch(n int) {
	if n >= 64 {
		v.full = ^uint64(0)
	} else {
		v.full = 1<<uint(n) - 1
	}
	c := v.c
	copy(v.state, c.canonState)
	copy(v.lut, c.canonLut)
	copy(v.ff, c.canonFF)
	for _, li := range v.lutTouched {
		v.lutOver[li] = v.lutOver[li][:0]
	}
	v.lutTouched = v.lutTouched[:0]
	for _, li := range v.muxTouched {
		v.muxXor[li] = 0
	}
	v.muxTouched = v.muxTouched[:0]
	for _, i := range v.ceTouched {
		v.ceOver[i] = v.ceOver[i][:0]
	}
	v.ceTouched = v.ceTouched[:0]
	for _, i := range v.dinvTouched {
		v.dinvXor[i] = 0
	}
	v.dinvTouched = v.dinvTouched[:0]
	for _, ll := range v.llTouched {
		v.llOver[ll] = v.llOver[ll][:0]
	}
	v.llTouched = v.llTouched[:0]
	for _, id := range v.llAddTouched {
		v.llAddByOut[id] = v.llAddByOut[id][:0]
	}
	v.llAddTouched = v.llAddTouched[:0]
	for _, ci := range v.overCLBList {
		v.overCLB[ci] = false
	}
	v.overCLBList = v.overCLBList[:0]
	v.evalStale = true
	v.active = v.full
	// Drop the previous batch's pending work and overlay subscriptions.
	// When the canonical snapshot is a proven fixpoint every LUT
	// re-evaluates to its canonical value, so nothing needs scheduling —
	// overlays and pin changes applied after this reset schedule their own
	// work. A design frozen mid-oscillation at the MaxSweeps bound instead
	// gets a full first drain, continuing the canonical trajectory exactly
	// the way the sweep kernel's evaluate-everything Settle would.
	v.clearEventWork()
	// Reloaded lanes are driver-consistent (the canonical snapshot is taken
	// post-Settle, whose final pass refreshes every line), so the previous
	// batch's pending-refresh masks are stale; drop them.
	for i := range v.llPendW {
		v.llPendW[i] = 0
	}
	if !c.canonSettled {
		v.invalidateAllVec()
	}
}

// ResetLanes restores the lanes in mask to the canonical snapshot, leaving
// every other lane untouched, and unfreezes them — the mid-batch refill
// primitive. With a proven-fixpoint canon no event invalidation is needed:
// the refilled bits are consistent under every pending or future
// evaluation, so leftover worklist entries, refresh edges, and overlay-CLB
// plan residue all evaluate to identities in them (retired lanes always
// had their overlays removed before retirement). A mid-oscillation canon
// instead forces a full drain, which is exact for the live lanes too:
// re-evaluating quiet logic is an identity, and lanes frozen mid-transient
// continue their trajectory since their pending entries stay scheduled.
func (v *Vector) ResetLanes(mask uint64) {
	c := v.c
	inv := ^mask
	for i, w := range c.canonState {
		v.state[i] = v.state[i]&inv | w&mask
	}
	for i, w := range c.canonLut {
		v.lut[i] = v.lut[i]&inv | w&mask
	}
	for i, w := range c.canonFF {
		v.ff[i] = v.ff[i]&inv | w&mask
	}
	v.full |= mask
	v.active |= mask
	v.frozenLanes &^= mask
	if !c.canonSettled {
		v.invalidateAllVec()
	}
}

// ScatterLane overwrites one lane's state bits from a scalar snapshot,
// leaving every other lane untouched. Used to hand a scalar-observed
// injection (post-repair, configuration provably golden) to a lane for its
// clean-run/persistence window.
func (v *Vector) ScatterLane(lane int, snap *VectorSnapshot) {
	bit := uint64(1) << uint(lane)
	for i, b := range snap.net {
		if b {
			v.state[i] |= bit
		} else {
			v.state[i] &^= bit
		}
	}
	for i, b := range snap.lut {
		if b {
			v.lut[i] |= bit
		} else {
			v.lut[i] &^= bit
		}
	}
	for i, b := range snap.ff {
		if b {
			v.ff[i] |= bit
		} else {
			v.ff[i] &^= bit
		}
	}
	for bi, word := range snap.bramOut {
		base := int(v.c.bramBase) + bi*device.BRAMWidth
		for j := 0; j < device.BRAMWidth; j++ {
			if word>>uint(j)&1 == 1 {
				v.state[base+j] |= bit
			} else {
				v.state[base+j] &^= bit
			}
		}
	}
	// The scattered state is a scalar capture that may sit mid-transient;
	// conservatively mark everything dirty so the next Settle re-derives
	// the whole lane (an identity in every other lane).
	v.invalidateAllVec()
}

func (v *Vector) markCLB(clb int32) {
	if !v.overCLB[clb] {
		v.overCLB[clb] = true
		v.overCLBList = append(v.overCLBList, clb)
	}
	v.evalStale = true
}

func (v *Vector) addEdge(id int32, ll int32) {
	if len(v.llAddByOut[id]) == 0 {
		v.llAddTouched = append(v.llAddTouched, id)
	}
	v.llAddByOut[id] = append(v.llAddByOut[id], ll)
}

// ApplyDelta installs lane's single-bit overlay, resolving select fields to
// flat state indices against the compiled design. Lanes carry at most one
// delta per batch.
func (v *Vector) ApplyDelta(lane int, d VectorDelta) {
	c := v.c
	bit := uint64(1) << uint(lane)
	switch d.kind {
	case vdNone:
	case vdTruth, vdInSel:
		li := d.clb*device.LUTsPerCLB + int32(d.l)
		p := lutLanePatch{lane: uint8(lane), truth: c.truth[li]}
		i4 := int(li) * device.LUTInputs
		copy(p.inID[:], c.inID[i4:i4+device.LUTInputs])
		if d.kind == vdTruth {
			p.truth ^= 1 << d.bit
		} else {
			p.inID[d.in] = c.slotID[int(d.clb)*device.InMuxWays+int(d.sel)]
		}
		if len(v.lutOver[li]) == 0 {
			v.lutTouched = append(v.lutTouched, li)
		}
		v.lutOver[li] = append(v.lutOver[li], p)
		v.markCLB(d.clb)
		if v.eventDriven {
			v.scheduleLUTVec(li)
			for _, id := range p.inID {
				if id < int32(c.nets) {
					v.addFanAddEdge(id, li)
				}
			}
		}
	case vdOutMux:
		li := d.clb*device.LUTsPerCLB + int32(d.l)
		if v.muxXor[li] == 0 {
			v.muxTouched = append(v.muxTouched, li)
		}
		v.muxXor[li] ^= bit
		v.markCLB(d.clb)
		if v.eventDriven {
			v.scheduleLUTVec(li)
		}
	case vdFFCE:
		i := d.clb*device.FFsPerCLB + int32(d.l)
		var ceID int32
		switch d.mode {
		case device.CEHalfLatch:
			ceID = c.ceHLConst[i]
		case device.CERouted:
			ceID = c.slotID[int(d.clb)*device.InMuxWays+int(d.sel)]
		case device.CEConstZero:
			ceID = c.constZero
		default: // CEConstOne
			ceID = c.constOne
		}
		if len(v.ceOver[i]) == 0 {
			v.ceTouched = append(v.ceTouched, i)
		}
		v.ceOver[i] = append(v.ceOver[i], ceLanePatch{lane: uint8(lane), ceID: ceID})
		v.markCLB(d.clb)
	case vdFFDInv:
		i := d.clb*device.FFsPerCLB + int32(d.l)
		if v.dinvXor[i] == 0 {
			v.dinvTouched = append(v.dinvTouched, i)
		}
		v.dinvXor[i] ^= bit
		v.markCLB(d.clb)
	case vdLLAdd:
		id := d.clb*4 + int32(d.src)
		v.addLLPatch(d.ll, llLanePatch{lane: uint8(lane), skip: -1, addID: id})
		v.addEdge(id, d.ll)
		v.markLLStaleVec(d.ll, bit)
	case vdLLRemove:
		// The golden driver entry's value is its CLB-output state index, so
		// the skip matches by value (BRAM driver indices are disjoint).
		v.addLLPatch(d.ll, llLanePatch{lane: uint8(lane), skip: d.clb*4 + int32(d.src), addID: -1})
		v.markLLStaleVec(d.ll, bit)
	case vdLLSrc:
		id := d.clb*4 + int32(d.nsrc)
		v.addLLPatch(d.ll, llLanePatch{lane: uint8(lane), skip: d.clb*4 + int32(d.src), addID: id})
		v.addEdge(id, d.ll)
		v.markLLStaleVec(d.ll, bit)
	}
}

// removeEdge drops one (id -> ll) overlay refresh edge, the inverse of
// addEdge. Exact in both kernels: with the lane's patch gone the added
// driver contributes to no lane's wired-AND, so the refresh it triggered
// was already a no-op.
func (v *Vector) removeEdge(id int32, ll int32) {
	s := v.llAddByOut[id]
	for i, x := range s {
		if x == ll {
			s[i] = s[len(s)-1]
			v.llAddByOut[id] = s[:len(s)-1]
			return
		}
	}
}

func (v *Vector) addLLPatch(ll int32, p llLanePatch) {
	if len(v.llOver[ll]) == 0 {
		v.llTouched = append(v.llTouched, ll)
	}
	v.llOver[ll] = append(v.llOver[ll], p)
}

// RemoveDelta repairs lane's overlay: since every delta is a single bit of
// a non-history-coupled resource, removing the overlay leaves the lane's
// effective configuration exactly golden — the lane equivalent of the
// scalar frame write-back.
//
// In the sweep kernel, refresh-edge entries and the overlay CLB's
// membership in the evaluation plan are left in place; both are exact
// no-ops under the golden configuration, and the per-batch ResetBatch
// clears them. The event kernel instead unwinds them edge-for-edge (and
// schedules the repaired logic so the next drain re-derives the lane under
// golden configuration): with mid-batch lane refill a batch can span
// thousands of injections, and keeping every retired overlay's plan
// residue would grow the per-clock work without bound.
func (v *Vector) RemoveDelta(lane int, d VectorDelta) {
	c := v.c
	bit := uint64(1) << uint(lane)
	switch d.kind {
	case vdNone:
	case vdTruth, vdInSel:
		li := d.clb*device.LUTsPerCLB + int32(d.l)
		v.lutOver[li] = dropLutPatch(v.lutOver[li], uint8(lane))
		if v.eventDriven {
			v.scheduleLUTVec(li)
			// Unsubscribe the same resolved input ids ApplyDelta added.
			i4 := int(li) * device.LUTInputs
			for in := 0; in < device.LUTInputs; in++ {
				id := c.inID[i4+in]
				if d.kind == vdInSel && in == int(d.in) {
					id = c.slotID[int(d.clb)*device.InMuxWays+int(d.sel)]
				}
				if id < int32(c.nets) {
					v.removeFanAddEdge(id, li)
				}
			}
			v.maybeUnmarkCLB(d.clb)
		}
	case vdOutMux:
		li := d.clb*device.LUTsPerCLB + int32(d.l)
		v.muxXor[li] &^= bit
		if v.eventDriven {
			v.scheduleLUTVec(li)
			v.maybeUnmarkCLB(d.clb)
		}
	case vdFFCE:
		i := d.clb*device.FFsPerCLB + int32(d.l)
		ps := v.ceOver[i]
		for k := range ps {
			if ps[k].lane == uint8(lane) {
				ps[k] = ps[len(ps)-1]
				v.ceOver[i] = ps[:len(ps)-1]
				break
			}
		}
		if v.eventDriven {
			v.maybeUnmarkCLB(d.clb)
		}
	case vdFFDInv:
		i := d.clb*device.FFsPerCLB + int32(d.l)
		v.dinvXor[i] &^= bit
		if v.eventDriven {
			v.maybeUnmarkCLB(d.clb)
		}
	case vdLLAdd, vdLLRemove, vdLLSrc:
		ps := v.llOver[d.ll]
		for k := range ps {
			if ps[k].lane == uint8(lane) {
				ps[k] = ps[len(ps)-1]
				v.llOver[d.ll] = ps[:len(ps)-1]
				break
			}
		}
		switch d.kind {
		case vdLLAdd:
			v.removeEdge(d.clb*4+int32(d.src), d.ll)
		case vdLLSrc:
			v.removeEdge(d.clb*4+int32(d.nsrc), d.ll)
		}
		// The lane's wired-AND reverts to golden at the next end-of-round
		// refresh (end-of-sweep llTouched refresh in the sweep kernel).
		v.markLLStaleVec(d.ll, bit)
	}
}

func dropLutPatch(ps []lutLanePatch, lane uint8) []lutLanePatch {
	for k := range ps {
		if ps[k].lane == lane {
			ps[k] = ps[len(ps)-1]
			return ps[:len(ps)-1]
		}
	}
	return ps
}

// SetPinWord drives input pin p with one bit per lane.
func (v *Vector) SetPinWord(p int, w uint64) {
	id := int32(int(v.c.pinBase) + p)
	if v.state[id] == w {
		return
	}
	v.state[id] = w
	if v.eventDriven {
		v.scheduleNetConsumersVec(id)
	}
}

// PinWord returns the lane word currently driving input pin p.
func (v *Vector) PinWord(p int) uint64 { return v.state[int(v.c.pinBase)+p] }

// NetWord returns the lane word of dense net id.
func (v *Vector) NetWord(id int) uint64 { return v.state[id] }

// rebuildLists recomputes the batch evaluation plan: the golden active sets
// (precompiled, in golden topological order) merged with the LUTs/CLBs that
// only overlay lanes activated this batch. The merge by topological
// position reproduces exactly the old full scan of f.order filtered by
// (active || overlay CLB), at overlay-count cost instead of device cost.
func (v *Vector) rebuildLists() {
	c := v.c
	ex := v.extraLUTs[:0]
	cx := v.extraCLBs[:0]
	for _, ci := range v.overCLBList {
		if !c.clbActive[ci] {
			cx = append(cx, ci)
		}
		base := ci * device.LUTsPerCLB
		for k := int32(0); k < device.LUTsPerCLB; k++ {
			if li := base + k; !c.activeLUT[li] {
				ex = append(ex, li)
			}
		}
	}
	// Insertion sorts: at most 4 LUTs per overlay CLB, 64 lanes per batch.
	for i := 1; i < len(ex); i++ {
		for j := i; j > 0 && c.lutPos[ex[j]] < c.lutPos[ex[j-1]]; j-- {
			ex[j], ex[j-1] = ex[j-1], ex[j]
		}
	}
	for i := 1; i < len(cx); i++ {
		for j := i; j > 0 && cx[j] < cx[j-1]; j-- {
			cx[j], cx[j-1] = cx[j-1], cx[j]
		}
	}
	v.extraLUTs, v.extraCLBs = ex, cx

	v.evalList = v.evalList[:0]
	bi, ei := 0, 0
	for bi < len(c.evalBase) && ei < len(ex) {
		if c.evalBasePos[bi] < c.lutPos[ex[ei]] {
			v.evalList = append(v.evalList, c.evalBase[bi])
			bi++
		} else {
			v.evalList = append(v.evalList, ex[ei])
			ei++
		}
	}
	v.evalList = append(v.evalList, c.evalBase[bi:]...)
	v.evalList = append(v.evalList, ex[ei:]...)

	v.clockList = v.clockList[:0]
	bi, ei = 0, 0
	for bi < len(c.clockBase) && ei < len(cx) {
		if c.clockBase[bi] < cx[ei] {
			v.clockList = append(v.clockList, c.clockBase[bi])
			bi++
		} else {
			v.clockList = append(v.clockList, cx[ei])
			ei++
		}
	}
	v.clockList = append(v.clockList, c.clockBase[bi:]...)
	v.clockList = append(v.clockList, cx[ei:]...)
	v.evalStale = false
}

// truthWord evaluates a 16-bit truth table over four lane-word inputs via
// the mux identity: level 1 collapses input 0 against truth bit pairs,
// levels 2..4 are generic (hi & s) | (lo &^ s) reductions. Level 1 is
// branchless — each truth pair (lo, hi) selects one of {0, ^s0, s0, ^0},
// all four of which are P ^ (Q & s0) for P = sign-extended lo and
// Q = sign-extended lo^hi — so lane throughput does not depend on how
// predictable the design's truth tables are.
func truthWord(t uint16, s0, s1, s2, s3 uint64) uint64 {
	var w [8]uint64
	for k := 0; k < 8; k++ {
		pair := t >> uint(2*k)
		p := -uint64(pair & 1)
		q := -uint64((pair ^ pair>>1) & 1)
		w[k] = p ^ (q & s0)
	}
	n1 := ^s1
	w[0] = w[0]&n1 | w[1]&s1
	w[1] = w[2]&n1 | w[3]&s1
	w[2] = w[4]&n1 | w[5]&s1
	w[3] = w[6]&n1 | w[7]&s1
	n2 := ^s2
	w[0] = w[0]&n2 | w[1]&s2
	w[1] = w[2]&n2 | w[3]&s2
	return w[0]&^s3 | w[1]&s3
}

// laneLUTBit evaluates one overlaid lane's LUT scalar-style through its
// patched, pre-resolved input indices.
func (v *Vector) laneLUTBit(p *lutLanePatch) uint64 {
	idx := 0
	for in := 0; in < device.LUTInputs; in++ {
		if v.state[p.inID[in]]>>p.lane&1 == 1 {
			idx |= 1 << uint(in)
		}
	}
	return uint64(p.truth>>uint(idx)) & 1
}

// laneLineBit recomputes one overlaid lane's long line: the golden wired-
// AND with the lane's skipped entry removed and its extra driver ANDed in.
// A lane whose overlay removes the only driver reads the line's keeper.
func (v *Vector) laneLineBit(ll int, p *llLanePatch) uint64 {
	c := v.c
	n := 0
	val := uint64(1)
	for _, di := range c.llDrv[c.llStart[ll]:c.llStart[ll+1]] {
		if di == p.skip {
			continue
		}
		n++
		val &= v.state[di] >> p.lane
	}
	if p.addID >= 0 {
		n++
		val &= v.state[p.addID] >> p.lane
	}
	if n == 0 {
		return c.llKeep[ll] & 1
	}
	return val & 1
}

// refreshLine recomputes long line ll for all lanes and returns the word of
// lanes that changed (0 when none did). A full refresh makes every pending
// out-of-band change visible, so it clears the line's pending mask.
func (v *Vector) refreshLine(ll int) uint64 {
	v.llPendW[ll] = 0
	c := v.c
	s, e := c.llStart[ll], c.llStart[ll+1]
	var w uint64
	if s == e {
		w = c.llKeep[ll]
	} else {
		w = ^uint64(0)
		for _, di := range c.llDrv[s:e] {
			w &= v.state[di]
		}
	}
	if ps := v.llOver[ll]; len(ps) > 0 {
		for i := range ps {
			p := &ps[i]
			w = w&^(1<<p.lane) | v.laneLineBit(ll, p)<<p.lane
		}
	}
	id := c.llNetBase + int32(ll)
	old := v.state[id]
	if old == w {
		return 0
	}
	v.state[id] = w
	return old ^ w
}

// refreshLineFrom recomputes long line ll after driving output src changed
// in lanes trigger, holding lanes that carry a pending out-of-band change
// (overlay install or repair, BRAM output register move) the trigger does
// not entitle to refresh. The scalar witness of such a lane refreshes this
// line only when one of ITS OWN drivers changes or at the end-of-sweep
// pass; recomputing all lanes here would apply the pending change a round
// early, which is observable when the design oscillates into the MaxSweeps
// freeze. Eligibility is per lane: for a golden driver edge (byOutLL) every
// trigger lane is eligible except those whose overlay skips src; for an
// overlay-added edge (llAddByOut) only trigger lanes whose overlay adds src
// are. Lanes that are neither pending nor eligible recompute to their
// current value — every driver change in a lane arrives through an edge
// that lane is eligible for, so outside the pending mask the line always
// equals its wired-AND.
func (v *Vector) refreshLineFrom(ll int, src int32, golden bool, trigger uint64) uint64 {
	pend := v.llPendW[ll]
	if pend == 0 {
		return v.refreshLine(ll)
	}
	ps := v.llOver[ll]
	elig := trigger
	if golden {
		for i := range ps {
			if ps[i].skip == src {
				elig &^= 1 << ps[i].lane
			}
		}
	} else {
		elig = 0
		for i := range ps {
			if ps[i].addID == src {
				elig |= trigger & (1 << ps[i].lane)
			}
		}
	}
	hold := pend &^ elig
	if hold == 0 {
		return v.refreshLine(ll)
	}
	c := v.c
	s, e := c.llStart[ll], c.llStart[ll+1]
	var w uint64
	if s == e {
		w = c.llKeep[ll]
	} else {
		w = ^uint64(0)
		for _, di := range c.llDrv[s:e] {
			w &= v.state[di]
		}
	}
	for i := range ps {
		p := &ps[i]
		w = w&^(1<<p.lane) | v.laneLineBit(ll, p)<<p.lane
	}
	id := c.llNetBase + int32(ll)
	old := v.state[id]
	w = w&^hold | old&hold
	v.llPendW[ll] = hold
	if old == w {
		return 0
	}
	v.state[id] = w
	return old ^ w
}

// Settle evaluates combinational logic to a lane-wise fixpoint: the
// event-driven worklist drain by default (vecevent.go), or the full-sweep
// loop when the kernel is switched off.
func (v *Vector) Settle() {
	if v.eventDriven {
		v.settleEventVec()
		return
	}
	v.settleSweep()
}

// settleSweep is the full-sweep settling loop, mirroring the scalar sweep
// kernel (same evaluation order, same in-sweep long-line refresh, same
// MaxSweeps freeze; the end-of-sweep refresh is restricted to the lines
// that can actually have gone stale — see below — which is state-identical
// to the scalar kernel's full pass, changed flag included). The hot loop is
// pure flat-slice traffic: truth/input indices/mux words stream from the
// compiled design, state reads are single-indexed loads.
func (v *Vector) settleSweep() {
	if v.evalStale {
		v.rebuildLists()
	}
	c := v.c
	st := v.state
	truth, inID, lut := c.truth, c.inID, v.lut
	muxW, muxXor, ff := c.muxW, v.muxXor, v.ff
	work := 0
	for sweeps := 0; sweeps < v.MaxSweeps; sweeps++ {
		changed := false
		for _, li := range v.evalList {
			i4 := int(li) * device.LUTInputs
			in := inID[i4 : i4+4 : i4+4]
			w := truthWord(truth[li], st[in[0]], st[in[1]], st[in[2]], st[in[3]])
			if ps := v.lutOver[li]; len(ps) > 0 {
				for i := range ps {
					p := &ps[i]
					w = w&^(1<<p.lane) | v.laneLUTBit(p)<<p.lane
				}
			}
			if lut[li] != w {
				lut[li] = w
				changed = true
			}
			mux := muxW[li] ^ muxXor[li]
			out := ff[li]&mux | w&^mux
			if st[li] != out {
				trig := st[li] ^ out
				st[li] = out
				changed = true
				for _, ll := range c.byOutLL[c.byOutStart[li]:c.byOutStart[li+1]] {
					v.refreshLineFrom(int(ll), li, true, trig)
				}
				for _, ll := range v.llAddByOut[li] {
					v.refreshLineFrom(int(ll), li, false, trig)
				}
			}
		}
		// End-of-sweep line refresh, restricted to the lines that can have
		// gone stale: a line whose drivers are all CLB outputs was refreshed
		// in-sweep at every driver change (byOutLL plus llAddByOut cover the
		// golden and overlay-added drivers), so re-deriving it here is a
		// provable no-op — including its contribution to the changed flag.
		// Only BRAM-driven lines (douts move in Clock, which has no refresh
		// edges) and lines carrying lane overlays this batch (overlay
		// install/repair rewrites their per-lane wired-AND out of band) can
		// differ. llTouched may overlap llExternal; refreshLine is
		// idempotent, so the duplicate call is harmless.
		for _, ll := range c.llExternal {
			if v.refreshLine(int(ll)) != 0 {
				changed = true
			}
		}
		for _, ll := range v.llTouched {
			if v.refreshLine(int(ll)) != 0 {
				changed = true
			}
		}
		if !changed {
			break
		}
		work++
	}
	if work > 0 {
		v.statRounds += int64(work)
		v.statDrains++
	}
}

// Clock performs one rising edge: flip-flops of the clock list load their
// (possibly lane-inverted) D inputs under their lane-wise clock enables,
// then every BRAM block registers its addressed word per enabled lane.
// Frozen (inactive) lanes hold their flip-flops and BRAM registers, so
// retired lanes generate no settling work.
//
// The event path iterates the golden clock set plus live overlay CLBs
// directly instead of the merged clockList: mid-batch install/repair would
// otherwise force an O(active-set) list rebuild per injection, and flip-
// flop updates are mutually independent, so iteration order is free.
func (v *Vector) Clock() {
	if v.eventDriven {
		for _, ci := range v.c.clockBase {
			v.clockCLB(ci)
		}
		for _, ci := range v.overCLBList {
			if !v.c.clbActive[ci] {
				v.clockCLB(ci)
			}
		}
	} else {
		if v.evalStale {
			v.rebuildLists()
		}
		for _, ci := range v.clockList {
			v.clockCLB(ci)
		}
	}
	for bi := range v.c.bramEnID {
		v.clockBRAM(bi)
	}
}

// clockCLB updates one CLB's flip-flops. When a flip-flop changes in a
// lane whose output mux selects it, the LUT's output net will move, so the
// event kernel schedules it for the next drain.
func (v *Vector) clockCLB(ci int32) {
	c := v.c
	st := v.state
	base := int(ci) * device.FFsPerCLB
	for k := 0; k < device.FFsPerCLB; k++ {
		i := base + k
		ce := st[c.ceID[i]]
		if ps := v.ceOver[i]; len(ps) > 0 {
			for idx := range ps {
				p := &ps[idx]
				bit := st[p.ceID] >> p.lane & 1
				ce = ce&^(1<<p.lane) | bit<<p.lane
			}
		}
		ce &= v.active
		d := v.lut[i] ^ c.dinvW[i] ^ v.dinvXor[i]
		old := v.ff[i]
		nw := d&ce | old&^ce
		if nw == old {
			continue
		}
		v.ff[i] = nw
		if v.eventDriven && (nw^old)&(c.muxW[i]^v.muxXor[i]) != 0 {
			v.scheduleLUTVec(int32(i))
		}
	}
}

// clockBRAM registers the addressed content word into each enabled lane's
// output register. Writable BRAM never reaches the vector path (such
// designs are history-coupled), so the content array is shared read-only
// across lanes and the scalar kernel's write/interference paths have no
// vector counterpart.
func (v *Vector) clockBRAM(bi int) {
	c := v.c
	enID := c.bramEnID[bi]
	if enID < 0 {
		return
	}
	en := v.state[enID] & v.full & v.active
	if en == 0 {
		return
	}
	addrIDs := c.bramAddrID[bi*device.BRAMAddrBits : (bi+1)*device.BRAMAddrBits]
	var addrW [device.BRAMAddrBits]uint64
	for j, id := range addrIDs {
		if id >= 0 {
			addrW[j] = v.state[id]
		}
	}
	mem := c.bramMem[bi]
	out := v.state[int(c.bramBase)+bi*device.BRAMWidth:][:device.BRAMWidth]
	var changed uint64
	for rest := en; rest != 0; rest &= rest - 1 {
		lane := uint(bits.TrailingZeros64(rest))
		addr := 0
		for j := 0; j < device.BRAMAddrBits; j++ {
			addr |= int(addrW[j]>>lane&1) << uint(j)
		}
		word := mem[addr]
		mask := uint64(1) << lane
		for j := 0; j < device.BRAMWidth; j++ {
			old := out[j]
			if word>>uint(j)&1 == 1 {
				out[j] = old | mask
			} else {
				out[j] = old &^ mask
			}
			changed |= old ^ out[j]
		}
	}
	// A moved output register invalidates the long lines this block drives;
	// the next settle's end-of-round refresh (end-of-sweep llExternal
	// refresh in the sweep kernel) makes it visible. The changed lanes go
	// into the pending mask so a triggered refresh from another lane's
	// driver cannot apply the move early.
	if changed != 0 {
		for _, ll := range c.bramLL[bi] {
			v.markLLStaleVec(ll, changed)
		}
	}
}

// Step advances all lanes one clock: settle, clock, settle — the vector
// image of the scalar Step.
func (v *Vector) Step() {
	v.Settle()
	v.Clock()
	v.Settle()
}

// DivergenceWord ORs the lane-wise XOR of every state word of two Vectors:
// bit i is set iff lane i of a and b differ anywhere. With overlays
// removed (lane configuration golden), a clear bit is exactly the scalar
// lock-step condition — identical state under identical configuration
// yields identical futures — restricted to that lane.
func DivergenceWord(a, b *Vector) uint64 {
	var d uint64
	for i, w := range a.state {
		d |= w ^ b.state[i]
	}
	for i, w := range a.lut {
		d |= w ^ b.lut[i]
	}
	for i, w := range a.ff {
		d |= w ^ b.ff[i]
	}
	return d
}
