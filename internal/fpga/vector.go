package fpga

import (
	"math/bits"

	"repro/internal/device"
)

// Bit-parallel fault simulation: 64 fault universes evaluated per sweep.
//
// A Vector is a lane-parallel re-implementation of the full-sweep kernel in
// sim.go: every bool of device state (netVal, lutVal, ffVal, BRAM output
// register bits) becomes one uint64 word whose lane i holds the value that
// state bit has in fault universe i. All lanes share the golden decoded
// configuration; a universe's single-bit configuration delta is represented
// as a per-lane overlay (a patched truth table, a flipped output mux, an
// extra long-line driver, ...) consulted during evaluation instead of a
// re-decode. LUTs evaluate all 64 universes at once through the truth-table
// mux identity; wired-AND long lines are a lane-wise AND of their driver
// words; the flip-flop update is the classic mux word (d & ce) | (ff &^ ce).
//
// Exactness. Per lane, a Vector sweep is the scalar sweep of sim.go run
// under that lane's configuration:
//
//   - the evaluation list is the golden active set extended by every CLB
//     carrying an overlay — a superset of the scalar active/dirty set in
//     every lane. The extra evaluations are of inactive un-overlaid LUTs,
//     which always evaluate to 0, exactly the value the scalar kernel
//     froze them at (truth 0 and no SRL/registered output implies constant
//     0), so they never change a lane and never mark the sweep changed;
//   - in-sweep long-line refresh triggers are the golden llByOut edges
//     plus the edges added by lane overlays — again a superset in every
//     lane, and a long-line refresh is a stateless recompute, so spurious
//     triggers are no-ops — and every sweep ends with a refresh of all
//     lines, exactly like the scalar kernel;
//   - the sweep loop runs until no lane changes, bounded by MaxSweeps. A
//     lane at fixpoint re-evaluates to itself, so extra sweeps forced by a
//     still-settling (or oscillating) lane are identities; an oscillating
//     lane freezes after exactly MaxSweeps sweeps, the state the scalar
//     kernel freezes it in.
//
// Configurations a per-lane overlay cannot represent exactly — SRL16 shift
// registers, writable BRAM, stuck-at overlays, LUT-mode flips — are never
// given a lane: PlanVectorDelta demotes those bits to the scalar path.

// vectorDeltaKind enumerates the behavioural effects a single configuration
// bit flip can have relative to the golden decode.
type vectorDeltaKind uint8

const (
	// vdNone: the flip provably changes no decoded behaviour (padding,
	// extra frames, FF init bits, fields of disabled resources).
	vdNone vectorDeltaKind = iota
	vdTruth
	vdInSel
	vdOutMux
	vdFFCE
	vdFFDInv
	vdLLAdd
	vdLLRemove
	vdLLSrc
)

// VectorDelta is the decoded behavioural effect of flipping one
// configuration bit, expressed against the golden decode so a lane can
// apply it as an overlay without re-decoding.
type VectorDelta struct {
	kind vectorDeltaKind
	clb  int32
	ll   int32 // dense long-line index (vdLL*)
	l    uint8 // LUT / FF / output index within the CLB
	in   uint8 // LUT input index (vdInSel)
	bit  uint8 // truth-table bit (vdTruth)
	sel  uint8 // new input/CE select (vdInSel, vdFFCE)
	mode device.CEMode
	src  uint8 // golden driver source (vdLLRemove, vdLLSrc), new (vdLLAdd)
	nsrc uint8 // flipped driver source (vdLLSrc)
}

// Inert reports whether the delta provably changes no behaviour: the lane
// would be identical to golden, so the campaign can retire the bit as
// benign without spending a lane on it.
func (d VectorDelta) Inert() bool { return d.kind == vdNone }

// PlanVectorDelta translates a configuration-bit flip into its lane
// overlay. ok=false demotes the bit to the scalar path: the flip creates
// state the lane machinery does not model (an SRL16 whose truth table
// shifts, BRAM content or port changes). The caller is responsible for
// only planning against non-history-coupled devices (no SRLs, no writable
// BRAM, no stuck overlay) whose decode is golden.
func (f *FPGA) PlanVectorDelta(a device.BitAddr, info device.BitInfo) (VectorDelta, bool) {
	switch info.Kind {
	case device.KindPad, device.KindExtra:
		return VectorDelta{}, true
	case device.KindBRAMContent, device.KindBRAMPort:
		return VectorDelta{}, false
	}
	clb := int32(info.R*f.geom.Cols + info.C)
	cfg := &f.clbs[clb]
	cb := info.CB
	switch {
	case cb < device.CBInMuxBase:
		l := cb / device.LUTBits
		if cfg.lut[l].srl {
			return VectorDelta{}, false // live shifting state
		}
		return VectorDelta{kind: vdTruth, clb: clb, l: uint8(l), bit: uint8(cb % device.LUTBits)}, true
	case cb < device.CBFFBase:
		field := (cb - device.CBInMuxBase) / device.InMuxSelBits
		k := (cb - device.CBInMuxBase) % device.InMuxSelBits
		l := field / device.LUTInputs
		in := field % device.LUTInputs
		return VectorDelta{kind: vdInSel, clb: clb, l: uint8(l), in: uint8(in),
			sel: cfg.lut[l].inSel[in] ^ 1<<k}, true
	case cb < device.CBOutMuxBase:
		k := (cb - device.CBFFBase) / device.FFCfgBits
		sub := (cb - device.CBFFBase) % device.FFCfgBits
		ff := &cfg.ff[k]
		switch {
		case sub == device.FFInitBit:
			// Init values load only at full-configuration start-up, which
			// never runs mid-campaign.
			return VectorDelta{}, true
		case sub == device.FFCEModeLo:
			return VectorDelta{kind: vdFFCE, clb: clb, l: uint8(k), mode: ff.ceMode ^ 1, sel: ff.ceSel}, true
		case sub == device.FFCEModeHi:
			return VectorDelta{kind: vdFFCE, clb: clb, l: uint8(k), mode: ff.ceMode ^ 2, sel: ff.ceSel}, true
		case sub >= device.FFCESelBase && sub < device.FFCESelBase+device.InMuxSelBits:
			return VectorDelta{kind: vdFFCE, clb: clb, l: uint8(k), mode: ff.ceMode,
				sel: ff.ceSel ^ 1<<(sub-device.FFCESelBase)}, true
		default: // FFDInvBit
			return VectorDelta{kind: vdFFDInv, clb: clb, l: uint8(k)}, true
		}
	case cb < device.CBLLBase:
		return VectorDelta{kind: vdOutMux, clb: clb, l: uint8(cb - device.CBOutMuxBase)}, true
	case cb < device.CBLUTModeBase:
		d := (cb - device.CBLLBase) / device.LLDrvBits
		sub := (cb - device.CBLLBase) % device.LLDrvBits
		drv := &cfg.ll[d]
		ll := int32(f.llIndexOf(info.R, info.C, d))
		if sub == device.LLEnableBit {
			if drv.enable {
				return VectorDelta{kind: vdLLRemove, clb: clb, ll: ll, src: drv.src}, true
			}
			return VectorDelta{kind: vdLLAdd, clb: clb, ll: ll, src: drv.src}, true
		}
		if !drv.enable {
			// Source select of a disabled driver: decode-identical.
			return VectorDelta{}, true
		}
		k := sub - device.LLSrcBase
		return VectorDelta{kind: vdLLSrc, clb: clb, ll: ll, src: drv.src, nsrc: drv.src ^ 1<<k}, true
	default:
		// LUT-mode bits (and any CLB bit beyond the modelled range is
		// KindPad, handled above): flipping one turns a LUT into a live
		// shift register — history-coupled state the lanes cannot carry.
		return VectorDelta{}, false
	}
}

// VectorSnapshot is the canonical post-reset device state every fault
// universe starts from, captured once per campaign and broadcast into the
// lanes of each batch.
type VectorSnapshot struct {
	net     []bool
	lut     []bool
	ff      []bool
	bramOut []uint16
}

// CaptureVectorSnapshot records the device's current settled state. The
// caller is expected to have put the device into the campaign's canonical
// state first (pins low, Reset).
func (f *FPGA) CaptureVectorSnapshot() *VectorSnapshot {
	return &VectorSnapshot{
		net:     append([]bool(nil), f.netVal...),
		lut:     append([]bool(nil), f.lutVal...),
		ff:      append([]bool(nil), f.ffVal...),
		bramOut: append([]uint16(nil), f.bramOut...),
	}
}

// Per-lane overlay records. Each lane carries at most one single-bit delta,
// so patch lists stay tiny; they are scanned, not indexed.
type lutLanePatch struct {
	lane  uint8
	truth uint16
	inSel [device.LUTInputs]uint8
}

type ceLanePatch struct {
	lane uint8
	mode device.CEMode
	sel  uint8
}

type llLanePatch struct {
	lane  uint8
	skip  int8  // index into the golden driver list to ignore, -1 none
	addID int32 // dense net ID of an extra driver to AND in, -1 none
}

// Vector is the 64-lane simulation machine for one device. Two Vectors
// (golden and DUT) built from the same *FPGA share its decoded
// configuration read-only; only the DUT Vector carries overlays.
type Vector struct {
	f    *FPGA
	full uint64 // mask of live lanes

	// Lane-parallel state words (lane i = fault universe i).
	net     []uint64
	lut     []uint64
	ff      []uint64
	bramOut [][]uint64 // per block, per output-register bit

	// Canonical broadcast of the campaign's post-reset state.
	canonNet     []uint64
	canonLut     []uint64
	canonFF      []uint64
	canonBRAMOut [][]uint64

	// Precomputed per-block port net IDs (-1 = invalid/constant-0 field).
	bramEnID   []int32
	bramAddrID [][]int32

	// Batch evaluation plan: the golden active sets extended by overlay
	// CLBs, rebuilt lazily after overlays change.
	evalList  []int32
	clockList []int32
	evalStale bool

	// Per-lane overlays (DUT side only), reset per batch. The *Touched
	// lists make the reset proportional to the batch's overlay count, not
	// the device size.
	overCLB     []bool
	overCLBList []int32
	lutOver     [][]lutLanePatch
	lutTouched  []int32
	muxXor      []uint64 // lanes with a flipped output mux, per LUT
	muxTouched  []int32
	ceOver      [][]ceLanePatch
	ceTouched   []int32
	dinvXor     []uint64 // lanes with a flipped D inverter, per FF
	dinvTouched []int32
	llOver      [][]llLanePatch
	llTouched   []int32
	// llAddByOut holds in-sweep refresh edges for drivers that exist only
	// in some lane's overlay, keyed by the driving output's net ID.
	llAddByOut   [][]int32
	llAddTouched []int32

	// MaxSweeps mirrors the scalar oscillation bound.
	MaxSweeps int
}

// NewVector builds a lane machine over f's decoded configuration with snap
// as the canonical per-lane start state. f must not be history-coupled
// (the planner's demotions guarantee campaign use never is).
func NewVector(f *FPGA, snap *VectorSnapshot) *Vector {
	g := f.geom
	v := &Vector{
		f:         f,
		net:       make([]uint64, g.NumNets()),
		lut:       make([]uint64, g.LUTs()),
		ff:        make([]uint64, g.CLBs()*device.FFsPerCLB),
		overCLB:   make([]bool, g.CLBs()),
		lutOver:   make([][]lutLanePatch, g.LUTs()),
		muxXor:    make([]uint64, g.LUTs()),
		ceOver:    make([][]ceLanePatch, g.CLBs()*device.FFsPerCLB),
		dinvXor:   make([]uint64, g.CLBs()*device.FFsPerCLB),
		llOver:    make([][]llLanePatch, len(f.llDrivers)),
		llAddByOut: make([][]int32, 4*g.CLBs()),
		MaxSweeps: f.MaxSweeps,
		evalStale: true,
	}
	v.canonNet = broadcastBools(snap.net)
	v.canonLut = broadcastBools(snap.lut)
	v.canonFF = broadcastBools(snap.ff)
	v.bramOut = make([][]uint64, g.BRAMBlocks())
	v.canonBRAMOut = make([][]uint64, g.BRAMBlocks())
	for bi := range v.bramOut {
		v.bramOut[bi] = make([]uint64, device.BRAMWidth)
		w := make([]uint64, device.BRAMWidth)
		for j := 0; j < device.BRAMWidth; j++ {
			if snap.bramOut[bi]&(1<<uint(j)) != 0 {
				w[j] = ^uint64(0)
			}
		}
		v.canonBRAMOut[bi] = w
	}
	v.bramEnID = make([]int32, g.BRAMBlocks())
	v.bramAddrID = make([][]int32, g.BRAMBlocks())
	for bi := range v.bramEnID {
		cfg := &f.brams[bi]
		v.bramEnID[bi] = v.bramPortNetID(bi, cfg.en)
		ids := make([]int32, device.BRAMAddrBits)
		for j := 0; j < device.BRAMAddrBits; j++ {
			ids[j] = v.bramPortNetID(bi, cfg.addr[j])
		}
		v.bramAddrID[bi] = ids
	}
	return v
}

func broadcastBools(src []bool) []uint64 {
	out := make([]uint64, len(src))
	for i, b := range src {
		if b {
			out[i] = ^uint64(0)
		}
	}
	return out
}

// bramPortNetID resolves a BRAM port-input field to the dense net ID it
// samples, mirroring bramPortValue's row clamp. -1 means constant 0.
func (v *Vector) bramPortNetID(bi int, sel bramPortSel) int32 {
	if !sel.valid {
		return -1
	}
	f := v.f
	bc, blk := f.bramColBlk(bi)
	g := f.geom
	r := g.BRAMRowBase(blk) + int(sel.rowOff)
	if r >= g.Rows {
		r = g.Rows - 1
	}
	c := g.BRAMAdjCol(bc)
	return int32((r*g.Cols+c)*4 + int(sel.out))
}

// ResetBatch restores every lane to the canonical snapshot, clears all
// overlays, and sets the live-lane mask to the low n lanes.
func (v *Vector) ResetBatch(n int) {
	if n >= 64 {
		v.full = ^uint64(0)
	} else {
		v.full = 1<<uint(n) - 1
	}
	copy(v.net, v.canonNet)
	copy(v.lut, v.canonLut)
	copy(v.ff, v.canonFF)
	for bi := range v.bramOut {
		copy(v.bramOut[bi], v.canonBRAMOut[bi])
	}
	for _, li := range v.lutTouched {
		v.lutOver[li] = v.lutOver[li][:0]
	}
	v.lutTouched = v.lutTouched[:0]
	for _, li := range v.muxTouched {
		v.muxXor[li] = 0
	}
	v.muxTouched = v.muxTouched[:0]
	for _, i := range v.ceTouched {
		v.ceOver[i] = v.ceOver[i][:0]
	}
	v.ceTouched = v.ceTouched[:0]
	for _, i := range v.dinvTouched {
		v.dinvXor[i] = 0
	}
	v.dinvTouched = v.dinvTouched[:0]
	for _, ll := range v.llTouched {
		v.llOver[ll] = v.llOver[ll][:0]
	}
	v.llTouched = v.llTouched[:0]
	for _, id := range v.llAddTouched {
		v.llAddByOut[id] = v.llAddByOut[id][:0]
	}
	v.llAddTouched = v.llAddTouched[:0]
	for _, ci := range v.overCLBList {
		v.overCLB[ci] = false
	}
	v.overCLBList = v.overCLBList[:0]
	v.evalStale = true
}

func (v *Vector) markCLB(clb int32) {
	if !v.overCLB[clb] {
		v.overCLB[clb] = true
		v.overCLBList = append(v.overCLBList, clb)
	}
	v.evalStale = true
}

func (v *Vector) addEdge(id int32, ll int32) {
	if len(v.llAddByOut[id]) == 0 {
		v.llAddTouched = append(v.llAddTouched, id)
	}
	v.llAddByOut[id] = append(v.llAddByOut[id], ll)
}

// goldenDriverIndex finds the golden driver entry of line ll contributed by
// clb. A CLB drives a given line through exactly one slot, so the entry is
// unique.
func (v *Vector) goldenDriverIndex(ll, clb int) int8 {
	for i, ref := range v.f.llDrivers[ll] {
		if !ref.bram && ref.idx == clb {
			return int8(i)
		}
	}
	return -1
}

// ApplyDelta installs lane's single-bit overlay. Lanes carry at most one
// delta per batch.
func (v *Vector) ApplyDelta(lane int, d VectorDelta) {
	bit := uint64(1) << uint(lane)
	switch d.kind {
	case vdNone:
	case vdTruth, vdInSel:
		li := d.clb*device.LUTsPerCLB + int32(d.l)
		g := v.f.clbs[d.clb].lut[d.l]
		p := lutLanePatch{lane: uint8(lane), truth: g.truth, inSel: g.inSel}
		if d.kind == vdTruth {
			p.truth ^= 1 << d.bit
		} else {
			p.inSel[d.in] = d.sel
		}
		if len(v.lutOver[li]) == 0 {
			v.lutTouched = append(v.lutTouched, li)
		}
		v.lutOver[li] = append(v.lutOver[li], p)
		v.markCLB(d.clb)
	case vdOutMux:
		li := d.clb*device.LUTsPerCLB + int32(d.l)
		if v.muxXor[li] == 0 {
			v.muxTouched = append(v.muxTouched, li)
		}
		v.muxXor[li] ^= bit
		v.markCLB(d.clb)
	case vdFFCE:
		i := d.clb*device.FFsPerCLB + int32(d.l)
		if len(v.ceOver[i]) == 0 {
			v.ceTouched = append(v.ceTouched, i)
		}
		v.ceOver[i] = append(v.ceOver[i], ceLanePatch{lane: uint8(lane), mode: d.mode, sel: d.sel})
		v.markCLB(d.clb)
	case vdFFDInv:
		i := d.clb*device.FFsPerCLB + int32(d.l)
		if v.dinvXor[i] == 0 {
			v.dinvTouched = append(v.dinvTouched, i)
		}
		v.dinvXor[i] ^= bit
		v.markCLB(d.clb)
	case vdLLAdd:
		id := d.clb*4 + int32(d.src)
		v.addLLPatch(d.ll, llLanePatch{lane: uint8(lane), skip: -1, addID: id})
		v.addEdge(id, d.ll)
	case vdLLRemove:
		v.addLLPatch(d.ll, llLanePatch{lane: uint8(lane), skip: v.goldenDriverIndex(int(d.ll), int(d.clb)), addID: -1})
	case vdLLSrc:
		id := d.clb*4 + int32(d.nsrc)
		v.addLLPatch(d.ll, llLanePatch{lane: uint8(lane), skip: v.goldenDriverIndex(int(d.ll), int(d.clb)), addID: id})
		v.addEdge(id, d.ll)
	}
}

func (v *Vector) addLLPatch(ll int32, p llLanePatch) {
	if len(v.llOver[ll]) == 0 {
		v.llTouched = append(v.llTouched, ll)
	}
	v.llOver[ll] = append(v.llOver[ll], p)
}

// RemoveDelta repairs lane's overlay: since every delta is a single bit of
// a non-history-coupled resource, removing the overlay leaves the lane's
// effective configuration exactly golden — the lane equivalent of the
// scalar frame write-back. Refresh-edge entries and the overlay CLB's
// membership in the evaluation plan are left in place; both are exact
// no-ops under the golden configuration.
func (v *Vector) RemoveDelta(lane int, d VectorDelta) {
	bit := uint64(1) << uint(lane)
	switch d.kind {
	case vdNone:
	case vdTruth, vdInSel:
		li := d.clb*device.LUTsPerCLB + int32(d.l)
		v.lutOver[li] = dropLutPatch(v.lutOver[li], uint8(lane))
	case vdOutMux:
		li := d.clb*device.LUTsPerCLB + int32(d.l)
		v.muxXor[li] &^= bit
	case vdFFCE:
		i := d.clb*device.FFsPerCLB + int32(d.l)
		ps := v.ceOver[i]
		for k := range ps {
			if ps[k].lane == uint8(lane) {
				ps[k] = ps[len(ps)-1]
				v.ceOver[i] = ps[:len(ps)-1]
				break
			}
		}
	case vdFFDInv:
		i := d.clb*device.FFsPerCLB + int32(d.l)
		v.dinvXor[i] &^= bit
	case vdLLAdd, vdLLRemove, vdLLSrc:
		ps := v.llOver[d.ll]
		for k := range ps {
			if ps[k].lane == uint8(lane) {
				ps[k] = ps[len(ps)-1]
				v.llOver[d.ll] = ps[:len(ps)-1]
				break
			}
		}
	}
}

func dropLutPatch(ps []lutLanePatch, lane uint8) []lutLanePatch {
	for k := range ps {
		if ps[k].lane == lane {
			ps[k] = ps[len(ps)-1]
			return ps[:len(ps)-1]
		}
	}
	return ps
}

// SetPinWord drives input pin p with one bit per lane.
func (v *Vector) SetPinWord(p int, w uint64) {
	v.net[v.f.pinNetID(p)] = w
}

// NetWord returns the lane word of dense net id.
func (v *Vector) NetWord(id int) uint64 { return v.net[id] }

// rebuildLists recomputes the batch evaluation plan: the golden active
// sets (in golden topological order) extended by every CLB carrying an
// overlay this batch.
func (v *Vector) rebuildLists() {
	f := v.f
	v.evalList = v.evalList[:0]
	for _, li := range f.order {
		if f.activeLUT[li] || v.overCLB[li/device.LUTsPerCLB] {
			v.evalList = append(v.evalList, li)
		}
	}
	v.clockList = v.clockList[:0]
	for idx := range f.clbs {
		if f.clbActive[idx] || v.overCLB[idx] {
			v.clockList = append(v.clockList, int32(idx))
		}
	}
	v.evalStale = false
}

// truthWord evaluates a 16-bit truth table over four lane-word inputs via
// the mux identity: level 1 collapses input 0 against truth bit pairs,
// levels 2..4 are generic (hi & s) | (lo &^ s) reductions.
func truthWord(t uint16, s0, s1, s2, s3 uint64) uint64 {
	n0 := ^s0
	var w [8]uint64
	for k := 0; k < 8; k++ {
		switch (t >> uint(2*k)) & 3 {
		case 0:
			// w[k] stays 0
		case 1:
			w[k] = n0
		case 2:
			w[k] = s0
		default:
			w[k] = ^uint64(0)
		}
	}
	n1 := ^s1
	w[0] = w[0]&n1 | w[1]&s1
	w[1] = w[2]&n1 | w[3]&s1
	w[2] = w[4]&n1 | w[5]&s1
	w[3] = w[6]&n1 | w[7]&s1
	n2 := ^s2
	w[0] = w[0]&n2 | w[1]&s2
	w[1] = w[2]&n2 | w[3]&s2
	return w[0]&^s3 | w[1]&s3
}

// slotWord reads input-mux slot s of CLB clb across all lanes, honouring
// half-latch keepers on undriven taps. Stuck-at overlays never reach the
// vector path (stuck devices are history-coupled and demoted wholesale).
func (v *Vector) slotWord(clb, s int) uint64 {
	si := clb*device.InMuxWays + s
	id := v.f.candID[si]
	if id < 0 {
		if v.f.inHL[si] {
			return ^uint64(0)
		}
		return 0
	}
	return v.net[id]
}

// laneLUTBit evaluates one overlaid lane's LUT scalar-style.
func (v *Vector) laneLUTBit(clb int, p *lutLanePatch) uint64 {
	idx := 0
	for in := 0; in < device.LUTInputs; in++ {
		if v.slotWord(clb, int(p.inSel[in]))>>p.lane&1 == 1 {
			idx |= 1 << uint(in)
		}
	}
	return uint64(p.truth>>uint(idx)) & 1
}

// laneLineBit recomputes one overlaid lane's long line: the golden wired-
// AND with the lane's skipped entry removed and its extra driver ANDed in.
// A lane whose overlay removes the only driver reads the line's keeper.
func (v *Vector) laneLineBit(ll int, p *llLanePatch) uint64 {
	f := v.f
	drv := f.llDrivers[ll]
	n := 0
	val := uint64(1)
	for i := range drv {
		if int8(i) == p.skip {
			continue
		}
		n++
		val &= v.driverWord(&drv[i]) >> p.lane
	}
	if p.addID >= 0 {
		n++
		val &= v.net[p.addID] >> p.lane
	}
	if n == 0 {
		if f.llHL[ll] {
			return 1
		}
		return 0
	}
	return val & 1
}

func (v *Vector) driverWord(ref *driverRef) uint64 {
	if ref.bram {
		return v.bramOut[ref.idx][ref.out]
	}
	return v.net[ref.idx*4+ref.out]
}

// refreshLine recomputes long line ll for all lanes and reports whether any
// lane changed.
func (v *Vector) refreshLine(ll int) bool {
	f := v.f
	drv := f.llDrivers[ll]
	var w uint64
	if len(drv) == 0 {
		if f.llHL[ll] {
			w = ^uint64(0)
		}
	} else {
		w = ^uint64(0)
		for i := range drv {
			w &= v.driverWord(&drv[i])
		}
	}
	if ps := v.llOver[ll]; len(ps) > 0 {
		for i := range ps {
			p := &ps[i]
			w = w&^(1<<p.lane) | v.laneLineBit(ll, p)<<p.lane
		}
	}
	id := 4*f.geom.CLBs() + ll
	if v.net[id] == w {
		return false
	}
	v.net[id] = w
	return true
}

// Settle evaluates combinational logic to a lane-wise fixpoint, mirroring
// the scalar sweep kernel (same evaluation order, same in-sweep long-line
// refresh, same end-of-sweep refresh, same MaxSweeps freeze).
func (v *Vector) Settle() {
	if v.evalStale {
		v.rebuildLists()
	}
	f := v.f
	for sweeps := 0; sweeps < v.MaxSweeps; sweeps++ {
		changed := false
		for _, li := range v.evalList {
			clb := int(li) / device.LUTsPerCLB
			o := int(li) % device.LUTsPerCLB
			cfg := &f.clbs[clb].lut[o]
			w := truthWord(cfg.truth,
				v.slotWord(clb, int(cfg.inSel[0])),
				v.slotWord(clb, int(cfg.inSel[1])),
				v.slotWord(clb, int(cfg.inSel[2])),
				v.slotWord(clb, int(cfg.inSel[3])))
			if ps := v.lutOver[li]; len(ps) > 0 {
				for i := range ps {
					p := &ps[i]
					w = w&^(1<<p.lane) | v.laneLUTBit(clb, p)<<p.lane
				}
			}
			if v.lut[li] != w {
				v.lut[li] = w
				changed = true
			}
			var mux uint64
			if f.clbs[clb].outMuxFF[o] {
				mux = ^uint64(0)
			}
			mux ^= v.muxXor[li]
			out := v.ff[li]&mux | w&^mux
			id := clb*4 + o
			if v.net[id] != out {
				v.net[id] = out
				changed = true
				for _, ll := range f.llByOut[id] {
					v.refreshLine(int(ll))
				}
				for _, ll := range v.llAddByOut[id] {
					v.refreshLine(int(ll))
				}
			}
		}
		for ll := range f.llDrivers {
			if v.refreshLine(ll) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// ceWord resolves the clock-enable lane word of FF k of CLB clb.
func (v *Vector) ceWord(clb, k int) uint64 {
	f := v.f
	i := clb*device.FFsPerCLB + k
	cfg := &f.clbs[clb].ff[k]
	var w uint64
	switch cfg.ceMode {
	case device.CEHalfLatch:
		if f.ceHL[i] {
			w = ^uint64(0)
		}
	case device.CERouted:
		w = v.slotWord(clb, int(cfg.ceSel))
	case device.CEConstZero:
		// stays 0
	default: // CEConstOne
		w = ^uint64(0)
	}
	if ps := v.ceOver[i]; len(ps) > 0 {
		for idx := range ps {
			p := &ps[idx]
			var bit uint64
			switch p.mode {
			case device.CEHalfLatch:
				if f.ceHL[i] {
					bit = 1
				}
			case device.CERouted:
				bit = v.slotWord(clb, int(p.sel)) >> p.lane & 1
			case device.CEConstZero:
				// stays 0
			default:
				bit = 1
			}
			w = w&^(1<<p.lane) | bit<<p.lane
		}
	}
	return w
}

// Clock performs one rising edge: flip-flops of the clock list load their
// (possibly lane-inverted) D inputs under their lane-wise clock enables,
// then every BRAM block registers its addressed word per enabled lane.
func (v *Vector) Clock() {
	if v.evalStale {
		v.rebuildLists()
	}
	f := v.f
	for _, ci := range v.clockList {
		clb := int(ci)
		cfg := &f.clbs[clb]
		for k := 0; k < device.FFsPerCLB; k++ {
			i := clb*device.FFsPerCLB + k
			ce := v.ceWord(clb, k)
			d := v.lut[clb*device.LUTsPerCLB+k]
			if cfg.ff[k].dInv {
				d = ^d
			}
			d ^= v.dinvXor[i]
			v.ff[i] = d&ce | v.ff[i]&^ce
		}
	}
	for bi := range f.brams {
		v.clockBRAM(bi)
	}
}

// clockBRAM registers the addressed content word into each enabled lane's
// output register. Writable BRAM never reaches the vector path (such
// designs are history-coupled), so the content array is shared read-only
// across lanes and the scalar kernel's write/interference paths have no
// vector counterpart.
func (v *Vector) clockBRAM(bi int) {
	enID := v.bramEnID[bi]
	if enID < 0 {
		return
	}
	en := v.net[enID] & v.full
	if en == 0 {
		return
	}
	addrIDs := v.bramAddrID[bi]
	var addrW [device.BRAMAddrBits]uint64
	for j := 0; j < device.BRAMAddrBits; j++ {
		if id := addrIDs[j]; id >= 0 {
			addrW[j] = v.net[id]
		}
	}
	mem := v.f.bramMem[bi]
	out := v.bramOut[bi]
	for rest := en; rest != 0; rest &= rest - 1 {
		lane := uint(bits.TrailingZeros64(rest))
		addr := 0
		for j := 0; j < device.BRAMAddrBits; j++ {
			addr |= int(addrW[j]>>lane&1) << uint(j)
		}
		word := mem[addr]
		mask := uint64(1) << lane
		for j := 0; j < device.BRAMWidth; j++ {
			if word>>uint(j)&1 == 1 {
				out[j] |= mask
			} else {
				out[j] &^= mask
			}
		}
	}
}

// Step advances all lanes one clock: settle, clock, settle — the vector
// image of the scalar Step.
func (v *Vector) Step() {
	v.Settle()
	v.Clock()
	v.Settle()
}

// DivergenceWord ORs the lane-wise XOR of every state word of two Vectors:
// bit i is set iff lane i of a and b differ anywhere. With overlays
// removed (lane configuration golden), a clear bit is exactly the scalar
// lock-step condition — identical state under identical configuration
// yields identical futures — restricted to that lane.
func DivergenceWord(a, b *Vector) uint64 {
	var d uint64
	for i, w := range a.net {
		d |= w ^ b.net[i]
	}
	for i, w := range a.lut {
		d |= w ^ b.lut[i]
	}
	for i, w := range a.ff {
		d |= w ^ b.ff[i]
	}
	for bi := range a.bramOut {
		ao, bo := a.bramOut[bi], b.bramOut[bi]
		for j := range ao {
			d |= ao[j] ^ bo[j]
		}
	}
	return d
}
