package fpga

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
	"repro/internal/device"
)

// sameVisibleState compares everything the simulation exposes between an
// event-driven device and a full-sweep device: nets, combinational values,
// flip-flops, BRAM output registers, and configuration memory. lastSweeps
// is deliberately excluded — the event kernel legitimately reports fewer
// (work-performing) rounds than the sweep kernel reports sweeps.
func sameVisibleState(t *testing.T, ev, sw *FPGA, step string) {
	t.Helper()
	for i := range ev.netVal {
		if ev.netVal[i] != sw.netVal[i] {
			t.Fatalf("%s: net %d diverged (event %v, sweep %v)", step, i, ev.netVal[i], sw.netVal[i])
		}
	}
	for i := range ev.lutVal {
		if ev.lutVal[i] != sw.lutVal[i] {
			t.Fatalf("%s: lutVal %d diverged", step, i)
		}
	}
	for i := range ev.ffVal {
		if ev.ffVal[i] != sw.ffVal[i] {
			t.Fatalf("%s: ffVal %d diverged", step, i)
		}
	}
	for i := range ev.bramOut {
		if ev.bramOut[i] != sw.bramOut[i] {
			t.Fatalf("%s: bramOut %d diverged", step, i)
		}
	}
	if !ev.cm.Equal(sw.cm) {
		t.Fatalf("%s: configuration memories diverged", step)
	}
	if ev.StateHash() != sw.StateHash() {
		t.Fatalf("%s: state hashes diverged with equal visible state", step)
	}
}

// TestEventKernelMatchesSweepKernel is the property test for the
// activity-driven kernel: on randomized (largely garbage) bitstreams —
// which produce corrupted routing, wired-AND conflicts, live SRLs, and
// oscillating loops frozen at the MaxSweeps bound — an event-driven device
// and a full-sweep device fed identical stimulus, identical injected
// faults, and identical half-latch upsets must remain visibly identical
// after every operation.
func TestEventKernelMatchesSweepKernel(t *testing.T) {
	g := device.Tiny()
	total := g.TotalBits()

	run := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bitstream.NewMemory(g)
		// Dense-ish random configuration: enough set bits that LUTs,
		// routing, long-line drivers, FFs, and BRAM ports all come alive.
		for i := int64(0); i < total/6; i++ {
			m.Set(device.BitAddr(rng.Int63n(total)), true)
		}
		bs := bitstream.Full(m)

		ev := New(g)
		sw := New(g)
		sw.SetEventDriven(false)
		if !ev.EventDriven() || sw.EventDriven() {
			t.Fatal("kernel selection not honoured")
		}
		if err := ev.FullConfigure(bs); err != nil {
			t.Fatal(err)
		}
		if err := sw.FullConfigure(bs); err != nil {
			t.Fatal(err)
		}
		sameVisibleState(t, ev, sw, "after configure")

		sites := ev.HalfLatchSites()
		pins := g.Pins()
		for op := 0; op < 120; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2: // drive a random pin
				p, v := rng.Intn(pins), rng.Intn(2) == 1
				ev.SetPin(p, v)
				sw.SetPin(p, v)
				ev.Settle()
				sw.Settle()
			case 3: // inject the same configuration upset into both
				a := device.BitAddr(rng.Int63n(total))
				ev.InjectBit(a)
				sw.InjectBit(a)
				ev.Settle()
				sw.Settle()
			case 4: // upset the same half-latch keeper in both
				if len(sites) > 0 {
					s := sites[rng.Intn(len(sites))]
					ev.FlipHalfLatch(s)
					sw.FlipHalfLatch(s)
					ev.Settle()
					sw.Settle()
				}
			case 5: // reset user state
				ev.Reset()
				sw.Reset()
			default: // clock
				ev.Step()
				sw.Step()
			}
			sameVisibleState(t, ev, sw, "mid-sequence")
		}
		return true
	}

	cfg := &quick.Config{
		MaxCount: 8,
		Values:   nil,
	}
	if err := quick.Check(run, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestEventKernelMatchesSweepOnCatalogStyleDesign drives the kernels
// through a structured configuration (registered logic, long lines, SRL)
// rather than random garbage, exercising the common case the random test
// rarely hits: long quiescent stretches where the event kernel does almost
// no work.
func TestEventKernelMatchesSweepOnCatalogStyleDesign(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	b.SetLUT(2, 0, 0, TruthNot)
	b.RouteInput(2, 0, 0, 0, 4)
	b.SetFF(2, 0, 0, false, device.CEConstOne, 0, false)
	b.SetOutMux(2, 0, 1, true)
	b.SetLUT(2, 1, 0, TruthAnd2)
	b.RouteInput(2, 1, 0, 0, 0)
	b.RouteInput(2, 1, 0, 1, 4)

	ev := configure(t, b)
	sw := New(g)
	sw.SetEventDriven(false)
	if err := sw.FullConfigure(b.FullBitstream()); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	pin := g.PinWest(2, 0)
	for i := 0; i < 400; i++ {
		v := rng.Intn(2) == 1
		ev.SetPin(pin, v)
		sw.SetPin(pin, v)
		ev.Step()
		sw.Step()
		sameVisibleState(t, ev, sw, "catalog-style step")
	}
}

// TestSetEventDrivenMidLife flips a device from sweep to event mode after
// it has been running; the conservative invalidation must leave it visibly
// identical to a device that ran event-driven from the start.
func TestSetEventDrivenMidLife(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	b.SetLUT(2, 0, 0, TruthNot)
	b.RouteInput(2, 0, 0, 0, 4)
	ev := configure(t, b)
	mixed := New(g)
	mixed.SetEventDriven(false)
	if err := mixed.FullConfigure(b.FullBitstream()); err != nil {
		t.Fatal(err)
	}
	pin := g.PinWest(2, 0)
	for i := 0; i < 10; i++ {
		ev.SetPin(pin, i%2 == 0)
		mixed.SetPin(pin, i%2 == 0)
		ev.Step()
		mixed.Step()
	}
	mixed.SetEventDriven(true)
	for i := 0; i < 10; i++ {
		ev.SetPin(pin, i%3 == 0)
		mixed.SetPin(pin, i%3 == 0)
		ev.Step()
		mixed.Step()
		sameVisibleState(t, ev, mixed, "after mid-life switch")
	}
}

// TestStateEqualAndHash covers the divergence-relevant state comparisons
// the lock-step detector is built on.
func TestStateEqualAndHash(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	b.SetLUT(2, 0, 0, TruthNot)
	b.RouteInput(2, 0, 0, 0, 4)
	b.SetFF(2, 0, 0, false, device.CEConstOne, 0, false)
	b.SetOutMux(2, 0, 1, true)
	f := configure(t, b)
	c := f.Clone()

	if !StateEqual(f, c) || !UserStateEqual(f, c) {
		t.Fatal("clone must be state-equal to its original")
	}
	if f.StateHash() != c.StateHash() {
		t.Fatal("clone must hash equal to its original")
	}

	// FF divergence is core state.
	c.SetFFValue(2, 0, 0, !c.FFValue(2, 0, 0))
	if CoreStateEqual(f, c) || StateEqual(f, c) {
		t.Fatal("FF divergence must break core state equality")
	}
	if f.StateHash() == c.StateHash() {
		t.Fatal("FF divergence should change the state hash")
	}
	c.SetFFValue(2, 0, 0, f.FFValue(2, 0, 0))
	c.Settle()
	f.Settle()
	if !StateEqual(f, c) {
		t.Fatal("restoring the FF must restore equality")
	}

	// Half-latch divergence is hidden state, invisible to the core check.
	gen := c.HiddenGen()
	s := HalfLatchSite{Kind: HLLongLine, LL: 0}
	c.FlipHalfLatch(s)
	if c.HiddenGen() == gen {
		t.Fatal("half-latch flip must advance HiddenGen")
	}
	c.Settle()
	f.Settle()
	if HiddenStateEqual(f, c) {
		t.Fatal("keeper divergence must break hidden state equality")
	}

	// Config divergence is caught by the full comparison.
	c.RestoreHalfLatch(s)
	c.Settle()
	if !StateEqual(f, c) {
		t.Fatal("restore must bring the pair back to equality")
	}
	c.InjectBit(0)
	if StateEqual(f, c) {
		t.Fatal("config divergence must break full state equality")
	}
	if f.StateHash() == c.StateHash() {
		t.Fatal("config divergence should change the state hash")
	}
}

// TestHistoryCoupled pins the early-exit gating rule: SRL LUTs, writable
// BRAM, and stuck overlays are history-coupled; plain registered logic is
// not.
func TestHistoryCoupled(t *testing.T) {
	g := device.Tiny()
	plain := NewConfigBuilder(g)
	plain.SetLUT(2, 0, 0, TruthNot)
	plain.RouteInput(2, 0, 0, 0, 4)
	plain.SetFF(2, 0, 0, false, device.CEConstOne, 0, false)
	f := configure(t, plain)
	if f.HistoryCoupled() {
		t.Fatal("registered combinational design must not be history-coupled")
	}
	f.SetStuck(device.Segment{R: 2, C: 0, S: 4}, true)
	if !f.HistoryCoupled() {
		t.Fatal("stuck overlay must make the device history-coupled")
	}
	f.ClearAllStuck()
	if f.HistoryCoupled() {
		t.Fatal("clearing the overlay must clear history coupling")
	}

	srl := NewConfigBuilder(g)
	srl.SetSRL(2, 0, 0, true)
	srl.RouteInput(2, 0, 0, 3, 4)
	if !configure(t, srl).HistoryCoupled() {
		t.Fatal("SRL16 design must be history-coupled")
	}
}
