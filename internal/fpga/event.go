package fpga

import (
	"repro/internal/device"
)

// Activity-driven settling kernel. The sweep kernel in sim.go re-evaluates
// every active LUT once per sweep until a fixpoint; this kernel maintains
// per-net fanout lists (net -> consumer LUTs) and a dirty-LUT worklist so a
// Settle touches only logic whose inputs actually changed — per-cycle cost
// proportional to switching activity, not device size.
//
// Exact sweep equivalence is load-bearing: campaign reports must be
// byte-identical with the kernel on or off, including configurations whose
// corrupted routing oscillates and freezes at the MaxSweeps bound mid-
// transient. The kernel therefore reproduces the sweep trajectory round for
// round:
//
//   - One worklist round corresponds to one sweep. Within a round, scheduled
//     LUTs are evaluated in ascending topological-order position (a min-heap
//     over positions in f.order), exactly the relative order the sweep's
//     in-place evaluation uses.
//   - When evaluating at position p changes a net, consumers at positions
//     q > p join the CURRENT round (the sweep would still reach them this
//     pass) and consumers at q <= p join the NEXT round (the sweep would see
//     the new value next pass). A LUT whose inputs, configuration, and
//     FF-mux source are all unchanged would re-evaluate to the same values,
//     so skipping it leaves the trajectory untouched.
//   - Long lines change during a Settle only through their CLB drivers,
//     which the inline llByOut refresh already propagates in-sweep (both
//     kernels share that path). Inputs that change BETWEEN Settles — BRAM
//     output registers, half-latch keepers, driver-list edits — are flagged
//     stale and refreshed once at the end of the first round, mirroring the
//     sweep kernel's end-of-sweep refresh (which can only produce changes on
//     its first sweep, for exactly those inputs).
//   - Rounds are bounded by MaxSweeps. A frozen oscillation leaves its
//     worklist pending, so the next Settle resumes the same trajectory the
//     sweep kernel would re-enter.
//
// Every mutation path that can invalidate a LUT's inputs outside Settle
// hooks into scheduleLUT/markLLStale: pin changes, FF updates and SRL truth
// shifts at the clock edge, BRAM output-register updates, reconfiguration
// decodes, half-latch flips, stuck-at overlay edits, readback SRL hazards,
// and Reset.

// sched states of one LUT in the event worklist.
const (
	schedNone    = uint8(0) // not scheduled
	schedCurrent = uint8(1) // in the current round's heap
	schedPending = uint8(2) // queued for the next round
)

// SetEventDriven switches the activity-driven kernel on or off. Devices
// start with it on; disabling falls back to the full-sweep kernel (the
// -fastsim=false escape hatch). Re-enabling conservatively invalidates all
// event state.
func (f *FPGA) SetEventDriven(on bool) {
	if on == f.eventSim {
		return
	}
	f.eventSim = on
	if on {
		f.invalidateEvents()
	}
}

// EventDriven reports whether the activity-driven kernel is active.
func (f *FPGA) EventDriven() bool { return f.eventSim }

// EventBacklog reports whether the event kernel holds unprocessed work —
// true only when the last Settle froze an oscillation at the MaxSweeps
// bound. Board-level convergence detection must treat a backlogged device
// as undetermined, because pending work encodes future behaviour the
// visible net state alone does not.
func (f *FPGA) EventBacklog() bool {
	return f.eventSim && (len(f.listNext) > 0 || len(f.staleLL) > 0)
}

// scheduleLUT queues LUT li (dense index) for re-evaluation in the next
// settle round. Safe to call from any mutation hook; outside a Settle the
// current-round heap is always empty, so everything lands in the pending
// list.
func (f *FPGA) scheduleLUT(li int32) {
	if !f.eventSim {
		return
	}
	if f.sched[li] == schedNone {
		f.sched[li] = schedPending
		f.listNext = append(f.listNext, li)
	}
}

// scheduleCLB queues all four LUTs of a CLB.
func (f *FPGA) scheduleCLB(clbIdx int) {
	for l := 0; l < device.LUTsPerCLB; l++ {
		f.scheduleLUT(int32(clbIdx*device.LUTsPerCLB + l))
	}
}

// markLLStale flags long line ll for a refresh at the end of the next
// round: its value inputs changed outside Settle (BRAM output register,
// keeper, or the driver list itself).
func (f *FPGA) markLLStale(ll int) {
	if !f.eventSim {
		return
	}
	if !f.staleLLMark[ll] {
		f.staleLLMark[ll] = true
		f.staleLL = append(f.staleLL, int32(ll))
	}
}

// markBRAMLLStale flags the long lines block bi drives after its output
// register changed.
func (f *FPGA) markBRAMLLStale(bi int) {
	if !f.eventSim || f.llByBRAM == nil {
		return
	}
	for _, ll := range f.llByBRAM[bi] {
		f.markLLStale(int(ll))
	}
}

// scheduleNetConsumers queues every consumer of dense net id for the next
// round. Used by external net mutations (pins) and stale-line refreshes.
func (f *FPGA) scheduleNetConsumers(id int) {
	for _, li := range f.fanout[id] {
		f.scheduleLUT(li)
	}
}

// invalidateEvents resets the kernel to "everything dirty": all LUTs
// scheduled, all long lines stale, fanout lists to be rebuilt. Called at
// start-up and when the kernel is re-enabled mid-life.
func (f *FPGA) invalidateEvents() {
	if !f.eventSim {
		return
	}
	f.heapCur = f.heapCur[:0]
	f.listNext = f.listNext[:0]
	f.staleLL = f.staleLL[:0]
	for i := range f.sched {
		f.sched[i] = schedPending
		f.listNext = append(f.listNext, int32(i))
	}
	for i := range f.staleLLMark {
		f.staleLLMark[i] = true
		f.staleLL = append(f.staleLL, int32(i))
	}
	f.fanStale = true
}

// rebuildFanout recomputes the net -> consumer-LUT lists from the decoded
// configuration. Inactive LUTs (constant-0 output, no FF mux) are not
// subscribed — they evaluate to 0 regardless of inputs, matching the sweep
// kernel's active-set filter.
func (f *FPGA) rebuildFanout() {
	if f.fanout == nil {
		f.fanout = make([][]int32, f.geom.NumNets())
	}
	for i := range f.fanout {
		f.fanout[i] = f.fanout[i][:0]
	}
	for clbIdx := range f.clbs {
		f.addFanoutOf(clbIdx)
	}
	f.fanStale = false
}

// addFanoutOf subscribes the active LUTs of a CLB to their (current) input
// nets. A LUT reading the same net on two inputs adds two entries, so
// dropFanoutOf stays exactly balanced.
func (f *FPGA) addFanoutOf(clbIdx int) {
	cfg := &f.clbs[clbIdx]
	base := clbIdx * device.InMuxWays
	for l := 0; l < device.LUTsPerCLB; l++ {
		li := int32(clbIdx*device.LUTsPerCLB + l)
		if !f.activeLUT[li] {
			continue
		}
		for in := 0; in < device.LUTInputs; in++ {
			id := f.candID[base+int(cfg.lut[l].inSel[in])]
			if id >= 0 {
				f.fanout[id] = append(f.fanout[id], li)
			}
		}
	}
}

// dropFanoutOf removes the subscriptions addFanoutOf created for this CLB.
// Must run against the OLD decoded configuration and OLD active flags,
// before decodeCLB overwrites them.
func (f *FPGA) dropFanoutOf(clbIdx int) {
	cfg := &f.clbs[clbIdx]
	base := clbIdx * device.InMuxWays
	for l := 0; l < device.LUTsPerCLB; l++ {
		li := int32(clbIdx*device.LUTsPerCLB + l)
		if !f.activeLUT[li] {
			continue
		}
		for in := 0; in < device.LUTInputs; in++ {
			id := f.candID[base+int(cfg.lut[l].inSel[in])]
			if id >= 0 {
				f.removeFanoutEdge(int(id), li)
			}
		}
	}
}

func (f *FPGA) removeFanoutEdge(id int, li int32) {
	s := f.fanout[id]
	for i, x := range s {
		if x == li {
			s[i] = s[len(s)-1]
			f.fanout[id] = s[:len(s)-1]
			return
		}
	}
}

// settleEvent is the activity-driven counterpart of the sweep loop in
// Settle. Returns the number of rounds (== sweeps of the equivalent sweep
// trajectory that performed any work).
func (f *FPGA) settleEvent() int {
	if f.fanStale {
		f.rebuildFanout()
	}
	rounds := 0
	for rounds < f.MaxSweeps && (len(f.listNext) > 0 || len(f.staleLL) > 0) {
		rounds++
		// Promote pending work into the current round's position heap.
		h := f.heapCur[:0]
		for _, li := range f.listNext {
			f.sched[li] = schedCurrent
			h = heapPushPos(h, f.pos[li])
		}
		f.heapCur = h
		f.listNext = f.listNext[:0]
		for len(f.heapCur) > 0 {
			var p int32
			f.heapCur, p = heapPopPos(f.heapCur)
			li := f.order[p]
			if f.sched[li] != schedCurrent {
				continue
			}
			f.sched[li] = schedNone
			f.evalOne(li, p)
		}
		// Long lines whose inputs changed outside Settle refresh once,
		// mirroring the sweep kernel's end-of-sweep refresh: changes become
		// visible to consumers starting with the next round.
		if len(f.staleLL) > 0 {
			for _, ll := range f.staleLL {
				f.staleLLMark[ll] = false
				if f.refreshLL(int(ll)) {
					f.scheduleNetConsumers(f.llNetID(int(ll)))
				}
			}
			f.staleLL = f.staleLL[:0]
		}
	}
	f.lastSweeps = rounds
	return rounds
}

// evalOne re-evaluates LUT li at order position p — the event-kernel copy of
// the sweep loop body, propagating any net change to consumers.
func (f *FPGA) evalOne(li, p int32) {
	clbIdx := int(li) / device.LUTsPerCLB
	o := int(li) % device.LUTsPerCLB
	v := f.evalLUT(li)
	f.lutVal[li] = v
	var out bool
	if f.clbs[clbIdx].outMuxFF[o] {
		out = f.ffVal[li]
	} else {
		out = v
	}
	id := clbIdx*4 + o
	if f.netVal[id] != out {
		f.netVal[id] = out
		f.propagate(id, p)
		// Same-sweep long-line refresh, shared with the sweep kernel.
		for _, ll := range f.llByOut[id] {
			if f.refreshLL(int(ll)) {
				f.propagate(f.llNetID(int(ll)), p)
			}
		}
	}
}

// propagate schedules the consumers of a just-changed net. Consumers ahead
// of position p in the evaluation order still belong to the current round
// (the sweep would reach them this pass); consumers at or behind p see the
// change next round.
func (f *FPGA) propagate(id int, p int32) {
	for _, li := range f.fanout[id] {
		if f.sched[li] != schedNone {
			continue
		}
		if q := f.pos[li]; q > p {
			f.sched[li] = schedCurrent
			f.heapCur = heapPushPos(f.heapCur, q)
		} else {
			f.sched[li] = schedPending
			f.listNext = append(f.listNext, li)
		}
	}
}

// heapPushPos / heapPopPos implement a plain binary min-heap over order
// positions, allocation-free across rounds (the backing array is reused).

func heapPushPos(h []int32, p int32) []int32 {
	h = append(h, p)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

func heapPopPos(h []int32) ([]int32, int32) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(h) {
			break
		}
		m := l
		if r < len(h) && h[r] < h[l] {
			m = r
		}
		if h[i] <= h[m] {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return h, top
}
