package fpga

import (
	"repro/internal/device"
)

// Event-driven settling over 64-lane words: the vector image of the scalar
// activity kernel in event.go. The sweep loop in vector.go re-evaluates the
// whole evaluation list once per sweep; this kernel keeps a dirty-LUT
// worklist at lane-word granularity — a net is dirty iff ANY lane's bit
// changed — and drains it in ascending topological-position order, so a
// Settle touches only logic downstream of actual switching activity.
//
// Exactness (per lane, against the sweep trajectory of vector.go, which is
// itself exact against the scalar kernel per lane):
//
//   - One worklist round corresponds to one sweep. Scheduled LUTs evaluate
//     in ascending position (min-heap over c.lutPos, shared helpers with
//     event.go); a change at position p reaches consumers at q > p in the
//     current round and consumers at q <= p in the next — exactly the
//     sweep's in-place evaluation order.
//   - The drained set is a SUPERSET of the changed set in every lane:
//     word-granularity dirtiness schedules a LUT when any lane's input
//     moved, and fanout subscription is the golden fanout CSR plus the
//     per-batch fanAdd side table covering every overlay-patched input. A
//     LUT whose inputs are unchanged in some lane re-evaluates to the same
//     bits there, so over-scheduling is an identity — the same argument
//     that lets the sweep kernel evaluate overlay-extra LUTs in all lanes.
//   - Long lines refresh through the same edges as the sweep kernel:
//     in-round via the golden byOutLL CSR plus overlay llAddByOut edges
//     (refreshLine applies per-lane patches itself), and at end of round
//     for lines whose inputs moved outside Settle — BRAM output registers
//     (bramLL marks them in Clock), overlay installs/repairs — mirroring
//     the end-of-sweep refresh, refresh-list superset included.
//   - Rounds are bounded by MaxSweeps, and a freeze leaves the pending
//     worklist in place so the next Settle resumes the identical
//     trajectory.
//
// frozenLanes is the per-lane analogue of the scalar EventBacklog gate.
// Convergence credit (board.LockedWord) must not trust a lane whose visible
// state hides pending worklist work, but a global backlog flag would make
// one lane's oscillation deny credit to unrelated lanes — and batch
// composition varies with chunk boundaries and worker count, so cycle
// accounting would stop being worker-invariant. Instead each Settle records
// the lanes that changed in its FINAL round: a lane quiet in the final
// round is at its per-lane fixpoint (pending LUTs were scheduled by final-
// round changes, which touched only final-round-changed lanes; every
// earlier inconsistency was evaluated away in the round after it arose), so
// masking exactly roundChanged-of-the-last-round when the drain ran the
// full MaxSweeps bound is both safe and a pure function of the lane's own
// trajectory: bit i is set iff lane i was still switching at sweep
// MaxSweeps, which the per-lane sweep equivalence makes batch-independent.

// SetEventDriven switches the lane machine between the event-driven drain
// (on — the default) and the full-sweep loop. Re-enabling conservatively
// invalidates all event state; disabling drops the pending worklist (the
// sweep loop re-derives everything each Settle).
func (v *Vector) SetEventDriven(on bool) {
	if on == v.eventDriven {
		return
	}
	v.eventDriven = on
	if on {
		v.invalidateAllVec()
	} else {
		v.clearEventWork()
	}
}

// EventDriven reports whether the event-driven drain is active.
func (v *Vector) EventDriven() bool { return v.eventDriven }

// FrozenLanes returns the lanes whose last Settle hit the MaxSweeps bound
// while they were still switching — lanes whose pending worklist encodes
// future behaviour their visible state alone does not. Always 0 for the
// sweep kernel, which is memoryless between Settles.
func (v *Vector) FrozenLanes() uint64 { return v.frozenLanes }

// SetActiveMask freezes the lanes outside m: their flip-flops and BRAM
// output registers hold through Clock, so a retired lane generates no
// settling work while live lanes keep running. Retired lanes' visible state
// is never read by the batch scheduler, so freezing is outcome-neutral.
func (v *Vector) SetActiveMask(m uint64) { v.active = m }

// TakeKernelStats returns and zeroes the settle counters accumulated since
// the last call: rounds is worklist rounds drained (== sweeps of the
// equivalent sweep trajectory that performed work), drains is Settle calls
// that found work.
func (v *Vector) TakeKernelStats() (rounds, drains int64) {
	rounds, drains = v.statRounds, v.statDrains
	v.statRounds, v.statDrains = 0, 0
	return
}

// scheduleLUTVec queues LUT li for the next settle round. Safe from any
// mutation hook: outside settleEventVec the current-round heap is empty, so
// everything lands in the pending list.
func (v *Vector) scheduleLUTVec(li int32) {
	if v.sched[li] == schedNone {
		v.sched[li] = schedPending
		v.listNext = append(v.listNext, li)
	}
}

// touchLUTVec schedules li from inside a round at position p: consumers
// ahead of p join the current round, consumers at or behind p the next —
// the vector copy of event.go's propagate ordering rule. In a dense round
// the ascending position walk finds schedCurrent marks by itself, so no
// heap entry is needed.
func (v *Vector) touchLUTVec(li, p int32) {
	if v.sched[li] != schedNone {
		return
	}
	if q := v.c.lutPos[li]; q > p {
		v.sched[li] = schedCurrent
		if !v.denseRound {
			v.heapCur = heapPushPos(v.heapCur, q)
		}
	} else {
		v.sched[li] = schedPending
		v.listNext = append(v.listNext, li)
	}
}

// propagateVec schedules the consumers of just-changed net id from inside a
// round: the golden fanout CSR plus the per-batch overlay subscriptions.
func (v *Vector) propagateVec(id, p int32) {
	c := v.c
	for _, li := range c.fanLUT[c.fanStart[id]:c.fanStart[id+1]] {
		v.touchLUTVec(li, p)
	}
	for _, li := range v.fanAdd[id] {
		v.touchLUTVec(li, p)
	}
}

// scheduleNetConsumersVec queues every consumer of net id for the next
// round — the between-rounds/between-Settles variant of propagateVec.
func (v *Vector) scheduleNetConsumersVec(id int32) {
	c := v.c
	for _, li := range c.fanLUT[c.fanStart[id]:c.fanStart[id+1]] {
		v.scheduleLUTVec(li)
	}
	for _, li := range v.fanAdd[id] {
		v.scheduleLUTVec(li)
	}
}

// markLLStaleVec flags long line ll for an end-of-round refresh: its value
// inputs changed outside the in-round driver edges (BRAM output register,
// overlay install or repair) in the given lanes. The per-lane pending mask
// is kept in both kernels — triggered refreshes consult it to hold lanes
// whose out-of-band change must not become visible before the end-of-round
// (end-of-sweep) refresh, matching the scalar witness's timing; the stale
// list itself only exists for the event drain (the sweep loop's
// llExternal/llTouched pass is its fixed refresh set).
func (v *Vector) markLLStaleVec(ll int32, lanes uint64) {
	v.llPendW[ll] |= lanes
	if !v.eventDriven {
		return
	}
	if !v.staleLLMark[ll] {
		v.staleLLMark[ll] = true
		v.staleLL = append(v.staleLL, ll)
	}
}

// addFanAddEdge subscribes LUT li to net id for this batch: an overlay
// patched li's input list to read id, which the golden fanout CSR does not
// know about. Removed edge-for-edge when the overlay is repaired.
func (v *Vector) addFanAddEdge(id, li int32) {
	if !v.eventDriven {
		return
	}
	if len(v.fanAdd[id]) == 0 {
		v.fanAddTouched = append(v.fanAddTouched, id)
	}
	v.fanAdd[id] = append(v.fanAdd[id], li)
}

// removeFanAddEdge drops one (id -> li) subscription, the inverse of
// addFanAddEdge. The touched entry stays; ResetBatch's clear of an
// already-empty list is a no-op.
func (v *Vector) removeFanAddEdge(id, li int32) {
	s := v.fanAdd[id]
	for i, x := range s {
		if x == li {
			s[i] = s[len(s)-1]
			v.fanAdd[id] = s[:len(s)-1]
			return
		}
	}
}

// maybeUnmarkCLB drops a CLB from the overlay plan once no lane holds any
// patch on it — the event-mode counterpart of ResetBatch's per-batch clear.
// Safe only for the event kernel: repaired logic is re-derived through the
// worklist (RemoveDelta schedules it), not by keeping it on an evaluation
// list, and an unmarked inactive CLB's held flip-flops are invisible under
// golden configuration (its output muxes select the constant-0 LUTs), which
// is exactly the scalar kernel's post-repair behaviour.
func (v *Vector) maybeUnmarkCLB(clb int32) {
	if !v.overCLB[clb] {
		return
	}
	lbase := clb * device.LUTsPerCLB
	for k := int32(0); k < device.LUTsPerCLB; k++ {
		li := lbase + k
		if len(v.lutOver[li]) > 0 || v.muxXor[li] != 0 {
			return
		}
	}
	fbase := clb * device.FFsPerCLB
	for k := int32(0); k < device.FFsPerCLB; k++ {
		i := fbase + k
		if len(v.ceOver[i]) > 0 || v.dinvXor[i] != 0 {
			return
		}
	}
	v.overCLB[clb] = false
	for i, ci := range v.overCLBList {
		if ci == clb {
			v.overCLBList[i] = v.overCLBList[len(v.overCLBList)-1]
			v.overCLBList = v.overCLBList[:len(v.overCLBList)-1]
			break
		}
	}
	v.evalStale = true
}

// invalidateAllVec resets the kernel to "everything dirty": every LUT the
// sweep loop would evaluate (golden active set plus overlay CLBs)
// scheduled, every long line stale. Used when lane state changes out of
// band (ScatterLane) or the kernel is switched on mid-life.
func (v *Vector) invalidateAllVec() {
	if !v.eventDriven {
		return
	}
	c := v.c
	for _, li := range c.evalBase {
		v.scheduleLUTVec(li)
	}
	for _, ci := range v.overCLBList {
		base := ci * device.LUTsPerCLB
		for k := int32(0); k < device.LUTsPerCLB; k++ {
			v.scheduleLUTVec(base + k)
		}
	}
	for ll := int32(0); ll < int32(c.lls); ll++ {
		v.markLLStaleVec(ll, ^uint64(0))
	}
}

// clearEventWork drops all pending event state and per-batch overlay
// subscriptions. ResetBatch pairs it with invalidateAllVec (the canonical
// snapshot need not be a fixpoint); switching to the sweep kernel uses it
// alone, since the sweep loop re-derives everything each Settle.
func (v *Vector) clearEventWork() {
	for _, li := range v.listNext {
		v.sched[li] = schedNone
	}
	v.listNext = v.listNext[:0]
	v.heapCur = v.heapCur[:0]
	for _, ll := range v.staleLL {
		v.staleLLMark[ll] = false
	}
	v.staleLL = v.staleLL[:0]
	for _, id := range v.fanAddTouched {
		v.fanAdd[id] = v.fanAdd[id][:0]
	}
	v.fanAddTouched = v.fanAddTouched[:0]
	v.frozenLanes = 0
}

// evalScheduledVec evaluates scheduled LUT li at position p — the body is
// the sweep loop's evaluation with event propagation hooked onto changes —
// and returns the lanes whose state moved. Shared by the heap and dense
// round walks in settleEventVec.
func (v *Vector) evalScheduledVec(li, p int32) uint64 {
	c := v.c
	st := v.state
	var changed uint64
	i4 := int(li) * device.LUTInputs
	in := c.inID[i4 : i4+4 : i4+4]
	w := truthWord(c.truth[li], st[in[0]], st[in[1]], st[in[2]], st[in[3]])
	if ps := v.lutOver[li]; len(ps) > 0 {
		for i := range ps {
			p2 := &ps[i]
			w = w&^(1<<p2.lane) | v.laneLUTBit(p2)<<p2.lane
		}
	}
	if v.lut[li] != w {
		changed |= v.lut[li] ^ w
		v.lut[li] = w
	}
	mux := c.muxW[li] ^ v.muxXor[li]
	out := v.ff[li]&mux | w&^mux
	if st[li] != out {
		trig := st[li] ^ out
		changed |= trig
		st[li] = out
		v.propagateVec(li, p)
		for _, ll := range c.byOutLL[c.byOutStart[li]:c.byOutStart[li+1]] {
			if diff := v.refreshLineFrom(int(ll), li, true, trig); diff != 0 {
				changed |= diff
				v.propagateVec(c.llNetBase+ll, p)
			}
		}
		for _, ll := range v.llAddByOut[li] {
			if diff := v.refreshLineFrom(int(ll), li, false, trig); diff != 0 {
				changed |= diff
				v.propagateVec(c.llNetBase+ll, p)
			}
		}
	}
	return changed
}

// denseRoundFactor picks between the two round walks: with k scheduled LUTs
// the heap spends O(k log k) push/pop traffic, a dense walk spends one
// sched-byte probe per topological position. The byte probe is ~an order of
// magnitude cheaper than a heap operation, so the walk wins once k exceeds
// about 1/16 of the position space — which after every Clock of 64
// independently-stimulated lanes it essentially always does.
const denseRoundFactor = 16

// settleEventVec drains the dirty worklist to a lane-wise fixpoint — the
// event-driven counterpart of the sweep loop, round-for-round identical to
// it in every lane (see the package comment above for the argument). All
// scratch (heap, pending list, stale list) lives on the Vector and is
// reused across batches; the drain allocates nothing.
func (v *Vector) settleEventVec() {
	if len(v.listNext) == 0 && len(v.staleLL) == 0 {
		// Converged and nothing moved since: every lane is at its
		// fixpoint, so no lane can be hiding frozen work.
		v.frozenLanes = 0
		return
	}
	v.statDrains++
	c := v.c
	positions := int32(len(c.orderLUT))
	rounds := 0
	var roundChanged uint64
	for rounds < v.MaxSweeps && (len(v.listNext) > 0 || len(v.staleLL) > 0) {
		rounds++
		roundChanged = 0
		if len(v.listNext)*denseRoundFactor >= len(c.orderLUT) {
			// Dense round: mark every promoted LUT schedCurrent and walk
			// positions in ascending order probing the sched byte. Same
			// scheduled set, same ascending evaluation order as the heap
			// walk — in-round touches (q > p) are found by the walk itself.
			v.denseRound = true
			minP := positions
			for _, li := range v.listNext {
				v.sched[li] = schedCurrent
				if q := c.lutPos[li]; q < minP {
					minP = q
				}
			}
			v.listNext = v.listNext[:0]
			for p := minP; p < positions; p++ {
				li := c.orderLUT[p]
				if v.sched[li] != schedCurrent {
					continue
				}
				v.sched[li] = schedNone
				roundChanged |= v.evalScheduledVec(li, p)
			}
			v.denseRound = false
		} else {
			// Sparse round: promote pending work into the position heap.
			h := v.heapCur[:0]
			for _, li := range v.listNext {
				v.sched[li] = schedCurrent
				h = heapPushPos(h, c.lutPos[li])
			}
			v.heapCur = h
			v.listNext = v.listNext[:0]
			for len(v.heapCur) > 0 {
				var p int32
				v.heapCur, p = heapPopPos(v.heapCur)
				li := c.orderLUT[p]
				if v.sched[li] != schedCurrent {
					continue
				}
				v.sched[li] = schedNone
				roundChanged |= v.evalScheduledVec(li, p)
			}
		}
		// Long lines whose inputs changed outside the in-round edges refresh
		// once at end of round, becoming visible next round — the event image
		// of the sweep kernel's end-of-sweep refresh.
		if len(v.staleLL) > 0 {
			for _, ll := range v.staleLL {
				v.staleLLMark[ll] = false
				if diff := v.refreshLine(int(ll)); diff != 0 {
					roundChanged |= diff
					v.scheduleNetConsumersVec(c.llNetBase + ll)
				}
			}
			v.staleLL = v.staleLL[:0]
		}
	}
	v.statRounds += int64(rounds)
	if rounds == v.MaxSweeps {
		// Hit the oscillation bound: lanes still switching in the final
		// round are frozen mid-transient. Lanes quiet in it are at their
		// per-lane fixpoint — pending evaluations are identities for them.
		v.frozenLanes = roundChanged
	} else {
		v.frozenLanes = 0
	}
}
