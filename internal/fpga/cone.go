package fpga

import (
	"repro/internal/bitstream"
	"repro/internal/device"
)

// Static cone-of-influence analysis over a decoded configuration. Starting
// from a set of observed output nets, the analysis walks backwards through
// the golden fabric — LUT input-mux fan-in, routed clock enables, long-line
// wired-AND drivers, BRAM port sources — and closes over every net, site,
// long line, and BRAM block whose value or state can reach an observation.
// Configuration bits belonging only to fabric outside the closure are
// provably inert under single-bit corruption: a flip changes config at its
// own resource alone, every in-cone reader keeps its golden configuration,
// and any bit that could splice a NEW edge into the cone (a long-line
// driver enable, a dout enable, anything on an in-cone site) is kept
// potentially-sensitive by construction.

// Cone is the result of a cone-of-influence analysis.
type Cone struct {
	// Net marks dense net IDs (device.NetID space) that can reach an
	// observed output.
	Net []bool
	// Site marks LUT/FF/output sites (clbIdx*LUTsPerCLB + l) in the cone.
	Site []bool
	// Line marks dense long-line indices in the cone.
	Line []bool
	// Block marks BRAM blocks whose output register can reach the cone.
	Block []bool
	// LiveBRAMCol marks BRAM columns containing any configured block; their
	// frames interleave live port/content state and stay untriaged.
	LiveBRAMCol []bool
	// Volatile marks configurations whose per-injection outcomes depend on
	// accumulated campaign history rather than on the bitstream alone:
	// SRL16 LUTs (truth bits are shifting design state the column scrub
	// itself rewrites), BRAM blocks that can write their content, or a
	// stuck-fault overlay bypassing the decoded netlist. A volatile design
	// admits no triage at all — skipping any injection would change the
	// step history every later injection observes.
	Volatile bool
}

// ConeOfInfluence computes the backward closure of outNets (dense net IDs,
// e.g. board.OutputNetIDs) over this device's decoded configuration.
func (f *FPGA) ConeOfInfluence(outNets []int) *Cone {
	g := f.geom
	nLL := device.LongLinesPerRow*g.Rows + device.LongLinesPerCol*g.Cols
	cone := &Cone{
		Net:         make([]bool, g.NumNets()),
		Site:        make([]bool, g.CLBs()*device.LUTsPerCLB),
		Line:        make([]bool, nLL),
		Block:       make([]bool, g.BRAMBlocks()),
		LiveBRAMCol: make([]bool, g.BRAMCols),
		Volatile:    f.hasStuck,
	}
	queue := make([]int32, 0, 64)
	addNet := func(id int) {
		if id >= 0 && !cone.Net[id] {
			cone.Net[id] = true
			queue = append(queue, int32(id))
		}
	}
	addBlock := func(bi int) {
		if cone.Block[bi] {
			return
		}
		cone.Block[bi] = true
		cfg := &f.brams[bi]
		bc, blk := f.bramColBlk(bi)
		adj := g.BRAMAdjCol(bc)
		src := func(sel bramPortSel) {
			if !sel.valid {
				return
			}
			r := g.BRAMRowBase(blk) + int(sel.rowOff)
			if r >= g.Rows {
				r = g.Rows - 1
			}
			addNet((r*g.Cols+adj)*4 + int(sel.out))
		}
		for j := range cfg.addr {
			src(cfg.addr[j])
		}
		for j := range cfg.din {
			src(cfg.din[j])
		}
		src(cfg.we)
		src(cfg.en)
	}
	for _, id := range outNets {
		addNet(id)
	}
	clbOuts := 4 * g.CLBs()
	for len(queue) > 0 {
		id := int(queue[len(queue)-1])
		queue = queue[:len(queue)-1]
		switch {
		case id < clbOuts:
			clbIdx, o := id/4, id&3
			cone.Site[clbIdx*device.LUTsPerCLB+o] = true
			cfg := &f.clbs[clbIdx]
			for in := 0; in < device.LUTInputs; in++ {
				addNet(int(f.candID[clbIdx*device.InMuxWays+int(cfg.lut[o].inSel[in])]))
			}
			if cfg.ff[o].ceMode == device.CERouted {
				addNet(int(f.candID[clbIdx*device.InMuxWays+int(cfg.ff[o].ceSel)]))
			}
		case id < clbOuts+nLL:
			ll := id - clbOuts
			cone.Line[ll] = true
			for _, ref := range f.llDrivers[ll] {
				if ref.bram {
					addBlock(ref.idx)
				} else {
					addNet(ref.idx*4 + ref.out)
				}
			}
		default:
			// Pins carry board stimulus; no configuration behind them.
		}
	}
	for idx := range f.clbs {
		for l := 0; l < device.LUTsPerCLB; l++ {
			if f.clbs[idx].lut[l].srl {
				cone.Volatile = true
			}
		}
	}
	for bi := range f.brams {
		cfg := &f.brams[bi]
		if *cfg == (bramCfg{}) {
			continue
		}
		bc, _ := f.bramColBlk(bi)
		cone.LiveBRAMCol[bc] = true
		if cfg.en.valid && cfg.we.valid {
			cone.Volatile = true // content can drift with step history
		}
	}
	return cone
}

// SensitivityMask classifies every configuration bit of the decoded design:
// a set bit is potentially-sensitive and must be injected for real; a clear
// bit is provably-inert — flipping it cannot change any net, state element,
// or keeper read by the cone of outNets, nor perturb campaign scrubbing.
// The classification is conservative, so tallying clear bits as benign
// yields reports byte-identical to injecting them.
func (f *FPGA) SensitivityMask(outNets []int) (*bitstream.Memory, *Cone) {
	g := f.geom
	cone := f.ConeOfInfluence(outNets)
	mask := bitstream.NewMemory(g)
	fl := int64(g.FrameLength())
	markFrames := func(lo, hi int) {
		for a := int64(lo) * fl; a < int64(hi)*fl; a++ {
			mask.Set(device.BitAddr(a), true)
		}
	}
	if cone.Volatile {
		markFrames(0, g.TotalFrames())
		return mask, cone
	}
	for c := 0; c < g.Cols; c++ {
		for r := 0; r < g.Rows; r++ {
			idx := r*g.Cols + c
			cfg := &f.clbs[idx]
			for l := 0; l < device.LUTsPerCLB; l++ {
				if !cone.Site[idx*device.LUTsPerCLB+l] {
					continue
				}
				for _, rng := range device.SiteCBRanges(l) {
					for cb := rng[0]; cb < rng[1]; cb++ {
						mask.Set(g.CLBBitOf(r, c, cb), true)
					}
				}
			}
			for d := 0; d < device.LLDriversPerCLB; d++ {
				if !cone.Line[f.llIndexOf(r, c, d)] {
					continue
				}
				// The enable bit of even a disabled driver can splice a new
				// wired-AND contributor onto an in-cone line; the source
				// select matters only while the driver is enabled.
				mask.Set(g.LLDrvBitAddr(r, c, d, device.LLEnableBit), true)
				if cfg.ll[d].enable {
					mask.Set(g.LLDrvBitAddr(r, c, d, device.LLSrcBase), true)
					mask.Set(g.LLDrvBitAddr(r, c, d, device.LLSrcBase+1), true)
				}
			}
		}
	}
	for bc := 0; bc < g.BRAMCols; bc++ {
		if cone.LiveBRAMCol[bc] {
			base := g.CLBFrames() + bc*device.BRAMFramesPerCol
			markFrames(base, base+device.BRAMFramesPerCol)
			continue
		}
		// Every block in this column is unconfigured (a configured one would
		// have marked the column live). A single flip can still gate a
		// wired-AND: a dout enable forces its line to the frozen output
		// register's bit. Those enables stay sensitive when the line is in
		// the cone; all other bits of a dead column are inert.
		adj := g.BRAMAdjCol(bc)
		for blk := 0; blk < g.BRAMBlocksPerCol(); blk++ {
			for ch := 0; ch < device.LongLinesPerCol; ch++ {
				ll := device.LongLinesPerRow*g.Rows + adj*device.LongLinesPerCol + ch
				if cone.Line[ll] {
					k := device.BRAMPortDoutBase + ch*device.BRAMDoutLLBits
					mask.Set(g.BRAMPortBitAddr(bc, blk, k), true)
				}
			}
		}
	}
	// Frames beyond the CLB and BRAM columns configure nothing: inert.
	return mask, cone
}
