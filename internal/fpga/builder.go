package fpga

import (
	"repro/internal/bitstream"
	"repro/internal/device"
)

// ConfigBuilder composes a configuration memory field by field. The
// placement/routing flow and the BIST design generators use it to emit
// bitstreams; tests use it to build small hand-crafted circuits.
type ConfigBuilder struct {
	g device.Geometry
	m *bitstream.Memory
}

// NewConfigBuilder returns a builder over an all-zero configuration.
func NewConfigBuilder(g device.Geometry) *ConfigBuilder {
	return &ConfigBuilder{g: g, m: bitstream.NewMemory(g)}
}

// Geometry returns the target geometry.
func (b *ConfigBuilder) Geometry() device.Geometry { return b.g }

// Memory returns the underlying configuration memory.
func (b *ConfigBuilder) Memory() *bitstream.Memory { return b.m }

// SetLUT writes the 16-bit truth table of LUT l of CLB (r, c).
func (b *ConfigBuilder) SetLUT(r, c, l int, truth uint16) {
	b.m.Scatter(device.LUTBits, uint64(truth), func(i int) device.BitAddr {
		return b.g.LUTBitAddr(r, c, l, i)
	})
}

// SetSRL puts LUT l of CLB (r, c) into shift-register mode.
func (b *ConfigBuilder) SetSRL(r, c, l int, on bool) {
	b.m.Set(b.g.LUTModeBitAddr(r, c, l), on)
}

// RouteInput points input in (0..3) of LUT l of CLB (r, c) at input-mux
// slot s (0..31).
func (b *ConfigBuilder) RouteInput(r, c, l, in, s int) {
	b.m.Scatter(device.InMuxSelBits, uint64(s), func(i int) device.BitAddr {
		return b.g.InMuxBitAddr(r, c, l*device.LUTInputs+in, i)
	})
}

// SetFF configures flip-flop k of CLB (r, c).
func (b *ConfigBuilder) SetFF(r, c, k int, init bool, ce device.CEMode, ceSel int, dInv bool) {
	b.m.Set(b.g.FFBitAddr(r, c, k, device.FFInitBit), init)
	b.m.Set(b.g.FFBitAddr(r, c, k, device.FFCEModeLo), uint8(ce)&1 != 0)
	b.m.Set(b.g.FFBitAddr(r, c, k, device.FFCEModeHi), uint8(ce)&2 != 0)
	b.m.Scatter(device.InMuxSelBits, uint64(ceSel), func(i int) device.BitAddr {
		return b.g.FFBitAddr(r, c, k, device.FFCESelBase+i)
	})
	b.m.Set(b.g.FFBitAddr(r, c, k, device.FFDInvBit), dInv)
}

// SetOutMux selects the registered (ff=true) or combinational source for
// output o of CLB (r, c).
func (b *ConfigBuilder) SetOutMux(r, c, o int, ff bool) {
	b.m.Set(b.g.OutMuxBitAddr(r, c, o), ff)
}

// DriveLL enables long-line driver d (0..3 row channels, 4..7 column
// channels) of CLB (r, c) with CLB output src.
func (b *ConfigBuilder) DriveLL(r, c, d, src int) {
	b.m.Set(b.g.LLDrvBitAddr(r, c, d, device.LLEnableBit), true)
	b.m.Scatter(2, uint64(src), func(i int) device.BitAddr {
		return b.g.LLDrvBitAddr(r, c, d, device.LLSrcBase+i)
	})
}

// BRAM configuration ---------------------------------------------------------

// SetBRAMWord writes initial content word w of block blk in BRAM column bc.
func (b *ConfigBuilder) SetBRAMWord(bc, blk, w int, v uint16) {
	for i := 0; i < device.BRAMWidth; i++ {
		b.m.Set(b.g.BRAMContentBitAddr(bc, blk, w, i), v&(1<<uint(i)) != 0)
	}
}

// bramSel packs a port-input source field.
func bramSel(valid bool, rowOff, out int) uint64 {
	v := uint64(rowOff&7)<<1 | uint64(out&3)<<4
	if valid {
		v |= 1
	}
	return v
}

// BindBRAMAddr connects address bit j of block (bc, blk) to output out of
// the CLB rowOff rows below the block base in the adjacent column.
func (b *ConfigBuilder) BindBRAMAddr(bc, blk, j, rowOff, out int) {
	b.scatterBRAMPort(bc, blk, device.BRAMPortAddrBase+j*device.BRAMPortInBits,
		device.BRAMPortInBits, bramSel(true, rowOff, out))
}

// scatterBRAMPort writes a port field through the per-bit address map.
func (b *ConfigBuilder) scatterBRAMPort(bc, blk, base, w int, v uint64) {
	b.m.Scatter(w, v, func(i int) device.BitAddr {
		return b.g.BRAMPortBitAddr(bc, blk, base+i)
	})
}

// BindBRAMDin connects data-in bit j analogously.
func (b *ConfigBuilder) BindBRAMDin(bc, blk, j, rowOff, out int) {
	b.scatterBRAMPort(bc, blk, device.BRAMPortDinBase+j*device.BRAMPortInBits,
		device.BRAMPortInBits, bramSel(true, rowOff, out))
}

// BindBRAMWE connects the write enable.
func (b *ConfigBuilder) BindBRAMWE(bc, blk, rowOff, out int) {
	b.scatterBRAMPort(bc, blk, device.BRAMPortWEBase, device.BRAMPortInBits, bramSel(true, rowOff, out))
}

// BindBRAMEN connects the port enable.
func (b *ConfigBuilder) BindBRAMEN(bc, blk, rowOff, out int) {
	b.scatterBRAMPort(bc, blk, device.BRAMPortENBase, device.BRAMPortInBits, bramSel(true, rowOff, out))
}

// DriveBRAMDout drives column long-line channel ch of the adjacent column
// with dout bit `bit` of block (bc, blk).
func (b *ConfigBuilder) DriveBRAMDout(bc, blk, ch, bit int) {
	b.scatterBRAMPort(bc, blk, device.BRAMPortDoutBase+ch*device.BRAMDoutLLBits,
		device.BRAMDoutLLBits, uint64(bit&15)<<1|1)
}

// Bitstreams ------------------------------------------------------------------

// FullBitstream assembles the complete configuration (with start-up).
func (b *ConfigBuilder) FullBitstream() *bitstream.Bitstream {
	return bitstream.Full(b.m)
}

// PartialBitstream assembles a partial bitstream of the given frames.
func (b *ConfigBuilder) PartialBitstream(frames []int) *bitstream.Bitstream {
	return bitstream.Partial(b.m, frames)
}

// Device constructs a fresh FPGA and fully configures it with the builder's
// current memory — the pre-flight step design generators use to validate a
// raw-fabric configuration before handing it to a test harness.
func (b *ConfigBuilder) Device() (*FPGA, error) {
	f := New(b.g)
	if err := f.FullConfigure(b.FullBitstream()); err != nil {
		return nil, err
	}
	return f, nil
}

// Common LUT truth tables (inputs are indexed LSB-first: bit i of the
// table index is LUT input i).
const (
	// TruthBuf passes input 0 through (unused inputs at any value).
	TruthBuf uint16 = 0xAAAA
	// TruthNot inverts input 0.
	TruthNot uint16 = 0x5555
	// TruthXor2 XORs inputs 0 and 1.
	TruthXor2 uint16 = 0x6666
	// TruthAnd2 ANDs inputs 0 and 1.
	TruthAnd2 uint16 = 0x8888
	// TruthOr2 ORs inputs 0 and 1.
	TruthOr2 uint16 = 0xEEEE
	// TruthXor3 XORs inputs 0..2.
	TruthXor3 uint16 = 0x9696
	// TruthXor4 XORs all four inputs.
	TruthXor4 uint16 = 0x6996
	// TruthMaj3 is the 2-of-3 majority of inputs 0..2 (the TMR voter).
	TruthMaj3 uint16 = 0xE8E8
	// TruthZero and TruthOne are constants.
	TruthZero uint16 = 0x0000
	TruthOne  uint16 = 0xFFFF
	// TruthMux selects input 0 (sel=0) or input 1 (sel=1) with select on
	// input 2.
	TruthMux uint16 = 0xCACA
	// TruthAndNot2 is input0 AND NOT input1.
	TruthAndNot2 uint16 = 0x2222
)
