package fpga

import (
	"repro/internal/device"
)

// SetPin drives device input pin p (global index, see device.Pin*) to v.
// Pin values persist until changed.
func (f *FPGA) SetPin(p int, v bool) {
	id := f.pinNetID(p)
	if f.netVal[id] == v {
		return
	}
	f.netVal[id] = v
	if f.eventSim {
		if f.fanStale {
			f.rebuildFanout()
		}
		f.scheduleNetConsumers(id)
	}
}

// Pin returns the current value of pin p as seen by the fabric.
func (f *FPGA) Pin(p int) bool { return f.netVal[f.pinNetID(p)] }

func (f *FPGA) pinNetID(p int) int {
	g := f.geom
	return 4*g.CLBs() + device.LongLinesPerRow*g.Rows + device.LongLinesPerCol*g.Cols + p
}

// NetValue returns the settled value of dense net id. An unprogrammed
// device reads as all zeros.
func (f *FPGA) NetValue(id int) bool {
	if f.unprogrammed {
		return false
	}
	return f.netVal[id]
}

// OutValue returns the settled value of output o of the CLB at (r, c).
func (f *FPGA) OutValue(r, c, o int) bool {
	return f.NetValue(f.geom.NetID(device.NetRef{Kind: device.NetCLBOut, R: r, C: c, O: o}))
}

// FFValue returns the current state of flip-flop k of the CLB at (r, c).
// The scrubbing study relies on FF state being invisible to configuration
// readback; this accessor exists for tests and the BIST harness (which on
// the real part captures FF state through readback's state capture).
func (f *FPGA) FFValue(r, c, k int) bool {
	return f.ffVal[(r*f.geom.Cols+c)*device.FFsPerCLB+k]
}

// SetFFValue overwrites flip-flop state directly; used by the beam model
// for SEUs in user flip-flops (which do not disturb the bitstream).
func (f *FPGA) SetFFValue(r, c, k int, v bool) {
	clbIdx := r*f.geom.Cols + c
	li := clbIdx*device.FFsPerCLB + k
	if f.ffVal[li] == v {
		return
	}
	f.ffVal[li] = v
	if f.clbs[clbIdx].outMuxFF[k] {
		f.scheduleLUT(int32(li))
	}
}

// readSlot returns the value slot s of CLB clbIdx reads, honouring stuck-at
// faults and half-latch keepers on undriven wires.
func (f *FPGA) readSlot(clbIdx, s int) bool {
	si := clbIdx*device.InMuxWays + s
	if f.hasStuck {
		g := f.geom
		if v, ok := f.stuck[device.Segment{R: clbIdx / g.Cols, C: clbIdx % g.Cols, S: s}]; ok {
			return v
		}
	}
	id := f.candID[si]
	if id < 0 {
		return f.inHL[si]
	}
	return f.netVal[id]
}

// lutInputs gathers the four input values of LUT l of CLB clbIdx.
func (f *FPGA) lutIndex4(clbIdx, l int) int {
	cfg := &f.clbs[clbIdx].lut[l]
	idx := 0
	for in := 0; in < device.LUTInputs; in++ {
		if f.readSlot(clbIdx, int(cfg.inSel[in])) {
			idx |= 1 << uint(in)
		}
	}
	return idx
}

// evalLUT computes the combinational output of LUT li (dense index). In
// SRL16 mode input 3 is the shift-in datum, so only inputs 0..2 address the
// (8-deep visible) tap.
func (f *FPGA) evalLUT(li int32) bool {
	clbIdx := int(li) / device.LUTsPerCLB
	l := int(li) % device.LUTsPerCLB
	cfg := &f.clbs[clbIdx].lut[l]
	idx := f.lutIndex4(clbIdx, l)
	if cfg.srl {
		idx &= 7
	}
	return cfg.truth&(1<<uint(idx)) != 0
}

// refreshLL recomputes long line ll (dense long-line index). Multiple
// enabled drivers resolve as a wired-AND; no enabled driver reads the
// line's half-latch keeper.
func (f *FPGA) refreshLL(ll int) bool {
	drv := f.llDrivers[ll]
	var v bool
	if len(drv) == 0 {
		v = f.llHL[ll]
	} else {
		v = true
		for _, ref := range drv {
			var dv bool
			if ref.bram {
				dv = f.bramOut[ref.idx]&(1<<uint(ref.out)) != 0
			} else {
				dv = f.netVal[ref.idx*4+ref.out]
			}
			v = v && dv
		}
	}
	id := f.llNetID(ll)
	changed := f.netVal[id] != v
	f.netVal[id] = v
	return changed
}

// Settle evaluates combinational logic to a fixpoint (bounded by
// MaxSweeps) and returns the number of sweeps used.
func (f *FPGA) Settle() int {
	if f.unprogrammed {
		f.lastSweeps = 0
		return 0
	}
	if f.eventSim {
		return f.settleEvent()
	}
	if f.evalStale {
		f.rebuildEvalLists()
	}
	sweeps := 0
	for sweeps < f.MaxSweeps {
		sweeps++
		changed := false
		for _, li := range f.evalList {
			clbIdx := int(li) / device.LUTsPerCLB
			o := int(li) % device.LUTsPerCLB
			v := f.evalLUT(li)
			if f.lutVal[li] != v {
				f.lutVal[li] = v
				changed = true
			}
			var out bool
			if f.clbs[clbIdx].outMuxFF[o] {
				out = f.ffVal[int(li)]
			} else {
				out = v
			}
			id := clbIdx*4 + o
			if f.netVal[id] != out {
				f.netVal[id] = out
				changed = true
				// Refresh long lines driven by this output in the same
				// sweep, so long-line chains don't cost one sweep per hop.
				for _, ll := range f.llByOut[id] {
					f.refreshLL(int(ll))
				}
			}
		}
		for ll := range f.llDrivers {
			if f.refreshLL(ll) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	f.lastSweeps = sweeps
	return sweeps
}

// rebuildEvalLists refreshes the compact evaluation and clocking lists from
// the active/dirty sets.
func (f *FPGA) rebuildEvalLists() {
	f.evalList = f.evalList[:0]
	for _, li := range f.order {
		if f.activeLUT[li] || f.dirtyCLB[li/device.LUTsPerCLB] {
			f.evalList = append(f.evalList, li)
		}
	}
	f.clockList = f.clockList[:0]
	for idx := range f.clbs {
		if f.clbActive[idx] || f.dirtyCLB[idx] {
			f.clockList = append(f.clockList, int32(idx))
		}
	}
	f.evalStale = false
}

// ceValue resolves the clock enable of FF k of CLB clbIdx.
func (f *FPGA) ceValue(clbIdx, k int) bool {
	cfg := &f.clbs[clbIdx].ff[k]
	switch cfg.ceMode {
	case device.CEHalfLatch:
		return f.ceHL[clbIdx*device.FFsPerCLB+k]
	case device.CERouted:
		return f.readSlot(clbIdx, int(cfg.ceSel))
	case device.CEConstZero:
		return false
	default: // CEConstOne
		return true
	}
}

// srlUpdate captures a pending SRL16 shift.
type srlUpdate struct {
	clbIdx, l int
	truth     uint16
}

// clock performs one rising clock edge using the currently settled
// combinational values.
func (f *FPGA) clock() {
	if f.unprogrammed {
		return
	}
	if f.evalStale {
		f.rebuildEvalLists()
	}
	// Flip-flops of active/dirty CLBs. FF next-state reads only pre-clock
	// combinational values (lutVal, netVal), so in-place update is safe.
	srls := f.srlScratch[:0]
	for _, ci := range f.clockList {
		clbIdx := int(ci)
		cfg := &f.clbs[clbIdx]
		for k := 0; k < device.FFsPerCLB; k++ {
			i := clbIdx*device.FFsPerCLB + k
			if f.ceValue(clbIdx, k) {
				d := f.lutVal[clbIdx*device.LUTsPerCLB+k]
				if cfg.ff[k].dInv {
					d = !d
				}
				if f.ffVal[i] != d {
					f.ffVal[i] = d
					if cfg.outMuxFF[k] {
						f.scheduleLUT(int32(i))
					}
				}
			}
		}
		// SRL16 shifts: the shift-in datum is LUT input 3 by convention.
		// The shift rewrites the LUT's truth-table configuration bits —
		// live design state inside configuration memory.
		for l := 0; l < device.LUTsPerCLB; l++ {
			if !cfg.lut[l].srl {
				continue
			}
			if !f.ceValue(clbIdx, l) {
				continue
			}
			din := f.readSlot(clbIdx, int(cfg.lut[l].inSel[3]))
			t := cfg.lut[l].truth << 1
			if din {
				t |= 1
			}
			srls = append(srls, srlUpdate{clbIdx: clbIdx, l: l, truth: t})
		}
	}
	// BRAM ports are synchronous: sample, write, register output.
	for bi := range f.brams {
		f.clockBRAM(bi)
	}
	// A dirty CLB has now settled and clocked once; drop it from the
	// forced lists.
	if len(f.dirtyCLBList) > 0 {
		for _, ci := range f.dirtyCLBList {
			f.dirtyCLB[ci] = false
		}
		f.dirtyCLBList = f.dirtyCLBList[:0]
		f.evalStale = true
	}
	for i := range srls {
		u := &srls[i]
		lut := &f.clbs[u.clbIdx].lut[u.l]
		if lut.truth == u.truth {
			continue
		}
		lut.truth = u.truth
		f.scheduleLUT(int32(u.clbIdx*device.LUTsPerCLB + u.l))
		g := f.geom
		r, c := u.clbIdx/g.Cols, u.clbIdx%g.Cols
		f.cm.Scatter(device.LUTBits, uint64(u.truth), func(i int) device.BitAddr {
			return g.LUTBitAddr(r, c, u.l, i)
		})
	}
	f.srlScratch = srls
	f.cycle++
}

// bramPortValue resolves one BRAM port-input source field against the
// adjacent CLB column.
func (f *FPGA) bramPortValue(bi int, sel bramPortSel) bool {
	if !sel.valid {
		return false
	}
	bc, blk := f.bramColBlk(bi)
	g := f.geom
	r := g.BRAMRowBase(blk) + int(sel.rowOff)
	if r >= g.Rows {
		r = g.Rows - 1
	}
	c := g.BRAMAdjCol(bc)
	return f.netVal[(r*g.Cols+c)*4+int(sel.out)]
}

func (f *FPGA) clockBRAM(bi int) {
	cfg := &f.brams[bi]
	if !f.bramPortValue(bi, cfg.en) {
		return
	}
	addr := 0
	for j := 0; j < device.BRAMAddrBits; j++ {
		if f.bramPortValue(bi, cfg.addr[j]) {
			addr |= 1 << uint(j)
		}
	}
	if f.bramInterference[bi] {
		// Readback stole the address lines this cycle: the write is lost
		// and the output register is corrupted (paper §IV-A).
		if f.bramOut[bi] != 0 {
			f.bramOut[bi] = 0
			f.markBRAMLLStale(bi)
		}
		f.bramInterference[bi] = false
		return
	}
	if f.bramPortValue(bi, cfg.we) {
		var din uint16
		for j := 0; j < device.BRAMWidth; j++ {
			if f.bramPortValue(bi, cfg.din[j]) {
				din |= 1 << uint(j)
			}
		}
		f.storeBRAMWord(bi, addr, din)
	}
	if out := f.bramMem[bi][addr]; f.bramOut[bi] != out {
		f.bramOut[bi] = out
		f.markBRAMLLStale(bi)
	}
}

// Step advances the device one clock cycle: settle combinational logic,
// clock all state, settle again so registered outputs are observable.
func (f *FPGA) Step() {
	f.Settle()
	f.clock()
	f.Settle()
}

// StepN advances n clock cycles.
func (f *FPGA) StepN(n int) {
	for i := 0; i < n; i++ {
		f.Step()
	}
}

// BRAMOut returns the output register of block bi.
func (f *FPGA) BRAMOut(bi int) uint16 { return f.bramOut[bi] }

// BRAMWord returns the cached content word w of block bi.
func (f *FPGA) BRAMWord(bi, w int) uint16 { return f.bramMem[bi][w] }
