package fpga

import (
	"repro/internal/device"
)

// This file hosts the fault surface of the device model:
//
//   - single configuration-bit upsets (what the paper's SEU simulator
//     injects through partial reconfiguration);
//   - hidden-state upsets — half-latch keepers, user flip-flops, and the
//     configuration control logic — which only the radiation environment
//     model can produce and which bitstream readback cannot observe;
//   - permanent stuck-at faults on routing segments for the BIST study.

// InjectBit flips one configuration bit in place and re-decodes the
// affected resource, emulating the effect of a bitstream SEU (or of the
// injector writing a corrupted frame). It returns the new bit value.
func (f *FPGA) InjectBit(a device.BitAddr) bool {
	v := f.cm.Flip(a)
	f.reDecodeBit(a)
	return v
}

// reDecodeBit re-decodes the smallest resource containing bit a.
func (f *FPGA) reDecodeBit(a device.BitAddr) {
	info := f.geom.Classify(a)
	switch info.Kind {
	case device.KindLUT, device.KindInMux, device.KindFF, device.KindOutMux, device.KindLongLine:
		f.decodeCLB(info.R, info.C, true)
		f.rebuildLLByOut()
		f.orderStale = true
	case device.KindBRAMContent:
		f.loadBRAMContent(f.bramIndex(info.C, info.R))
	case device.KindBRAMPort:
		f.decodeBRAM(info.C, info.R, true)
		f.rebuildLLByOut()
	}
}

// --- Hidden state: half-latches -------------------------------------------

// HalfLatchSite identifies one half-latch keeper.
type HalfLatchSite struct {
	Kind HalfLatchKind
	// R, C locate the CLB for input/CE keepers. Slot is the input-mux slot
	// for input keepers; FF the flip-flop index for CE keepers; LL the
	// dense long-line index for line keepers.
	R, C, Slot, FF, LL int
}

// HalfLatchKind classifies keeper sites.
type HalfLatchKind uint8

const (
	// HLInput: keeper on an undriven input-mux wire tap.
	HLInput HalfLatchKind = iota
	// HLCE: keeper supplying a flip-flop clock enable in CEHalfLatch mode.
	HLCE
	// HLLongLine: keeper on a long line with no enabled driver.
	HLLongLine
)

func (k HalfLatchKind) String() string {
	switch k {
	case HLInput:
		return "input"
	case HLCE:
		return "ce"
	case HLLongLine:
		return "longline"
	}
	return "unknown"
}

// HalfLatchSites enumerates every keeper site that currently exists on the
// device: undriven input taps, CE keepers of FFs configured in half-latch
// mode, and driverless long lines. The radiation model draws hidden-state
// upset targets from this census.
func (f *FPGA) HalfLatchSites() []HalfLatchSite {
	g := f.geom
	var out []HalfLatchSite
	for clbIdx := range f.clbs {
		r, c := clbIdx/g.Cols, clbIdx%g.Cols
		for s := 0; s < device.InMuxWays; s++ {
			if f.candID[clbIdx*device.InMuxWays+s] < 0 {
				out = append(out, HalfLatchSite{Kind: HLInput, R: r, C: c, Slot: s})
			}
		}
		for k := 0; k < device.FFsPerCLB; k++ {
			if f.clbs[clbIdx].ff[k].ceMode == device.CEHalfLatch {
				out = append(out, HalfLatchSite{Kind: HLCE, R: r, C: c, FF: k})
			}
		}
	}
	for ll := range f.llDrivers {
		if len(f.llDrivers[ll]) == 0 {
			out = append(out, HalfLatchSite{Kind: HLLongLine, LL: ll})
		}
	}
	return out
}

// FlipHalfLatch upsets one keeper. The upset is invisible to readback and
// survives partial reconfiguration; only FullConfigure (or a spontaneous
// recovery modelled by the radiation package) restores it.
func (f *FPGA) FlipHalfLatch(s HalfLatchSite) {
	g := f.geom
	f.hiddenGen++
	switch s.Kind {
	case HLInput:
		i := (s.R*g.Cols+s.C)*device.InMuxWays + s.Slot
		f.inHL[i] = !f.inHL[i]
		// Only LUTs of this CLB can read its input keepers.
		f.scheduleCLB(s.R*g.Cols + s.C)
	case HLCE:
		// CE keepers are read at the clock edge only.
		i := (s.R*g.Cols+s.C)*device.FFsPerCLB + s.FF
		f.ceHL[i] = !f.ceHL[i]
	case HLLongLine:
		f.llHL[s.LL] = !f.llHL[s.LL]
		f.markLLStale(s.LL)
	}
}

// HalfLatchValue reads the current keeper value at a site.
func (f *FPGA) HalfLatchValue(s HalfLatchSite) bool {
	g := f.geom
	switch s.Kind {
	case HLInput:
		return f.inHL[(s.R*g.Cols+s.C)*device.InMuxWays+s.Slot]
	case HLCE:
		return f.ceHL[(s.R*g.Cols+s.C)*device.FFsPerCLB+s.FF]
	default:
		return f.llHL[s.LL]
	}
}

// RestoreHalfLatch puts a keeper back to its start-up value (spontaneous
// recovery, which proton testing occasionally observed).
func (f *FPGA) RestoreHalfLatch(s HalfLatchSite) {
	g := f.geom
	switch s.Kind {
	case HLInput:
		i := (s.R*g.Cols+s.C)*device.InMuxWays + s.Slot
		if !f.inHL[i] {
			f.inHL[i] = true
			f.hiddenGen++
			f.scheduleCLB(s.R*g.Cols + s.C)
		}
	case HLCE:
		i := (s.R*g.Cols+s.C)*device.FFsPerCLB + s.FF
		if !f.ceHL[i] {
			f.ceHL[i] = true
			f.hiddenGen++
		}
	case HLLongLine:
		if !f.llHL[s.LL] {
			f.llHL[s.LL] = true
			f.hiddenGen++
			f.markLLStale(s.LL)
		}
	}
}

// --- Hidden state: configuration control logic ----------------------------

// UpsetControlLogic models an SEU in the configuration state machines: the
// device becomes unprogrammed (outputs dead, readback junk) until a full
// reconfiguration. Counts as a hidden-state mutation: the unprogrammed flag
// feeds ConfigHiddenHash.
func (f *FPGA) UpsetControlLogic() {
	f.unprogrammed = true
	f.hiddenGen++
}

// --- Permanent faults ------------------------------------------------------

// SetStuck injects a permanent stuck-at fault on a routing segment: every
// input mux of CLB (seg.R, seg.C) selecting slot seg.S reads v regardless
// of the driving net. Used by the BIST permanent-fault study.
func (f *FPGA) SetStuck(seg device.Segment, v bool) {
	f.stuck[seg] = v
	f.hasStuck = true
	f.hiddenGen++
	f.scheduleCLB(seg.R*f.geom.Cols + seg.C)
}

// ClearStuck removes one stuck-at fault.
func (f *FPGA) ClearStuck(seg device.Segment) {
	delete(f.stuck, seg)
	f.hasStuck = len(f.stuck) > 0
	f.hiddenGen++
	f.scheduleCLB(seg.R*f.geom.Cols + seg.C)
}

// ClearAllStuck removes every permanent fault.
func (f *FPGA) ClearAllStuck() {
	for seg := range f.stuck {
		f.scheduleCLB(seg.R*f.geom.Cols + seg.C)
	}
	f.stuck = make(map[device.Segment]bool)
	f.hasStuck = false
	f.hiddenGen++
}

// StuckFaults returns a copy of the active permanent-fault overlay.
func (f *FPGA) StuckFaults() map[device.Segment]bool {
	out := make(map[device.Segment]bool, len(f.stuck))
	for k, v := range f.stuck {
		out[k] = v
	}
	return out
}
