package fpga

import (
	"math/rand"
	"testing"

	"repro/internal/device"
)

// TestCloneLockStepAndDivergence: a cloned device is indistinguishable
// from its original under identical stimulus, shares no mutable state,
// and diverges only once a bit is injected into one of the pair.
func TestCloneLockStepAndDivergence(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	// A registered NOT gate: combinational output plus FF state, so the
	// lock-step check covers both net values and clocked state.
	b.SetLUT(2, 0, 0, TruthNot)
	b.RouteInput(2, 0, 0, 0, 4)
	b.RouteInput(2, 0, 0, 1, 12)
	b.RouteInput(2, 0, 0, 2, 12)
	b.RouteInput(2, 0, 0, 3, 12)
	b.SetFF(2, 0, 0, false, device.CEConstOne, 0, false)
	b.SetOutMux(2, 0, 1, true)
	f := configure(t, b)
	c := f.Clone()

	pin := g.PinWest(2, 0)
	rng := rand.New(rand.NewSource(1))
	step := func(dev *FPGA, v bool) {
		dev.SetPin(pin, v)
		dev.Step()
	}
	for i := 0; i < 200; i++ {
		v := rng.Intn(2) == 1
		step(f, v)
		step(c, v)
		if f.OutValue(2, 0, 0) != c.OutValue(2, 0, 0) || f.FFValue(2, 0, 0) != c.FFValue(2, 0, 0) {
			t.Fatalf("clone diverged at cycle %d before any injection", i)
		}
	}
	if !f.ConfigMemory().Equal(c.ConfigMemory()) {
		t.Fatal("clone configuration memory drifted from original")
	}

	// Corrupt the clone only: flip both truth bits the tied-input LUT can
	// address, so the very next evaluation differs.
	a0, a1 := g.LUTBitAddr(2, 0, 0, 0), g.LUTBitAddr(2, 0, 0, 1)
	c.InjectBit(a0)
	c.InjectBit(a1)
	if f.ConfigMemory().Get(a0) == c.ConfigMemory().Get(a0) {
		t.Fatal("injection into the clone leaked into the original's configuration")
	}
	diverged := false
	for i := 0; i < 20 && !diverged; i++ {
		v := rng.Intn(2) == 1
		step(f, v)
		step(c, v)
		diverged = f.OutValue(2, 0, 0) != c.OutValue(2, 0, 0)
	}
	if !diverged {
		t.Fatal("injected clone never diverged from the original")
	}
}

// TestCloneIsolatesHiddenState: half-latch upsets in the clone must not
// reach the original — hidden state is part of the deep copy.
func TestCloneIsolatesHiddenState(t *testing.T) {
	g := device.Tiny()
	b := NewConfigBuilder(g)
	b.SetLUT(1, 1, 0, TruthNot)
	f := configure(t, b)
	c := f.Clone()
	site := HalfLatchSite{Kind: HLInput, R: 1, C: 1, Slot: 0}
	c.FlipHalfLatch(site)
	if !f.HalfLatchValue(site) {
		t.Fatal("half-latch flip in the clone reached the original")
	}
	if c.HalfLatchValue(site) {
		t.Fatal("half-latch flip lost in the clone")
	}
}
