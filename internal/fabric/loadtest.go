package fabric

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// LoadTest drives a campaignd API with many concurrent synthetic clients —
// the production-scale question is not whether one client can submit a
// sweep but whether hundreds polling status, streaming progress, and
// scraping metrics starve the scheduler. Each client submits the (single,
// content-addressed, hence idempotent) job once, then cycles through the
// read-path operations; the report aggregates latency percentiles and
// error rates per operation.

// LoadTestOptions sizes a load-test run.
type LoadTestOptions struct {
	// Server is the campaignd base URL. Required.
	Server string
	// Clients is the number of concurrent clients (<= 0 = 50).
	Clients int
	// Requests is how many operations each client performs (<= 0 = 100).
	Requests int
	// SubmitBody, when set, is a JobSpec JSON each client POSTs as its
	// first operation (idempotent: every client names the same job).
	SubmitBody []byte
	// Timeout bounds one request (<= 0 = 10s).
	Timeout time.Duration
}

// OpStats aggregates one operation's latency distribution.
type OpStats struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// LoadTestReport is the run's aggregate outcome.
type LoadTestReport struct {
	Server          string              `json:"server"`
	Clients         int                 `json:"clients"`
	Requests        int                 `json:"requests"`
	Errors          int                 `json:"errors"`
	ErrorRate       float64             `json:"error_rate"`
	DurationSeconds float64             `json:"duration_seconds"`
	RequestsPerSec  float64             `json:"requests_per_second"`
	P50Ms           float64             `json:"p50_ms"`
	P99Ms           float64             `json:"p99_ms"`
	ByOp            map[string]*OpStats `json:"by_op"`
}

type opSample struct {
	op  string
	dur time.Duration
	err bool
}

// LoadTest runs the harness until every client finishes or ctx ends.
func LoadTest(ctx context.Context, opt LoadTestOptions) (*LoadTestReport, error) {
	if opt.Server == "" {
		return nil, fmt.Errorf("fabric: LoadTestOptions.Server is required")
	}
	if opt.Clients <= 0 {
		opt.Clients = 50
	}
	if opt.Requests <= 0 {
		opt.Requests = 100
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 10 * time.Second
	}
	base := strings.TrimRight(opt.Server, "/")
	client := &http.Client{Timeout: opt.Timeout}

	// One probe up front: a load test against a dead server should be an
	// error, not a report of 100% failures.
	if _, err := client.Get(base + "/healthz"); err != nil {
		return nil, fmt.Errorf("fabric: server unreachable: %w", err)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []opSample
	)
	start := time.Now()
	for i := 0; i < opt.Clients; i++ {
		wg.Add(1)
		go func(client_ int) {
			defer wg.Done()
			local := runLoadClient(ctx, client, base, opt)
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadTestReport{
		Server:          opt.Server,
		Clients:         opt.Clients,
		DurationSeconds: elapsed.Seconds(),
		ByOp:            make(map[string]*OpStats),
	}
	var all []time.Duration
	byOp := make(map[string][]time.Duration)
	for _, s := range samples {
		rep.Requests++
		st := rep.ByOp[s.op]
		if st == nil {
			st = &OpStats{}
			rep.ByOp[s.op] = st
		}
		st.Requests++
		if s.err {
			rep.Errors++
			st.Errors++
			continue
		}
		all = append(all, s.dur)
		byOp[s.op] = append(byOp[s.op], s.dur)
	}
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
		rep.RequestsPerSec = float64(rep.Requests) / elapsed.Seconds()
	}
	rep.P50Ms, rep.P99Ms = percentileMs(all, 0.50), percentileMs(all, 0.99)
	for op, durs := range byOp {
		st := rep.ByOp[op]
		st.P50Ms, st.P99Ms = percentileMs(durs, 0.50), percentileMs(durs, 0.99)
		st.MaxMs = percentileMs(durs, 1.0)
	}
	return rep, nil
}

// runLoadClient performs one client's operation sequence.
func runLoadClient(ctx context.Context, client *http.Client, base string, opt LoadTestOptions) []opSample {
	samples := make([]opSample, 0, opt.Requests)
	do := func(op string, fn func() error) {
		t0 := time.Now()
		err := fn()
		samples = append(samples, opSample{op: op, dur: time.Since(t0), err: err != nil})
	}
	get := func(path string) error {
		resp, err := client.Get(base + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("%s: %s", path, resp.Status)
		}
		return nil
	}

	jobID := ""
	n := 0
	if len(opt.SubmitBody) > 0 {
		do("submit", func() error {
			resp, err := client.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(opt.SubmitBody))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode/100 != 2 {
				return fmt.Errorf("submit: %s", resp.Status)
			}
			if i := bytes.Index(body, []byte(`"id": "`)); i >= 0 {
				rest := body[i+len(`"id": "`):]
				if j := bytes.IndexByte(rest, '"'); j > 0 {
					jobID = string(rest[:j])
				}
			}
			return nil
		})
		n++
	}
	for ; n < opt.Requests && ctx.Err() == nil; n++ {
		switch n % 5 {
		case 0:
			do("list", func() error { return get("/api/v1/jobs") })
		case 1:
			if jobID == "" {
				do("health", func() error { return get("/healthz") })
				continue
			}
			do("status", func() error { return get("/api/v1/jobs/" + jobID) })
		case 2:
			do("metrics", func() error { return get("/metrics") })
		case 3:
			if jobID == "" {
				do("health", func() error { return get("/healthz") })
				continue
			}
			// Stream: read the first NDJSON event, then hang up — the
			// worst-case connection churn pattern for the broker.
			do("stream", func() error {
				resp, err := client.Get(base + "/api/v1/jobs/" + jobID + "/stream")
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					return fmt.Errorf("stream: %s", resp.Status)
				}
				sc := bufio.NewScanner(resp.Body)
				if !sc.Scan() {
					return fmt.Errorf("stream: no first event")
				}
				return nil
			})
		default:
			do("health", func() error { return get("/healthz") })
		}
	}
	return samples
}

// percentileMs returns the q-quantile of durs in milliseconds (0 when
// empty). q = 1.0 is the maximum.
func percentileMs(durs []time.Duration, q float64) float64 {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx].Microseconds()) / 1000
}
