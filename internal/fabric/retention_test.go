package fabric

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fill puts n distinct blobs, oldest first, and returns their keys.
func fill(t *testing.T, s BlobStore, n int) []string {
	t.Helper()
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		key, err := s.Put([]byte(fmt.Sprintf("retained blob %d", i)))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
		time.Sleep(2 * time.Millisecond) // distinct ModTimes for ordering
	}
	return keys
}

func count(t *testing.T, s BlobStore) int {
	t.Helper()
	infos, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	return len(infos)
}

func TestSweepRetentionDisabledByDefault(t *testing.T) {
	s := NewMemStore()
	fill(t, s, 3)
	n, err := SweepRetention(s, RetentionPolicy{}, nil)
	if err != nil || n != 0 {
		t.Fatalf("zero policy swept %d blobs (err %v), want 0", n, err)
	}
	if got := count(t, s); got != 3 {
		t.Fatalf("store has %d blobs, want 3", got)
	}
}

func TestSweepRetentionMaxBlobsOldestFirst(t *testing.T) {
	s := NewMemStore()
	keys := fill(t, s, 5)
	n, err := SweepRetention(s, RetentionPolicy{MaxBlobs: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("swept %d blobs, want 3", n)
	}
	for _, key := range keys[:3] {
		if _, err := s.Get(key); err == nil {
			t.Fatalf("oldest blob %s survived a MaxBlobs sweep", key)
		}
	}
	for _, key := range keys[3:] {
		if _, err := s.Get(key); err != nil {
			t.Fatalf("newest blob %s was swept: %v", key, err)
		}
	}
}

func TestSweepRetentionMaxAge(t *testing.T) {
	s := NewMemStore()
	keys := fill(t, s, 2)
	time.Sleep(20 * time.Millisecond)
	fresh, err := s.Put([]byte("fresh blob"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := SweepRetention(s, RetentionPolicy{MaxAge: 15 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("swept %d blobs, want the 2 aged ones", n)
	}
	for _, key := range keys {
		if _, err := s.Get(key); err == nil {
			t.Fatalf("aged blob %s survived", key)
		}
	}
	if _, err := s.Get(fresh); err != nil {
		t.Fatalf("fresh blob was swept: %v", err)
	}
}

func TestSweepRetentionMinAgeProtectsYoungBlobs(t *testing.T) {
	s := NewMemStore()
	fill(t, s, 4)
	// Everything is over the MaxBlobs cap but younger than MinAge — the
	// Put→manifest-commit window must never be collected.
	n, err := SweepRetention(s, RetentionPolicy{MaxBlobs: 1, MinAge: time.Hour}, nil)
	if err != nil || n != 0 {
		t.Fatalf("swept %d young blobs (err %v), want 0", n, err)
	}
	if got := count(t, s); got != 4 {
		t.Fatalf("store has %d blobs, want 4", got)
	}
}

func TestSweepRetentionSkipsPinned(t *testing.T) {
	s := NewMemStore()
	keys := fill(t, s, 4)
	pinned := map[string]bool{keys[0]: true, keys[2]: true}
	n, err := SweepRetention(s, RetentionPolicy{MaxAge: time.Nanosecond},
		func(key string) bool { return pinned[key] })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("swept %d blobs, want 2 (the unpinned ones)", n)
	}
	for key := range pinned {
		if _, err := s.Get(key); err != nil {
			t.Fatalf("pinned blob %s was deleted: %v", key, err)
		}
	}
}

// Pins moving concurrently with sweeps must never lose a pinned blob: the
// pinned callback is consulted immediately before each delete, so a key
// pinned at any point before its deletion survives.
func TestSweepRetentionRacesPinning(t *testing.T) {
	s := NewMemStore()
	var mu sync.Mutex
	pins := make(map[string]bool)
	isPinned := func(key string) bool {
		mu.Lock()
		defer mu.Unlock()
		return pins[key]
	}
	pin := func(key string) {
		mu.Lock()
		pins[key] = true
		mu.Unlock()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				SweepRetention(s, RetentionPolicy{MaxAge: time.Nanosecond}, isPinned)
			}
		}
	}()

	var protected []string
	for i := 0; i < 50; i++ {
		b := []byte(fmt.Sprintf("raced blob %d", i))
		// Pin before Put: the sweep goroutine can list the blob the moment it
		// lands, and must already see it pinned.
		pin(HashKey(b))
		key, err := s.Put(b)
		if err != nil {
			t.Fatal(err)
		}
		protected = append(protected, key)
	}
	close(stop)
	wg.Wait()
	for _, key := range protected {
		if _, err := s.Get(key); err != nil {
			t.Fatalf("pinned blob %s lost to a concurrent sweep: %v", key, err)
		}
	}
}
