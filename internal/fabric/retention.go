package fabric

import "time"

// RetentionPolicy bounds a blob store's growth, in the CheckpointManager
// spirit: checkpoints are disposable once nothing can resume from them, and
// a store left unswept on a long-lived node would otherwise accumulate
// every chunk of every campaign it ever hosted.
type RetentionPolicy struct {
	// MaxBlobs caps the store's blob count; the oldest unpinned blobs are
	// deleted first. 0 = unlimited.
	MaxBlobs int
	// MaxAge deletes unpinned blobs older than this. 0 = no age limit.
	MaxAge time.Duration
	// MinAge protects young blobs regardless of pressure — the window
	// between a worker's Put and the coordinator's manifest commit, during
	// which a blob is live but not yet referenced anywhere.
	MinAge time.Duration
	// SweepEvery is the background sweep cadence (0 = no background sweep;
	// SweepRetention may still be called directly).
	SweepEvery time.Duration
}

// Enabled reports whether the policy deletes anything at all.
func (p RetentionPolicy) Enabled() bool { return p.MaxBlobs > 0 || p.MaxAge > 0 }

// SweepRetention applies pol to s and returns how many blobs it deleted.
// pinned (may be nil) is consulted immediately before each deletion — a
// blob referenced by any live job's checkpoint manifest must never be
// deleted, and callers whose manifests move concurrently should make pinned
// share the lock their manifest writes hold, closing the race between "not
// pinned when listed" and "pinned by the time we delete".
func SweepRetention(s BlobStore, pol RetentionPolicy, pinned func(key string) bool) (int, error) {
	if !pol.Enabled() {
		return 0, nil
	}
	infos, err := s.List()
	if err != nil {
		return 0, err
	}
	now := time.Now()
	deletable := func(bi BlobInfo) bool {
		if pol.MinAge > 0 && now.Sub(bi.ModTime) < pol.MinAge {
			return false
		}
		return pinned == nil || !pinned(bi.Key)
	}
	deleted := 0
	remaining := len(infos)
	for _, bi := range infos { // oldest first, per List's contract
		over := (pol.MaxAge > 0 && now.Sub(bi.ModTime) > pol.MaxAge) ||
			(pol.MaxBlobs > 0 && remaining > pol.MaxBlobs)
		if !over || !deletable(bi) {
			continue
		}
		if err := s.Delete(bi.Key); err != nil {
			return deleted, err
		}
		retentionDeletes.Add(1)
		deleted++
		remaining--
	}
	return deleted, nil
}
