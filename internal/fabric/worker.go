package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/seu"
)

// The worker agent. cmd/campaignworker is a thin main around RunWorker; the
// logic lives here so the fault-injection tests can run real workers
// in-process against an httptest coordinator.
//
// A worker is stateless: it rebuilds a board from the campaign spec carried
// in each lease (caching one chunk runner per job per slot, since every
// chunk of a job shares a spec), uploads the serialized result to the blob
// store, and reports the key. If its lease expired meanwhile the
// coordinator answers "stale" and the work is simply dropped — results are
// deterministic, so whoever stole the lease produced the same bytes.

// WorkerOptions configures a worker node.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL. Required.
	Coordinator string
	// Blob is the blob store base URL ("" = the coordinator, which embeds
	// the blob server).
	Blob string
	// Name labels the worker in coordinator logs/metrics.
	Name string
	// Slots is the number of chunks run concurrently (<= 0 = GOMAXPROCS).
	Slots int
	// Poll is the idle re-poll interval when the queue is empty
	// (<= 0 = 500ms).
	Poll time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// RunWorker registers against the coordinator and processes leases until
// ctx is cancelled. It retries registration until the coordinator is
// reachable, and re-registers whenever the coordinator forgets it.
func RunWorker(ctx context.Context, opt WorkerOptions) error {
	if opt.Coordinator == "" {
		return fmt.Errorf("fabric: WorkerOptions.Coordinator is required")
	}
	if opt.Blob == "" {
		opt.Blob = opt.Coordinator
	}
	if opt.Slots <= 0 {
		opt.Slots = runtime.GOMAXPROCS(0)
	}
	if opt.Poll <= 0 {
		opt.Poll = 500 * time.Millisecond
	}
	if opt.Client == nil {
		opt.Client = &http.Client{Timeout: 30 * time.Second}
	}
	w := &workerAgent{opt: opt, blobs: NewHTTPStore(opt.Blob)}
	if err := w.registerUntil(ctx); err != nil {
		return err
	}

	hbCtx, hbStop := context.WithCancel(ctx)
	defer hbStop()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.heartbeatLoop(hbCtx)
	}()
	for i := 0; i < opt.Slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.slotLoop(ctx)
		}()
	}
	wg.Wait()
	return nil
}

type workerAgent struct {
	opt   WorkerOptions
	blobs *HTTPStore

	mu  sync.Mutex
	id  string
	hb  time.Duration
	ttl time.Duration
}

func (w *workerAgent) workerID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// post sends a JSON request to the coordinator. A 404 means the
// registration lapsed — ErrUnknownWorker for callers to re-register on.
func (w *workerAgent) post(path string, req, reply any) error {
	b, err := json.Marshal(req)
	if err != nil {
		return err
	}
	url := strings.TrimRight(w.opt.Coordinator, "/") + path
	resp, err := w.opt.Client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusNotFound {
		return ErrUnknownWorker
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("fabric: %s: %s: %s", path, resp.Status, bytes.TrimSpace(body))
	}
	if reply == nil {
		return nil
	}
	return json.Unmarshal(body, reply)
}

func (w *workerAgent) register() error {
	var reply RegisterReply
	err := w.post("/api/v1/fabric/register", RegisterRequest{
		Name: w.opt.Name, CPUs: runtime.GOMAXPROCS(0),
		Kernels: []string{"auto", "sweep", "event", "vector", "vector-sweep"},
	}, &reply)
	if err != nil {
		return err
	}
	w.mu.Lock()
	w.id = reply.Worker
	w.hb = time.Duration(reply.HeartbeatMillis) * time.Millisecond
	w.ttl = time.Duration(reply.LeaseTTLMillis) * time.Millisecond
	w.mu.Unlock()
	return nil
}

// registerUntil retries registration until it lands or ctx ends.
func (w *workerAgent) registerUntil(ctx context.Context) error {
	for {
		err := w.register()
		if err == nil {
			return nil
		}
		select {
		case <-time.After(w.opt.Poll):
		case <-ctx.Done():
			return fmt.Errorf("fabric: registering with %s: %w (last: %v)", w.opt.Coordinator, ctx.Err(), err)
		}
	}
}

func (w *workerAgent) heartbeatLoop(ctx context.Context) {
	for {
		w.mu.Lock()
		hb := w.hb
		w.mu.Unlock()
		if hb <= 0 {
			hb = time.Second
		}
		select {
		case <-time.After(hb):
		case <-ctx.Done():
			return
		}
		err := w.post("/api/v1/fabric/heartbeat", HeartbeatRequest{Worker: w.workerID()}, nil)
		if err == ErrUnknownWorker {
			_ = w.register() // dropped (e.g. a delayed heartbeat); rejoin
		}
	}
}

// slotLoop leases and runs chunks on one execution slot.
func (w *workerAgent) slotLoop(ctx context.Context) {
	var cache *slotRunner
	for ctx.Err() == nil {
		var reply LeaseReply
		err := w.post("/api/v1/fabric/lease", LeaseRequest{Worker: w.workerID()}, &reply)
		if err == ErrUnknownWorker {
			if err := w.registerUntil(ctx); err != nil {
				return
			}
			continue
		}
		if err != nil || reply.Lease == nil {
			select {
			case <-time.After(w.opt.Poll):
			case <-ctx.Done():
				return
			}
			continue
		}
		w.runLease(ctx, reply.Lease, &cache)
	}
}

// slotRunner caches one job's chunk runner on a slot — every chunk of a
// job shares a campaign spec, so consecutive leases of the same job skip
// the board rebuild.
type slotRunner struct {
	job    string
	runner *seu.ChunkRunner
}

func (w *workerAgent) runLease(ctx context.Context, lease *Lease, cache **slotRunner) {
	runner, err := w.runnerFor(lease, cache)
	var blobKey string
	if err == nil {
		var cr *seu.ChunkResult
		cr, err = runner.Run(ctx, lease.Task.Chunk)
		if err == nil {
			blobKey, err = w.uploadResult(lease.Task.Chunk, cr)
		}
	}
	if ctx.Err() != nil {
		return // killed mid-chunk; the lease will expire and be stolen
	}
	req := CompleteRequest{Worker: w.workerID(), Lease: lease.ID, Blob: blobKey}
	if err != nil {
		req.Error = err.Error()
		*cache = nil // the cached board may be mid-corruption; rebuild
	}
	// Retry transient completion failures within the lease window; past it
	// the lease is stolen anyway and the result is redundant.
	deadline := time.Now().Add(w.leaseTTL())
	for {
		var reply CompleteReply
		cerr := w.post("/api/v1/fabric/complete", req, &reply)
		if cerr == nil || cerr == ErrUnknownWorker || time.Now().After(deadline) || ctx.Err() != nil {
			return
		}
		select {
		case <-time.After(w.opt.Poll):
		case <-ctx.Done():
			return
		}
	}
}

func (w *workerAgent) leaseTTL() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ttl <= 0 {
		return 30 * time.Second
	}
	return w.ttl
}

func (w *workerAgent) runnerFor(lease *Lease, cache **slotRunner) (*seu.ChunkRunner, error) {
	if c := *cache; c != nil && c.job == lease.Task.Job {
		return c.runner, nil
	}
	cfg, err := lease.Task.Spec.Resolve()
	if err != nil {
		return nil, err
	}
	p, err := core.Build(cfg, lease.Task.Spec.Design)
	if err != nil {
		return nil, err
	}
	bd, err := core.Testbed(cfg, p)
	if err != nil {
		return nil, err
	}
	runner, err := seu.NewChunkRunner(bd, cfg.CampaignOptions(true))
	if err != nil {
		return nil, err
	}
	*cache = &slotRunner{job: lease.Task.Job, runner: runner}
	return runner, nil
}

// uploadResult serializes the chunk payload and Puts it to the blob store,
// returning its content-hash key.
func (w *workerAgent) uploadResult(spec seu.ChunkSpec, cr *seu.ChunkResult) (string, error) {
	b, err := json.Marshal(ChunkPayload{Spec: spec, Result: cr})
	if err != nil {
		return "", err
	}
	return w.blobs.Put(b)
}
