package fabric

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// stores under test: every BlobStore backend must behave identically.
func testStores(t *testing.T) map[string]BlobStore {
	t.Helper()
	dir, err := NewDirStore(filepath.Join(t.TempDir(), "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemStore()
	srv := httptest.NewServer(BlobHandler(NewMemStore()))
	t.Cleanup(srv.Close)
	return map[string]BlobStore{
		"dir":  dir,
		"mem":  mem,
		"http": NewHTTPStore(srv.URL),
	}
}

func TestBlobStoreRoundTrip(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			payload := []byte(`{"hello":"fabric"}`)
			key, err := s.Put(payload)
			if err != nil {
				t.Fatal(err)
			}
			if want := HashKey(payload); key != want {
				t.Fatalf("Put key = %s, want %s", key, want)
			}
			if !ValidKey(key) {
				t.Fatalf("Put returned malformed key %q", key)
			}
			// Idempotent re-put of identical content.
			key2, err := s.Put(payload)
			if err != nil || key2 != key {
				t.Fatalf("re-Put = (%s, %v), want (%s, nil)", key2, err, key)
			}
			got, err := s.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("Get = %q, want %q", got, payload)
			}
			infos, err := s.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(infos) != 1 || infos[0].Key != key || infos[0].Size != int64(len(payload)) {
				t.Fatalf("List = %+v, want one entry for %s", infos, key)
			}
			if err := s.Delete(key); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(key); err != nil {
				t.Fatalf("deleting a missing blob should be a no-op, got %v", err)
			}
			if _, err := s.Get(key); err == nil {
				t.Fatal("Get after Delete succeeded")
			}
		})
	}
}

func TestBlobStoreRejectsMalformedKeys(t *testing.T) {
	for name, s := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			for _, key := range []string{"", "sha256-xyz", "../../etc/passwd", "sha256-" + "0"} {
				if _, err := s.Get(key); err == nil {
					t.Fatalf("Get(%q) succeeded", key)
				}
			}
		})
	}
}

func TestBlobStoreListOldestFirst(t *testing.T) {
	s := NewMemStore()
	var keys []string
	for i := 0; i < 5; i++ {
		key, err := s.Put([]byte(fmt.Sprintf("blob %d", i)))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
		time.Sleep(2 * time.Millisecond)
	}
	infos, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(keys) {
		t.Fatalf("List returned %d blobs, want %d", len(infos), len(keys))
	}
	for i, bi := range infos {
		if bi.Key != keys[i] {
			t.Fatalf("List[%d] = %s, want %s (oldest first)", i, bi.Key, keys[i])
		}
	}
}

// A corrupted blob must fail hash validation on Get — for every backend the
// corruption can reach.
func TestBlobStoreDetectsCorruption(t *testing.T) {
	t.Run("mem", func(t *testing.T) {
		s := NewMemStore()
		key, err := s.Put([]byte("precious checkpoint"))
		if err != nil {
			t.Fatal(err)
		}
		if !s.CorruptForTest(key) {
			t.Fatal("CorruptForTest found no blob")
		}
		if _, err := s.Get(key); err == nil {
			t.Fatal("Get returned corrupted bytes without error")
		}
	})
	t.Run("dir", func(t *testing.T) {
		root := filepath.Join(t.TempDir(), "blobs")
		s, err := NewDirStore(root)
		if err != nil {
			t.Fatal(err)
		}
		key, err := s.Put([]byte("precious checkpoint"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(root, key), []byte("bitrot"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(key); err == nil {
			t.Fatal("Get returned corrupted bytes without error")
		}
	})
	t.Run("http", func(t *testing.T) {
		// Server-side corruption: the HTTP client must re-validate what the
		// wire delivered, not trust the server.
		backend := NewMemStore()
		srv := httptest.NewServer(BlobHandler(backend))
		defer srv.Close()
		s := NewHTTPStore(srv.URL)
		key, err := s.Put([]byte("precious checkpoint"))
		if err != nil {
			t.Fatal(err)
		}
		if !backend.CorruptForTest(key) {
			t.Fatal("CorruptForTest found no blob")
		}
		if _, err := s.Get(key); err == nil {
			t.Fatal("Get returned corrupted bytes without error")
		}
	})
}

// A re-Put of valid content must repair a blob corrupted at rest: without
// verify-then-overwrite, a recomputed identical result hashes to the
// already-present key, Put no-ops, Get keeps failing validation, and the
// chunk livelocks forever.
func TestRePutRepairsCorruptBlob(t *testing.T) {
	payload := []byte("precious checkpoint")
	t.Run("mem", func(t *testing.T) {
		s := NewMemStore()
		key, err := s.Put(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !s.CorruptForTest(key) {
			t.Fatal("CorruptForTest found no blob")
		}
		if key2, err := s.Put(payload); err != nil || key2 != key {
			t.Fatalf("repair Put = (%s, %v), want (%s, nil)", key2, err, key)
		}
		got, err := s.Get(key)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("Get after repair = (%q, %v), want the original bytes", got, err)
		}
	})
	t.Run("dir", func(t *testing.T) {
		root := filepath.Join(t.TempDir(), "blobs")
		s, err := NewDirStore(root)
		if err != nil {
			t.Fatal(err)
		}
		key, err := s.Put(payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(root, key), []byte("bitrot"), 0o644); err != nil {
			t.Fatal(err)
		}
		if key2, err := s.Put(payload); err != nil || key2 != key {
			t.Fatalf("repair Put = (%s, %v), want (%s, nil)", key2, err, key)
		}
		got, err := s.Get(key)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("Get after repair = (%q, %v), want the original bytes", got, err)
		}
	})
}

// A duplicate Put refreshes the blob's timestamp, so RetentionPolicy.MinAge
// protects the Put-to-commit window of a re-Put old blob too — retention
// must not delete it between a new job's Put and its manifest commit.
func TestRePutRefreshesModTime(t *testing.T) {
	payload := []byte("long-lived checkpoint")
	modTime := func(t *testing.T, s BlobStore, key string) time.Time {
		t.Helper()
		infos, err := s.List()
		if err != nil || len(infos) != 1 || infos[0].Key != key {
			t.Fatalf("List = (%+v, %v), want one entry for %s", infos, err, key)
		}
		return infos[0].ModTime
	}
	t.Run("mem", func(t *testing.T) {
		s := NewMemStore()
		key, err := s.Put(payload)
		if err != nil {
			t.Fatal(err)
		}
		before := modTime(t, s, key)
		time.Sleep(5 * time.Millisecond)
		if _, err := s.Put(payload); err != nil {
			t.Fatal(err)
		}
		if after := modTime(t, s, key); !after.After(before) {
			t.Fatalf("re-Put left ModTime at %v", after)
		}
	})
	t.Run("dir", func(t *testing.T) {
		root := filepath.Join(t.TempDir(), "blobs")
		s, err := NewDirStore(root)
		if err != nil {
			t.Fatal(err)
		}
		key, err := s.Put(payload)
		if err != nil {
			t.Fatal(err)
		}
		// Back-date the file past any MinAge window, then re-Put.
		old := time.Now().Add(-24 * time.Hour)
		if err := os.Chtimes(filepath.Join(root, key), old, old); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Put(payload); err != nil {
			t.Fatal(err)
		}
		if after := modTime(t, s, key); time.Since(after) > time.Minute {
			t.Fatalf("re-Put left mtime stale at %v", after)
		}
	})
}

func TestStoreStatsCounters(t *testing.T) {
	puts0, gets0, _, bad0, _ := StoreStats()
	s := NewMemStore()
	key, err := s.Put([]byte("counted"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key); err != nil {
		t.Fatal(err)
	}
	s.CorruptForTest(key)
	if _, err := s.Get(key); err == nil {
		t.Fatal("corrupt Get succeeded")
	}
	puts, gets, _, bad, _ := StoreStats()
	if puts-puts0 < 1 || gets-gets0 < 2 || bad-bad0 < 1 {
		t.Fatalf("counters did not advance: puts +%d gets +%d validation failures +%d",
			puts-puts0, gets-gets0, bad-bad0)
	}
}
