package fabric

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/seu"
)

// The coordinator tests drive the lease protocol with fabricated chunk
// results — no boards, no simulation — so lease expiry, stealing,
// idempotent commit, and validation rejects are each exercised
// deterministically.

func testCoord(t *testing.T, cfg CoordConfig) (*Coordinator, BlobStore) {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, cfg.Store
}

func testChunks(n int) []seu.ChunkSpec {
	out := make([]seu.ChunkSpec, n)
	for i := range out {
		out[i] = seu.ChunkSpec{Index: i, Lo: int64(i) * 100, Hi: int64(i+1) * 100}
	}
	return out
}

// fakeResult fabricates a deterministic result for a chunk.
func fakeResult(cs seu.ChunkSpec) *seu.ChunkResult {
	return &seu.ChunkResult{
		Index:            cs.Index,
		Injections:       cs.Hi - cs.Lo,
		Failures:         int64(cs.Index % 3),
		InjectionsByKind: seu.KindCounts{},
		FailuresByKind:   seu.KindCounts{},
	}
}

// putResult uploads a chunk payload the way a worker would.
func putResult(t *testing.T, s BlobStore, cs seu.ChunkSpec, cr *seu.ChunkResult) string {
	t.Helper()
	b, err := json.Marshal(ChunkPayload{Spec: cs, Result: cr})
	if err != nil {
		t.Fatal(err)
	}
	key, err := s.Put(b)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// startJob launches RunJob in the background with a commit recorder.
type jobRun struct {
	mu      sync.Mutex
	commits map[int]string // chunk index → blob key
	done    chan error
}

func startJob(c *Coordinator, id string, chunks []seu.ChunkSpec) *jobRun {
	jr := &jobRun{commits: make(map[int]string), done: make(chan error, 1)}
	go func() {
		jr.done <- c.RunJob(context.Background(), id, core.CampaignSpec{Design: "LFSR 18", Geom: "tiny", Seed: 1}, chunks,
			func(cs seu.ChunkSpec, cr *seu.ChunkResult, key string) error {
				jr.mu.Lock()
				jr.commits[cs.Index] = key
				jr.mu.Unlock()
				return nil
			})
	}()
	return jr
}

// waitQueue blocks until RunJob's background enqueue reaches depth n.
func waitQueue(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for c.Stats().QueueDepth < n {
		select {
		case <-deadline:
			t.Fatalf("queue never reached depth %d", n)
		case <-time.After(time.Millisecond):
		}
	}
}

func (jr *jobRun) wait(t *testing.T) {
	t.Helper()
	select {
	case err := <-jr.done:
		if err != nil {
			t.Fatalf("RunJob: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunJob did not finish")
	}
}

func TestLeaseRunCommitLifecycle(t *testing.T) {
	c, store := testCoord(t, CoordConfig{LeaseTTL: time.Minute})
	chunks := testChunks(4)
	jr := startJob(c, "j1", chunks)
	waitQueue(t, c, len(chunks))

	reg := c.Register("node-a", 4, []string{"vector"})
	if reg.Worker == "" || reg.LeaseTTLMillis != time.Minute.Milliseconds() {
		t.Fatalf("bad register reply %+v", reg)
	}
	seen := make(map[int]bool)
	for i := 0; i < len(chunks); i++ {
		lease, err := c.Lease(reg.Worker)
		if err != nil || lease == nil {
			t.Fatalf("lease %d: (%v, %v)", i, lease, err)
		}
		if lease.Task.Job != "j1" || seen[lease.Task.Chunk.Index] {
			t.Fatalf("bad or repeated task %+v", lease.Task)
		}
		seen[lease.Task.Chunk.Index] = true
		key := putResult(t, store, lease.Task.Chunk, fakeResult(lease.Task.Chunk))
		reply, err := c.Complete(reg.Worker, lease.ID, key, "")
		if err != nil || !reply.Accepted || reply.Duplicate {
			t.Fatalf("complete: (%+v, %v)", reply, err)
		}
	}
	jr.wait(t)
	if len(jr.commits) != len(chunks) {
		t.Fatalf("committed %d chunks, want %d", len(jr.commits), len(chunks))
	}
	if lease, err := c.Lease(reg.Worker); err != nil || lease != nil {
		t.Fatalf("queue should be empty, got (%v, %v)", lease, err)
	}
	st := c.Stats()
	if st.ChunksCommitted != uint64(len(chunks)) || st.LeasesIssued != uint64(len(chunks)) || st.LeasesStolen != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestUnknownWorkerMustReregister(t *testing.T) {
	c, _ := testCoord(t, CoordConfig{})
	if err := c.Heartbeat("w999999"); err != ErrUnknownWorker {
		t.Fatalf("heartbeat for stranger = %v, want ErrUnknownWorker", err)
	}
	if _, err := c.Lease("w999999"); err != ErrUnknownWorker {
		t.Fatalf("lease for stranger = %v, want ErrUnknownWorker", err)
	}
}

// A worker that leases a chunk and goes silent loses it: the sweeper
// expires the lease, the chunk re-queues, and the next lease counts as
// stolen. The straggler's eventual completion is answered Stale and its
// result discarded — commit ran exactly once, with the thief's key.
func TestLeaseExpiryStealsChunk(t *testing.T) {
	c, store := testCoord(t, CoordConfig{
		LeaseTTL:   30 * time.Millisecond,
		WorkerTTL:  10 * time.Minute, // isolate lease expiry from worker expiry
		SweepEvery: 5 * time.Millisecond,
	})
	chunks := testChunks(1)
	jr := startJob(c, "j1", chunks)
	waitQueue(t, c, len(chunks))

	slow := c.Register("slow", 1, nil)
	thief := c.Register("thief", 1, nil)
	lease, err := c.Lease(slow.Worker)
	if err != nil || lease == nil {
		t.Fatalf("lease: (%v, %v)", lease, err)
	}

	// The slow worker stalls past its deadline; the thief polls until the
	// chunk comes back around.
	var stolen *Lease
	deadline := time.After(5 * time.Second)
	for stolen == nil {
		l, err := c.Lease(thief.Worker)
		if err != nil {
			t.Fatal(err)
		}
		if l != nil {
			stolen = l
			break
		}
		select {
		case <-deadline:
			t.Fatal("expired chunk never re-issued")
		case <-time.After(2 * time.Millisecond):
		}
	}
	if stolen.Task.Chunk != lease.Task.Chunk {
		t.Fatalf("thief got %+v, want %+v", stolen.Task.Chunk, lease.Task.Chunk)
	}

	key := putResult(t, store, stolen.Task.Chunk, fakeResult(stolen.Task.Chunk))
	reply, err := c.Complete(thief.Worker, stolen.ID, key, "")
	if err != nil || !reply.Accepted {
		t.Fatalf("thief complete: (%+v, %v)", reply, err)
	}
	jr.wait(t)

	// The straggler finally reports the same deterministic bytes.
	lateReply, err := c.Complete(slow.Worker, lease.ID, key, "")
	if err != nil || !lateReply.Stale {
		t.Fatalf("straggler complete = (%+v, %v), want stale", lateReply, err)
	}
	if len(jr.commits) != 1 || jr.commits[0] != key {
		t.Fatalf("commits = %+v, want exactly {0: %s}", jr.commits, key)
	}
	st := c.Stats()
	if st.LeasesExpired < 1 || st.LeasesStolen < 1 {
		t.Fatalf("stats %+v, want ≥1 expired and ≥1 stolen", st)
	}
}

// A worker whose heartbeats stop is dropped wholesale: its leases expire,
// its chunks re-queue, and its next call is told to re-register.
func TestSilentWorkerDropped(t *testing.T) {
	c, store := testCoord(t, CoordConfig{
		LeaseTTL:   10 * time.Minute, // isolate worker expiry from lease expiry
		WorkerTTL:  30 * time.Millisecond,
		SweepEvery: 5 * time.Millisecond,
	})
	chunks := testChunks(1)
	jr := startJob(c, "j1", chunks)
	waitQueue(t, c, len(chunks))

	dead := c.Register("dead", 1, nil)
	if _, err := c.Lease(dead.Worker); err != nil {
		t.Fatal(err)
	}

	// The live worker heartbeats while waiting for the dead one's chunk.
	live := c.Register("live", 1, nil)
	var stolen *Lease
	deadline := time.After(5 * time.Second)
	for stolen == nil {
		if err := c.Heartbeat(live.Worker); err != nil {
			t.Fatal(err)
		}
		l, err := c.Lease(live.Worker)
		if err != nil {
			t.Fatal(err)
		}
		if l != nil {
			stolen = l
			break
		}
		select {
		case <-deadline:
			t.Fatal("dead worker's chunk never re-issued")
		case <-time.After(2 * time.Millisecond):
		}
	}
	key := putResult(t, store, stolen.Task.Chunk, fakeResult(stolen.Task.Chunk))
	if reply, err := c.Complete(live.Worker, stolen.ID, key, ""); err != nil || !reply.Accepted {
		t.Fatalf("complete: (%+v, %v)", reply, err)
	}
	jr.wait(t)
	if err := c.Heartbeat(dead.Worker); err != ErrUnknownWorker {
		t.Fatalf("dead worker heartbeat = %v, want ErrUnknownWorker", err)
	}
}

// The coordinator never trusts a worker's claim: a blob that fails hash
// validation, or answers a different chunk than leased, is rejected and the
// chunk re-issued. MaxAttempts is raised above the reject count here —
// rejections spend the failure budget, and this test wants the chunk to
// survive all of them and still complete.
func TestCompleteRejectsInvalidResults(t *testing.T) {
	mem := NewMemStore()
	c, _ := testCoord(t, CoordConfig{Store: mem, LeaseTTL: time.Minute, MaxAttempts: 10})
	chunks := testChunks(1)
	jr := startJob(c, "j1", chunks)
	waitQueue(t, c, len(chunks))
	reg := c.Register("node", 1, nil)

	cases := []struct {
		name string
		key  func(lease *Lease) string
	}{
		{"malformed key", func(*Lease) string { return "not-a-key" }},
		{"missing blob", func(*Lease) string { return HashKey([]byte("never stored")) }},
		{"wrong chunk", func(lease *Lease) string {
			wrong := seu.ChunkSpec{Index: 99, Lo: 0, Hi: 1}
			return putResult(t, mem, wrong, fakeResult(wrong))
		}},
		{"corrupt blob", func(lease *Lease) string {
			key := putResult(t, mem, lease.Task.Chunk, fakeResult(lease.Task.Chunk))
			if !mem.CorruptForTest(key) {
				t.Fatal("no blob to corrupt")
			}
			return key
		}},
	}
	for _, tc := range cases {
		lease, err := c.Lease(reg.Worker)
		if err != nil || lease == nil {
			t.Fatalf("%s: lease = (%v, %v)", tc.name, lease, err)
		}
		reply, err := c.Complete(reg.Worker, lease.ID, tc.key(lease), "")
		if err != nil || !reply.Rejected {
			t.Fatalf("%s: complete = (%+v, %v), want rejected", tc.name, reply, err)
		}
	}
	if got := c.Stats().CommitRejects; got != uint64(len(cases)) {
		t.Fatalf("CommitRejects = %d, want %d", got, len(cases))
	}

	// After every rejection the chunk is still completable. Note the honest
	// re-Put repairs the entry the corrupt-blob case poisoned — same bytes,
	// same key, verify-then-overwrite — with no manual store surgery.
	lease, err := c.Lease(reg.Worker)
	if err != nil || lease == nil {
		t.Fatalf("final lease = (%v, %v)", lease, err)
	}
	key := putResult(t, mem, lease.Task.Chunk, fakeResult(lease.Task.Chunk))
	if reply, err := c.Complete(reg.Worker, lease.ID, key, ""); err != nil || !reply.Accepted {
		t.Fatalf("honest complete: (%+v, %v)", reply, err)
	}
	jr.wait(t)
}

// A chunk whose results keep failing validation — a worker build that
// consistently produces mismatched payloads, say — fails the job once the
// rejections exhaust MaxAttempts, instead of re-issuing forever.
func TestRepeatedValidationRejectsFailJob(t *testing.T) {
	c, store := testCoord(t, CoordConfig{LeaseTTL: time.Minute, MaxAttempts: 2})
	jr := startJob(c, "j1", testChunks(1))
	waitQueue(t, c, 1)
	reg := c.Register("node", 1, nil)
	wrong := seu.ChunkSpec{Index: 99, Lo: 0, Hi: 1}
	for i := 0; i < 2; i++ {
		lease, err := c.Lease(reg.Worker)
		if err != nil || lease == nil {
			t.Fatalf("lease %d: (%v, %v)", i, lease, err)
		}
		key := putResult(t, store, wrong, fakeResult(wrong))
		if reply, err := c.Complete(reg.Worker, lease.ID, key, ""); err != nil || !reply.Rejected {
			t.Fatalf("reject %d: (%+v, %v)", i, reply, err)
		}
	}
	select {
	case err := <-jr.done:
		if err == nil || !strings.Contains(err.Error(), "rejected") {
			t.Fatalf("RunJob error = %v, want a validation-reject failure", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("job did not fail after MaxAttempts validation rejects")
	}
}

// A chunk that keeps failing on workers fails the job after MaxAttempts —
// a deterministic crash must not re-issue forever.
func TestRepeatedWorkerErrorsFailJob(t *testing.T) {
	c, _ := testCoord(t, CoordConfig{LeaseTTL: time.Minute, MaxAttempts: 2})
	jr := startJob(c, "j1", testChunks(1))
	waitQueue(t, c, 1)
	reg := c.Register("node", 1, nil)
	for i := 0; i < 2; i++ {
		lease, err := c.Lease(reg.Worker)
		if err != nil || lease == nil {
			t.Fatalf("lease %d: (%v, %v)", i, lease, err)
		}
		if reply, err := c.Complete(reg.Worker, lease.ID, "", "board exploded"); err != nil || !reply.Accepted {
			t.Fatalf("error report %d: (%+v, %v)", i, reply, err)
		}
	}
	select {
	case err := <-jr.done:
		if err == nil || !strings.Contains(err.Error(), "board exploded") {
			t.Fatalf("RunJob error = %v, want the worker failure", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("job did not fail after MaxAttempts")
	}
}

// Duplicate completions commit at most once. Identical bytes (same blob
// key) are absorbed as no-ops; divergent bytes are a determinism violation
// and rejected. The duplicate window is raced here by constructing the
// coordinator state directly — two leases can't coexist via the public
// path, but a commit can land between a validate and its re-check.
func TestDuplicateCommitIdempotent(t *testing.T) {
	c, store := testCoord(t, CoordConfig{LeaseTTL: time.Minute})
	chunks := testChunks(1)
	jr := startJob(c, "j1", chunks)
	waitQueue(t, c, len(chunks))
	reg := c.Register("node", 1, nil)

	lease, err := c.Lease(reg.Worker)
	if err != nil || lease == nil {
		t.Fatalf("lease: (%v, %v)", lease, err)
	}
	key := putResult(t, store, lease.Task.Chunk, fakeResult(lease.Task.Chunk))
	if reply, err := c.Complete(reg.Worker, lease.ID, key, ""); err != nil || !reply.Accepted {
		t.Fatalf("first complete: (%+v, %v)", reply, err)
	}
	jr.wait(t)
	if len(jr.commits) != 1 {
		t.Fatalf("commits = %d, want 1", len(jr.commits))
	}

	// Forge the straggler states directly against a live job copy.
	j := &jobState{
		id: "j2", chunks: map[int]seu.ChunkSpec{0: chunks[0]},
		committed: map[int]string{0: key}, failures: map[int]int{},
		reissued: map[int]bool{}, remaining: 0, finished: make(chan struct{}),
		commit: func(seu.ChunkSpec, *seu.ChunkResult, string) error {
			t.Error("duplicate triggered a second commit")
			return nil
		},
	}
	c.mu.Lock()
	c.jobs["j2"] = j
	c.leases["ldup"] = &leaseState{id: "ldup", worker: reg.Worker, key: taskKey{job: "j2", index: 0}, deadline: time.Now().Add(time.Minute)}
	c.leases["ldiv"] = &leaseState{id: "ldiv", worker: reg.Worker, key: taskKey{job: "j2", index: 0}, deadline: time.Now().Add(time.Minute)}
	c.workers[reg.Worker].leases["ldup"] = true
	c.workers[reg.Worker].leases["ldiv"] = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.jobs, "j2")
		c.mu.Unlock()
	}()

	// Identical duplicate: absorbed.
	reply, err := c.Complete(reg.Worker, "ldup", key, "")
	if err != nil || !reply.Accepted || !reply.Duplicate {
		t.Fatalf("identical duplicate = (%+v, %v), want accepted duplicate", reply, err)
	}
	// Divergent duplicate: different bytes for the same chunk.
	divergent, err := store.Put([]byte(`{"spec":{"index":0},"result":{"index":0,"injections":12345}}`))
	if err != nil {
		t.Fatal(err)
	}
	reply, err = c.Complete(reg.Worker, "ldiv", divergent, "")
	if err != nil || !reply.Rejected {
		t.Fatalf("divergent duplicate = (%+v, %v), want rejected", reply, err)
	}
	if got := c.Stats().DivergentDuplicates; got != 1 {
		t.Fatalf("DivergentDuplicates = %d, want 1", got)
	}
}

// Cancelling RunJob withdraws the job: queued chunks evaporate and a
// re-run of the remaining chunks picks up where the commits stopped.
func TestRunJobCancellationWithdraws(t *testing.T) {
	c, store := testCoord(t, CoordConfig{LeaseTTL: time.Minute})
	chunks := testChunks(3)
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	committed := make(map[int]string)
	done := make(chan error, 1)
	go func() {
		done <- c.RunJob(ctx, "j1", core.CampaignSpec{Design: "LFSR 18", Geom: "tiny", Seed: 1}, chunks,
			func(cs seu.ChunkSpec, cr *seu.ChunkResult, key string) error {
				mu.Lock()
				committed[cs.Index] = key
				mu.Unlock()
				return nil
			})
	}()
	waitQueue(t, c, len(chunks))
	reg := c.Register("node", 1, nil)
	lease, err := c.Lease(reg.Worker)
	if err != nil || lease == nil {
		t.Fatalf("lease: (%v, %v)", lease, err)
	}
	key := putResult(t, store, lease.Task.Chunk, fakeResult(lease.Task.Chunk))
	if reply, err := c.Complete(reg.Worker, lease.ID, key, ""); err != nil || !reply.Accepted {
		t.Fatalf("complete: (%+v, %v)", reply, err)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("RunJob = %v, want context.Canceled", err)
	}
	if len(committed) != 1 {
		t.Fatalf("committed %d chunks before cancel, want 1", len(committed))
	}

	// Remaining chunks re-run under a fresh RunJob (the scheduler resumes
	// with only the pending chunks).
	var rest []seu.ChunkSpec
	for _, cs := range chunks {
		if _, ok := committed[cs.Index]; !ok {
			rest = append(rest, cs)
		}
	}
	// The withdrawn job left stale queue entries behind; leases for them are
	// skipped lazily, so poll until the resumed job's chunks come through.
	jr := startJob(c, "j1", rest)
	for range rest {
		var lease *Lease
		deadline := time.After(5 * time.Second)
		for lease == nil {
			l, err := c.Lease(reg.Worker)
			if err != nil {
				t.Fatal(err)
			}
			if l != nil {
				lease = l
				break
			}
			select {
			case <-deadline:
				t.Fatal("resumed chunk never issued")
			case <-time.After(time.Millisecond):
			}
		}
		key := putResult(t, store, lease.Task.Chunk, fakeResult(lease.Task.Chunk))
		if reply, err := c.Complete(reg.Worker, lease.ID, key, ""); err != nil || !reply.Accepted {
			t.Fatalf("resume complete: (%+v, %v)", reply, err)
		}
	}
	jr.wait(t)
	if len(jr.commits) != len(rest) {
		t.Fatalf("resume committed %d, want %d", len(jr.commits), len(rest))
	}
}
