package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// The S3-style HTTP blob plane. BlobHandler exposes any BlobStore over four
// routes (mounted by campaignd's coordinator mode and by the standalone
// cmd/blobd), and HTTPStore is the matching BlobStore client, so a worker
// node checkpoints through exactly the same interface a single-node daemon
// uses against its local directory:
//
//	POST   /api/v1/blobs        — body is the blob; returns {"key": ...}
//	GET    /api/v1/blobs        — list blobs, oldest first
//	GET    /api/v1/blobs/{key}  — the blob's bytes
//	DELETE /api/v1/blobs/{key}  — remove a blob
//
// MaxBlobBytes bounds one blob (a serialized chunk result is a few KB; the
// cap just keeps a misbehaving client from ballooning the store).
const MaxBlobBytes = 64 << 20

// BlobHandler serves s over the HTTP blob API.
func BlobHandler(s BlobStore) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/blobs", func(w http.ResponseWriter, r *http.Request) {
		b, err := io.ReadAll(io.LimitReader(r.Body, MaxBlobBytes+1))
		if err != nil {
			blobError(w, http.StatusBadRequest, err)
			return
		}
		if len(b) > MaxBlobBytes {
			blobError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("blob exceeds %d bytes", MaxBlobBytes))
			return
		}
		key, err := s.Put(b)
		if err != nil {
			blobError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"key": key})
	})
	mux.HandleFunc("GET /api/v1/blobs", func(w http.ResponseWriter, r *http.Request) {
		infos, err := s.List()
		if err != nil {
			blobError(w, http.StatusInternalServerError, err)
			return
		}
		if infos == nil {
			infos = []BlobInfo{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(infos)
	})
	mux.HandleFunc("GET /api/v1/blobs/{key}", func(w http.ResponseWriter, r *http.Request) {
		b, err := s.Get(r.PathValue("key"))
		if err != nil {
			blobError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(b)
	})
	mux.HandleFunc("DELETE /api/v1/blobs/{key}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Delete(r.PathValue("key")); err != nil {
			blobError(w, http.StatusInternalServerError, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func blobError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// HTTPStore is a BlobStore backed by a remote blob server. Get re-validates
// bytes against the key client-side — the server is not trusted to have
// done so.
type HTTPStore struct {
	base   string
	client *http.Client
}

// NewHTTPStore returns a store speaking to the blob API at base (e.g. the
// coordinator's own address, or a standalone blobd).
func NewHTTPStore(base string) *HTTPStore {
	return &HTTPStore{
		base:   strings.TrimRight(base, "/"),
		client: &http.Client{Timeout: 30 * time.Second},
	}
}

func (s *HTTPStore) url(suffix string) string { return s.base + "/api/v1/blobs" + suffix }

func (s *HTTPStore) Put(b []byte) (string, error) {
	resp, err := s.client.Post(s.url(""), "application/octet-stream", bytes.NewReader(b))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode/100 != 2 {
		return "", fmt.Errorf("fabric: blob put: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var reply struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(body, &reply); err != nil {
		return "", err
	}
	// Verify the server derived the key honestly before anyone references it.
	if want := HashKey(b); reply.Key != want {
		storeValidationFailures.Add(1)
		return "", fmt.Errorf("fabric: blob server returned key %s for content %s", reply.Key, want)
	}
	return reply.Key, nil
}

func (s *HTTPStore) Get(key string) ([]byte, error) {
	if !ValidKey(key) {
		return nil, fmt.Errorf("fabric: malformed blob key %q", key)
	}
	resp, err := s.client.Get(s.url("/" + key))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, MaxBlobBytes+1))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fabric: blob get %s: %s: %s", key, resp.Status, bytes.TrimSpace(body))
	}
	if err := verifyBlob(key, body); err != nil {
		return nil, err
	}
	return body, nil
}

func (s *HTTPStore) List() ([]BlobInfo, error) {
	resp, err := s.client.Get(s.url(""))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fabric: blob list: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	var infos []BlobInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

func (s *HTTPStore) Delete(key string) error {
	if !ValidKey(key) {
		return fmt.Errorf("fabric: malformed blob key %q", key)
	}
	req, err := http.NewRequest(http.MethodDelete, s.url("/"+key), nil)
	if err != nil {
		return err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("fabric: blob delete %s: %s", key, resp.Status)
	}
	return nil
}
