// Package fabric is the distributed campaign layer: a coordinator that
// leases sweep chunks to remote worker nodes with deadline-based
// work-stealing, the worker agent those nodes run, and the pluggable
// content-addressed blob store both sides checkpoint through. The design
// follows two disciplines from the related work: checkpoints are validated,
// content-hashed, and retention-managed (the rad_ml CheckpointManager
// pattern), and nothing a worker claims is trusted — every chunk result is
// re-fetched from the store and hash-verified before it commits, the lease
// protocol's analogue of readback-verified scrubbing.
package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// BlobStore is a content-addressed checkpoint store. Keys are derived from
// blob bytes (HashKey), so a Put of identical content is idempotent and a
// Get can always validate what it read against the key it asked for —
// corruption at rest or in transit is detected, never silently returned.
type BlobStore interface {
	// Put stores b and returns its content-hash key. Re-putting existing
	// content is self-healing: the stored copy is verified and overwritten
	// if corrupt, and its timestamp refreshed so RetentionPolicy.MinAge
	// covers every Put-to-commit window.
	Put(b []byte) (string, error)
	// Get returns the blob's bytes, hash-validated against key.
	Get(key string) ([]byte, error)
	// List enumerates stored blobs, oldest first.
	List() ([]BlobInfo, error)
	// Delete removes a blob. Deleting a missing blob is not an error.
	Delete(key string) error
}

// BlobInfo describes one stored blob.
type BlobInfo struct {
	Key     string    `json:"key"`
	Size    int64     `json:"size"`
	ModTime time.Time `json:"mod_time"`
}

// HashKey returns the content-addressed key of b: "sha256-" plus the hex
// digest. The prefix keys the algorithm so a future store can hold mixed
// generations.
func HashKey(b []byte) string {
	sum := sha256.Sum256(b)
	return "sha256-" + hex.EncodeToString(sum[:])
}

var keyRE = regexp.MustCompile(`^sha256-[0-9a-f]{64}$`)

// ValidKey reports whether key has the content-hash form HashKey produces.
// Stores reject anything else up front — a malformed key is never a lookup
// miss, and (for the directory backend) never a path.
func ValidKey(key string) bool { return keyRE.MatchString(key) }

// verifyBlob checks b against its claimed key, counting a validation
// failure on mismatch.
func verifyBlob(key string, b []byte) error {
	if got := HashKey(b); got != key {
		storeValidationFailures.Add(1)
		return fmt.Errorf("fabric: blob %s failed hash validation (content is %s)", key, got)
	}
	return nil
}

// Process-wide blob-store activity counters, exported on the campaignd
// /metrics plane like the seu kernel counters. Diagnostics only.
var (
	storePuts               atomic.Uint64
	storeGets               atomic.Uint64
	storeDeletes            atomic.Uint64
	storeValidationFailures atomic.Uint64
	retentionDeletes        atomic.Uint64
)

// StoreStats snapshots the process-wide blob-store counters: puts, gets,
// deletes, hash-validation failures, and blobs deleted by retention sweeps.
func StoreStats() (puts, gets, deletes, validationFailures, retained uint64) {
	return storePuts.Load(), storeGets.Load(), storeDeletes.Load(),
		storeValidationFailures.Load(), retentionDeletes.Load()
}

// DirStore is the local-directory backend: one file per blob, named by its
// key, written atomically. This is the default checkpoint backend of a
// single-node campaignd.
type DirStore struct {
	dir string
}

// NewDirStore opens (or creates) a directory-backed store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{dir: dir}, nil
}

func (s *DirStore) path(key string) string { return filepath.Join(s.dir, key) }

// Put stores b under its content hash. On a re-Put the stored file is
// verified, not trusted: valid content just gets its mtime refreshed (so
// retention's MinAge window restarts), while a copy corrupted at rest is
// overwritten — re-Putting a recomputed result repairs the store instead
// of livelocking on a poisoned entry.
func (s *DirStore) Put(b []byte) (string, error) {
	key := HashKey(b)
	storePuts.Add(1)
	if cur, err := os.ReadFile(s.path(key)); err == nil && verifyBlob(key, cur) == nil {
		now := time.Now()
		if err := os.Chtimes(s.path(key), now, now); err != nil {
			return "", err
		}
		return key, nil
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return "", err
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(name)
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return "", err
	}
	if err := os.Rename(name, s.path(key)); err != nil {
		os.Remove(name)
		return "", err
	}
	return key, nil
}

func (s *DirStore) Get(key string) ([]byte, error) {
	if !ValidKey(key) {
		return nil, fmt.Errorf("fabric: malformed blob key %q", key)
	}
	storeGets.Add(1)
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, err
	}
	if err := verifyBlob(key, b); err != nil {
		return nil, err
	}
	return b, nil
}

func (s *DirStore) List() ([]BlobInfo, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []BlobInfo
	for _, e := range entries {
		if !ValidKey(e.Name()) {
			continue // temp files mid-write, strays
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, BlobInfo{Key: e.Name(), Size: fi.Size(), ModTime: fi.ModTime()})
	}
	sortBlobInfos(out)
	return out, nil
}

func (s *DirStore) Delete(key string) error {
	if !ValidKey(key) {
		return fmt.Errorf("fabric: malformed blob key %q", key)
	}
	storeDeletes.Add(1)
	err := os.Remove(s.path(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// MemStore is the in-memory backend: the substrate of the S3-style blob
// server (cmd/blobd without -dir) and of tests.
type MemStore struct {
	mu    sync.Mutex
	blobs map[string]memBlob
}

type memBlob struct {
	data []byte
	at   time.Time
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[string]memBlob)}
}

func (s *MemStore) Put(b []byte) (string, error) {
	key := HashKey(b)
	storePuts.Add(1)
	s.mu.Lock()
	// Verify-then-overwrite, like DirStore.Put: a re-Put repairs a corrupt
	// entry and refreshes the timestamp either way.
	if mb, ok := s.blobs[key]; ok && verifyBlob(key, mb.data) == nil {
		mb.at = time.Now()
		s.blobs[key] = mb
	} else {
		s.blobs[key] = memBlob{data: append([]byte(nil), b...), at: time.Now()}
	}
	s.mu.Unlock()
	return key, nil
}

func (s *MemStore) Get(key string) ([]byte, error) {
	if !ValidKey(key) {
		return nil, fmt.Errorf("fabric: malformed blob key %q", key)
	}
	storeGets.Add(1)
	s.mu.Lock()
	mb, ok := s.blobs[key]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fabric: blob %s not found", key)
	}
	b := append([]byte(nil), mb.data...)
	if err := verifyBlob(key, b); err != nil {
		return nil, err
	}
	return b, nil
}

func (s *MemStore) List() ([]BlobInfo, error) {
	s.mu.Lock()
	out := make([]BlobInfo, 0, len(s.blobs))
	for k, mb := range s.blobs {
		out = append(out, BlobInfo{Key: k, Size: int64(len(mb.data)), ModTime: mb.at})
	}
	s.mu.Unlock()
	sortBlobInfos(out)
	return out, nil
}

func (s *MemStore) Delete(key string) error {
	if !ValidKey(key) {
		return fmt.Errorf("fabric: malformed blob key %q", key)
	}
	storeDeletes.Add(1)
	s.mu.Lock()
	delete(s.blobs, key)
	s.mu.Unlock()
	return nil
}

// CorruptForTest overwrites a stored blob's bytes without touching its key,
// so Get must fail hash validation. Test hook only.
func (s *MemStore) CorruptForTest(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	mb, ok := s.blobs[key]
	if !ok || len(mb.data) == 0 {
		return false
	}
	mb.data[0] ^= 0xff
	s.blobs[key] = mb
	return true
}

func sortBlobInfos(infos []BlobInfo) {
	sort.Slice(infos, func(i, j int) bool {
		if !infos[i].ModTime.Equal(infos[j].ModTime) {
			return infos[i].ModTime.Before(infos[j].ModTime)
		}
		return infos[i].Key < infos[j].Key
	})
}
