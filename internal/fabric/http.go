package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Wire types of the coordinator API. Workers speak JSON over four routes:
//
//	POST /api/v1/fabric/register   — RegisterRequest → RegisterReply
//	POST /api/v1/fabric/heartbeat  — HeartbeatRequest → {"ok": true}
//	POST /api/v1/fabric/lease      — LeaseRequest → LeaseReply (lease null when idle)
//	POST /api/v1/fabric/complete   — CompleteRequest → CompleteReply
//
// An unknown worker ID answers 404; the worker re-registers and retries —
// registration is soft state the coordinator may drop at any time.

// RegisterRequest announces a worker and its capabilities.
type RegisterRequest struct {
	Name    string   `json:"name"`
	CPUs    int      `json:"cpus"`
	Kernels []string `json:"kernels,omitempty"`
}

// RegisterReply names the worker and sets the cadence contract.
type RegisterReply struct {
	Worker          string `json:"worker"`
	LeaseTTLMillis  int64  `json:"lease_ttl_ms"`
	HeartbeatMillis int64  `json:"heartbeat_ms"`
}

// HeartbeatRequest refreshes liveness.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
}

// LeaseRequest asks for work.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseReply carries the issued lease, or null when the queue is empty.
type LeaseReply struct {
	Lease *Lease `json:"lease"`
}

// CompleteRequest reports a lease's outcome: Blob on success, Error when
// the worker could not run the chunk.
type CompleteRequest struct {
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
	Blob   string `json:"blob,omitempty"`
	Error  string `json:"error,omitempty"`
}

// CompleteReply is the commit verdict. Exactly one of the booleans is set:
// Accepted (committed, or an absorbed duplicate/failure report), Stale (the
// lease is gone — drop the result), or Rejected (validation failed; the
// chunk re-queued).
type CompleteReply struct {
	Accepted  bool   `json:"accepted,omitempty"`
	Duplicate bool   `json:"duplicate,omitempty"`
	Stale     bool   `json:"stale,omitempty"`
	Rejected  bool   `json:"rejected,omitempty"`
	Reason    string `json:"reason,omitempty"`
}

// Handler serves the coordinator API.
func Handler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/fabric/register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			fabricError(w, http.StatusBadRequest, err)
			return
		}
		writeFabricJSON(w, http.StatusOK, c.Register(req.Name, req.CPUs, req.Kernels))
	})
	mux.HandleFunc("POST /api/v1/fabric/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			fabricError(w, http.StatusBadRequest, err)
			return
		}
		if err := c.Heartbeat(req.Worker); err != nil {
			fabricError(w, http.StatusNotFound, err)
			return
		}
		writeFabricJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST /api/v1/fabric/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			fabricError(w, http.StatusBadRequest, err)
			return
		}
		lease, err := c.Lease(req.Worker)
		if err != nil {
			fabricError(w, http.StatusNotFound, err)
			return
		}
		writeFabricJSON(w, http.StatusOK, LeaseReply{Lease: lease})
	})
	mux.HandleFunc("POST /api/v1/fabric/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			fabricError(w, http.StatusBadRequest, err)
			return
		}
		reply, err := c.Complete(req.Worker, req.Lease, req.Blob, req.Error)
		if err != nil {
			code := http.StatusInternalServerError
			if errors.Is(err, ErrUnknownWorker) {
				code = http.StatusNotFound
			}
			fabricError(w, code, err)
			return
		}
		writeFabricJSON(w, http.StatusOK, reply)
	})
	mux.HandleFunc("GET /api/v1/fabric/stats", func(w http.ResponseWriter, r *http.Request) {
		writeFabricJSON(w, http.StatusOK, c.Stats())
	})
	return mux
}

func writeFabricJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func fabricError(w http.ResponseWriter, code int, err error) {
	writeFabricJSON(w, code, map[string]string{"error": fmt.Sprint(err)})
}
