package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/seu"
)

// The lease protocol. The coordinator owns a queue of (job, chunk) tasks.
// A worker leases a task, runs it, Puts the serialized result into the blob
// store, and reports the blob key. Leases carry deadlines: a worker that
// stalls (or dies, or whose heartbeats stop) loses its lease, the chunk
// re-queues, and another worker steals it. Nothing a worker says is
// trusted: the coordinator fetches the claimed blob itself (the store
// hash-validates it), checks the payload against the leased chunk spec, and
// only then commits. Commits are idempotent first-valid-wins — chunk
// results are deterministic functions of (campaign spec, chunk spec), so a
// straggler finishing after its lease was stolen produces the same bytes,
// the same blob key, and a no-op duplicate commit. A duplicate whose blob
// key differs from the committed one would be a determinism violation and
// is counted and rejected rather than absorbed.

// Task is one leased unit of work: a chunk of a job's sweep, plus the full
// campaign spec the worker needs to rebuild the board it runs on.
type Task struct {
	Job   string            `json:"job"`
	Spec  core.CampaignSpec `json:"spec"`
	Chunk seu.ChunkSpec     `json:"chunk"`
}

// Lease is a task issued to one worker until a deadline.
type Lease struct {
	ID       string    `json:"id"`
	Task     Task      `json:"task"`
	Deadline time.Time `json:"deadline"`
}

// ChunkPayload is the blob-store encoding of one completed chunk: the spec
// it answers paired with its result. The same encoding is a local daemon's
// chunk checkpoint and a remote worker's result upload — which is why any
// node can resume any job from the shared store.
type ChunkPayload struct {
	Spec   seu.ChunkSpec    `json:"spec"`
	Result *seu.ChunkResult `json:"result"`
}

// CommitFunc persists one validated chunk result (already stored under
// blobKey). The coordinator guarantees at most one call per chunk.
type CommitFunc func(chunk seu.ChunkSpec, cr *seu.ChunkResult, blobKey string) error

// CoordConfig sizes a coordinator.
type CoordConfig struct {
	// Store is where workers upload results and the coordinator validates
	// them. Required.
	Store BlobStore
	// LeaseTTL is how long a worker holds a chunk before it is re-issued.
	// <= 0 means 30s.
	LeaseTTL time.Duration
	// WorkerTTL drops a worker (and expires its leases) after this long
	// without a heartbeat. <= 0 means 3×LeaseTTL.
	WorkerTTL time.Duration
	// MaxAttempts fails the job after a chunk accumulates this many
	// worker-reported errors plus validation rejections (a deterministic
	// failure — crashing worker, corrupt store entry, a build that keeps
	// producing mismatched payloads — would otherwise re-issue forever).
	// <= 0 means 3.
	MaxAttempts int
	// SweepEvery is the lease/worker expiry scan cadence. <= 0 means
	// LeaseTTL/4.
	SweepEvery time.Duration
}

func (c CoordConfig) withDefaults() CoordConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.WorkerTTL <= 0 {
		c.WorkerTTL = 3 * c.LeaseTTL
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.LeaseTTL / 4
	}
	return c
}

// CoordStats snapshots the coordinator's counters for the metrics plane.
type CoordStats struct {
	Workers             int
	LeasesActive        int
	QueueDepth          int
	LeasesIssued        uint64
	LeasesExpired       uint64
	LeasesStolen        uint64
	ChunksCommitted     uint64
	CommitRejects       uint64
	DivergentDuplicates uint64
}

type taskKey struct {
	job   string
	index int
}

type workerState struct {
	id       string
	name     string
	cpus     int
	kernels  []string
	lastSeen time.Time
	leases   map[string]bool
}

type jobState struct {
	id        string
	spec      core.CampaignSpec
	chunks    map[int]seu.ChunkSpec
	committed map[int]string // chunk index → committed blob key
	failures  map[int]int
	reissued  map[int]bool // chunk re-queued after a lease expiry → next issue is a steal
	commit    CommitFunc
	remaining int
	err       error
	closeOnce sync.Once
	finished  chan struct{}
}

func (j *jobState) finish(err error) {
	j.closeOnce.Do(func() {
		j.err = err
		close(j.finished)
	})
}

type leaseState struct {
	id       string
	worker   string
	key      taskKey
	deadline time.Time
}

// Coordinator runs the lease protocol for the jobs the scheduler hands it.
type Coordinator struct {
	cfg CoordConfig

	mu      sync.Mutex
	workers map[string]*workerState
	jobs    map[string]*jobState
	queue   []taskKey
	leases  map[string]*leaseState
	nextID  uint64

	issued     uint64
	expired    uint64
	stolen     uint64
	committed  uint64
	rejects    uint64
	divergent  uint64
	stopOnce   sync.Once
	sweeperCtx context.Context
	sweeperEnd context.CancelFunc
	wg         sync.WaitGroup
}

// NewCoordinator starts a coordinator (and its lease-expiry sweeper).
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("fabric: CoordConfig.Store is required")
	}
	c := &Coordinator{
		cfg:     cfg.withDefaults(),
		workers: make(map[string]*workerState),
		jobs:    make(map[string]*jobState),
		leases:  make(map[string]*leaseState),
	}
	c.sweeperCtx, c.sweeperEnd = context.WithCancel(context.Background())
	c.wg.Add(1)
	go c.sweeper()
	return c, nil
}

// Close stops the expiry sweeper. Jobs still waiting in RunJob keep
// waiting on their contexts; call Close only after the scheduler drained.
func (c *Coordinator) Close() {
	c.stopOnce.Do(c.sweeperEnd)
	c.wg.Wait()
}

// LeaseTTL reports the configured lease duration (workers size their
// completion retries off it).
func (c *Coordinator) LeaseTTL() time.Duration { return c.cfg.LeaseTTL }

// Register adds (or refreshes) a worker and returns its identity plus the
// cadence contract: how long leases last and how often to heartbeat.
func (c *Coordinator) Register(name string, cpus int, kernels []string) RegisterReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	id := fmt.Sprintf("w%06d", c.nextID)
	c.workers[id] = &workerState{
		id: id, name: name, cpus: cpus, kernels: kernels,
		lastSeen: time.Now(), leases: make(map[string]bool),
	}
	return RegisterReply{
		Worker:          id,
		LeaseTTLMillis:  c.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMillis: (c.cfg.WorkerTTL / 3).Milliseconds(),
	}
}

// ErrUnknownWorker tells a worker its registration lapsed; it re-registers.
var ErrUnknownWorker = fmt.Errorf("fabric: unknown worker (re-register)")

// Heartbeat refreshes a worker's liveness.
func (c *Coordinator) Heartbeat(worker string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, ok := c.workers[worker]
	if !ok {
		return ErrUnknownWorker
	}
	ws.lastSeen = time.Now()
	return nil
}

// Lease issues the next pending chunk to worker, or nil when the queue is
// empty.
func (c *Coordinator) Lease(worker string) (*Lease, error) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, ok := c.workers[worker]
	if !ok {
		return nil, ErrUnknownWorker
	}
	ws.lastSeen = now
	for len(c.queue) > 0 {
		k := c.queue[0]
		c.queue = c.queue[1:]
		j, ok := c.jobs[k.job]
		if !ok {
			continue // job finished or was withdrawn; stale entry
		}
		if _, done := j.committed[k.index]; done {
			continue
		}
		c.nextID++
		ls := &leaseState{
			id:       fmt.Sprintf("l%06d", c.nextID),
			worker:   worker,
			key:      k,
			deadline: now.Add(c.cfg.LeaseTTL),
		}
		c.leases[ls.id] = ls
		ws.leases[ls.id] = true
		c.issued++
		if j.reissued[k.index] {
			c.stolen++
			delete(j.reissued, k.index)
		}
		return &Lease{
			ID:       ls.id,
			Task:     Task{Job: k.job, Spec: j.spec, Chunk: j.chunks[k.index]},
			Deadline: ls.deadline,
		}, nil
	}
	return nil, nil
}

// Complete processes a worker's completion report for a lease: a blob key
// on success, or an error string for a chunk the worker could not run.
func (c *Coordinator) Complete(worker, leaseID, blobKey, workerErr string) (CompleteReply, error) {
	c.mu.Lock()
	if ws, ok := c.workers[worker]; ok {
		ws.lastSeen = time.Now()
	}
	ls, ok := c.leases[leaseID]
	if !ok || ls.worker != worker {
		// Expired, stolen, or never ours: the canonical result will come (or
		// already came) from the current leaseholder.
		c.mu.Unlock()
		return CompleteReply{Stale: true}, nil
	}
	c.releaseLeaseLocked(ls)
	j, ok := c.jobs[ls.key.job]
	if !ok {
		c.mu.Unlock()
		return CompleteReply{Stale: true}, nil
	}
	chunk := j.chunks[ls.key.index]
	if committedKey, done := j.committed[ls.key.index]; done {
		reply := CompleteReply{Accepted: true, Duplicate: true}
		if workerErr == "" && blobKey != committedKey {
			// A duplicate completion must be byte-identical to the committed
			// result; a different key means non-deterministic execution.
			c.divergent++
			reply = CompleteReply{Rejected: true,
				Reason: fmt.Sprintf("duplicate result %s diverges from committed %s", blobKey, committedKey)}
		}
		c.mu.Unlock()
		return reply, nil
	}
	if workerErr != "" {
		j.failures[ls.key.index]++
		if j.failures[ls.key.index] >= c.cfg.MaxAttempts {
			err := fmt.Errorf("fabric: chunk %d failed %d times, last on %s: %s",
				ls.key.index, j.failures[ls.key.index], worker, workerErr)
			c.mu.Unlock()
			j.finish(err)
			return CompleteReply{Accepted: true}, nil
		}
		c.queue = append(c.queue, ls.key)
		c.mu.Unlock()
		return CompleteReply{Accepted: true}, nil
	}
	// Chunk is now in limbo (not leased, not queued, not committed) while we
	// validate outside the lock; a validation failure re-queues it.
	c.mu.Unlock()

	cr, verr := c.validate(chunk, blobKey)
	c.mu.Lock()
	if cur, ok := c.jobs[ls.key.job]; !ok || cur != j {
		// The job finished or was withdrawn (and possibly resubmitted as a
		// fresh jobState) while we validated; this completion is stale.
		c.mu.Unlock()
		return CompleteReply{Stale: true}, nil
	}
	if verr != nil {
		// Rejections spend the same failure budget as worker errors: a
		// deterministic validation failure must fail the job, not re-issue
		// the chunk forever.
		c.rejects++
		j.failures[ls.key.index]++
		if j.failures[ls.key.index] >= c.cfg.MaxAttempts {
			err := fmt.Errorf("fabric: chunk %d failed %d times, last rejected from %s: %w",
				ls.key.index, j.failures[ls.key.index], worker, verr)
			c.mu.Unlock()
			j.finish(err)
			return CompleteReply{Rejected: true, Reason: verr.Error()}, nil
		}
		c.queue = append(c.queue, ls.key)
		c.mu.Unlock()
		return CompleteReply{Rejected: true, Reason: verr.Error()}, nil
	}
	if committedKey, done := j.committed[ls.key.index]; done {
		// Lost a validate race; first valid commit already won.
		reply := CompleteReply{Accepted: true, Duplicate: true}
		if blobKey != committedKey {
			c.divergent++
			reply = CompleteReply{Rejected: true,
				Reason: fmt.Sprintf("duplicate result %s diverges from committed %s", blobKey, committedKey)}
		}
		c.mu.Unlock()
		return reply, nil
	}
	j.committed[ls.key.index] = blobKey
	commit := j.commit
	c.committed++
	c.mu.Unlock()

	if err := commit(chunk, cr, blobKey); err != nil {
		j.finish(fmt.Errorf("fabric: committing chunk %d: %w", chunk.Index, err))
		return CompleteReply{Accepted: true}, nil
	}
	// remaining counts down only after the commit callback returns, so the
	// goroutine landing the final chunk cannot finish(nil) while another
	// chunk's commit (manifest write) is still in flight — RunJob's caller
	// must observe every committed result.
	c.mu.Lock()
	j.remaining--
	last := j.remaining == 0
	c.mu.Unlock()
	if last {
		j.finish(nil)
	}
	return CompleteReply{Accepted: true}, nil
}

// validate fetches the claimed blob (hash-checked by the store), decodes
// it, and verifies it answers exactly the leased chunk.
func (c *Coordinator) validate(chunk seu.ChunkSpec, blobKey string) (*seu.ChunkResult, error) {
	if !ValidKey(blobKey) {
		return nil, fmt.Errorf("malformed blob key %q", blobKey)
	}
	b, err := c.cfg.Store.Get(blobKey)
	if err != nil {
		return nil, fmt.Errorf("fetching result blob: %w", err)
	}
	var cp ChunkPayload
	if err := json.Unmarshal(b, &cp); err != nil {
		return nil, fmt.Errorf("decoding result blob %s: %w", blobKey, err)
	}
	if cp.Result == nil {
		return nil, fmt.Errorf("result blob %s has no result", blobKey)
	}
	if cp.Spec != chunk || cp.Result.Index != chunk.Index {
		return nil, fmt.Errorf("result blob %s answers chunk %+v, leased %+v", blobKey, cp.Spec, chunk)
	}
	return cp.Result, nil
}

// RunJob enqueues a job's pending chunks and blocks until every chunk has
// committed (via commit, at most once per chunk), the job fails, or ctx is
// cancelled. On cancellation the job is withdrawn: queued chunks are
// dropped and in-flight completions turn into stale no-ops — already
// committed chunks are persisted and a later RunJob of the remainder
// resumes them.
func (c *Coordinator) RunJob(ctx context.Context, id string, spec core.CampaignSpec, chunks []seu.ChunkSpec, commit CommitFunc) error {
	if len(chunks) == 0 {
		return nil
	}
	j := &jobState{
		id:        id,
		spec:      spec,
		chunks:    make(map[int]seu.ChunkSpec, len(chunks)),
		committed: make(map[int]string),
		failures:  make(map[int]int),
		reissued:  make(map[int]bool),
		commit:    commit,
		remaining: len(chunks),
		finished:  make(chan struct{}),
	}
	c.mu.Lock()
	if _, dup := c.jobs[id]; dup {
		c.mu.Unlock()
		return fmt.Errorf("fabric: job %s already on the fabric", id)
	}
	c.jobs[id] = j
	for _, cs := range chunks {
		j.chunks[cs.Index] = cs
		c.queue = append(c.queue, taskKey{job: id, index: cs.Index})
	}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.jobs, id) // stale queue entries and leases skip/expire lazily
		c.mu.Unlock()
	}()
	select {
	case <-j.finished:
		return j.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats snapshots the coordinator counters.
func (c *Coordinator) Stats() CoordStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CoordStats{
		Workers:             len(c.workers),
		LeasesActive:        len(c.leases),
		QueueDepth:          len(c.queue),
		LeasesIssued:        c.issued,
		LeasesExpired:       c.expired,
		LeasesStolen:        c.stolen,
		ChunksCommitted:     c.committed,
		CommitRejects:       c.rejects,
		DivergentDuplicates: c.divergent,
	}
}

// releaseLeaseLocked detaches a lease from its worker and the live set.
func (c *Coordinator) releaseLeaseLocked(ls *leaseState) {
	delete(c.leases, ls.id)
	if ws, ok := c.workers[ls.worker]; ok {
		delete(ws.leases, ls.id)
	}
}

// expireLeaseLocked re-queues an expired lease's chunk for stealing.
func (c *Coordinator) expireLeaseLocked(ls *leaseState) {
	c.releaseLeaseLocked(ls)
	c.expired++
	j, ok := c.jobs[ls.key.job]
	if !ok {
		return
	}
	if _, done := j.committed[ls.key.index]; done {
		return
	}
	j.reissued[ls.key.index] = true
	c.queue = append(c.queue, ls.key)
}

// sweeper expires overdue leases and silent workers.
func (c *Coordinator) sweeper() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.SweepEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
		case <-c.sweeperCtx.Done():
			return
		}
		now := time.Now()
		c.mu.Lock()
		for _, ls := range c.leases {
			if now.After(ls.deadline) {
				c.expireLeaseLocked(ls)
			}
		}
		for id, ws := range c.workers {
			if now.Sub(ws.lastSeen) > c.cfg.WorkerTTL {
				for lid := range ws.leases {
					if ls, ok := c.leases[lid]; ok {
						c.expireLeaseLocked(ls)
					}
				}
				delete(c.workers, id)
			}
		}
		c.mu.Unlock()
	}
}
