package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHTTPAPIEndToEnd(t *testing.T) {
	spec := testSpec()
	want := refReportBytes(t, spec)
	s := newTestScheduler(t, t.TempDir(), 2)
	defer s.Stop(time.Minute)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	// Liveness first: the daemon answers before any job exists.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	// Submit.
	specJSON, _ := json.Marshal(JobSpec{Kind: KindSEU, SEU: &spec})
	resp, err = http.Post(srv.URL+"/api/v1/jobs", "application/json", bytes.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	var stat Status
	if err := json.NewDecoder(resp.Body).Decode(&stat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || stat.ID == "" {
		t.Fatalf("submit: %d, id %q", resp.StatusCode, stat.ID)
	}

	// Stream NDJSON until the final event.
	resp, err = http.Get(srv.URL + "/api/v1/jobs/" + stat.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var final Event
	sawEvents := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		sawEvents++
		if ev.Final {
			final = ev
			break
		}
	}
	resp.Body.Close()
	if final.State != StateDone || sawEvents < 2 {
		t.Fatalf("stream ended with state %q after %d events, want done with progress", final.State, sawEvents)
	}
	if final.ChunksDone != final.ChunksTotal || final.Injections == 0 {
		t.Fatalf("final event incomplete: %+v", final)
	}

	// Status reflects the terminal state.
	resp, err = http.Get(srv.URL + "/api/v1/jobs/" + stat.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got Status
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.State != StateDone {
		t.Fatalf("status after stream: %s", got.State)
	}

	// The streamed-to-completion report is byte-identical to seusim -json.
	resp, err = http.Get(srv.URL + "/api/v1/jobs/" + stat.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(rb, want) {
		t.Fatalf("served report differs from direct run (%d vs %d bytes)", len(rb), len(want))
	}

	// List includes the job.
	resp, err = http.Get(srv.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []Status
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != stat.ID {
		t.Fatalf("list: %+v", list)
	}

	// Metrics expose job states, throughput, and checkpoint age.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(mb)
	for _, want := range []string{
		`campaignd_jobs{state="done"} 1`,
		"campaignd_injections_total " + fmt.Sprint(final.Injections),
		"campaignd_checkpoint_age_seconds",
		"campaignd_injections_per_second",
		"campaignd_workers 2",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Cancel on a done job is a no-op returning the terminal status.
	resp, err = http.Post(srv.URL+"/api/v1/jobs/"+stat.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cancelled Status
	if err := json.NewDecoder(resp.Body).Decode(&cancelled); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cancelled.State != StateDone {
		t.Fatalf("cancel of done job reported %s", cancelled.State)
	}
}

func TestHTTPErrors(t *testing.T) {
	s := newTestScheduler(t, t.TempDir(), 1)
	defer s.Stop(time.Minute)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/api/v1/jobs", "not json", http.StatusBadRequest},
		{"POST", "/api/v1/jobs", `{"kind":"seu"}`, http.StatusBadRequest},
		{"GET", "/api/v1/jobs/jdeadbeef0000", "", http.StatusNotFound},
		{"POST", "/api/v1/jobs/jdeadbeef0000/cancel", "", http.StatusNotFound},
		{"GET", "/api/v1/jobs/jdeadbeef0000/report", "", http.StatusNotFound},
		{"GET", "/api/v1/jobs/jdeadbeef0000/stream", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}
