package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/bist"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/fpga"
	"repro/internal/payload"
	"repro/internal/seu"
)

// Config sizes the scheduler.
type Config struct {
	// Dir is the checkpoint root; every job persists its state under
	// Dir/<jobID>. Required.
	Dir string
	// Workers bounds the worker pool SEU chunks shard across.
	// <= 0 means GOMAXPROCS.
	Workers int
	// Chunks caps the number of checkpoint units an SEU sweep is decomposed
	// into — the resume granularity. <= 0 means DefaultChunks.
	Chunks int
	// Blobs is the checkpoint blob store chunk results persist into.
	// nil means a local DirStore under Dir/blobs.
	Blobs fabric.BlobStore
	// Coordinator, when set, leases SEU chunks to fabric worker nodes
	// instead of running them on the local pool. Workers must share (or
	// reach) the same blob store.
	Coordinator *fabric.Coordinator
	// Retention bounds the blob store; the zero policy never deletes.
	// Blobs referenced by a resumable job's manifest are pinned and
	// never swept regardless of policy.
	Retention fabric.RetentionPolicy
}

// DefaultChunks keeps checkpoints frequent enough that a killed daemon
// rarely loses more than a couple percent of a sweep.
const DefaultChunks = 64

// errDrained marks a job interrupted by graceful shutdown: its completed
// chunks are on disk and it goes back to the queue for the next daemon.
var errDrained = errors.New("campaign: scheduler draining")

// Scheduler runs jobs one at a time in submission order, sharding each SEU
// sweep across the worker pool. All state changes persist through the store
// before they are observable over the API, so a crash at any point resumes
// cleanly.
type Scheduler struct {
	cfg     Config
	st      *store
	broker  *broker
	Metrics *Metrics

	mu        sync.Mutex
	jobs      map[string]*Status
	order     []string // submission order of job IDs
	cancels   map[string]context.CancelFunc
	cancelReq map[string]bool
	draining  bool

	kick     chan struct{}
	drainCh  chan struct{}
	drainOne sync.Once
	runCtx   context.Context
	runStop  context.CancelFunc
	wg       sync.WaitGroup
}

// New opens (or creates) the checkpoint root, re-queues every job the
// previous daemon left unfinished, and starts the dispatcher.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("campaign: Config.Dir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Chunks <= 0 {
		cfg.Chunks = DefaultChunks
	}
	if cfg.Blobs == nil {
		blobs, err := fabric.NewDirStore(filepath.Join(cfg.Dir, "blobs"))
		if err != nil {
			return nil, err
		}
		cfg.Blobs = blobs
	}
	s := &Scheduler{
		cfg:       cfg,
		st:        newStore(cfg.Dir, cfg.Blobs),
		broker:    newBroker(),
		Metrics:   newMetrics(cfg.Workers),
		jobs:      make(map[string]*Status),
		cancels:   make(map[string]context.CancelFunc),
		cancelReq: make(map[string]bool),
		kick:      make(chan struct{}, 1),
		drainCh:   make(chan struct{}),
	}
	if cfg.Coordinator != nil {
		s.Metrics.SetFabricSource(cfg.Coordinator.Stats)
	}
	s.runCtx, s.runStop = context.WithCancel(context.Background())
	persisted, err := s.st.loadAll()
	if err != nil {
		return nil, err
	}
	for _, stat := range persisted {
		if stat.State == StateRunning {
			// The previous daemon died mid-job; its finished chunks are on
			// disk, so the job simply re-queues and resumes.
			stat.State = StateQueued
			stat.StartedAt = nil
			if err := s.st.saveStatus(stat); err != nil {
				return nil, err
			}
		}
		if stat.State != StateDone {
			// Resumable: its checkpoint blobs must survive retention. Pins
			// land before the first sweep can run.
			s.st.pinJob(stat.ID)
		}
		s.jobs[stat.ID] = stat
		s.order = append(s.order, stat.ID)
	}
	s.wg.Add(1)
	go s.dispatch()
	if cfg.Retention.Enabled() {
		s.wg.Add(1)
		go s.retentionLoop()
	}
	return s, nil
}

// retentionLoop periodically sweeps the blob store under the configured
// policy, always excluding pinned (live-manifest-referenced) blobs.
func (s *Scheduler) retentionLoop() {
	defer s.wg.Done()
	every := s.cfg.Retention.SweepEvery
	if every <= 0 {
		every = time.Minute
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_, _ = s.SweepRetention()
		case <-s.drainCh:
			return
		case <-s.runCtx.Done():
			return
		}
	}
}

// SweepRetention runs one retention pass now, returning how many blobs it
// deleted. Safe at any time: blobs referenced by a resumable job's
// manifest are pinned under the same lock that commits them.
func (s *Scheduler) SweepRetention() (int, error) {
	return fabric.SweepRetention(s.cfg.Blobs, s.cfg.Retention, s.st.isPinned)
}

// Submit registers a job. Submission is idempotent on the content-addressed
// ID: an already queued, running, or done job returns its current status
// untouched, while a failed or cancelled job re-queues and — because its
// chunk checkpoints were retained — resumes where it stopped.
func (s *Scheduler) Submit(spec JobSpec) (*Status, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	id := spec.ID()
	s.mu.Lock()
	defer s.mu.Unlock()
	if stat, ok := s.jobs[id]; ok {
		if stat.State == StateFailed || stat.State == StateCancelled {
			stat.State = StateQueued
			stat.Error = ""
			stat.StartedAt = nil
			stat.FinishedAt = nil
			if err := s.st.saveStatus(stat); err != nil {
				return nil, err
			}
			s.broker.publish(event(stat))
			s.kickLocked()
		}
		out := *stat
		return &out, nil
	}
	stat := &Status{
		ID:          id,
		Spec:        spec,
		State:       StateQueued,
		SubmittedAt: time.Now().UTC(),
	}
	if err := s.st.saveStatus(stat); err != nil {
		return nil, err
	}
	s.jobs[id] = stat
	s.order = append(s.order, id)
	s.broker.publish(event(stat))
	s.kickLocked()
	out := *stat
	return &out, nil
}

// Cancel stops a job. A queued job goes straight to cancelled; a running
// job is interrupted at its next chunk boundary (checkpoints already written
// survive, so resubmitting the same spec resumes rather than restarts).
func (s *Scheduler) Cancel(id string) (*Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stat, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("campaign: unknown job %q", id)
	}
	switch stat.State {
	case StateQueued:
		stat.State = StateCancelled
		now := time.Now().UTC()
		stat.FinishedAt = &now
		if err := s.st.saveStatus(stat); err != nil {
			return nil, err
		}
		s.Metrics.jobFinished(StateCancelled)
		s.broker.publish(event(stat))
	case StateRunning:
		s.cancelReq[id] = true
		if cancel := s.cancels[id]; cancel != nil {
			cancel()
		}
	}
	out := *stat
	return &out, nil
}

// Get returns a copy of the job's status.
func (s *Scheduler) Get(id string) (*Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stat, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	out := *stat
	return &out, true
}

// List returns all jobs in submission order.
func (s *Scheduler) List() []*Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Status, 0, len(s.order))
	for _, id := range s.order {
		stat := *s.jobs[id]
		out = append(out, &stat)
	}
	return out
}

// JobsByState snapshots the queue for the metrics plane.
func (s *Scheduler) JobsByState() map[State]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[State]int)
	for _, stat := range s.jobs {
		out[stat.State]++
	}
	return out
}

// Report returns the final report's exact persisted bytes. Only done jobs
// have one.
func (s *Scheduler) Report(id string) ([]byte, error) {
	stat, ok := s.Get(id)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown job %q", id)
	}
	if stat.State != StateDone {
		return nil, fmt.Errorf("campaign: job %q is %s, no report", id, stat.State)
	}
	return s.st.loadReport(id)
}

// Subscribe returns a channel of progress events for one job ("" = all) and
// a cancel func the caller must invoke when done.
func (s *Scheduler) Subscribe(job string) (<-chan Event, func()) {
	ch, cancel := s.broker.subscribe(job)
	return ch, cancel
}

// Stop drains the scheduler: no new jobs or chunks start, in-flight chunks
// finish and checkpoint, and the running job (if interrupted) re-queues.
// If draining outlives grace, the running work is cancelled hard — losing at
// most the in-flight chunks, never the checkpointed ones.
func (s *Scheduler) Stop(grace time.Duration) {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.drainOne.Do(func() { close(s.drainCh) })
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		s.runStop()
		<-done
	}
	s.runStop()
}

func (s *Scheduler) kickLocked() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

func (s *Scheduler) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// update applies fn to the job under the lock, persists, and publishes.
func (s *Scheduler) update(id string, fn func(*Status)) {
	s.mu.Lock()
	stat, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	fn(stat)
	// Persistence failure here is not fatal: the in-memory state stays
	// authoritative for this process and the next transition retries.
	_ = s.st.saveStatus(stat)
	ev := event(stat)
	s.mu.Unlock()
	s.broker.publish(ev)
}

// nextQueued returns the oldest queued job ID, or "".
func (s *Scheduler) nextQueued() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ""
	}
	for _, id := range s.order {
		if s.jobs[id].State == StateQueued {
			return id
		}
	}
	return ""
}

// dispatch runs jobs one at a time in submission order. Intra-job chunk
// parallelism uses the full worker pool, so a single active job already
// saturates it; running jobs serially keeps progress (and checkpoint
// density) concentrated instead of spread thin.
func (s *Scheduler) dispatch() {
	defer s.wg.Done()
	for {
		id := s.nextQueued()
		if id == "" {
			select {
			case <-s.kick:
				continue
			case <-s.drainCh:
				return
			case <-s.runCtx.Done():
				return
			}
		}
		s.runJob(id)
	}
}

// runJob executes one job and applies the terminal (or re-queue) transition.
func (s *Scheduler) runJob(id string) {
	jobCtx, jobCancel := context.WithCancel(s.runCtx)
	defer jobCancel()

	s.mu.Lock()
	stat, ok := s.jobs[id]
	if !ok || stat.State != StateQueued {
		s.mu.Unlock()
		return
	}
	stat.State = StateRunning
	now := time.Now().UTC()
	stat.StartedAt = &now
	stat.Error = ""
	s.cancels[id] = jobCancel
	delete(s.cancelReq, id)
	_ = s.st.saveStatus(stat)
	spec := stat.Spec
	ev := event(stat)
	s.mu.Unlock()
	s.broker.publish(ev)
	s.Metrics.jobStarted()

	var err error
	switch spec.Kind {
	case KindSEU:
		err = s.runSEU(jobCtx, id, spec.SEU)
	case KindBIST:
		err = s.runBIST(jobCtx, id, spec.BIST)
	case KindMission:
		err = s.runMission(jobCtx, id, spec.Mission)
	default:
		err = fmt.Errorf("campaign: unknown job kind %q", spec.Kind)
	}

	s.mu.Lock()
	delete(s.cancels, id)
	cancelled := s.cancelReq[id]
	delete(s.cancelReq, id)
	s.mu.Unlock()

	var final State
	switch {
	case err == nil:
		final = StateDone
	case cancelled:
		final = StateCancelled
	case errors.Is(err, errDrained) || errors.Is(err, context.Canceled):
		// Shutdown, not failure: back to the queue with checkpoints intact.
		final = StateQueued
	default:
		final = StateFailed
	}
	s.update(id, func(st *Status) {
		st.State = final
		if final == StateQueued {
			st.StartedAt = nil
			return
		}
		fin := time.Now().UTC()
		st.FinishedAt = &fin
		if final == StateFailed {
			st.Error = err.Error()
		}
	})
	if final == StateDone {
		// The report is assembled and persisted; the job's chunk blobs are
		// no longer load-bearing, so release them to retention.
		s.st.unpinJob(id)
	}
	if final.Terminal() {
		s.Metrics.jobFinished(final)
	}
}

// runSEU executes an injection campaign as a checkpointed chunk sweep.
func (s *Scheduler) runSEU(ctx context.Context, id string, spec *core.CampaignSpec) error {
	cfg, err := spec.Resolve()
	if err != nil {
		return err
	}
	p, err := core.Build(cfg, spec.Design)
	if err != nil {
		return err
	}
	bd, err := core.Testbed(cfg, p)
	if err != nil {
		return err
	}
	opts := cfg.CampaignOptions(true)
	base, err := seu.NewChunkRunner(bd, opts)
	if err != nil {
		return err
	}
	plan := seu.PlanChunks(cfg.Geom, opts, s.cfg.Chunks)
	have, err := s.st.loadChunks(id, plan)
	if err != nil {
		return err
	}

	results := make([]*seu.ChunkResult, 0, len(plan))
	var pending []seu.ChunkSpec
	var doneInj, doneFail int64
	for _, cs := range plan {
		if cr, ok := have[cs.Index]; ok {
			results = append(results, cr)
			doneInj += cr.Injections
			doneFail += cr.Failures
		} else {
			pending = append(pending, cs)
		}
	}
	s.update(id, func(st *Status) {
		st.ChunksTotal = len(plan)
		st.ChunksDone = len(results)
		st.Injections = doneInj
		st.Failures = doneFail
	})

	// committed folds one freshly checkpointed chunk into the run: the
	// queue layer's bookkeeping, shared by both execution backends.
	var resMu sync.Mutex
	committed := func(cr *seu.ChunkResult) {
		resMu.Lock()
		results = append(results, cr)
		resMu.Unlock()
		s.Metrics.checkpointed(cr.Injections, cr.Failures)
		s.update(id, func(st *Status) {
			st.ChunksDone++
			st.Injections += cr.Injections
			st.Failures += cr.Failures
		})
	}

	if len(pending) > 0 {
		var runErr error
		if s.cfg.Coordinator != nil {
			runErr = s.runFabricChunks(ctx, id, *spec, pending, committed)
		} else {
			runErr = s.runLocalChunks(ctx, id, base, cfg.Seed, pending, committed)
		}
		if runErr != nil {
			return runErr
		}
	}

	resMu.Lock()
	got := len(results)
	resMu.Unlock()
	if got < len(plan) {
		// The feeder stopped early: graceful drain (or a cancel that raced
		// the last send). Everything completed is checkpointed.
		if err := ctx.Err(); err != nil {
			return err
		}
		return errDrained
	}

	rep := base.AssembleReport(results)
	b, err := reportJSON(core.NewCampaignReport(rep, cfg))
	if err != nil {
		return err
	}
	return s.st.saveReport(id, b)
}

// runLocalChunks executes pending chunks on the in-process replica pool,
// checkpointing each through the blob store as it lands.
func (s *Scheduler) runLocalChunks(ctx context.Context, id string, base *seu.ChunkRunner, seed int64, pending []seu.ChunkSpec, committed func(*seu.ChunkResult)) error {
	workers := s.cfg.Workers
	if workers > len(pending) {
		workers = len(pending)
	}
	// Clone all worker replicas from the base up front: cloning while the
	// base board is mid-injection would snapshot a dirty replica.
	runners := make([]*seu.ChunkRunner, workers)
	runners[0] = base
	for i := 1; i < workers; i++ {
		runners[i] = base.Clone(seed + int64(i))
	}

	var (
		workWG    sync.WaitGroup
		errMu     sync.Mutex
		firstErr  error
		abort     = make(chan struct{})
		abortOnce sync.Once
	)
	// fail records the first worker error and unblocks the feeder, which
	// would otherwise wait forever on a channel nobody drains.
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		abortOnce.Do(func() { close(abort) })
	}

	chunkCh := make(chan seu.ChunkSpec)
	var feedWG sync.WaitGroup
	feedWG.Add(1)
	go func() {
		defer feedWG.Done()
		defer close(chunkCh)
		for _, cs := range pending {
			if s.isDraining() || ctx.Err() != nil {
				return
			}
			select {
			case chunkCh <- cs:
			case <-ctx.Done():
				return
			case <-abort:
				return
			}
		}
	}()

	for i := 0; i < workers; i++ {
		workWG.Add(1)
		go func(r *seu.ChunkRunner) {
			defer workWG.Done()
			for cs := range chunkCh {
				s.Metrics.workerBusy(1)
				cr, err := r.Run(ctx, cs)
				s.Metrics.workerBusy(-1)
				if err != nil {
					fail(err)
					return
				}
				if err := s.st.saveChunk(id, cs, cr); err != nil {
					fail(err)
					return
				}
				committed(cr)
			}
			// The channel drained without error: every chunk this runner
			// touched completed, so its replica is a clean substrate —
			// park it for the next job on this design.
			r.Release()
		}(runners[i])
	}
	workWG.Wait()
	feedWG.Wait()
	return firstErr
}

// runFabricChunks leases pending chunks to fabric worker nodes through the
// coordinator. Workers upload results to the shared blob store; the
// coordinator hash-validates each claimed blob and calls back here exactly
// once per chunk, where the already-stored blob is committed into the
// job's manifest — the same commit point the local path uses, so reports
// are byte-identical across backends.
func (s *Scheduler) runFabricChunks(ctx context.Context, id string, spec core.CampaignSpec, pending []seu.ChunkSpec, committed func(*seu.ChunkResult)) error {
	// Graceful drain has no chunk channel to starve here — map it onto
	// context cancellation, which RunJob honors between commits. Chunks
	// already committed stay in the manifest, so the next daemon resumes.
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-s.drainCh:
			cancel()
		case <-fctx.Done():
		}
	}()
	return s.cfg.Coordinator.RunJob(fctx, id, spec, pending, func(cs seu.ChunkSpec, cr *seu.ChunkResult, key string) error {
		if err := s.st.commitChunk(id, cs, key); err != nil {
			return err
		}
		committed(cr)
		return nil
	})
}

// bistReport is the persisted outcome of a BIST job.
type bistReport struct {
	Geometry string   `json:"geometry"`
	Wire     *bist.WireTestReport `json:"wire,omitempty"`
	CLB      *bist.CLBTestReport  `json:"clb,omitempty"`
	BRAM     *bist.BRAMTestReport `json:"bram,omitempty"`
	Healthy  bool     `json:"healthy"`
	Summary  []string `json:"summary"`
}

// runBIST runs the enabled self-tests on a freshly configured idle device.
func (s *Scheduler) runBIST(ctx context.Context, id string, spec *BISTSpec) error {
	g, err := core.ParseGeometry(spec.Geom)
	if err != nil {
		return err
	}
	f := fpga.New(g)
	if err := f.FullConfigure(fpga.NewConfigBuilder(g).FullBitstream()); err != nil {
		return err
	}
	port := fpga.NewPort(f)

	total := 0
	for _, on := range []bool{spec.Wire, spec.CLB, spec.BRAM} {
		if on {
			total++
		}
	}
	s.update(id, func(st *Status) { st.ChunksTotal = total })
	step := func() {
		s.update(id, func(st *Status) { st.ChunksDone++ })
	}

	out := bistReport{Geometry: g.String(), Healthy: true}
	if spec.Wire {
		rep, err := bist.WireTestContext(ctx, f, port)
		if err != nil {
			return err
		}
		out.Wire = rep
		out.Healthy = out.Healthy && len(rep.Faults) == 0
		out.Summary = append(out.Summary, rep.String())
		step()
	}
	if spec.CLB {
		rep, err := bist.CLBTestContext(ctx, f, port)
		if err != nil {
			return err
		}
		out.CLB = rep
		out.Healthy = out.Healthy && len(rep.Faults) == 0
		out.Summary = append(out.Summary, rep.String())
		step()
	}
	if spec.BRAM {
		rep, err := bist.BRAMTestContext(ctx, f, port)
		if err != nil {
			return err
		}
		out.BRAM = rep
		out.Healthy = out.Healthy && len(rep.Faults) == 0
		out.Summary = append(out.Summary, rep.String())
		step()
	}
	b, err := reportJSON(out)
	if err != nil {
		return err
	}
	return s.st.saveReport(id, b)
}

// missionReport is the persisted outcome of a scrub-mission job.
type missionReport struct {
	Design               string         `json:"design"`
	Geometry             string         `json:"geometry"`
	DurationSeconds      float64        `json:"duration_seconds"`
	Upsets               int            `json:"upsets"`
	UpsetsByKind         map[string]int `json:"upsets_by_kind"`
	ConfigUpsets         int            `json:"config_upsets"`
	HiddenUpsets         int            `json:"hidden_upsets"`
	Detections           int            `json:"detections"`
	Repairs              int            `json:"repairs"`
	FullReconfigs        int            `json:"full_reconfigs"`
	MeanDetectionLatency float64        `json:"mean_detection_latency_seconds"`
	Availability         float64        `json:"availability"`
	ScanCycleSeconds     float64        `json:"scan_cycle_seconds"`
}

// runMission drives the nine-FPGA payload through the orbit environment.
func (s *Scheduler) runMission(ctx context.Context, id string, spec *MissionSpec) error {
	g, err := core.ParseGeometry(spec.Geom)
	if err != nil {
		return err
	}
	dur, err := time.ParseDuration(spec.Duration)
	if err != nil {
		return err
	}
	cfg := core.Config{Geom: g, Seed: spec.Seed, Sample: 1}
	p, err := core.Build(cfg, spec.Design)
	if err != nil {
		return err
	}
	sys, err := payload.New(p, spec.Seed)
	if err != nil {
		return err
	}
	s.update(id, func(st *Status) { st.ChunksTotal = 1 })
	mopts := payload.MissionOptions{Duration: dur, Seed: spec.Seed}
	if spec.PeriodicFullReconfig != "" {
		refresh, err := time.ParseDuration(spec.PeriodicFullReconfig)
		if err != nil {
			return err
		}
		mopts.PeriodicFullReconfig = refresh
	}
	rep, err := sys.RunMissionContext(ctx, mopts)
	if err != nil {
		return err
	}
	out := missionReport{
		Design:               spec.Design,
		Geometry:             g.String(),
		DurationSeconds:      rep.Duration.Seconds(),
		Upsets:               rep.Upsets,
		UpsetsByKind:         make(map[string]int, len(rep.UpsetsByKind)),
		ConfigUpsets:         rep.ConfigUpsets,
		HiddenUpsets:         rep.HiddenUpsets,
		Detections:           rep.Detections,
		Repairs:              rep.Repairs,
		FullReconfigs:        rep.FullReconfigs,
		MeanDetectionLatency: rep.MeanDetectionLatency.Seconds(),
		Availability:         rep.Availability,
		ScanCycleSeconds:     rep.ScanCycle.Seconds(),
	}
	for k, n := range rep.UpsetsByKind {
		out.UpsetsByKind[k.String()] = n
	}
	s.update(id, func(st *Status) { st.ChunksDone = 1 })
	b, err := reportJSON(out)
	if err != nil {
		return err
	}
	return s.st.saveReport(id, b)
}

// reportJSON renders a final report exactly the way the CLI tools do
// (json.Encoder with two-space indent), so e.g. an SEU job's report.json is
// byte-identical to `seusim -json` for the same campaign.
func reportJSON(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
