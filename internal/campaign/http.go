package campaign

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Handler exposes the scheduler over HTTP:
//
//	POST /api/v1/jobs               — submit a JobSpec, returns its Status
//	GET  /api/v1/jobs               — list jobs
//	GET  /api/v1/jobs/{id}          — one job's Status
//	POST /api/v1/jobs/{id}/cancel   — cancel a job
//	GET  /api/v1/jobs/{id}/stream   — NDJSON progress events until terminal
//	GET  /api/v1/jobs/{id}/report   — the final report's exact bytes
//	GET  /healthz                   — liveness
//	GET  /metrics                   — Prometheus text exposition
func Handler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
			return
		}
		stat, err := s.Submit(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, stat)
	})
	mux.HandleFunc("GET /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		stat, ok := s.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, stat)
	})
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		stat, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, stat)
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		streamJob(s, w, r)
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		b, err := s.Report(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Metrics.WritePrometheus(w, s.JobsByState())
	})
	return mux
}

// streamJob writes the job's progress as NDJSON: an immediate snapshot, then
// every event until the job reaches a terminal state (or the client leaves).
// Subscribing before the snapshot closes the gap where a transition lands
// between the two.
func streamJob(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	events, cancel := s.Subscribe(id)
	defer cancel()
	stat, ok := s.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	send := func(ev Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return !ev.Final
	}
	if !send(event(stat)) {
		return
	}
	// Heartbeat snapshots keep long quiet chunks visible and bound how long
	// a dead connection lingers.
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case ev, ok := <-events:
			if !ok || !send(ev) {
				return
			}
		case <-tick.C:
			stat, ok := s.Get(id)
			if !ok || !send(event(stat)) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
