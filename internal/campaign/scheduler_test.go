package campaign

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/seu"
)

// testSpec is the campaign the scheduler tests revolve around: small enough
// to finish in seconds, large enough to split into many chunks.
func testSpec() core.CampaignSpec {
	return core.CampaignSpec{Design: "LFSR 18", Geom: "tiny", Seed: 1, Sample: 0.2, Workers: 1}
}

// refReportBytes runs the campaign directly (no scheduler, no checkpoints)
// and renders it exactly as `seusim -json` would — the byte-identity oracle.
func refReportBytes(t *testing.T, spec core.CampaignSpec) []byte {
	t.Helper()
	cfg, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Build(cfg, spec.Design)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := core.Testbed(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := seu.Run(bd, cfg.CampaignOptions(true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := reportJSON(core.NewCampaignReport(rep, cfg))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newTestScheduler(t *testing.T, dir string, workers int) *Scheduler {
	t.Helper()
	s, err := New(Config{Dir: dir, Workers: workers, Chunks: 16})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// waitState polls until the job reaches want (fatal on timeout or on
// reaching a different terminal state).
func waitState(t *testing.T, s *Scheduler, id string, want State) *Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		stat, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if stat.State == want {
			return stat
		}
		if stat.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, stat.State, stat.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for job %s to reach %s", id, want)
	return nil
}

// chunkFileCount counts the checkpoints a job's manifest references.
func chunkFileCount(t *testing.T, dir, id string) int {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, id, "manifest.json"))
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Chunks []json.RawMessage `json:"chunks"`
	}
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	return len(m.Chunks)
}

func TestSEUJobMatchesDirectRun(t *testing.T) {
	spec := testSpec()
	want := refReportBytes(t, spec)
	dir := t.TempDir()
	s := newTestScheduler(t, dir, 4)
	defer s.Stop(time.Minute)

	stat, err := s.Submit(JobSpec{Kind: KindSEU, SEU: &spec})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, s, stat.ID, StateDone)
	if fin.ChunksDone != fin.ChunksTotal || fin.ChunksTotal < 2 {
		t.Fatalf("chunks done %d/%d, want a complete multi-chunk sweep", fin.ChunksDone, fin.ChunksTotal)
	}
	got, err := s.Report(stat.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("scheduled report differs from direct run:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	// Idempotent resubmission of a done job returns it untouched.
	again, err := s.Submit(JobSpec{Kind: KindSEU, SEU: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != stat.ID || again.State != StateDone {
		t.Fatalf("resubmit returned %s/%s, want %s/done", again.ID, again.State, stat.ID)
	}
}

// TestCheckpointResumeByteIdentical kills the scheduler at a randomized
// chunk boundary mid-sweep, restarts it on the same state directory, and
// requires the resumed job's final report to be byte-identical to an
// uninterrupted run — at pool sizes 1 and 4.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	spec := testSpec()
	want := refReportBytes(t, spec)
	rng := rand.New(rand.NewSource(7))
	for _, workers := range []int{1, 4} {
		dir := t.TempDir()
		s := newTestScheduler(t, dir, workers)

		job := JobSpec{Kind: KindSEU, SEU: &spec}
		events, unsub := s.Subscribe(job.ID())
		stat, err := s.Submit(job)
		if err != nil {
			t.Fatal(err)
		}
		// Stop once a randomized number of chunks has checkpointed.
		killAfter := 1 + rng.Intn(8)
		deadline := time.After(2 * time.Minute)
	waitKill:
		for {
			select {
			case ev := <-events:
				if ev.ChunksDone >= killAfter || ev.Final {
					break waitKill
				}
			case <-deadline:
				t.Fatalf("workers=%d: no progress before kill point %d", workers, killAfter)
			}
		}
		unsub()
		s.Stop(time.Minute) // drain: in-flight chunks checkpoint, job re-queues

		persisted := chunkFileCount(t, dir, stat.ID)
		mid, ok := s.Get(stat.ID)
		if !ok {
			t.Fatal("job lost across Stop")
		}
		if mid.State != StateQueued && mid.State != StateDone {
			t.Fatalf("workers=%d: state after drain is %s, want queued or done", workers, mid.State)
		}
		if mid.State == StateQueued && persisted == 0 {
			t.Fatalf("workers=%d: drained mid-sweep but no chunk checkpoints on disk", workers)
		}

		// "Restarted daemon": a fresh scheduler on the same directory picks
		// the queued job up by itself and resumes from the checkpoints.
		s2 := newTestScheduler(t, dir, workers)
		fin := waitState(t, s2, stat.ID, StateDone)
		got, err := s2.Report(stat.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: resumed report differs from uninterrupted run (killed after %d of %d chunks)",
				workers, persisted, fin.ChunksTotal)
		}
		s2.Stop(time.Minute)
	}
}

// TestCancelResubmitResumes cancels a running job, then resubmits the same
// spec: the content-addressed ID must map it onto its retained checkpoints
// and the final report must match an uninterrupted run byte for byte.
func TestCancelResubmitResumes(t *testing.T) {
	spec := testSpec()
	want := refReportBytes(t, spec)
	dir := t.TempDir()
	s := newTestScheduler(t, dir, 2)
	defer s.Stop(time.Minute)

	job := JobSpec{Kind: KindSEU, SEU: &spec}
	events, unsub := s.Subscribe(job.ID())
	stat, err := s.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Minute)
waitProgress:
	for {
		select {
		case ev := <-events:
			if ev.ChunksDone >= 1 || ev.Final {
				break waitProgress
			}
		case <-deadline:
			t.Fatal("no chunk completed before cancel")
		}
	}
	unsub()
	if _, err := s.Cancel(stat.ID); err != nil {
		t.Fatal(err)
	}
	// The job either lands cancelled or — if the cancel raced the last
	// chunk — done; both keep their checkpoints.
	var mid *Status
	for waited := 0; ; waited++ {
		st, ok := s.Get(stat.ID)
		if !ok {
			t.Fatal("job lost after cancel")
		}
		if st.State.Terminal() {
			mid = st
			break
		}
		if waited > 20000 {
			t.Fatal("timeout waiting for cancel to land")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if mid.State == StateCancelled && chunkFileCount(t, dir, stat.ID) == 0 {
		t.Fatal("cancelled job retained no checkpoints")
	}

	resub, err := s.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if resub.ID != stat.ID {
		t.Fatalf("resubmitted job got new ID %s, want %s", resub.ID, stat.ID)
	}
	waitState(t, s, stat.ID, StateDone)
	got, err := s.Report(stat.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cancel+resubmit report differs from uninterrupted run")
	}
}

func TestBISTAndMissionJobs(t *testing.T) {
	dir := t.TempDir()
	s := newTestScheduler(t, dir, 2)
	defer s.Stop(time.Minute)

	bistJob := JobSpec{Kind: KindBIST, BIST: &BISTSpec{Geom: "tiny", Wire: true, CLB: true, BRAM: true}}
	bs, err := s.Submit(bistJob)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, s, bs.ID, StateDone)
	if fin.ChunksDone != 3 {
		t.Fatalf("bist chunks done = %d, want 3", fin.ChunksDone)
	}
	b, err := s.Report(bs.ID)
	if err != nil {
		t.Fatal(err)
	}
	var brep struct {
		Healthy bool     `json:"healthy"`
		Summary []string `json:"summary"`
	}
	if err := json.Unmarshal(b, &brep); err != nil {
		t.Fatal(err)
	}
	if !brep.Healthy || len(brep.Summary) != 3 {
		t.Fatalf("bist report: healthy=%v summary=%d, want healthy with 3 entries", brep.Healthy, len(brep.Summary))
	}

	missionJob := JobSpec{Kind: KindMission, Mission: &MissionSpec{
		Design: "LFSR 18", Geom: "tiny", Seed: 3, Duration: "30m",
	}}
	ms, err := s.Submit(missionJob)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, ms.ID, StateDone)
	mb, err := s.Report(ms.ID)
	if err != nil {
		t.Fatal(err)
	}
	var mrep missionReport
	if err := json.Unmarshal(mb, &mrep); err != nil {
		t.Fatal(err)
	}
	if mrep.Availability <= 0 || mrep.Availability > 1 {
		t.Fatalf("mission availability %v out of range", mrep.Availability)
	}
}

func TestSpecValidation(t *testing.T) {
	seuSpec := testSpec()
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"no payload", JobSpec{Kind: KindSEU}},
		{"two payloads", JobSpec{Kind: KindSEU, SEU: &seuSpec, BIST: &BISTSpec{Wire: true}}},
		{"kind mismatch", JobSpec{Kind: KindBIST, SEU: &seuSpec}},
		{"unknown kind", JobSpec{Kind: "fuzz", SEU: &seuSpec}},
		{"empty bist", JobSpec{Kind: KindBIST, BIST: &BISTSpec{}}},
		{"bad geometry", JobSpec{Kind: KindBIST, BIST: &BISTSpec{Geom: "huge", Wire: true}}},
		{"bad duration", JobSpec{Kind: KindMission, Mission: &MissionSpec{Design: "LFSR 18", Duration: "soon"}}},
		{"no design", JobSpec{Kind: KindSEU, SEU: &core.CampaignSpec{Sample: 1}}},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid spec", tc.name)
		}
	}
	ok := JobSpec{Kind: KindSEU, SEU: &seuSpec}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if id := ok.ID(); len(id) != 13 || id[0] != 'j' {
		t.Fatalf("unexpected job ID form %q", id)
	}
	if ok.ID() != (JobSpec{Kind: KindSEU, SEU: &seuSpec}).ID() {
		t.Fatal("identical specs produced different IDs")
	}
}
