// Package campaign is the ground-side campaign service: a checkpointed job
// scheduler for the batch workloads the paper's workflow dispatches per
// design — exhaustive SEU sweeps, BIST diagnostics, and scrub-mission
// simulations. Jobs are content-addressed (the job ID is a hash of the
// canonical spec), shard over a bounded worker pool reusing the SEU
// campaign's deterministic chunking, and checkpoint per-shard progress to
// disk, so a daemon killed mid-sweep — or a job cancelled and resubmitted —
// resumes where it stopped and still produces a final report byte-identical
// to an uninterrupted run. cmd/campaignd exposes the scheduler over HTTP
// with NDJSON progress streaming and a Prometheus-text metrics plane.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
)

// JobKind names a workload class.
type JobKind string

const (
	// KindSEU is an injection campaign (core.CampaignSpec), the only kind
	// with sub-job checkpoints: each address-range chunk persists on
	// completion.
	KindSEU JobKind = "seu"
	// KindBIST runs built-in self-tests on an idle device.
	KindBIST JobKind = "bist"
	// KindMission runs the nine-FPGA payload through the orbit environment.
	KindMission JobKind = "mission"
)

// BISTSpec selects the self-tests of a BIST job. At least one test must be
// enabled.
type BISTSpec struct {
	Geom string `json:"geom,omitempty"`
	Wire bool   `json:"wire,omitempty"`
	CLB  bool   `json:"clb,omitempty"`
	BRAM bool   `json:"bram,omitempty"`
}

// MissionSpec configures a scrub-mission job.
type MissionSpec struct {
	Design string `json:"design"`
	Geom   string `json:"geom,omitempty"`
	Seed   int64  `json:"seed"`
	// Duration is a time.ParseDuration spelling, e.g. "2h".
	Duration string `json:"duration"`
	// PeriodicFullReconfig, when set, enables the blind-refresh ablation.
	PeriodicFullReconfig string `json:"periodic_full_reconfig,omitempty"`
}

// JobSpec is the wire form of one job: a kind plus exactly the matching
// payload. Specs are canonicalized by JSON marshalling, and the job ID is a
// hash of that canonical form — identical specs share an identity and a
// checkpoint directory, which is what makes cancel-and-resubmit resume
// rather than restart.
type JobSpec struct {
	Kind    JobKind            `json:"kind"`
	SEU     *core.CampaignSpec `json:"seu,omitempty"`
	BIST    *BISTSpec          `json:"bist,omitempty"`
	Mission *MissionSpec       `json:"mission,omitempty"`
}

// Validate checks the spec resolves to a runnable job.
func (s *JobSpec) Validate() error {
	set := 0
	for _, present := range []bool{s.SEU != nil, s.BIST != nil, s.Mission != nil} {
		if present {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("campaign: spec must carry exactly one of seu/bist/mission, has %d", set)
	}
	switch s.Kind {
	case KindSEU:
		if s.SEU == nil {
			return fmt.Errorf("campaign: kind %q without seu payload", s.Kind)
		}
		if s.SEU.Design == "" {
			return fmt.Errorf("campaign: seu job needs a design")
		}
		if _, err := s.SEU.Resolve(); err != nil {
			return err
		}
	case KindBIST:
		if s.BIST == nil {
			return fmt.Errorf("campaign: kind %q without bist payload", s.Kind)
		}
		if !s.BIST.Wire && !s.BIST.CLB && !s.BIST.BRAM {
			return fmt.Errorf("campaign: bist job enables no tests")
		}
		if _, err := core.ParseGeometry(s.BIST.Geom); err != nil {
			return err
		}
	case KindMission:
		if s.Mission == nil {
			return fmt.Errorf("campaign: kind %q without mission payload", s.Kind)
		}
		if s.Mission.Design == "" {
			return fmt.Errorf("campaign: mission job needs a design")
		}
		if _, err := core.ParseGeometry(s.Mission.Geom); err != nil {
			return err
		}
		d, err := time.ParseDuration(s.Mission.Duration)
		if err != nil || d <= 0 {
			return fmt.Errorf("campaign: bad mission duration %q", s.Mission.Duration)
		}
		if s.Mission.PeriodicFullReconfig != "" {
			if _, err := time.ParseDuration(s.Mission.PeriodicFullReconfig); err != nil {
				return fmt.Errorf("campaign: bad periodic_full_reconfig %q", s.Mission.PeriodicFullReconfig)
			}
		}
	default:
		return fmt.Errorf("campaign: unknown job kind %q", s.Kind)
	}
	return nil
}

// ID returns the job's content-addressed identifier.
func (s JobSpec) ID() string {
	b, err := json.Marshal(s)
	if err != nil {
		// JobSpec is a closed struct of marshalable fields; this cannot
		// fire outside programmer error.
		panic(fmt.Sprintf("campaign: marshalling spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return "j" + hex.EncodeToString(sum[:6])
}

// State is a job's lifecycle position.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (st State) Terminal() bool {
	return st == StateDone || st == StateFailed || st == StateCancelled
}

// Status is the externally visible job record, persisted as the job's
// state.json and served over the HTTP API. The final report itself lives in
// a sibling report.json whose bytes are served verbatim, keeping the
// determinism promise out of reach of re-marshalling.
type Status struct {
	ID          string     `json:"id"`
	Spec        JobSpec    `json:"spec"`
	State       State      `json:"state"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	Error       string     `json:"error,omitempty"`

	// Progress. ChunksTotal/ChunksDone count checkpoint units (1 for
	// un-chunked kinds); Injections/Failures accumulate checkpointed chunk
	// results.
	ChunksTotal int   `json:"chunks_total,omitempty"`
	ChunksDone  int   `json:"chunks_done,omitempty"`
	Injections  int64 `json:"injections,omitempty"`
	Failures    int64 `json:"failures,omitempty"`
}

// Event is one NDJSON progress record of a job's stream.
type Event struct {
	Job         string    `json:"job"`
	State       State     `json:"state"`
	ChunksDone  int       `json:"chunks_done"`
	ChunksTotal int       `json:"chunks_total"`
	Injections  int64     `json:"injections"`
	Failures    int64     `json:"failures"`
	Error       string    `json:"error,omitempty"`
	Final       bool      `json:"final,omitempty"`
	Time        time.Time `json:"time"`
}

// event snapshots a status into its stream record.
func event(stat *Status) Event {
	return Event{
		Job:         stat.ID,
		State:       stat.State,
		ChunksDone:  stat.ChunksDone,
		ChunksTotal: stat.ChunksTotal,
		Injections:  stat.Injections,
		Failures:    stat.Failures,
		Error:       stat.Error,
		Final:       stat.State.Terminal(),
		Time:        time.Now().UTC(),
	}
}
