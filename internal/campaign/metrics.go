package campaign

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/mission"
	"repro/internal/seu"
)

// Metrics is the scheduler's observability plane, exposed in Prometheus
// text format by the /metrics endpoint. Everything here is diagnostics —
// nothing feeds back into scheduling, and none of it touches report
// determinism.
type Metrics struct {
	mu sync.Mutex

	poolSize int

	jobsStarted  int64
	jobsFinished map[State]int64
	chunksRun    int64
	checkpoints  int64
	lastCkpt     time.Time
	injections   int64
	failures     int64
	workersBusy  int
	started      time.Time

	// fabricStats, when set, snapshots the embedded coordinator for the
	// fabric gauge/counter block. Nil on single-node daemons, which still
	// emit the block (as zeros) so scrapes see a stable metric set.
	fabricStats func() fabric.CoordStats

	// rate window: cumulative injection samples, pruned past rateWindow.
	samples []rateSample
}

type rateSample struct {
	at  time.Time
	cum int64
}

const rateWindow = 60 * time.Second

func newMetrics(poolSize int) *Metrics {
	return &Metrics{
		poolSize:     poolSize,
		jobsFinished: make(map[State]int64),
		started:      time.Now(),
	}
}

// SetFabricSource wires the coordinator snapshot the fabric metric block
// reads. Called once at scheduler construction, before any scrape.
func (m *Metrics) SetFabricSource(fn func() fabric.CoordStats) {
	m.mu.Lock()
	m.fabricStats = fn
	m.mu.Unlock()
}

func (m *Metrics) jobStarted() {
	m.mu.Lock()
	m.jobsStarted++
	m.mu.Unlock()
}

func (m *Metrics) jobFinished(st State) {
	m.mu.Lock()
	m.jobsFinished[st]++
	m.mu.Unlock()
}

func (m *Metrics) workerBusy(delta int) {
	m.mu.Lock()
	m.workersBusy += delta
	m.mu.Unlock()
}

// checkpointed records one persisted chunk and its share of the campaign.
func (m *Metrics) checkpointed(injections, failures int64) {
	now := time.Now()
	m.mu.Lock()
	m.chunksRun++
	m.checkpoints++
	m.lastCkpt = now
	m.injections += injections
	m.failures += failures
	m.samples = append(m.samples, rateSample{at: now, cum: m.injections})
	m.prune(now)
	m.mu.Unlock()
}

func (m *Metrics) prune(now time.Time) {
	cut := 0
	for cut < len(m.samples) && now.Sub(m.samples[cut].at) > rateWindow {
		cut++
	}
	m.samples = m.samples[cut:]
}

// injectionsPerSecond is the rate over the trailing window. With fewer than
// two samples in the window the rate is 0 — a daemon idle for a minute
// reads 0, not a stale burst.
func (m *Metrics) injectionsPerSecond(now time.Time) float64 {
	m.prune(now)
	if len(m.samples) == 0 {
		return 0
	}
	first := m.samples[0]
	dt := now.Sub(first.at).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(m.injections-first.cum) / dt
}

// WritePrometheus renders the metrics plane. jobsByState is the scheduler's
// live queue snapshot (current jobs by state, including terminal ones still
// on disk).
func (m *Metrics) WritePrometheus(w io.Writer, jobsByState map[State]int) {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP campaignd_jobs Current jobs by state.\n# TYPE campaignd_jobs gauge\n")
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		fmt.Fprintf(w, "campaignd_jobs{state=%q} %d\n", st, jobsByState[st])
	}

	fmt.Fprintf(w, "# HELP campaignd_jobs_started_total Jobs the scheduler has started running.\n# TYPE campaignd_jobs_started_total counter\ncampaignd_jobs_started_total %d\n", m.jobsStarted)
	fmt.Fprintf(w, "# HELP campaignd_jobs_finished_total Jobs finished, by terminal state.\n# TYPE campaignd_jobs_finished_total counter\n")
	states := make([]string, 0, len(m.jobsFinished))
	for st := range m.jobsFinished {
		states = append(states, string(st))
	}
	sort.Strings(states)
	for _, st := range states {
		fmt.Fprintf(w, "campaignd_jobs_finished_total{state=%q} %d\n", st, m.jobsFinished[State(st)])
	}

	fmt.Fprintf(w, "# HELP campaignd_injections_total Injections covered by checkpointed chunks.\n# TYPE campaignd_injections_total counter\ncampaignd_injections_total %d\n", m.injections)
	fmt.Fprintf(w, "# HELP campaignd_failures_total Sensitive bits found in checkpointed chunks.\n# TYPE campaignd_failures_total counter\ncampaignd_failures_total %d\n", m.failures)
	fmt.Fprintf(w, "# HELP campaignd_injections_per_second Injection throughput over the trailing 60s.\n# TYPE campaignd_injections_per_second gauge\ncampaignd_injections_per_second %g\n", m.injectionsPerSecond(now))

	fmt.Fprintf(w, "# HELP campaignd_checkpoints_total Chunk checkpoints written.\n# TYPE campaignd_checkpoints_total counter\ncampaignd_checkpoints_total %d\n", m.checkpoints)
	age := -1.0 // no checkpoint written yet
	if !m.lastCkpt.IsZero() {
		age = now.Sub(m.lastCkpt).Seconds()
	}
	fmt.Fprintf(w, "# HELP campaignd_checkpoint_age_seconds Seconds since the last checkpoint write (-1 before the first).\n# TYPE campaignd_checkpoint_age_seconds gauge\ncampaignd_checkpoint_age_seconds %g\n", age)

	fmt.Fprintf(w, "# HELP campaignd_workers Worker pool size.\n# TYPE campaignd_workers gauge\ncampaignd_workers %d\n", m.poolSize)
	fmt.Fprintf(w, "# HELP campaignd_workers_busy Workers currently executing a shard.\n# TYPE campaignd_workers_busy gauge\ncampaignd_workers_busy %d\n", m.workersBusy)
	util := 0.0
	if m.poolSize > 0 {
		util = float64(m.workersBusy) / float64(m.poolSize)
	}
	fmt.Fprintf(w, "# HELP campaignd_worker_utilization Busy fraction of the worker pool.\n# TYPE campaignd_worker_utilization gauge\ncampaignd_worker_utilization %g\n", util)

	fmt.Fprintf(w, "# HELP campaignd_uptime_seconds Seconds since the daemon started.\n# TYPE campaignd_uptime_seconds gauge\ncampaignd_uptime_seconds %g\n", now.Sub(m.started).Seconds())

	// Vector-kernel caches. These counters are process-wide (the seu package
	// shares one plan cache and one replica pool across all campaigns), so a
	// daemon restart resets them like any other counter.
	planHits, planMisses := seu.PlanCacheStats()
	fmt.Fprintf(w, "# HELP campaignd_plan_cache_hits_total Vector pre-plan cache hits (campaigns served a cached batch plan).\n# TYPE campaignd_plan_cache_hits_total counter\ncampaignd_plan_cache_hits_total %d\n", planHits)
	fmt.Fprintf(w, "# HELP campaignd_plan_cache_misses_total Vector pre-plan cache misses (plans built from scratch).\n# TYPE campaignd_plan_cache_misses_total counter\ncampaignd_plan_cache_misses_total %d\n", planMisses)
	replicaHits, replicaMisses := seu.PoolStats()
	fmt.Fprintf(w, "# HELP campaignd_replica_pool_hits_total Worker-board acquisitions served from the replica pool.\n# TYPE campaignd_replica_pool_hits_total counter\ncampaignd_replica_pool_hits_total %d\n", replicaHits)
	fmt.Fprintf(w, "# HELP campaignd_replica_pool_misses_total Worker-board acquisitions that cloned a fresh replica.\n# TYPE campaignd_replica_pool_misses_total counter\ncampaignd_replica_pool_misses_total %d\n", replicaMisses)

	// Vector-kernel activity (process-wide, like the caches above): how much
	// settling work the event-driven drain actually performed, how often
	// retired lanes were refilled mid-batch, and how many simulated cycles
	// the per-lane convergence credit skipped.
	sweeps, drains, refills, ffwd := seu.VectorKernelStats()
	fmt.Fprintf(w, "# HELP campaignd_vector_sweeps_total Worklist rounds drained by the vector kernel (one round is one sweep-equivalent).\n# TYPE campaignd_vector_sweeps_total counter\ncampaignd_vector_sweeps_total %d\n", sweeps)
	fmt.Fprintf(w, "# HELP campaignd_vector_worklist_drains_total Vector Settle calls that found pending work.\n# TYPE campaignd_vector_worklist_drains_total counter\ncampaignd_vector_worklist_drains_total %d\n", drains)
	fmt.Fprintf(w, "# HELP campaignd_vector_lane_refills_total Retired vector lanes refilled with queued injections mid-batch.\n# TYPE campaignd_vector_lane_refills_total counter\ncampaignd_vector_lane_refills_total %d\n", refills)
	fmt.Fprintf(w, "# HELP campaignd_vector_fastforward_cycles_total Simulated cycles skipped by per-lane convergence credit.\n# TYPE campaignd_vector_fastforward_cycles_total counter\ncampaignd_vector_fastforward_cycles_total %d\n", ffwd)

	// Mission-simulator activity (process-wide, like the kernel counters):
	// fleet simulations the process has run and the scrub/telemetry volume
	// they covered.
	ms := mission.ScrubStats()
	fmt.Fprintf(w, "# HELP campaignd_mission_boards_total Board-strategy simulations completed by the mission simulator.\n# TYPE campaignd_mission_boards_total counter\ncampaignd_mission_boards_total %d\n", ms.BoardsSimulated)
	fmt.Fprintf(w, "# HELP campaignd_mission_strikes_total Radiation strikes generated across simulated fleets.\n# TYPE campaignd_mission_strikes_total counter\ncampaignd_mission_strikes_total %d\n", ms.Strikes)
	fmt.Fprintf(w, "# HELP campaignd_mission_scrub_cycles_total Full scrub scan cycles completed across simulated board-strategy pairs.\n# TYPE campaignd_mission_scrub_cycles_total counter\ncampaignd_mission_scrub_cycles_total %d\n", ms.ScrubCycles)
	fmt.Fprintf(w, "# HELP campaignd_mission_repairs_total Partial-reconfiguration frame repairs across simulated fleets.\n# TYPE campaignd_mission_repairs_total counter\ncampaignd_mission_repairs_total %d\n", ms.Repairs)
	fmt.Fprintf(w, "# HELP campaignd_mission_full_reconfigs_total Full device reconfigurations across simulated fleets.\n# TYPE campaignd_mission_full_reconfigs_total counter\ncampaignd_mission_full_reconfigs_total %d\n", ms.FullReconfigs)
	fmt.Fprintf(w, "# HELP campaignd_mission_telemetry_frames_total Telemetry frames downlinked by simulated fleets.\n# TYPE campaignd_mission_telemetry_frames_total counter\ncampaignd_mission_telemetry_frames_total %d\n", ms.TelemetryFrames)
	fmt.Fprintf(w, "# HELP campaignd_mission_telemetry_bytes_total Telemetry bytes downlinked by simulated fleets.\n# TYPE campaignd_mission_telemetry_bytes_total counter\ncampaignd_mission_telemetry_bytes_total %d\n", ms.TelemetryBytes)

	// Distributed fabric. Coordinator state when this daemon embeds one,
	// zeros otherwise — the metric set stays stable across configurations.
	var fs fabric.CoordStats
	if m.fabricStats != nil {
		fs = m.fabricStats()
	}
	fmt.Fprintf(w, "# HELP campaignd_fabric_workers Live fabric worker nodes (heartbeat within TTL).\n# TYPE campaignd_fabric_workers gauge\ncampaignd_fabric_workers %d\n", fs.Workers)
	fmt.Fprintf(w, "# HELP campaignd_fabric_leases_active Chunk leases currently held by workers.\n# TYPE campaignd_fabric_leases_active gauge\ncampaignd_fabric_leases_active %d\n", fs.LeasesActive)
	fmt.Fprintf(w, "# HELP campaignd_fabric_queue_depth Chunks waiting for a worker lease.\n# TYPE campaignd_fabric_queue_depth gauge\ncampaignd_fabric_queue_depth %d\n", fs.QueueDepth)
	fmt.Fprintf(w, "# HELP campaignd_fabric_leases_issued_total Chunk leases issued to workers.\n# TYPE campaignd_fabric_leases_issued_total counter\ncampaignd_fabric_leases_issued_total %d\n", fs.LeasesIssued)
	fmt.Fprintf(w, "# HELP campaignd_fabric_leases_expired_total Leases expired (deadline passed or worker lost).\n# TYPE campaignd_fabric_leases_expired_total counter\ncampaignd_fabric_leases_expired_total %d\n", fs.LeasesExpired)
	fmt.Fprintf(w, "# HELP campaignd_fabric_leases_stolen_total Expired chunks re-issued to another worker.\n# TYPE campaignd_fabric_leases_stolen_total counter\ncampaignd_fabric_leases_stolen_total %d\n", fs.LeasesStolen)
	fmt.Fprintf(w, "# HELP campaignd_fabric_chunks_committed_total Chunk results validated and committed, first-valid-wins.\n# TYPE campaignd_fabric_chunks_committed_total counter\ncampaignd_fabric_chunks_committed_total %d\n", fs.ChunksCommitted)
	fmt.Fprintf(w, "# HELP campaignd_fabric_commit_rejects_total Claimed results that failed validation and were re-queued.\n# TYPE campaignd_fabric_commit_rejects_total counter\ncampaignd_fabric_commit_rejects_total %d\n", fs.CommitRejects)
	fmt.Fprintf(w, "# HELP campaignd_fabric_divergent_duplicates_total Duplicate completions whose bytes differed from the committed result (determinism violations).\n# TYPE campaignd_fabric_divergent_duplicates_total counter\ncampaignd_fabric_divergent_duplicates_total %d\n", fs.DivergentDuplicates)

	// Blob store traffic (process-wide across every store instance, like
	// the kernel counters above).
	puts, gets, deletes, badBlobs, retained := fabric.StoreStats()
	fmt.Fprintf(w, "# HELP campaignd_blob_puts_total Blobs written to checkpoint stores (deduplicated puts included).\n# TYPE campaignd_blob_puts_total counter\ncampaignd_blob_puts_total %d\n", puts)
	fmt.Fprintf(w, "# HELP campaignd_blob_gets_total Blob reads from checkpoint stores.\n# TYPE campaignd_blob_gets_total counter\ncampaignd_blob_gets_total %d\n", gets)
	fmt.Fprintf(w, "# HELP campaignd_blob_deletes_total Blobs deleted from checkpoint stores.\n# TYPE campaignd_blob_deletes_total counter\ncampaignd_blob_deletes_total %d\n", deletes)
	fmt.Fprintf(w, "# HELP campaignd_blob_validation_failures_total Blob reads whose content hash did not match their key.\n# TYPE campaignd_blob_validation_failures_total counter\ncampaignd_blob_validation_failures_total %d\n", badBlobs)
	fmt.Fprintf(w, "# HELP campaignd_blob_retention_deletes_total Blobs reclaimed by retention sweeps (pinned blobs are never swept).\n# TYPE campaignd_blob_retention_deletes_total counter\ncampaignd_blob_retention_deletes_total %d\n", retained)
}
