package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/fabric"
	"repro/internal/seu"
)

// On-disk layout. One directory per job, keyed by the content-addressed job
// ID, so a resubmitted spec finds its own history:
//
//	<root>/<jobID>/state.json    — Status (rewritten on every transition)
//	<root>/<jobID>/manifest.json — chunk checkpoints: plan entry → blob key
//	<root>/<jobID>/report.json   — final report, exact bytes served to clients
//
// Chunk results themselves live in a fabric.BlobStore as content-addressed
// ChunkPayload blobs; the manifest is the small per-job index into it. The
// manifest stays a local file (not a blob) deliberately: it is mutable
// named state — exactly what content addressing can't express — and it is
// the commit point, so "manifest references blob" doubles as the pin root
// for retention. Every write is write-to-temp + rename, so a crash
// mid-write leaves either the old file or the new one, never a torn
// checkpoint; a crash between blob Put and manifest commit leaves only an
// unreferenced blob, which retention may collect once past MinAge.

type store struct {
	root  string
	blobs fabric.BlobStore

	// pins guards checkpoint blobs of resumable jobs against retention:
	// key → refcount (shared blobs — identical results across jobs — pin
	// once per referencing job). jobPins remembers each job's key set so
	// unpin needs no manifest re-read. The same mutex serializes manifest
	// read-modify-write, so concurrent chunk commits can't lose entries.
	mu      sync.Mutex
	pins    map[string]int
	jobPins map[string]map[string]bool
}

func newStore(root string, blobs fabric.BlobStore) *store {
	return &store{
		root:    root,
		blobs:   blobs,
		pins:    make(map[string]int),
		jobPins: make(map[string]map[string]bool),
	}
}

func (st *store) jobDir(id string) string       { return filepath.Join(st.root, id) }
func (st *store) manifestPath(id string) string { return filepath.Join(st.jobDir(id), "manifest.json") }

// writeFileAtomic writes b to path via a temp file in the same directory.
func writeFileAtomic(path string, b []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

func (st *store) saveStatus(stat *Status) error {
	b, err := json.MarshalIndent(stat, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(st.jobDir(stat.ID), "state.json"), append(b, '\n'))
}

// loadAll returns every persisted job status, oldest submission first.
func (st *store) loadAll() ([]*Status, error) {
	entries, err := os.ReadDir(st.root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []*Status
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(st.root, e.Name(), "state.json"))
		if err != nil {
			continue // half-created job dir; ignore
		}
		var stat Status
		if err := json.Unmarshal(b, &stat); err != nil || stat.ID != e.Name() {
			continue
		}
		out = append(out, &stat)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SubmittedAt.Before(out[j].SubmittedAt) })
	return out, nil
}

// manifest indexes a job's committed chunks, ascending by chunk index.
type manifest struct {
	Chunks []manifestEntry `json:"chunks"`
}

// manifestEntry pairs a plan entry with the blob holding its result, so
// resume can reject checkpoints from a stale decomposition (e.g. a daemon
// restarted with a different chunk count) before ever fetching the blob.
type manifestEntry struct {
	Spec seu.ChunkSpec `json:"spec"`
	Blob string        `json:"blob"`
}

// loadManifestLocked reads the job's manifest ({} when absent). Callers
// hold st.mu.
func (st *store) loadManifestLocked(id string) (*manifest, error) {
	b, err := os.ReadFile(st.manifestPath(id))
	if os.IsNotExist(err) {
		return &manifest{}, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		// A corrupt manifest loses resume progress but nothing else — the
		// job simply recomputes.
		return &manifest{}, nil
	}
	return &m, nil
}

func (st *store) saveManifestLocked(id string, m *manifest) error {
	sort.Slice(m.Chunks, func(i, j int) bool { return m.Chunks[i].Spec.Index < m.Chunks[j].Spec.Index })
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(st.manifestPath(id), append(b, '\n'))
}

// saveChunk checkpoints one locally-computed chunk: Put the payload blob,
// then commit it to the manifest. The fabric path skips the Put (the
// worker already uploaded) and calls commitChunk directly.
func (st *store) saveChunk(id string, spec seu.ChunkSpec, cr *seu.ChunkResult) error {
	b, err := json.Marshal(fabric.ChunkPayload{Spec: spec, Result: cr})
	if err != nil {
		return err
	}
	key, err := st.blobs.Put(b)
	if err != nil {
		return err
	}
	return st.commitChunk(id, spec, key)
}

// commitChunk records spec → key in the job's manifest and pins the blob.
// Re-commits of the same chunk are idempotent.
func (st *store) commitChunk(id string, spec seu.ChunkSpec, key string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	m, err := st.loadManifestLocked(id)
	if err != nil {
		return err
	}
	replaced := false
	for i := range m.Chunks {
		if m.Chunks[i].Spec.Index == spec.Index {
			if m.Chunks[i].Spec == spec && m.Chunks[i].Blob == key {
				return nil // duplicate commit, byte-identical no-op
			}
			m.Chunks[i] = manifestEntry{Spec: spec, Blob: key}
			replaced = true
			break
		}
	}
	if !replaced {
		m.Chunks = append(m.Chunks, manifestEntry{Spec: spec, Blob: key})
	}
	if err := st.saveManifestLocked(id, m); err != nil {
		return err
	}
	st.pinKeyLocked(id, key)
	return nil
}

// loadChunks returns the job's valid checkpoints keyed by chunk index, and
// pins every referenced blob for the duration of the job. A checkpoint
// whose stored range disagrees with the current plan, whose blob is gone,
// or whose blob fails hash validation is dropped from the manifest rather
// than trusted.
func (st *store) loadChunks(id string, plan []seu.ChunkSpec) (map[int]*seu.ChunkResult, error) {
	byIndex := make(map[int]seu.ChunkSpec, len(plan))
	for _, cs := range plan {
		byIndex[cs.Index] = cs
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	m, err := st.loadManifestLocked(id)
	if err != nil {
		return nil, err
	}
	out := make(map[int]*seu.ChunkResult)
	kept := m.Chunks[:0]
	for _, ent := range m.Chunks {
		want, ok := byIndex[ent.Spec.Index]
		if !ok || want != ent.Spec {
			continue // stale decomposition
		}
		b, err := st.blobs.Get(ent.Blob)
		if err != nil {
			continue // missing or corrupt (hash-validation failure): recompute
		}
		var cp fabric.ChunkPayload
		if err := json.Unmarshal(b, &cp); err != nil || cp.Result == nil ||
			cp.Spec != ent.Spec || cp.Result.Index != ent.Spec.Index {
			continue
		}
		kept = append(kept, ent)
		out[ent.Spec.Index] = cp.Result
	}
	if len(kept) != len(m.Chunks) {
		m.Chunks = kept
		if err := st.saveManifestLocked(id, m); err != nil {
			return nil, err
		}
	}
	for _, ent := range kept {
		st.pinKeyLocked(id, ent.Blob)
	}
	return out, nil
}

// chunkCount reports how many chunks the job's manifest references — the
// checkpoint-density observable tests assert on.
func (st *store) chunkCount(id string) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	m, err := st.loadManifestLocked(id)
	if err != nil {
		return 0
	}
	return len(m.Chunks)
}

func (st *store) pinKeyLocked(id, key string) {
	set := st.jobPins[id]
	if set == nil {
		set = make(map[string]bool)
		st.jobPins[id] = set
	}
	if !set[key] {
		set[key] = true
		st.pins[key]++
	}
}

// pinJob pins every blob the job's manifest references — called at startup
// for each resumable (non-done) job, before any retention sweep runs.
func (st *store) pinJob(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	m, err := st.loadManifestLocked(id)
	if err != nil {
		return
	}
	for _, ent := range m.Chunks {
		st.pinKeyLocked(id, ent.Blob)
	}
}

// unpinJob releases a job's pins once it reaches StateDone — its report is
// assembled and persisted, so its chunk blobs are retention fodder.
func (st *store) unpinJob(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for key := range st.jobPins[id] {
		if st.pins[key]--; st.pins[key] <= 0 {
			delete(st.pins, key)
		}
	}
	delete(st.jobPins, id)
}

// isPinned is the retention callback: it shares st.mu with commitChunk and
// loadChunks, so a sweep can never observe a blob between "referenced by a
// manifest" and "pinned".
func (st *store) isPinned(key string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.pins[key] > 0
}

func (st *store) saveReport(id string, b []byte) error {
	return writeFileAtomic(filepath.Join(st.jobDir(id), "report.json"), b)
}

func (st *store) loadReport(id string) ([]byte, error) {
	return os.ReadFile(filepath.Join(st.jobDir(id), "report.json"))
}
