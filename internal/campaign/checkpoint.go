package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/seu"
)

// On-disk layout. One directory per job, keyed by the content-addressed job
// ID, so a resubmitted spec finds its own history:
//
//	<root>/<jobID>/state.json    — Status (rewritten on every transition)
//	<root>/<jobID>/chunks/N.json — one checkpoint per completed SEU chunk
//	<root>/<jobID>/report.json   — final report, exact bytes served to clients
//
// Every write is write-to-temp + rename, so a crash mid-write leaves either
// the old file or the new one, never a torn checkpoint.

type store struct{ root string }

func (st store) jobDir(id string) string   { return filepath.Join(st.root, id) }
func (st store) chunkDir(id string) string { return filepath.Join(st.jobDir(id), "chunks") }

// writeFileAtomic writes b to path via a temp file in the same directory.
func writeFileAtomic(path string, b []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

func (st store) saveStatus(stat *Status) error {
	b, err := json.MarshalIndent(stat, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(st.jobDir(stat.ID), "state.json"), append(b, '\n'))
}

// loadAll returns every persisted job status, oldest submission first.
func (st store) loadAll() ([]*Status, error) {
	entries, err := os.ReadDir(st.root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []*Status
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(st.root, e.Name(), "state.json"))
		if err != nil {
			continue // half-created job dir; ignore
		}
		var stat Status
		if err := json.Unmarshal(b, &stat); err != nil || stat.ID != e.Name() {
			continue
		}
		out = append(out, &stat)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SubmittedAt.Before(out[j].SubmittedAt) })
	return out, nil
}

// chunkCheckpoint pairs a chunk's result with the plan entry that produced
// it, so resume can reject checkpoints from a stale decomposition (e.g. a
// daemon restarted with a different chunk count).
type chunkCheckpoint struct {
	Spec   seu.ChunkSpec    `json:"spec"`
	Result *seu.ChunkResult `json:"result"`
}

func (st store) saveChunk(id string, spec seu.ChunkSpec, cr *seu.ChunkResult) error {
	b, err := json.Marshal(chunkCheckpoint{Spec: spec, Result: cr})
	if err != nil {
		return err
	}
	path := filepath.Join(st.chunkDir(id), fmt.Sprintf("%d.json", spec.Index))
	return writeFileAtomic(path, append(b, '\n'))
}

// loadChunks returns the job's valid checkpoints keyed by chunk index. A
// checkpoint whose stored range disagrees with the current plan is dropped
// (and deleted) rather than trusted.
func (st store) loadChunks(id string, plan []seu.ChunkSpec) (map[int]*seu.ChunkResult, error) {
	byIndex := make(map[int]seu.ChunkSpec, len(plan))
	for _, cs := range plan {
		byIndex[cs.Index] = cs
	}
	entries, err := os.ReadDir(st.chunkDir(id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out := make(map[int]*seu.ChunkResult)
	for _, e := range entries {
		path := filepath.Join(st.chunkDir(id), e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var cp chunkCheckpoint
		if err := json.Unmarshal(b, &cp); err != nil || cp.Result == nil {
			os.Remove(path)
			continue
		}
		if want, ok := byIndex[cp.Spec.Index]; !ok || want != cp.Spec || cp.Result.Index != cp.Spec.Index {
			os.Remove(path)
			continue
		}
		out[cp.Spec.Index] = cp.Result
	}
	return out, nil
}

func (st store) saveReport(id string, b []byte) error {
	return writeFileAtomic(filepath.Join(st.jobDir(id), "report.json"), b)
}

func (st store) loadReport(id string) ([]byte, error) {
	return os.ReadFile(filepath.Join(st.jobDir(id), "report.json"))
}
