package campaign

import "sync"

// broker fans job events out to stream subscribers. Subscriber channels are
// buffered; a subscriber that stops draining loses intermediate events
// rather than blocking the scheduler — progress records are snapshots, so
// the latest one supersedes anything dropped.
type broker struct {
	mu   sync.Mutex
	subs map[chan Event]string // channel -> job ID filter ("" = all jobs)
}

func newBroker() *broker {
	return &broker{subs: make(map[chan Event]string)}
}

// subscribe registers a listener for job's events (all jobs when job == "").
// The caller must cancel() when done.
func (b *broker) subscribe(job string) (ch chan Event, cancel func()) {
	ch = make(chan Event, 64)
	b.mu.Lock()
	b.subs[ch] = job
	b.mu.Unlock()
	return ch, func() {
		b.mu.Lock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
		b.mu.Unlock()
	}
}

func (b *broker) publish(ev Event) {
	b.mu.Lock()
	for ch, filter := range b.subs {
		if filter != "" && filter != ev.Job {
			continue
		}
		select {
		case ch <- ev:
		default: // slow subscriber: drop; a later snapshot supersedes this one
		}
	}
	b.mu.Unlock()
}
