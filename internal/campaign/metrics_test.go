package campaign

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mission"
	"repro/internal/seu"
)

// metricValue extracts the value of a plain (unlabelled) metric line from a
// Prometheus text exposition.
func metricValue(t *testing.T, text, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimPrefix(line, name+" "), 10, 64)
		if err != nil {
			t.Fatalf("metric %s: unparseable value in %q: %v", name, line, err)
		}
		return v
	}
	t.Fatalf("metric %s missing from exposition:\n%s", name, text)
	return 0
}

// TestMetricsExportKernelCounters pins the wiring between the seu package's
// process-wide vector-kernel caches (pre-plan cache, replica pool) and the
// daemon's /metrics plane: each counter must appear with HELP/TYPE metadata
// and reflect the seu accessors' values at render time.
func TestMetricsExportKernelCounters(t *testing.T) {
	planHits, planMisses := seu.PlanCacheStats()
	replicaHits, replicaMisses := seu.PoolStats()
	sweeps, drains, refills, ffwd := seu.VectorKernelStats()

	var buf bytes.Buffer
	newMetrics(2).WritePrometheus(&buf, map[State]int{})
	text := buf.String()

	for name, want := range map[string]int64{
		"campaignd_plan_cache_hits_total":           planHits,
		"campaignd_plan_cache_misses_total":         planMisses,
		"campaignd_replica_pool_hits_total":         replicaHits,
		"campaignd_replica_pool_misses_total":       replicaMisses,
		"campaignd_vector_sweeps_total":             sweeps,
		"campaignd_vector_worklist_drains_total":    drains,
		"campaignd_vector_lane_refills_total":       refills,
		"campaignd_vector_fastforward_cycles_total": ffwd,
	} {
		for _, meta := range []string{"# HELP " + name + " ", "# TYPE " + name + " counter"} {
			if !strings.Contains(text, meta) {
				t.Errorf("exposition missing %q", meta)
			}
		}
		// Counters are process-wide and monotonic; campaigns run by other
		// tests in this package can only have advanced them since capture.
		if got := metricValue(t, text, name); got < want {
			t.Errorf("%s = %d, want >= %d (captured from seu before render)", name, got, want)
		}
	}
}

// TestMetricsKernelCountersAdvance renders the exposition before and after a
// vector campaign on a freshly placed design: the fresh placement guarantees
// a plan-cache miss, so the counter must move between renders — proving the
// exposition reads the live seu counters rather than a snapshot taken at
// daemon construction.
func TestMetricsKernelCountersAdvance(t *testing.T) {
	m := newMetrics(1)
	render := func() string {
		var buf bytes.Buffer
		m.WritePrometheus(&buf, map[State]int{})
		return buf.String()
	}
	before := metricValue(t, render(), "campaignd_plan_cache_misses_total")
	sweepsBefore := metricValue(t, render(), "campaignd_vector_sweeps_total")

	spec := core.CampaignSpec{Design: "LFSR 18", Geom: "tiny", Seed: 1,
		Sample: 0.05, Workers: 1, Kernel: "vector"}
	cfg, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Build(cfg, spec.Design)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := core.Testbed(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seu.Run(bd, cfg.CampaignOptions(true)); err != nil {
		t.Fatal(err)
	}

	after := metricValue(t, render(), "campaignd_plan_cache_misses_total")
	if after <= before {
		t.Fatalf("plan-cache miss counter: render saw %d then %d after a fresh vector campaign, want an increase (stale snapshot?)", before, after)
	}
	// The campaign ran lanes through the event drain, so settling activity
	// must be visible too.
	sweepsAfter := metricValue(t, render(), "campaignd_vector_sweeps_total")
	if sweepsAfter <= sweepsBefore {
		t.Fatalf("vector sweeps counter: render saw %d then %d after a vector campaign, want an increase", sweepsBefore, sweepsAfter)
	}
}

// TestMetricsMissionCountersAdvance pins the mission-simulator counters on
// the /metrics plane: rendering before and after a small fleet run must show
// the scrub-cycle, strike, and telemetry counters moving — the exposition
// reads the live mission package counters.
func TestMetricsMissionCountersAdvance(t *testing.T) {
	m := newMetrics(1)
	render := func() string {
		var buf bytes.Buffer
		m.WritePrometheus(&buf, map[State]int{})
		return buf.String()
	}
	names := []string{
		"campaignd_mission_boards_total",
		"campaignd_mission_strikes_total",
		"campaignd_mission_scrub_cycles_total",
		"campaignd_mission_repairs_total",
		"campaignd_mission_full_reconfigs_total",
		"campaignd_mission_telemetry_frames_total",
		"campaignd_mission_telemetry_bytes_total",
	}
	text := render()
	before := make(map[string]int64)
	for _, n := range names {
		for _, meta := range []string{"# HELP " + n + " ", "# TYPE " + n + " counter"} {
			if !strings.Contains(text, meta) {
				t.Errorf("exposition missing %q", meta)
			}
		}
		before[n] = metricValue(t, text, n)
	}

	if _, err := mission.Run(mission.Config{
		Seed:     1,
		Boards:   4,
		Duration: 24 * time.Hour,
		Design:   "LFSR 18",
		Geom:     device.Tiny(),
	}); err != nil {
		t.Fatal(err)
	}

	text = render()
	for _, n := range []string{
		"campaignd_mission_boards_total",
		"campaignd_mission_strikes_total",
		"campaignd_mission_scrub_cycles_total",
	} {
		if got := metricValue(t, text, n); got <= before[n] {
			t.Errorf("%s: render saw %d then %d after a fleet run, want an increase", n, before[n], got)
		}
	}
	for _, n := range names {
		if got := metricValue(t, text, n); got < before[n] {
			t.Errorf("%s went backwards: %d -> %d", n, before[n], got)
		}
	}
}
