package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
)

// fabricRig is a whole distributed deployment in one process: a coordinator
// with an embedded blob server (what `campaignd -fabric=coordinator` runs),
// the scheduler wired through it, and in-process worker nodes speaking the
// real HTTP protocol against an httptest listener.
type fabricRig struct {
	store *fabric.MemStore
	coord *fabric.Coordinator
	srv   *httptest.Server
	sched *Scheduler

	mu      sync.Mutex
	cancels []context.CancelFunc
	wg      sync.WaitGroup
}

func newFabricRig(t *testing.T, dir string, leaseTTL time.Duration) *fabricRig {
	t.Helper()
	store := fabric.NewMemStore()
	coord, err := fabric.NewCoordinator(fabric.CoordConfig{
		Store:      store,
		LeaseTTL:   leaseTTL,
		SweepEvery: leaseTTL / 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/api/v1/fabric/", fabric.Handler(coord))
	mux.Handle("/api/v1/blobs", fabric.BlobHandler(store))
	mux.Handle("/api/v1/blobs/", fabric.BlobHandler(store))
	srv := httptest.NewServer(mux)
	sched, err := New(Config{Dir: dir, Workers: 1, Blobs: store, Coordinator: coord})
	if err != nil {
		srv.Close()
		coord.Close()
		t.Fatal(err)
	}
	rig := &fabricRig{store: store, coord: coord, srv: srv, sched: sched}
	t.Cleanup(func() {
		rig.sched.Stop(time.Minute)
		rig.killAllWorkers()
		rig.wg.Wait()
		rig.srv.Close()
		rig.coord.Close()
	})
	return rig
}

// startWorker boots one worker node; the returned cancel is its kill switch
// (a cancelled worker stops mid-lease without completing, like a SIGKILL).
func (rig *fabricRig) startWorker(name string, slots int) context.CancelFunc {
	ctx, cancel := context.WithCancel(context.Background())
	rig.mu.Lock()
	rig.cancels = append(rig.cancels, cancel)
	rig.mu.Unlock()
	rig.wg.Add(1)
	go func() {
		defer rig.wg.Done()
		fabric.RunWorker(ctx, fabric.WorkerOptions{
			Coordinator: rig.srv.URL,
			Name:        name,
			Slots:       slots,
			Poll:        5 * time.Millisecond,
		})
	}()
	return cancel
}

func (rig *fabricRig) killAllWorkers() {
	rig.mu.Lock()
	defer rig.mu.Unlock()
	for _, cancel := range rig.cancels {
		cancel()
	}
}

// A 3-worker fabric must produce a report byte-identical to the
// single-node scheduler and the direct `seusim -json` oracle.
func TestFabricReportByteIdentical(t *testing.T) {
	spec := testSpec()
	want := refReportBytes(t, spec)
	rig := newFabricRig(t, t.TempDir(), time.Minute)
	for i, name := range []string{"node-a", "node-b", "node-c"} {
		rig.startWorker(name, 1+i%2)
	}

	stat, err := rig.sched.Submit(JobSpec{Kind: KindSEU, SEU: &spec})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, rig.sched, stat.ID, StateDone)
	if fin.ChunksDone != fin.ChunksTotal || fin.ChunksTotal < 2 {
		t.Fatalf("chunks done %d/%d, want a complete multi-chunk sweep", fin.ChunksDone, fin.ChunksTotal)
	}
	got, err := rig.sched.Report(stat.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fabric report differs from direct run:\nfabric: %s\ndirect: %s", got, want)
	}
	st := rig.coord.Stats()
	if st.ChunksCommitted != uint64(fin.ChunksTotal) {
		t.Fatalf("coordinator committed %d chunks, want %d", st.ChunksCommitted, fin.ChunksTotal)
	}
}

// Killing a worker mid-run (its leases never complete, expire, and are
// stolen by the survivors) must not change a byte of the final report.
func TestFabricWorkerKilledMidRun(t *testing.T) {
	spec := testSpec()
	want := refReportBytes(t, spec)
	// Leases short enough that the victim's chunks re-issue quickly, but
	// with ample margin over a chunk's runtime (which balloons under
	// -race) — honest completions must not routinely outlive their lease.
	rig := newFabricRig(t, t.TempDir(), 2*time.Second)
	victimKill := rig.startWorker("victim", 2)
	rig.startWorker("survivor-a", 1)
	rig.startWorker("survivor-b", 1)

	job := JobSpec{Kind: KindSEU, SEU: &spec}
	events, unsub := rig.sched.Subscribe(job.ID())
	defer unsub()
	stat, err := rig.sched.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the victim as soon as the sweep has visibly started — whatever it
	// holds at that instant is abandoned mid-chunk.
	deadline := time.After(2 * time.Minute)
waitProgress:
	for {
		select {
		case ev := <-events:
			if ev.ChunksDone >= 1 {
				break waitProgress
			}
		case <-deadline:
			t.Fatal("no progress before kill point")
		}
	}
	victimKill()

	fin := waitState(t, rig.sched, stat.ID, StateDone)
	got, err := rig.sched.Report(stat.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report differs after killing a worker mid-run (chunks %d/%d)", fin.ChunksDone, fin.ChunksTotal)
	}
}

// readManifest returns the blob keys a job's manifest references.
func readManifest(t *testing.T, dir, id string) []string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, id, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Chunks []struct {
			Blob string `json:"blob"`
		} `json:"chunks"`
	}
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(m.Chunks))
	for _, c := range m.Chunks {
		keys = append(keys, c.Blob)
	}
	return keys
}

// drainAfterChunks runs the job until at least min chunks checkpoint, then
// drain-stops the scheduler, leaving a resumable manifest behind.
func drainAfterChunks(t *testing.T, s *Scheduler, job JobSpec, min int) *Status {
	t.Helper()
	events, unsub := s.Subscribe(job.ID())
	defer unsub()
	stat, err := s.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Minute)
	for {
		select {
		case ev := <-events:
			if ev.ChunksDone >= min {
				s.Stop(time.Minute)
				return stat
			}
		case <-deadline:
			t.Fatal("no progress before drain point")
		}
	}
}

// A corrupted checkpoint blob must be rejected by hash validation on
// resume and recomputed — never folded into the report.
func TestFabricCorruptBlobRejectedOnResume(t *testing.T) {
	spec := testSpec()
	want := refReportBytes(t, spec)
	dir := t.TempDir()
	mem := fabric.NewMemStore()

	s, err := New(Config{Dir: dir, Workers: 2, Blobs: mem})
	if err != nil {
		t.Fatal(err)
	}
	stat := drainAfterChunks(t, s, JobSpec{Kind: KindSEU, SEU: &spec}, 2)

	keys := readManifest(t, dir, stat.ID)
	if len(keys) < 2 {
		t.Fatalf("only %d checkpoints persisted before drain", len(keys))
	}
	if !mem.CorruptForTest(keys[0]) {
		t.Fatalf("manifest references blob %s but the store has no bytes for it", keys[0])
	}

	s2, err := New(Config{Dir: dir, Workers: 2, Blobs: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop(time.Minute)
	if _, err := s2.Submit(JobSpec{Kind: KindSEU, SEU: &spec}); err != nil {
		t.Fatal(err)
	}
	waitState(t, s2, stat.ID, StateDone)
	got, err := s2.Report(stat.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("report differs after resuming past a corrupted checkpoint blob")
	}
}

// Retention must never delete blobs a resumable job's manifest references,
// even with the most aggressive policy, and even while sweeps race the
// resume. Unpinned garbage in the same store is still collected.
func TestFabricRetentionPinsLiveManifests(t *testing.T) {
	spec := testSpec()
	want := refReportBytes(t, spec)
	dir := t.TempDir()
	mem := fabric.NewMemStore()

	s, err := New(Config{Dir: dir, Workers: 2, Blobs: mem})
	if err != nil {
		t.Fatal(err)
	}
	stat := drainAfterChunks(t, s, JobSpec{Kind: KindSEU, SEU: &spec}, 2)
	keys := readManifest(t, dir, stat.ID)
	if len(keys) == 0 {
		t.Fatal("no checkpoints persisted before drain")
	}
	garbage, err := mem.Put([]byte("orphaned upload no manifest ever committed"))
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic half: a fresh store over the same dir pins the drained
	// job's manifest before any sweep can run, so a delete-everything policy
	// only reaps the garbage.
	st2 := newStore(dir, mem)
	for _, jobStat := range mustLoadAll(t, st2) {
		if jobStat.State != StateDone {
			st2.pinJob(jobStat.ID)
		}
	}
	if _, err := fabric.SweepRetention(mem, fabric.RetentionPolicy{MaxAge: time.Nanosecond}, st2.isPinned); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Get(garbage); err == nil {
		t.Fatal("unpinned garbage survived a delete-everything sweep")
	}
	for _, key := range keys {
		if _, err := mem.Get(key); err != nil {
			t.Fatalf("pinned checkpoint %s was swept: %v", key, err)
		}
	}

	// Racing half: resume under the same policy with sweeps hammering the
	// store concurrently; the report must still assemble byte-identically.
	s2, err := New(Config{Dir: dir, Workers: 2, Blobs: mem,
		Retention: fabric.RetentionPolicy{MaxAge: time.Nanosecond, SweepEvery: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop(time.Minute)
	stopSweeps := make(chan struct{})
	var sweepWG sync.WaitGroup
	sweepWG.Add(1)
	go func() {
		defer sweepWG.Done()
		for {
			select {
			case <-stopSweeps:
				return
			default:
				s2.SweepRetention()
			}
		}
	}()
	if _, err := s2.Submit(JobSpec{Kind: KindSEU, SEU: &spec}); err != nil {
		t.Fatal(err)
	}
	waitState(t, s2, stat.ID, StateDone)
	close(stopSweeps)
	sweepWG.Wait()
	got, err := s2.Report(stat.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("report differs after retention sweeps raced the resume")
	}
}

func mustLoadAll(t *testing.T, st *store) []*Status {
	t.Helper()
	all, err := st.loadAll()
	if err != nil {
		t.Fatal(err)
	}
	return all
}

// The metrics plane exposes the fabric and blob counter blocks — with live
// coordinator numbers when one is embedded.
func TestMetricsExposeFabricCounters(t *testing.T) {
	spec := testSpec()
	rig := newFabricRig(t, t.TempDir(), time.Minute)
	rig.startWorker("node-a", 2)
	stat, err := rig.sched.Submit(JobSpec{Kind: KindSEU, SEU: &spec})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, rig.sched, stat.ID, StateDone)

	var buf bytes.Buffer
	rig.sched.Metrics.WritePrometheus(&buf, rig.sched.JobsByState())
	text := buf.String()
	for _, name := range []string{
		"campaignd_fabric_workers",
		"campaignd_fabric_leases_active",
		"campaignd_fabric_queue_depth",
		"campaignd_fabric_leases_issued_total",
		"campaignd_fabric_leases_expired_total",
		"campaignd_fabric_leases_stolen_total",
		"campaignd_fabric_chunks_committed_total",
		"campaignd_fabric_commit_rejects_total",
		"campaignd_fabric_divergent_duplicates_total",
		"campaignd_blob_puts_total",
		"campaignd_blob_gets_total",
		"campaignd_blob_deletes_total",
		"campaignd_blob_validation_failures_total",
		"campaignd_blob_retention_deletes_total",
	} {
		if !strings.Contains(text, "\n"+name+" ") {
			t.Errorf("metrics missing %s", name)
		}
	}
	if !strings.Contains(text, "campaignd_fabric_workers 1") {
		t.Error("campaignd_fabric_workers should report the one live worker")
	}
	var issued uint64
	if st := rig.coord.Stats(); st.LeasesIssued == 0 {
		t.Errorf("coordinator issued %d leases, want > 0", issued)
	}
}

// The load-test harness drives a live campaignd API and reports per-op
// latency; errors against a healthy server should be zero.
func TestLoadTestHarness(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop(time.Minute)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	spec := testSpec()
	body, err := json.Marshal(JobSpec{Kind: KindSEU, SEU: &spec})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fabric.LoadTest(context.Background(), fabric.LoadTestOptions{
		Server:     srv.URL,
		Clients:    8,
		Requests:   20,
		SubmitBody: body,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load test saw %d errors (rate %.3f): %+v", rep.Errors, rep.ErrorRate, rep.ByOp)
	}
	if rep.Requests != 8*20 {
		t.Fatalf("load test made %d requests, want %d", rep.Requests, 8*20)
	}
	for _, op := range []string{"submit", "list", "status", "metrics", "stream"} {
		st := rep.ByOp[op]
		if st == nil || st.Requests == 0 {
			t.Fatalf("op %s never exercised: %+v", op, rep.ByOp)
		}
	}
	if rep.P99Ms < rep.P50Ms {
		t.Fatalf("p99 %.3fms < p50 %.3fms", rep.P99Ms, rep.P50Ms)
	}
}
