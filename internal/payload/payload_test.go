package payload

import (
	"testing"
	"time"

	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/place"
	"repro/internal/radiation"
)

func system(t *testing.T) *System {
	t.Helper()
	spec, err := designs.ByName("MULT 12")
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(spec.Build(), device.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemShape(t *testing.T) {
	sys := system(t)
	if len(sys.Boards) != BoardCount {
		t.Fatalf("boards = %d", len(sys.Boards))
	}
	for _, b := range sys.Boards {
		if len(b.Devices) != DevicesPerBoard {
			t.Fatalf("devices per board = %d", len(b.Devices))
		}
	}
	for d := 0; d < 9; d++ {
		dev, mgr := sys.Device(d)
		if dev == nil || mgr == nil {
			t.Fatalf("device %d missing", d)
		}
		if dev.Unprogrammed() {
			t.Fatalf("device %d unconfigured", d)
		}
	}
}

func TestQuietMissionUpsetsNearPaperRate(t *testing.T) {
	sys := system(t)
	// 100 hours quiet: expect ~120 upsets (1.2/h for the 9-FPGA system).
	rep, err := sys.RunMission(MissionOptions{Duration: 100 * time.Hour, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Upsets < 80 || rep.Upsets > 170 {
		t.Errorf("upsets in 100h quiet = %d, want ~120", rep.Upsets)
	}
	if rep.ConfigUpsets == 0 {
		t.Error("no config upsets")
	}
	if rep.Detections < rep.ConfigUpsets {
		t.Errorf("detections %d < config upsets %d", rep.Detections, rep.ConfigUpsets)
	}
	// Mean detection latency is bounded by (and averages about half of)
	// the scan cycle.
	if rep.MeanDetectionLatency <= 0 || rep.MeanDetectionLatency > rep.ScanCycle {
		t.Errorf("latency %v outside (0, %v]", rep.MeanDetectionLatency, rep.ScanCycle)
	}
	// With millisecond repair in an hours-long mission, availability is
	// extremely high — the paper's architectural point.
	if rep.Availability < 0.999999 {
		t.Errorf("availability = %f", rep.Availability)
	}
	if rep.String() == "" {
		t.Error("empty report")
	}
}

func TestFlareMissionSeesMoreUpsets(t *testing.T) {
	quietSys := system(t)
	quiet, err := quietSys.RunMission(MissionOptions{Duration: 50 * time.Hour, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	flareSys := system(t)
	flare, err := flareSys.RunMission(MissionOptions{
		Duration: 50 * time.Hour,
		Flares:   []FlareWindow{{Start: 0, End: 50 * time.Hour}},
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Flare rate is 8x quiet.
	if flare.Upsets < 4*quiet.Upsets {
		t.Errorf("flare upsets %d not >> quiet %d", flare.Upsets, quiet.Upsets)
	}
}

func TestDevicesStayGoldenAfterMission(t *testing.T) {
	sys := system(t)
	if _, err := sys.RunMission(MissionOptions{Duration: 200 * time.Hour, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	// Scrubbing must have returned every device's configuration to golden.
	for d := 0; d < 9; d++ {
		dev, _ := sys.Device(d)
		if !dev.ConfigMemory().Equal(sys.golden) {
			t.Fatalf("device %d configuration diverged from golden", d)
		}
	}
}

func TestPeriodicRefreshRestoresHalfLatches(t *testing.T) {
	sys := system(t)
	rep, err := sys.RunMission(MissionOptions{
		Duration:             300 * time.Hour,
		Seed:                 13,
		PeriodicFullReconfig: 50 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullReconfigs < 5*9 {
		t.Errorf("full reconfigs = %d, want >= %d (periodic policy)", rep.FullReconfigs, 5*9)
	}
	// Half-latch keepers are back at 1 everywhere after the last refresh.
	dev, _ := sys.Device(0)
	for _, site := range dev.HalfLatchSites()[:20] {
		_ = site
	}
}

func TestMissionRejectsZeroDuration(t *testing.T) {
	sys := system(t)
	if _, err := sys.RunMission(MissionOptions{}); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestUpsetKindPartitionIsPhysical(t *testing.T) {
	sys := system(t)
	rep, err := sys.RunMission(MissionOptions{Duration: 3000 * time.Hour, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// Config bits dominate the cross-section (paper: 99.58% of the
	// sensitive cross-section is configuration bits).
	frac := float64(rep.UpsetsByKind[radiation.StrikeConfig]) / float64(rep.Upsets)
	if frac < 0.97 {
		t.Errorf("config-strike fraction = %.4f, want > 0.97", frac)
	}
	if rep.ConfigUpsets+rep.HiddenUpsets != rep.Upsets {
		t.Errorf("kind partition inconsistent: %d + %d != %d", rep.ConfigUpsets, rep.HiddenUpsets, rep.Upsets)
	}
}

func TestGoldenComesFromECCFlash(t *testing.T) {
	sys := system(t)
	if sys.Flash == nil || len(sys.Flash.Names()) != 1 {
		t.Fatal("golden bitstream not stored in flash")
	}
	// Corrupt a device, then scan its board: the repair frames come out of
	// the flash-backed golden.
	dev, mgr := sys.Device(3)
	dev.InjectBit(1234)
	dets, err := mgr.ScanDevice(0) // device 3 is board 1, slot 0
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 {
		t.Fatalf("detections = %v", dets)
	}
	if !dev.ConfigMemory().Equal(sys.golden) {
		t.Fatal("device not restored from flash golden")
	}
}
