// Package payload simulates the paper's flight system (§II, Figs. 1-3): a
// space-based reconfigurable radio with three compute boards, each carrying
// three Virtex devices and a radiation-hardened Actel fault manager, a
// RAD6000 microprocessor, and flash holding the golden bitstreams. The
// mission simulation drives the system through the paper's LEO upset
// environment (1.2 upsets/hour quiet, 9.6/hour during flares for the
// nine-FPGA system) and measures what the scrubbing architecture delivers:
// detection latency bounded by the 180 ms scan cycle and the resulting
// availability.
package payload

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bitstream"
	"repro/internal/flash"
	"repro/internal/fpga"
	"repro/internal/place"
	"repro/internal/radiation"
	"repro/internal/scrub"
)

// BoardCount and DevicesPerBoard mirror the flight chassis.
const (
	BoardCount      = 3
	DevicesPerBoard = 3
)

// Board is one RCC compute board: three devices and a fault manager.
type Board struct {
	Devices []*fpga.FPGA
	Ports   []*fpga.Port
	Manager *scrub.Manager
}

// System is the full nine-FPGA payload.
type System struct {
	Boards []*Board
	Placed *place.Placed
	// Flash is the ECC-protected nonvolatile store holding the golden
	// bitstream (the microprocessor fetches repair frames through it).
	Flash  *flash.Store
	golden *bitstream.Memory
}

// New builds the payload with every device running the placed design (the
// devices share a pinout, so one bitstream loads anywhere — §II-A). The
// golden bitstream is stored in — and fetched back through — the
// ECC-protected flash module, as on the flight system.
func New(p *place.Placed, _ int64) (*System, error) {
	sys := &System{Placed: p}
	store := flash.NewStore(flash.New(flash.FlightFlashBytes))
	if err := store.Put("golden", p.Bitstream()); err != nil {
		return nil, err
	}
	sys.Flash = store
	bs, err := store.Get("golden", p.Geom)
	if err != nil {
		return nil, err
	}
	goldenMem := bitstream.NewMemory(p.Geom)
	if _, err := bs.Apply(goldenMem); err != nil {
		return nil, err
	}
	sys.golden = goldenMem
	for bi := 0; bi < BoardCount; bi++ {
		bd := &Board{}
		var goldens []*bitstream.Memory
		for di := 0; di < DevicesPerBoard; di++ {
			f := fpga.New(p.Geom)
			if err := f.FullConfigure(bs); err != nil {
				return nil, err
			}
			bd.Devices = append(bd.Devices, f)
			bd.Ports = append(bd.Ports, fpga.NewPort(f))
			goldens = append(goldens, sys.golden)
		}
		m, err := scrub.New(bd.Ports, goldens, nil)
		if err != nil {
			return nil, err
		}
		bd.Manager = m
		sys.Boards = append(sys.Boards, bd)
	}
	return sys, nil
}

// Device returns device d (0..8) and its board's manager.
func (s *System) Device(d int) (*fpga.FPGA, *scrub.Manager) {
	return s.Boards[d/DevicesPerBoard].Devices[d%DevicesPerBoard], s.Boards[d/DevicesPerBoard].Manager
}

// FlareWindow is a solar-flare interval within the mission.
type FlareWindow struct{ Start, End time.Duration }

// MissionOptions configure a mission run.
type MissionOptions struct {
	Duration time.Duration
	Flares   []FlareWindow
	Seed     int64
	// PeriodicFullReconfig, when non-zero, reloads every device with the
	// full bitstream (restoring half-latches) at this interval — the
	// blind-scrub policy ablation.
	PeriodicFullReconfig time.Duration
}

// MissionReport summarizes a mission.
type MissionReport struct {
	Duration time.Duration

	Upsets        int
	UpsetsByKind  map[radiation.StrikeKind]int
	ConfigUpsets  int
	HiddenUpsets  int
	Detections    int
	Repairs       int
	FullReconfigs int

	// MeanDetectionLatency is the average config-upset residence time:
	// bounded by the scan cycle, averaging about half of it.
	MeanDetectionLatency time.Duration
	// Availability is 1 - (config-corrupted device time)/(device time).
	Availability float64
	// ScanCycle is one board's no-error scan period.
	ScanCycle time.Duration
}

func (r *MissionReport) String() string {
	return fmt.Sprintf("mission %v: %d upsets (%d config, %d hidden), %d detections, %d repairs, %d full reconfigs, mean latency %v, availability %.6f",
		r.Duration, r.Upsets, r.ConfigUpsets, r.HiddenUpsets, r.Detections, r.Repairs, r.FullReconfigs,
		r.MeanDetectionLatency.Round(time.Millisecond), r.Availability)
}

// RunMission drives the payload through the orbit environment,
// event-driven: the timeline jumps from upset to upset (scans that find
// nothing only contribute their modelled period). Strikes are drawn from
// the radiation cross-section; configuration upsets are detected at the
// next scan boundary and repaired by partial reconfiguration; an
// unprogrammed device costs a full reconfiguration.
func (s *System) RunMission(opts MissionOptions) (*MissionReport, error) {
	return s.RunMissionContext(context.Background(), opts)
}

// RunMissionContext is RunMission with cancellation: ctx is checked at every
// event-loop step (upset arrival or refresh), so an aborted mission stops
// with every device in a consistent, fully repaired-or-corrupted state
// rather than mid-scan.
func (s *System) RunMissionContext(ctx context.Context, opts MissionOptions) (*MissionReport, error) {
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("payload: non-positive mission duration")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	quiet := radiation.LEOQuiet(opts.Seed + 1)
	flare := radiation.LEOFlare(opts.Seed + 2)
	scanCycle := s.Boards[0].Manager.ScanCycleTime()

	rep := &MissionReport{
		Duration:     opts.Duration,
		UpsetsByKind: make(map[radiation.StrikeKind]int),
		ScanCycle:    scanCycle,
	}
	inFlare := func(t time.Duration) bool {
		for _, w := range opts.Flares {
			if t >= w.Start && t < w.End {
				return true
			}
		}
		return false
	}
	var corrupted time.Duration
	var latencySum time.Duration
	nextRefresh := opts.PeriodicFullReconfig

	t := time.Duration(0)
	for t < opts.Duration {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		src := quiet
		if inFlare(t) {
			src = flare
		}
		// Aggregate arrival across all nine devices.
		perDev := src.UpsetsPerSecond
		agg := perDev * float64(BoardCount*DevicesPerBoard)
		wait := time.Duration(rng.ExpFloat64() / agg * float64(time.Second))
		// Do not skip past a flare boundary or a periodic refresh.
		step := wait
		if opts.PeriodicFullReconfig > 0 && nextRefresh-t < step {
			step = nextRefresh - t
		}
		if t+step > opts.Duration {
			break
		}
		t += step
		if opts.PeriodicFullReconfig > 0 && t >= nextRefresh {
			for d := 0; d < BoardCount*DevicesPerBoard; d++ {
				dev, _ := s.Device(d)
				port := s.Boards[d/DevicesPerBoard].Ports[d%DevicesPerBoard]
				if err := port.FullConfigure(bitstream.Full(s.golden)); err != nil {
					return nil, err
				}
				_ = dev
			}
			rep.FullReconfigs += BoardCount * DevicesPerBoard
			nextRefresh += opts.PeriodicFullReconfig
			continue
		}

		// An upset lands on a uniformly chosen device.
		d := rng.Intn(BoardCount * DevicesPerBoard)
		dev, mgr := s.Device(d)
		st := src.Draw(dev)
		radiation.Apply(dev, st)
		rep.Upsets++
		rep.UpsetsByKind[st.Kind]++

		switch st.Kind {
		case radiation.StrikeConfig, radiation.StrikeControl:
			if st.Kind == radiation.StrikeConfig {
				rep.ConfigUpsets++
			} else {
				rep.HiddenUpsets++
			}
			// Detected at a uniformly distributed point of the scan cycle.
			latency := time.Duration(rng.Float64() * float64(scanCycle))
			latencySum += latency
			corrupted += latency
			// Scan until clean: an upset that flips a LUT into SRL mode
			// makes the readback itself corrupt the LUT's (now live)
			// content — the paper's §II-C hazard — which the following
			// scan cycle then catches.
			for pass := 0; pass < 4; pass++ {
				dets, err := mgr.ScanDevice(d % DevicesPerBoard)
				if err != nil {
					return nil, err
				}
				rep.Detections += len(dets)
				if len(dets) == 0 {
					break
				}
				if pass > 0 {
					corrupted += scanCycle / DevicesPerBoard
				}
			}
		default:
			// Half-latch and FF upsets: invisible to the scrubber. FF
			// upsets are transient design state; half-latch damage persists
			// until the next full reconfiguration (periodic refresh or a
			// control-upset recovery).
			rep.HiddenUpsets++
		}
	}
	var totals scrub.Stats
	for _, b := range s.Boards {
		st := b.Manager.Stats()
		totals.Repairs += st.Repairs
		totals.FullReconfigs += st.FullReconfigs
	}
	rep.Repairs = int(totals.Repairs)
	rep.FullReconfigs += int(totals.FullReconfigs)
	if n := rep.ConfigUpsets + int(totals.FullReconfigs); n > 0 {
		rep.MeanDetectionLatency = latencySum / time.Duration(n)
	}
	devTime := opts.Duration * BoardCount * DevicesPerBoard
	rep.Availability = 1 - float64(corrupted)/float64(devTime)
	return rep, nil
}
