// Package halflatch implements the paper's half-latch analysis and the
// RadDRC mitigation tool (§III-C, Figs. 13-14). Half-latches are hidden
// weak keepers supplying constants to unconnected inputs; the CAD flow uses
// them liberally (a large design can depend on hundreds to thousands). They
// are invisible to configuration readback, not restored by partial
// reconfiguration, and upsettable by radiation. RadDRC rewrites a design so
// its constants come from configuration memory instead — scrubbable and
// therefore ~100x more failure-resistant under beam in the paper's tests.
package halflatch

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/fpga"
	"repro/internal/place"
)

// Census reports the half-latch population of a placed design.
type Census struct {
	// TotalSites is every keeper present on the device.
	TotalSites int
	// UsedSites are keepers the design actually depends on: CE keepers of
	// registered sites in CEHalfLatch mode, plus any used LUT input or
	// long-line tap reading an undriven wire.
	UsedSites []fpga.HalfLatchSite
	ByKind    map[fpga.HalfLatchKind]int
}

func (c Census) String() string {
	return fmt.Sprintf("half-latches: %d sites on device, %d used by design (%v)",
		c.TotalSites, len(c.UsedSites), c.ByKind)
}

// Analyze counts the half-latch sites a placed design depends on. It
// instantiates a scratch device to decode the configuration.
func Analyze(p *place.Placed) (Census, error) {
	f := fpga.New(p.Geom)
	if err := f.FullConfigure(p.Bitstream()); err != nil {
		return Census{}, err
	}
	census := Census{ByKind: make(map[fpga.HalfLatchKind]int)}
	all := f.HalfLatchSites()
	census.TotalSites = len(all)
	// Index used sites by the placed design's site list.
	type key struct{ r, c int }
	usedCLB := make(map[key]uint8) // bitmask of used site slots
	for _, s := range p.Sites {
		usedCLB[key{s.R, s.C}] |= 1 << uint(s.O)
	}
	g := p.Geom
	for _, s := range p.Sites {
		// CE keeper: registered site whose FF is in half-latch CE mode.
		if s.Registered {
			mode := device.CEMode(p.Memory.Gather(2, func(i int) device.BitAddr {
				return g.FFBitAddr(s.R, s.C, s.O, device.FFCEModeLo+i)
			}))
			if mode == device.CEHalfLatch {
				site := fpga.HalfLatchSite{Kind: fpga.HLCE, R: s.R, C: s.C, FF: s.O}
				census.UsedSites = append(census.UsedSites, site)
				census.ByKind[fpga.HLCE]++
			}
		}
		// Input keepers: any of this LUT's four inputs selecting an
		// undriven wire.
		for in := 0; in < device.LUTInputs; in++ {
			slot := int(p.Memory.Gather(device.InMuxSelBits, func(i int) device.BitAddr {
				return g.InMuxBitAddr(s.R, s.C, s.O*device.LUTInputs+in, i)
			}))
			ref := g.InputCandidate(s.R, s.C, slot)
			if ref.Kind == device.NetUndriven {
				site := fpga.HalfLatchSite{Kind: fpga.HLInput, R: s.R, C: s.C, Slot: slot}
				census.UsedSites = append(census.UsedSites, site)
				census.ByKind[fpga.HLInput]++
			}
		}
	}
	return census, nil
}

// RadDRC applies the mitigation: every used CE half-latch is rewritten to
// the configuration-constant form (CEConstOne), which lives in scrubbable
// configuration memory instead of a hidden keeper. It returns a new Placed
// with a patched configuration plus the number of sites mitigated.
//
// The paper's tool offered constants from external pins or LUT ROMs; the
// configuration-constant CE mode models the LUT-ROM variant at the fabric
// level.
func RadDRC(p *place.Placed) (*place.Placed, int, error) {
	census, err := Analyze(p)
	if err != nil {
		return nil, 0, err
	}
	patched := *p
	patched.Memory = p.Memory.Clone()
	g := p.Geom
	mitigated := 0
	for _, site := range census.UsedSites {
		if site.Kind != fpga.HLCE {
			continue // input keepers would need re-routing; none are
			// produced by this flow's router for used inputs.
		}
		// CEHalfLatch (00) -> CEConstOne (11).
		patched.Memory.Set(g.FFBitAddr(site.R, site.C, site.FF, device.FFCEModeLo), true)
		patched.Memory.Set(g.FFBitAddr(site.R, site.C, site.FF, device.FFCEModeHi), true)
		mitigated++
	}
	return &patched, mitigated, nil
}
