package halflatch

import (
	"testing"

	"repro/internal/device"
	"repro/internal/fpga"
	"repro/internal/netlist"
	"repro/internal/place"
)

// TestRadDRCIdempotent: a second RadDRC pass over an already-mitigated
// design must find nothing left to rewrite and leave the configuration
// untouched.
func TestRadDRCIdempotent(t *testing.T) {
	p := placedLFSR(t)
	once, n, err := RadDRC(p)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("first pass mitigated nothing; fixture has no CE keepers")
	}
	twice, n2, err := RadDRC(once)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Errorf("second pass mitigated %d sites, want 0", n2)
	}
	if !twice.Memory.Equal(once.Memory) {
		t.Error("second pass modified an already-mitigated configuration")
	}
	census, err := Analyze(once)
	if err != nil {
		t.Fatal(err)
	}
	if census.ByKind[fpga.HLCE] != 0 {
		t.Errorf("%d CE keepers survive mitigation", census.ByKind[fpga.HLCE])
	}
}

// TestRadDRCNoCEDesign: a design whose every flip-flop has an explicitly
// routed clock enable depends on no CE keepers, so RadDRC must be a no-op.
func TestRadDRCNoCEDesign(t *testing.T) {
	b := netlist.NewBuilder("allce")
	in := b.Input("in", 2)
	ce := b.Buf(in[1])
	q0 := b.FFCE(b.Buf(in[0]), ce, false)
	q1 := b.FFCE(q0, ce, true)
	b.Output("O", []netlist.SignalID{q1})
	p, err := place.Place(b.MustBuild(), device.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	census, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if census.ByKind[fpga.HLCE] != 0 {
		t.Fatalf("routed-CE design reports %d CE keepers", census.ByKind[fpga.HLCE])
	}
	mitigated, n, err := RadDRC(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("mitigated %d sites in a keeper-free design", n)
	}
	if !mitigated.Memory.Equal(p.Memory) {
		t.Error("RadDRC modified a keeper-free configuration")
	}
}

// TestKeeperUpsetSurvivesPartialReconfig pins the persistence pathology the
// paper builds its case on (§III-C): an upset half-latch keeper is invisible
// to readback, is NOT restored by rewriting the very frame that configures
// its flip-flop, and is only healed by a full reconfiguration's start-up
// sequence.
func TestKeeperUpsetSurvivesPartialReconfig(t *testing.T) {
	p := placedLFSR(t)
	f := fpga.New(p.Geom)
	if err := f.FullConfigure(p.Bitstream()); err != nil {
		t.Fatal(err)
	}
	census, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	var site fpga.HalfLatchSite
	found := false
	for _, s := range census.UsedSites {
		if s.Kind == fpga.HLCE {
			site, found = s, true
			break
		}
	}
	if !found {
		t.Fatal("fixture has no CE keeper")
	}
	if !f.HalfLatchValue(site) {
		t.Fatal("keeper not at its start-up value after full configuration")
	}

	golden := f.ConfigMemory().Clone()
	port := fpga.NewPort(f)
	f.FlipHalfLatch(site)
	if f.HalfLatchValue(site) {
		t.Fatal("flip did not change the keeper")
	}

	// Readback sees a clean bitstream: the upset lives outside configuration
	// memory entirely.
	if diff := f.ConfigMemory().DiffFrames(golden); len(diff) != 0 {
		t.Fatalf("keeper upset dirtied %d configuration frames", len(diff))
	}

	// Partial reconfiguration of the keeper's own FF frame does not help.
	frame := p.Geom.FFBitAddr(site.R, site.C, site.FF, device.FFCEModeLo).Frame(p.Geom)
	if err := port.WriteFrame(golden.Frame(frame)); err != nil {
		t.Fatal(err)
	}
	if f.HalfLatchValue(site) {
		t.Fatal("partial reconfiguration restored the keeper; only start-up may do that")
	}

	// Full reconfiguration (with start-up) heals it.
	if err := port.FullConfigure(p.Bitstream()); err != nil {
		t.Fatal(err)
	}
	if !f.HalfLatchValue(site) {
		t.Fatal("full reconfiguration failed to restore the keeper")
	}
}
