package halflatch

import (
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/fpga"
	"repro/internal/place"
	"repro/internal/radiation"
)

func placedLFSR(t *testing.T) *place.Placed {
	t.Helper()
	c := designs.LFSRCluster("hl-lfsr", 2, 2, 8)
	p, err := place.Place(c, device.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCensusFindsCEKeepers(t *testing.T) {
	p := placedLFSR(t)
	census, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	// Every FF in the LFSR design lacks an explicit CE, so each registered
	// site contributes one half-latch CE keeper (the CAD-tool default the
	// paper describes).
	st := p.Circuit.Stats()
	if census.ByKind[fpga.HLCE] != st.FFs {
		t.Errorf("CE keepers = %d, want %d (one per FF)", census.ByKind[fpga.HLCE], st.FFs)
	}
	if census.TotalSites <= len(census.UsedSites) {
		t.Error("device should have more keeper sites than the design uses")
	}
	if census.String() == "" {
		t.Error("empty census string")
	}
}

func TestRadDRCRemovesCEKeepers(t *testing.T) {
	p := placedLFSR(t)
	mitigated, n, err := RadDRC(p)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("RadDRC mitigated nothing")
	}
	census, err := Analyze(mitigated)
	if err != nil {
		t.Fatal(err)
	}
	if census.ByKind[fpga.HLCE] != 0 {
		t.Errorf("CE keepers after RadDRC = %d, want 0", census.ByKind[fpga.HLCE])
	}
	// The mitigated design must be functionally identical.
	if err := place.Verify(mitigated, 60, 21); err != nil {
		t.Fatalf("RadDRC changed behaviour: %v", err)
	}
	// The original is untouched.
	orig, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if orig.ByKind[fpga.HLCE] == 0 {
		t.Error("RadDRC mutated the input design")
	}
}

// TestRadDRCBeamResistance reproduces the shape of the paper's Fig. 14
// result: under a beam that only strikes half-latches, the unmitigated
// design fails and the mitigated one shrugs (the paper measured ~100x
// overall resistance for half-latch-dominated failures).
func TestRadDRCBeamResistance(t *testing.T) {
	p := placedLFSR(t)
	mitigated, _, err := RadDRC(p)
	if err != nil {
		t.Fatal(err)
	}
	// A "beam" of pure half-latch strikes.
	xs := radiation.CrossSection{HalfLatchWeight: 1}
	countErrors := func(pl *place.Placed, seed int64) int {
		bd, err := board.New(pl, seed)
		if err != nil {
			t.Fatal(err)
		}
		src := radiation.NewSource(2, xs, seed)
		rep, err := radiation.RunBeam(bd, src, nil, radiation.BeamOptions{
			Observations:         120,
			Window:               500 * time.Millisecond,
			CyclesPerObservation: 20,
			ResyncCycles:         10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.OutputErrors
	}
	before := countErrors(p, 31)
	after := countErrors(mitigated, 31)
	if before == 0 {
		t.Fatal("unmitigated design never failed under half-latch strikes")
	}
	if after*10 >= before {
		t.Errorf("mitigation too weak: %d errors before, %d after", before, after)
	}
}
