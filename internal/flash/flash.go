// Package flash models the payload's nonvolatile configuration storage
// (§II): the 16 MB flash module holding "more than twenty configuration bit
// streams for the Xilinx FPGAs (without compression)", protected by error
// control coding against SEUs that occur while the memory is being
// accessed, plus a directory layer the microprocessor uses to fetch golden
// frames during scrubbing.
package flash

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/bitstream"
	"repro/internal/device"
)

// FlightFlashBytes is the flight module's capacity.
const FlightFlashBytes = 16 << 20

// Stats counts ECC activity.
type Stats struct {
	Reads            int64
	CorrectedSingles int64
	DetectedDoubles  int64
}

// Device is an ECC-protected word-addressable memory: every 64-bit word
// carries a SECDED (single-error-correct, double-error-detect) Hamming
// code, the "error control coding ... to mitigate SEUs that might occur
// while the memory is being accessed".
type Device struct {
	words []uint64
	ecc   []uint8
	stats Stats
}

// New returns a zeroed device of the given byte capacity.
func New(capacityBytes int) *Device {
	n := (capacityBytes + 7) / 8
	d := &Device{words: make([]uint64, n), ecc: make([]uint8, n)}
	for i := range d.words {
		d.ecc[i] = secded(0)
	}
	return d
}

// Capacity returns the device capacity in bytes.
func (d *Device) Capacity() int { return len(d.words) * 8 }

// Clone returns an independent copy of the device: same stored words and
// check bits (including any uncorrected upsets), fresh stats. The mission
// simulator builds one golden flash image and clones it per board, so a
// thousand-board fleet pays the ECC encoding cost once.
func (d *Device) Clone() *Device {
	c := &Device{words: make([]uint64, len(d.words)), ecc: make([]uint8, len(d.ecc))}
	copy(c.words, d.words)
	copy(c.ecc, d.ecc)
	return c
}

// Stats returns ECC activity counters.
func (d *Device) Stats() Stats { return d.stats }

// Extended Hamming(72,64): data bits occupy codeword positions 1..72,
// skipping the power-of-two positions reserved for the seven parity bits;
// an eighth overall-parity bit upgrades single-error correction to
// double-error detection.
var (
	dataPos [64]int // codeword position of data bit i
	posData [73]int // codeword position -> data bit index, or -1
)

func init() {
	for i := range posData {
		posData[i] = -1
	}
	i := 0
	for pos := 1; pos <= 72 && i < 64; pos++ {
		if pos&(pos-1) == 0 { // power of two: parity position
			continue
		}
		dataPos[i] = pos
		posData[pos] = i
		i++
	}
}

// secded computes the 8-bit SECDED code for a 64-bit word.
func secded(w uint64) uint8 {
	var code uint8
	for p := 0; p < 7; p++ {
		var parity uint8
		for i := 0; i < 64; i++ {
			if w&(1<<uint(i)) != 0 && dataPos[i]&(1<<uint(p)) != 0 {
				parity ^= 1
			}
		}
		code |= parity << uint(p)
	}
	overall := uint8(bits.OnesCount64(w)&1) ^ uint8(bits.OnesCount8(code&0x7F)&1)
	return code | overall<<7
}

// writeWord stores a word with fresh ECC.
func (d *Device) writeWord(i int, w uint64) {
	d.words[i] = w
	d.ecc[i] = secded(w)
}

// readWord fetches a word, correcting a single bit error and detecting
// (but not correcting) double errors.
func (d *Device) readWord(i int) (uint64, error) {
	d.stats.Reads++
	w := d.words[i]
	stored := d.ecc[i]
	fresh := secded(w)
	if fresh == stored {
		return w, nil
	}
	synd := int((fresh ^ stored) & 0x7F)
	// Overall parity of the received codeword (data + stored check bits):
	// even when clean, odd for any single physical bit flip.
	overallBad := (bits.OnesCount64(w)+bits.OnesCount8(stored))&1 != 0
	switch {
	case synd != 0 && overallBad:
		// Single-bit error: the syndrome names the codeword position.
		if synd <= 72 && posData[synd] >= 0 {
			// Data bit.
			w ^= 1 << uint(posData[synd])
			d.stats.CorrectedSingles++
			d.writeWord(i, w) // scrub the corrected word back
			return w, nil
		}
		// A stored parity bit flipped; the data is fine.
		d.stats.CorrectedSingles++
		d.ecc[i] = secded(w)
		return w, nil
	case synd == 0 && overallBad:
		// The overall parity bit itself flipped: data is fine.
		d.stats.CorrectedSingles++
		d.ecc[i] = fresh
		return w, nil
	default:
		// Non-zero syndrome without an overall-parity flip: double error.
		d.stats.DetectedDoubles++
		return 0, fmt.Errorf("flash: double-bit error detected at word %d", i)
	}
}

// Write stores bytes at a byte offset (offset and data need not be
// word-aligned).
func (d *Device) Write(offset int64, data []byte) error {
	if offset < 0 || offset+int64(len(data)) > int64(d.Capacity()) {
		return fmt.Errorf("flash: write [%d,%d) out of capacity %d", offset, offset+int64(len(data)), d.Capacity())
	}
	k := 0
	// Head: bytes up to the first word boundary.
	for k < len(data) && (offset+int64(k))&7 != 0 {
		d.writeByte(offset+int64(k), data[k])
		k++
	}
	// Body: whole words, one ECC encode each instead of eight.
	for ; k+8 <= len(data); k += 8 {
		d.writeWord(int((offset+int64(k))>>3), binary.LittleEndian.Uint64(data[k:]))
	}
	// Tail.
	for ; k < len(data); k++ {
		d.writeByte(offset+int64(k), data[k])
	}
	return nil
}

func (d *Device) writeByte(pos int64, b byte) {
	i := int(pos >> 3)
	sh := uint(pos&7) * 8
	w := d.words[i] // raw read: we are overwriting, ECC refreshed below
	w = (w &^ (0xFF << sh)) | uint64(b)<<sh
	d.writeWord(i, w)
}

// Read fetches n bytes from a byte offset through the ECC path.
func (d *Device) Read(offset int64, n int) ([]byte, error) {
	if offset < 0 || offset+int64(n) > int64(d.Capacity()) {
		return nil, fmt.Errorf("flash: read [%d,%d) out of capacity %d", offset, offset+int64(n), d.Capacity())
	}
	out := make([]byte, n)
	for k := 0; k < n; k++ {
		pos := offset + int64(k)
		w, err := d.readWord(int(pos >> 3))
		if err != nil {
			return nil, err
		}
		out[k] = byte(w >> (uint(pos&7) * 8))
	}
	return out, nil
}

// UpsetBit flips one stored bit (a radiation strike on the flash array).
// ECC corrects it on the next read.
func (d *Device) UpsetBit(bitPos int64) {
	d.words[bitPos>>6] ^= 1 << (uint(bitPos) & 63)
}

// Store is the bitstream directory the microprocessor uses: named
// configuration bitstreams packed into the flash.
type Store struct {
	dev  *Device
	next int64
	dir  map[string]extent
}

type extent struct{ off, n int64 }

// NewStore wraps a device with a directory.
func NewStore(dev *Device) *Store {
	return &Store{dev: dev, dir: make(map[string]extent)}
}

// Put stores a serialized bitstream under a name.
func (s *Store) Put(name string, bs *bitstream.Bitstream) error {
	return s.PutBytes(name, bs.Marshal())
}

// PutBytes stores a raw blob under a name — e.g. the golden configuration
// frames concatenated in frame order, so ReadAt can fetch a single repair
// frame through the ECC path without parsing the full bitstream.
func (s *Store) PutBytes(name string, raw []byte) error {
	if _, dup := s.dir[name]; dup {
		return fmt.Errorf("flash: %q already stored", name)
	}
	if err := s.dev.Write(s.next, raw); err != nil {
		return fmt.Errorf("flash: storing %q: %w", name, err)
	}
	s.dir[name] = extent{off: s.next, n: int64(len(raw))}
	s.next += int64(len(raw))
	return nil
}

// ReadAt fetches n bytes at byte offset off within the named blob, through
// the ECC read path. This is the microprocessor's repair-frame fetch: a
// single-bit flash upset inside the extent is corrected (and scrubbed back)
// transparently, a double-bit upset surfaces as an error the caller must
// handle by falling back to a redundant stored copy.
func (s *Store) ReadAt(name string, off int64, n int) ([]byte, error) {
	e, ok := s.dir[name]
	if !ok {
		return nil, fmt.Errorf("flash: no blob %q", name)
	}
	if off < 0 || off+int64(n) > e.n {
		return nil, fmt.Errorf("flash: read [%d,%d) outside %q extent of %d bytes", off, off+int64(n), name, e.n)
	}
	return s.dev.Read(e.off+off, n)
}

// WriteAt overwrites n bytes at byte offset off within the named blob with
// fresh ECC — the repair path after a detected double-bit error, restoring
// the extent from a redundant stored copy.
func (s *Store) WriteAt(name string, off int64, data []byte) error {
	e, ok := s.dir[name]
	if !ok {
		return fmt.Errorf("flash: no blob %q", name)
	}
	if off < 0 || off+int64(len(data)) > e.n {
		return fmt.Errorf("flash: write [%d,%d) outside %q extent of %d bytes", off, off+int64(len(data)), name, e.n)
	}
	return s.dev.Write(e.off+off, data)
}

// Size returns the stored length of the named blob.
func (s *Store) Size(name string) (int64, error) {
	e, ok := s.dir[name]
	if !ok {
		return 0, fmt.Errorf("flash: no blob %q", name)
	}
	return e.n, nil
}

// Clone returns an independent store: the device image is copied (stored
// words, check bits, latent upsets) and the directory duplicated. Stats
// start fresh on the clone.
func (s *Store) Clone() *Store {
	c := &Store{dev: s.dev.Clone(), next: s.next, dir: make(map[string]extent, len(s.dir))}
	for k, v := range s.dir {
		c.dir[k] = v
	}
	return c
}

// Device returns the underlying ECC device (strike injection, stats).
func (s *Store) Device() *Device { return s.dev }

// Get fetches and parses a stored bitstream through the ECC read path.
func (s *Store) Get(name string, g device.Geometry) (*bitstream.Bitstream, error) {
	e, ok := s.dir[name]
	if !ok {
		return nil, fmt.Errorf("flash: no bitstream %q", name)
	}
	raw, err := s.dev.Read(e.off, int(e.n))
	if err != nil {
		return nil, err
	}
	return bitstream.Unmarshal(g, raw)
}

// Names lists stored bitstreams.
func (s *Store) Names() []string {
	out := make([]string, 0, len(s.dir))
	for n := range s.dir {
		out = append(out, n)
	}
	return out
}

// Used returns consumed bytes.
func (s *Store) Used() int64 { return s.next }

// Free returns remaining capacity in bytes.
func (s *Store) Free() int64 { return int64(s.dev.Capacity()) - s.next }
