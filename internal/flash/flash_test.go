package flash

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/fpga"
)

func TestWriteReadRoundTrip(t *testing.T) {
	d := New(4096)
	data := []byte("the golden configuration frame data for device 1")
	if err := d.Write(13, data); err != nil {
		t.Fatal(err)
	}
	back, err := d.Read(13, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(data) {
		t.Fatalf("round trip mismatch: %q", back)
	}
}

func TestBoundsChecking(t *testing.T) {
	d := New(64)
	if err := d.Write(60, make([]byte, 8)); err == nil {
		t.Error("overflowing write accepted")
	}
	if err := d.Write(-1, []byte{1}); err == nil {
		t.Error("negative write accepted")
	}
	if _, err := d.Read(60, 8); err == nil {
		t.Error("overflowing read accepted")
	}
}

func TestECCCorrectsSingleBitUpsets(t *testing.T) {
	d := New(1 << 12)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 512)
	rng.Read(data)
	if err := d.Write(0, data); err != nil {
		t.Fatal(err)
	}
	// 40 separate single-bit upsets in distinct words, each corrected on
	// read.
	for i := 0; i < 40; i++ {
		word := int64(i * 8)
		d.UpsetBit(word*8 + int64(rng.Intn(64)))
	}
	back, err := d.Read(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if back[i] != data[i] {
			t.Fatalf("byte %d not corrected", i)
		}
	}
	if d.Stats().CorrectedSingles < 40 {
		t.Errorf("corrected %d singles, want >= 40", d.Stats().CorrectedSingles)
	}
	// Scrub-on-read: a second read needs no corrections.
	before := d.Stats().CorrectedSingles
	if _, err := d.Read(0, len(data)); err != nil {
		t.Fatal(err)
	}
	if d.Stats().CorrectedSingles != before {
		t.Error("corrected word was not scrubbed back")
	}
}

func TestECCDetectsDoubleBitUpsets(t *testing.T) {
	d := New(256)
	if err := d.Write(0, []byte{0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	d.UpsetBit(3)
	d.UpsetBit(17)
	if _, err := d.Read(0, 8); err == nil {
		t.Fatal("double-bit error not detected")
	}
	if d.Stats().DetectedDoubles == 0 {
		t.Error("double error not counted")
	}
}

func TestSECDEDProperty(t *testing.T) {
	// Any single-bit flip of any word is corrected exactly.
	f := func(w uint64, pos uint8) bool {
		d := New(64)
		d.writeWord(0, w)
		d.words[0] ^= 1 << uint(pos%64)
		got, err := d.readWord(0)
		return err == nil && got == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStoreHoldsTwentyConfigurations(t *testing.T) {
	// The flight module stores "more than twenty configuration bit streams"
	// — check the capacity arithmetic holds for the flight geometry.
	g := device.XQVR1000()
	perBS := int64(len(fpga.NewConfigBuilder(g).FullBitstream().Marshal()))
	if n := int64(FlightFlashBytes) / perBS; n < 20 {
		t.Errorf("flight flash holds only %d full bitstreams (each %d bytes)", n, perBS)
	}
}

func TestStorePutGet(t *testing.T) {
	g := device.Tiny()
	dev := New(1 << 20)
	s := NewStore(dev)
	b := fpga.NewConfigBuilder(g)
	b.SetLUT(2, 2, 0, fpga.TruthNot)
	bs := b.FullBitstream()
	if err := s.Put("radio-v1", bs); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("radio-v1", bs); err == nil {
		t.Error("duplicate name accepted")
	}
	back, err := s.Get("radio-v1", g)
	if err != nil {
		t.Fatal(err)
	}
	m1 := bitstream.NewMemory(g)
	m2 := bitstream.NewMemory(g)
	if _, err := bs.Apply(m1); err != nil {
		t.Fatal(err)
	}
	if _, err := back.Apply(m2); err != nil {
		t.Fatal(err)
	}
	if !m1.Equal(m2) {
		t.Fatal("stored bitstream corrupted")
	}
	if _, err := s.Get("ghost", g); err == nil {
		t.Error("ghost lookup succeeded")
	}
	if len(s.Names()) != 1 || s.Used() <= 0 || s.Free() <= 0 {
		t.Error("directory accounting broken")
	}
}

func TestStoreSurvivesFlashUpset(t *testing.T) {
	// An SEU in the flash while a golden bitstream is stored: ECC corrects
	// it transparently on fetch — the §II design intent.
	g := device.Tiny()
	dev := New(1 << 20)
	s := NewStore(dev)
	b := fpga.NewConfigBuilder(g)
	b.SetLUT(1, 1, 1, fpga.TruthXor2)
	if err := s.Put("golden", b.FullBitstream()); err != nil {
		t.Fatal(err)
	}
	dev.UpsetBit(int64(1000)) // inside the stored stream
	back, err := s.Get("golden", g)
	if err != nil {
		t.Fatal(err)
	}
	m := bitstream.NewMemory(g)
	if _, err := back.Apply(m); err != nil {
		t.Fatal(err)
	}
	want := b.Memory()
	if !m.Equal(want) {
		t.Fatal("flash upset leaked into the fetched bitstream")
	}
	if dev.Stats().CorrectedSingles == 0 {
		t.Error("ECC correction not recorded")
	}
}

func TestDeviceCloneIndependent(t *testing.T) {
	d := New(1024)
	if err := d.Write(0, []byte("golden frame data, word aligned..")); err != nil {
		t.Fatal(err)
	}
	c := d.Clone()
	// Upset the clone heavily; the original must stay clean.
	c.UpsetBit(8)
	c.UpsetBit(9) // double error in word 0 of the clone
	if _, err := d.Read(0, 33); err != nil {
		t.Fatalf("original corrupted by clone upsets: %v", err)
	}
	if _, err := c.Read(0, 8); err == nil {
		t.Fatal("clone double-bit error went undetected")
	}
	if d.Stats().DetectedDoubles != 0 {
		t.Error("clone stats leaked into the original")
	}
}

func TestDeviceCloneCarriesLatentUpsets(t *testing.T) {
	d := New(256)
	if err := d.Write(0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	d.UpsetBit(5) // latent single-bit upset, not yet read
	c := d.Clone()
	if _, err := c.Read(0, 8); err != nil {
		t.Fatal(err)
	}
	if c.Stats().CorrectedSingles != 1 {
		t.Errorf("clone corrected %d singles, want 1 (latent upset must be copied)", c.Stats().CorrectedSingles)
	}
}

func TestStoreReadAt(t *testing.T) {
	s := NewStore(New(4096))
	blob := make([]byte, 300)
	for i := range blob {
		blob[i] = byte(i * 7)
	}
	if err := s.PutBytes("frames", blob); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBytes("frames", blob); err == nil {
		t.Fatal("duplicate PutBytes accepted")
	}
	got, err := s.ReadAt("frames", 30, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob[30:60]) {
		t.Fatalf("ReadAt(30,30) = %x, want %x", got, blob[30:60])
	}
	if n, err := s.Size("frames"); err != nil || n != 300 {
		t.Fatalf("Size = %d, %v; want 300", n, err)
	}
	if _, err := s.ReadAt("frames", 290, 20); err == nil {
		t.Fatal("ReadAt past extent accepted")
	}
	if _, err := s.ReadAt("missing", 0, 1); err == nil {
		t.Fatal("ReadAt on missing blob accepted")
	}
}

func TestStoreCloneSharesImageNotState(t *testing.T) {
	s := NewStore(New(2048))
	blob := []byte("the golden configuration image, frames concatenated in order")
	if err := s.PutBytes("golden", blob); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	got, err := c.ReadAt("golden", 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "golden" {
		t.Fatalf("clone ReadAt = %q", got)
	}
	// Upsets on the clone's device must not reach the original.
	c.Device().UpsetBit(32)
	c.Device().UpsetBit(33)
	if _, err := s.ReadAt("golden", 0, len(blob)); err != nil {
		t.Fatalf("original store corrupted via clone: %v", err)
	}
}

// TestStoreWriteAtRestoresDoubleError models the fallback path the mission
// simulator's golden fetch uses: a double-bit upset in the stored extent
// makes ReadAt fail, WriteAt rewrites the extent with fresh ECC from a
// redundant copy, and the next ReadAt succeeds.
func TestStoreWriteAtRestoresDoubleError(t *testing.T) {
	s := NewStore(New(1024))
	blob := bytes.Repeat([]byte{0xA5, 0x3C}, 64)
	if err := s.PutBytes("golden", blob); err != nil {
		t.Fatal(err)
	}
	// Two upsets in the same word: uncorrectable.
	s.Device().UpsetBit(64 + 3)
	s.Device().UpsetBit(64 + 9)
	if _, err := s.ReadAt("golden", 0, 32); err == nil {
		t.Fatal("double-bit error went undetected by ReadAt")
	}
	if err := s.WriteAt("golden", 0, blob[:32]); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadAt("golden", 0, 32)
	if err != nil {
		t.Fatalf("ReadAt after restore: %v", err)
	}
	if !bytes.Equal(got, blob[:32]) {
		t.Fatal("restored extent does not match the redundant copy")
	}
	if err := s.WriteAt("golden", 100, blob[:64]); err == nil {
		t.Fatal("WriteAt past the extent accepted")
	}
	if err := s.WriteAt("missing", 0, blob[:1]); err == nil {
		t.Fatal("WriteAt on unknown blob accepted")
	}
}
