package mission

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/groundlink"
	"repro/internal/scrub"
)

// Report is the mission report: everything the run produced, in a stable
// JSON form. All floating-point fields are single divisions of integer
// accumulators merged in board-index order, so identical seeds marshal to
// byte-identical reports at any worker count.
type Report struct {
	Seed            int64    `json:"seed"`
	Boards          int      `json:"boards"`
	DevicesPerBoard int      `json:"devices_per_board"`
	DurationNs      int64    `json:"duration_ns"`
	Design          string   `json:"design"`
	Geometry        string   `json:"geometry"`
	Frames          int      `json:"frames"`
	ProtectedFrames int      `json:"protected_frames"`
	StrategyNames   []string `json:"strategies"`

	Env        EnvReport        `json:"environment"`
	Strategies []StrategyReport `json:"strategy_reports"`
	Events     []SampleEvent    `json:"event_sample,omitempty"`
}

// EnvReport summarizes the strike history every strategy replayed.
type EnvReport struct {
	Strikes int64            `json:"strikes"`
	ByKind  map[string]int64 `json:"by_kind"`
	// MeasuredPerDeviceHour is the realized device strike rate, the
	// statistical-invariant tests' convergence target.
	MeasuredPerDeviceHour float64  `json:"measured_per_device_hour"`
	FlareWindows          []Window `json:"flare_windows,omitempty"`
	FlareStrikes          int64    `json:"flare_strikes"`
}

// StrategyReport is one scrub policy's fleet-wide outcome.
type StrategyReport struct {
	Name string `json:"name"`
	// Availability is uptime device-time fraction across the fleet.
	Availability float64 `json:"availability"`
	DowntimeNs   float64 `json:"downtime_ns"`
	// MTTRNs is mean time to repair for outage-causing faults.
	MTTRNs      float64 `json:"mttr_ns"`
	MTTRSamples int64   `json:"mttr_samples"`

	Detections        int64 `json:"detections"`
	Repairs           int64 `json:"repairs"`
	FullReconfigs     int64 `json:"full_reconfigs"`
	Masked            int64 `json:"masked"`
	Unrecovered       int64 `json:"unrecovered"`
	HalfLatchRestored int64 `json:"half_latch_restored"`
	ScrubCycles       int64 `json:"scrub_cycles"`

	// LatencyHist buckets repair latencies: bucket with bound B counts
	// repairs in (B/2, B] microseconds (log2 buckets; the first holds
	// sub-microsecond repairs).
	LatencyHist []HistBucket `json:"scrub_latency_hist_us"`

	Flash     FlashReport     `json:"flash"`
	Telemetry TelemetryReport `json:"telemetry"`
}

// HistBucket is one non-empty log2 latency bucket.
type HistBucket struct {
	UpToUs uint64 `json:"le_us"`
	Count  int64  `json:"count"`
}

// FlashReport summarizes golden-store ECC activity across the fleet.
type FlashReport struct {
	Reads            int64 `json:"reads"`
	CorrectedSingles int64 `json:"corrected_singles"`
	DetectedDoubles  int64 `json:"detected_doubles"`
	Fallbacks        int64 `json:"redundant_copy_fallbacks"`
}

// TelemetryReport summarizes the groundlink downlink.
type TelemetryReport struct {
	Records    int64 `json:"records"`
	Frames     int64 `json:"frames"`
	Bytes      int64 `json:"bytes"`
	DownlinkNs int64 `json:"downlink_ns"`
	Passes     int64 `json:"passes"`
	Deferred   int64 `json:"deferred"`
	Dropped    int64 `json:"dropped"`
}

// SampleEvent is one merged telemetry event included in the report for
// replay inspection (a bounded sample, earliest fleet-wide events first).
type SampleEvent struct {
	AtNs     int64  `json:"at_ns"`
	Board    int    `json:"board"`
	Strategy string `json:"strategy"`
	Device   uint8  `json:"device"`
	Kind     string `json:"kind"`
	Frame    int32  `json:"frame"`
	DataUs   uint32 `json:"data"`
}

// maxSampleEvents bounds the report's merged event sample.
const maxSampleEvents = 64

func buildReport(cfg *Config, m *Model, flares []Window, outcomes []boardOutcome) *Report {
	rep := &Report{
		Seed:            cfg.Seed,
		Boards:          cfg.Boards,
		DevicesPerBoard: cfg.DevicesPerBoard,
		DurationNs:      int64(cfg.Duration),
		Design:          cfg.Design,
		Geometry:        fmt.Sprintf("%dx%d", cfg.Geom.Rows, cfg.Geom.Cols),
		Frames:          m.Frames,
		ProtectedFrames: m.ProtectedCount,
	}
	for _, s := range cfg.Strategies {
		rep.StrategyNames = append(rep.StrategyNames, s.String())
	}

	rep.Env.ByKind = make(map[string]int64)
	rep.Env.FlareWindows = flares
	for b := range outcomes {
		o := &outcomes[b]
		rep.Env.Strikes += int64(len(o.strikes))
		rep.Env.FlareStrikes += o.flareHits
		for k, n := range o.byKind {
			rep.Env.ByKind[k] += n
		}
	}
	deviceHours := float64(cfg.Duration) / float64(time.Hour) *
		float64(cfg.Boards) * float64(cfg.DevicesPerBoard)
	rep.Env.MeasuredPerDeviceHour = float64(rep.Env.Strikes) / deviceHours

	for si, strat := range cfg.Strategies {
		sr := StrategyReport{Name: strat.String()}
		var downNs, mttrNs float64
		var hist [histBuckets]int64
		for b := range outcomes {
			r := &outcomes[b].perStrategy[si]
			// Float accumulation in fixed board order: deterministic at any
			// worker count, immune to int64 overflow on year-long fleets.
			downNs += float64(r.downtimeNs)
			mttrNs += float64(r.mttrSumNs)
			sr.MTTRSamples += r.mttrCount
			sr.Detections += r.detections
			sr.Repairs += r.repairs
			sr.FullReconfigs += r.fullReconfigs
			sr.Masked += r.masked
			sr.Unrecovered += r.unrecovered
			sr.HalfLatchRestored += r.hlRestored
			sr.ScrubCycles += r.scrubCycles
			for i, n := range r.latHist {
				hist[i] += n
			}
			sr.Flash.Reads += r.flashReads
			sr.Flash.CorrectedSingles += r.flashCorrected
			sr.Flash.DetectedDoubles += r.flashDoubles
			sr.Flash.Fallbacks += r.flashFallbacks
			sr.Telemetry.Records += r.telemetryRecords
			sr.Telemetry.Frames += r.telemetryFrames
			sr.Telemetry.Bytes += r.telemetryBytes
			sr.Telemetry.DownlinkNs += r.downlinkNs
			sr.Telemetry.Passes += r.passes
			sr.Telemetry.Deferred += r.deferred
			sr.Telemetry.Dropped += r.dropped
		}
		fleetDeviceNs := float64(cfg.Duration) * float64(cfg.Boards) * float64(cfg.DevicesPerBoard)
		sr.Availability = 1 - downNs/fleetDeviceNs
		sr.DowntimeNs = downNs
		if sr.MTTRSamples > 0 {
			sr.MTTRNs = mttrNs / float64(sr.MTTRSamples)
		}
		for i, n := range hist {
			if n == 0 {
				continue
			}
			sr.LatencyHist = append(sr.LatencyHist, HistBucket{UpToUs: uint64(1) << uint(i), Count: n})
		}
		rep.Strategies = append(rep.Strategies, sr)
	}

	rep.Events = sampleEvents(cfg, outcomes)
	return rep
}

// sampleEvents merges a bounded, deterministic sample of telemetry events:
// up to four per board-strategy pair feed a candidate pool (board order),
// which is then sorted by time and truncated.
func sampleEvents(cfg *Config, outcomes []boardOutcome) []SampleEvent {
	var pool []SampleEvent
	for b := range outcomes {
		for si, strat := range cfg.Strategies {
			evs := outcomes[b].perStrategy[si].events
			n := len(evs)
			if n > 4 {
				n = 4
			}
			for _, e := range evs[:n] {
				pool = append(pool, SampleEvent{
					AtNs:     int64(e.At),
					Board:    b,
					Strategy: strat.String(),
					Device:   e.Device,
					Kind:     kindLabel(e.Kind),
					Frame:    e.Frame,
					DataUs:   e.Data,
				})
			}
		}
	}
	sort.SliceStable(pool, func(a, b int) bool {
		ea, eb := pool[a], pool[b]
		if ea.AtNs != eb.AtNs {
			return ea.AtNs < eb.AtNs
		}
		if ea.Board != eb.Board {
			return ea.Board < eb.Board
		}
		return ea.Strategy < eb.Strategy
	})
	if len(pool) > maxSampleEvents {
		pool = pool[:maxSampleEvents]
	}
	return pool
}

func kindLabel(k groundlink.TelemetryKind) string { return k.String() }

// Marshal renders the report as stable indented JSON with a trailing
// newline — the byte-identical replay artifact.
func (r *Report) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// WriteTable prints the strategy comparison table.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "mission seed=%d boards=%d devices/board=%d duration=%s design=%q\n",
		r.Seed, r.Boards, r.DevicesPerBoard, time.Duration(r.DurationNs), r.Design)
	fmt.Fprintf(w, "environment: %d strikes (%.3f/device/hour), %d in flares\n\n",
		r.Env.Strikes, r.Env.MeasuredPerDeviceHour, r.Env.FlareStrikes)
	fmt.Fprintf(w, "%-20s %12s %12s %10s %10s %8s %8s %10s\n",
		"strategy", "availability", "MTTR", "repairs", "reconfigs", "masked", "unrecov", "telemetry")
	for _, s := range r.Strategies {
		mttr := "-"
		if s.MTTRSamples > 0 {
			mttr = time.Duration(s.MTTRNs).Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "%-20s %11.6f%% %12s %10d %10d %8d %8d %9dB\n",
			s.Name, s.Availability*100, mttr,
			s.Repairs, s.FullReconfigs, s.Masked, s.Unrecovered, s.Telemetry.Bytes)
	}
}

// strategyIndex returns the report's index of a strategy by name.
func (r *Report) strategyIndex(s scrub.Strategy) int {
	for i, sr := range r.Strategies {
		if sr.Name == s.String() {
			return i
		}
	}
	return -1
}

// Strategy returns the report section for the named strategy, or nil.
func (r *Report) Strategy(s scrub.Strategy) *StrategyReport {
	if i := r.strategyIndex(s); i >= 0 {
		return &r.Strategies[i]
	}
	return nil
}
