package mission

import (
	"math/bits"
	"sort"
	"time"

	"repro/internal/flash"
	"repro/internal/groundlink"
	"repro/internal/radiation"
	"repro/internal/scrub"
)

// histBuckets is the number of scrub-latency histogram buckets: bucket i
// counts repairs with latency in [2^(i-1), 2^i) microseconds (bucket 0 is
// sub-microsecond), the last bucket is open-ended.
const histBuckets = 28

func latencyBucket(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// strategyParams is the resolved cost model of one scrub policy.
type strategyParams struct {
	strat scrub.Strategy
	id    uint8
	// perFrame is the scan dwell per frame; scanCycle the full no-error
	// pass (redundancy scans its duplicated frames too).
	perFrame  time.Duration
	scanCycle time.Duration
	// repairWrite is one partial-reconfiguration frame write.
	repairWrite time.Duration
	// fullConfig is a complete reload (restores half-latches, recovers
	// control-logic upsets).
	fullConfig time.Duration
	// refreshEvery schedules blind scrubbing's periodic full
	// reconfiguration; zero for the readback-based policies.
	refreshEvery time.Duration
}

func (c *Config) params(s scrub.Strategy, m *Model) strategyParams {
	p := strategyParams{
		strat:       s,
		id:          uint8(s),
		perFrame:    c.Timing.PerFrame(s),
		scanCycle:   c.Timing.ScanCycle(s, m.Frames, m.ProtectedCount),
		repairWrite: c.Timing.FrameWrite,
		fullConfig:  c.Timing.FullConfig,
	}
	if s == scrub.StrategyBlind {
		p.refreshEvery = c.BlindRefreshEvery
	}
	return p
}

// nextTouch returns the first time >= from at which the scanner's cyclic
// pointer reaches frame f. Frame f is touched at offset f*perFrame within
// every scan cycle.
func (p strategyParams) nextTouch(f int32, from time.Duration) time.Duration {
	off := time.Duration(f) * p.perFrame
	if from <= off {
		return off
	}
	cyc := p.scanCycle
	k := (from - off + cyc - 1) / cyc
	return off + k*cyc
}

// stratResult is one board's outcome under one strategy.
type stratResult struct {
	detections    int64
	repairs       int64
	fullReconfigs int64
	masked        int64
	unrecovered   int64
	hlRestored    int64

	mttrSumNs   int64
	mttrCount   int64
	scrubCycles int64
	latHist     [histBuckets]int64

	downtimeNs int64
	// availability is this board's device-time uptime fraction.
	availability float64

	flashReads     int64
	flashCorrected int64
	flashDoubles   int64
	flashFallbacks int64

	telemetryRecords int64
	telemetryFrames  int64
	telemetryBytes   int64
	downlinkNs       int64
	passes           int64
	deferred         int64
	dropped          int64

	events []groundlink.TelemetryRecord
}

// boardSim carries one board's mutable state through a strategy run.
type boardSim struct {
	m   *Model
	cfg *Config
	p   strategyParams
	res stratResult

	downUntil []time.Duration // per device, capped at mission end
	hlDamage  []int64         // per device pending half-latch damage
	fl        *flash.Store
	events    []groundlink.TelemetryRecord
}

// simStrategy replays board b's strike history under one scrub policy.
// Strikes are processed in time order; every repair instant is computed
// analytically from the scanner's cyclic position, so the loop is O(strikes)
// regardless of mission length.
func simStrategy(m *Model, cfg *Config, p strategyParams, strikes []Strike) stratResult {
	s := &boardSim{
		m: m, cfg: cfg, p: p,
		downUntil: make([]time.Duration, cfg.DevicesPerBoard),
		hlDamage:  make([]int64, cfg.DevicesPerBoard),
		fl:        m.FlashProto.Clone(),
	}
	for i := range strikes {
		s.apply(&strikes[i])
	}
	// Blind scrubbing's scheduled refreshes run whether or not anything
	// was hit.
	if p.refreshEvery > 0 {
		s.res.fullReconfigs += int64(cfg.Duration/p.refreshEvery) * int64(cfg.DevicesPerBoard)
	}
	// Half-latch damage still standing at mission end was never restored.
	for _, n := range s.hlDamage {
		s.res.unrecovered += n
	}
	s.res.scrubCycles = int64(cfg.Duration/p.scanCycle) * int64(cfg.DevicesPerBoard)
	devTime := int64(cfg.Duration) * int64(cfg.DevicesPerBoard)
	s.res.availability = 1 - float64(s.res.downtimeNs)/float64(devTime)
	s.downlink()
	st := s.fl.Device().Stats()
	s.res.flashReads = st.Reads
	s.res.flashCorrected = st.CorrectedSingles
	s.res.flashDoubles = st.DetectedDoubles
	return s.res
}

func (s *boardSim) apply(st *Strike) {
	switch st.Kind {
	case radiation.StrikeConfig:
		s.configStrike(st)
	case radiation.StrikeControl:
		s.controlStrike(st)
	case radiation.StrikeHalfLatch:
		s.halfLatchStrike(st)
	case StrikeFlash:
		s.fl.Device().UpsetBit(st.FlashBit % (int64(s.fl.Device().Capacity()) * 8))
	case radiation.StrikeUserFF:
		// Transient design state: invisible to every scrub policy, flushed
		// by the design's own operation. Counted in the environment
		// section; no strategy outcome.
	}
}

// outage accounts device downtime over [start, end), merging overlap with
// an existing outage on the device.
func (s *boardSim) outage(dev uint8, start, end time.Duration) {
	if end > s.cfg.Duration {
		end = s.cfg.Duration
	}
	from := start
	if s.downUntil[dev] > from {
		from = s.downUntil[dev]
	}
	if end > from {
		s.res.downtimeNs += int64(end - from)
	}
	if end > s.downUntil[dev] {
		s.downUntil[dev] = end
	}
}

func (s *boardSim) record(r groundlink.TelemetryRecord) {
	if len(s.events) < s.cfg.MaxEventsPerBoard {
		s.events = append(s.events, r)
		return
	}
	s.res.dropped++
}

// configStrike handles a (possibly multi-bit) configuration upset: the
// cluster sits in its frame(s) until the scanner's pointer arrives, then
// partial reconfiguration rewrites the frame(s) from the flash golden
// store. Critical clusters take the device down for the interim unless
// configuration redundancy masks them.
func (s *boardSim) configStrike(st *Strike) {
	p := s.p
	from := st.At
	if p.strat == scrub.StrategyNeighbor {
		// The neighbour that scrubs this device may itself be down; its
		// repairs stall until it recovers.
		nb := (st.Device + 1) % uint8(s.cfg.DevicesPerBoard)
		if s.downUntil[nb] > from {
			from = s.downUntil[nb]
		}
	}
	touch := p.nextTouch(st.Frame, from)
	framesHit := int64(1)
	if st.Frame2 >= 0 {
		framesHit = 2
	}
	end := touch + time.Duration(framesHit)*p.repairWrite

	// Configuration redundancy: a critical cluster confined to one
	// duplicated frame is functionally masked by the surviving copy until
	// repair. A cluster straddling two frames can corrupt both members of
	// an adjacent duplicated pair, so it is never masked.
	masked := false
	if p.strat == scrub.StrategyRedundant && st.Critical &&
		st.Frame2 < 0 && s.m.Protected[st.Frame] {
		masked = true
	}

	if end > s.cfg.Duration {
		// Never repaired: damage stands at mission end.
		s.res.unrecovered += framesHit
		if st.Critical && !masked {
			s.outage(st.Device, st.At, s.cfg.Duration)
		}
		return
	}

	latency := end - st.At
	s.res.latHist[latencyBucket(latency)]++
	s.res.repairs += framesHit
	s.fetchGolden(st.Frame, end)
	if st.Frame2 >= 0 {
		s.fetchGolden(st.Frame2, end)
	}
	if p.strat != scrub.StrategyBlind {
		// Readback-based policies actually observe the mismatch; blind
		// rewriting erases it without ever knowing.
		s.res.detections++
		s.record(groundlink.TelemetryRecord{
			At: touch, Device: st.Device, Kind: groundlink.TelDetect,
			Frame: st.Frame, Data: uint32((touch - st.At) / time.Microsecond),
		})
		kind := groundlink.TelRepair
		if masked {
			kind = groundlink.TelMasked
			s.res.masked++
		}
		s.record(groundlink.TelemetryRecord{
			At: end, Device: st.Device, Kind: kind,
			Frame: st.Frame, Data: uint32(latency / time.Microsecond),
		})
	}
	if st.Critical && !masked {
		s.outage(st.Device, st.At, end)
		s.res.mttrSumNs += int64(latency)
		s.res.mttrCount++
	}
}

// controlStrike handles an upset in the configuration control logic: the
// device drops off the scan (unprogrammed) until a full reconfiguration.
func (s *boardSim) controlStrike(st *Strike) {
	p := s.p
	var detect time.Duration
	switch p.strat {
	case scrub.StrategyBlind:
		// Blind rewriting cannot restart an unprogrammed device; the
		// scheduled periodic full reconfiguration is the only recovery.
		k := st.At/p.refreshEvery + 1
		detect = k * p.refreshEvery
	case scrub.StrategyNeighbor:
		nb := (st.Device + 1) % uint8(s.cfg.DevicesPerBoard)
		from := st.At
		if s.downUntil[nb] > from {
			from = s.downUntil[nb]
		}
		detect = from + p.perFrame
	default:
		// The rad-hard controller notices the dead readback on its next
		// frame access.
		detect = st.At + p.perFrame
	}
	end := detect + p.fullConfig
	if end > s.cfg.Duration {
		s.res.unrecovered++
		s.outage(st.Device, st.At, s.cfg.Duration)
		return
	}
	s.outage(st.Device, st.At, end)
	s.res.fullReconfigs++
	s.res.mttrSumNs += int64(end - st.At)
	s.res.mttrCount++
	s.res.latHist[latencyBucket(end-st.At)]++
	// Full reconfiguration reloads the entire golden image through the
	// ECC flash path and restores the device's half-latches.
	s.fetchFullGolden(end)
	s.res.hlRestored += s.hlDamage[st.Device]
	s.hlDamage[st.Device] = 0
	s.record(groundlink.TelemetryRecord{
		At: end, Device: st.Device, Kind: groundlink.TelFullReconfig,
		Frame: -1, Data: uint32((end - st.At) / time.Millisecond),
	})
}

// halfLatchStrike handles hidden keeper damage: invisible to readback,
// repaired only by full reconfiguration.
func (s *boardSim) halfLatchStrike(st *Strike) {
	if s.p.refreshEvery > 0 {
		// Blind scrubbing's periodic refresh restores it at the next
		// boundary (if one remains before mission end).
		k := st.At/s.p.refreshEvery + 1
		if k*s.p.refreshEvery <= s.cfg.Duration {
			s.res.hlRestored++
			return
		}
	}
	s.hlDamage[st.Device]++
}

// fetchGolden models the repair-frame fetch through the board's ECC flash:
// a single-bit flash upset inside the frame is corrected transparently, a
// double-bit error forces a fallback to a redundant stored copy (the
// flight flash holds "more than twenty" bitstreams) that also restores the
// primary extent.
func (s *boardSim) fetchGolden(f int32, at time.Duration) {
	off := s.m.FrameOffset(f)
	before := s.fl.Device().Stats().CorrectedSingles
	_, err := s.fl.ReadAt(goldenBlob, off, s.m.FrameBytes)
	if err != nil {
		s.res.flashFallbacks++
		_ = s.fl.WriteAt(goldenBlob, off, s.m.Golden[off:off+int64(s.m.FrameBytes)])
	}
	if err != nil || s.fl.Device().Stats().CorrectedSingles > before {
		s.record(groundlink.TelemetryRecord{
			At: at, Kind: groundlink.TelFlashECC, Frame: f,
		})
	}
}

func (s *boardSim) fetchFullGolden(at time.Duration) {
	before := s.fl.Device().Stats().CorrectedSingles
	_, err := s.fl.ReadAt(goldenBlob, 0, len(s.m.Golden))
	if err != nil {
		s.res.flashFallbacks++
		_ = s.fl.WriteAt(goldenBlob, 0, s.m.Golden)
	}
	if err != nil || s.fl.Device().Stats().CorrectedSingles > before {
		s.record(groundlink.TelemetryRecord{At: at, Kind: groundlink.TelFlashECC, Frame: -1})
	}
}

// downlink packages the board's pending telemetry into groundlink frames
// and plays them through the ground-station pass schedule: one contact
// window every PassEvery, records downlinked oldest-first, whatever the
// contact budget cannot carry deferred to the next pass.
func (s *boardSim) downlink() {
	// Repair completions can finish out of strike order (a long blind
	// latency overlapping a short one); the downlink queue is
	// time-ordered.
	sort.SliceStable(s.events, func(a, b int) bool {
		ea, eb := s.events[a], s.events[b]
		if ea.At != eb.At {
			return ea.At < eb.At
		}
		if ea.Device != eb.Device {
			return ea.Device < eb.Device
		}
		if ea.Kind != eb.Kind {
			return ea.Kind < eb.Kind
		}
		return ea.Frame < eb.Frame
	})
	s.res.events = s.events
	s.res.telemetryRecords = int64(len(s.events))

	link := groundlink.Flight()
	idx := 0
	var seq uint32
	for passStart := s.cfg.PassEvery; passStart <= s.cfg.Duration+s.cfg.PassEvery-1; passStart += s.cfg.PassEvery {
		s.res.passes++
		budget := s.cfg.PassContact
		for idx < len(s.events) {
			// Only records generated before the pass are on board.
			n := 0
			for idx+n < len(s.events) && n < groundlink.MaxTelemetryRecords && s.events[idx+n].At <= passStart {
				n++
			}
			if n == 0 {
				break
			}
			cost := link.TransferTime(groundlink.TelemetryFrameSize(n))
			if cost > budget {
				break
			}
			budget -= cost
			s.res.downlinkNs += int64(cost)
			s.res.telemetryBytes += int64(groundlink.TelemetryFrameSize(n))
			s.res.telemetryFrames++
			seq++
			idx += n
		}
		if passStart >= s.cfg.Duration {
			break
		}
	}
	_ = seq
	s.res.deferred = int64(len(s.events) - idx)
}
