// Package mission is the fleet-scale orbital mission simulator: a seeded
// discrete-event model of hundreds to thousands of boards flying the
// paper's scrub architecture (and its published alternatives) through a LEO
// radiation environment, reporting availability, MTTR, and scrub-latency
// distributions per strategy.
//
// Everything is deterministic per seed. Each board draws its entire event
// history from splitmix-style streams keyed by (seed, board, purpose) —
// never from a shared sequential RNG — so the fleet can be sharded across
// any number of workers and the merged mission report stays byte-identical
// (the same discipline internal/seu uses for per-bit sampling).
package mission

import "math"

// mix64 is the SplitMix64 finalizer — the same mixing function
// internal/seu uses for per-bit hashing.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Stream purposes. Keeping each concern on its own tagged stream is what
// lets strategies share one environment history: candidate arrival times
// never depend on how many detail draws an accepted strike consumed, and
// strategy-private draws never perturb the environment.
const (
	tagFlares     uint64 = 0xf1a2e5
	tagPhase      uint64 = 0x0b17a5e
	tagCandidates uint64 = 0xca4d1da7e5
	tagDetails    uint64 = 0xde7a115
	tagStrategy   uint64 = 0x57a7e6
)

// stream is a deterministic splitmix64 sequence. The zero value is a valid
// stream; newStream folds identifying parts into the initial state.
type stream struct{ s uint64 }

func newStream(parts ...uint64) *stream {
	var x uint64
	for _, p := range parts {
		x = mix64(x ^ mix64(p))
	}
	return &stream{s: x}
}

func (r *stream) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (r *stream) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// exp returns an Exp(1) draw. The uniform is strictly below 1, so the log
// argument is strictly positive.
func (r *stream) exp() float64 {
	return -math.Log(1 - r.float64())
}

// intn returns a uniform draw in [0, n). Modulo bias is negligible for the
// model's ranges (n << 2^64) and costs nothing in determinism.
func (r *stream) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// int63n returns a uniform draw in [0, n) for 64-bit ranges.
func (r *stream) int63n(n int64) int64 {
	if n <= 1 {
		return 0
	}
	return int64(r.next() % uint64(n))
}
