package mission

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/device"
	"repro/internal/radiation"
	"repro/internal/scrub"
)

// Config describes one fleet mission.
type Config struct {
	// Seed is the mission seed; it fully determines the report.
	Seed int64
	// Boards is the fleet size; DevicesPerBoard the FPGAs on each board
	// (the paper's payload carries nine).
	Boards          int
	DevicesPerBoard int
	// Duration is the simulated mission length.
	Duration time.Duration
	// Strategies are the scrub policies to compare; every strategy replays
	// the identical strike history.
	Strategies []scrub.Strategy
	// Workers shards boards across goroutines. The report is byte-identical
	// at any worker count; 0 means GOMAXPROCS.
	Workers int

	// Design and Geom pick the flown design; the sensitivity model comes
	// from its placed golden decode.
	Design string
	Geom   device.Geometry

	// Env is the radiation environment; Timing the scrub port cost model.
	Env    EnvConfig
	Timing scrub.Timing

	// RedundancyCoverage is the fraction of potentially-sensitive bits the
	// configuration-redundancy strategy duplicates (most-sensitive frames
	// first).
	RedundancyCoverage float64
	// BlindRefreshEvery paces blind scrubbing's periodic full
	// reconfiguration — its only recovery for control-logic and half-latch
	// damage.
	BlindRefreshEvery time.Duration

	// PassEvery and PassContact schedule groundlink telemetry downlink:
	// one contact window of PassContact every PassEvery.
	PassEvery   time.Duration
	PassContact time.Duration
	// MaxEventsPerBoard caps each board's telemetry event log.
	MaxEventsPerBoard int
}

// withDefaults fills zero fields with mission defaults.
func (c Config) withDefaults() Config {
	if c.Boards == 0 {
		c.Boards = 64
	}
	if c.DevicesPerBoard == 0 {
		c.DevicesPerBoard = 9 // the paper's nine-FPGA payload
	}
	if c.Duration == 0 {
		c.Duration = 7 * 24 * time.Hour
	}
	if len(c.Strategies) == 0 {
		c.Strategies = append([]scrub.Strategy(nil), scrub.Strategies...)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Design == "" {
		c.Design = "LFSR 18"
	}
	if c.Geom == (device.Geometry{}) {
		c.Geom = device.Tiny()
	}
	if c.Env.QuietPerHour == 0 && c.Env.FlarePerHour == 0 {
		c.Env = DefaultEnv()
	}
	if c.Env.MBU.SizeCDF == nil {
		c.Env.MBU = radiation.DefaultMBU()
	}
	if c.Env.CrossSection == (radiation.CrossSection{}) {
		c.Env.CrossSection = radiation.DefaultCrossSection()
	}
	if c.Timing == (scrub.Timing{}) {
		c.Timing = scrub.DefaultTiming()
	}
	if c.RedundancyCoverage == 0 {
		c.RedundancyCoverage = 0.8
	}
	if c.BlindRefreshEvery == 0 {
		c.BlindRefreshEvery = 5 * time.Minute
	}
	if c.PassEvery == 0 {
		c.PassEvery = 92 * time.Minute // one ground contact per orbit
	}
	if c.PassContact == 0 {
		c.PassContact = 8 * time.Minute
	}
	if c.MaxEventsPerBoard == 0 {
		c.MaxEventsPerBoard = 4096
	}
	return c
}

func (c Config) validate() error {
	if c.Boards < 1 {
		return fmt.Errorf("mission: need at least one board")
	}
	if c.DevicesPerBoard < 1 || c.DevicesPerBoard > 256 {
		return fmt.Errorf("mission: devices per board %d outside [1,256]", c.DevicesPerBoard)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("mission: non-positive duration")
	}
	for _, s := range c.Strategies {
		if s == scrub.StrategyNeighbor && c.DevicesPerBoard < 2 {
			return fmt.Errorf("mission: neighbor strategy needs at least 2 devices per board")
		}
	}
	return c.Env.validate()
}

// boardOutcome is one board's results: the shared environment tally plus a
// per-strategy result, produced by whichever worker drew the board and
// merged strictly in board-index order.
type boardOutcome struct {
	strikes     []Strike
	byKind      map[string]int64
	flareHits   int64
	perStrategy []stratResult
}

// Run simulates the fleet and returns the mission report. The fleet is
// sharded across Workers goroutines by an atomic board counter; every board
// is self-contained (its streams are keyed by (seed, board)), and outcomes
// are merged in board-index order, so the report bytes are independent of
// worker count and scheduling.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	model, err := BuildModel(cfg.Design, cfg.Geom, cfg.RedundancyCoverage)
	if err != nil {
		return nil, err
	}
	flares := FlareTimeline(cfg.Seed, cfg.Duration, cfg.Env)

	params := make([]strategyParams, len(cfg.Strategies))
	for i, s := range cfg.Strategies {
		params[i] = cfg.params(s, model)
	}

	outcomes := make([]boardOutcome, cfg.Boards)
	var nextBoard atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(nextBoard.Add(1)) - 1
				if b >= cfg.Boards {
					return
				}
				strikes, err := genStrikes(model, &cfg, flares, b)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				o := &outcomes[b]
				o.strikes = strikes
				o.byKind = make(map[string]int64)
				for i := range strikes {
					o.byKind[kindName(strikes[i].Kind)]++
					if strikes[i].Flare {
						o.flareHits++
					}
				}
				o.perStrategy = make([]stratResult, len(params))
				for i, p := range params {
					o.perStrategy[i] = simStrategy(model, &cfg, p, strikes)
				}
			}
		}()
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}

	rep := buildReport(&cfg, model, flares, outcomes)

	stats.boards.Add(int64(cfg.Boards) * int64(len(cfg.Strategies)))
	stats.strikes.Add(rep.Env.Strikes)
	for _, sr := range rep.Strategies {
		stats.scrubCycles.Add(sr.ScrubCycles)
		stats.repairs.Add(sr.Repairs)
		stats.fullReconfigs.Add(sr.FullReconfigs)
		stats.telemetryFrames.Add(sr.Telemetry.Frames)
		stats.telemetryBytes.Add(sr.Telemetry.Bytes)
	}
	return rep, nil
}
