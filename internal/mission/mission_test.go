package mission

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/scrub"
)

func TestNextTouch(t *testing.T) {
	p := strategyParams{perFrame: 10 * time.Microsecond, scanCycle: time.Millisecond}
	cases := []struct {
		frame int32
		from  time.Duration
		want  time.Duration
	}{
		{0, 0, 0},
		{3, 0, 30 * time.Microsecond},
		{3, 30 * time.Microsecond, 30 * time.Microsecond},
		{3, 31 * time.Microsecond, time.Millisecond + 30*time.Microsecond},
		{0, 1, time.Millisecond},
		{5, 3 * time.Millisecond, 3*time.Millisecond + 50*time.Microsecond},
	}
	for _, c := range cases {
		if got := p.nextTouch(c.frame, c.from); got != c.want {
			t.Errorf("nextTouch(%d, %v) = %v, want %v", c.frame, c.from, got, c.want)
		}
	}
}

func TestLatencyBucket(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{2 * time.Microsecond, 2},
		{3 * time.Microsecond, 2},
		{time.Second, 20},
		{300 * time.Hour, histBuckets - 1},
	}
	for _, c := range cases {
		if got := latencyBucket(c.d); got != c.want {
			t.Errorf("latencyBucket(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestFlareTimelineDeterministicAndSorted(t *testing.T) {
	env := DefaultEnv()
	env.FlareMeanEvery = 24 * time.Hour
	env.FlareMeanDuration = 6 * time.Hour
	dur := 30 * 24 * time.Hour
	a := FlareTimeline(42, dur, env)
	b := FlareTimeline(42, dur, env)
	if len(a) == 0 {
		t.Fatal("no flare windows generated")
	}
	if len(a) != len(b) {
		t.Fatalf("timeline not deterministic: %d vs %d windows", len(a), len(b))
	}
	prev := time.Duration(-1)
	for i, w := range a {
		if w != b[i] {
			t.Fatalf("window %d differs across identical calls", i)
		}
		if w.Start <= prev || w.End <= w.Start || w.End > dur {
			t.Fatalf("window %d malformed or out of order: %+v", i, w)
		}
		prev = w.End
	}
	if tl := FlareTimeline(42, dur, DefaultEnv()); tl != nil {
		t.Fatalf("flares disabled by default, got %d windows", len(tl))
	}
}

func TestInFlareCursor(t *testing.T) {
	windows := []Window{{Start: 10, End: 20}, {Start: 40, End: 50}}
	idx := 0
	cases := []struct {
		t    time.Duration
		want bool
	}{{5, false}, {10, true}, {19, true}, {20, false}, {39, false}, {45, true}, {60, false}}
	for _, c := range cases {
		if got := inFlare(windows, c.t, &idx); got != c.want {
			t.Errorf("inFlare(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestGenStrikesDeterministicPerBoard(t *testing.T) {
	m, err := BuildModel("LFSR 18", device.Tiny(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 9, Boards: 2, Duration: 14 * 24 * time.Hour}.withDefaults()
	a, err := genStrikes(m, &cfg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := genStrikes(m, &cfg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("no strikes over two weeks")
	}
	if len(a) != len(b) {
		t.Fatalf("strike history not deterministic: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("strike %d differs across identical calls: %+v vs %+v", i, a[i], b[i])
		}
	}
	other, err := genStrikes(m, &cfg, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(other) == len(a) {
		same := true
		for i := range a {
			if a[i] != other[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("boards 0 and 1 drew identical strike histories")
		}
	}
	prev := time.Duration(-1)
	for i := range a {
		st := &a[i]
		if st.At <= prev {
			t.Fatalf("strike %d out of time order", i)
		}
		prev = st.At
		if int(st.Device) >= cfg.DevicesPerBoard {
			t.Fatalf("strike %d device %d out of range", i, st.Device)
		}
		if st.Kind == 0 && (st.Frame < 0 || int(st.Frame) >= m.Frames) {
			t.Fatalf("config strike %d frame %d out of range", i, st.Frame)
		}
	}
}

func TestBuildModelProtectedSet(t *testing.T) {
	full, err := BuildModel("LFSR 18", device.Tiny(), 1)
	if err != nil {
		t.Fatal(err)
	}
	none, err := BuildModel("LFSR 18", device.Tiny(), 0)
	if err != nil {
		t.Fatal(err)
	}
	half, err := BuildModel("LFSR 18", device.Tiny(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if none.ProtectedCount != 0 {
		t.Fatalf("coverage 0 protected %d frames", none.ProtectedCount)
	}
	if full.ProtectedCount == 0 || full.ProtectedCount > full.Frames {
		t.Fatalf("coverage 1 protected %d of %d frames", full.ProtectedCount, full.Frames)
	}
	if half.ProtectedCount == 0 || half.ProtectedCount >= full.ProtectedCount {
		t.Fatalf("coverage 0.5 protected %d frames, full coverage %d", half.ProtectedCount, full.ProtectedCount)
	}
	// Protection follows sensitivity: every protected frame must be at
	// least as sensitive as every unprotected one... not in general (greedy
	// by count with stable ties), but a protected frame can never have zero
	// sensitive bits.
	for f, p := range full.Protected {
		if p && full.SensFrac[f] == 0 {
			t.Fatalf("frame %d protected with zero sensitive bits", f)
		}
	}
	if full.FrameBytes != device.Tiny().FrameBytes() {
		t.Fatalf("frame bytes %d vs geometry %d", full.FrameBytes, device.Tiny().FrameBytes())
	}
	if got, _ := full.FlashProto.Size(goldenBlob); got != int64(len(full.Golden)) {
		t.Fatalf("flash golden blob %d bytes, image %d", got, len(full.Golden))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Boards: -1},
		{DevicesPerBoard: 1, Strategies: []scrub.Strategy{scrub.StrategyNeighbor}},
		{Env: EnvConfig{QuietPerHour: -1, FlarePerHour: 1}},
		{Env: EnvConfig{QuietPerHour: 1, FlarePerHour: 1, OrbitAmplitude: 1.5}},
		{Env: EnvConfig{QuietPerHour: 1, FlarePerHour: 4, RateBound: 2, OrbitPeriod: time.Hour}},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestScrubStatsAdvance checks the process-wide counters campaignd exports.
func TestScrubStatsAdvance(t *testing.T) {
	before := ScrubStats()
	rep, err := Run(testConfig(13, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	after := ScrubStats()
	if d := after.BoardsSimulated - before.BoardsSimulated; d != int64(4*len(rep.StrategyNames)) {
		t.Errorf("BoardsSimulated advanced by %d, want %d", d, 4*len(rep.StrategyNames))
	}
	if after.Strikes-before.Strikes != rep.Env.Strikes {
		t.Errorf("Strikes advanced by %d, report says %d", after.Strikes-before.Strikes, rep.Env.Strikes)
	}
	if after.ScrubCycles <= before.ScrubCycles {
		t.Error("ScrubCycles did not advance")
	}
	var wantFrames int64
	for _, sr := range rep.Strategies {
		wantFrames += sr.Telemetry.Frames
	}
	if d := after.TelemetryFrames - before.TelemetryFrames; d != wantFrames {
		t.Errorf("TelemetryFrames advanced by %d, want %d", d, wantFrames)
	}
}
