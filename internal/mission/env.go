package mission

import (
	"fmt"
	"math"
	"time"

	"repro/internal/radiation"
)

// EnvConfig is one board's radiation environment: base upset rates per
// regime (quiet orbit vs solar flare), orbit-phase flux modulation (the
// South Atlantic Anomaly pass concentrates most LEO upsets into a slice of
// each orbit), and the multi-bit-upset cluster model.
type EnvConfig struct {
	// QuietPerHour and FlarePerHour are per-device configuration-strike
	// environments, in upsets/hour (the paper's system rates divided by
	// its nine devices).
	QuietPerHour float64
	FlarePerHour float64

	// FluxScale multiplies both base rates (sweep knob; 0 means 1).
	FluxScale float64

	// OrbitPeriod is the orbital period for flux modulation; 0 disables
	// modulation.
	OrbitPeriod time.Duration
	// OrbitAmplitude in [0,1) modulates instantaneous flux as
	// 1 + A*cos(2*pi*(t/P + phase)); each board gets its own deterministic
	// phase, and the modulation is mean-preserving so regime rates stay
	// interpretable.
	OrbitAmplitude float64

	// FlareMeanEvery is the mean quiet interval between flare onsets;
	// 0 disables generated flares. FlareMeanDuration is the mean flare
	// length. Flares are fleet-global (space weather is shared), drawn
	// once per mission from the seed.
	FlareMeanEvery    time.Duration
	FlareMeanDuration time.Duration

	// MBU is the multi-bit upset cluster model.
	MBU radiation.MBU

	// CrossSection weights strike targets; FlashWeight (per flash bit)
	// extends the paper's partition with strikes on the golden store.
	CrossSection radiation.CrossSection
	FlashWeight  float64

	// RateBound, when non-zero, overrides the thinning bound (per device,
	// upsets/hour). Runs that share a seed AND a bound draw nested strike
	// sets as flux varies — the coupling the monotonicity tests use. The
	// bound must be >= the peak instantaneous rate.
	RateBound float64
}

// DefaultEnv returns the paper's LEO environment: 1.2 upsets/hour quiet and
// 9.6/hour in flares across nine devices, a 92-minute orbit with strong
// SAA-style modulation, and the default MBU and cross-section models.
func DefaultEnv() EnvConfig {
	return EnvConfig{
		QuietPerHour:      radiation.LEOQuietSystemRate / radiation.SystemDevices,
		FlarePerHour:      radiation.LEOFlareSystemRate / radiation.SystemDevices,
		OrbitPeriod:       92 * time.Minute,
		OrbitAmplitude:    0.6,
		FlareMeanEvery:    0, // flares off by default; scenarios add them
		FlareMeanDuration: 12 * time.Hour,
		MBU:               radiation.DefaultMBU(),
		CrossSection:      radiation.DefaultCrossSection(),
		FlashWeight:       0.02,
	}
}

func (e EnvConfig) fluxScale() float64 {
	if e.FluxScale <= 0 {
		return 1
	}
	return e.FluxScale
}

// peakPerHour is the highest instantaneous per-device rate the environment
// can produce.
func (e EnvConfig) peakPerHour() float64 {
	base := math.Max(e.QuietPerHour, e.FlarePerHour) * e.fluxScale()
	return base * (1 + e.OrbitAmplitude)
}

// bound returns the thinning bound in upsets/hour per device.
func (e EnvConfig) bound() (float64, error) {
	peak := e.peakPerHour()
	b := e.RateBound
	if b == 0 {
		b = peak
	}
	if b < peak {
		return 0, fmt.Errorf("mission: rate bound %.3f/h below peak instantaneous rate %.3f/h", b, peak)
	}
	if b <= 0 {
		return 0, fmt.Errorf("mission: environment has zero upset rate")
	}
	return b, nil
}

func (e EnvConfig) validate() error {
	if e.OrbitAmplitude < 0 || e.OrbitAmplitude >= 1 {
		return fmt.Errorf("mission: orbit amplitude %.2f outside [0,1)", e.OrbitAmplitude)
	}
	if e.QuietPerHour < 0 || e.FlarePerHour < 0 {
		return fmt.Errorf("mission: negative upset rate")
	}
	_, err := e.bound()
	return err
}

// Window is one solar-flare interval.
type Window struct {
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
}

// FlareTimeline draws the mission's fleet-global flare windows from the
// seed: exponential quiet gaps between onsets, exponential durations.
func FlareTimeline(seed int64, duration time.Duration, env EnvConfig) []Window {
	if env.FlareMeanEvery <= 0 || env.FlareMeanDuration <= 0 {
		return nil
	}
	rng := newStream(uint64(seed), tagFlares)
	var out []Window
	t := time.Duration(0)
	for {
		gap := time.Duration(rng.exp() * float64(env.FlareMeanEvery))
		start := t + gap
		if start >= duration {
			return out
		}
		length := time.Duration(rng.exp() * float64(env.FlareMeanDuration))
		end := start + length
		if end > duration {
			end = duration
		}
		out = append(out, Window{Start: start, End: end})
		t = end
	}
}

// inFlare reports whether t falls in a flare window. Windows are sorted and
// non-overlapping by construction; idx is a monotone cursor the caller
// carries through its time-ordered scan.
func inFlare(windows []Window, t time.Duration, idx *int) bool {
	for *idx < len(windows) && t >= windows[*idx].End {
		*idx++
	}
	return *idx < len(windows) && t >= windows[*idx].Start
}

// Strike is one upset event on a board, fully determined by the
// environment (never by the scrub strategy under test, so every strategy
// replays an identical history).
type Strike struct {
	// At is the strike time.
	At time.Duration
	// Device indexes the FPGA within the board; flash strikes hit the
	// board-level golden store and leave Device at 0.
	Device uint8
	// Kind classifies the target.
	Kind radiation.StrikeKind
	// Flare marks strikes landing inside a flare window.
	Flare bool
	// Frame and Frame2 are the configuration frames hit (config strikes);
	// Frame2 is -1 unless the MBU cluster straddles two frames.
	Frame  int32
	Frame2 int32
	// Bits is the MBU cluster size.
	Bits uint8
	// Critical marks clusters that hit at least one bit the design's
	// sensitivity analysis classifies as potentially functional.
	Critical bool
	// FlashBit is the flash bit position for flash strikes.
	FlashBit int64
	// Cand is the environment candidate index that produced the strike;
	// strategy-private draws are keyed by it so shared strikes resolve
	// identically across flux-coupled runs.
	Cand uint64
}

// StrikeFlash extends radiation's strike kinds with upsets in the board's
// flash golden store. It lives here rather than in radiation because the
// flash array is board-level, not device-level.
const StrikeFlash = radiation.StrikeControl + 1

// kindName maps strike kinds (including StrikeFlash) to report keys.
func kindName(k radiation.StrikeKind) string {
	if k == StrikeFlash {
		return "flash"
	}
	return k.String()
}

// genStrikes draws board b's complete strike history. Candidate arrivals
// are a homogeneous Poisson process at the thinning bound; each candidate
// is accepted with probability rate(t)/bound, so the accepted set follows
// the inhomogeneous regime/orbit rate exactly. Candidate times and accept
// draws come from one stream, per-strike details from a stream keyed by
// candidate index — runs sharing (seed, board, bound) therefore agree on
// every shared strike even when flux differs.
func genStrikes(m *Model, cfg *Config, flares []Window, b int) ([]Strike, error) {
	env := cfg.Env
	boundPerHour, err := env.bound()
	if err != nil {
		return nil, err
	}
	devices := cfg.DevicesPerBoard
	// Aggregate candidate rate across the board's devices (flash weight is
	// folded into the per-strike target draw, scaled against device
	// cross-section, so the board rate uses device count only).
	aggPerHour := boundPerHour * float64(devices)
	meanGap := float64(time.Hour) / aggPerHour

	cand := newStream(uint64(cfg.Seed), uint64(b), tagCandidates)
	phase := newStream(uint64(cfg.Seed), uint64(b), tagPhase).float64()
	quiet := env.QuietPerHour * env.fluxScale()
	flare := env.FlarePerHour * env.fluxScale()

	// Strike-target weights from the radiation cross-section.
	xs := env.CrossSection
	wConfig := xs.ConfigWeight * float64(m.TotalBits)
	wHL := xs.HalfLatchWeight * float64(m.HalfLatchSites)
	wFF := xs.FFWeight * float64(m.FFs)
	wCtl := xs.ControlWeight
	wFlash := env.FlashWeight * float64(m.FlashBits) / float64(devices)
	wTotal := wConfig + wHL + wFF + wCtl + wFlash

	var out []Strike
	var candIdx uint64
	flareIdx := 0
	t := time.Duration(0)
	for {
		t += time.Duration(cand.exp() * meanGap)
		if t >= cfg.Duration {
			return out, nil
		}
		candIdx++
		accept := cand.float64()
		base := quiet
		isFlare := inFlare(flares, t, &flareIdx)
		if isFlare {
			base = flare
		}
		rate := base
		if env.OrbitPeriod > 0 {
			frac := math.Mod(float64(t)/float64(env.OrbitPeriod)+phase, 1)
			rate *= 1 + env.OrbitAmplitude*math.Cos(2*math.Pi*frac)
		}
		if accept*boundPerHour >= rate {
			continue
		}

		det := newStream(uint64(cfg.Seed), uint64(b), tagDetails, candIdx)
		st := Strike{At: t, Flare: isFlare, Cand: candIdx, Frame: -1, Frame2: -1}
		st.Device = uint8(det.intn(devices))
		x := det.float64() * wTotal
		switch {
		case x < wConfig:
			st.Kind = radiation.StrikeConfig
			st.Frame = int32(det.intn(m.Frames))
			size := env.MBU.Size(det.float64())
			st.Bits = uint8(size)
			spans := env.MBU.SpansFrames(size, det.float64())
			if spans && int(st.Frame)+1 < m.Frames {
				st.Frame2 = st.Frame + 1
			}
			// A cluster is critical when any member bit lands on a
			// potentially-sensitive bit of its frame (per-frame fractions
			// from the design's static sensitivity mask).
			for i := 0; i < size; i++ {
				f := st.Frame
				if st.Frame2 >= 0 && i >= size/2 {
					f = st.Frame2
				}
				if det.float64() < m.SensFrac[f] {
					st.Critical = true
				}
			}
		case x < wConfig+wHL:
			st.Kind = radiation.StrikeHalfLatch
		case x < wConfig+wHL+wFF:
			st.Kind = radiation.StrikeUserFF
		case x < wConfig+wHL+wFF+wCtl:
			st.Kind = radiation.StrikeControl
		default:
			st.Kind = StrikeFlash
			st.FlashBit = det.int63n(int64(m.FlashBits))
		}
		out = append(out, st)
	}
}
