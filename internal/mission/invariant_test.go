package mission

import (
	"math"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/scrub"
)

// TestMeasuredRateConvergesPerRegime checks the Poisson-thinning machinery
// against its configuration: over a long mission with flares enabled, the
// realized per-device upset rate inside flare windows must converge to the
// flare rate and the rate outside to the quiet rate. Orbit modulation is
// disabled so each regime's instantaneous rate is constant.
func TestMeasuredRateConvergesPerRegime(t *testing.T) {
	env := DefaultEnv()
	env.OrbitPeriod = 0
	env.OrbitAmplitude = 0
	env.FlareMeanEvery = 48 * time.Hour
	env.FlareMeanDuration = 24 * time.Hour
	cfg := Config{
		Seed:       11,
		Boards:     64,
		Duration:   21 * 24 * time.Hour,
		Design:     "LFSR 18",
		Geom:       device.Tiny(),
		Env:        env,
		Strategies: []scrub.Strategy{scrub.StrategyReadback},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var flareNs int64
	for _, w := range rep.Env.FlareWindows {
		flareNs += int64(w.End - w.Start)
	}
	if flareNs == 0 || flareNs == int64(cfg.Duration) {
		t.Fatalf("degenerate flare timeline for this seed: %d ns of %d", flareNs, int64(cfg.Duration))
	}
	devices := float64(cfg.Boards) * 9 // default devices per board
	flareHours := float64(flareNs) / float64(time.Hour) * devices
	quietHours := float64(int64(cfg.Duration)-flareNs) / float64(time.Hour) * devices

	flareRate := float64(rep.Env.FlareStrikes) / flareHours
	quietRate := float64(rep.Env.Strikes-rep.Env.FlareStrikes) / quietHours

	checkWithin(t, "quiet regime", quietRate, env.QuietPerHour, 0.10)
	checkWithin(t, "flare regime", flareRate, env.FlarePerHour, 0.10)
}

func checkWithin(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want)/want > tol {
		t.Errorf("%s: measured %.4f/device/hour, configured %.4f (tolerance %.0f%%)",
			what, got, want, tol*100)
	}
}

// TestAvailabilityMonotoneInFlux pins the nested-strike-set coupling: runs
// sharing (seed, RateBound) draw candidate arrivals and accept thresholds
// from the same streams, so a higher FluxScale accepts a strict superset of
// strikes, and fleet availability must be non-increasing in flux for every
// strategy — deterministically, not just in expectation.
func TestAvailabilityMonotoneInFlux(t *testing.T) {
	scales := []float64{1, 2, 4}
	env := DefaultEnv()
	// Pin the thinning bound at the highest flux's peak so all runs share it.
	env.FluxScale = scales[len(scales)-1]
	bound := env.peakPerHour()

	var reports []*Report
	for _, k := range scales {
		e := DefaultEnv()
		e.FluxScale = k
		e.RateBound = bound
		rep, err := Run(Config{
			Seed:     3,
			Boards:   24,
			Duration: 72 * time.Hour,
			Design:   "LFSR 18",
			Geom:     device.Tiny(),
			Env:      e,
		})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}

	for i := 1; i < len(reports); i++ {
		if reports[i].Env.Strikes < reports[i-1].Env.Strikes {
			t.Fatalf("flux %.0fx produced fewer strikes (%d) than %.0fx (%d): strike sets not nested",
				scales[i], reports[i].Env.Strikes, scales[i-1], reports[i-1].Env.Strikes)
		}
		for s, sr := range reports[i].Strategies {
			prev := reports[i-1].Strategies[s]
			if sr.Availability > prev.Availability {
				t.Errorf("%s: availability rose from %.9f to %.9f as flux went %.0fx -> %.0fx",
					sr.Name, prev.Availability, sr.Availability, scales[i-1], scales[i])
			}
		}
	}
}

// TestReadbackMTTRNotWorseThanBlind pins the paper's headline comparison on
// a shared strike history: readback-CRC scrubbing detects faults at the
// fast frame-read dwell while blind scrubbing repairs at the slow
// frame-write dwell, so on the same seed readback's mean time to repair
// cannot exceed blind's.
func TestReadbackMTTRNotWorseThanBlind(t *testing.T) {
	env := DefaultEnv()
	env.FluxScale = 20 // plenty of critical strikes
	rep, err := Run(Config{
		Seed:       5,
		Boards:     32,
		Duration:   72 * time.Hour,
		Design:     "LFSR 18",
		Geom:       device.Tiny(),
		Env:        env,
		Strategies: []scrub.Strategy{scrub.StrategyBlind, scrub.StrategyReadback},
	})
	if err != nil {
		t.Fatal(err)
	}
	blind := rep.Strategy(scrub.StrategyBlind)
	readback := rep.Strategy(scrub.StrategyReadback)
	if blind == nil || readback == nil {
		t.Fatal("missing strategy report")
	}
	if blind.MTTRSamples == 0 || readback.MTTRSamples == 0 {
		t.Fatalf("no MTTR samples (blind %d, readback %d); raise flux",
			blind.MTTRSamples, readback.MTTRSamples)
	}
	if readback.MTTRNs > blind.MTTRNs {
		t.Fatalf("readback MTTR %.0f ns exceeds blind MTTR %.0f ns on the same strike history",
			readback.MTTRNs, blind.MTTRNs)
	}
	if readback.Availability < blind.Availability {
		t.Errorf("readback availability %.9f below blind %.9f on the same strike history",
			readback.Availability, blind.Availability)
	}
}
