package mission

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/board"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flash"
	"repro/internal/place"
)

// goldenBlob is the name of the golden configuration image in each board's
// flash store: every device frame concatenated in frame order, so a repair
// fetch is one ReadAt of FrameBytes at frame*FrameBytes.
const goldenBlob = "golden"

// Model is the per-mission precomputation shared read-only by every board
// and worker: the placed design, its static sensitivity profile, the
// golden configuration image, and a flash prototype boards clone.
type Model struct {
	DesignName string
	Geom       device.Geometry

	// Frames and FrameBytes describe the configuration store.
	Frames     int
	FrameBytes int
	TotalBits  int64

	// SensFrac[f] is the fraction of frame f's bits the static cone
	// analysis (fpga.SensitivityMask) classifies potentially sensitive —
	// the probability model for whether a config upset in that frame is
	// functional.
	SensFrac      []float64
	TotalSensBits int64

	// HalfLatchSites and FFs size the hidden-state cross-section.
	HalfLatchSites int
	FFs            int

	// Golden is the concatenated golden frame image; FlashProto is the
	// ECC-protected store holding it, built once and cloned per board.
	Golden     []byte
	FlashProto *flash.Store
	FlashBits  int64

	// Protected marks the frames duplicated by the configuration-
	// redundancy strategy; ProtectedCount is their number.
	Protected      []bool
	ProtectedCount int
}

// BuildModel synthesizes and places the design, derives the per-frame
// sensitivity profile from the golden decode's cone of influence, and
// packs the golden image into an ECC flash prototype. coverage in [0,1] is
// the fraction of potentially-sensitive bits the redundancy strategy
// protects, greediest (most sensitive) frames first.
func BuildModel(designName string, geom device.Geometry, coverage float64) (*Model, error) {
	spec, err := designs.ByName(designName)
	if err != nil {
		return nil, err
	}
	placed, err := place.Place(spec.Build(), geom)
	if err != nil {
		return nil, err
	}
	bd, err := board.New(placed, 1)
	if err != nil {
		return nil, err
	}

	m := &Model{
		DesignName: designName,
		Geom:       geom,
		Frames:     geom.TotalFrames(),
		FrameBytes: geom.FrameBytes(),
		TotalBits:  geom.TotalBits(),
		FFs:        geom.CLBs() * device.FFsPerCLB,
	}
	m.HalfLatchSites = len(bd.Golden.HalfLatchSites())

	// Per-frame sensitive-bit counts from the static mask. The mask is the
	// triage oracle internal/seu uses: conservative (set bits are
	// *potentially* sensitive), which is the right polarity for an
	// availability model.
	mask, _ := bd.Golden.SensitivityMask(bd.OutputNetIDs())
	frameLen := geom.FrameLength()
	m.SensFrac = make([]float64, m.Frames)
	sensCount := make([]int64, m.Frames)
	for f := 0; f < m.Frames; f++ {
		var n int64
		for _, by := range mask.Frame(f).Data {
			n += int64(bits.OnesCount8(by))
		}
		sensCount[f] = n
		m.TotalSensBits += n
		m.SensFrac[f] = float64(n) / float64(frameLen)
	}

	// Golden image: frames concatenated in order, through the ECC store.
	golden := placed.Memory
	m.Golden = make([]byte, 0, m.Frames*m.FrameBytes)
	for f := 0; f < m.Frames; f++ {
		m.Golden = append(m.Golden, golden.Frame(f).Data...)
	}
	capacity := (len(m.Golden) + 63) &^ 63 // word-aligned slack
	dev := flash.New(capacity + 64)
	store := flash.NewStore(dev)
	if err := store.PutBytes(goldenBlob, m.Golden); err != nil {
		return nil, err
	}
	m.FlashProto = store
	m.FlashBits = int64(dev.Capacity()) * 8

	m.buildProtectedSet(sensCount, coverage)
	return m, nil
}

// buildProtectedSet picks the redundancy strategy's duplicated frames:
// frames sorted by sensitive-bit count (descending, index ascending on
// ties) are protected until the cumulative count reaches coverage of the
// total.
func (m *Model) buildProtectedSet(sensCount []int64, coverage float64) {
	m.Protected = make([]bool, m.Frames)
	if coverage <= 0 || m.TotalSensBits == 0 {
		return
	}
	if coverage > 1 {
		coverage = 1
	}
	order := make([]int, m.Frames)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if sensCount[order[a]] != sensCount[order[b]] {
			return sensCount[order[a]] > sensCount[order[b]]
		}
		return order[a] < order[b]
	})
	target := int64(coverage * float64(m.TotalSensBits))
	var cum int64
	for _, f := range order {
		if cum >= target || sensCount[f] == 0 {
			break
		}
		m.Protected[f] = true
		m.ProtectedCount++
		cum += sensCount[f]
	}
}

// FrameOffset returns the golden-image byte offset of frame f.
func (m *Model) FrameOffset(f int32) int64 { return int64(f) * int64(m.FrameBytes) }

func (m *Model) validateFrame(f int32) error {
	if f < 0 || int(f) >= m.Frames {
		return fmt.Errorf("mission: frame %d out of range [0,%d)", f, m.Frames)
	}
	return nil
}
