package mission

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/device"
	"repro/internal/scrub"
)

// testConfig is a small, fast fleet used by the replay tests.
func testConfig(seed int64, boards, workers int) Config {
	return Config{
		Seed:     seed,
		Boards:   boards,
		Workers:  workers,
		Duration: 24 * time.Hour,
		Design:   "LFSR 18",
		Geom:     device.Tiny(),
	}
}

func reportBytes(t *testing.T, cfg Config) []byte {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReportByteIdenticalAcrossWorkers is the deterministic-replay
// acceptance check: the same seed must marshal to byte-identical mission
// reports regardless of how the fleet is sharded.
func TestReportByteIdenticalAcrossWorkers(t *testing.T) {
	base := reportBytes(t, testConfig(1, 24, 1))
	for _, workers := range []int{4, 13} {
		got := reportBytes(t, testConfig(1, 24, workers))
		if !bytes.Equal(base, got) {
			t.Fatalf("workers=%d report diverged from workers=1:\n%s\nvs\n%s",
				workers, got, base)
		}
	}
}

// TestReportSeedSensitivity guards against the opposite failure: different
// seeds must not collapse to the same history.
func TestReportSeedSensitivity(t *testing.T) {
	a := reportBytes(t, testConfig(1, 8, 2))
	b := reportBytes(t, testConfig(2, 8, 2))
	if bytes.Equal(a, b) {
		t.Fatal("seeds 1 and 2 produced identical mission reports")
	}
}

// TestShardInvarianceProperty drives the worker-independence claim through
// testing/quick: for arbitrary (seed, fleet size, worker count), the report
// bytes must match the single-worker run of the same mission. This is the
// event-ordering property — boards are merged by index, never by completion
// order, so shard count cannot reorder events.
func TestShardInvarianceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short")
	}
	property := func(seed int64, boardsRaw, workersRaw uint8) bool {
		boards := 1 + int(boardsRaw%10)
		workers := 2 + int(workersRaw%7)
		base := reportBytes(t, testConfig(seed, boards, 1))
		got := reportBytes(t, testConfig(seed, boards, workers))
		return bytes.Equal(base, got)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestStrikeHistoryStrategyIndependent pins the cross-strategy comparability
// contract: the environment section of the report is identical whether one
// strategy runs or all four, because strikes are drawn from environment
// streams only.
func TestStrikeHistoryStrategyIndependent(t *testing.T) {
	full, err := Run(testConfig(7, 6, 3))
	if err != nil {
		t.Fatal(err)
	}
	one := testConfig(7, 6, 3)
	one.Strategies = []scrub.Strategy{scrub.StrategyReadback}
	single, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	if full.Env.Strikes != single.Env.Strikes ||
		full.Env.FlareStrikes != single.Env.FlareStrikes ||
		full.Env.MeasuredPerDeviceHour != single.Env.MeasuredPerDeviceHour {
		t.Fatalf("environment depends on strategy list: %+v vs %+v", full.Env, single.Env)
	}
	for k, n := range full.Env.ByKind {
		if single.Env.ByKind[k] != n {
			t.Fatalf("kind %q count %d vs %d", k, single.Env.ByKind[k], n)
		}
	}
}
