package mission

import "sync/atomic"

// Package-level mission counters, exported on campaignd's /metrics plane the
// same way seu.VectorKernelStats surfaces kernel activity. They accumulate
// across every Run in the process; reads are cheap atomic loads.
var stats struct {
	boards          atomic.Int64
	strikes         atomic.Int64
	scrubCycles     atomic.Int64
	repairs         atomic.Int64
	fullReconfigs   atomic.Int64
	telemetryFrames atomic.Int64
	telemetryBytes  atomic.Int64
}

// Stats is a snapshot of the process-wide mission simulation counters.
type Stats struct {
	// BoardsSimulated counts board-strategy simulations completed.
	BoardsSimulated int64
	// Strikes counts environment strikes generated (per board, shared by
	// all strategies, counted once).
	Strikes int64
	// ScrubCycles counts completed full scan cycles across all simulated
	// board-strategy pairs.
	ScrubCycles int64
	// Repairs counts partial-reconfiguration frame repairs.
	Repairs int64
	// FullReconfigs counts complete device reconfigurations.
	FullReconfigs int64
	// TelemetryFrames / TelemetryBytes count downlinked telemetry.
	TelemetryFrames int64
	TelemetryBytes  int64
}

// ScrubStats returns the process-wide mission counters.
func ScrubStats() Stats {
	return Stats{
		BoardsSimulated: stats.boards.Load(),
		Strikes:         stats.strikes.Load(),
		ScrubCycles:     stats.scrubCycles.Load(),
		Repairs:         stats.repairs.Load(),
		FullReconfigs:   stats.fullReconfigs.Load(),
		TelemetryFrames: stats.telemetryFrames.Load(),
		TelemetryBytes:  stats.telemetryBytes.Load(),
	}
}
