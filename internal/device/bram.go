package device

// Block RAM model. Each BRAM column holds Rows/BRAMRowsPerBlock blocks of
// BRAMWords x BRAMWidth bits. Content lives in the first BRAMContentFrames
// frames of the column; port routing configuration lives in the remaining
// frames. As on the real part, BRAM content is part of configuration memory
// (it is read back and scrubbed), which is exactly what makes readback of a
// live RAM hazardous — see internal/fpga's masking support.
const (
	// BRAMContentFrames is the number of frames per BRAM column that hold
	// memory content.
	BRAMContentFrames = 16
	// BRAMWords is the depth of one block.
	BRAMWords = 64
	// BRAMWidth is the word width of one block.
	BRAMWidth = 16
	// BRAMAddrBits is the address width of one block.
	BRAMAddrBits = 6
	// BRAMPortInBits is the width of one port-input source field:
	// valid(1) + row-offset(3) + output(2), selecting a CLB output in the
	// adjacent CLB column within the block's row span.
	BRAMPortInBits = 6
	// BRAMDoutLLBits is the width of one dout long-line driver field:
	// enable(1) + 4-bit dout bit select.
	BRAMDoutLLBits = 5
	// BRAMPortBits is the total port configuration per block:
	// 6 addr + 16 din + we + en source fields, then 4 dout drivers.
	BRAMPortBits = (BRAMAddrBits+BRAMWidth+2)*BRAMPortInBits + LongLinesPerCol*BRAMDoutLLBits
)

// Port-field offsets within a block's BRAMPortBits space.
const (
	BRAMPortAddrBase = 0                                              // 6 fields
	BRAMPortDinBase  = BRAMPortAddrBase + BRAMAddrBits*BRAMPortInBits // 16 fields
	BRAMPortWEBase   = BRAMPortDinBase + BRAMWidth*BRAMPortInBits
	BRAMPortENBase   = BRAMPortWEBase + BRAMPortInBits
	BRAMPortDoutBase = BRAMPortENBase + BRAMPortInBits // 4 fields of BRAMDoutLLBits
)

// bramRegionBits is the per-block bit region reserved inside each BRAM frame.
const bramRegionBits = BRAMRowsPerBlock * BitsPerCLBRow // 144

// BRAMAdjCol returns the CLB column whose outputs feed BRAM column bc's
// ports and whose column long lines carry its dout.
func (g Geometry) BRAMAdjCol(bc int) int {
	c := (bc + 1) * g.Cols / (g.BRAMCols + 1)
	if c >= g.Cols {
		c = g.Cols - 1
	}
	return c
}

// BRAMRowBase returns the first CLB row of block blk's span.
func (g Geometry) BRAMRowBase(blk int) int { return blk * BRAMRowsPerBlock }

// bramFrame returns the absolute frame index of frame f of BRAM column bc.
func (g Geometry) bramFrame(bc, f int) int {
	return g.CLBFrames() + bc*BRAMFramesPerCol + f
}

// BRAMContentBitAddr returns the bit address holding bit i of word w of
// block blk in BRAM column bc.
func (g Geometry) BRAMContentBitAddr(bc, blk, w, i int) BitAddr {
	idx := w*BRAMWidth + i // 0..1023
	f := idx % BRAMContentFrames
	pos := blk*bramRegionBits + idx/BRAMContentFrames
	return BitAddr(int64(g.bramFrame(bc, f))*int64(g.FrameLength()) + int64(pos))
}

// BRAMPortBitAddr returns the bit address of port configuration bit k
// (0..BRAMPortBits-1) of block blk in BRAM column bc.
func (g Geometry) BRAMPortBitAddr(bc, blk, k int) BitAddr {
	portFrames := BRAMFramesPerCol - BRAMContentFrames
	f := BRAMContentFrames + k%portFrames
	pos := blk*bramRegionBits + k/portFrames
	return BitAddr(int64(g.bramFrame(bc, f))*int64(g.FrameLength()) + int64(pos))
}

// blockOfBRAMOffset recovers the block index from an in-frame offset.
func blockOfBRAMOffset(g Geometry, off int) int {
	blk := off / bramRegionBits
	if max := g.BRAMBlocksPerCol() - 1; blk > max {
		blk = max
	}
	return blk
}
