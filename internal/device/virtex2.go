package device

// Virtex vs Virtex-II readback-masking analysis (§IV-A). On the real
// Virtex, the frame layout interleaves LUT truth-table bits one per frame,
// so a LUT used as a RAM or shift register forces 16 of its CLB column's 48
// frames out of the CRC-checkable set ("16 out of the 48 configuration data
// frames for that CLB column", 32 of 48 when both slices hold LUT
// memories). Virtex-II concentrates a column's LUT data into two frames,
// so "most of the bitstream data for that column ... can be read back
// during design execution without disturbing the circuit".
//
// This model's layout keeps each LUT's truth bits in adjacent per-CLB
// configuration slots, which lands between the two: MaskableFramesModel
// computes the exact per-column cost for this fabric, while CompareLayouts
// also reports the documented real-Virtex and Virtex-II arithmetic so the
// §IV-A argument can be made quantitatively.

// Real-part constants from the paper's §IV-A discussion.
const (
	// VirtexFramesPerLiveLUT is the real Virtex masking cost per live LUT
	// position in a column.
	VirtexFramesPerLiveLUT = 16
	// VirtexIIFramesPerColumn is the flat Virtex-II cost when any LUT in
	// the column holds live content.
	VirtexIIFramesPerColumn = 2
)

// MaskableFramesModel returns the distinct frames (within a CLB column's
// 48) that must be masked under THIS model's layout when LUT position l
// (0..3) holds live content anywhere in the column.
func (g Geometry) MaskableFramesModel(l int) []int {
	frames := map[int]bool{}
	for i := 0; i < LUTBits; i++ {
		cb := CBLUTBase + l*LUTBits + i
		frames[cb/BitsPerCLBRow] = true
	}
	out := make([]int, 0, len(frames))
	for f := range frames {
		out = append(out, f)
	}
	return out
}

// LayoutMaskCost summarizes the per-column readback-masking overhead of a
// set of live LUT positions under three layouts.
type LayoutMaskCost struct {
	// LiveLUTs is the number of distinct LUT positions (0..3) holding live
	// content in the column.
	LiveLUTs int
	// VirtexFrames is the real Virtex cost (paper's arithmetic: 16 frames
	// per live LUT position, capped at the column's 48).
	VirtexFrames int
	// ModelFrames is this fabric's exact cost.
	ModelFrames int
	// VirtexIIFrames is the Virtex-II cost (two frames flat).
	VirtexIIFrames int
	// ColumnFrames is the column's total frame count.
	ColumnFrames int
}

// CompareLayouts computes the §IV-A comparison for a column in which the
// given LUT positions hold live (RAM/SRL) content.
func (g Geometry) CompareLayouts(liveLUTs []int) LayoutMaskCost {
	cost := LayoutMaskCost{ColumnFrames: FramesPerCLBCol}
	modelFrames := map[int]bool{}
	seen := map[int]bool{}
	for _, l := range liveLUTs {
		if l < 0 || l >= LUTsPerCLB || seen[l] {
			continue
		}
		seen[l] = true
		cost.LiveLUTs++
		for _, f := range g.MaskableFramesModel(l) {
			modelFrames[f] = true
		}
	}
	cost.ModelFrames = len(modelFrames)
	cost.VirtexFrames = cost.LiveLUTs * VirtexFramesPerLiveLUT
	if cost.VirtexFrames > FramesPerCLBCol {
		cost.VirtexFrames = FramesPerCLBCol
	}
	if cost.LiveLUTs > 0 {
		cost.VirtexIIFrames = VirtexIIFramesPerColumn
	}
	return cost
}
