package device

import "fmt"

// NetKind identifies the class of a routing net.
type NetKind uint8

const (
	// NetUndriven marks a routing wire with no driver. Reading it returns
	// the value of a hidden half-latch keeper (see internal/fpga).
	NetUndriven NetKind = iota
	// NetCLBOut is output O of the CLB at (R, C).
	NetCLBOut
	// NetRowLL is row long-line channel O of row R.
	NetRowLL
	// NetColLL is column long-line channel O of column C.
	NetColLL
	// NetPin is device I/O pin O (see Pin* helpers for indexing).
	NetPin
)

func (k NetKind) String() string {
	switch k {
	case NetUndriven:
		return "undriven"
	case NetCLBOut:
		return "clbout"
	case NetRowLL:
		return "rowll"
	case NetColLL:
		return "colll"
	case NetPin:
		return "pin"
	}
	return "unknown"
}

// NetRef names one routing net. Field use depends on Kind:
// NetCLBOut uses R, C, O; NetRowLL uses R, O; NetColLL uses C, O; NetPin
// uses O as the global pin index.
type NetRef struct {
	Kind    NetKind
	R, C, O int
}

func (n NetRef) String() string {
	switch n.Kind {
	case NetCLBOut:
		return fmt.Sprintf("clb(%d,%d).out%d", n.R, n.C, n.O)
	case NetRowLL:
		return fmt.Sprintf("rowll(%d).ch%d", n.R, n.O)
	case NetColLL:
		return fmt.Sprintf("colll(%d).ch%d", n.C, n.O)
	case NetPin:
		return fmt.Sprintf("pin%d", n.O)
	}
	return "undriven"
}

// HexDistance is the reach of the "hex" vertical wires (slots 20..23).
const HexDistance = 6

// InputCandidate returns the net that input-mux slot s (0..InMuxWays-1) of
// the CLB at (r, c) taps. The slot plan per CLB is:
//
//	 0.. 3  own outputs 0..3 (local feedback)
//	 4.. 7  west neighbour outputs (device input pins on the west edge)
//	 8..11  east neighbour outputs (device input pins on the east edge)
//	12..15  north neighbour outputs (device input pins on the north edge)
//	16..19  south neighbour outputs (device input pins on the south edge)
//	20..23  hex wires from the CLB HexDistance rows north (undriven near the
//	        top edge — these taps read half-latches)
//	24..27  row long lines, channels 0..3
//	28..31  column long lines, channels 0..3
func (g Geometry) InputCandidate(r, c, s int) NetRef {
	o := s & 3
	switch {
	case s < 4:
		return NetRef{Kind: NetCLBOut, R: r, C: c, O: o}
	case s < 8:
		if c == 0 {
			return NetRef{Kind: NetPin, O: g.PinWest(r, o)}
		}
		return NetRef{Kind: NetCLBOut, R: r, C: c - 1, O: o}
	case s < 12:
		if c == g.Cols-1 {
			return NetRef{Kind: NetPin, O: g.PinEast(r, o)}
		}
		return NetRef{Kind: NetCLBOut, R: r, C: c + 1, O: o}
	case s < 16:
		if r == 0 {
			return NetRef{Kind: NetPin, O: g.PinNorth(c, o)}
		}
		return NetRef{Kind: NetCLBOut, R: r - 1, C: c, O: o}
	case s < 20:
		if r == g.Rows-1 {
			return NetRef{Kind: NetPin, O: g.PinSouth(c, o)}
		}
		return NetRef{Kind: NetCLBOut, R: r + 1, C: c, O: o}
	case s < 24:
		if r < HexDistance {
			return NetRef{Kind: NetUndriven}
		}
		return NetRef{Kind: NetCLBOut, R: r - HexDistance, C: c, O: o}
	case s < 28:
		return NetRef{Kind: NetRowLL, R: r, O: s - 24}
	default:
		return NetRef{Kind: NetColLL, C: c, O: s - 28}
	}
}

// Pin indexing: west and east edges expose 4 pins per row; north and south
// edges 4 pins per column. Pin indices are global and dense in
// [0, g.Pins()).

// PinWest returns the global pin index of west-edge pin o of row r.
func (g Geometry) PinWest(r, o int) int { return r*4 + o }

// PinEast returns the global pin index of east-edge pin o of row r.
func (g Geometry) PinEast(r, o int) int { return 4*g.Rows + r*4 + o }

// PinNorth returns the global pin index of north-edge pin o of column c.
func (g Geometry) PinNorth(c, o int) int { return 8*g.Rows + c*4 + o }

// PinSouth returns the global pin index of south-edge pin o of column c.
func (g Geometry) PinSouth(c, o int) int { return 8*g.Rows + 4*g.Cols + c*4 + o }

// Dense net-ID space for simulator state arrays. IDs are laid out as:
// CLB outputs, row long lines, column long lines, pins.

// NumNets returns the size of the dense net-ID space.
func (g Geometry) NumNets() int {
	return 4*g.CLBs() + LongLinesPerRow*g.Rows + LongLinesPerCol*g.Cols + g.Pins()
}

// NetID maps a NetRef to its dense ID, or -1 for undriven.
func (g Geometry) NetID(n NetRef) int {
	switch n.Kind {
	case NetCLBOut:
		return (n.R*g.Cols+n.C)*4 + n.O
	case NetRowLL:
		return 4*g.CLBs() + n.R*LongLinesPerRow + n.O
	case NetColLL:
		return 4*g.CLBs() + LongLinesPerRow*g.Rows + n.C*LongLinesPerCol + n.O
	case NetPin:
		return 4*g.CLBs() + LongLinesPerRow*g.Rows + LongLinesPerCol*g.Cols + n.O
	default:
		return -1
	}
}

// NetOf is the inverse of NetID.
func (g Geometry) NetOf(id int) NetRef {
	if id < 0 {
		return NetRef{Kind: NetUndriven}
	}
	clbOuts := 4 * g.CLBs()
	if id < clbOuts {
		return NetRef{Kind: NetCLBOut, R: id / 4 / g.Cols, C: (id / 4) % g.Cols, O: id & 3}
	}
	id -= clbOuts
	rowLLs := LongLinesPerRow * g.Rows
	if id < rowLLs {
		return NetRef{Kind: NetRowLL, R: id / LongLinesPerRow, O: id % LongLinesPerRow}
	}
	id -= rowLLs
	colLLs := LongLinesPerCol * g.Cols
	if id < colLLs {
		return NetRef{Kind: NetColLL, C: id / LongLinesPerCol, O: id % LongLinesPerCol}
	}
	id -= colLLs
	return NetRef{Kind: NetPin, O: id}
}

// Segment identifies one incoming routing wire tap of a CLB: the physical
// wire that slot S of the input muxes of CLB (R, C) listens to. Stuck-at
// faults for the permanent-fault (BIST) study attach to segments.
type Segment struct {
	R, C int
	S    int // slot, 0..InMuxWays-1
}

func (s Segment) String() string { return fmt.Sprintf("seg(%d,%d)#%d", s.R, s.C, s.S) }

// SegmentsPerCLB is the number of distinct incoming wires per CLB. It plays
// the role of the paper's "96 wires per CLB" (scaled to this fabric).
const SegmentsPerCLB = InMuxWays
