// Package device models the architecture of a Virtex-like SRAM FPGA: the
// CLB array, the column-oriented frame-addressed configuration memory, the
// per-CLB configuration field layout, and the routing fabric (input muxes,
// neighbour wires, long lines, I/O pins).
//
// The model is deliberately configuration-driven: every behavioural property
// of a configured device (LUT truth tables, routing selections, flip-flop
// modes) is decoded from configuration memory bits whose addresses this
// package defines. Corrupting a bit therefore genuinely changes behaviour,
// which is the property the paper's SEU simulator depends on.
package device

import "fmt"

// Architectural constants shared by every geometry. They mirror the Virtex
// numbers the paper quotes: 48 frames per CLB column and a frame length of
// 18 bits per CLB row plus 96 pad bits, which yields the paper's 156-byte
// (1248-bit) frame for the 64-row XQVR1000.
const (
	// FramesPerCLBCol is the number of configuration frames that together
	// configure one column of CLBs.
	FramesPerCLBCol = 48
	// BitsPerCLBRow is the number of bits each frame contributes to one CLB
	// row slot.
	BitsPerCLBRow = 18
	// FramePadBits is the number of trailing bits in each frame reserved for
	// IOB/clock configuration, which this model treats as padding.
	FramePadBits = 96
	// BRAMFramesPerCol is the number of frames in one block-RAM column.
	BRAMFramesPerCol = 24
)

// Geometry describes one device size. The zero value is not usable; use one
// of the constructors or fill Rows/Cols explicitly.
type Geometry struct {
	// Rows and Cols give the CLB array size.
	Rows, Cols int
	// BRAMCols is the number of block-RAM columns appended after the CLB
	// columns in frame address order.
	BRAMCols int
	// ExtraFrames is a count of additional unmodelled frames appended after
	// all CLB and BRAM frames (clock spine, configuration options, ...).
	ExtraFrames int
}

// XQVR1000 returns the full-size geometry used by the paper's flight system:
// a 64x96 CLB array whose configuration store totals ~5.81 million bits with
// 1248-bit (156-byte) frames.
func XQVR1000() Geometry {
	return Geometry{Rows: 64, Cols: 96, BRAMCols: 2}
}

// Small returns a scaled geometry suitable for unit tests and exhaustive
// fault-injection campaigns that must finish in seconds.
func Small() Geometry {
	return Geometry{Rows: 16, Cols: 24, BRAMCols: 1}
}

// Tiny returns the smallest geometry that still exercises every routing
// resource class; useful for property-based tests.
func Tiny() Geometry {
	return Geometry{Rows: 8, Cols: 8, BRAMCols: 1}
}

// Validate reports an error if the geometry is degenerate.
func (g Geometry) Validate() error {
	switch {
	case g.Rows < 2 || g.Cols < 2:
		return fmt.Errorf("device: geometry %dx%d too small (need at least 2x2)", g.Rows, g.Cols)
	case g.BRAMCols < 0 || g.ExtraFrames < 0:
		return fmt.Errorf("device: negative BRAMCols/ExtraFrames")
	default:
		return nil
	}
}

// FrameLength returns the number of bits in one configuration frame.
func (g Geometry) FrameLength() int { return g.Rows*BitsPerCLBRow + FramePadBits }

// FrameBytes returns the frame length in bytes (frames are byte-padded).
func (g Geometry) FrameBytes() int { return (g.FrameLength() + 7) / 8 }

// CLBFrames returns the number of frames configuring the CLB array.
func (g Geometry) CLBFrames() int { return g.Cols * FramesPerCLBCol }

// BRAMFrames returns the number of frames configuring block RAM columns.
func (g Geometry) BRAMFrames() int { return g.BRAMCols * BRAMFramesPerCol }

// TotalFrames returns the total number of configuration frames.
func (g Geometry) TotalFrames() int { return g.CLBFrames() + g.BRAMFrames() + g.ExtraFrames }

// TotalBits returns the total number of configuration bits in the device.
func (g Geometry) TotalBits() int64 {
	return int64(g.TotalFrames()) * int64(g.FrameLength())
}

// CLBs returns the number of CLBs in the array.
func (g Geometry) CLBs() int { return g.Rows * g.Cols }

// Slices returns the number of logic slices (2 per CLB, as in Virtex).
func (g Geometry) Slices() int { return g.CLBs() * SlicesPerCLB }

// LUTs returns the number of 4-input LUTs (2 per slice).
func (g Geometry) LUTs() int { return g.CLBs() * LUTsPerCLB }

// BRAMBlocks returns the number of block RAMs (one per 8 rows per column).
func (g Geometry) BRAMBlocks() int {
	perCol := g.Rows / BRAMRowsPerBlock
	if perCol < 1 {
		perCol = 1
	}
	return g.BRAMCols * perCol
}

// BRAMBlocksPerCol returns the number of block RAMs in one BRAM column.
func (g Geometry) BRAMBlocksPerCol() int {
	perCol := g.Rows / BRAMRowsPerBlock
	if perCol < 1 {
		perCol = 1
	}
	return perCol
}

// Pins returns the number of device I/O pins: 4 per row on the west and east
// edges plus 4 per column on the north and south edges.
func (g Geometry) Pins() int { return 4 * (2*g.Rows + 2*g.Cols) }

func (g Geometry) String() string {
	return fmt.Sprintf("%dx%d CLBs, %d BRAM cols, %d frames x %d bits = %d config bits",
		g.Rows, g.Cols, g.BRAMCols, g.TotalFrames(), g.FrameLength(), g.TotalBits())
}
