package device

import "testing"

// TestCLBBitPartition proves the influence maps tile the per-CLB
// configuration space exactly: every modeled bit is owned by exactly one
// site or one long-line driver slot, padding by neither, and the SiteCBRanges
// enumeration is the precise inverse of CLBBitSite.
func TestCLBBitPartition(t *testing.T) {
	owners := make([]int, CLBConfigBits)
	for l := 0; l < LUTsPerCLB; l++ {
		for _, rng := range SiteCBRanges(l) {
			if rng[0] < 0 || rng[1] > CLBConfigBits || rng[0] >= rng[1] {
				t.Fatalf("site %d range %v out of bounds", l, rng)
			}
			for cb := rng[0]; cb < rng[1]; cb++ {
				owners[cb]++
				if got := CLBBitSite(cb); got != l {
					t.Fatalf("bit %d in site %d ranges but CLBBitSite = %d", cb, l, got)
				}
			}
		}
	}
	var siteBits, llBits int
	for cb := 0; cb < CLBConfigBits; cb++ {
		site := CLBBitSite(cb)
		d, k := CLBBitLLDrv(cb)
		switch {
		case site >= 0 && d >= 0:
			t.Fatalf("bit %d claimed by both site %d and LL driver %d", cb, site, d)
		case site >= 0:
			if owners[cb] != 1 {
				t.Fatalf("site bit %d covered %d times by SiteCBRanges", cb, owners[cb])
			}
			siteBits++
		case d >= 0:
			if d >= LLDriversPerCLB || k < 0 || k >= LLDrvBits {
				t.Fatalf("bit %d maps to invalid LL driver (%d, %d)", cb, d, k)
			}
			if owners[cb] != 0 {
				t.Fatalf("LL bit %d also covered by SiteCBRanges", cb)
			}
			llBits++
		default:
			if cb < CBModeledBits {
				t.Fatalf("modeled bit %d owned by no resource", cb)
			}
			if owners[cb] != 0 {
				t.Fatalf("padding bit %d covered by SiteCBRanges", cb)
			}
		}
	}
	if siteBits+llBits != CBModeledBits {
		t.Errorf("site %d + LL %d bits != modeled %d", siteBits, llBits, CBModeledBits)
	}
	if llBits != LLDriversPerCLB*LLDrvBits {
		t.Errorf("LL bits = %d, want %d", llBits, LLDriversPerCLB*LLDrvBits)
	}
}

// TestInfluenceAgreesWithClassify cross-checks the influence maps against
// the campaign classifier over one full CLB.
func TestInfluenceAgreesWithClassify(t *testing.T) {
	g := Tiny()
	const r, c = 3, 5
	for cb := 0; cb < CLBConfigBits; cb++ {
		info := g.Classify(g.CLBBitOf(r, c, cb))
		if info.Kind != KindPad && (info.R != r || info.C != c || info.CB != cb) {
			t.Fatalf("Classify(CLBBitOf(%d,%d,%d)) = %+v", r, c, cb, info)
		}
		site := CLBBitSite(cb)
		d, _ := CLBBitLLDrv(cb)
		switch info.Kind {
		case KindLongLine:
			if d < 0 {
				t.Fatalf("bit %d is %v but CLBBitLLDrv rejects it", cb, info.Kind)
			}
		case KindPad:
			if site >= 0 || d >= 0 {
				t.Fatalf("padding bit %d claims site %d / driver %d", cb, site, d)
			}
		default:
			if site < 0 {
				t.Fatalf("bit %d is %v but CLBBitSite rejects it", cb, info.Kind)
			}
		}
	}
}
