package device

// Bit -> resource influence metadata. Classify says what kind of resource a
// configuration bit belongs to; the functions here refine that to the exact
// site or driver slot whose behaviour the bit can influence, and enumerate
// the inverse (all bits owned by a site). The static injection-triage layer
// in internal/fpga is built on these maps: a bit can only matter if the
// resource it configures can reach an observed output.

// CLBBitSite returns the LUT/FF/output site (0..LUTsPerCLB-1) that per-CLB
// configuration bit cb (0..CLBConfigBits-1) configures, or -1 when cb is
// not site-affine (long-line driver bits and padding).
func CLBBitSite(cb int) int {
	switch {
	case cb < CBLUTBase:
		return -1
	case cb < CBInMuxBase: // LUT truth table
		return (cb - CBLUTBase) / LUTBits
	case cb < CBFFBase: // input-mux select: input index is l*LUTInputs+in
		return (cb - CBInMuxBase) / InMuxSelBits / LUTInputs
	case cb < CBOutMuxBase: // flip-flop configuration
		return (cb - CBFFBase) / FFCfgBits
	case cb < CBLLBase: // output mux
		return cb - CBOutMuxBase
	case cb < CBLUTModeBase: // long-line driver: not site-affine
		return -1
	case cb < CBModeledBits: // SRL mode bit travels with its LUT
		return cb - CBLUTModeBase
	default: // padding
		return -1
	}
}

// CLBBitLLDrv returns the long-line driver slot (0..LLDriversPerCLB-1) and
// sub-bit (an LL* constant) configured by per-CLB bit cb, or (-1, -1) when
// cb is not a long-line driver bit.
func CLBBitLLDrv(cb int) (d, k int) {
	if cb < CBLLBase || cb >= CBLUTModeBase {
		return -1, -1
	}
	rel := cb - CBLLBase
	return rel / LLDrvBits, rel % LLDrvBits
}

// SiteCBRanges returns the half-open per-CLB configuration-bit ranges
// [lo, hi) owned by site l: truth table, input-mux selects, flip-flop
// fields, output mux, and SRL mode bit.
func SiteCBRanges(l int) [5][2]int {
	return [5][2]int{
		{CBLUTBase + l*LUTBits, CBLUTBase + (l+1)*LUTBits},
		{CBInMuxBase + l*LUTInputs*InMuxSelBits, CBInMuxBase + (l+1)*LUTInputs*InMuxSelBits},
		{CBFFBase + l*FFCfgBits, CBFFBase + (l+1)*FFCfgBits},
		{CBOutMuxBase + l, CBOutMuxBase + l + 1},
		{CBLUTModeBase + l, CBLUTModeBase + l + 1},
	}
}
