package device

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestXQVR1000MatchesPaperNumbers(t *testing.T) {
	g := XQVR1000()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.FrameBytes(); got != 156 {
		t.Errorf("frame bytes = %d, paper says 156", got)
	}
	if got := g.FrameLength(); got != 1248 {
		t.Errorf("frame length = %d bits, want 1248", got)
	}
	// Paper: "the entire bitstream of 5.8 million bits".
	bits := g.TotalBits()
	if bits < 5_700_000 || bits > 5_900_000 {
		t.Errorf("total bits = %d, want ~5.8M", bits)
	}
}

func TestGeometryValidate(t *testing.T) {
	bad := []Geometry{
		{Rows: 1, Cols: 8},
		{Rows: 8, Cols: 1},
		{Rows: 8, Cols: 8, BRAMCols: -1},
		{Rows: 8, Cols: 8, ExtraFrames: -2},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", g)
		}
	}
	for _, g := range []Geometry{Small(), Tiny(), XQVR1000()} {
		if err := g.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", g, err)
		}
	}
}

func TestCLBBitAddressesAreDisjoint(t *testing.T) {
	g := Tiny()
	seen := make(map[BitAddr][3]int)
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			for cb := 0; cb < CLBConfigBits; cb++ {
				a := g.CLBBitOf(r, c, cb)
				if a < 0 || int64(a) >= g.TotalBits() {
					t.Fatalf("CLBBitOf(%d,%d,%d) = %d out of range", r, c, cb, a)
				}
				if prev, dup := seen[a]; dup {
					t.Fatalf("address %d assigned to both %v and (%d,%d,%d)", a, prev, r, c, cb)
				}
				seen[a] = [3]int{r, c, cb}
			}
		}
	}
	want := g.CLBs() * CLBConfigBits
	if len(seen) != want {
		t.Fatalf("got %d distinct addresses, want %d", len(seen), want)
	}
}

func TestClassifyRoundTrip(t *testing.T) {
	g := Small()
	for r := 0; r < g.Rows; r += 3 {
		for c := 0; c < g.Cols; c += 5 {
			for cb := 0; cb < CLBConfigBits; cb++ {
				info := g.Classify(g.CLBBitOf(r, c, cb))
				if info.R != r || info.C != c || info.CB != cb {
					t.Fatalf("Classify(CLBBitOf(%d,%d,%d)) = %+v", r, c, cb, info)
				}
				var want BitKind
				switch {
				case cb < CBInMuxBase:
					want = KindLUT
				case cb < CBFFBase:
					want = KindInMux
				case cb < CBOutMuxBase:
					want = KindFF
				case cb < CBLLBase:
					want = KindOutMux
				case cb < CBLUTModeBase:
					want = KindLongLine
				case cb < CBModeledBits:
					want = KindLUT
				default:
					want = KindPad
				}
				if info.Kind != want {
					t.Fatalf("Classify cb=%d kind=%v want %v", cb, info.Kind, want)
				}
			}
		}
	}
}

func TestClassifyFramePadding(t *testing.T) {
	g := Small()
	// The last FramePadBits of a CLB frame are padding.
	a := BitAddr(int64(0)*int64(g.FrameLength()) + int64(g.Rows*BitsPerCLBRow))
	if got := g.Classify(a); got.Kind != KindPad {
		t.Errorf("pad region classified as %v", got.Kind)
	}
}

func TestClassifyBRAMAndExtra(t *testing.T) {
	g := Small()
	g.ExtraFrames = 4
	content := g.BRAMContentBitAddr(0, 0, 0, 0)
	if got := g.Classify(content); got.Kind != KindBRAMContent {
		t.Errorf("BRAM content classified as %v", got.Kind)
	}
	port := g.BRAMPortBitAddr(0, 0, 0)
	if got := g.Classify(port); got.Kind != KindBRAMPort {
		t.Errorf("BRAM port classified as %v", got.Kind)
	}
	extra := BitAddr(int64(g.CLBFrames()+g.BRAMFrames()) * int64(g.FrameLength()))
	if got := g.Classify(extra); got.Kind != KindExtra {
		t.Errorf("extra frame classified as %v", got.Kind)
	}
}

func TestBRAMAddressesAreDisjointAndInBRAMFrames(t *testing.T) {
	g := Small()
	seen := make(map[BitAddr]bool)
	lo := int64(g.CLBFrames()) * int64(g.FrameLength())
	hi := int64(g.CLBFrames()+g.BRAMFrames()) * int64(g.FrameLength())
	for bc := 0; bc < g.BRAMCols; bc++ {
		for blk := 0; blk < g.BRAMBlocksPerCol(); blk++ {
			for w := 0; w < BRAMWords; w++ {
				for i := 0; i < BRAMWidth; i++ {
					a := g.BRAMContentBitAddr(bc, blk, w, i)
					if int64(a) < lo || int64(a) >= hi {
						t.Fatalf("content addr %d outside BRAM frames [%d,%d)", a, lo, hi)
					}
					if seen[a] {
						t.Fatalf("duplicate content addr %d", a)
					}
					seen[a] = true
				}
			}
			for k := 0; k < BRAMPortBits; k++ {
				a := g.BRAMPortBitAddr(bc, blk, k)
				if int64(a) < lo || int64(a) >= hi {
					t.Fatalf("port addr %d outside BRAM frames", a)
				}
				if seen[a] {
					t.Fatalf("port addr %d collides", a)
				}
				seen[a] = true
			}
		}
	}
}

func TestNetIDRoundTrip(t *testing.T) {
	g := Tiny()
	n := g.NumNets()
	for id := 0; id < n; id++ {
		ref := g.NetOf(id)
		if back := g.NetID(ref); back != id {
			t.Fatalf("NetID(NetOf(%d)) = %d (%v)", id, back, ref)
		}
	}
	if g.NetID(NetRef{Kind: NetUndriven}) != -1 {
		t.Error("undriven net should map to -1")
	}
}

func TestNetIDRoundTripQuick(t *testing.T) {
	g := Small()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		id := rng.Intn(g.NumNets())
		return g.NetID(g.NetOf(id)) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInputCandidatesCoverAllClasses(t *testing.T) {
	g := Small()
	// Interior CLB: all four neighbour groups resolve to CLB outputs.
	r, c := g.Rows/2, g.Cols/2
	kinds := map[NetKind]int{}
	for s := 0; s < InMuxWays; s++ {
		kinds[g.InputCandidate(r, c, s).Kind]++
	}
	if kinds[NetCLBOut] != 24 { // own + 4 neighbours + hex
		t.Errorf("interior CLB: %d CLBOut candidates, want 24 (%v)", kinds[NetCLBOut], kinds)
	}
	if kinds[NetRowLL] != 4 || kinds[NetColLL] != 4 {
		t.Errorf("long-line candidates wrong: %v", kinds)
	}

	// Corner CLB (0,0): west and north groups become pins, hex undriven.
	kinds = map[NetKind]int{}
	for s := 0; s < InMuxWays; s++ {
		kinds[g.InputCandidate(0, 0, s).Kind]++
	}
	if kinds[NetPin] != 8 {
		t.Errorf("corner CLB: %d pin candidates, want 8 (%v)", kinds[NetPin], kinds)
	}
	if kinds[NetUndriven] != 4 {
		t.Errorf("corner CLB: %d undriven (half-latch) candidates, want 4", kinds[NetUndriven])
	}
}

func TestInputCandidateEdgesInBounds(t *testing.T) {
	g := Tiny()
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			for s := 0; s < InMuxWays; s++ {
				ref := g.InputCandidate(r, c, s)
				switch ref.Kind {
				case NetCLBOut:
					if ref.R < 0 || ref.R >= g.Rows || ref.C < 0 || ref.C >= g.Cols {
						t.Fatalf("candidate (%d,%d,%d) out of array: %v", r, c, s, ref)
					}
				case NetPin:
					if ref.O < 0 || ref.O >= g.Pins() {
						t.Fatalf("pin candidate out of range: %v", ref)
					}
				}
				if id := g.NetID(ref); id >= g.NumNets() {
					t.Fatalf("net id %d out of range for %v", id, ref)
				}
			}
		}
	}
}

func TestPinIndicesDense(t *testing.T) {
	g := Tiny()
	seen := make(map[int]bool)
	for r := 0; r < g.Rows; r++ {
		for o := 0; o < 4; o++ {
			seen[g.PinWest(r, o)] = true
			seen[g.PinEast(r, o)] = true
		}
	}
	for c := 0; c < g.Cols; c++ {
		for o := 0; o < 4; o++ {
			seen[g.PinNorth(c, o)] = true
			seen[g.PinSouth(c, o)] = true
		}
	}
	if len(seen) != g.Pins() {
		t.Fatalf("pin indices not dense: %d distinct, want %d", len(seen), g.Pins())
	}
	for p := range seen {
		if p < 0 || p >= g.Pins() {
			t.Fatalf("pin index %d out of range", p)
		}
	}
}

func TestFieldLayoutConstants(t *testing.T) {
	if CBModeledBits != 212 {
		t.Errorf("CBModeledBits = %d, design doc says 212", CBModeledBits)
	}
	if CLBConfigBits != 864 {
		t.Errorf("CLBConfigBits = %d, want 864", CLBConfigBits)
	}
	if CBModeledBits >= CLBConfigBits {
		t.Error("modelled fields overflow the per-CLB budget")
	}
}

func TestCEModeString(t *testing.T) {
	want := map[CEMode]string{
		CEHalfLatch: "half-latch", CERouted: "routed",
		CEConstZero: "const0", CEConstOne: "const1",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
}

func TestBitAddrFrameOffset(t *testing.T) {
	g := Small()
	a := g.CLBBitOf(3, 7, 100)
	f, off := a.Frame(g), a.Offset(g)
	if back := BitAddr(int64(f)*int64(g.FrameLength()) + int64(off)); back != a {
		t.Fatalf("frame/offset decomposition broken: %d -> (%d,%d) -> %d", a, f, off, back)
	}
	wantFrame := 7*FramesPerCLBCol + 100/BitsPerCLBRow
	if f != wantFrame {
		t.Errorf("frame = %d, want %d", f, wantFrame)
	}
}

func TestCompareLayoutsVirtexIIAdvantage(t *testing.T) {
	g := Small()
	// One live LUT: the paper's "16 out of the 48 frames" for Virtex, two
	// for Virtex-II.
	one := g.CompareLayouts([]int{1})
	if one.VirtexFrames != 16 {
		t.Errorf("Virtex cost = %d frames, paper says 16", one.VirtexFrames)
	}
	if one.VirtexIIFrames != 2 {
		t.Errorf("Virtex-II cost = %d frames, paper says 2", one.VirtexIIFrames)
	}
	if one.ModelFrames <= 0 || one.ModelFrames > FramesPerCLBCol {
		t.Errorf("model cost = %d out of range", one.ModelFrames)
	}
	// Both slices' LUTs live: "32 out of the 48 frames".
	both := g.CompareLayouts([]int{0, 1, 2, 3})
	if both.VirtexFrames != 48 { // 4 x 16 capped at the column
		t.Errorf("Virtex cost for 4 live LUTs = %d", both.VirtexFrames)
	}
	if both.VirtexIIFrames != 2 {
		t.Errorf("Virtex-II cost must stay 2, got %d", both.VirtexIIFrames)
	}
	two := g.CompareLayouts([]int{0, 2})
	if two.VirtexFrames != 32 {
		t.Errorf("Virtex cost for 2 live LUTs = %d, paper says 32", two.VirtexFrames)
	}
	// Degenerates.
	none := g.CompareLayouts(nil)
	if none.LiveLUTs != 0 || none.VirtexFrames != 0 || none.VirtexIIFrames != 0 {
		t.Errorf("empty live set should cost nothing: %+v", none)
	}
	dup := g.CompareLayouts([]int{1, 1, -3, 9})
	if dup.LiveLUTs != 1 {
		t.Errorf("dedup/validation broken: %+v", dup)
	}
}
