package device

import "fmt"

// Per-CLB logic resources, mirroring the Virtex slice organisation the paper
// relies on: each CLB holds two slices, each slice two 4-input LUTs and two
// flip-flops.
const (
	SlicesPerCLB  = 2
	LUTsPerSlice  = 2
	FFsPerSlice   = 2
	LUTsPerCLB    = SlicesPerCLB * LUTsPerSlice // 4
	FFsPerCLB     = SlicesPerCLB * FFsPerSlice  // 4
	LUTInputs     = 4
	LUTBits       = 1 << LUTInputs // 16 truth-table bits
	OutputsPerCLB = 4              // one per LUT/FF pair
	// InputsPerCLB is the number of LUT input pins that must each be routed
	// through a 32-way input multiplexer.
	InputsPerCLB = LUTsPerCLB * LUTInputs // 16
	// InMuxWays is the fan-in of every CLB input multiplexer; its select
	// field is InMuxSelBits wide.
	InMuxWays    = 32
	InMuxSelBits = 5
	// LongLinesPerRow and LongLinesPerCol are the number of long-line
	// channels spanning each row and column.
	LongLinesPerRow = 4
	LongLinesPerCol = 4
	// LLDriversPerCLB is the number of long lines a CLB can drive: the four
	// row channels of its row and the four column channels of its column.
	LLDriversPerCLB = LongLinesPerRow + LongLinesPerCol
	// BRAMRowsPerBlock is the number of CLB rows a block RAM spans.
	BRAMRowsPerBlock = 8
)

// Per-CLB configuration field layout. Each CLB owns CLBConfigBits = 864 bits
// of configuration memory (48 frames x 18 bits). The modelled behavioural
// fields occupy the first CBModeledBits of that space; the remainder is
// padding that corresponds to fabric features outside this model (carry
// chains, tristate buffers, extra PIPs). Padding bits are still injected and
// scrubbed — they are simply never behaviour-relevant, exactly like unused
// fabric bits on the real part.
const (
	// LUT truth tables: 4 LUTs x 16 bits.
	CBLUTBase = 0
	// Input mux selects: 16 inputs x 5 bits.
	CBInMuxBase = CBLUTBase + LUTsPerCLB*LUTBits // 64
	// Flip-flop configuration: 4 FFs x FFCfgBits bits.
	CBFFBase = CBInMuxBase + InputsPerCLB*InMuxSelBits // 144
	// Output multiplexers: 4 outputs x 1 bit (0 = LUT, 1 = FF).
	CBOutMuxBase = CBFFBase + FFsPerCLB*FFCfgBits // 180
	// Long-line drivers: 8 lines x 3 bits (enable + 2-bit source select).
	CBLLBase = CBOutMuxBase + OutputsPerCLB // 184
	// LUT mode: 4 bits, one per LUT. When set the LUT operates as a 16-bit
	// shift register (SRL16): its truth-table configuration bits become live
	// design state that shifts on every enabled clock. This is the feature
	// that makes configuration readback hazardous for designs that use LUTs
	// as memories (paper §II-C).
	CBLUTModeBase = CBLLBase + LLDriversPerCLB*LLDrvBits // 208
	// CBModeledBits is the count of behaviour-relevant bits per CLB.
	CBModeledBits = CBLUTModeBase + LUTsPerCLB // 212
	// CLBConfigBits is the full per-CLB configuration budget.
	CLBConfigBits = FramesPerCLBCol * BitsPerCLBRow // 864
)

// Flip-flop configuration sub-fields (FFCfgBits bits per FF).
const (
	FFInitBit   = 0 // initial value loaded by the full-configuration start-up
	FFCEModeLo  = 1 // clock-enable mode, low bit
	FFCEModeHi  = 2 // clock-enable mode, high bit
	FFCESelBase = 3 // 5-bit routed clock-enable source select
	FFDInvBit   = 8 // invert the D input
	FFCfgBits   = 9
)

// Clock-enable modes. CEHalfLatch is the pathological default the paper's
// half-latch study revolves around: an unconnected CE input picks up a
// constant 1 from a hidden weak keeper that readback cannot see.
type CEMode uint8

const (
	// CEHalfLatch: CE input unconnected; value supplied by the hidden
	// half-latch keeper (normally 1 = always enabled).
	CEHalfLatch CEMode = 0
	// CERouted: CE driven by the routed source in the FFCESel field.
	CERouted CEMode = 1
	// CEConstZero: FF never loads (holds its init value forever).
	CEConstZero CEMode = 2
	// CEConstOne: always enabled via a configuration-memory constant (the
	// RadDRC-mitigated form: scrubbable, no hidden state).
	CEConstOne CEMode = 3
)

func (m CEMode) String() string {
	switch m {
	case CEHalfLatch:
		return "half-latch"
	case CERouted:
		return "routed"
	case CEConstZero:
		return "const0"
	case CEConstOne:
		return "const1"
	}
	return fmt.Sprintf("CEMode(%d)", uint8(m))
}

// Long-line driver sub-fields (LLDrvBits bits per driver).
const (
	LLEnableBit = 0
	LLSrcBase   = 1 // 2-bit select of which CLB output drives the line
	LLDrvBits   = 3
)

// CLBBitOf returns the absolute bit address of configuration bit cb
// (0..CLBConfigBits-1) of the CLB at (row r, column c).
func (g Geometry) CLBBitOf(r, c, cb int) BitAddr {
	f := cb / BitsPerCLBRow
	b := cb % BitsPerCLBRow
	frame := c*FramesPerCLBCol + f
	return BitAddr(int64(frame)*int64(g.FrameLength()) + int64(r*BitsPerCLBRow+b))
}

// LUTBitAddr returns the bit address of truth-table bit i of LUT l in the
// CLB at (r, c).
func (g Geometry) LUTBitAddr(r, c, l, i int) BitAddr {
	return g.CLBBitOf(r, c, CBLUTBase+l*LUTBits+i)
}

// InMuxBitAddr returns the bit address of select bit k of input mux in
// (0..15) of the CLB at (r, c).
func (g Geometry) InMuxBitAddr(r, c, in, k int) BitAddr {
	return g.CLBBitOf(r, c, CBInMuxBase+in*InMuxSelBits+k)
}

// FFBitAddr returns the bit address of configuration bit k (an FF* constant)
// of flip-flop ff in the CLB at (r, c).
func (g Geometry) FFBitAddr(r, c, ff, k int) BitAddr {
	return g.CLBBitOf(r, c, CBFFBase+ff*FFCfgBits+k)
}

// OutMuxBitAddr returns the bit address of the output-mux select for output
// o of the CLB at (r, c).
func (g Geometry) OutMuxBitAddr(r, c, o int) BitAddr {
	return g.CLBBitOf(r, c, CBOutMuxBase+o)
}

// LUTModeBitAddr returns the bit address of the SRL-mode bit of LUT l in
// the CLB at (r, c).
func (g Geometry) LUTModeBitAddr(r, c, l int) BitAddr {
	return g.CLBBitOf(r, c, CBLUTModeBase+l)
}

// LLDrvBitAddr returns the bit address of configuration bit k of long-line
// driver d (0..7) of the CLB at (r, c).
func (g Geometry) LLDrvBitAddr(r, c, d, k int) BitAddr {
	return g.CLBBitOf(r, c, CBLLBase+d*LLDrvBits+k)
}

// BitAddr is an absolute configuration-memory bit address:
// frame*FrameLength + offset.
type BitAddr int64

// Frame returns the frame index of the address under geometry g.
func (a BitAddr) Frame(g Geometry) int { return int(int64(a) / int64(g.FrameLength())) }

// Offset returns the in-frame bit offset of the address under geometry g.
func (a BitAddr) Offset(g Geometry) int { return int(int64(a) % int64(g.FrameLength())) }

// BitKind classifies what a configuration bit controls.
type BitKind uint8

const (
	KindPad BitKind = iota // unmodelled fabric / frame padding
	KindLUT
	KindInMux
	KindFF
	KindOutMux
	KindLongLine
	KindBRAMContent
	KindBRAMPort
	KindExtra // frames beyond CLB+BRAM columns
)

func (k BitKind) String() string {
	switch k {
	case KindPad:
		return "pad"
	case KindLUT:
		return "lut"
	case KindInMux:
		return "inmux"
	case KindFF:
		return "ff"
	case KindOutMux:
		return "outmux"
	case KindLongLine:
		return "longline"
	case KindBRAMContent:
		return "bram-content"
	case KindBRAMPort:
		return "bram-port"
	case KindExtra:
		return "extra"
	}
	return "unknown"
}

// BitInfo describes the resource a configuration bit belongs to.
type BitInfo struct {
	Kind BitKind
	// R, C locate the CLB for CLB-kind bits; for BRAM kinds C is the BRAM
	// column index and R the block index.
	R, C int
	// CB is the per-CLB configuration bit index (0..CLBConfigBits-1) for CLB
	// kinds.
	CB int
}

// Classify maps an absolute bit address to the resource it configures.
func (g Geometry) Classify(a BitAddr) BitInfo {
	frame := a.Frame(g)
	off := a.Offset(g)
	switch {
	case frame < g.CLBFrames():
		c := frame / FramesPerCLBCol
		f := frame % FramesPerCLBCol
		if off >= g.Rows*BitsPerCLBRow {
			return BitInfo{Kind: KindPad, C: c}
		}
		r := off / BitsPerCLBRow
		b := off % BitsPerCLBRow
		cb := f*BitsPerCLBRow + b
		info := BitInfo{R: r, C: c, CB: cb}
		switch {
		case cb < CBInMuxBase:
			info.Kind = KindLUT
		case cb < CBFFBase:
			info.Kind = KindInMux
		case cb < CBOutMuxBase:
			info.Kind = KindFF
		case cb < CBLLBase:
			info.Kind = KindOutMux
		case cb < CBLUTModeBase:
			info.Kind = KindLongLine
		case cb < CBModeledBits:
			info.Kind = KindLUT // LUT mode bits travel with the LUT resource
		default:
			info.Kind = KindPad
		}
		return info
	case frame < g.CLBFrames()+g.BRAMFrames():
		bf := frame - g.CLBFrames()
		bc := bf / BRAMFramesPerCol
		f := bf % BRAMFramesPerCol
		if f < BRAMContentFrames {
			return BitInfo{Kind: KindBRAMContent, C: bc, R: blockOfBRAMOffset(g, off)}
		}
		return BitInfo{Kind: KindBRAMPort, C: bc, R: blockOfBRAMOffset(g, off)}
	default:
		return BitInfo{Kind: KindExtra}
	}
}
