package seu

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/device"
)

// TestPrePlanAmortizesPlanner is the regression test for the amortized
// batch planner: one campaign may invoke PlanVectorDelta at most once per
// sampled bit (the pre-plan pass), regardless of worker count, chunking, or
// batch boundaries — and an identical follow-up campaign over the same
// substrate must not invoke it at all (plan-cache hit).
func TestPrePlanAmortizesPlanner(t *testing.T) {
	spec, err := designs.ByName("MULT 12")
	if err != nil {
		t.Fatal(err)
	}
	bd := boardFor(t, spec.Build(), device.Tiny())
	opts := DefaultOptions()
	opts.Kernel = KernelVector
	opts.Sample = 0.15
	opts.Seed = 11
	opts.Workers = 2
	opts.Triage = false

	limit, _ := selectionPlan(opts, bd.Geometry().TotalBits())
	var sampled int64
	for a := device.BitAddr(0); int64(a) < limit; a++ {
		if selected(opts, a) {
			sampled++
		}
	}
	if sampled == 0 {
		t.Fatal("campaign sampled no bits")
	}

	before := plannerCalls.Load()
	ref, err := Run(bd, opts)
	if err != nil {
		t.Fatal(err)
	}
	calls := plannerCalls.Load() - before
	if calls == 0 {
		t.Fatal("vector campaign never consulted the planner")
	}
	if calls > sampled {
		t.Fatalf("planner invoked %d times for %d sampled bits — classification is not amortized", calls, sampled)
	}

	// Identical campaign, same substrate: the cached plan must serve it
	// with zero fresh planner work and a byte-identical report.
	hitsBefore, _ := PlanCacheStats()
	before = plannerCalls.Load()
	got, err := Run(bd, opts)
	if err != nil {
		t.Fatal(err)
	}
	if extra := plannerCalls.Load() - before; extra != 0 {
		t.Fatalf("cached campaign invoked the planner %d times", extra)
	}
	if hitsAfter, _ := PlanCacheStats(); hitsAfter == hitsBefore {
		t.Fatal("identical campaign missed the plan cache")
	}
	compareReports(t, "cached-plan", ref, got)

	// A different selection over the same substrate rebuilds the
	// classification (entries depend on the sampled set) but may not
	// recompile the design — and must still cap planner calls at one per
	// sampled bit.
	opts2 := opts
	opts2.Seed = 12
	var sampled2 int64
	for a := device.BitAddr(0); int64(a) < limit; a++ {
		if selected(opts2, a) {
			sampled2++
		}
	}
	before = plannerCalls.Load()
	if _, err := Run(bd, opts2); err != nil {
		t.Fatal(err)
	}
	if extra := plannerCalls.Load() - before; extra > sampled2 {
		t.Fatalf("re-keyed campaign invoked planner %d times for %d sampled bits", extra, sampled2)
	}
}

// TestPrePlanCacheKeying pins the cache-entry lifecycle: a campaign parks
// its plan under the placement, keyed by substrate fingerprint plus the
// selection-shaping options.
func TestPrePlanCacheKeying(t *testing.T) {
	spec, err := designs.ByName("MULT 12")
	if err != nil {
		t.Fatal(err)
	}
	bd := boardFor(t, spec.Build(), device.Tiny())
	opts := DefaultOptions()
	opts.Kernel = KernelVector
	opts.Sample = 0.1
	opts.Seed = 7
	opts.Workers = 1
	opts.MaxBits = 200
	if _, err := Run(bd, opts); err != nil {
		t.Fatal(err)
	}
	ce := planCacheFor(bd.Placed)
	if ce == nil {
		t.Fatal("vector campaign left no plan-cache entry")
	}
	if ce.fp != bd.CampaignFingerprint() {
		t.Fatal("cached entry fingerprint does not match the board substrate")
	}
	if ce.plan == nil {
		t.Fatalf("small campaign's plan (%d entries) was not cached", len(ce.plan.entries))
	}
	if ce.comp == nil {
		t.Fatal("cache entry lost the compiled design")
	}
	for i := 1; i < len(ce.plan.entries); i++ {
		if ce.plan.entries[i].addr <= ce.plan.entries[i-1].addr {
			t.Fatal("plan entries not strictly ascending by address")
		}
	}
}
