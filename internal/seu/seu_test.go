package seu

import (
	"testing"

	"repro/internal/board"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/synth"
)

// boardFor places a circuit on Tiny and builds a testbed.
func boardFor(t *testing.T, c *netlist.Circuit, g device.Geometry) *board.SLAAC1V {
	t.Helper()
	p, err := place.Place(c, g)
	if err != nil {
		t.Fatalf("place %s: %v", c.Name, err)
	}
	bd, err := board.New(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	return bd
}

func TestBoardLockStep(t *testing.T) {
	spec, err := designs.ByName("MULT 12")
	if err != nil {
		t.Fatal(err)
	}
	bd := boardFor(t, spec.Build(), device.Small())
	if mism, first := bd.StepN(200); mism != 0 {
		t.Fatalf("uncorrupted board mismatched %d times (first at %d)", mism, first)
	}
	if bd.Cycle() != 200 {
		t.Errorf("cycle = %d", bd.Cycle())
	}
	if bd.OutputWidth() == 0 {
		t.Error("no compared outputs")
	}
}

func TestBoardDetectsInjectedUpset(t *testing.T) {
	spec, _ := designs.ByName("MULT 12")
	p, err := place.Place(spec.Build(), device.Small())
	if err != nil {
		t.Fatal(err)
	}
	bd, err := board.New(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a truth-table bit of a used site: find a registered site's
	// LUT and flip one of its truth bits.
	// Buffer LUTs tie their unused inputs to the routed input, so only
	// truth indices 0 and 15 are ever addressed; bit 0 is always sensitive.
	s := p.Sites[0]
	g := p.Geom
	bd.DUT.InjectBit(g.LUTBitAddr(s.R, s.C, s.O, 0))
	if !bd.RunUntilMismatch(200) {
		t.Fatal("comparator missed a corrupted used LUT")
	}
}

func feedforwardReport(t *testing.T) *Report {
	t.Helper()
	// A compact feed-forward design: registered XOR/AND datapath.
	b := netlist.NewBuilder("ff-datapath")
	in := b.Input("A", 6)
	regs := synth.Register(b, []netlist.SignalID{
		b.Xor(in[0], in[1]), b.And(in[2], in[3]), b.Xor(in[4], in[5]),
		b.Or(in[0], in[5]), b.Xor3(in[1], in[2], in[3]), b.Maj3(in[3], in[4], in[5]),
	})
	b.Output("O", regs)
	bd := boardFor(t, b.MustBuild(), device.Tiny())
	opts := DefaultOptions()
	opts.Sample = 0.12
	opts.Seed = 3
	rep, err := Run(bd, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestCampaignFeedForwardHasNoPersistentBits(t *testing.T) {
	rep := feedforwardReport(t)
	if rep.Injections == 0 || rep.Failures == 0 {
		t.Fatalf("campaign found nothing: %+v", rep)
	}
	if rep.Sensitivity() <= 0 || rep.Sensitivity() > 0.5 {
		t.Errorf("sensitivity = %f out of plausible range", rep.Sensitivity())
	}
	// Pure feed-forward pipeline: transient errors flush; the paper
	// measured 0%% persistence for its multiply-add design.
	if ratio := rep.PersistenceRatio(); ratio > 0.05 {
		t.Errorf("feed-forward persistence ratio = %.3f, want ~0", ratio)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestCampaignLFSRIsHighlyPersistent(t *testing.T) {
	c := designs.LFSRCluster("lfsr-test", 2, 2, 8)
	bd := boardFor(t, c, device.Tiny())
	opts := DefaultOptions()
	opts.Sample = 0.12
	opts.Seed = 4
	rep, err := Run(bd, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures == 0 {
		t.Fatal("LFSR campaign found no sensitive bits")
	}
	// The paper measured 93.9% persistence for its big LFSR; the shape
	// requirement is "most sensitive bits are persistent".
	if ratio := rep.PersistenceRatio(); ratio < 0.5 {
		t.Errorf("LFSR persistence ratio = %.3f, want > 0.5", ratio)
	}
}

func TestCampaignBookkeeping(t *testing.T) {
	rep := feedforwardReport(t)
	var kindSum int64
	for _, n := range rep.InjectionsByKind {
		kindSum += n
	}
	if kindSum != rep.Injections {
		t.Errorf("per-kind injections %d != total %d", kindSum, rep.Injections)
	}
	if rep.FailuresByKind[device.KindPad] != 0 {
		t.Error("padding bits reported as sensitive")
	}
	if int64(len(rep.SensitiveBits)) != rep.Failures {
		t.Errorf("collected %d bits, failures %d", len(rep.SensitiveBits), rep.Failures)
	}
	for _, bit := range rep.SensitiveBits {
		if bit.FirstErrorCycle < 0 {
			t.Errorf("sensitive bit %d has no first-error cycle", bit.Addr)
		}
	}
	if rep.SimulatedTime <= 0 || rep.WallTime <= 0 {
		t.Error("timing not accounted")
	}
}

func TestCampaignLeavesBoardClean(t *testing.T) {
	spec, _ := designs.ByName("MULT 12")
	p, err := place.Place(spec.Build(), device.Small())
	if err != nil {
		t.Fatal(err)
	}
	bd, err := board.New(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	golden := bd.DUT.ConfigMemory().Clone()
	opts := DefaultOptions()
	opts.Sample = 0.01
	opts.Seed = 5
	if _, err := Run(bd, opts); err != nil {
		t.Fatal(err)
	}
	if !bd.DUT.ConfigMemory().Equal(golden) {
		t.Fatal("campaign left corruption in the DUT configuration")
	}
	if mism, _ := bd.StepN(50); mism != 0 {
		t.Fatal("board not in lock-step after campaign")
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	spec, _ := designs.ByName("MULT 12")
	bd := boardFor(t, spec.Build(), device.Small())
	if _, err := Run(bd, Options{}); err == nil {
		t.Fatal("zero options accepted")
	}
}

func TestTracePersistentCounterBit(t *testing.T) {
	// A small free-running counter: upsetting a state-feedback bit yields
	// the paper's Fig. 7 behaviour — after repair, the count never
	// re-converges until reset.
	b := netlist.NewBuilder("counter")
	b.Output("O", synth.Counter(b, 6))
	c := b.MustBuild()
	bd := boardFor(t, c, device.Tiny())

	// Find a persistent bit with a short campaign.
	opts := DefaultOptions()
	opts.Sample = 0.15
	opts.Seed = 6
	rep, err := Run(bd, opts)
	if err != nil {
		t.Fatal(err)
	}
	var target device.BitAddr = -1
	for _, bit := range rep.SensitiveBits {
		if bit.Persistent {
			target = bit.Addr
			break
		}
	}
	if target < 0 {
		t.Fatal("no persistent bit found in a counter")
	}
	bd.ResetBoth()
	trace, err := Trace(bd, target, 10, 12, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 52 {
		t.Fatalf("trace length %d", len(trace))
	}
	for _, pt := range trace[:10] {
		if !pt.Match {
			t.Fatal("mismatch before injection")
		}
	}
	// After the corrupt window plus repair, a persistent bit keeps the
	// outputs diverged for the remainder of the trace.
	tail := trace[len(trace)-10:]
	diverged := 0
	for _, pt := range tail {
		if !pt.Match {
			diverged++
		}
	}
	if diverged < 8 {
		t.Errorf("persistent-bit trace re-converged (%d/10 diverged in tail)", diverged)
	}
}

func TestCorrelationTableAndSensitiveNodes(t *testing.T) {
	spec, _ := designs.ByName("MULT 12")
	p, err := place.Place(spec.Build(), device.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	bd, err := board.New(p, 21)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Sample = 0.2
	opts.Seed = 21
	opts.ClassifyPersistence = false
	rep, err := Run(bd, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures == 0 {
		t.Fatal("no sensitive bits to correlate")
	}
	table := Correlate(rep)
	if len(table.Entries) != len(rep.SensitiveBits) {
		t.Fatalf("table entries %d != sensitive bits %d", len(table.Entries), len(rep.SensitiveBits))
	}
	// Every sensitive bit recorded at least one failed output.
	for _, e := range table.Entries {
		if len(e.Outputs) == 0 {
			t.Fatalf("bit %d has no correlated outputs", e.Addr)
		}
		for _, o := range e.Outputs {
			if o < 0 || o >= bd.OutputWidth() {
				t.Fatalf("correlated output %d out of range", o)
			}
		}
	}
	hot := table.HotOutputs()
	if len(hot) == 0 {
		t.Fatal("no hot outputs")
	}
	for i := 1; i < len(hot); i++ {
		if table.ByOutput[hot[i]] > table.ByOutput[hot[i-1]] {
			t.Fatal("HotOutputs not sorted by exposure")
		}
	}
	if table.String() == "" {
		t.Error("empty table string")
	}

	// The sensitive cross-section maps back to netlist nodes.
	nodes := SensitiveNodes(p, rep)
	if len(nodes) == 0 {
		t.Fatal("no sensitive nodes identified")
	}
	for n := range nodes {
		if n < 0 || n >= len(p.Circuit.Nodes) {
			t.Fatalf("sensitive node %d out of range", n)
		}
	}
	// The cross-section is a proper subset of the design for a sampled run.
	if len(nodes) > len(p.Circuit.Nodes) {
		t.Fatalf("more sensitive nodes than nodes: %d > %d", len(nodes), len(p.Circuit.Nodes))
	}
}
