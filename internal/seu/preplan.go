package seu

import (
	"context"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/board"
	"repro/internal/device"
	"repro/internal/fpga"
	"repro/internal/place"
)

// Amortized batch planning. A vector-kernel campaign used to classify every
// sampled bit (Classify + PlanVectorDelta) inside the per-worker injection
// loop — once per chunk visit, once more per pooled-replica reuse. The
// pre-plan hoists that into one pass over the sampled address range, run
// once per campaign: every selected bit gets a planEntry recording its
// disposition and, for lane-eligible bits, the ready-to-apply overlay delta
// and per-injection stimulus seed. Workers then just walk their window of
// the entry slice. The plan (and the compiled struct-of-arrays design it
// carries) is cached per placement keyed by the board's CampaignFingerprint
// and the selection-relevant options, so repeated campaigns over the same
// substrate — crosscheck lattice points, benchmark variants, chunked
// re-runs — skip both the compile and the classification pass entirely.

// planAct is a sampled bit's precomputed disposition.
type planAct uint8

const (
	// planPad: FastPadSkip retired the bit (padding/extra, provably benign).
	planPad planAct = iota
	// planTriage: the static cone-of-influence triage retired the bit.
	planTriage
	// planBenign: the planner proved the flip decode-identical to golden.
	planBenign
	// planVector: lane-eligible; delta holds the overlay.
	planVector
	// planCarry: scalar observe/repair, then lane-carried clean/persist
	// windows (DemotedWindowable).
	planCarry
	// planScalar: fully scalar (e.g. BRAM port bits).
	planScalar
)

// planEntry is one sampled bit's precomputed campaign work item.
type planEntry struct {
	addr  device.BitAddr
	seed  int64 // stimulus seed (planVector/planCarry/planScalar)
	delta fpga.VectorDelta
	kind  device.BitKind
	act   planAct
}

// prePlan is a campaign's classified injection set plus the compiled design
// every lane machine shares. Immutable once built; shared read-only across
// workers, chunks, and pooled replicas.
type prePlan struct {
	comp    *fpga.CompiledDesign
	entries []planEntry
}

// window returns the entries with lo <= addr < hi (entries ascend by addr).
func (p *prePlan) window(lo, hi int64) []planEntry {
	i := sort.Search(len(p.entries), func(k int) bool { return int64(p.entries[k].addr) >= lo })
	j := sort.Search(len(p.entries), func(k int) bool { return int64(p.entries[k].addr) >= hi })
	return p.entries[i:j]
}

// Campaign-plane counters (exported through campaignd's /metrics).
var (
	plannerCalls    atomic.Int64 // PlanVectorDelta invocations (≤1 per sampled bit per campaign)
	planCacheHits   atomic.Int64
	planCacheMisses atomic.Int64
	poolHits        atomic.Int64 // replica-pool reuses
	poolMisses      atomic.Int64 // fresh board clones
)

// PlanCacheStats returns cumulative pre-plan cache hits and misses.
func PlanCacheStats() (hits, misses int64) {
	return planCacheHits.Load(), planCacheMisses.Load()
}

// PoolStats returns cumulative replica-pool hits (reuses) and misses
// (fresh clones).
func PoolStats() (hits, misses int64) {
	return poolHits.Load(), poolMisses.Load()
}

// planKey is everything besides the substrate fingerprint that shapes a
// plan: the selection set (seed/sample/limit derived from MaxBits) and the
// skip classifiers baked into the entries.
type planKey struct {
	fp      uint64
	seed    int64
	sample  float64
	limit   int64
	triage  bool
	padSkip bool
}

// maxCachedPlanEntries bounds the per-placement plan cache: a full-device
// exhaustive sweep's entry slice can reach hundreds of MB, which is not
// worth parking between campaigns. The compiled design (small) is cached
// regardless.
const maxCachedPlanEntries = 1 << 20

var planCaches sync.Map // map[*place.Placed]*planCacheEntry

type planCacheEntry struct {
	fp   uint64
	comp *fpga.CompiledDesign
	key  planKey
	plan *prePlan // nil when the entry slice was too large to cache
}

// pprof label sets for the vector path's stages (satellite of the SoA
// work): -cpuprofile output attributes time to plan/simulate/emit.
var (
	labelsPlan     = pprof.Labels("kernel", "vector", "phase", "plan")
	labelsSimulate = pprof.Labels("kernel", "vector", "phase", "simulate")
	labelsEmit     = pprof.Labels("kernel", "vector", "phase", "emit")
)

// campaignPlan gates pre-planning on vector eligibility: the scalar
// kernels need no plan, and designs with history-coupled state (or no
// design at all) run every bit on the scalar path regardless of Kernel.
func campaignPlan(bd *board.SLAAC1V, opts Options, limit int64, tri *triage) *prePlan {
	if !opts.Kernel.vectorized() || bd.DUT.HistoryCoupled() || bd.DUT.Unprogrammed() {
		return nil
	}
	return prePlanFor(bd, opts, limit, tri)
}

// prePlanFor returns the campaign's pre-plan, from the per-placement cache
// when the substrate fingerprint and selection options match, else by
// compiling and classifying now. The caller guarantees vector eligibility
// (a vectorized Kernel, not history-coupled, programmed).
func prePlanFor(bd *board.SLAAC1V, opts Options, limit int64, tri *triage) *prePlan {
	key := planKey{
		fp:      bd.CampaignFingerprint(),
		seed:    opts.Seed,
		sample:  opts.Sample,
		limit:   limit,
		triage:  tri != nil,
		padSkip: opts.FastPadSkip,
	}
	var comp *fpga.CompiledDesign
	if e, ok := planCaches.Load(bd.Placed); ok {
		ce := e.(*planCacheEntry)
		if ce.fp == key.fp {
			if ce.plan != nil && ce.key == key {
				planCacheHits.Add(1)
				return ce.plan
			}
			// Same substrate, different selection (or uncached entries):
			// reuse the compiled design, rebuild the classification.
			comp = ce.comp
		}
	}
	planCacheMisses.Add(1)
	var plan *prePlan
	pprof.Do(context.Background(), labelsPlan, func(context.Context) {
		if comp == nil {
			comp = board.CompileVector(bd)
		}
		plan = buildPrePlan(bd, opts, limit, tri, comp)
	})
	ce := &planCacheEntry{fp: key.fp, comp: comp, key: key}
	if len(plan.entries) <= maxCachedPlanEntries {
		ce.plan = plan
	}
	planCaches.Store(bd.Placed, ce)
	return plan
}

// buildPrePlan runs the one-pass classification over the sampled range.
// The planner runs against the base board's golden decode — identical to
// every replica's — so its verdicts hold for all workers.
func buildPrePlan(bd *board.SLAAC1V, opts Options, limit int64, tri *triage, comp *fpga.CompiledDesign) *prePlan {
	g := bd.Geometry()
	p := &prePlan{comp: comp}
	for a := device.BitAddr(0); int64(a) < limit; a++ {
		if !selected(opts, a) {
			continue
		}
		info := g.Classify(a)
		e := planEntry{addr: a, kind: info.Kind}
		switch {
		case opts.FastPadSkip && (info.Kind == device.KindPad || info.Kind == device.KindExtra):
			e.act = planPad
		case tri.inert(a):
			e.act = planTriage
		default:
			plannerCalls.Add(1)
			d, ok := bd.Golden.PlanVectorDelta(a, info)
			switch {
			case ok && d.Inert():
				e.act = planBenign
			case ok:
				e.act = planVector
				e.delta = d
				e.seed = stimulusSeed(opts.Seed, a)
			case bd.Golden.DemotedWindowable(info):
				e.act = planCarry
				e.seed = stimulusSeed(opts.Seed, a)
			default:
				e.act = planScalar
				e.seed = stimulusSeed(opts.Seed, a)
			}
		}
		p.entries = append(p.entries, e)
	}
	return p
}

// planCacheFor exposes cache internals to tests.
func planCacheFor(p *place.Placed) *planCacheEntry {
	v, _ := planCaches.Load(p)
	if v == nil {
		return nil
	}
	return v.(*planCacheEntry)
}
