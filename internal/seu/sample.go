package seu

import (
	"repro/internal/device"
)

// Deterministic per-bit sampling. The campaign decides whether to inject a
// configuration bit from a hash of (Seed, BitAddr) alone, never from a
// sequential RNG stream, so the injected-bit set is a pure function of the
// options: identical across worker counts, shard shapes, and replays. The
// same hash seeds the per-injection stimulus stream, which is what lets a
// sharded campaign reproduce a sequential one bit-for-bit.

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-distributed 64-bit mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// bitHash mixes the campaign seed with a bit address.
func bitHash(seed int64, a device.BitAddr) uint64 {
	return splitmix64(uint64(seed) ^ splitmix64(uint64(a)))
}

// selected reports whether bit a is part of the campaign's injection set.
func selected(opts Options, a device.BitAddr) bool {
	if opts.Sample >= 1 {
		return true
	}
	if opts.Sample <= 0 {
		return false
	}
	// Top 53 bits of the hash as a uniform float in [0, 1).
	return float64(bitHash(opts.Seed, a)>>11)/(1<<53) < opts.Sample
}

// stimulusSeed derives the per-injection stimulus seed for bit a. The
// constant decorrelates it from the selection hash so sampling and
// stimulus never share a decision.
func stimulusSeed(seed int64, a device.BitAddr) int64 {
	return int64(bitHash(seed^0x5eed5eed5eed5eed, a))
}

// selectionPlan returns the exclusive upper bit address of the campaign and
// the exact number of injections it will perform. The limit is TotalBits
// normally, or — under MaxBits — the address just past the MaxBits-th
// selected bit, so "the first MaxBits selected bits in address order" is a
// well-defined set that sharding cannot change. The count comes from the
// actual selection model (hash sampling capped by MaxBits), never from
// multiplying an already-capped limit by Sample, so the worker-count
// heuristic sees the true campaign size.
func selectionPlan(opts Options, total int64) (limit, count int64) {
	if opts.Sample >= 1 {
		if opts.MaxBits > 0 && opts.MaxBits < total {
			return opts.MaxBits, opts.MaxBits
		}
		return total, total
	}
	if opts.Sample <= 0 {
		return total, 0
	}
	// One pass over the hash stream: exact count, and under MaxBits the
	// earliest address range containing exactly that many selections. The
	// scan costs one splitmix64 per bit — noise next to the injections.
	for a := device.BitAddr(0); int64(a) < total; a++ {
		if selected(opts, a) {
			count++
			if count == opts.MaxBits {
				return int64(a) + 1, count
			}
		}
	}
	return total, count
}
