package seu

import (
	"context"
	"runtime/pprof"
	"sort"

	"repro/internal/bitstream"
	"repro/internal/board"
	"repro/internal/device"
	"repro/internal/fpga"
)

// Vector-kernel batch scheduler. Pre-planned injections that the planner
// expressed as lane overlays are grouped into batches of up to 64 and run
// through one vectored clock program; each lane's phase machine reproduces
// the scalar injectOne outcome (failure verdict, first-error cycle, failed
// outputs, persistence) exactly, retiring individually on lock-step
// convergence. The per-bit classification work — Classify, PlanVectorDelta,
// stimulus-seed derivation — happened once, in the campaign pre-plan
// (preplan.go); the runner just consumes planEntry records.
//
// Bits the planner demotes fall in two classes. Windowable demotions (SRL
// truth bits, BRAM content — DemotedWindowable) run their corrupt/observe/
// repair prefix on the scalar board, then ride a lane for the clean-run and
// persistence windows: the configuration is provably golden after repair
// plus column scrub, so the lane only needs to carry the behavioural state
// (ScatterLane) and fast-forward its stimulus stream past the scalar prefix
// (SkipLane). Everything else (BRAM port bits) stays fully scalar.
//
// Lanes are mutually independent — every lane word operation is bitwise,
// and overlays are per-lane — so batch composition (which varies with chunk
// boundaries and worker count) cannot influence any lane's outcome. Outcome
// accounting is folded in ascending bit-address order regardless of
// retirement order (emitBatch), keeping reports byte-identical to the
// scalar kernel at any worker count.

// Lane phases, mirroring the scalar injectOne control flow.
const (
	lanePhaseObserve = iota
	lanePhaseClean
	lanePhasePersist
	lanePhaseDone
)

// laneRun is one in-flight injection's phase machine.
type laneRun struct {
	addr  device.BitAddr
	kind  device.BitKind
	delta fpga.VectorDelta

	phase        uint8
	stepsInPhase int
	clean        int
	// preCycles is the number of board clocks the scalar observe prefix of
	// a carried injection consumed before the lane took over (0 for overlay
	// lanes); first-error cycles are reported relative to injection start,
	// so lane-relative cycles offset by it.
	preCycles int

	failed        bool
	firstErr      int
	failedOutputs []int
	persistent    bool

	cycles  int64
	skipped int64
}

// pendingLane is one enqueued injection awaiting its batch.
type pendingLane struct {
	addr  device.BitAddr
	kind  device.BitKind
	delta fpga.VectorDelta
	seed  int64

	// Carry fields: the scalar observe/repair prefix already ran.
	carry         bool
	failed        bool
	firstErr      int
	failedOutputs []int
	preCycles     int
}

// vectorRunner batches vector-eligible injections for one worker.
type vectorRunner struct {
	vb *board.VectorBoard

	n    int
	pend [64]pendingLane
	// carryG/carryD hold the scalar golden/DUT behavioural state of carried
	// lanes at enqueue time; lazily allocated, reused across batches.
	carryG [64]*fpga.VectorSnapshot
	carryD [64]*fpga.VectorSnapshot

	seeds [64]int64
	lanes [64]laneRun
}

// maybeNewVectorRunner builds the worker's batch scheduler from the
// campaign pre-plan. A nil plan (scalar kernel, history-coupled or
// unprogrammed design) means the worker runs everything on the scalar
// path. The lane machines share the plan's compiled design read-only.
func maybeNewVectorRunner(bd *board.SLAAC1V, opts Options, plan *prePlan) *vectorRunner {
	if plan == nil || opts.Kernel != KernelVector {
		return nil
	}
	return &vectorRunner{vb: board.NewVectorBoardFrom(bd, plan.comp)}
}

// enqueueVector adds one overlay-expressible injection; the caller flushes
// when full.
func (vr *vectorRunner) enqueueVector(e *planEntry) {
	vr.pend[vr.n] = pendingLane{addr: e.addr, kind: e.kind, delta: e.delta, seed: e.seed}
	vr.n++
}

// enqueueCarry runs the scalar corrupt/observe/repair prefix of a
// windowable demoted injection on bd, then either retires it inline (it
// failed and no persistence window follows) or parks its post-repair state
// in a lane slot to ride the next batch's clean-run/persistence windows.
//
// Skipping the scalar path's ResetBoth/re-sync fallback is exact for
// windowable kinds: after the injected-frame write-back and column scrub
// their configuration is provably golden (an SRL shifts only its own
// truth-table frames, in-column; BRAM content has no other writers in
// non-history-coupled designs), so a reset pair always re-matches and the
// full-reconfiguration fallback can never fire — and the next injection's
// ResetCampaignState clears the user state anyway.
func (vr *vectorRunner) enqueueCarry(bd *board.SLAAC1V, golden *bitstream.Memory, e *planEntry, opts Options, acc *shardAccum, fs *frameScrub) error {
	ob, err := observeAndRepair(bd, golden, e.addr, e.seed, opts, fs)
	acc.cyclesRun += ob.steps
	if err != nil {
		return err
	}
	if ob.failed && !(opts.ClassifyPersistence && opts.PersistWindow > 0) {
		// Failed with no window to carry: retire inline, mirroring
		// injectOne's post-failure flow for a zero-length window.
		acc.failures++
		acc.failByKind[e.kind]++
		persistent := false
		if opts.ClassifyPersistence {
			persistent = 0 < opts.CleanRun
			if persistent {
				acc.persistent++
			}
		}
		if opts.CollectBits {
			acc.bits = append(acc.bits, BitRecord{
				Addr: e.addr, Kind: e.kind, Persistent: persistent,
				FirstErrorCycle: ob.firstErr, FailedOutputs: ob.failedOutputs,
			})
		}
		return nil
	}
	i := vr.n
	vr.pend[i] = pendingLane{
		addr: e.addr, kind: e.kind, seed: e.seed,
		carry: true, failed: ob.failed, firstErr: ob.firstErr,
		failedOutputs: ob.failedOutputs, preCycles: int(ob.steps),
	}
	if vr.carryG[i] == nil {
		vr.carryG[i] = new(fpga.VectorSnapshot)
		vr.carryD[i] = new(fpga.VectorSnapshot)
	}
	bd.Golden.CaptureVectorSnapshotInto(vr.carryG[i])
	bd.DUT.CaptureVectorSnapshotInto(vr.carryD[i])
	vr.n++
	return nil
}

func (vr *vectorRunner) fullBatch() bool { return vr.n == 64 }

// flush runs the pending batch to completion and folds the lane outcomes
// into acc. fast gates the per-lane lock-step early exit, exactly like the
// scalar path (CyclesSkipped stays 0 when FastSim is off).
func (vr *vectorRunner) flush(opts Options, acc *shardAccum, fast bool) {
	n := vr.n
	if n == 0 {
		return
	}
	pprof.Do(context.Background(), labelsSimulate, func(context.Context) {
		vr.runBatch(opts, fast)
	})
	pprof.Do(context.Background(), labelsEmit, func(context.Context) {
		emitBatch(vr.lanes[:n], opts, acc)
	})
	vr.n = 0
}

// runBatch drives the pending lanes to retirement.
func (vr *vectorRunner) runBatch(opts Options, fast bool) {
	n := vr.n
	for i := 0; i < n; i++ {
		vr.seeds[i] = vr.pend[i].seed
	}
	vr.vb.StartBatch(vr.seeds[:n])
	anyCarry := false
	for i := 0; i < n; i++ {
		p := &vr.pend[i]
		vr.lanes[i] = laneRun{addr: p.addr, kind: p.kind, delta: p.delta, firstErr: -1, preCycles: p.preCycles}
		ln := &vr.lanes[i]
		if !p.carry {
			vr.vb.DUT.ApplyDelta(i, p.delta)
			continue
		}
		// Carried lane: resume the scalar trajectory mid-run. Both lane
		// machines take the scalar pair's behavioural state; the stimulus
		// stream skips what the scalar prefix already drew.
		anyCarry = true
		vr.vb.Golden.ScatterLane(i, vr.carryG[i])
		vr.vb.DUT.ScatterLane(i, vr.carryD[i])
		vr.vb.SkipLane(i, p.preCycles)
		ln.failed = p.failed
		ln.firstErr = p.firstErr
		ln.failedOutputs = p.failedOutputs
		if p.failed {
			ln.phase = lanePhasePersist
		} else {
			ln.phase = lanePhaseClean
		}
	}
	live := n
	cycle := 0
	// needLock tracks whether any live lane is past its repair — the only
	// phases where the scalar path consults Locked. Overlay lanes start in
	// observation (overlay active, lock impossible); carried lanes enter
	// directly in a post-repair phase.
	needLock := anyCarry
	for live > 0 {
		if fast && needLock {
			lw := vr.vb.LockedWord()
			for i := 0; i < n && lw != 0; i++ {
				if lw>>uint(i)&1 == 0 {
					continue
				}
				ln := &vr.lanes[i]
				switch ln.phase {
				case lanePhaseClean:
					// Provably in lock-step forever: the remaining clean
					// cycles are guaranteed matches.
					ln.skipped += int64(opts.CleanRun - ln.clean)
					ln.phase = lanePhaseDone
					live--
				case lanePhasePersist:
					remaining := opts.PersistWindow - ln.stepsInPhase
					ln.skipped += int64(remaining)
					ln.clean += remaining
					ln.persistent = ln.clean < opts.CleanRun
					ln.phase = lanePhaseDone
					live--
				}
			}
			if live == 0 {
				break
			}
		}
		mm := vr.vb.Step()
		cycle++
		needLock = false
		for i := 0; i < n; i++ {
			ln := &vr.lanes[i]
			if ln.phase == lanePhaseDone {
				continue
			}
			ln.cycles++
			miss := mm>>uint(i)&1 == 1
			switch ln.phase {
			case lanePhaseObserve:
				if miss {
					ln.failed = true
					ln.firstErr = ln.preCycles + cycle
					ln.failedOutputs = vr.vb.FailedOutputs(i)
					vr.vb.DUT.RemoveDelta(i, ln.delta) // repair
					vr.finishFailed(ln, opts, &live)
				} else if ln.stepsInPhase++; ln.stepsInPhase == opts.ObserveCycles {
					vr.vb.DUT.RemoveDelta(i, ln.delta) // repair
					ln.phase = lanePhaseClean
					ln.clean = 0
				}
			case lanePhaseClean:
				if miss {
					ln.failed = true
					ln.firstErr = ln.preCycles + cycle
					ln.failedOutputs = vr.vb.FailedOutputs(i)
					vr.finishFailed(ln, opts, &live)
				} else if ln.clean++; ln.clean == opts.CleanRun {
					ln.phase = lanePhaseDone
					live--
				}
			case lanePhasePersist:
				if miss {
					ln.clean = 0
				} else {
					ln.clean++
				}
				if ln.stepsInPhase++; ln.stepsInPhase == opts.PersistWindow {
					ln.persistent = ln.clean < opts.CleanRun
					ln.phase = lanePhaseDone
					live--
				}
			}
			if ln.phase == lanePhaseClean || ln.phase == lanePhasePersist {
				needLock = true
			}
		}
	}
}

// finishFailed routes a just-failed lane into the persistence window (the
// configuration is already repaired) or retires it, mirroring injectOne's
// post-failure flow.
func (vr *vectorRunner) finishFailed(ln *laneRun, opts Options, live *int) {
	if opts.ClassifyPersistence && opts.PersistWindow > 0 {
		ln.phase = lanePhasePersist
		ln.stepsInPhase = 0
		ln.clean = 0
		return
	}
	if opts.ClassifyPersistence {
		// Degenerate zero-length window: the scalar loop body never runs,
		// so clean stays 0 and the bit classifies persistent.
		ln.persistent = 0 < opts.CleanRun
	}
	ln.phase = lanePhaseDone
	*live--
}

// emitBatch folds completed lane outcomes into the accumulator in
// ascending bit-address order, independent of the order lanes retired —
// the invariant that keeps vector reports byte-identical to scalar ones
// (per-kind maps, persistence tallies, and SensitiveBits all accumulate
// in the same order injectOne would have produced).
func emitBatch(lanes []laneRun, opts Options, acc *shardAccum) {
	sort.SliceStable(lanes, func(i, j int) bool { return lanes[i].addr < lanes[j].addr })
	for i := range lanes {
		ln := &lanes[i]
		acc.cyclesRun += ln.cycles
		acc.cyclesSkipped += ln.skipped
		if !ln.failed {
			continue
		}
		acc.failures++
		acc.failByKind[ln.kind]++
		if ln.persistent {
			acc.persistent++
		}
		if opts.CollectBits {
			acc.bits = append(acc.bits, BitRecord{
				Addr: ln.addr, Kind: ln.kind, Persistent: ln.persistent,
				FirstErrorCycle: ln.firstErr, FailedOutputs: ln.failedOutputs,
			})
		}
	}
}
