package seu

import (
	"sort"

	"repro/internal/board"
	"repro/internal/device"
	"repro/internal/fpga"
)

// Vector-kernel batch scheduler. Sampled injections that the planner can
// express as lane overlays are grouped into batches of up to 64 and run
// through one vectored clock program; each lane's phase machine reproduces
// the scalar injectOne outcome (failure verdict, first-error cycle, failed
// outputs, persistence) exactly, retiring individually on lock-step
// convergence. Bits the planner demotes (SRL truth bits, BRAM bits,
// LUT-mode flips) fall through to the scalar path inline, and provably
// inert bits (padding, FF init, fields of disabled resources) retire as
// benign without consuming a lane — the same verdict the scalar run of
// those bits produces, minus the cycles.
//
// Lanes are mutually independent — every lane word operation is bitwise,
// BRAM lanes are gathered and scattered individually, and overlays are
// per-lane — so batch composition (which varies with chunk boundaries and
// worker count) cannot influence any lane's outcome. Outcome accounting is
// folded in ascending bit-address order regardless of retirement order
// (emitBatch), keeping reports byte-identical to the scalar kernel at any
// worker count.

// Lane phases, mirroring the scalar injectOne control flow.
const (
	lanePhaseObserve = iota
	lanePhaseClean
	lanePhasePersist
	lanePhaseDone
)

// laneRun is one in-flight injection's phase machine.
type laneRun struct {
	addr  device.BitAddr
	kind  device.BitKind
	delta fpga.VectorDelta

	phase        uint8
	stepsInPhase int
	clean        int

	failed        bool
	firstErr      int
	failedOutputs []int
	persistent    bool

	cycles  int64
	skipped int64
}

// vectorRunner batches vector-eligible injections for one worker.
type vectorRunner struct {
	vb     *board.VectorBoard
	golden *fpga.FPGA // planning reference: the worker's golden decode

	addrs  []device.BitAddr
	kinds  []device.BitKind
	deltas []fpga.VectorDelta

	seeds []int64
	lanes [64]laneRun
}

// maybeNewVectorRunner builds the worker's batch scheduler when the
// campaign runs the vector kernel and the design is eligible. Designs with
// history-coupled state (SRL16, writable BRAM, stuck overlays) run every
// bit on the scalar path — the overlays lanes carry cannot represent
// state that feeds back into configuration memory.
func maybeNewVectorRunner(bd *board.SLAAC1V, opts Options) *vectorRunner {
	if opts.Kernel != KernelVector {
		return nil
	}
	if bd.DUT.HistoryCoupled() || bd.DUT.Unprogrammed() {
		return nil
	}
	return &vectorRunner{vb: board.NewVectorBoard(bd), golden: bd.Golden}
}

// enqueue adds one planned injection; the caller flushes when full.
func (vr *vectorRunner) enqueue(a device.BitAddr, kind device.BitKind, d fpga.VectorDelta) {
	vr.addrs = append(vr.addrs, a)
	vr.kinds = append(vr.kinds, kind)
	vr.deltas = append(vr.deltas, d)
}

func (vr *vectorRunner) fullBatch() bool { return len(vr.addrs) == 64 }

// flush runs the pending batch to completion and folds the lane outcomes
// into acc. fast gates the per-lane lock-step early exit, exactly like the
// scalar path (CyclesSkipped stays 0 when FastSim is off).
func (vr *vectorRunner) flush(opts Options, acc *shardAccum, fast bool) {
	n := len(vr.addrs)
	if n == 0 {
		return
	}
	vr.seeds = vr.seeds[:0]
	for _, a := range vr.addrs {
		vr.seeds = append(vr.seeds, stimulusSeed(opts.Seed, a))
	}
	vr.vb.StartBatch(vr.seeds)
	for i := 0; i < n; i++ {
		vr.vb.DUT.ApplyDelta(i, vr.deltas[i])
		vr.lanes[i] = laneRun{addr: vr.addrs[i], kind: vr.kinds[i], delta: vr.deltas[i], firstErr: -1}
	}
	live := n
	cycle := 0
	// needLock tracks whether any live lane is past its repair — the only
	// phases where the scalar path consults Locked. During observation the
	// lane's overlay is still active, so lock is impossible and checking
	// would be pure overhead (the same argument injectOne makes).
	needLock := false
	for live > 0 {
		if fast && needLock {
			lw := vr.vb.LockedWord()
			for i := 0; i < n && lw != 0; i++ {
				if lw>>uint(i)&1 == 0 {
					continue
				}
				ln := &vr.lanes[i]
				switch ln.phase {
				case lanePhaseClean:
					// Provably in lock-step forever: the remaining clean
					// cycles are guaranteed matches.
					ln.skipped += int64(opts.CleanRun - ln.clean)
					ln.phase = lanePhaseDone
					live--
				case lanePhasePersist:
					remaining := opts.PersistWindow - ln.stepsInPhase
					ln.skipped += int64(remaining)
					ln.clean += remaining
					ln.persistent = ln.clean < opts.CleanRun
					ln.phase = lanePhaseDone
					live--
				}
			}
			if live == 0 {
				break
			}
		}
		mm := vr.vb.Step()
		cycle++
		needLock = false
		for i := 0; i < n; i++ {
			ln := &vr.lanes[i]
			if ln.phase == lanePhaseDone {
				continue
			}
			ln.cycles++
			miss := mm>>uint(i)&1 == 1
			switch ln.phase {
			case lanePhaseObserve:
				if miss {
					ln.failed = true
					ln.firstErr = cycle
					ln.failedOutputs = vr.vb.FailedOutputs(i)
					vr.vb.DUT.RemoveDelta(i, ln.delta) // repair
					vr.finishFailed(ln, opts, &live)
				} else if ln.stepsInPhase++; ln.stepsInPhase == opts.ObserveCycles {
					vr.vb.DUT.RemoveDelta(i, ln.delta) // repair
					ln.phase = lanePhaseClean
					ln.clean = 0
				}
			case lanePhaseClean:
				if miss {
					ln.failed = true
					ln.firstErr = cycle
					ln.failedOutputs = vr.vb.FailedOutputs(i)
					vr.finishFailed(ln, opts, &live)
				} else if ln.clean++; ln.clean == opts.CleanRun {
					ln.phase = lanePhaseDone
					live--
				}
			case lanePhasePersist:
				if miss {
					ln.clean = 0
				} else {
					ln.clean++
				}
				if ln.stepsInPhase++; ln.stepsInPhase == opts.PersistWindow {
					ln.persistent = ln.clean < opts.CleanRun
					ln.phase = lanePhaseDone
					live--
				}
			}
			if ln.phase == lanePhaseClean || ln.phase == lanePhasePersist {
				needLock = true
			}
		}
	}
	emitBatch(vr.lanes[:n], opts, acc)
	vr.addrs = vr.addrs[:0]
	vr.kinds = vr.kinds[:0]
	vr.deltas = vr.deltas[:0]
}

// finishFailed routes a just-failed lane into the persistence window (the
// configuration is already repaired) or retires it, mirroring injectOne's
// post-failure flow.
func (vr *vectorRunner) finishFailed(ln *laneRun, opts Options, live *int) {
	if opts.ClassifyPersistence && opts.PersistWindow > 0 {
		ln.phase = lanePhasePersist
		ln.stepsInPhase = 0
		ln.clean = 0
		return
	}
	if opts.ClassifyPersistence {
		// Degenerate zero-length window: the scalar loop body never runs,
		// so clean stays 0 and the bit classifies persistent.
		ln.persistent = 0 < opts.CleanRun
	}
	ln.phase = lanePhaseDone
	*live--
}

// emitBatch folds completed lane outcomes into the accumulator in
// ascending bit-address order, independent of the order lanes retired —
// the invariant that keeps vector reports byte-identical to scalar ones
// (per-kind maps, persistence tallies, and SensitiveBits all accumulate
// in the same order injectOne would have produced).
func emitBatch(lanes []laneRun, opts Options, acc *shardAccum) {
	sort.SliceStable(lanes, func(i, j int) bool { return lanes[i].addr < lanes[j].addr })
	for i := range lanes {
		ln := &lanes[i]
		acc.cyclesRun += ln.cycles
		acc.cyclesSkipped += ln.skipped
		if !ln.failed {
			continue
		}
		acc.failures++
		acc.failByKind[ln.kind]++
		if ln.persistent {
			acc.persistent++
		}
		if opts.CollectBits {
			acc.bits = append(acc.bits, BitRecord{
				Addr: ln.addr, Kind: ln.kind, Persistent: ln.persistent,
				FirstErrorCycle: ln.firstErr, FailedOutputs: ln.failedOutputs,
			})
		}
	}
}
