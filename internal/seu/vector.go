package seu

import (
	"context"
	"math/bits"
	"runtime/pprof"
	"sort"
	"sync/atomic"

	"repro/internal/bitstream"
	"repro/internal/board"
	"repro/internal/device"
	"repro/internal/fpga"
)

// Vector-kernel batch scheduler. Pre-planned injections that the planner
// expressed as lane overlays queue up and run through one vectored clock
// program; each lane's phase machine reproduces the scalar injectOne
// outcome (failure verdict, first-error cycle, failed outputs, persistence)
// exactly, retiring individually on lock-step convergence. Under
// KernelVector (event drain) the scheduler refills retired lanes from the
// queue mid-batch, keeping lane occupancy high on triage-heavy campaigns;
// under KernelVectorSweep it runs fixed 64-lane generations (the PR 7
// scheduler, kept as the conformance anchor). The per-bit classification
// work — Classify, PlanVectorDelta, stimulus-seed derivation — happened
// once, in the campaign pre-plan (preplan.go); the runner just consumes
// planEntry records.
//
// Bits the planner demotes fall in two classes. Windowable demotions (SRL
// truth bits, BRAM content — DemotedWindowable) run their corrupt/observe/
// repair prefix on the scalar board, then ride a lane for the clean-run and
// persistence windows: the configuration is provably golden after repair
// plus column scrub, so the lane only needs to carry the behavioural state
// (ScatterLane) and fast-forward its stimulus stream past the scalar prefix
// (SkipLane). Everything else (BRAM port bits) stays fully scalar.
//
// Lanes are mutually independent — every lane word operation is bitwise,
// and overlays are per-lane — so batch composition (which varies with chunk
// boundaries, refill timing, and worker count) cannot influence any lane's
// outcome. Outcome accounting is folded in ascending bit-address order
// regardless of retirement order (emitBatch), keeping reports
// byte-identical to the scalar kernel at any worker count.

// Scheduler tuning. The event-mode queue depth amortizes generation
// restarts and keeps the refill pump primed; the refill threshold batches
// lane restores so the masked canonical copy (O(state words) per call)
// amortizes over ≥16 lanes. Carried entries park two full behavioural
// snapshots each, so they flush at a much lower depth.
const (
	vectorQueueDepth = 4096
	maxQueuedCarries = 64
	refillThreshold  = 16
)

// Vector-kernel activity counters, exported through VectorKernelStats onto
// campaignd's /metrics plane (same pattern as PlanCacheStats/PoolStats).
var (
	vectorSweepsSettled     atomic.Int64 // worklist rounds drained (== productive sweeps)
	vectorWorklistDrains    atomic.Int64 // Settle calls that found pending work
	vectorLanesRefilled     atomic.Int64 // retired lanes refilled mid-batch
	vectorFastForwardCycles atomic.Int64 // convergence-credited cycles (all lanes)
)

// VectorKernelStats reports cumulative vector-kernel activity across all
// campaigns of this process: worklist rounds settled, Settle drains that
// found work, lanes refilled mid-batch, and clock cycles credited by
// lock-step convergence instead of simulated.
func VectorKernelStats() (sweepsSettled, worklistDrains, lanesRefilled, fastForwardCycles int64) {
	return vectorSweepsSettled.Load(), vectorWorklistDrains.Load(),
		vectorLanesRefilled.Load(), vectorFastForwardCycles.Load()
}

// Lane phases, mirroring the scalar injectOne control flow.
const (
	lanePhaseObserve = iota
	lanePhaseClean
	lanePhasePersist
	lanePhaseDone
)

// laneRun is one in-flight injection's phase machine.
type laneRun struct {
	addr  device.BitAddr
	kind  device.BitKind
	delta fpga.VectorDelta

	phase        uint8
	stepsInPhase int
	clean        int
	// preCycles is the number of board clocks the scalar observe prefix of
	// a carried injection consumed before the lane took over (0 for overlay
	// lanes); first-error cycles are reported relative to injection start,
	// so lane-relative cycles offset by it.
	preCycles int

	failed        bool
	firstErr      int
	failedOutputs []int
	persistent    bool

	cycles  int64
	skipped int64
}

// pendingLane is one enqueued injection awaiting a lane.
type pendingLane struct {
	addr  device.BitAddr
	kind  device.BitKind
	delta fpga.VectorDelta
	seed  int64

	// Carry fields: the scalar observe/repair prefix already ran. g/d hold
	// the scalar pair's behavioural state at enqueue time (pooled on the
	// runner, returned when the entry boards a lane).
	carry         bool
	failed        bool
	firstErr      int
	failedOutputs []int
	preCycles     int
	g, d          *fpga.VectorSnapshot
}

// vectorRunner schedules vector-eligible injections onto lanes for one
// worker. Entries queue in plan (= ascending address) order; runQueue pops
// them FIFO, so lane assignment is deterministic per flush regardless of
// retirement order.
type vectorRunner struct {
	vb *board.VectorBoard

	// refill: retire-and-refill lanes mid-batch (KernelVector). Off, the
	// runner flushes in fixed generations of up to 64 (KernelVectorSweep).
	refill bool
	depth  int // queue depth that triggers a flush

	queue   []pendingLane
	qHead   int
	carries int // queued carry entries (snapshot-heavy, capped separately)

	lanes    [64]laneRun
	liveMask uint64
	done     []laneRun // retired, awaiting emit
	seeds    [64]int64
	snapFree []*fpga.VectorSnapshot
}

// maybeNewVectorRunner builds the worker's batch scheduler from the
// campaign pre-plan. A nil plan (scalar kernel, history-coupled or
// unprogrammed design) means the worker runs everything on the scalar
// path. The lane machines share the plan's compiled design read-only.
func maybeNewVectorRunner(bd *board.SLAAC1V, opts Options, plan *prePlan) *vectorRunner {
	if plan == nil || !opts.Kernel.vectorized() {
		return nil
	}
	vr := &vectorRunner{vb: board.NewVectorBoardFrom(bd, plan.comp)}
	if opts.Kernel == KernelVector {
		vr.refill = true
		vr.depth = vectorQueueDepth
	} else {
		vr.depth = 64
	}
	vr.vb.SetEventDriven(vr.refill)
	return vr
}

// enqueueVector adds one overlay-expressible injection; the caller flushes
// when shouldFlush reports the queue full.
func (vr *vectorRunner) enqueueVector(e *planEntry) {
	vr.queue = append(vr.queue, pendingLane{addr: e.addr, kind: e.kind, delta: e.delta, seed: e.seed})
}

// enqueueCarry runs the scalar corrupt/observe/repair prefix of a
// windowable demoted injection on bd, then either retires it inline (it
// failed and no persistence window follows) or parks its post-repair state
// in a lane slot to ride the next batch's clean-run/persistence windows.
//
// Skipping the scalar path's ResetBoth/re-sync fallback is exact for
// windowable kinds: after the injected-frame write-back and column scrub
// their configuration is provably golden (an SRL shifts only its own
// truth-table frames, in-column; BRAM content has no other writers in
// non-history-coupled designs), so a reset pair always re-matches and the
// full-reconfiguration fallback can never fire — and the next injection's
// ResetCampaignState clears the user state anyway.
func (vr *vectorRunner) enqueueCarry(bd *board.SLAAC1V, golden *bitstream.Memory, e *planEntry, opts Options, acc *shardAccum, fs *frameScrub) error {
	ob, err := observeAndRepair(bd, golden, e.addr, e.seed, opts, fs)
	acc.cyclesRun += ob.steps
	if err != nil {
		return err
	}
	if ob.failed && !(opts.ClassifyPersistence && opts.PersistWindow > 0) {
		// Failed with no window to carry: retire inline, mirroring
		// injectOne's post-failure flow for a zero-length window.
		acc.failures++
		acc.failByKind[e.kind]++
		persistent := false
		if opts.ClassifyPersistence {
			persistent = 0 < opts.CleanRun
			if persistent {
				acc.persistent++
			}
		}
		if opts.CollectBits {
			acc.bits = append(acc.bits, BitRecord{
				Addr: e.addr, Kind: e.kind, Persistent: persistent,
				FirstErrorCycle: ob.firstErr, FailedOutputs: ob.failedOutputs,
			})
		}
		return nil
	}
	var g, d *fpga.VectorSnapshot
	if n := len(vr.snapFree); n >= 2 {
		g, d = vr.snapFree[n-1], vr.snapFree[n-2]
		vr.snapFree = vr.snapFree[:n-2]
	} else {
		g, d = new(fpga.VectorSnapshot), new(fpga.VectorSnapshot)
	}
	bd.Golden.CaptureVectorSnapshotInto(g)
	bd.DUT.CaptureVectorSnapshotInto(d)
	vr.queue = append(vr.queue, pendingLane{
		addr: e.addr, kind: e.kind, seed: e.seed,
		carry: true, failed: ob.failed, firstErr: ob.firstErr,
		failedOutputs: ob.failedOutputs, preCycles: int(ob.steps),
		g: g, d: d,
	})
	vr.carries++
	return nil
}

// pending reports the entries queued and not yet on a lane.
func (vr *vectorRunner) pending() int { return len(vr.queue) - vr.qHead }

// shouldFlush reports whether the queue reached its flush depth — or the
// carry cap, which bounds how many parked behavioural snapshots a deep
// event-mode queue can hold.
func (vr *vectorRunner) shouldFlush() bool {
	return vr.pending() >= vr.depth || vr.carries >= maxQueuedCarries
}

// pop hands out the next queued entry in enqueue (= ascending address)
// order.
func (vr *vectorRunner) pop() *pendingLane {
	p := &vr.queue[vr.qHead]
	vr.qHead++
	return p
}

// flush runs every queued entry to retirement and folds the outcomes into
// acc. fast gates the per-lane lock-step early exit, exactly like the
// scalar path (CyclesSkipped stays 0 when FastSim is off).
func (vr *vectorRunner) flush(opts Options, acc *shardAccum, fast bool) {
	if vr.pending() == 0 {
		return
	}
	pprof.Do(context.Background(), labelsSimulate, func(context.Context) {
		vr.runQueue(opts, fast)
	})
	rounds, drains := vr.vb.TakeKernelStats()
	vectorSweepsSettled.Add(rounds)
	vectorWorklistDrains.Add(drains)
	pprof.Do(context.Background(), labelsEmit, func(context.Context) {
		emitBatch(vr.done, opts, acc)
	})
	var skipped int64
	for i := range vr.done {
		skipped += vr.done[i].skipped
	}
	vectorFastForwardCycles.Add(skipped)
	vr.done = vr.done[:0]
	vr.queue = vr.queue[:0]
	vr.qHead = 0
	vr.carries = 0
}

// install boards the next queued entry on lane i (whose state is already at
// the canonical snapshot via StartBatch or RefillLanes) and flags needLock
// if the lane enters a post-repair phase.
func (vr *vectorRunner) install(i int, needLock *bool) {
	p := vr.pop()
	vr.lanes[i] = laneRun{addr: p.addr, kind: p.kind, delta: p.delta, firstErr: -1, preCycles: p.preCycles}
	vr.liveMask |= 1 << uint(i)
	if !p.carry {
		vr.vb.DUT.ApplyDelta(i, p.delta)
		return
	}
	// Carried lane: resume the scalar trajectory mid-run. Both lane
	// machines take the scalar pair's behavioural state; the stimulus
	// stream skips what the scalar prefix already drew.
	ln := &vr.lanes[i]
	vr.vb.Golden.ScatterLane(i, p.g)
	vr.vb.DUT.ScatterLane(i, p.d)
	vr.vb.SkipLane(i, p.preCycles)
	vr.snapFree = append(vr.snapFree, p.g, p.d)
	p.g, p.d = nil, nil
	vr.carries--
	ln.failed = p.failed
	ln.firstErr = p.firstErr
	ln.failedOutputs = p.failedOutputs
	if p.failed {
		ln.phase = lanePhasePersist
	} else {
		ln.phase = lanePhaseClean
	}
	*needLock = true
}

// retire takes lane i off the board: its stimulus and state freeze (never
// read again) and its outcome joins the emit list.
func (vr *vectorRunner) retire(i int) {
	vr.vb.FreezeLane(i)
	vr.liveMask &^= 1 << uint(i)
	vr.done = append(vr.done, vr.lanes[i])
}

// startGeneration seeds a fresh batch of up to 64 queued entries.
func (vr *vectorRunner) startGeneration(needLock *bool) {
	n := vr.pending()
	if n > 64 {
		n = 64
	}
	base := vr.qHead
	for i := 0; i < n; i++ {
		vr.seeds[i] = vr.queue[base+i].seed
	}
	vr.vb.StartBatch(vr.seeds[:n])
	vr.liveMask = 0
	*needLock = false
	for i := 0; i < n; i++ {
		vr.install(i, needLock)
	}
}

// doRefill restores retired lanes to the canonical state and boards the
// next queued entries on them — the mid-batch occupancy pump. Lanes fill in
// ascending index order, pairing with RefillLanes' ascending-mask seeding.
func (vr *vectorRunner) doRefill(needLock *bool) {
	n := vr.pending()
	idle := ^vr.liveMask
	if k := bits.OnesCount64(idle); n > k {
		n = k
	}
	var mask uint64
	base := vr.qHead
	rest := idle
	for j := 0; j < n; j++ {
		lane := bits.TrailingZeros64(rest)
		rest &= rest - 1
		mask |= 1 << uint(lane)
		vr.seeds[j] = vr.queue[base+j].seed
	}
	vr.vb.RefillLanes(mask, vr.seeds[:n])
	vectorLanesRefilled.Add(int64(n))
	for rest, j := mask, 0; rest != 0; rest, j = rest&(rest-1), j+1 {
		vr.install(bits.TrailingZeros64(rest), needLock)
	}
}

// runQueue drives every queued entry to retirement: generations of up to 64
// lanes, with retired lanes refilled from the queue mid-generation when the
// event kernel is driving (refill amortizes its full invalidation over
// refillThreshold lanes; the sweep kernel keeps PR 7's fixed generations).
func (vr *vectorRunner) runQueue(opts Options, fast bool) {
	// needLock tracks whether any live lane is past its repair — the only
	// phases where the scalar path consults Locked. Overlay lanes start in
	// observation (overlay active, lock impossible); carried lanes enter
	// directly in a post-repair phase.
	needLock := false
	for vr.pending() > 0 || vr.liveMask != 0 {
		if vr.liveMask == 0 {
			vr.startGeneration(&needLock)
		} else if vr.refill && vr.pending() > 0 && bits.OnesCount64(^vr.liveMask) >= refillThreshold {
			vr.doRefill(&needLock)
		}
		if fast && needLock {
			lw := vr.vb.LockedWord() & vr.liveMask
			for rest := lw; rest != 0; rest &= rest - 1 {
				i := bits.TrailingZeros64(rest)
				ln := &vr.lanes[i]
				switch ln.phase {
				case lanePhaseClean:
					// Provably in lock-step forever: the remaining clean
					// cycles are guaranteed matches.
					ln.skipped += int64(opts.CleanRun - ln.clean)
					ln.phase = lanePhaseDone
					vr.retire(i)
				case lanePhasePersist:
					remaining := opts.PersistWindow - ln.stepsInPhase
					ln.skipped += int64(remaining)
					ln.clean += remaining
					ln.persistent = ln.clean < opts.CleanRun
					ln.phase = lanePhaseDone
					vr.retire(i)
				}
			}
			if vr.liveMask == 0 {
				continue
			}
		}
		mm := vr.vb.Step()
		needLock = false
		for rest := vr.liveMask; rest != 0; rest &= rest - 1 {
			i := bits.TrailingZeros64(rest)
			ln := &vr.lanes[i]
			ln.cycles++
			miss := mm>>uint(i)&1 == 1
			switch ln.phase {
			case lanePhaseObserve:
				if miss {
					ln.failed = true
					ln.firstErr = ln.preCycles + int(ln.cycles)
					ln.failedOutputs = vr.vb.FailedOutputs(i)
					vr.vb.DUT.RemoveDelta(i, ln.delta) // repair
					vr.finishFailed(ln, opts)
				} else if ln.stepsInPhase++; ln.stepsInPhase == opts.ObserveCycles {
					vr.vb.DUT.RemoveDelta(i, ln.delta) // repair
					ln.phase = lanePhaseClean
					ln.clean = 0
				}
			case lanePhaseClean:
				if miss {
					ln.failed = true
					ln.firstErr = ln.preCycles + int(ln.cycles)
					ln.failedOutputs = vr.vb.FailedOutputs(i)
					vr.finishFailed(ln, opts)
				} else if ln.clean++; ln.clean == opts.CleanRun {
					ln.phase = lanePhaseDone
				}
			case lanePhasePersist:
				if miss {
					ln.clean = 0
				} else {
					ln.clean++
				}
				if ln.stepsInPhase++; ln.stepsInPhase == opts.PersistWindow {
					ln.persistent = ln.clean < opts.CleanRun
					ln.phase = lanePhaseDone
				}
			}
			if ln.phase == lanePhaseDone {
				vr.retire(i)
			} else if ln.phase == lanePhaseClean || ln.phase == lanePhasePersist {
				needLock = true
			}
		}
	}
}

// finishFailed routes a just-failed lane into the persistence window (the
// configuration is already repaired) or marks it done, mirroring
// injectOne's post-failure flow.
func (vr *vectorRunner) finishFailed(ln *laneRun, opts Options) {
	if opts.ClassifyPersistence && opts.PersistWindow > 0 {
		ln.phase = lanePhasePersist
		ln.stepsInPhase = 0
		ln.clean = 0
		return
	}
	if opts.ClassifyPersistence {
		// Degenerate zero-length window: the scalar loop body never runs,
		// so clean stays 0 and the bit classifies persistent.
		ln.persistent = 0 < opts.CleanRun
	}
	ln.phase = lanePhaseDone
}

// emitBatch folds completed lane outcomes into the accumulator in
// ascending bit-address order, independent of the order lanes retired —
// the invariant that keeps vector reports byte-identical to scalar ones
// (per-kind maps, persistence tallies, and SensitiveBits all accumulate
// in the same order injectOne would have produced).
func emitBatch(lanes []laneRun, opts Options, acc *shardAccum) {
	sort.SliceStable(lanes, func(i, j int) bool { return lanes[i].addr < lanes[j].addr })
	for i := range lanes {
		ln := &lanes[i]
		acc.cyclesRun += ln.cycles
		acc.cyclesSkipped += ln.skipped
		if !ln.failed {
			continue
		}
		acc.failures++
		acc.failByKind[ln.kind]++
		if ln.persistent {
			acc.persistent++
		}
		if opts.CollectBits {
			acc.bits = append(acc.bits, BitRecord{
				Addr: ln.addr, Kind: ln.kind, Persistent: ln.persistent,
				FirstErrorCycle: ln.firstErr, FailedOutputs: ln.failedOutputs,
			})
		}
	}
}
