package seu

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/device"
)

// KindCounts tallies injections or failures per configuration-bit kind.
// Its JSON form is an object keyed by kind name, emitted in ascending
// device.BitKind order — a fixed order regardless of map iteration — so
// golden report files diff cleanly across runs.
type KindCounts map[device.BitKind]int64

// MarshalJSON emits the counts keyed by kind name in ascending kind order.
func (kc KindCounts) MarshalJSON() ([]byte, error) {
	kinds := make([]device.BitKind, 0, len(kc))
	for k := range kc {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range kinds {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "%q:%d", k.String(), kc[k])
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// kindByName inverts BitKind.String over the modelled kinds, so the JSON
// object form round-trips (campaign checkpoints deserialize per-kind maps).
var kindByName = func() map[string]device.BitKind {
	m := make(map[string]device.BitKind)
	for k := device.KindPad; k <= device.KindExtra; k++ {
		m[k.String()] = k
	}
	return m
}()

// UnmarshalJSON parses the object form MarshalJSON emits.
func (kc *KindCounts) UnmarshalJSON(b []byte) error {
	var raw map[string]int64
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	out := make(KindCounts, len(raw))
	for name, n := range raw {
		k, ok := kindByName[name]
		if !ok {
			return fmt.Errorf("seu: unknown bit kind %q", name)
		}
		out[k] = n
	}
	*kc = out
	return nil
}

// Total sums all counts.
func (kc KindCounts) Total() int64 {
	var n int64
	for _, v := range kc {
		n += v
	}
	return n
}
