package seu

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/device"
)

// KindCounts tallies injections or failures per configuration-bit kind.
// Its JSON form is an object keyed by kind name, emitted in ascending
// device.BitKind order — a fixed order regardless of map iteration — so
// golden report files diff cleanly across runs.
type KindCounts map[device.BitKind]int64

// MarshalJSON emits the counts keyed by kind name in ascending kind order.
func (kc KindCounts) MarshalJSON() ([]byte, error) {
	kinds := make([]device.BitKind, 0, len(kc))
	for k := range kc {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range kinds {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "%q:%d", k.String(), kc[k])
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// Total sums all counts.
func (kc KindCounts) Total() int64 {
	var n int64
	for _, v := range kc {
		n += v
	}
	return n
}
