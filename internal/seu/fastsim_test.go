package seu

import (
	"testing"

	"repro/internal/board"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/place"
)

// TestFastSimEquivalence is the exactness contract for the event-driven
// kernel and the lock-step convergence early exit: for every catalog design
// that fits the test geometry, a fastsim-on campaign — with or without
// triage, sequential or sharded — produces a report byte-identical to a
// fastsim-off, triage-off, sequential reference.
func TestFastSimEquivalence(t *testing.T) {
	ran := 0
	sawSkip := false
	for _, spec := range designs.Catalog() {
		spec := spec
		p, err := place.Place(spec.Build(), device.Tiny())
		if err != nil {
			continue // design exceeds the test geometry; covered at full scale by CI smoke runs
		}
		ran++
		t.Run(spec.Name, func(t *testing.T) {
			run := func(fastsim, triage bool, workers int) *Report {
				bd, err := board.New(p, 7)
				if err != nil {
					t.Fatal(err)
				}
				opts := DefaultOptions()
				opts.Sample = 0.06
				opts.Seed = 31
				opts.Workers = workers
				opts.Triage = triage
				opts.FastSim = fastsim
				rep, err := Run(bd, opts)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			ref := run(false, false, 1)
			if ref.Injections == 0 {
				t.Fatal("campaign injected nothing")
			}
			if ref.CyclesSkipped != 0 {
				t.Fatalf("fastsim-off run skipped %d cycles", ref.CyclesSkipped)
			}
			for _, triage := range []bool{false, true} {
				for _, workers := range []int{1, 4} {
					got := run(true, triage, workers)
					assertReportsEqual(t, ref, got)
					if got.CyclesSkipped > 0 {
						sawSkip = true
					}
				}
			}
		})
	}
	if ran < 5 {
		t.Fatalf("only %d catalog designs fit the test geometry", ran)
	}
	if !sawSkip {
		t.Fatal("convergence early exit never skipped a cycle on any catalog design")
	}
}
