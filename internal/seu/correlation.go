package seu

import (
	"fmt"
	"sort"

	"repro/internal/device"
	"repro/internal/place"
)

// The paper (§III-A): "By repeated exhaustive tests, it is possible to
// correlate a single-bit upset in the bitstream with an output error. Such
// a correlation table was developed for our example designs. High
// correlation between specific locations in the bit stream and output area
// helps to characterize the sensitive cross-section of the design.
// Selective Triple Module Redundancy (TMR) or other mitigation techniques
// can then be selectively applied to the sensitive cross section."

// CorrelationEntry links one sensitive configuration bit to the output bits
// its upset corrupted first.
type CorrelationEntry struct {
	Addr    device.BitAddr
	Kind    device.BitKind
	Outputs []int // indices into the design's flattened output vector
}

// CorrelationTable summarizes bit->output correlation for a campaign.
type CorrelationTable struct {
	Entries []CorrelationEntry
	// ByOutput counts, for each output bit, how many sensitive
	// configuration bits can corrupt it.
	ByOutput map[int]int
}

// Correlate builds the correlation table from a report's collected
// sensitive bits (requires Options.CollectBits).
func Correlate(rep *Report) *CorrelationTable {
	t := &CorrelationTable{ByOutput: make(map[int]int)}
	for _, bit := range rep.SensitiveBits {
		t.Entries = append(t.Entries, CorrelationEntry{
			Addr: bit.Addr, Kind: bit.Kind, Outputs: bit.FailedOutputs,
		})
		for _, o := range bit.FailedOutputs {
			t.ByOutput[o]++
		}
	}
	return t
}

// HotOutputs returns output-bit indices ordered by how many sensitive bits
// corrupt them (most-exposed first).
func (t *CorrelationTable) HotOutputs() []int {
	outs := make([]int, 0, len(t.ByOutput))
	for o := range t.ByOutput {
		outs = append(outs, o)
	}
	sort.Slice(outs, func(i, j int) bool {
		if t.ByOutput[outs[i]] != t.ByOutput[outs[j]] {
			return t.ByOutput[outs[i]] > t.ByOutput[outs[j]]
		}
		return outs[i] < outs[j]
	})
	return outs
}

func (t *CorrelationTable) String() string {
	return fmt.Sprintf("correlation table: %d sensitive bits, %d output bits affected",
		len(t.Entries), len(t.ByOutput))
}

// SensitiveNodes maps a campaign's sensitive configuration bits back to the
// netlist nodes whose fabric resources they configure — the design's
// sensitive cross-section, expressed in terms the mitigation tools
// (selective TMR) consume. Long-line driver bits are attributed to every
// design node in their CLB (the line serves the whole CLB).
func SensitiveNodes(p *place.Placed, rep *Report) map[int]bool {
	g := p.Geom
	// Site lookup: (r, c, o) -> netlist node.
	type loc struct{ r, c, o int }
	siteNode := make(map[loc]int)
	for _, s := range p.Sites {
		if s.Node >= 0 {
			siteNode[loc{s.R, s.C, s.O}] = s.Node
		}
	}
	nodes := make(map[int]bool)
	addSite := func(r, c, o int) {
		if n, ok := siteNode[loc{r, c, o}]; ok {
			nodes[n] = true
		}
	}
	for _, bit := range rep.SensitiveBits {
		info := g.Classify(bit.Addr)
		switch info.Kind {
		case device.KindLUT:
			if info.CB >= device.CBLUTModeBase {
				addSite(info.R, info.C, info.CB-device.CBLUTModeBase)
			} else {
				addSite(info.R, info.C, (info.CB-device.CBLUTBase)/device.LUTBits)
			}
		case device.KindInMux:
			in := (info.CB - device.CBInMuxBase) / device.InMuxSelBits
			addSite(info.R, info.C, in/device.LUTInputs)
		case device.KindFF:
			addSite(info.R, info.C, (info.CB-device.CBFFBase)/device.FFCfgBits)
		case device.KindOutMux:
			addSite(info.R, info.C, info.CB-device.CBOutMuxBase)
		case device.KindLongLine:
			for o := 0; o < device.OutputsPerCLB; o++ {
				addSite(info.R, info.C, o)
			}
		}
	}
	return nodes
}
