package seu

import (
	"repro/internal/board"
	"repro/internal/device"
)

// TracePoint is one clock of a Fig. 7-style expected-vs-actual trace.
type TracePoint struct {
	Cycle    int64
	Expected uint64 // golden output
	Actual   uint64 // DUT output
	Match    bool
}

// Trace reproduces the paper's Fig. 7 experiment: run the design cleanly
// for preCycles, upset one configuration bit, run corruptCycles, repair the
// bit by partial reconfiguration, and keep running for postCycles — all
// while recording expected (golden) vs actual (DUT) outputs. For a
// persistent bit (e.g. a counter state bit) the actual value never
// re-converges after repair; only a reset would fix it.
func Trace(bd *board.SLAAC1V, a device.BitAddr, preCycles, corruptCycles, postCycles int) ([]TracePoint, error) {
	g := bd.Geometry()
	golden := bd.DUT.ConfigMemory().Clone()
	var out []TracePoint
	record := func() {
		e, act := bd.Outputs()
		out = append(out, TracePoint{Cycle: bd.Cycle(), Expected: e, Actual: act, Match: e == act})
	}
	for i := 0; i < preCycles; i++ {
		bd.Step()
		record()
	}
	bd.DUT.InjectBit(a)
	for i := 0; i < corruptCycles; i++ {
		bd.Step()
		record()
	}
	if err := bd.Port.WriteFrame(golden.Frame(a.Frame(g))); err != nil {
		return nil, err
	}
	for i := 0; i < postCycles; i++ {
		bd.Step()
		record()
	}
	return out, nil
}
