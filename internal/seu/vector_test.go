package seu

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/designs"
	"repro/internal/device"
)

// compareReports asserts every report-visible field the campaign promises is
// kernel-invariant. WallTime and the cycle diagnostics are excluded: the
// vector kernel's per-lane lock detection legitimately skips a different
// number of cycles than the scalar frame-compare tracker.
func compareReports(t *testing.T, label string, want, got *Report) {
	t.Helper()
	if got.Design != want.Design || got.Geom != want.Geom || got.SlicesUsed != want.SlicesUsed {
		t.Fatalf("%s: header differs: %q/%v/%d vs %q/%v/%d",
			label, got.Design, got.Geom, got.SlicesUsed, want.Design, want.Geom, want.SlicesUsed)
	}
	if got.Injections != want.Injections || got.Failures != want.Failures || got.Persistent != want.Persistent {
		t.Fatalf("%s: tallies differ: inj %d/%d fail %d/%d persist %d/%d",
			label, got.Injections, want.Injections, got.Failures, want.Failures, got.Persistent, want.Persistent)
	}
	if !reflect.DeepEqual(got.InjectionsByKind, want.InjectionsByKind) {
		t.Fatalf("%s: InjectionsByKind differ: %v vs %v", label, got.InjectionsByKind, want.InjectionsByKind)
	}
	if !reflect.DeepEqual(got.FailuresByKind, want.FailuresByKind) {
		t.Fatalf("%s: FailuresByKind differ: %v vs %v", label, got.FailuresByKind, want.FailuresByKind)
	}
	if got.SimulatedTime != want.SimulatedTime {
		t.Fatalf("%s: SimulatedTime differs: %v vs %v", label, got.SimulatedTime, want.SimulatedTime)
	}
	if !reflect.DeepEqual(got.SensitiveBits, want.SensitiveBits) {
		t.Fatalf("%s: SensitiveBits differ (%d vs %d records)", label, len(got.SensitiveBits), len(want.SensitiveBits))
	}
}

// vectorCampaign runs MULT 12 on Tiny under opts-modifying f and returns the
// report.
func vectorCampaign(t *testing.T, mod func(*Options)) *Report {
	t.Helper()
	spec, err := designs.ByName("MULT 12")
	if err != nil {
		t.Fatal(err)
	}
	bd := boardFor(t, spec.Build(), device.Tiny())
	opts := DefaultOptions()
	opts.Sample = 0.15
	opts.Seed = 11
	opts.Workers = 1
	opts.Triage = false
	mod(&opts)
	rep, err := Run(bd, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestVectorKernelMatchesSweep pins the tentpole invariant at the batch-size
// edges: campaigns capped at 1 (single-lane batch), 63 (one short of a
// word), 64 (exactly one full batch), and 65 (a full batch plus a partial
// final batch) injections must report byte-identically under the sweep and
// vector kernels, with the early exit both off and on.
func TestVectorKernelMatchesSweep(t *testing.T) {
	for _, fast := range []bool{false, true} {
		for _, maxBits := range []int64{1, 63, 64, 65, 0} {
			ref := vectorCampaign(t, func(o *Options) {
				o.Kernel = KernelSweep
				o.FastSim = fast
				o.MaxBits = maxBits
			})
			got := vectorCampaign(t, func(o *Options) {
				o.Kernel = KernelVector
				o.FastSim = fast
				o.MaxBits = maxBits
			})
			label := "maxbits=" + string(rune('0'+maxBits%10))
			if maxBits == 0 {
				if ref.Injections < 66 {
					t.Fatalf("uncapped campaign too small to exercise batching: %d injections", ref.Injections)
				}
				label = "uncapped"
			}
			if fast {
				label += "/fast"
			}
			compareReports(t, label, ref, got)
			if !fast && got.CyclesSkipped != 0 {
				t.Fatalf("%s: vector kernel skipped %d cycles with FastSim off", label, got.CyclesSkipped)
			}
		}
	}
}

// TestVectorSweepKernelMatchesVector pins the two lane kernels to each
// other at the campaign level: the event-driven drain (KernelVector) and
// the full-sweep settling loop (KernelVectorSweep) run the identical batch
// machinery, so their reports must be byte-identical — at the batch-size
// edges and with the early exit both off and on.
func TestVectorSweepKernelMatchesVector(t *testing.T) {
	for _, fast := range []bool{false, true} {
		for _, maxBits := range []int64{1, 64, 0} {
			ref := vectorCampaign(t, func(o *Options) {
				o.Kernel = KernelVector
				o.FastSim = fast
				o.MaxBits = maxBits
			})
			got := vectorCampaign(t, func(o *Options) {
				o.Kernel = KernelVectorSweep
				o.FastSim = fast
				o.MaxBits = maxBits
			})
			label := "vector-sweep/maxbits=" + string(rune('0'+maxBits%10))
			if fast {
				label += "/fast"
			}
			compareReports(t, label, ref, got)
		}
	}
}

// TestVectorKernelCounters pins the process-wide activity counters the
// daemon exports: a vector campaign must record worklist drains and settled
// rounds (the event drain performed work), and a fastsim vector campaign on
// a convergent design must record fast-forwarded cycles. Counters are
// cumulative and shared across tests, so only deltas are asserted.
func TestVectorKernelCounters(t *testing.T) {
	s0, d0, r0, f0 := VectorKernelStats()
	vectorCampaign(t, func(o *Options) { o.Kernel = KernelVector; o.FastSim = true })
	s1, d1, r1, f1 := VectorKernelStats()
	if s1 <= s0 || d1 <= d0 {
		t.Fatalf("vector campaign advanced sweeps %d->%d drains %d->%d; want both to increase", s0, s1, d0, d1)
	}
	if f1 <= f0 {
		t.Fatalf("fastsim vector campaign advanced fast-forward cycles %d->%d; want an increase", f0, f1)
	}
	// The uncapped campaign plans far more than 64 injections, so the batch
	// scheduler must have refilled retired lanes mid-batch.
	if r1 <= r0 {
		t.Fatalf("uncapped vector campaign advanced lane refills %d->%d; want an increase", r0, r1)
	}
}

// TestVectorKernelWorkerIndependence pins batch-composition independence:
// worker count changes where chunk boundaries fall, hence which injections
// share a batch, and must not change the report.
func TestVectorKernelWorkerIndependence(t *testing.T) {
	ref := vectorCampaign(t, func(o *Options) { o.Kernel = KernelVector })
	for _, w := range []int{2, 4} {
		got := vectorCampaign(t, func(o *Options) { o.Kernel = KernelVector; o.Workers = w })
		compareReports(t, "workers", ref, got)
	}
}

// TestEmitBatchOrderIndependent is the regression test for the sorted
// emission path: lanes retire in data-dependent order, and the accumulator
// fold must not depend on it. Shuffling the lane slice before emitBatch must
// produce an identical accumulator, including the order of collected bits.
func TestEmitBatchOrderIndependent(t *testing.T) {
	opts := DefaultOptions()
	mkLanes := func() []laneRun {
		return []laneRun{
			{addr: 900, kind: device.KindLUT, failed: true, firstErr: 3, failedOutputs: []int{0, 2}, persistent: true, cycles: 51, skipped: 4},
			{addr: 17, kind: device.KindInMux, failed: true, firstErr: 9, failedOutputs: []int{1}, cycles: 40},
			{addr: 400, kind: device.KindFF, cycles: 32, skipped: 8},
			{addr: 23, kind: device.KindLUT, failed: true, firstErr: 1, failedOutputs: []int{3}, persistent: true, cycles: 60},
			{addr: 1300, kind: device.KindLongLine, cycles: 32},
		}
	}
	ref := newShardAccum()
	emitBatch(mkLanes(), opts, ref)

	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		lanes := mkLanes()
		rng.Shuffle(len(lanes), func(i, j int) { lanes[i], lanes[j] = lanes[j], lanes[i] })
		acc := newShardAccum()
		emitBatch(lanes, opts, acc)
		if acc.failures != ref.failures || acc.persistent != ref.persistent ||
			acc.cyclesRun != ref.cyclesRun || acc.cyclesSkipped != ref.cyclesSkipped {
			t.Fatalf("trial %d: tallies differ after shuffle", trial)
		}
		if !reflect.DeepEqual(acc.failByKind, ref.failByKind) {
			t.Fatalf("trial %d: failByKind differs after shuffle", trial)
		}
		if !reflect.DeepEqual(acc.bits, ref.bits) {
			t.Fatalf("trial %d: bit records differ after shuffle:\n%v\n%v", trial, acc.bits, ref.bits)
		}
	}
}

// TestReplicaPool covers the board-pool soundness rules: a cleanly released
// replica is reused for a matching fingerprint, a mismatched fingerprint is
// dropped rather than handed out, and an unclean release discards the board.
func TestReplicaPool(t *testing.T) {
	spec, err := designs.ByName("MULT 12")
	if err != nil {
		t.Fatal(err)
	}
	bd := boardFor(t, spec.Build(), device.Tiny())
	if !poolEligible(bd) {
		t.Fatal("plain design must be pool-eligible")
	}
	tag := bd.CampaignFingerprint()

	wb := acquireReplica(bd, tag, 1)
	if wb == bd {
		t.Fatal("acquire must clone, not hand out the base board")
	}
	releaseReplica(wb, tag, true)
	if got := acquireReplica(bd, tag, 2); got != wb {
		t.Fatal("matching fingerprint must reuse the parked replica")
	}

	// A replica parked under a different fingerprint must never be handed
	// out for this base — and is dropped, not re-parked.
	releaseReplica(wb, tag^0xdeadbeef, true)
	if got := acquireReplica(bd, tag, 3); got == wb {
		t.Fatal("fingerprint mismatch handed out a stale substrate")
	}

	// Unclean completion discards the board entirely.
	wb2 := acquireReplica(bd, tag, 4)
	releaseReplica(wb2, tag, false)
	if got := acquireReplica(bd, tag, 5); got == wb2 {
		t.Fatal("unclean release parked a possibly-corrupt board")
	}
}
