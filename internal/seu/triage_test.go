package seu

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/board"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/place"
)

// TestTriageEquivalence is the triage exactness contract: for every catalog
// design that fits the test geometry, a triage-on campaign — sequential or
// sharded — produces a report byte-identical to the triage-off reference,
// while actually skipping board work.
func TestTriageEquivalence(t *testing.T) {
	ran := 0
	for _, spec := range designs.Catalog() {
		spec := spec
		p, err := place.Place(spec.Build(), device.Tiny())
		if err != nil {
			continue // design exceeds the test geometry; covered at full scale by CI smoke runs
		}
		ran++
		t.Run(spec.Name, func(t *testing.T) {
			run := func(triage bool, workers int) *Report {
				bd, err := board.New(p, 7)
				if err != nil {
					t.Fatal(err)
				}
				opts := DefaultOptions()
				opts.Sample = 0.06
				opts.Seed = 31
				opts.Workers = workers
				opts.Triage = triage
				rep, err := Run(bd, opts)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			ref := run(false, 1)
			if ref.Injections == 0 {
				t.Fatal("campaign injected nothing")
			}
			if ref.TriageSkipped != 0 {
				t.Fatalf("triage-off run skipped %d bits", ref.TriageSkipped)
			}
			for _, workers := range []int{1, 3} {
				got := run(true, workers)
				assertReportsEqual(t, ref, got)
				if got.TriageSkipped == 0 {
					t.Errorf("workers=%d: triage active but skipped nothing", workers)
				}
			}
		})
	}
	if ran < 5 {
		t.Fatalf("only %d catalog designs fit the test geometry", ran)
	}
}

// TestTriageSkippedBitsAreBenign re-runs the full injection procedure on a
// random sample of bits the triage proved inert — restricted to bits the
// FastPadSkip path would NOT have caught — and demands every one behaves as
// a benign injection: no failure, configuration fully restored, board still
// in lock-step.
func TestTriageSkippedBitsAreBenign(t *testing.T) {
	spec, err := designs.ByName("MULT 12")
	if err != nil {
		t.Fatal(err)
	}
	bd := boardFor(t, spec.Build(), device.Tiny())
	g := bd.Geometry()
	golden := bd.DUT.ConfigMemory().Clone()
	tri := newTriage(bd)

	var inert []device.BitAddr
	for a := device.BitAddr(0); int64(a) < g.TotalBits(); a++ {
		info := g.Classify(a)
		if info.Kind == device.KindPad || info.Kind == device.KindExtra {
			continue
		}
		if tri.inert(a) {
			inert = append(inert, a)
		}
	}
	if len(inert) == 0 {
		t.Fatal("triage proved no non-padding bit inert")
	}

	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(inert), func(i, j int) { inert[i], inert[j] = inert[j], inert[i] })
	if len(inert) > 250 {
		inert = inert[:250]
	}
	opts := DefaultOptions()
	opts.Seed = 31
	acc := newShardAccum()
	fs := newFrameScrub(g)
	for _, a := range inert {
		if err := injectOne(bd, golden, a, g.Classify(a).Kind, stimulusSeed(opts.Seed, a), opts, acc, fs, false); err != nil {
			t.Fatalf("bit %d: %v", a, err)
		}
		if acc.failures != 0 {
			t.Fatalf("triage-skipped bit %d caused an output failure", a)
		}
	}
	if !bd.DUT.ConfigMemory().Equal(golden) {
		t.Fatal("inert injections left configuration corruption")
	}
	if mism, _ := bd.StepN(50); mism != 0 {
		t.Fatal("board not in lock-step after inert injections")
	}
}

// TestSelectionPlanCountsExactly pins the satellite fix to the worker-count
// heuristic: selectionPlan's expected-injection count must equal the number
// of bits the campaign actually injects, for sampled, exhaustive, and
// MaxBits-capped configurations alike.
func TestSelectionPlanCountsExactly(t *testing.T) {
	const total = 50_000
	cases := []Options{
		{Sample: 1.0},
		{Sample: 1.0, MaxBits: 700},
		{Sample: 0.03, Seed: 5},
		{Sample: 0.03, Seed: 5, MaxBits: 200},
		{Sample: 0.5, Seed: 9, MaxBits: 1_000_000}, // cap beyond the selection
		{Sample: 0},
	}
	for i, opts := range cases {
		t.Run(fmt.Sprintf("case_%d", i), func(t *testing.T) {
			limit, count := selectionPlan(opts, total)
			if limit > total {
				t.Fatalf("limit %d beyond total %d", limit, total)
			}
			var brute int64
			for a := device.BitAddr(0); int64(a) < limit; a++ {
				if selected(opts, a) {
					brute++
				}
			}
			if brute != count {
				t.Errorf("selectionPlan count %d, actual selections in [0,limit) %d", count, brute)
			}
			if opts.MaxBits > 0 && count > opts.MaxBits {
				t.Errorf("count %d exceeds MaxBits %d", count, opts.MaxBits)
			}
			// Beyond an uncapped limit nothing may remain selected.
			if opts.MaxBits == 0 && limit < total {
				t.Errorf("uncapped plan truncated the address space at %d", limit)
			}
		})
	}
}
