// Package seu implements the paper's SEU simulator: exhaustive (or
// uniformly sampled) single-bit corruption of the configuration bitstream
// through the configuration port, clock-by-clock golden-vs-DUT output
// comparison, repair by partial reconfiguration, and classification of
// sensitive bits into persistent and non-persistent (§III, Fig. 8).
package seu

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/bitstream"
	"repro/internal/board"
	"repro/internal/device"
)

// Options tune an injection campaign.
type Options struct {
	// ObserveCycles is how many clocks the corrupted design runs while the
	// comparator watches for discrepancies.
	ObserveCycles int
	// PersistWindow is how many clocks the repaired design gets to
	// re-synchronize before a sensitive bit is declared persistent.
	PersistWindow int
	// CleanRun is the number of consecutive matching clocks that counts as
	// re-synchronized.
	CleanRun int
	// Sample is the fraction of configuration bits to inject (1 =
	// exhaustive). Each bit's inclusion is decided by a hash of (Seed,
	// address) — uniform over the whole bitstream, so sensitivity
	// estimates stay unbiased, and independent of iteration order, so the
	// injected set is identical at any worker count.
	Sample float64
	// MaxBits caps the number of injections (0 = no cap): the first
	// MaxBits selected bits in ascending address order.
	MaxBits int64
	// Seed drives sampling and per-injection stimulus.
	Seed int64
	// Workers is the number of concurrent injection workers. Each worker
	// beyond the first runs on a cloned board replica; per-shard results
	// merge deterministically, so every value of Workers produces the
	// same Report. 0 means GOMAXPROCS.
	Workers int
	// ClassifyPersistence enables the paper's persistent/non-persistent
	// classification pass for every sensitive bit.
	ClassifyPersistence bool
	// CollectBits records the address of every sensitive bit (needed for
	// beam-validation correlation and selective TMR).
	CollectBits bool
	// FastPadSkip records architecturally inert padding bits as benign
	// without running the clock. Their decode is provably unchanged, so
	// this is exact, not an approximation.
	FastPadSkip bool
	// Triage enables the campaign-scoped static cone-of-influence analysis:
	// configuration bits that provably cannot influence any observed output
	// are tallied as benign without touching the board. The analysis is
	// conservative — any bit whose flip could create a new long-line driver,
	// re-route a live mux, or reach an observed net stays potentially-
	// sensitive, and designs with history-coupled state (SRL16 shift
	// registers, writable BRAM, stuck-fault overlays) disable it wholesale —
	// so reports are byte-identical to triage-off runs; only WallTime and
	// the TriageSkipped tally differ.
	Triage bool
	// FastSim enables the activity-driven settling kernel on both devices
	// and lock-step convergence early exit: once the repaired DUT is
	// provably state-identical to the golden device (board.SLAAC1V.Locked),
	// the remaining clean-run and persistence cycles are credited as
	// mismatch-free instead of simulated. Both mechanisms are exact —
	// reports are byte-identical to FastSim-off runs; only WallTime and the
	// CyclesSimulated/CyclesSkipped diagnostics differ. Designs with
	// history-coupled state (SRL16, writable BRAM, stuck overlays) disable
	// the early exit automatically, since skipping cycles there would change
	// the state later injections observe.
	FastSim bool
	// Kernel overrides which settling kernel both devices run, independently
	// of FastSim. KernelAuto follows FastSim (the historical coupling); the
	// explicit choices let conformance harnesses sweep the kernel axis and
	// the early-exit axis separately. The kernel choice alone is always
	// exact, so every combination produces byte-identical reports.
	Kernel Kernel
}

// Kernel selects the settling kernel an injection campaign runs on.
type Kernel int

const (
	// KernelAuto ties the kernel to FastSim: event-driven when FastSim is
	// on, full-sweep when it is off.
	KernelAuto Kernel = iota
	// KernelEvent forces the activity-driven kernel on both devices.
	KernelEvent
	// KernelSweep forces the full-sweep kernel on both devices.
	KernelSweep
	// KernelVector runs eligible injections through the bit-parallel lane
	// kernel — 64 fault universes per sweep (internal/fpga/vector.go) —
	// demoting incompatible bits (SRL16 truth bits, BRAM bits, LUT-mode
	// flips, history-coupled designs wholesale) to the scalar path, which
	// then follows KernelAuto semantics. Lane trajectories are exact images
	// of the scalar sweep kernel, so reports stay byte-identical. Lanes
	// settle through the event-driven worklist drain (fpga/vecevent.go) and
	// the batch scheduler refills retired lanes mid-batch.
	KernelVector
	// KernelVectorSweep is KernelVector with the lanes settling through the
	// full-sweep loop instead of the event drain, in fixed 64-lane
	// generations (the PR 7 scheduler) — the conformance axis separating
	// "vectorized" from "event-driven" and the sweep-vs-drain crosscheck
	// anchor.
	KernelVectorSweep
)

// ParseKernel maps the CLI spelling to a Kernel.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "event":
		return KernelEvent, nil
	case "sweep":
		return KernelSweep, nil
	case "vector":
		return KernelVector, nil
	case "vector-sweep":
		return KernelVectorSweep, nil
	}
	return KernelAuto, fmt.Errorf("seu: unknown kernel %q (auto|event|sweep|vector|vector-sweep)", s)
}

func (k Kernel) String() string {
	switch k {
	case KernelEvent:
		return "event"
	case KernelSweep:
		return "sweep"
	case KernelVector:
		return "vector"
	case KernelVectorSweep:
		return "vector-sweep"
	}
	return "auto"
}

// vectorized reports whether k runs eligible injections on the 64-lane
// kernel (either settling flavour).
func (k Kernel) vectorized() bool {
	return k == KernelVector || k == KernelVectorSweep
}

// scalarKernelEvent resolves which settling kernel the scalar boards run:
// the explicit choice, or FastSim's historical coupling under KernelAuto.
// KernelVector follows auto semantics for its scalar fallback — the vector
// batches never touch the scalar boards' kernel.
func scalarKernelEvent(opts Options) bool {
	switch opts.Kernel {
	case KernelEvent:
		return true
	case KernelSweep:
		return false
	}
	return opts.FastSim
}

// DefaultOptions returns the standard campaign parameters.
func DefaultOptions() Options {
	return Options{
		ObserveCycles:       24,
		PersistWindow:       48,
		CleanRun:            8,
		Sample:              1.0,
		ClassifyPersistence: true,
		CollectBits:         true,
		FastPadSkip:         true,
		Triage:              true,
		FastSim:             true,
	}
}

// BitRecord describes one sensitive configuration bit.
type BitRecord struct {
	Addr       device.BitAddr
	Kind       device.BitKind
	Persistent bool
	// FirstErrorCycle is the comparator cycle (relative to injection) at
	// which the first output discrepancy appeared.
	FirstErrorCycle int
	// FailedOutputs are the output-bit indices that disagreed at the first
	// error (the raw material of the §III-A correlation table).
	FailedOutputs []int
}

// Report is the result of a campaign — the raw material of the paper's
// Tables I and II.
type Report struct {
	Design     string
	Geom       device.Geometry
	SlicesUsed int

	Injections int64
	Failures   int64
	Persistent int64

	InjectionsByKind KindCounts
	FailuresByKind   KindCounts

	SensitiveBits []BitRecord

	// TriageSkipped counts the injections the static cone-of-influence
	// triage tallied as benign without board activity — a subset of
	// Injections. A triage-off run of the same campaign reports 0 here and
	// identical values everywhere else (except WallTime).
	TriageSkipped int64

	// CyclesSimulated counts board clocks actually stepped; CyclesSkipped
	// counts clocks credited by the lock-step convergence early exit without
	// simulation. Diagnostics only — like WallTime they vary with FastSim
	// while every report-visible result stays identical.
	CyclesSimulated int64
	CyclesSkipped   int64

	// SimulatedTime is the virtual test time on the modelled SLAAC-1V
	// (InjectLoopTime per injection), the figure behind the paper's
	// "entire bitstream ... in 20 minutes".
	SimulatedTime time.Duration
	// WallTime is how long the Go simulation actually took.
	WallTime time.Duration
}

// Sensitivity returns failures per injected bit — with exhaustive
// injection, exactly the paper's "design failures / configuration upsets".
func (r *Report) Sensitivity() float64 {
	if r.Injections == 0 {
		return 0
	}
	return float64(r.Failures) / float64(r.Injections)
}

// NormalizedSensitivity factors out area: sensitivity divided by slice
// utilization (Table I's right-hand column).
func (r *Report) NormalizedSensitivity() float64 {
	util := float64(r.SlicesUsed) / float64(r.Geom.Slices())
	if util == 0 {
		return 0
	}
	return r.Sensitivity() / util
}

// PersistenceRatio returns persistent bits per sensitive bit (Table II).
func (r *Report) PersistenceRatio() float64 {
	if r.Failures == 0 {
		return 0
	}
	return float64(r.Persistent) / float64(r.Failures)
}

func (r *Report) String() string {
	return fmt.Sprintf("%s: %d slices (%.1f%%), %d injections, %d failures, sensitivity %.2f%%, normalized %.1f%%, persistence %.1f%%",
		r.Design, r.SlicesUsed, 100*float64(r.SlicesUsed)/float64(r.Geom.Slices()),
		r.Injections, r.Failures, 100*r.Sensitivity(), 100*r.NormalizedSensitivity(), 100*r.PersistenceRatio())
}

// Run executes an injection campaign on the testbed. The board must be
// freshly configured (golden and DUT in lock-step).
//
// With Workers > 1 the bit-address space is sharded over cloned board
// replicas. Every injection starts from canonical board state with a
// stimulus stream seeded from (Seed, address), so the Report — injected
// set, counters, per-kind maps, and SensitiveBits order — is identical at
// any worker count; only WallTime varies.
func Run(bd *board.SLAAC1V, opts Options) (*Report, error) {
	return RunContext(context.Background(), bd, opts)
}

// RunContext is Run with cancellation: when ctx is cancelled the campaign
// stops between injections and returns ctx's error. A cancelled campaign
// returns no partial report — resumable execution is the chunk API's job
// (PlanChunks / ChunkRunner).
func RunContext(ctx context.Context, bd *board.SLAAC1V, opts Options) (*Report, error) {
	if opts.ObserveCycles <= 0 || opts.CleanRun <= 0 {
		return nil, fmt.Errorf("seu: non-positive cycle counts")
	}
	g := bd.Geometry()
	bd.SetFastSim(scalarKernelEvent(opts))
	// Convergence early exit is exact only when no live design state
	// survives a campaign reset; history-coupled configurations keep
	// simulating every cycle (the kernel choice alone is always exact).
	fast := opts.FastSim && !bd.DUT.HistoryCoupled()
	golden := bd.DUT.ConfigMemory().Clone()
	rep := &Report{
		Design:           bd.Placed.Circuit.Name,
		Geom:             g,
		SlicesUsed:       bd.Placed.SlicesUsed(),
		InjectionsByKind: make(KindCounts),
		FailuresByKind:   make(KindCounts),
	}
	start := time.Now()

	limit, expected := selectionPlan(opts, g.TotalBits())
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if maxw := int(expected/minInjectionsPerWorker) + 1; workers > maxw {
		workers = maxw // not enough work to amortize board clones
	}
	var tri *triage
	if opts.Triage {
		tri = newTriage(bd)
	}
	plan := campaignPlan(bd, opts, limit, tri)
	if workers == 1 {
		acc := newShardAccum()
		vr := maybeNewVectorRunner(bd, opts, plan)
		if err := runRange(ctx, bd, golden, 0, limit, opts, acc, tri, newFrameScrub(g), fast, vr, plan); err != nil {
			return nil, err
		}
		mergeInto(rep, acc)
	} else {
		accs, err := runSharded(ctx, bd, golden, limit, workers, opts, tri, fast, plan)
		if err != nil {
			return nil, err
		}
		for _, acc := range accs {
			mergeInto(rep, acc)
		}
	}
	// Already in address order by construction; keep the guarantee even if
	// the sharding strategy changes.
	sort.Slice(rep.SensitiveBits, func(i, j int) bool {
		return rep.SensitiveBits[i].Addr < rep.SensitiveBits[j].Addr
	})
	rep.WallTime = time.Since(start)
	return rep, nil
}

// observeOutcome is the result of an injection's corrupt/observe/repair
// prefix: the comparator verdict of the observation window plus the number
// of board clocks it consumed.
type observeOutcome struct {
	failed        bool
	firstErr      int
	failedOutputs []int
	steps         int64
}

// observeAndRepair runs the front half of one injection iteration: reset to
// canonical state, corrupt, observe under clock, repair by frame write-back
// plus column scrub. It is shared between the fully scalar injectOne and
// the carry path, which hands the repaired board's state to a vector lane
// for the remaining windows.
func observeAndRepair(bd *board.SLAAC1V, golden *bitstream.Memory, a device.BitAddr, seed int64, opts Options, fs *frameScrub) (observeOutcome, error) {
	g := bd.Geometry()
	// Canonical pre-injection state: stimulus seeded by (Seed, address),
	// pins low, user state reset. Each injection's outcome then depends
	// only on the bitstream and the injected bit, never on which board
	// replica or predecessor injection preceded it.
	bd.ResetCampaignState(seed)
	startCycle := bd.Cycle()
	var ob observeOutcome

	// Corrupt: flip the bit in the DUT's configuration (modelled as the
	// single-bit partial reconfiguration the testbed performs in 100 us —
	// accounted by the campaign's per-iteration loop time).
	bd.DUT.InjectBit(a)

	// Observe while the clock runs. No convergence check here: until the
	// repair below, the DUT's configuration differs from golden by at least
	// the injected bit, so (for the non-history-coupled designs the early
	// exit is enabled for) lock is impossible and checking would be pure
	// per-step overhead.
	for i := 0; i < opts.ObserveCycles; i++ {
		if !bd.Step() {
			ob.failed = true
			ob.firstErr = int(bd.Cycle() - startCycle)
			// MismatchBits returns a reused scratch slice; copy to retain.
			ob.failedOutputs = append([]int(nil), bd.MismatchBits()...)
			break
		}
	}
	ob.steps = bd.Cycle() - startCycle

	// Repair: write the golden frame back through the configuration port.
	// Corruption can spread beyond the injected frame — flipping a LUT-mode
	// bit turns the LUT into a live shift register whose truth-table
	// configuration bits change every clock (the paper's §II-C dynamic-
	// content pathology) — so scrub every frame that differs from golden.
	frame := a.Frame(g)
	if err := bd.Port.WriteFrame(golden.Frame(frame)); err != nil {
		return ob, fmt.Errorf("seu: repairing frame %d: %w", frame, err)
	}
	cm := bd.DUT.ConfigMemory()
	fs.markClean(cm, frame)
	// The spread is confined to the injected bit's column (an SRL shifts
	// only its own truth-table frames); residual divergence anywhere else
	// is caught by the clean-run check and the full-reconfiguration
	// fallback of the caller. Frames whose generation counter hasn't moved
	// since they were last verified golden are provably untouched and skip
	// even the compare.
	if frame < g.CLBFrames() {
		colBase := (frame / device.FramesPerCLBCol) * device.FramesPerCLBCol
		for fidx := colBase; fidx < colBase+device.FramesPerCLBCol; fidx++ {
			if fs.isClean(cm, fidx) {
				continue
			}
			if !cm.FrameEqual(golden, fidx) {
				if err := bd.Port.WriteFrame(golden.Frame(fidx)); err != nil {
					return ob, fmt.Errorf("seu: scrubbing frame %d: %w", fidx, err)
				}
			}
			fs.markClean(cm, fidx)
		}
	}
	return ob, nil
}

// injectOne performs one corrupt/observe/repair/classify iteration. fs is
// the board replica's dirty-frame tracker: it persists across injections so
// the repair scrub only re-verifies frames actually touched since their
// last golden verification. seed is the injection's stimulus seed
// (precomputed by the pre-plan on the vector path, derived on the fly by
// the scalar loop).
func injectOne(bd *board.SLAAC1V, golden *bitstream.Memory, a device.BitAddr, kind device.BitKind, seed int64, opts Options, acc *shardAccum, fs *frameScrub, fast bool) error {
	ob, err := observeAndRepair(bd, golden, a, seed, opts, fs)
	startCycle := bd.Cycle() - ob.steps
	defer func() { acc.cyclesRun += bd.Cycle() - startCycle }()
	if err != nil {
		return err
	}
	failed, firstErr, failedOutputs := ob.failed, ob.firstErr, ob.failedOutputs
	if !failed {
		// No output error during the window. Make sure no silent state
		// divergence contaminates later injections: a short clean run must
		// follow; otherwise this bit was sensitive after all.
		clean := 0
		for clean < opts.CleanRun {
			if fast && bd.Locked() {
				// Provably in lock-step forever: the remaining clean cycles
				// are guaranteed matches.
				acc.cyclesSkipped += int64(opts.CleanRun - clean)
				clean = opts.CleanRun
				break
			}
			if bd.Step() {
				clean++
			} else {
				failed = true
				firstErr = int(bd.Cycle() - startCycle)
				failedOutputs = append([]int(nil), bd.MismatchBits()...)
				break
			}
		}
		if !failed {
			return nil
		}
	}

	acc.failures++
	acc.failByKind[kind]++

	persistent := false
	if opts.ClassifyPersistence {
		// The configuration is already repaired; if the design re-syncs on
		// its own the bit is non-persistent, otherwise state corruption
		// survives scrubbing and only a reset clears it (§III-A, Table II).
		// The verdict is tail-anchored — the design must END the window in
		// lock-step — so a lucky mid-window streak of matches (common for
		// narrow outputs) is not mistaken for recovery.
		clean := 0
		for i := 0; i < opts.PersistWindow; i++ {
			if fast && bd.Locked() {
				// Every remaining cycle is a guaranteed match, extending the
				// current clean streak to the end of the window — exactly
				// what simulating them would produce.
				remaining := opts.PersistWindow - i
				acc.cyclesSkipped += int64(remaining)
				clean += remaining
				break
			}
			if bd.Step() {
				clean++
			} else {
				clean = 0
			}
		}
		persistent = clean < opts.CleanRun
		if persistent {
			acc.persistent++
		}
	}
	if opts.CollectBits {
		acc.bits = append(acc.bits, BitRecord{
			Addr: a, Kind: kind, Persistent: persistent,
			FirstErrorCycle: firstErr, FailedOutputs: failedOutputs,
		})
	}

	// Reset both designs to re-synchronize (Fig. 8's "reset designs").
	bd.ResetBoth()
	if !bd.Match() {
		// Reset was not enough (e.g. live memory content diverged while the
		// routing was corrupted). Fall back to a full reconfiguration of
		// the DUT, as the flight procedure would.
		if err := bd.Port.FullConfigure(bitstream.Full(golden)); err != nil {
			return fmt.Errorf("seu: full reconfiguration after bit %d: %w", a, err)
		}
		bd.ResetBoth()
		if !bd.Match() {
			return fmt.Errorf("seu: designs failed to re-synchronize after full reconfiguration at bit %d", a)
		}
	}
	return nil
}
