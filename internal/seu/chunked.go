package seu

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/bitstream"
	"repro/internal/board"
	"repro/internal/device"
)

// Resumable chunked execution. The campaign service decomposes a sweep into
// an explicit chunk plan, runs chunks on worker replicas, and checkpoints
// each completed chunk's serialized result to disk. Because the plan is a
// pure function of (geometry, options) and every chunk's result is a pure
// function of (plan entry, options) — the same per-injection determinism the
// sharded path relies on — a sweep interrupted at any chunk boundary and
// resumed later (even by a different process at a different worker count)
// assembles into a Report byte-identical to an uninterrupted Run.

// ChunkSpec is one contiguous bit-address range of a campaign's sweep.
type ChunkSpec struct {
	Index int   `json:"index"`
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
}

// PlanChunks decomposes the campaign over g into at most maxChunks
// contiguous address ranges covering exactly the range Run would sweep.
// The plan depends only on (g, opts, maxChunks) — never on worker count —
// so a checkpoint directory written under one scheduler configuration is
// valid under any other.
func PlanChunks(g device.Geometry, opts Options, maxChunks int) []ChunkSpec {
	limit, _ := selectionPlan(opts, g.TotalBits())
	if maxChunks < 1 {
		maxChunks = 1
	}
	n := int64(maxChunks)
	if n > limit {
		n = limit
	}
	if n < 1 {
		n = 1
	}
	span := (limit + n - 1) / n
	var plan []ChunkSpec
	for lo := int64(0); lo < limit; lo += span {
		hi := lo + span
		if hi > limit {
			hi = limit
		}
		plan = append(plan, ChunkSpec{Index: len(plan), Lo: lo, Hi: hi})
	}
	if plan == nil {
		// Degenerate campaign (nothing selected); one empty chunk keeps
		// "every plan has at least one chunk" true for schedulers.
		plan = []ChunkSpec{{Index: 0}}
	}
	return plan
}

// ChunkResult is the serializable outcome of one chunk — the checkpoint
// unit. It mirrors the internal shard accumulator field for field.
type ChunkResult struct {
	Index           int        `json:"index"`
	Injections      int64      `json:"injections"`
	Failures        int64      `json:"failures"`
	Persistent      int64      `json:"persistent"`
	TriageSkipped   int64      `json:"triage_skipped"`
	CyclesSimulated int64      `json:"cycles_simulated"`
	CyclesSkipped   int64      `json:"cycles_skipped"`
	SimulatedTimeNs int64      `json:"simulated_time_ns"`
	InjectionsByKind KindCounts `json:"injections_by_kind"`
	FailuresByKind   KindCounts `json:"failures_by_kind"`
	Bits             []BitRecord `json:"bits,omitempty"`
}

// result converts a shard accumulator into its serializable form.
func (acc *shardAccum) result(index int) *ChunkResult {
	cr := &ChunkResult{
		Index:            index,
		Injections:       acc.injections,
		Failures:         acc.failures,
		Persistent:       acc.persistent,
		TriageSkipped:    acc.triageSkipped,
		CyclesSimulated:  acc.cyclesRun,
		CyclesSkipped:    acc.cyclesSkipped,
		SimulatedTimeNs:  acc.simTime.Nanoseconds(),
		InjectionsByKind: make(KindCounts, len(acc.injByKind)),
		FailuresByKind:   make(KindCounts, len(acc.failByKind)),
		Bits:             acc.bits,
	}
	for k, n := range acc.injByKind {
		cr.InjectionsByKind[k] = n
	}
	for k, n := range acc.failByKind {
		cr.FailuresByKind[k] = n
	}
	return cr
}

// CanonicalJSON returns the result's canonical serialized form — the bytes
// checkpoint stores persist and content-hash. Determinism holds because
// every field marshals order-independently: KindCounts renders with sorted
// keys and Bits is emitted in ascending address order by the accumulator,
// so the same chunk of the same campaign always serializes to the same
// bytes, on any node.
func (cr *ChunkResult) CanonicalJSON() ([]byte, error) {
	return json.Marshal(cr)
}

// Hash is the content hash (hex SHA-256) of CanonicalJSON — the identity a
// chunk result commits under. Duplicate completions of a chunk (e.g. after
// a lease steal re-issued it) hash identically, which is what lets a
// distributed commit be first-valid-wins with byte-identical no-ops.
func (cr *ChunkResult) Hash() (string, error) {
	b, err := cr.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// ChunkRunner executes chunks of one campaign on one board replica. The
// base runner owns the campaign-scoped immutable state (golden snapshot,
// triage mask); Clone derives additional runners for concurrent workers,
// sharing that state the same way the internal sharded path does.
type ChunkRunner struct {
	bd     *board.SLAAC1V
	golden *bitstream.Memory
	tri    *triage
	fs     *frameScrub
	fast   bool
	opts   Options
	plan   *prePlan
	vr     *vectorRunner
	// tag/pooled drive replica-pool bookkeeping: clones are acquired from
	// the pool and Release parks them; the base runner's board belongs to
	// the caller and is never pooled.
	tag    uint64
	pooled bool
}

// NewChunkRunner prepares bd for chunked execution of the campaign opts
// describes: kernel selection, golden snapshot, and (if enabled) the static
// triage mask — exactly the preamble of Run.
func NewChunkRunner(bd *board.SLAAC1V, opts Options) (*ChunkRunner, error) {
	if opts.ObserveCycles <= 0 || opts.CleanRun <= 0 {
		return nil, fmt.Errorf("seu: non-positive cycle counts")
	}
	bd.SetFastSim(scalarKernelEvent(opts))
	r := &ChunkRunner{
		bd:     bd,
		golden: bd.DUT.ConfigMemory().Clone(),
		fs:     newFrameScrub(bd.Geometry()),
		fast:   opts.FastSim && !bd.DUT.HistoryCoupled(),
		opts:   opts,
	}
	if poolEligible(bd) {
		r.tag = bd.CampaignFingerprint()
	}
	if opts.Triage {
		r.tri = newTriage(bd)
	}
	limit, _ := selectionPlan(opts, bd.Geometry().TotalBits())
	r.plan = campaignPlan(bd, opts, limit, r.tri)
	r.vr = maybeNewVectorRunner(bd, opts, r.plan)
	return r, nil
}

// Clone returns a runner on a worker board replica — a pooled one from an
// earlier campaign of this design when available, else a fresh clone. The
// triage mask and golden snapshot are immutable and shared; the
// dirty-frame tracker and vector batch scheduler are per replica. The seed
// only decorrelates a fresh replica's idle rng — results are independent
// of it.
func (r *ChunkRunner) Clone(seed int64) *ChunkRunner {
	wb := acquireReplica(r.bd, r.tag, seed)
	wb.SetFastSim(scalarKernelEvent(r.opts))
	return &ChunkRunner{
		bd:     wb,
		golden: r.golden,
		tri:    r.tri,
		fs:     newFrameScrub(wb.Geometry()),
		fast:   r.fast,
		opts:   r.opts,
		plan:   r.plan,
		vr:     maybeNewVectorRunner(wb, r.opts, r.plan),
		tag:    r.tag,
		pooled: true,
	}
}

// Release parks a cloned runner's board replica for reuse by later
// campaigns of the same design. Call it only after every chunk handed to
// this runner completed without error — an aborted runner may hold a board
// mid-corruption, and such boards must be discarded (simply don't call
// Release). No-op on the base runner, whose board belongs to the caller.
func (r *ChunkRunner) Release() {
	if !r.pooled {
		return
	}
	releaseReplica(r.bd, r.tag, true)
	r.pooled = false
}

// Run executes one chunk, returning its serializable result. A cancelled
// context aborts between injections with ctx's error and no result.
func (r *ChunkRunner) Run(ctx context.Context, spec ChunkSpec) (*ChunkResult, error) {
	acc := newShardAccum()
	if err := runRange(ctx, r.bd, r.golden, spec.Lo, spec.Hi, r.opts, acc, r.tri, r.fs, r.fast, r.vr, r.plan); err != nil {
		return nil, err
	}
	return acc.result(spec.Index), nil
}

// AssembleReport folds chunk results — in any order, e.g. fresh runs mixed
// with checkpoints loaded from disk — into the Report an uninterrupted Run
// of the same campaign produces. The caller owns WallTime.
func (r *ChunkRunner) AssembleReport(results []*ChunkResult) *Report {
	ordered := append([]*ChunkResult(nil), results...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Index < ordered[j].Index })
	rep := &Report{
		Design:           r.bd.Placed.Circuit.Name,
		Geom:             r.bd.Geometry(),
		SlicesUsed:       r.bd.Placed.SlicesUsed(),
		InjectionsByKind: make(KindCounts),
		FailuresByKind:   make(KindCounts),
	}
	for _, cr := range ordered {
		rep.Injections += cr.Injections
		rep.Failures += cr.Failures
		rep.Persistent += cr.Persistent
		rep.TriageSkipped += cr.TriageSkipped
		rep.CyclesSimulated += cr.CyclesSimulated
		rep.CyclesSkipped += cr.CyclesSkipped
		rep.SimulatedTime += time.Duration(cr.SimulatedTimeNs)
		for k, n := range cr.InjectionsByKind {
			rep.InjectionsByKind[k] += n
		}
		for k, n := range cr.FailuresByKind {
			rep.FailuresByKind[k] += n
		}
		rep.SensitiveBits = append(rep.SensitiveBits, cr.Bits...)
	}
	sort.Slice(rep.SensitiveBits, func(i, j int) bool {
		return rep.SensitiveBits[i].Addr < rep.SensitiveBits[j].Addr
	})
	return rep
}
