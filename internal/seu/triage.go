package seu

import (
	"repro/internal/bitstream"
	"repro/internal/board"
	"repro/internal/device"
)

// Campaign-scoped static triage. Before the first injection the campaign
// computes the cone of influence of the comparator's observed outputs over
// the golden decoded fabric (internal/fpga's SensitivityMask) and skips the
// board entirely for bits proven unable to affect any observation — the
// generalization of FastPadSkip from padding to all unused fabric. Skipped
// bits are tallied exactly as a benign injection would be, so reports stay
// byte-identical to triage-off runs; the analysis refuses to triage
// configurations with history-coupled state (SRL16, writable BRAM, stuck
// faults), where skipping an injection would perturb later outcomes.
type triage struct {
	mask *bitstream.Memory // set = potentially sensitive, clear = inert
}

// newTriage builds the sensitivity mask from the golden device. The mask is
// immutable afterwards and safe to share across campaign workers.
func newTriage(bd *board.SLAAC1V) *triage {
	mask, _ := bd.Golden.SensitivityMask(bd.OutputNetIDs())
	return &triage{mask: mask}
}

// inert reports whether bit a is provably unable to influence any observed
// output (false when triage is disabled).
func (t *triage) inert(a device.BitAddr) bool {
	return t != nil && !t.mask.Get(a)
}

// frameScrub tracks, per board replica, the DUT configuration-memory
// generation at which each frame was last verified equal to the campaign's
// golden snapshot. A frame whose generation has not moved since then is
// provably still golden, so post-injection scrubbing can skip the bit
// compare: the invariant is maintained by bitstream.Memory bumping the
// generation on every mutation.
type frameScrub struct {
	clean []uint64 // FrameGen+1 at last verification; 0 = never verified
}

func newFrameScrub(g device.Geometry) *frameScrub {
	return &frameScrub{clean: make([]uint64, g.TotalFrames())}
}

// isClean reports whether frame f is untouched since it was last verified
// equal to the golden snapshot.
func (fs *frameScrub) isClean(cm *bitstream.Memory, f int) bool {
	return fs.clean[f] == cm.FrameGen(f)+1
}

// markClean records that frame f currently equals the golden snapshot.
func (fs *frameScrub) markClean(cm *bitstream.Memory, f int) {
	fs.clean[f] = cm.FrameGen(f) + 1
}
