package seu

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/designs"
	"repro/internal/device"
)

// assertReportsEqual demands byte-identical campaign results; only the
// wall-clock field may differ between runs.
func assertReportsEqual(t *testing.T, seq, par *Report) {
	t.Helper()
	if seq.Injections != par.Injections {
		t.Errorf("Injections: sequential %d, parallel %d", seq.Injections, par.Injections)
	}
	if seq.Failures != par.Failures {
		t.Errorf("Failures: sequential %d, parallel %d", seq.Failures, par.Failures)
	}
	if seq.Persistent != par.Persistent {
		t.Errorf("Persistent: sequential %d, parallel %d", seq.Persistent, par.Persistent)
	}
	if seq.SimulatedTime != par.SimulatedTime {
		t.Errorf("SimulatedTime: sequential %v, parallel %v", seq.SimulatedTime, par.SimulatedTime)
	}
	if !reflect.DeepEqual(seq.InjectionsByKind, par.InjectionsByKind) {
		t.Errorf("InjectionsByKind: sequential %v, parallel %v", seq.InjectionsByKind, par.InjectionsByKind)
	}
	if !reflect.DeepEqual(seq.FailuresByKind, par.FailuresByKind) {
		t.Errorf("FailuresByKind: sequential %v, parallel %v", seq.FailuresByKind, par.FailuresByKind)
	}
	if !reflect.DeepEqual(seq.SensitiveBits, par.SensitiveBits) {
		t.Errorf("SensitiveBits differ: sequential %d records, parallel %d records",
			len(seq.SensitiveBits), len(par.SensitiveBits))
	}
}

// TestParallelSequentialEquivalence is the campaign-determinism contract:
// Workers: 1 and Workers: 4 produce identical reports for catalog designs
// at sampled and exhaustive rates. The Workers: 4 runs also put the
// sharded path under the race detector in the default test suite.
func TestParallelSequentialEquivalence(t *testing.T) {
	cases := []struct {
		design  string
		sample  float64
		maxBits int64 // bounds the exhaustive cases so the suite stays fast
	}{
		{design: "MULT 12", sample: 0.1},
		{design: "MULT 12", sample: 1.0, maxBits: 9000},
		{design: "LFSR 18", sample: 0.1},
		{design: "LFSR 18", sample: 1.0, maxBits: 9000},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s_sample_%.1f", tc.design, tc.sample), func(t *testing.T) {
			spec, err := designs.ByName(tc.design)
			if err != nil {
				t.Fatal(err)
			}
			run := func(workers int) *Report {
				bd := boardFor(t, spec.Build(), device.Tiny())
				opts := DefaultOptions()
				opts.Sample = tc.sample
				opts.MaxBits = tc.maxBits
				opts.Seed = 11
				opts.Workers = workers
				rep, err := Run(bd, opts)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			seq := run(1)
			par := run(4)
			if seq.Injections == 0 {
				t.Fatal("campaign injected nothing")
			}
			assertReportsEqual(t, seq, par)
			if !sort.SliceIsSorted(par.SensitiveBits, func(i, j int) bool {
				return par.SensitiveBits[i].Addr < par.SensitiveBits[j].Addr
			}) {
				t.Error("parallel SensitiveBits not sorted by Addr")
			}
		})
	}
}

// TestRunIsReplayStable guards the per-bit hash-sampling property directly:
// two runs with identical options inject the identical bit set even though
// board state and RNG streams evolved differently in between.
func TestRunIsReplayStable(t *testing.T) {
	spec, err := designs.ByName("MULT 12")
	if err != nil {
		t.Fatal(err)
	}
	bd := boardFor(t, spec.Build(), device.Tiny())
	opts := DefaultOptions()
	opts.Sample = 0.08
	opts.Seed = 17
	opts.Workers = 1
	first, err := Run(bd, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the board between campaigns; a replay must not care.
	bd.StepN(37)
	second, err := Run(bd, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertReportsEqual(t, first, second)
}

// TestMaxBitsCapsIdenticallyAcrossWorkers pins the MaxBits semantics under
// sharding: the cap selects the first MaxBits sampled bits in address
// order, not "whichever shard got there first".
func TestMaxBitsCapsIdenticallyAcrossWorkers(t *testing.T) {
	spec, err := designs.ByName("MULT 12")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Report {
		bd := boardFor(t, spec.Build(), device.Tiny())
		opts := DefaultOptions()
		opts.Sample = 0.5
		opts.MaxBits = 700
		opts.Seed = 23
		opts.Workers = workers
		rep, err := Run(bd, opts)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	seq := run(1)
	if seq.Injections != 700 {
		t.Fatalf("MaxBits cap not honoured: %d injections", seq.Injections)
	}
	assertReportsEqual(t, seq, run(3))
}
