package seu

import (
	"testing"

	"repro/internal/board"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/place"
)

// benchCampaign times the fig8bench workload (MULT 12, small geometry,
// 2000 bits) under one kernel — the in-repo twin of cmd/fig8bench's
// workers-1-vector variant, profileable with -cpuprofile/-memprofile.
func benchCampaign(b *testing.B, kernel Kernel) {
	g := device.Small()
	spec, err := designs.ByName("MULT 12")
	if err != nil {
		b.Fatal(err)
	}
	p, err := place.Place(spec.Build(), g)
	if err != nil {
		b.Fatal(err)
	}
	opts := DefaultOptions()
	opts.ClassifyPersistence = false
	opts.Seed = 1
	opts.Workers = 1
	opts.MaxBits = 2000
	opts.Sample = 1
	opts.Kernel = kernel
	bd, err := board.New(p, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Run(bd, opts)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failures != 58 {
			b.Fatalf("failures = %d, want 58", rep.Failures)
		}
	}
}

func BenchmarkFig8Vector(b *testing.B)      { benchCampaign(b, KernelVector) }
func BenchmarkFig8VectorSweep(b *testing.B) { benchCampaign(b, KernelVectorSweep) }
