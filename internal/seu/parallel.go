package seu

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitstream"
	"repro/internal/board"
	"repro/internal/device"
)

// Sharded campaign execution. The bit-address space is cut into contiguous
// chunks; workers pull chunks from a shared cursor, each running the
// injection loop on its own cloned board replica and accumulating into a
// private shardAccum. Because every injection starts from canonical board
// state (board.ResetCampaignState) and samples by per-bit hash, chunk
// scheduling cannot influence any outcome — the merge in chunk order
// reassembles exactly the sequential report.

// chunksPerWorker over-decomposes the address space so a worker stuck in a
// failure-dense chunk doesn't serialize the tail of the campaign.
const chunksPerWorker = 4

// minInjectionsPerWorker is the smallest expected per-worker injection
// count worth a board clone; smaller campaigns run with fewer workers
// than requested.
const minInjectionsPerWorker = 64

// shardAccum accumulates one chunk's share of the report.
type shardAccum struct {
	injections    int64
	failures      int64
	persistent    int64
	triageSkipped int64
	cyclesRun     int64
	cyclesSkipped int64
	simTime       time.Duration
	injByKind     map[device.BitKind]int64
	failByKind    map[device.BitKind]int64
	bits          []BitRecord
}

func newShardAccum() *shardAccum {
	return &shardAccum{
		injByKind:  make(map[device.BitKind]int64),
		failByKind: make(map[device.BitKind]int64),
	}
}

// mergeInto folds one chunk accumulator into the report. Chunks are folded
// in ascending chunk order, and addresses ascend within a chunk, so
// SensitiveBits arrives already sorted by Addr.
func mergeInto(rep *Report, acc *shardAccum) {
	if acc == nil {
		return
	}
	rep.Injections += acc.injections
	rep.Failures += acc.failures
	rep.Persistent += acc.persistent
	rep.TriageSkipped += acc.triageSkipped
	rep.CyclesSimulated += acc.cyclesRun
	rep.CyclesSkipped += acc.cyclesSkipped
	rep.SimulatedTime += acc.simTime
	for k, n := range acc.injByKind {
		rep.InjectionsByKind[k] += n
	}
	for k, n := range acc.failByKind {
		rep.FailuresByKind[k] += n
	}
	rep.SensitiveBits = append(rep.SensitiveBits, acc.bits...)
}

// runRange executes the injection loop over bit addresses [lo, hi) on bd.
// tri is the shared read-only sensitivity triage (nil = disabled); fs is
// bd's dirty-frame tracker, owned by the worker driving bd; vr is the
// worker's vector-kernel batch scheduler and plan the campaign pre-plan
// (both nil on scalar campaigns). Cancellation is checked before every
// injection (and periodically across skipped spans), so a cancelled
// campaign stops with the board between iterations, never mid-repair. A
// pending vector batch always flushes inside the range that enqueued it,
// so chunk results stay a pure function of their spec.
func runRange(ctx context.Context, bd *board.SLAAC1V, golden *bitstream.Memory, lo, hi int64, opts Options, acc *shardAccum, tri *triage, fs *frameScrub, fast bool, vr *vectorRunner, plan *prePlan) error {
	if vr != nil {
		return runPlannedRange(ctx, bd, golden, plan, lo, hi, opts, acc, fs, fast, vr)
	}
	g := bd.Geometry()
	for a := device.BitAddr(lo); int64(a) < hi; a++ {
		// The sampling skip path costs one hash per address; amortize the
		// cancellation check over skipped spans so it stays invisible there.
		if a&0xFFF == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if !selected(opts, a) {
			continue
		}
		info := g.Classify(a)
		acc.injections++
		acc.injByKind[info.Kind]++
		acc.simTime += board.InjectLoopTime
		if opts.FastPadSkip && (info.Kind == device.KindPad || info.Kind == device.KindExtra) {
			continue // provably benign: no decoded behaviour depends on it
		}
		if tri.inert(a) {
			acc.triageSkipped++
			continue // provably outside every observed output's cone
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := injectOne(bd, golden, a, info.Kind, stimulusSeed(opts.Seed, a), opts, acc, fs, fast); err != nil {
			return err
		}
	}
	return nil
}

// runPlannedRange is the vector-kernel image of runRange: instead of
// re-classifying every address, it walks the pre-plan's entries for
// [lo, hi) and dispatches on each entry's precomputed disposition. The
// planner never runs here — classification happened exactly once per
// sampled bit, in buildPrePlan.
func runPlannedRange(ctx context.Context, bd *board.SLAAC1V, golden *bitstream.Memory, plan *prePlan, lo, hi int64, opts Options, acc *shardAccum, fs *frameScrub, fast bool, vr *vectorRunner) error {
	entries := plan.window(lo, hi)
	for i := range entries {
		e := &entries[i]
		// Retired entries (pad/triage/benign) cost no board work; amortize
		// their cancellation checks like the scalar loop does for skips.
		if i&0xFF == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		acc.injections++
		acc.injByKind[e.kind]++
		acc.simTime += board.InjectLoopTime
		switch e.act {
		case planPad, planBenign:
			// Provably benign without board activity.
		case planTriage:
			acc.triageSkipped++
		case planVector:
			if err := ctx.Err(); err != nil {
				return err
			}
			vr.enqueueVector(e)
			if vr.shouldFlush() {
				vr.flush(opts, acc, fast)
			}
		case planCarry:
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := vr.enqueueCarry(bd, golden, e, opts, acc, fs); err != nil {
				return err
			}
			if vr.shouldFlush() {
				vr.flush(opts, acc, fast)
			}
		case planScalar:
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := injectOne(bd, golden, e.addr, e.kind, e.seed, opts, acc, fs, fast); err != nil {
				return err
			}
		}
	}
	vr.flush(opts, acc, fast)
	return nil
}

// runSharded fans the range [0, limit) out over workers cloned boards and
// returns the per-chunk accumulators in chunk order.
func runSharded(ctx context.Context, bd *board.SLAAC1V, golden *bitstream.Memory, limit int64, workers int, opts Options, tri *triage, fast bool, plan *prePlan) ([]*shardAccum, error) {
	chunks := workers * chunksPerWorker
	if int64(chunks) > limit {
		chunks = int(limit)
	}
	if chunks < 1 {
		chunks = 1
	}
	span := (limit + int64(chunks) - 1) / int64(chunks)
	accs := make([]*shardAccum, chunks)
	var (
		cursor int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errCh := make(chan error, workers)
	var tag uint64
	if poolEligible(bd) {
		tag = bd.CampaignFingerprint()
	}
	for w := 0; w < workers; w++ {
		// The clone seed is irrelevant to results (every injection re-seeds
		// the stimulus stream) but must differ per worker for rng hygiene.
		// Replicas parked by earlier campaigns of the same design are
		// reused when their fingerprint matches.
		wb := acquireReplica(bd, tag, opts.Seed+int64(w)+1)
		wb.SetFastSim(scalarKernelEvent(opts))
		wg.Add(1)
		go func(wb *board.SLAAC1V) {
			defer wg.Done()
			// The dirty-frame tracker is per replica: it certifies frames of
			// THIS board's configuration memory, so it must live as long as
			// the replica, not per chunk.
			fs := newFrameScrub(wb.Geometry())
			vr := maybeNewVectorRunner(wb, opts, plan)
			for {
				ci := atomic.AddInt64(&cursor, 1) - 1
				if ci >= int64(chunks) || failed.Load() {
					// Every completed range left wb with a golden substrate;
					// park it for the next campaign of this design.
					releaseReplica(wb, tag, !failed.Load())
					return
				}
				lo := ci * span
				hi := lo + span
				if hi > limit {
					hi = limit
				}
				acc := newShardAccum()
				accs[ci] = acc
				if err := runRange(ctx, wb, golden, lo, hi, opts, acc, tri, fs, fast, vr, plan); err != nil {
					failed.Store(true)
					errCh <- err
					return
				}
			}
		}(wb)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}
	return accs, nil
}
