package seu

import (
	"sync"

	"repro/internal/board"
	"repro/internal/place"
)

// Board replica pooling. Parallel campaigns clone one board replica per
// worker; on repeated campaigns over the same design (the crosscheck
// lattice, chunked re-runs, benchmark variants) those clones are pure
// allocation churn — a replica that finished a campaign cleanly is, after
// the per-injection ResetCampaignState, indistinguishable from a fresh
// clone. The pool parks such replicas keyed by placement and reuses them
// when a later campaign of the same design asks for workers.
//
// Soundness: reuse must never leak state between campaigns, so
//   - entries carry the base board's CampaignFingerprint (configuration +
//     hidden state, user state excluded); a pooled replica is handed out
//     only when its tag matches the requesting base, and mismatches are
//     dropped on the floor — a base with flipped half-latches or an edited
//     bitstream never receives a stale substrate;
//   - replicas are released only after a campaign range completes without
//     error (a cancelled worker may hold a board mid-corruption);
//   - history-coupled designs (SRL16, writable BRAM, stuck overlays)
//     never pool: their configuration memory drifts during simulation, so
//     a "clean completion" does not imply a golden substrate.

var replicaPools sync.Map // map[*place.Placed]*sync.Pool of *pooledReplica

type pooledReplica struct {
	bd  *board.SLAAC1V
	tag uint64
}

// poolEligible reports whether base's replicas may transit the pool at all.
func poolEligible(base *board.SLAAC1V) bool {
	return !base.DUT.HistoryCoupled() && !base.Golden.HistoryCoupled()
}

// acquireReplica returns a worker board for base: a pooled replica whose
// fingerprint matches tag, or a fresh clone. The seed only decorrelates a
// fresh clone's idle rng — results are independent of it.
func acquireReplica(base *board.SLAAC1V, tag uint64, seed int64) *board.SLAAC1V {
	if !poolEligible(base) {
		// Ineligible bases never pool; leave any parked (eligible-era)
		// replicas of this placement for campaigns that can use them.
		poolMisses.Add(1)
		return base.Clone(seed)
	}
	if p, ok := replicaPools.Load(base.Placed); ok {
		pool := p.(*sync.Pool)
		for {
			e, _ := pool.Get().(*pooledReplica)
			if e == nil {
				break
			}
			if e.tag == tag {
				poolHits.Add(1)
				return e.bd
			}
			// Stale substrate from an incompatible campaign state; drop it.
		}
	}
	poolMisses.Add(1)
	return base.Clone(seed)
}

// releaseReplica parks wb for reuse after a cleanly completed campaign
// range. clean=false (errors, cancellation) discards the board.
func releaseReplica(wb *board.SLAAC1V, tag uint64, clean bool) {
	if !clean || !poolEligible(wb) {
		return
	}
	p, _ := replicaPools.LoadOrStore(wb.Placed, &sync.Pool{})
	p.(*sync.Pool).Put(&pooledReplica{bd: wb, tag: tag})
}

// replicaPoolFor exposes pool internals to tests.
func replicaPoolFor(p *place.Placed) *sync.Pool {
	v, _ := replicaPools.Load(p)
	if v == nil {
		return nil
	}
	return v.(*sync.Pool)
}
