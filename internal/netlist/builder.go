package netlist

import "fmt"

// Builder composes a Circuit incrementally. All gate helpers return the
// output signal of the node they create.
type Builder struct {
	c Circuit
}

// NewBuilder starts a new circuit.
func NewBuilder(name string) *Builder {
	return &Builder{c: Circuit{Name: name}}
}

// NewSignal allocates a fresh signal.
func (b *Builder) NewSignal() SignalID {
	s := SignalID(b.c.NumSignals)
	b.c.NumSignals++
	return s
}

// Input declares an input port of the given width and returns its signals.
func (b *Builder) Input(name string, width int) []SignalID {
	bits := make([]SignalID, width)
	for i := range bits {
		bits[i] = b.NewSignal()
	}
	b.c.Inputs = append(b.c.Inputs, Port{Name: name, Bits: bits})
	return bits
}

// Output declares an output port over existing signals.
func (b *Builder) Output(name string, bits []SignalID) {
	cp := make([]SignalID, len(bits))
	copy(cp, bits)
	b.c.Outputs = append(b.c.Outputs, Port{Name: name, Bits: cp})
}

// LUT creates a LUT node with the given truth table (inputs LSB-first).
func (b *Builder) LUT(truth uint16, in ...SignalID) SignalID {
	if len(in) == 0 || len(in) > 4 {
		panic(fmt.Sprintf("netlist: LUT with %d inputs", len(in)))
	}
	out := b.NewSignal()
	cp := make([]SignalID, len(in))
	copy(cp, in)
	b.c.Nodes = append(b.c.Nodes, Node{Kind: NodeLUT, Truth: truth, In: cp, Out: out})
	return out
}

// FF creates a flip-flop with initial value init.
func (b *Builder) FF(d SignalID, init bool) SignalID {
	out := b.NewSignal()
	b.c.Nodes = append(b.c.Nodes, Node{Kind: NodeFF, In: []SignalID{d}, Init: init, Out: out})
	return out
}

// FFCE creates a flip-flop with an explicit routed clock enable.
func (b *Builder) FFCE(d, ce SignalID, init bool) SignalID {
	out := b.NewSignal()
	b.c.Nodes = append(b.c.Nodes, Node{Kind: NodeFF, In: []SignalID{d, ce}, Init: init, HasCE: true, Out: out})
	return out
}

// BindFF creates a flip-flop driving a pre-allocated output signal — the
// idiom for feedback loops (counters, LFSRs): allocate the state signal
// with NewSignal, build logic that reads it, then bind the FF.
func (b *Builder) BindFF(d, out SignalID, init bool) {
	b.c.Nodes = append(b.c.Nodes, Node{Kind: NodeFF, In: []SignalID{d}, Init: init, Out: out})
}

// BindFFCE is BindFF with an explicit routed clock enable.
func (b *Builder) BindFFCE(d, ce, out SignalID, init bool) {
	b.c.Nodes = append(b.c.Nodes, Node{Kind: NodeFF, In: []SignalID{d, ce}, Init: init, HasCE: true, Out: out})
}

// Const creates a constant-value node.
func (b *Builder) Const(v bool) SignalID {
	out := b.NewSignal()
	b.c.Nodes = append(b.c.Nodes, Node{Kind: NodeConst, Init: v, Out: out})
	return out
}

// BindLUT creates a LUT node driving a pre-allocated output signal.
func (b *Builder) BindLUT(truth uint16, in []SignalID, out SignalID) {
	cp := make([]SignalID, len(in))
	copy(cp, in)
	b.c.Nodes = append(b.c.Nodes, Node{Kind: NodeLUT, Truth: truth, In: cp, Out: out})
}

// BindConst creates a constant node driving a pre-allocated output signal.
func (b *Builder) BindConst(v bool, out SignalID) {
	b.c.Nodes = append(b.c.Nodes, Node{Kind: NodeConst, Init: v, Out: out})
}

// Standard truth tables for the gate helpers (inputs LSB-first; unused
// inputs replicate, so tables stay correct for narrower fan-in).
const (
	truthBuf  uint16 = 0xAAAA
	truthNot  uint16 = 0x5555
	truthAnd2 uint16 = 0x8888
	truthOr2  uint16 = 0xEEEE
	truthXor2 uint16 = 0x6666
	truthXor3 uint16 = 0x9696
	truthXor4 uint16 = 0x6996
	truthMaj3 uint16 = 0xE8E8
	truthAnd3 uint16 = 0x8080
	truthAnd4 uint16 = 0x8000
	truthMux2 uint16 = 0xCACA // in2 ? in1 : in0
)

// Buf buffers a signal through a LUT.
func (b *Builder) Buf(a SignalID) SignalID { return b.LUT(truthBuf, a) }

// Not inverts a signal.
func (b *Builder) Not(a SignalID) SignalID { return b.LUT(truthNot, a) }

// And returns a AND c.
func (b *Builder) And(a, c SignalID) SignalID { return b.LUT(truthAnd2, a, c) }

// And3 returns the conjunction of three signals.
func (b *Builder) And3(a, c, d SignalID) SignalID { return b.LUT(truthAnd3, a, c, d) }

// And4 returns the conjunction of four signals.
func (b *Builder) And4(a, c, d, e SignalID) SignalID { return b.LUT(truthAnd4, a, c, d, e) }

// Or returns a OR c.
func (b *Builder) Or(a, c SignalID) SignalID { return b.LUT(truthOr2, a, c) }

// Xor returns a XOR c.
func (b *Builder) Xor(a, c SignalID) SignalID { return b.LUT(truthXor2, a, c) }

// Xor3 returns the XOR of three signals.
func (b *Builder) Xor3(a, c, d SignalID) SignalID { return b.LUT(truthXor3, a, c, d) }

// Xor4 returns the XOR of four signals.
func (b *Builder) Xor4(a, c, d, e SignalID) SignalID { return b.LUT(truthXor4, a, c, d, e) }

// Maj3 returns the 2-of-3 majority (full-adder carry, TMR voter).
func (b *Builder) Maj3(a, c, d SignalID) SignalID { return b.LUT(truthMaj3, a, c, d) }

// Mux2 returns sel ? hi : lo.
func (b *Builder) Mux2(lo, hi, sel SignalID) SignalID { return b.LUT(truthMux2, lo, hi, sel) }

// XorTree reduces any number of signals with a tree of XOR LUTs.
func (b *Builder) XorTree(in []SignalID) SignalID {
	switch len(in) {
	case 0:
		return b.Const(false)
	case 1:
		return in[0]
	}
	var next []SignalID
	i := 0
	for ; i+4 <= len(in); i += 4 {
		next = append(next, b.Xor4(in[i], in[i+1], in[i+2], in[i+3]))
	}
	switch len(in) - i {
	case 3:
		next = append(next, b.Xor3(in[i], in[i+1], in[i+2]))
	case 2:
		next = append(next, b.Xor(in[i], in[i+1]))
	case 1:
		next = append(next, in[i])
	}
	return b.XorTree(next)
}

// Build finalizes and validates the circuit.
func (b *Builder) Build() (*Circuit, error) {
	c := b.c
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// MustBuild finalizes the circuit, panicking on validation failure; intended
// for the static benchmark generators whose structure is fixed.
func (b *Builder) MustBuild() *Circuit {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}
