// Package netlist defines the technology-mapped circuit representation used
// by the benchmark design generators: a flat graph of 4-input LUTs and
// flip-flops connected by single-driver signals. The placement/routing flow
// (internal/place) maps a Circuit onto the device model, producing the
// configuration bitstream the SEU studies corrupt.
package netlist

import (
	"fmt"
)

// SignalID names one net inside a circuit. Signals are dense, starting at 0.
type SignalID int32

// Invalid is the null signal.
const Invalid SignalID = -1

// NodeKind classifies circuit nodes.
type NodeKind uint8

const (
	// NodeLUT is a combinational 4-input lookup table.
	NodeLUT NodeKind = iota
	// NodeFF is a D flip-flop, optionally with a clock enable.
	NodeFF
	// NodeConst produces a constant value.
	NodeConst
)

func (k NodeKind) String() string {
	switch k {
	case NodeLUT:
		return "lut"
	case NodeFF:
		return "ff"
	case NodeConst:
		return "const"
	}
	return "unknown"
}

// Node is one circuit element.
type Node struct {
	Kind  NodeKind
	Truth uint16     // LUT truth table (inputs indexed LSB-first)
	In    []SignalID // LUT: 1..4 inputs; FF: D (and CE when HasCE)
	Init  bool       // FF initial value, or the constant's value
	HasCE bool       // FF has an explicit routed clock enable
	Out   SignalID
}

// Port is a named bundle of signals at the circuit boundary.
type Port struct {
	Name string
	Bits []SignalID
}

// Width returns the number of bits in the port.
func (p Port) Width() int { return len(p.Bits) }

// Circuit is a complete technology-mapped design.
type Circuit struct {
	Name       string
	Nodes      []Node
	Inputs     []Port
	Outputs    []Port
	NumSignals int
}

// Stats summarizes a circuit.
type Stats struct {
	LUTs, FFs, Consts     int
	InputBits, OutputBits int
	Signals               int
	LogicDepth            int // longest combinational LUT chain
	FFsWithoutCE          int // candidates for half-latch clock enables
}

func (s Stats) String() string {
	return fmt.Sprintf("%d LUTs, %d FFs (%d CE-less), %d consts, %d in, %d out, depth %d",
		s.LUTs, s.FFs, s.FFsWithoutCE, s.Consts, s.InputBits, s.OutputBits, s.LogicDepth)
}

// DriverOf returns, for each signal, the index of its driving node, or -1
// when the signal is a circuit input (or undriven).
func (c *Circuit) DriverOf() []int {
	d := make([]int, c.NumSignals)
	for i := range d {
		d[i] = -1
	}
	for i, n := range c.Nodes {
		if n.Out >= 0 {
			d[n.Out] = i
		}
	}
	return d
}

// inputSet returns a bitmap of signals driven by input ports.
func (c *Circuit) inputSet() []bool {
	in := make([]bool, c.NumSignals)
	for _, p := range c.Inputs {
		for _, s := range p.Bits {
			in[s] = true
		}
	}
	return in
}

// Validate checks structural invariants: every signal has exactly one
// driver (node or input port), node pin counts are legal, ports reference
// valid signals, and the combinational LUT graph is acyclic.
func (c *Circuit) Validate() error {
	if c.NumSignals < 0 {
		return fmt.Errorf("netlist %q: negative signal count", c.Name)
	}
	drivers := make([]int, c.NumSignals) // count of drivers per signal
	for _, p := range c.Inputs {
		for _, s := range p.Bits {
			if s < 0 || int(s) >= c.NumSignals {
				return fmt.Errorf("netlist %q: input port %q references signal %d out of range", c.Name, p.Name, s)
			}
			drivers[s]++
		}
	}
	for i, n := range c.Nodes {
		if n.Out < 0 || int(n.Out) >= c.NumSignals {
			return fmt.Errorf("netlist %q: node %d output %d out of range", c.Name, i, n.Out)
		}
		drivers[n.Out]++
		switch n.Kind {
		case NodeLUT:
			if len(n.In) < 1 || len(n.In) > 4 {
				return fmt.Errorf("netlist %q: LUT %d has %d inputs", c.Name, i, len(n.In))
			}
		case NodeFF:
			want := 1
			if n.HasCE {
				want = 2
			}
			if len(n.In) != want {
				return fmt.Errorf("netlist %q: FF %d has %d inputs, want %d", c.Name, i, len(n.In), want)
			}
		case NodeConst:
			if len(n.In) != 0 {
				return fmt.Errorf("netlist %q: const %d has inputs", c.Name, i)
			}
		default:
			return fmt.Errorf("netlist %q: node %d has unknown kind", c.Name, i)
		}
		for _, s := range n.In {
			if s < 0 || int(s) >= c.NumSignals {
				return fmt.Errorf("netlist %q: node %d input %d out of range", c.Name, i, s)
			}
		}
	}
	for s, d := range drivers {
		if d == 0 {
			return fmt.Errorf("netlist %q: signal %d has no driver", c.Name, s)
		}
		if d > 1 {
			return fmt.Errorf("netlist %q: signal %d has %d drivers", c.Name, s, d)
		}
	}
	for _, p := range c.Outputs {
		for _, s := range p.Bits {
			if s < 0 || int(s) >= c.NumSignals {
				return fmt.Errorf("netlist %q: output port %q references signal %d out of range", c.Name, p.Name, s)
			}
		}
	}
	if _, err := c.topoLUTs(); err != nil {
		return err
	}
	return nil
}

// topoLUTs returns LUT node indices in topological order over the
// combinational graph (FF and const outputs are cut points), or an error if
// a combinational cycle exists.
func (c *Circuit) topoLUTs() ([]int, error) {
	driver := c.DriverOf()
	indeg := make(map[int]int)
	adj := make(map[int][]int)
	var luts []int
	for i, n := range c.Nodes {
		if n.Kind != NodeLUT {
			continue
		}
		luts = append(luts, i)
		for _, s := range n.In {
			d := driver[s]
			if d >= 0 && c.Nodes[d].Kind == NodeLUT {
				adj[d] = append(adj[d], i)
				indeg[i]++
			}
		}
	}
	var queue, order []int
	for _, i := range luts {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != len(luts) {
		return nil, fmt.Errorf("netlist %q: combinational cycle detected", c.Name)
	}
	return order, nil
}

// Stats computes circuit statistics.
func (c *Circuit) Stats() Stats {
	var st Stats
	st.Signals = c.NumSignals
	for _, n := range c.Nodes {
		switch n.Kind {
		case NodeLUT:
			st.LUTs++
		case NodeFF:
			st.FFs++
			if !n.HasCE {
				st.FFsWithoutCE++
			}
		case NodeConst:
			st.Consts++
		}
	}
	for _, p := range c.Inputs {
		st.InputBits += p.Width()
	}
	for _, p := range c.Outputs {
		st.OutputBits += p.Width()
	}
	st.LogicDepth = c.logicDepth()
	return st
}

func (c *Circuit) logicDepth() int {
	order, err := c.topoLUTs()
	if err != nil {
		return -1
	}
	driver := c.DriverOf()
	depth := make(map[int]int)
	max := 0
	for _, i := range order {
		d := 1
		for _, s := range c.Nodes[i].In {
			dr := driver[s]
			if dr >= 0 && c.Nodes[dr].Kind == NodeLUT {
				if depth[dr]+1 > d {
					d = depth[dr] + 1
				}
			}
		}
		depth[i] = d
		if d > max {
			max = d
		}
	}
	return max
}

// FindInput returns the named input port.
func (c *Circuit) FindInput(name string) (Port, bool) {
	for _, p := range c.Inputs {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// FindOutput returns the named output port.
func (c *Circuit) FindOutput(name string) (Port, bool) {
	for _, p := range c.Outputs {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}
