package netlist

// SelfChecking implements the readback-free alternative the paper
// attributes to Ray Andraka (§IV-A, ref [15]): rather than scanning the
// bitstream, the design itself carries "built-in self-test techniques to
// periodically validate that the circuit is still functioning correctly. In
// this case, if an error is found, the test circuitry signals the
// configuration control circuitry that a configuration error exists and
// that a full reconfiguration is needed."
//
// The wrapper duplicates the circuit, compares the copies' outputs every
// clock, and accumulates any disagreement into a sticky error flip-flop
// exposed as the ERR output — the signal the flight system's 4096-point FFT
// used instead of readback.

// SelfChecking returns a duplicated-and-compared version of c: the original
// outputs remain (taken from copy A) and a 1-bit "ERR" output port goes —
// and stays — high as soon as the copies ever disagree.
func SelfChecking(c *Circuit) (*Circuit, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	b := NewBuilder(c.Name + " self-check")
	single := make(map[SignalID][2]SignalID, c.NumSignals)
	for _, p := range c.Inputs {
		bits := b.Input(p.Name, p.Width())
		for i, orig := range p.Bits {
			single[orig] = [2]SignalID{bits[i], bits[i]}
		}
	}
	for _, n := range c.Nodes {
		single[n.Out] = [2]SignalID{b.NewSignal(), b.NewSignal()}
	}
	for _, n := range c.Nodes {
		for k := 0; k < 2; k++ {
			out := single[n.Out][k]
			switch n.Kind {
			case NodeLUT:
				ins := make([]SignalID, len(n.In))
				for j, s := range n.In {
					ins[j] = single[s][k]
				}
				b.BindLUT(n.Truth, ins, out)
			case NodeFF:
				if n.HasCE {
					b.BindFFCE(single[n.In[0]][k], single[n.In[1]][k], out, n.Init)
				} else {
					b.BindFF(single[n.In[0]][k], out, n.Init)
				}
			case NodeConst:
				b.BindConst(n.Init, out)
			}
		}
	}
	// Compare every output bit of the two copies; OR the miscompares and
	// latch them into a sticky error FF: err' = err OR anyMismatch.
	var mismatches []SignalID
	for _, p := range c.Outputs {
		outs := make([]SignalID, p.Width())
		for i, s := range p.Bits {
			pair := single[s]
			outs[i] = pair[0]
			mismatches = append(mismatches, b.Xor(pair[0], pair[1]))
		}
		b.Output(p.Name, outs)
	}
	any := orReduce(b, mismatches)
	errQ := b.NewSignal()
	b.BindFF(b.Or(errQ, any), errQ, false)
	b.Output("ERR", []SignalID{errQ})
	return b.Build()
}

// orReduce builds an OR tree (local helper; synth.OrReduce would create an
// import cycle).
func orReduce(b *Builder, in []SignalID) SignalID {
	switch len(in) {
	case 0:
		return b.Const(false)
	case 1:
		return in[0]
	}
	var next []SignalID
	i := 0
	for ; i+2 <= len(in); i += 2 {
		next = append(next, b.Or(in[i], in[i+1]))
	}
	if i < len(in) {
		next = append(next, in[i])
	}
	return orReduce(b, next)
}
