package netlist

import (
	"testing"
)

func TestBuilderBasicGates(t *testing.T) {
	b := NewBuilder("gates")
	in := b.Input("in", 2)
	b.Output("and", []SignalID{b.And(in[0], in[1])})
	b.Output("or", []SignalID{b.Or(in[0], in[1])})
	b.Output("xor", []SignalID{b.Xor(in[0], in[1])})
	b.Output("not", []SignalID{b.Not(in[0])})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 4; v++ {
		if err := s.SetInput("in", v); err != nil {
			t.Fatal(err)
		}
		a, bb := v&1, (v>>1)&1
		checks := map[string]uint64{
			"and": a & bb, "or": a | bb, "xor": a ^ bb, "not": 1 - a,
		}
		for name, want := range checks {
			got, err := s.Output(name)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("in=%d: %s = %d, want %d", v, name, got, want)
			}
		}
	}
}

func TestThreeAndFourInputGates(t *testing.T) {
	b := NewBuilder("wide")
	in := b.Input("in", 4)
	b.Output("xor3", []SignalID{b.Xor3(in[0], in[1], in[2])})
	b.Output("xor4", []SignalID{b.Xor4(in[0], in[1], in[2], in[3])})
	b.Output("maj", []SignalID{b.Maj3(in[0], in[1], in[2])})
	b.Output("and3", []SignalID{b.And3(in[0], in[1], in[2])})
	b.Output("and4", []SignalID{b.And4(in[0], in[1], in[2], in[3])})
	b.Output("mux", []SignalID{b.Mux2(in[0], in[1], in[2])})
	s, err := NewSimulator(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 16; v++ {
		if err := s.SetInput("in", v); err != nil {
			t.Fatal(err)
		}
		bit := func(i uint) uint64 { return (v >> i) & 1 }
		pop3 := bit(0) + bit(1) + bit(2)
		want := map[string]uint64{
			"xor3": pop3 & 1,
			"xor4": (pop3 + bit(3)) & 1,
			"maj":  boolTo(pop3 >= 2),
			"and3": boolTo(pop3 == 3),
			"and4": boolTo(pop3+bit(3) == 4),
			"mux":  map[uint64]uint64{0: bit(0), 1: bit(1)}[bit(2)],
		}
		for name, w := range want {
			got, _ := s.Output(name)
			if got != w {
				t.Errorf("in=%04b: %s = %d, want %d", v, name, got, w)
			}
		}
	}
}

func boolTo(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func TestFFPipelineAndInit(t *testing.T) {
	b := NewBuilder("pipe")
	in := b.Input("d", 1)
	s1 := b.FF(in[0], false)
	s2 := b.FF(s1, true)
	b.Output("q", []SignalID{s2})
	sim, err := NewSimulator(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	q, _ := sim.Output("q")
	if q != 1 {
		t.Fatal("init value not loaded")
	}
	sim.SetInput("d", 1)
	sim.Step()
	if q, _ = sim.Output("q"); q != 0 {
		t.Fatal("pipeline advanced too fast")
	}
	sim.Step()
	if q, _ = sim.Output("q"); q != 1 {
		t.Fatal("value did not arrive after 2 cycles")
	}
	sim.Reset()
	if q, _ = sim.Output("q"); q != 1 {
		t.Fatal("Reset did not restore init")
	}
}

func TestFFCEGating(t *testing.T) {
	b := NewBuilder("ce")
	in := b.Input("d", 1)
	ce := b.Input("ce", 1)
	q := b.FFCE(in[0], ce[0], false)
	b.Output("q", []SignalID{q})
	sim, err := NewSimulator(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	sim.SetInput("d", 1)
	sim.SetInput("ce", 0)
	sim.StepN(3)
	if v, _ := sim.Output("q"); v != 0 {
		t.Fatal("FF loaded with CE low")
	}
	sim.SetInput("ce", 1)
	sim.Step()
	if v, _ := sim.Output("q"); v != 1 {
		t.Fatal("FF did not load with CE high")
	}
}

func TestBindFFFeedback(t *testing.T) {
	b := NewBuilder("toggle")
	q := b.NewSignal()
	d := b.Not(q)
	b.BindFF(d, q, false)
	b.Output("q", []SignalID{q})
	sim, err := NewSimulator(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(0)
	for i := 0; i < 6; i++ {
		if v, _ := sim.Output("q"); v != want {
			t.Fatalf("cycle %d: q = %d, want %d", i, v, want)
		}
		sim.Step()
		want ^= 1
	}
}

func TestXorTreeParity(t *testing.T) {
	for _, width := range []int{1, 2, 3, 4, 5, 7, 9, 16, 20} {
		b := NewBuilder("parity")
		in := b.Input("in", width)
		b.Output("p", []SignalID{b.XorTree(in)})
		sim, err := NewSimulator(b.MustBuild())
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for _, v := range []uint64{0, 1, 3, 0xFF, 0xAAAA, 0xFFFFF} {
			v &= (1 << uint(width)) - 1
			sim.SetInput("in", v)
			want := uint64(popcount(v) & 1)
			if got, _ := sim.Output("p"); got != want {
				t.Errorf("width %d, in %x: parity %d, want %d", width, v, got, want)
			}
		}
	}
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func TestValidateCatchesErrors(t *testing.T) {
	// Undriven signal.
	b := NewBuilder("bad1")
	s := b.NewSignal()
	b.Output("o", []SignalID{s})
	if _, err := b.Build(); err == nil {
		t.Error("undriven signal accepted")
	}

	// Double driver.
	b = NewBuilder("bad2")
	in := b.Input("i", 1)
	x := b.Buf(in[0])
	b.BindFF(in[0], x, false) // drives x again
	if _, err := b.Build(); err == nil {
		t.Error("double-driven signal accepted")
	}

	// Combinational cycle.
	b = NewBuilder("bad3")
	a := b.NewSignal()
	c := b.LUT(0x5555, a)
	b.c.Nodes = append(b.c.Nodes, Node{Kind: NodeLUT, Truth: 0x5555, In: []SignalID{c}, Out: a})
	if _, err := b.Build(); err == nil {
		t.Error("combinational cycle accepted")
	}

	// Out-of-range port signal.
	bad := &Circuit{Name: "bad4", NumSignals: 1, Inputs: []Port{{Name: "i", Bits: []SignalID{5}}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range input signal accepted")
	}
}

func TestStats(t *testing.T) {
	b := NewBuilder("stats")
	in := b.Input("in", 2)
	x := b.Xor(in[0], in[1])
	y := b.And(x, in[0])
	q := b.FF(y, false)
	ce := b.Const(true)
	q2 := b.FFCE(q, ce, false)
	b.Output("o", []SignalID{q2})
	c := b.MustBuild()
	st := c.Stats()
	if st.LUTs != 2 || st.FFs != 2 || st.Consts != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.FFsWithoutCE != 1 {
		t.Errorf("FFsWithoutCE = %d, want 1", st.FFsWithoutCE)
	}
	if st.LogicDepth != 2 {
		t.Errorf("depth = %d, want 2", st.LogicDepth)
	}
	if st.String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestFindPorts(t *testing.T) {
	b := NewBuilder("ports")
	in := b.Input("a", 3)
	b.Output("z", in)
	c := b.MustBuild()
	if p, ok := c.FindInput("a"); !ok || p.Width() != 3 {
		t.Error("FindInput failed")
	}
	if _, ok := c.FindInput("nope"); ok {
		t.Error("FindInput found a ghost")
	}
	if p, ok := c.FindOutput("z"); !ok || p.Width() != 3 {
		t.Error("FindOutput failed")
	}
	if _, ok := c.FindOutput("nope"); ok {
		t.Error("FindOutput found a ghost")
	}
}

func TestSimulatorErrors(t *testing.T) {
	b := NewBuilder("errs")
	in := b.Input("i", 2)
	b.Output("o", in)
	sim, err := NewSimulator(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetInput("ghost", 0); err == nil {
		t.Error("SetInput on ghost port succeeded")
	}
	if err := sim.SetInputBits("i", []bool{true}); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := sim.Output("ghost"); err == nil {
		t.Error("Output on ghost port succeeded")
	}
	if _, err := sim.OutputBits("ghost"); err == nil {
		t.Error("OutputBits on ghost port succeeded")
	}
	if err := sim.SetInputBits("i", []bool{true, false}); err != nil {
		t.Error(err)
	}
	bits, err := sim.OutputBits("o")
	if err != nil || len(bits) != 2 || !bits[0] || bits[1] {
		t.Errorf("OutputBits = %v, %v", bits, err)
	}
}

func TestSelfCheckingDetectsDivergence(t *testing.T) {
	// Base design: a registered XOR.
	b := NewBuilder("base")
	in := b.Input("in", 2)
	q := b.FF(b.Xor(in[0], in[1]), false)
	b.Output("o", []SignalID{q})
	c := b.MustBuild()

	sc, err := SelfChecking(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sc.FindOutput("ERR"); !ok {
		t.Fatal("no ERR output")
	}
	sim, err := NewSimulator(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy run: outputs match the base design, ERR stays low.
	ref, _ := NewSimulator(c)
	for i := 0; i < 30; i++ {
		v := uint64(i % 4)
		sim.SetInput("in", v)
		ref.SetInput("in", v)
		sim.Step()
		ref.Step()
		got, _ := sim.Output("o")
		want, _ := ref.Output("o")
		if got != want {
			t.Fatalf("cycle %d: self-checking wrapper changed behaviour", i)
		}
		if e, _ := sim.Output("ERR"); e != 0 {
			t.Fatalf("cycle %d: false alarm", i)
		}
	}
	// Break one copy's state: ERR latches and STAYS latched even after the
	// copies re-converge (sticky), which is what triggers the full
	// reconfiguration request.
	for i, n := range sc.Nodes {
		if n.Kind == NodeFF {
			// Flip this FF by poking its output signal via a one-step
			// simulation trick: rebuild sim state directly.
			_ = i
			break
		}
	}
	// Easier: drive inputs so copies agree, then corrupt via direct signal
	// poke is not exposed; instead verify stickiness structurally: the ERR
	// FF's D is OR(err, anyMismatch) — find it.
	errPort, _ := sc.FindOutput("ERR")
	drv := sc.DriverOf()
	errFF := drv[errPort.Bits[0]]
	if errFF < 0 || sc.Nodes[errFF].Kind != NodeFF {
		t.Fatal("ERR not driven by a flip-flop")
	}
	dDrv := drv[sc.Nodes[errFF].In[0]]
	if dDrv < 0 || sc.Nodes[dDrv].Kind != NodeLUT {
		t.Fatal("ERR FF not fed by the sticky OR")
	}
}
