package netlist

import "fmt"

// Simulator evaluates a Circuit at the logical level. It serves as the
// golden reference the placed-and-routed bitstream is verified against:
// after placement, the FPGA-level simulation must match this one
// cycle-for-cycle on every output port.
type Simulator struct {
	c      *Circuit
	driver []int
	order  []int // topological LUT order
	val    []bool
	ffNext map[int]bool
}

// NewSimulator prepares a simulator; the circuit must validate.
func NewSimulator(c *Circuit) (*Simulator, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	order, err := c.topoLUTs()
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		c:      c,
		driver: c.DriverOf(),
		order:  order,
		val:    make([]bool, c.NumSignals),
		ffNext: make(map[int]bool),
	}
	s.Reset()
	return s, nil
}

// Reset loads FF init values and constants, then settles.
func (s *Simulator) Reset() {
	for _, n := range s.c.Nodes {
		switch n.Kind {
		case NodeFF, NodeConst:
			s.val[n.Out] = n.Init
		}
	}
	s.settle()
}

// SetInput drives input port name with the low bits of v (LSB-first) and
// re-settles combinational logic.
func (s *Simulator) SetInput(name string, v uint64) error {
	p, ok := s.c.FindInput(name)
	if !ok {
		return fmt.Errorf("netlist: no input port %q", name)
	}
	for i, sig := range p.Bits {
		s.val[sig] = v&(1<<uint(i)) != 0
	}
	s.settle()
	return nil
}

// SetInputBits drives an input port bit by bit.
func (s *Simulator) SetInputBits(name string, bits []bool) error {
	p, ok := s.c.FindInput(name)
	if !ok {
		return fmt.Errorf("netlist: no input port %q", name)
	}
	if len(bits) != p.Width() {
		return fmt.Errorf("netlist: port %q width %d, got %d bits", name, p.Width(), len(bits))
	}
	for i, sig := range p.Bits {
		s.val[sig] = bits[i]
	}
	s.settle()
	return nil
}

// settle evaluates LUTs in topological order (single pass suffices).
func (s *Simulator) settle() {
	for _, i := range s.order {
		n := &s.c.Nodes[i]
		idx := 0
		for k, in := range n.In {
			if s.val[in] {
				idx |= 1 << uint(k)
			}
		}
		s.val[n.Out] = n.Truth&(1<<uint(idx)) != 0
	}
}

// Step advances one clock cycle.
func (s *Simulator) Step() {
	for i := range s.c.Nodes {
		n := &s.c.Nodes[i]
		if n.Kind != NodeFF {
			continue
		}
		if n.HasCE && !s.val[n.In[1]] {
			s.ffNext[i] = s.val[n.Out]
		} else {
			s.ffNext[i] = s.val[n.In[0]]
		}
	}
	for i, v := range s.ffNext {
		s.val[s.c.Nodes[i].Out] = v
	}
	s.settle()
}

// StepN advances n cycles.
func (s *Simulator) StepN(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Output returns output port name packed LSB-first into a uint64 (ports
// wider than 64 bits are truncated; use OutputBits for full width).
func (s *Simulator) Output(name string) (uint64, error) {
	p, ok := s.c.FindOutput(name)
	if !ok {
		return 0, fmt.Errorf("netlist: no output port %q", name)
	}
	var v uint64
	for i, sig := range p.Bits {
		if i >= 64 {
			break
		}
		if s.val[sig] {
			v |= 1 << uint(i)
		}
	}
	return v, nil
}

// OutputBits returns output port name as a bool slice.
func (s *Simulator) OutputBits(name string) ([]bool, error) {
	p, ok := s.c.FindOutput(name)
	if !ok {
		return nil, fmt.Errorf("netlist: no output port %q", name)
	}
	out := make([]bool, p.Width())
	for i, sig := range p.Bits {
		out[i] = s.val[sig]
	}
	return out, nil
}

// Signal returns the current value of a signal (diagnostics).
func (s *Simulator) Signal(id SignalID) bool { return s.val[id] }
