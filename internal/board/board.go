// Package board models the SLAAC-1V PCI testbed the paper's SEU simulator
// runs on: two identical FPGAs (X1 = golden, X2 = device under test)
// executing the same design from the same stimulus, a comparator (X0 on the
// real board) checking their outputs on every clock, and a dedicated
// configuration controller providing high-speed partial reconfiguration and
// readback of the DUT.
package board

import (
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/fpga"
	"repro/internal/place"
)

// Timing constants from the paper's testbed description.
const (
	// BitInjectTime: "a single bit can be modified and loaded in 100 us"
	// over SLAAC-1V's PCI configuration mode.
	BitInjectTime = 100 * time.Microsecond
	// InjectLoopTime: one full corrupt/observe/repair iteration of the
	// simulator loop takes 214 us.
	InjectLoopTime = 214 * time.Microsecond
	// AcceleratorLoopTime: one iteration of the accelerator test loop
	// (Fig. 12) takes about 430 us.
	AcceleratorLoopTime = 430 * time.Microsecond
	// ClockRate is the design clock used during testing ("up to 20 MHz").
	ClockRate = 20_000_000
)

// SLAAC1V is the two-FPGA lock-step harness.
type SLAAC1V struct {
	Placed *place.Placed
	Golden *fpga.FPGA // X1
	DUT    *fpga.FPGA // X2
	// Port is the configuration controller attached to the DUT (the
	// XCV100 on the real board).
	Port *fpga.Port

	rng     *stim
	inPins  []int
	outNets []int
	cycle   int64
	// mismatch is the scratch buffer MismatchBits reuses between calls, so
	// the per-clock comparator stays allocation-free on the hot path.
	mismatch []int
	// lock caches per-frame configuration-compare verdicts for Locked (see
	// lockstep.go).
	lock lockTracker
}

// SetFastSim switches both devices between the activity-driven settling
// kernel and the full-sweep kernel (the -fastsim escape hatch). Both
// devices always run the same kernel so their sweep-bounded trajectories
// stay comparable.
func (b *SLAAC1V) SetFastSim(on bool) {
	b.Golden.SetEventDriven(on)
	b.DUT.SetEventDriven(on)
}

// New builds the testbed: both devices are fully configured with the placed
// design and a seeded stimulus source is attached.
func New(p *place.Placed, seed int64) (*SLAAC1V, error) {
	golden := fpga.New(p.Geom)
	dut := fpga.New(p.Geom)
	bs := p.Bitstream()
	if err := golden.FullConfigure(bs); err != nil {
		return nil, fmt.Errorf("board: configuring golden: %w", err)
	}
	if err := dut.FullConfigure(bs); err != nil {
		return nil, fmt.Errorf("board: configuring DUT: %w", err)
	}
	b := &SLAAC1V{
		Placed: p,
		Golden: golden,
		DUT:    dut,
		Port:   fpga.NewPort(dut),
		rng:    newStim(seed),
	}
	for _, port := range p.Circuit.Inputs {
		for _, pin := range p.InputPins[port.Name] {
			if pin >= 0 {
				b.inPins = append(b.inPins, pin)
			}
		}
	}
	for _, port := range p.Circuit.Outputs {
		for _, ref := range p.OutputNets[port.Name] {
			b.outNets = append(b.outNets, p.Geom.NetID(ref))
		}
	}
	return b, nil
}

// Clone returns an independent replica of the testbed: golden and DUT
// devices are deep-copied (configuration memory, decoded state, hidden
// half-latch state), a fresh configuration port attaches to the cloned
// DUT, and a new stimulus source is seeded with seed. The immutable
// placement and pin/net tables are shared. Cloning skips place-and-route
// and full configuration entirely, which is what makes per-worker board
// replicas affordable in parallel injection campaigns.
func (b *SLAAC1V) Clone(seed int64) *SLAAC1V {
	n := &SLAAC1V{
		Placed:  b.Placed,
		Golden:  b.Golden.Clone(),
		DUT:     b.DUT.Clone(),
		rng:     newStim(seed),
		inPins:  b.inPins,
		outNets: b.outNets,
		cycle:   b.cycle,
	}
	n.Port = fpga.NewPort(n.DUT)
	return n
}

// ResetCampaignState puts the pair into a canonical lock-step state that
// depends only on the loaded configuration: the stimulus source is
// re-seeded, every input pin is driven low, and user state in both devices
// is reset. The SEU campaign calls this before every injection so each
// injection's outcome is a pure function of (bitstream, bit address,
// options) — the property that makes sharded campaigns byte-identical to
// sequential ones regardless of worker count.
func (b *SLAAC1V) ResetCampaignState(seed int64) {
	b.rng.Seed(seed)
	for _, pin := range b.inPins {
		b.Golden.SetPin(pin, false)
		b.DUT.SetPin(pin, false)
	}
	b.Golden.Reset()
	b.DUT.Reset()
}

// Cycle returns the number of comparison clocks executed.
func (b *SLAAC1V) Cycle() int64 { return b.cycle }

// CampaignFingerprint digests everything that makes this board a specific
// campaign substrate: both devices' configuration memory and hidden state
// (half-latches, stuck overlays). User state is excluded — every injection
// resets it — so replicas parked after a completed campaign fingerprint
// identically to fresh clones of the same base, which is what lets the
// replica pool reuse them across campaigns of the same design.
func (b *SLAAC1V) CampaignFingerprint() uint64 {
	g := b.Golden.ConfigHiddenHash()
	d := b.DUT.ConfigHiddenHash()
	return g ^ d*0x9E3779B97F4A7C15
}

// OutputNetIDs returns the dense net IDs the X0 comparator watches, in
// comparator order. The returned slice is a copy.
func (b *SLAAC1V) OutputNetIDs() []int {
	return append([]int(nil), b.outNets...)
}

// OutputWidth returns the number of compared output bits.
func (b *SLAAC1V) OutputWidth() int { return len(b.outNets) }

// Step drives one clock of fresh random stimulus into both devices and
// compares every design output, returning true when they match (the X0
// comparator's per-clock verdict).
func (b *SLAAC1V) Step() bool {
	// One 63-bit draw covers up to 63 pins; designs rarely need more than
	// one, so stimulus costs one RNG call per clock instead of one per pin.
	for base := 0; base < len(b.inPins); base += 63 {
		end := base + 63
		if end > len(b.inPins) {
			end = len(b.inPins)
		}
		bits := b.rng.Int63()
		for _, pin := range b.inPins[base:end] {
			v := bits&1 == 1
			bits >>= 1
			b.Golden.SetPin(pin, v)
			b.DUT.SetPin(pin, v)
		}
	}
	b.Golden.Step()
	b.DUT.Step()
	b.cycle++
	return b.Match()
}

// Match compares the settled outputs of both devices.
func (b *SLAAC1V) Match() bool {
	for _, id := range b.outNets {
		if b.Golden.NetValue(id) != b.DUT.NetValue(id) {
			return false
		}
	}
	return true
}

// StepN steps n clocks and returns the number of mismatching clocks and the
// first mismatching cycle index (-1 if none).
func (b *SLAAC1V) StepN(n int) (mismatches int, first int64) {
	first = -1
	for i := 0; i < n; i++ {
		if !b.Step() {
			mismatches++
			if first < 0 {
				first = b.cycle
			}
		}
	}
	return mismatches, first
}

// RunUntilMismatch steps at most n clocks, stopping early at the first
// mismatch; it reports whether a mismatch occurred.
func (b *SLAAC1V) RunUntilMismatch(n int) bool {
	for i := 0; i < n; i++ {
		if !b.Step() {
			return true
		}
	}
	return false
}

// ResetBoth resets user state in both devices (the "reset designs" step of
// Figs. 8 and 12). Configuration memory and half-latches are untouched.
func (b *SLAAC1V) ResetBoth() {
	b.Golden.Reset()
	b.DUT.Reset()
}

// StateEqual reports whether golden and DUT are fully state-identical —
// configuration memory plus all user and hidden state — the condition from
// which identical stimulus provably yields identical trajectories forever.
// Conformance harnesses use it to assert that repair genuinely restored the
// DUT rather than merely re-matching the observed outputs.
func (b *SLAAC1V) StateEqual() bool {
	return fpga.StateEqual(b.Golden, b.DUT)
}

// Geometry returns the device geometry.
func (b *SLAAC1V) Geometry() device.Geometry { return b.Placed.Geom }

// Outputs packs the first 64 compared output bits of the golden device and
// the DUT (LSB-first), for trace-style experiments like the paper's Fig. 7.
func (b *SLAAC1V) Outputs() (golden, dut uint64) {
	for i, id := range b.outNets {
		if i >= 64 {
			break
		}
		if b.Golden.NetValue(id) {
			golden |= 1 << uint(i)
		}
		if b.DUT.NetValue(id) {
			dut |= 1 << uint(i)
		}
	}
	return golden, dut
}

// MismatchBits returns the indices (into the flattened compared-output
// vector) currently disagreeing between golden and DUT — the raw material
// of the paper's bit-to-output correlation table (§III-A). The returned
// slice is a scratch buffer owned by the board and is overwritten by the
// next call; callers that retain it must copy.
func (b *SLAAC1V) MismatchBits() []int {
	out := b.mismatch[:0]
	for i, id := range b.outNets {
		if b.Golden.NetValue(id) != b.DUT.NetValue(id) {
			out = append(out, i)
		}
	}
	b.mismatch = out
	return out
}
