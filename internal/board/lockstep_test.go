package board

import (
	"testing"

	"repro/internal/device"
)

// TestLockedTracksInjectionAndRepair walks the lock detector through the
// campaign life cycle: locked after configuration, unlocked the moment a
// configuration bit is injected, locked again once the bit is repaired and
// user state has drained back into lock-step.
func TestLockedTracksInjectionAndRepair(t *testing.T) {
	bd := testbed(t)
	if !bd.Locked() {
		t.Fatal("freshly configured pair must be locked")
	}
	for i := 0; i < 20; i++ {
		bd.Step()
		if !bd.Locked() {
			t.Fatalf("identical-stimulus pair unlocked at cycle %d", i)
		}
	}

	// Find a bit whose injection visibly unlocks the pair: flip, check,
	// repair, until one diverges the configuration. Any bit must at least
	// unlock the config comparison.
	g := bd.Geometry()
	golden := bd.Golden.ConfigMemory()
	a := device.BitAddr(3 * int64(g.FrameLength())) // a frame well inside the CLB region
	bd.DUT.InjectBit(a)
	if bd.Locked() {
		t.Fatal("pair must unlock when DUT configuration diverges")
	}

	// Repair through the configuration port and reset user state: the pair
	// must re-lock.
	frame := a.Frame(g)
	if err := bd.Port.WriteFrame(golden.Frame(frame)); err != nil {
		t.Fatal(err)
	}
	bd.ResetBoth()
	if !bd.Locked() {
		t.Fatal("repaired and reset pair must re-lock")
	}
	for i := 0; i < 10; i++ {
		if !bd.Step() {
			t.Fatal("repaired pair mismatched")
		}
	}
	if !bd.Locked() {
		t.Fatal("repaired pair must stay locked")
	}
}

// TestLockedSeesHiddenDivergence: two devices with identical outputs but a
// diverged half-latch keeper must NOT report locked — hidden state can
// surface later, so crediting future cycles would be unsound.
func TestLockedSeesHiddenDivergence(t *testing.T) {
	bd := testbed(t)
	sites := bd.DUT.HalfLatchSites()
	if len(sites) == 0 {
		t.Skip("design exposes no half-latch sites")
	}
	s := sites[len(sites)/2]
	bd.DUT.FlipHalfLatch(s)
	bd.DUT.Settle()
	if bd.Locked() {
		t.Fatal("keeper divergence must unlock the pair")
	}
	bd.DUT.RestoreHalfLatch(s)
	bd.DUT.Settle()
	bd.ResetBoth()
	if !bd.Locked() {
		t.Fatal("restored keeper must re-lock the pair")
	}
}

// TestSetFastSimKeepsLockStep: toggling the kernel mid-run must not
// disturb lock-step behaviour.
func TestSetFastSimKeepsLockStep(t *testing.T) {
	bd := testbed(t)
	bd.SetFastSim(false)
	for i := 0; i < 10; i++ {
		if !bd.Step() {
			t.Fatal("mismatch under sweep kernel")
		}
	}
	bd.SetFastSim(true)
	for i := 0; i < 10; i++ {
		if !bd.Step() {
			t.Fatal("mismatch after re-enabling event kernel")
		}
	}
	if !bd.Locked() {
		t.Fatal("pair must be locked after identical stimulus")
	}
}
