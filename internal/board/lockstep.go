package board

import (
	"repro/internal/fpga"
)

// Lock-step convergence detection. After an injection is repaired, the DUT
// often drains back into the golden device's exact state within a few
// clocks. From the moment the pair is fully state-identical — configuration
// memory plus all user and hidden state — identical stimulus provably keeps
// them identical forever, so a campaign can credit the remaining cycles of
// its observation windows as mismatch-free without simulating them.
//
// Exactness of the comparison is what makes the early exit sound, so
// Locked errs conservative: an unprogrammed device, a frozen-oscillation
// event backlog, or any state difference reports not-locked and the
// campaign simply keeps simulating.

// lockTracker caches the expensive parts of the lock check between calls.
// Config frames and hidden state change rarely mid-campaign; their
// generation counters let repeat checks skip re-comparison.
type lockTracker struct {
	// Per-frame verdict cache: gGen/dGen are the frame generations the
	// verdict in eq was computed at (0 unknown, 1 equal, 2 differ).
	gGen, dGen []uint64
	eq         []byte
	// Hidden-state verdict cache keyed on both devices' HiddenGen.
	hlGGen, hlDGen uint64
	hlEq           byte
}

// Locked reports whether golden and DUT are provably in lock-step: fully
// state-identical with no pending event-kernel work. Once true it remains
// true until the next fault is injected.
func (b *SLAAC1V) Locked() bool {
	g, d := b.Golden, b.DUT
	if g.Unprogrammed() || d.Unprogrammed() {
		return false
	}
	// A frozen oscillation leaves pending worklist entries that encode
	// future behaviour beyond the visible net values.
	if g.EventBacklog() || d.EventBacklog() {
		return false
	}
	// Fast-diverging user state first: right after an injection this almost
	// always differs, exiting before any expensive compare.
	if !fpga.CoreStateEqual(g, d) {
		return false
	}
	if !b.hiddenLocked() {
		return false
	}
	return b.configLocked()
}

func (b *SLAAC1V) hiddenLocked() bool {
	g, d := b.Golden, b.DUT
	gg, dg := g.HiddenGen(), d.HiddenGen()
	if b.lock.hlEq == 0 || b.lock.hlGGen != gg || b.lock.hlDGen != dg {
		b.lock.hlGGen, b.lock.hlDGen = gg, dg
		if fpga.HiddenStateEqual(g, d) {
			b.lock.hlEq = 1
		} else {
			b.lock.hlEq = 2
		}
	}
	return b.lock.hlEq == 1
}

// configLocked compares configuration memories frame by frame, reusing
// cached verdicts for frames neither device has written since the last
// comparison. During a campaign only the injected frame, the repaired
// frames, and SRL/BRAM-backed frames ever change, so steady-state checks
// touch a handful of generation counters instead of the whole bitstream.
func (b *SLAAC1V) configLocked() bool {
	gm, dm := b.Golden.ConfigMemory(), b.DUT.ConfigMemory()
	n := b.Placed.Geom.TotalFrames()
	if b.lock.eq == nil {
		b.lock.gGen = make([]uint64, n)
		b.lock.dGen = make([]uint64, n)
		b.lock.eq = make([]byte, n)
	}
	for i := 0; i < n; i++ {
		gg, dg := gm.FrameGen(i), dm.FrameGen(i)
		if b.lock.eq[i] == 0 || b.lock.gGen[i] != gg || b.lock.dGen[i] != dg {
			b.lock.gGen[i], b.lock.dGen[i] = gg, dg
			if gm.FrameEqual(dm, i) {
				b.lock.eq[i] = 1
			} else {
				b.lock.eq[i] = 2
			}
		}
		if b.lock.eq[i] == 2 {
			// Per-frame verdicts already computed stay cached; the next call
			// resumes from up-to-date generations.
			return false
		}
	}
	return true
}
