package board

// Fast per-injection stimulus source.
//
// Every injection re-seeds its stimulus stream (board.ResetCampaignState,
// VectorBoard.StartBatch) so campaigns are order- and worker-independent.
// math/rand pays ~1900 multiplicative-LCG steps per Seed to fill the 607-word
// lagged-Fibonacci state — profiled at 20-30% of vector-kernel wall time when
// the observe window only ever draws a few dozen values per lane.
//
// stim reproduces rand.New(rand.NewSource(seed)).Int63() bit-for-bit with an
// O(1) Seed. The trick: math/rand's seeding writes
//
//	vec0[i] = (x[21+3i]<<40 ^ x[22+3i]<<20 ^ x[23+3i]) ^ rngCooked[i]
//
// where x[n] is the n-th iterate of the Lehmer LCG x -> 48271*x mod 2^31-1,
// so x[n] = 48271^n * x0 mod 2^31-1 and any vec0[i] is computable on demand
// from a precomputed table of 48271^n. After seeding, draw j (0-based) reads
// vec[333-j] and vec[606-j] and writes vec[333-j]; for j < 273 both reads hit
// untouched initial state, so the first 273 draws need no materialized vector
// at all — just six modular multiplies each. Draw 273 is the first to read a
// fed-back word; at that point we materialize the full vector, replay the
// writes the lazy draws would have made (they only depend on initial state),
// and continue with the classic additive recurrence.
//
// Exactness is load-bearing (reports must stay byte-identical to the scalar
// era), so stimSelfTest cross-checks the reconstruction against a live
// math/rand across the materialization and both ring-wrap boundaries once at
// startup; any mismatch — say a hypothetical stdlib change — permanently
// demotes every stim to delegating at a real *rand.Rand.

import (
	"math/rand"
	"sync"
)

const (
	stimLen  = 607              // rngLen: words of lagged-Fibonacci state
	stimTap  = 273              // rngTap: short lag
	stimMask = 1<<63 - 1        // rngMask: Int63 truncation
	lcgM     = (1 << 31) - 1    // Lehmer modulus 2^31-1 (prime)
	lcgA     = 48271            // Lehmer multiplier
	stimLazy = stimTap          // draws servable straight from initial state
	// lcgSteps is the deepest LCG iterate seeding consumes: 20 warmup steps
	// plus 3 per vector word, ending at x[20+3*607] = x[1841].
	lcgSteps = 20 + 3*stimLen
)

// lcgPow[n] = 48271^n mod 2^31-1.
var lcgPow [lcgSteps + 1]uint64

func init() {
	lcgPow[0] = 1
	for n := 1; n <= lcgSteps; n++ {
		lcgPow[n] = mulmod31(lcgPow[n-1], lcgA)
	}
}

// mulmod31 returns a*b mod 2^31-1. Operands are < 2^31 so the product fits
// uint64; reduction folds the high bits twice (Mersenne prime).
func mulmod31(a, b uint64) uint64 {
	p := a * b
	p = (p >> 31) + (p & lcgM)
	p = (p >> 31) + (p & lcgM)
	for p >= lcgM {
		p -= lcgM
	}
	return p
}

// stimNorm replicates rngSource.Seed's seed normalization into the Lehmer
// domain [1, 2^31-2].
func stimNorm(seed int64) uint64 {
	seed %= lcgM
	if seed < 0 {
		seed += lcgM
	}
	if seed == 0 {
		seed = 89482311
	}
	return uint64(seed)
}

// stim is a drop-in replacement for rand.New(rand.NewSource(seed)) covering
// the two methods campaigns use: Seed and Int63 (plus Skip for fast-forward).
type stim struct {
	fallback *rand.Rand // non-nil: reconstruction failed self-test, delegate
	x0       uint64     // normalized Lehmer seed
	k        int        // draws consumed since Seed
	tap      int        // ring indices, valid once materialized
	feed     int
	mat      bool // vec holds live state (k >= stimLazy reached)
	vec      [stimLen]uint64
}

// newStim returns a source seeded like rand.New(rand.NewSource(seed)).
func newStim(seed int64) *stim {
	s := &stim{}
	if stimBroken() {
		s.fallback = rand.New(rand.NewSource(seed))
		return s
	}
	s.Seed(seed)
	return s
}

// Seed restarts the stream, matching rand.Rand.Seed. O(1): no state is
// touched until a draw needs it.
func (s *stim) Seed(seed int64) {
	if s.fallback != nil {
		s.fallback.Seed(seed)
		return
	}
	s.x0 = stimNorm(seed)
	s.k = 0
	s.mat = false
}

// vec0 computes the i-th word of the freshly seeded vector on demand.
func (s *stim) vec0(i int) uint64 {
	n := 21 + 3*i
	u := mulmod31(lcgPow[n], s.x0) << 40
	u ^= mulmod31(lcgPow[n+1], s.x0) << 20
	u ^= mulmod31(lcgPow[n+2], s.x0)
	return u ^ rngCooked[i]
}

// materialize fills vec with the full seeded state, replays the writes the
// first k lazy draws performed (each wrote vec[333-j], reading only initial
// words), and sets the ring indices where math/rand would have them.
func (s *stim) materialize() {
	for i := 0; i < stimLen; i++ {
		s.vec[i] = s.vec0(i)
	}
	for j := 0; j < s.k; j++ {
		s.vec[stimLen-stimTap-1-j] += s.vec[stimLen-1-j]
	}
	s.tap = ((0-s.k)%stimLen + stimLen) % stimLen
	s.feed = ((stimLen-stimTap-s.k)%stimLen + stimLen) % stimLen
	s.mat = true
}

// Int63 returns the next value of the stream, identical to rand.Rand.Int63.
func (s *stim) Int63() int64 {
	if s.fallback != nil {
		return s.fallback.Int63()
	}
	if !s.mat {
		if j := s.k; j < stimLazy {
			s.k++
			return int64((s.vec0(stimLen-stimTap-1-j) + s.vec0(stimLen-1-j)) & stimMask)
		}
		s.materialize()
	}
	s.tap--
	if s.tap < 0 {
		s.tap += stimLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += stimLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	s.k++
	return int64(x & stimMask)
}

// Skip discards n draws. In the lazy window this is a pure counter bump,
// which is what makes fast-forwarding carried lanes cheap.
func (s *stim) Skip(n int) {
	if s.fallback != nil {
		for i := 0; i < n; i++ {
			s.fallback.Int63()
		}
		return
	}
	if !s.mat && s.k+n <= stimLazy {
		s.k += n
		return
	}
	for i := 0; i < n; i++ {
		s.Int63()
	}
}

var (
	stimCheckOnce sync.Once
	stimFailed    bool
)

// stimBroken runs the one-time self-test: the reconstruction must match a
// live math/rand stream across several seeds for well past the
// materialization point (draw 273), the feed wrap (draw 334+273), and the
// tap wrap (draw 607+). A mismatch anywhere flips every future stim into
// delegation mode — slower, never wrong.
func stimBroken() bool {
	stimCheckOnce.Do(func() {
		for _, seed := range []int64{1, 0, -7, lcgM - 1, lcgM, 1<<40 + 12345, -1 << 50} {
			ref := rand.New(rand.NewSource(seed))
			var s stim
			s.Seed(seed)
			for j := 0; j < 1500; j++ {
				if s.Int63() != ref.Int63() {
					stimFailed = true
					return
				}
			}
			// Reseeding mid-stream must restart identically.
			ref.Seed(seed + 3)
			s.Seed(seed + 3)
			for j := 0; j < 40; j++ {
				if s.Int63() != ref.Int63() {
					stimFailed = true
					return
				}
			}
		}
	})
	return stimFailed
}
