package board

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/fpga"
	"repro/internal/place"
)

func testbed(t *testing.T) *SLAAC1V {
	t.Helper()
	spec, err := designs.ByName("LFSR 18")
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(spec.Build(), device.Small())
	if err != nil {
		t.Fatal(err)
	}
	bd, err := New(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	return bd
}

func TestLockStepAndOutputs(t *testing.T) {
	bd := testbed(t)
	if !bd.Match() {
		t.Fatal("fresh board mismatched")
	}
	for i := 0; i < 100; i++ {
		if !bd.Step() {
			t.Fatalf("mismatch at cycle %d on a clean board", i)
		}
	}
	g, d := bd.Outputs()
	if g != d {
		t.Fatal("Outputs disagree on a clean board")
	}
	if bd.OutputWidth() != 3 {
		t.Errorf("output width = %d, want 3 (LFSR 18 scaled: 3 clusters)", bd.OutputWidth())
	}
}

func TestResetBothResynchronizes(t *testing.T) {
	bd := testbed(t)
	bd.StepN(37)
	// Knock the DUT's state sideways.
	bd.DUT.SetFFValue(2, 2, 0, !bd.DUT.FFValue(2, 2, 0))
	bd.DUT.Settle()
	bd.ResetBoth()
	if mism, _ := bd.StepN(50); mism != 0 {
		t.Fatal("reset did not re-synchronize the pair")
	}
}

func TestRunUntilMismatch(t *testing.T) {
	bd := testbed(t)
	if bd.RunUntilMismatch(50) {
		t.Fatal("clean board mismatched")
	}
	// Freeze one used FF's clock enable via its half-latch keeper: the
	// paper's canonical invisible upset — the comparator still catches it.
	var hit bool
	for _, s := range bd.Placed.Sites {
		if s.Registered {
			bd.DUT.FlipHalfLatch(fpga.HalfLatchSite{Kind: fpga.HLCE, R: s.R, C: s.C, FF: s.O})
			hit = true
			break
		}
	}
	if !hit {
		t.Fatal("no registered site")
	}
	if !bd.RunUntilMismatch(300) {
		t.Fatal("comparator missed a frozen flip-flop")
	}
}

func TestCloneRunsLockStepWithOriginal(t *testing.T) {
	bd := testbed(t)
	bd.StepN(25) // evolve some state before cloning
	cl := bd.Clone(99)
	// Same canonical state + same stimulus seed => identical traces.
	bd.ResetCampaignState(41)
	cl.ResetCampaignState(41)
	for i := 0; i < 100; i++ {
		if bd.Step() != cl.Step() {
			t.Fatalf("verdicts differ at cycle %d", i)
		}
		bg, bdut := bd.Outputs()
		cg, cdut := cl.Outputs()
		if bg != cg || bdut != cdut {
			t.Fatalf("outputs differ at cycle %d", i)
		}
	}
	// An upset in the clone's DUT stays in the clone.
	s := bd.Placed.Sites[0]
	cl.DUT.InjectBit(bd.Geometry().LUTBitAddr(s.R, s.C, s.O, 0))
	if !cl.RunUntilMismatch(200) {
		t.Fatal("clone comparator missed the injected upset")
	}
	if mism, _ := bd.StepN(50); mism != 0 {
		t.Fatal("original board disturbed by an injection into the clone")
	}
}

func TestMismatchBitsReusesScratch(t *testing.T) {
	bd := testbed(t)
	if n := len(bd.MismatchBits()); n != 0 {
		t.Fatalf("clean board reports %d mismatching outputs", n)
	}
	// Knock one DUT flip-flop sideways and diverge the pair.
	s := bd.Placed.Sites[0]
	bd.DUT.InjectBit(bd.Geometry().LUTBitAddr(s.R, s.C, s.O, 0))
	if !bd.RunUntilMismatch(200) {
		t.Fatal("no mismatch to observe")
	}
	first := bd.MismatchBits()
	if len(first) == 0 {
		t.Fatal("mismatching board reports no mismatch bits")
	}
	second := bd.MismatchBits()
	if &first[0] != &second[0] {
		t.Error("MismatchBits did not reuse its scratch buffer")
	}
}

func TestTimingConstantsMatchPaper(t *testing.T) {
	if BitInjectTime.Microseconds() != 100 {
		t.Error("bit inject time should be 100us")
	}
	if InjectLoopTime.Microseconds() != 214 {
		t.Error("inject loop time should be 214us")
	}
	if AcceleratorLoopTime.Microseconds() != 430 {
		t.Error("accelerator loop should be 430us")
	}
}
