package board

import (
	"math/rand"
	"testing"
)

// TestStimMatchesMathRand pins the reconstruction against the real source
// across the lazy window, the materialization at draw 273, the feed wrap at
// draw 334+273, and full ring wraps, for a spread of seed classes (positive,
// zero, negative, >=2^31, exactly the Lehmer modulus).
func TestStimMatchesMathRand(t *testing.T) {
	seeds := []int64{1, 2, 0, -1, -123456789, 1<<31 - 2, 1<<31 - 1, 1 << 31, 1<<62 + 7, -1 << 61}
	for _, seed := range seeds {
		ref := rand.New(rand.NewSource(seed))
		s := newStim(seed)
		for j := 0; j < 2000; j++ {
			got, want := s.Int63(), ref.Int63()
			if got != want {
				t.Fatalf("seed %d draw %d: stim %d, math/rand %d", seed, j, got, want)
			}
		}
	}
}

// TestStimReseed checks Seed restarts the stream exactly, including reseeding
// after the state was materialized and fed back.
func TestStimReseed(t *testing.T) {
	s := newStim(11)
	ref := rand.New(rand.NewSource(11))
	for _, drawsBefore := range []int{0, 5, 273, 400, 700} {
		for j := 0; j < drawsBefore; j++ {
			s.Int63()
		}
		s.Seed(99)
		ref.Seed(99)
		for j := 0; j < 300; j++ {
			if got, want := s.Int63(), ref.Int63(); got != want {
				t.Fatalf("after %d draws then reseed, draw %d: stim %d, math/rand %d", drawsBefore, j, got, want)
			}
		}
		s.Seed(11)
		ref.Seed(11)
	}
}

// TestStimSkip checks Skip(n) lands on the same stream position as n draws,
// both inside the lazy window and across materialization.
func TestStimSkip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 272, 273, 274, 500, 900} {
		s := newStim(5)
		s.Skip(n)
		ref := rand.New(rand.NewSource(5))
		for j := 0; j < n; j++ {
			ref.Int63()
		}
		for j := 0; j < 100; j++ {
			if got, want := s.Int63(), ref.Int63(); got != want {
				t.Fatalf("skip %d draw %d: stim %d, math/rand %d", n, j, got, want)
			}
		}
	}
}

// TestStimSelfTestPasses asserts the init-time cross-check accepted the
// reconstruction on this toolchain — if it ever fails, stim silently falls
// back to math/rand (correct but slow), and we want CI to surface that.
func TestStimSelfTestPasses(t *testing.T) {
	if stimBroken() {
		t.Fatal("stim reconstruction failed its math/rand self-test; falling back to slow path")
	}
}

func BenchmarkStimSeedAndDraw24(b *testing.B) {
	s := newStim(1)
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
		for j := 0; j < 24; j++ {
			s.Int63()
		}
	}
}

func BenchmarkMathRandSeedAndDraw24(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		r.Seed(int64(i))
		for j := 0; j < 24; j++ {
			r.Int63()
		}
	}
}
