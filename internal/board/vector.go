package board

import (
	"math/bits"

	"repro/internal/fpga"
)

// VectorBoard is the 64-lane image of the SLAAC-1V harness: a golden and a
// DUT lane machine driven by per-lane stimulus streams, compared lane-wise
// on every clock. Lane i of a batch reproduces exactly the scalar
// golden-vs-DUT run of injection i — same canonical start state (pins low,
// user state reset), same per-injection stimulus stream, same comparator.
type VectorBoard struct {
	Golden *fpga.Vector
	DUT    *fpga.Vector

	inPins  []int
	outNets []int
	rngs    [64]*stim
	lanes   int
	full    uint64
	// active masks the lanes still being driven: retired lanes freeze
	// (stimulus stream paused, pins and flip-flops held) until the batch
	// scheduler refills their slot with the next pending injection.
	active uint64
	groups int // 63-bit stimulus draws consumed per lane per clock
}

// CompileVector puts b's golden device into the canonical campaign state
// (pins low, user state reset — the state every scalar injection starts
// from) and compiles it into the shared read-only struct-of-arrays form.
// One compiled design serves every VectorBoard of the campaign, across
// workers and pooled replicas.
func CompileVector(b *SLAAC1V) *fpga.CompiledDesign {
	for _, pin := range b.inPins {
		b.Golden.SetPin(pin, false)
	}
	b.Golden.Reset()
	return b.Golden.Compile()
}

// NewVectorBoard builds the lane harness for b's design, compiling b's
// golden decode on the spot. b's golden device is left in the canonical
// campaign state; campaigns re-reset the scalar board before every scalar
// injection anyway.
func NewVectorBoard(b *SLAAC1V) *VectorBoard {
	return NewVectorBoardFrom(b, CompileVector(b))
}

// NewVectorBoardFrom builds the lane harness over an already-compiled
// design (shared read-only), allocating only the per-lane state words.
func NewVectorBoardFrom(b *SLAAC1V, c *fpga.CompiledDesign) *VectorBoard {
	return &VectorBoard{
		Golden:  fpga.NewVector(c),
		DUT:     fpga.NewVector(c),
		inPins:  b.inPins,
		outNets: b.outNets,
		groups:  (len(b.inPins) + 62) / 63,
	}
}

// StartBatch resets all lanes to the canonical state and seeds one
// stimulus stream per lane — seeds[i] must be the same stimulusSeed the
// scalar campaign would use for injection i.
func (vb *VectorBoard) StartBatch(seeds []int64) {
	vb.lanes = len(seeds)
	if vb.lanes >= 64 {
		vb.full = ^uint64(0)
	} else {
		vb.full = 1<<uint(vb.lanes) - 1
	}
	for i, s := range seeds {
		if vb.rngs[i] == nil {
			vb.rngs[i] = newStim(s)
		} else {
			vb.rngs[i].Seed(s)
		}
	}
	vb.active = vb.full
	vb.Golden.ResetBatch(vb.lanes)
	vb.DUT.ResetBatch(vb.lanes)
}

// FreezeLane retires a lane mid-batch: its stimulus stream pauses and both
// lane machines hold its pins and flip-flops, so the lane generates no
// further settling work. Retired lanes' visible state is never read again
// (the scheduler masks mismatch and lock words by its live set), so
// freezing cannot influence any outcome.
func (vb *VectorBoard) FreezeLane(lane int) {
	vb.active &^= 1 << uint(lane)
	vb.Golden.SetActiveMask(vb.active)
	vb.DUT.SetActiveMask(vb.active)
}

// RefillLanes restores the lanes in mask to the canonical campaign state
// and seeds their stimulus streams — seeds[j] pairs with the j-th set mask
// bit in ascending order. The batch scheduler uses this to install pending
// injections into retired slots without resetting the live lanes.
func (vb *VectorBoard) RefillLanes(mask uint64, seeds []int64) {
	j := 0
	for rest := mask; rest != 0; rest &= rest - 1 {
		lane := bits.TrailingZeros64(rest)
		if vb.rngs[lane] == nil {
			vb.rngs[lane] = newStim(seeds[j])
		} else {
			vb.rngs[lane].Seed(seeds[j])
		}
		j++
	}
	vb.full |= mask
	vb.active |= mask
	vb.Golden.ResetLanes(mask)
	vb.DUT.ResetLanes(mask)
	vb.Golden.SetActiveMask(vb.active)
	vb.DUT.SetActiveMask(vb.active)
}

// SetEventDriven switches both lane machines between the event-driven
// drain and the full-sweep settling loop.
func (vb *VectorBoard) SetEventDriven(on bool) {
	vb.Golden.SetEventDriven(on)
	vb.DUT.SetEventDriven(on)
}

// TakeKernelStats returns and zeroes both lane machines' settle counters.
func (vb *VectorBoard) TakeKernelStats() (rounds, drains int64) {
	gr, gd := vb.Golden.TakeKernelStats()
	dr, dd := vb.DUT.TakeKernelStats()
	return gr + dr, gd + dd
}

// SkipLane fast-forwards lane's stimulus stream past cycles clocks already
// consumed by the scalar observe phase of a carried (scalar-demoted)
// injection, so the lane's remaining draws line up with where the scalar
// run left off.
func (vb *VectorBoard) SkipLane(lane, cycles int) {
	vb.rngs[lane].Skip(cycles * vb.groups)
}

// Step drives one clock of per-lane random stimulus into both lane
// machines and returns the mismatch word: bit i set iff lane i's compared
// outputs disagree this clock. The stimulus transposition mirrors the
// scalar board exactly — one 63-bit draw per pin group per lane per clock,
// pin j of a group reading bit j of its lane's draw.
func (vb *VectorBoard) Step() uint64 {
	var draws [64]int64
	act := vb.active
	for base := 0; base < len(vb.inPins); base += 63 {
		end := base + 63
		if end > len(vb.inPins) {
			end = len(vb.inPins)
		}
		for rest := act; rest != 0; rest &= rest - 1 {
			lane := bits.TrailingZeros64(rest)
			draws[lane] = vb.rngs[lane].Int63()
		}
		for j, pin := range vb.inPins[base:end] {
			// Frozen lanes hold their previous pin bits (golden and DUT
			// always see identical pin words), so a retired lane's inputs
			// stop switching and it settles into quiescence.
			w := vb.Golden.PinWord(pin) &^ act
			for rest := act; rest != 0; rest &= rest - 1 {
				lane := bits.TrailingZeros64(rest)
				w |= uint64(draws[lane]>>uint(j)&1) << uint(lane)
			}
			vb.Golden.SetPinWord(pin, w)
			vb.DUT.SetPinWord(pin, w)
		}
	}
	vb.Golden.Step()
	vb.DUT.Step()
	return vb.MismatchWord()
}

// MismatchWord compares the settled outputs of both lane machines.
func (vb *VectorBoard) MismatchWord() uint64 {
	var m uint64
	for _, id := range vb.outNets {
		m |= vb.Golden.NetWord(id) ^ vb.DUT.NetWord(id)
	}
	return m & vb.full
}

// FailedOutputs returns the comparator indices disagreeing in lane —
// the lane image of SLAAC1V.MismatchBits. The slice is freshly allocated
// (BitRecords retain it).
func (vb *VectorBoard) FailedOutputs(lane int) []int {
	var out []int
	for i, id := range vb.outNets {
		if (vb.Golden.NetWord(id)^vb.DUT.NetWord(id))>>uint(lane)&1 == 1 {
			out = append(out, i)
		}
	}
	return out
}

// LockedWord returns the lanes provably in lock-step: bit i set iff lane
// i's golden and DUT state words are identical everywhere. For lanes whose
// overlay has been removed (configuration golden by construction) this is
// exactly the scalar Locked condition restricted to the lane. Lanes the
// event kernel froze at the MaxSweeps bound are excluded — their pending
// worklists encode future behaviour the visible state comparison cannot
// see, the lane image of the scalar EventBacklog gate.
func (vb *VectorBoard) LockedWord() uint64 {
	lw := ^fpga.DivergenceWord(vb.Golden, vb.DUT) & vb.full
	return lw &^ (vb.Golden.FrozenLanes() | vb.DUT.FrozenLanes())
}
