package scrub

import (
	"testing"
	"time"

	"repro/internal/bitstream"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/fpga"
	"repro/internal/place"
)

// rig builds n configured devices running the same design.
func rig(t *testing.T, n int, geom device.Geometry) (*Manager, []*fpga.FPGA) {
	t.Helper()
	spec, err := designs.ByName("MULT 12")
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(spec.Build(), geom)
	if err != nil {
		t.Fatal(err)
	}
	var ports []*fpga.Port
	var goldens []*bitstream.Memory
	var devs []*fpga.FPGA
	for i := 0; i < n; i++ {
		f := fpga.New(geom)
		if err := f.FullConfigure(p.Bitstream()); err != nil {
			t.Fatal(err)
		}
		devs = append(devs, f)
		ports = append(ports, fpga.NewPort(f))
		goldens = append(goldens, f.ConfigMemory().Clone())
	}
	m, err := New(ports, goldens, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m, devs
}

func TestCleanScanFindsNothing(t *testing.T) {
	m, _ := rig(t, 3, device.Tiny())
	det, err := m.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(det) != 0 {
		t.Fatalf("clean scan produced detections: %v", det)
	}
	st := m.Stats()
	if st.Scans != 1 || st.FrameErrors != 0 {
		t.Errorf("stats = %+v", st)
	}
	g := device.Tiny()
	if st.FramesChecked != int64(3*g.TotalFrames()) {
		t.Errorf("frames checked = %d", st.FramesChecked)
	}
}

func TestScanDetectsAndRepairsSEU(t *testing.T) {
	m, devs := rig(t, 3, device.Tiny())
	g := devs[1].Geometry()
	// A real SEU lands in device 1.
	a := g.LUTBitAddr(2, 3, 1, 7)
	devs[1].InjectBit(a)
	golden := devs[0].ConfigMemory() // device 0 is pristine and identical

	det, err := m.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(det) != 1 {
		t.Fatalf("detections = %v, want exactly one", det)
	}
	if det[0].Device != 1 || det[0].Frame != a.Frame(g) || det[0].Action != ActionRepaired {
		t.Fatalf("detection = %+v", det[0])
	}
	if !devs[1].ConfigMemory().Equal(golden) {
		t.Fatal("repair did not restore the configuration")
	}
	// Second scan is clean.
	det, err = m.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(det) != 0 {
		t.Fatal("repair did not stick")
	}
	if m.Stats().Repairs != 1 {
		t.Errorf("repairs = %d", m.Stats().Repairs)
	}
	if len(m.Log()) != 1 {
		t.Errorf("log = %v", m.Log())
	}
}

func TestScanCycleTimeMatchesPaperFor3XQVR1000(t *testing.T) {
	// Paper: each configuration is read every ~180 ms for three XQVR1000s.
	geom := device.XQVR1000()
	var ports []*fpga.Port
	var goldens []*bitstream.Memory
	for i := 0; i < 3; i++ {
		f := fpga.New(geom)
		ports = append(ports, fpga.NewPort(f))
		goldens = append(goldens, bitstream.NewMemory(geom))
	}
	m, err := New(ports, goldens, nil)
	if err != nil {
		t.Fatal(err)
	}
	cycle := m.ScanCycleTime()
	if cycle < 150*time.Millisecond || cycle > 210*time.Millisecond {
		t.Errorf("scan cycle for 3 XQVR1000s = %v, paper says ~180 ms", cycle)
	}
}

func TestUnprogrammedDeviceGetsFullReconfig(t *testing.T) {
	m, devs := rig(t, 2, device.Tiny())
	devs[0].UpsetControlLogic()
	det, err := m.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range det {
		if d.Device == 0 && d.Action == ActionFullReconfig {
			found = true
		}
	}
	if !found {
		t.Fatalf("no full reconfiguration recorded: %v", det)
	}
	if devs[0].Unprogrammed() {
		t.Fatal("device still unprogrammed after scan")
	}
	if m.Stats().FullReconfigs != 1 {
		t.Errorf("full reconfigs = %d", m.Stats().FullReconfigs)
	}
}

func TestMassCorruptionTriggersFullReconfig(t *testing.T) {
	m, devs := rig(t, 1, device.Tiny())
	m.FullReconfigThreshold = 8
	g := devs[0].Geometry()
	for f := 0; f < 20; f++ {
		devs[0].InjectBit(device.BitAddr(int64(f*3) * int64(g.FrameLength())))
	}
	det, err := m.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(det) != 1 || det[0].Action != ActionFullReconfig {
		t.Fatalf("detections = %v", det)
	}
}

func TestArtificialSEUInsertionExercisesLoop(t *testing.T) {
	// The flight system injects artificial SEUs to verify the fault path
	// end to end; the next scan must find and repair it.
	m, devs := rig(t, 1, device.Tiny())
	if err := m.InsertArtificialSEU(0, 5, 17); err != nil {
		t.Fatal(err)
	}
	det, err := m.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(det) != 1 || det[0].Frame != 5 || det[0].Action != ActionRepaired {
		t.Fatalf("detections = %v", det)
	}
	if err := m.InsertArtificialSEU(0, -1, 0); err == nil {
		t.Fatal("out-of-range frame accepted")
	}
	_ = devs
}

func TestScanTimeAdvances(t *testing.T) {
	m, _ := rig(t, 2, device.Tiny())
	if _, err := m.ScanOnce(); err != nil {
		t.Fatal(err)
	}
	if m.Now() <= 0 {
		t.Fatal("virtual time did not advance")
	}
	before := m.Now()
	m.AdvanceTime(time.Second)
	if m.Now() != before+time.Second {
		t.Fatal("AdvanceTime wrong")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, nil); err == nil {
		t.Fatal("empty manager accepted")
	}
}

func TestMaskedScrubToleratesLiveSRL(t *testing.T) {
	// A design using a LUT as a shift register writes its own configuration
	// bits; scrubbing must mask those frames or it would "repair" live
	// state forever (paper §II-C / §IV-A).
	g := device.Tiny()
	b := fpga.NewConfigBuilder(g)
	b.SetLUT(7, 0, 0, fpga.TruthZero)
	b.SetSRL(7, 0, 0, true)
	b.RouteInput(7, 0, 0, 3, 4)  // shift-in from west pin
	b.RouteInput(7, 0, 0, 0, 16) // address from south pin (0)
	b.RouteInput(7, 0, 0, 1, 16)
	b.RouteInput(7, 0, 0, 2, 16)
	b.SetFF(7, 0, 0, false, device.CEConstOne, 0, false)
	f := fpga.New(g)
	if err := f.FullConfigure(b.FullBitstream()); err != nil {
		t.Fatal(err)
	}
	// Run: SRL content changes in configuration memory.
	f.SetPin(g.PinWest(7, 0), true)
	f.StepN(3)

	mask := bitstream.NewMask(g)
	for i := 0; i < device.LUTBits; i++ {
		mask.MaskBit(g.LUTBitAddr(7, 0, 0, i))
	}
	port := fpga.NewPort(f)
	port.ClockRunning = false // stop the clock for readback, as §II-C demands
	m, err := New([]*fpga.Port{port}, []*bitstream.Memory{b.Memory().Clone()}, []*bitstream.Mask{mask})
	if err != nil {
		t.Fatal(err)
	}
	det, err := m.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(det) != 0 {
		t.Fatalf("masked scrub flagged live SRL content: %v", det)
	}
	// Without the mask the scan would flag (and clobber) the live frame.
	m2, err := New([]*fpga.Port{port}, []*bitstream.Memory{b.Memory().Clone()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	det, err = m2.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(det) == 0 {
		t.Fatal("unmasked scrub failed to flag live SRL content")
	}
}
