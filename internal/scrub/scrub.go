// Package scrub implements the paper's on-orbit fault detection and
// correction scheme (Fig. 4): a radiation-hardened controller (the Actel on
// each compute board) continuously reads back the configuration of its
// Xilinx devices, computes a CRC per frame, compares against a codebook
// loaded from flash, and — on mismatch — notifies the microprocessor, which
// fetches the golden frame and repairs the running device by partial
// reconfiguration. The scan of three XQVR1000s takes ~180 ms.
package scrub

import (
	"fmt"
	"time"

	"repro/internal/bitstream"
	"repro/internal/fpga"
)

// Action describes how a detection was handled.
type Action uint8

const (
	// ActionRepaired: golden frame written back by partial reconfiguration.
	ActionRepaired Action = iota
	// ActionFullReconfig: device was unrecoverable by frame repair
	// (unprogrammed or too many bad frames) and was fully reconfigured.
	ActionFullReconfig
)

func (a Action) String() string {
	if a == ActionRepaired {
		return "repaired"
	}
	return "full-reconfig"
}

// Detection is one state-of-health record, the information relayed to the
// ground station.
type Detection struct {
	Device int
	Frame  int
	// At is the virtual mission time of the detection.
	At     time.Duration
	Action Action
}

func (d Detection) String() string {
	return fmt.Sprintf("t=%v dev=%d frame=%d %s", d.At, d.Device, d.Frame, d.Action)
}

// Stats aggregates manager activity.
type Stats struct {
	Scans         int64
	FramesChecked int64
	FrameErrors   int64
	Repairs       int64
	FullReconfigs int64
}

// Manager is the fault manager: one Actel controller watching up to three
// Xilinx devices (one compute board).
type Manager struct {
	ports  []*fpga.Port
	golden []*bitstream.Memory
	books  []*bitstream.Codebook
	masks  []*bitstream.Mask
	fullBS []*bitstream.Bitstream
	stats  Stats
	log    []Detection
	// FullReconfigThreshold: if more frames than this fail in one device
	// scan, frame repair is abandoned for a full reconfiguration (the
	// signature of an unprogrammed device).
	FullReconfigThreshold int
	// MaxLog bounds the state-of-health record.
	MaxLog int
	now    time.Duration
}

// New builds a manager for the given devices. golden[i] is device i's
// reference configuration (held in the flight system's flash); masks[i] may
// be nil when device i has no live LUT-RAM/BRAM content.
func New(ports []*fpga.Port, golden []*bitstream.Memory, masks []*bitstream.Mask) (*Manager, error) {
	if len(ports) == 0 || len(ports) != len(golden) {
		return nil, fmt.Errorf("scrub: need equal non-zero ports and goldens")
	}
	m := &Manager{
		ports:                 ports,
		golden:                golden,
		FullReconfigThreshold: 64,
		MaxLog:                4096,
	}
	for i := range ports {
		var mask *bitstream.Mask
		if masks != nil && i < len(masks) {
			mask = masks[i]
		}
		m.masks = append(m.masks, mask)
		m.books = append(m.books, bitstream.BuildCodebook(golden[i], mask))
		m.fullBS = append(m.fullBS, bitstream.Full(golden[i]))
	}
	return m, nil
}

// Stats returns aggregate counters.
func (m *Manager) Stats() Stats { return m.stats }

// Log returns the state-of-health record.
func (m *Manager) Log() []Detection { return m.log }

// Now returns the manager's virtual mission clock, advanced by the modelled
// cost of every readback and repair operation.
func (m *Manager) Now() time.Duration { return m.now }

// AdvanceTime adds idle mission time (used by the payload simulation
// between scan cycles).
func (m *Manager) AdvanceTime(d time.Duration) { m.now += d }

// ScanDevice reads back and checks every frame of device i, repairing on
// the fly. It returns the detections made.
func (m *Manager) ScanDevice(i int) ([]Detection, error) {
	port := m.ports[i]
	g := port.Device().Geometry()
	before := port.Elapsed()
	var bad []int
	for f := 0; f < g.TotalFrames(); f++ {
		frame, err := port.ReadFrame(f)
		if err != nil {
			return nil, fmt.Errorf("scrub: device %d frame %d: %w", i, f, err)
		}
		m.stats.FramesChecked++
		if !m.books[i].Check(frame) {
			bad = append(bad, f)
		}
	}
	m.now += port.Elapsed() - before

	var out []Detection
	if len(bad) > m.FullReconfigThreshold || port.Device().Unprogrammed() {
		// Unrecoverable by frame repair: reload the full bitstream (the
		// start-up sequence also restores half-latches).
		before = port.Elapsed()
		if err := port.FullConfigure(m.fullBS[i]); err != nil {
			return nil, fmt.Errorf("scrub: full reconfig of device %d: %w", i, err)
		}
		m.now += port.Elapsed() - before
		m.stats.FullReconfigs++
		frame := -1
		if len(bad) > 0 {
			frame = bad[0]
		}
		d := Detection{Device: i, Frame: frame, At: m.now, Action: ActionFullReconfig}
		m.record(d)
		out = append(out, d)
		m.stats.FrameErrors += int64(len(bad))
		return out, nil
	}
	for _, f := range bad {
		before = port.Elapsed()
		if err := port.WriteFrame(m.golden[i].Frame(f)); err != nil {
			return nil, fmt.Errorf("scrub: repairing device %d frame %d: %w", i, f, err)
		}
		m.now += port.Elapsed() - before
		m.stats.FrameErrors++
		m.stats.Repairs++
		d := Detection{Device: i, Frame: f, At: m.now, Action: ActionRepaired}
		m.record(d)
		out = append(out, d)
	}
	return out, nil
}

// ScanOnce performs one full scan cycle over all devices (the loop of
// Fig. 4) and returns all detections.
func (m *Manager) ScanOnce() ([]Detection, error) {
	m.stats.Scans++
	var out []Detection
	for i := range m.ports {
		d, err := m.ScanDevice(i)
		if err != nil {
			return nil, err
		}
		out = append(out, d...)
	}
	return out, nil
}

// ScanCycleTime predicts the virtual duration of one full scan with no
// errors: readback of every frame of every device.
func (m *Manager) ScanCycleTime() time.Duration {
	var t time.Duration
	for _, p := range m.ports {
		g := p.Device().Geometry()
		t += time.Duration(g.TotalFrames()) * p.FrameReadTime
	}
	return t
}

// InsertArtificialSEU flips a configuration bit of device i through its
// port — the paper's mechanism for exercising the fault-handling path
// end-to-end in orbit ("artificial insertion of SEUs ... with 'corrupt'
// frames").
func (m *Manager) InsertArtificialSEU(i int, frame, offset int) error {
	port := m.ports[i]
	g := port.Device().Geometry()
	if frame < 0 || frame >= g.TotalFrames() {
		return fmt.Errorf("scrub: frame %d out of range", frame)
	}
	fr := port.Device().ConfigMemory().Frame(frame)
	fr.Data[offset>>3] ^= 1 << (uint(offset) & 7)
	return port.WriteFrame(fr)
}

func (m *Manager) record(d Detection) {
	if len(m.log) < m.MaxLog {
		m.log = append(m.log, d)
	}
}
