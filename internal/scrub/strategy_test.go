package scrub

import (
	"testing"
	"time"
)

func TestParseStrategy(t *testing.T) {
	cases := map[string]Strategy{
		"blind": StrategyBlind, "blind-periodic": StrategyBlind,
		"readback": StrategyReadback, "readback-crc": StrategyReadback, "CRC": StrategyReadback,
		"neighbor": StrategyNeighbor, "neighbour": StrategyNeighbor, "intermodular": StrategyNeighbor,
		"redundant": StrategyRedundant, "config-redundancy": StrategyRedundant,
	}
	for name, want := range cases {
		got, err := ParseStrategy(name)
		if err != nil {
			t.Fatalf("ParseStrategy(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("ParseStrategy(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy accepted bogus name")
	}
}

func TestParseStrategyRoundTrip(t *testing.T) {
	for _, s := range Strategies {
		back, err := ParseStrategy(s.String())
		if err != nil {
			t.Fatalf("ParseStrategy(%q): %v", s, err)
		}
		if back != s {
			t.Errorf("round trip %v -> %q -> %v", s, s.String(), back)
		}
	}
}

func TestParseStrategies(t *testing.T) {
	got, err := ParseStrategies("blind, readback-crc ,neighbor,redundant")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != StrategyBlind || got[3] != StrategyRedundant {
		t.Errorf("ParseStrategies order wrong: %v", got)
	}
	if _, err := ParseStrategies("blind,blind"); err == nil {
		t.Error("duplicate strategy accepted")
	}
	if _, err := ParseStrategies(" ,"); err == nil {
		t.Error("empty list accepted")
	}
}

// TestScanCycleOrdering pins the structural property the MTTR invariant
// tests rely on: a blind rewrite pass is strictly slower than a readback
// pass over the same frames (frame writes cost more than frame reads), and
// redundancy pays for its duplicated frames.
func TestScanCycleOrdering(t *testing.T) {
	tm := DefaultTiming()
	if tm.FrameWrite <= tm.FrameRead {
		t.Fatalf("timing model must write slower than it reads: write %v, read %v", tm.FrameWrite, tm.FrameRead)
	}
	const frames = 408
	blind := tm.ScanCycle(StrategyBlind, frames, 0)
	rb := tm.ScanCycle(StrategyReadback, frames, 0)
	red := tm.ScanCycle(StrategyRedundant, frames, 100)
	if blind <= rb {
		t.Errorf("blind cycle %v must exceed readback cycle %v", blind, rb)
	}
	if red <= rb {
		t.Errorf("redundant cycle %v must exceed plain readback %v (duplicated frames)", red, rb)
	}
	if got := tm.ScanCycle(StrategyNeighbor, frames, 100); got != rb {
		t.Errorf("neighbor cycle %v, want %v (extra frames only apply to redundancy)", got, rb)
	}
}

func TestTimingScale(t *testing.T) {
	tm := Timing{FrameRead: 10 * time.Microsecond, FrameWrite: 80 * time.Microsecond, FullConfig: time.Millisecond}
	s := tm.Scale(2)
	if s.FrameRead != 20*time.Microsecond || s.FrameWrite != 160*time.Microsecond || s.FullConfig != 2*time.Millisecond {
		t.Errorf("Scale(2) = %+v", s)
	}
}
