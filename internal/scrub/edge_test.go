package scrub

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/fpga"
	"repro/internal/place"
)

// TestScanCatchesColumnBoundaryFrames pins the fencepost the codebook scan
// must not have: a frame-CRC mismatch on the LAST frame of a CLB column and
// on the last frame of the whole device (the tail of the BRAM region) are
// both detected, attributed to the right frame, and repaired.
func TestScanCatchesColumnBoundaryFrames(t *testing.T) {
	g := device.Tiny()
	m, devs := rig(t, 2, g)
	bad := []int{
		device.FramesPerCLBCol - 1,         // last frame of CLB column 0
		2*device.FramesPerCLBCol - 1,       // last frame of CLB column 1
		g.CLBFrames() + g.BRAMFrames() - 1, // last frame of the device
	}
	for _, frame := range bad {
		if err := m.InsertArtificialSEU(1, frame, 9); err != nil {
			t.Fatalf("frame %d: %v", frame, err)
		}
	}

	det, err := m.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(det) != len(bad) {
		t.Fatalf("detections = %v, want %d boundary frames", det, len(bad))
	}
	got := map[int]bool{}
	for _, d := range det {
		if d.Device != 1 || d.Action != ActionRepaired {
			t.Fatalf("detection = %+v", d)
		}
		got[d.Frame] = true
	}
	for _, frame := range bad {
		if !got[frame] {
			t.Errorf("boundary frame %d not detected", frame)
		}
	}

	// The repair restored the exact golden content: a second scan is clean
	// and the two devices agree frame-for-frame again.
	det, err = m.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(det) != 0 {
		t.Fatalf("post-repair scan still detects: %v", det)
	}
	if diff := devs[1].ConfigMemory().DiffFrames(devs[0].ConfigMemory()); len(diff) != 0 {
		t.Fatalf("devices differ in frames %v after repair", diff)
	}
}

// TestMaskedBitOnLastFrameIgnored: an upset confined to masked (don't-care)
// bits must be invisible to the scrubber even on the last frame of a column,
// where an off-by-one in codebook indexing would surface first.
func TestMaskedBitOnLastFrameIgnored(t *testing.T) {
	g := device.Tiny()
	spec, err := designs.ByName("MULT 12")
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(spec.Build(), g)
	if err != nil {
		t.Fatal(err)
	}
	f := fpga.New(g)
	if err := f.FullConfigure(p.Bitstream()); err != nil {
		t.Fatal(err)
	}

	frame := device.FramesPerCLBCol - 1
	offset := 11
	mk := bitstream.NewMask(g)
	mk.MaskBit(device.BitAddr(int64(frame)*int64(g.FrameLength()) + int64(offset)))

	m, err := New(
		[]*fpga.Port{fpga.NewPort(f)},
		[]*bitstream.Memory{f.ConfigMemory().Clone()},
		[]*bitstream.Mask{mk},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InsertArtificialSEU(0, frame, offset); err != nil {
		t.Fatal(err)
	}
	det, err := m.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(det) != 0 {
		t.Fatalf("masked upset detected: %v", det)
	}
	// An unmasked bit in the same frame is still caught.
	if err := m.InsertArtificialSEU(0, frame, offset+1); err != nil {
		t.Fatal(err)
	}
	det, err = m.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(det) != 1 || det[0].Frame != frame || det[0].Action != ActionRepaired {
		t.Fatalf("detections = %v, want one repair of frame %d", det, frame)
	}
}

// TestFullReconfigThreshold: when more frames fail than the per-scan repair
// budget allows, the manager falls back to full reconfiguration — one
// ActionFullReconfig detection, a healthy device afterwards.
func TestFullReconfigThreshold(t *testing.T) {
	m, devs := rig(t, 1, device.Tiny())
	m.FullReconfigThreshold = 2
	golden := devs[0].ConfigMemory().Clone()
	for _, frame := range []int{3, 50, 99, 201} {
		if err := m.InsertArtificialSEU(0, frame, 5); err != nil {
			t.Fatal(err)
		}
	}

	det, err := m.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(det) != 1 || det[0].Action != ActionFullReconfig {
		t.Fatalf("detections = %v, want a single full reconfiguration", det)
	}
	if st := m.Stats(); st.FullReconfigs != 1 {
		t.Errorf("stats = %+v, want FullReconfigs=1", st)
	}
	if diff := devs[0].ConfigMemory().DiffFrames(golden); len(diff) != 0 {
		t.Fatalf("device differs from golden in frames %v after full reconfiguration", diff)
	}
	det, err = m.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(det) != 0 {
		t.Fatalf("post-recovery scan still detects: %v", det)
	}
}
