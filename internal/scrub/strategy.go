// Scrub strategies. The flight system's Actel controller implements one
// policy — continuous readback with CRC compare and frame repair — but the
// literature offers several alternatives the mission simulator compares
// head-to-head: blind periodic rewriting, intermodular/neighbor scrubbing
// where FPGAs scrub each other without a dedicated rad-hard controller
// (Giordano et al., ARICH Belle II, PAPERS.md), and configuration
// redundancy, where critical frames are duplicated so an upset in either
// copy is masked until repaired (Giordano et al., PAPERS.md).
package scrub

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/fpga"
)

// Strategy names a scrub policy.
type Strategy uint8

const (
	// StrategyBlind rewrites every configuration frame cyclically without
	// reading anything back. Detection is implicit — damage is erased when
	// the rewrite pointer passes the frame — and the cycle is paced by
	// frame *write* time, so it is the slowest loop. A periodic full
	// reconfiguration restores half-latches and recovers control-logic
	// upsets, which blind rewriting cannot even see.
	StrategyBlind Strategy = iota
	// StrategyReadback is the paper's policy: a radiation-hardened
	// controller reads back every frame, CRC-compares against the flash
	// codebook, and repairs mismatches by partial reconfiguration.
	StrategyReadback
	// StrategyNeighbor is intermodular scrubbing: device i's configuration
	// is read back and repaired by device (i+1) mod N on the same board.
	// No rad-hard controller is needed, but a scrubber that is itself down
	// stalls its neighbour's repairs until it recovers.
	StrategyNeighbor
	// StrategyRedundant is configuration redundancy on top of readback:
	// the most sensitive frames are duplicated, so an upset confined to
	// one copy of a protected frame is functionally masked while the
	// scrubber repairs it. The scan cycle grows by the duplicated frames.
	StrategyRedundant
)

// Strategies lists every policy in canonical comparison order.
var Strategies = []Strategy{StrategyBlind, StrategyReadback, StrategyNeighbor, StrategyRedundant}

func (s Strategy) String() string {
	switch s {
	case StrategyBlind:
		return "blind"
	case StrategyReadback:
		return "readback"
	case StrategyNeighbor:
		return "neighbor"
	case StrategyRedundant:
		return "redundant"
	}
	return fmt.Sprintf("strategy(%d)", uint8(s))
}

// ParseStrategy resolves a policy name.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "blind", "blind-periodic":
		return StrategyBlind, nil
	case "readback", "readback-crc", "crc":
		return StrategyReadback, nil
	case "neighbor", "neighbour", "intermodular":
		return StrategyNeighbor, nil
	case "redundant", "redundancy", "config-redundancy":
		return StrategyRedundant, nil
	}
	return 0, fmt.Errorf("scrub: unknown strategy %q (blind|readback|neighbor|redundant)", name)
}

// ParseStrategies resolves a comma-separated strategy list, rejecting
// duplicates so report sections stay unambiguous.
func ParseStrategies(list string) ([]Strategy, error) {
	var out []Strategy
	seen := make(map[Strategy]bool)
	for _, name := range strings.Split(list, ",") {
		if strings.TrimSpace(name) == "" {
			continue
		}
		s, err := ParseStrategy(name)
		if err != nil {
			return nil, err
		}
		if seen[s] {
			return nil, fmt.Errorf("scrub: strategy %q listed twice", s)
		}
		seen[s] = true
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scrub: empty strategy list")
	}
	return out, nil
}

// Timing is the configuration-interface cost model shared by the scrub
// manager and the mission simulator.
type Timing struct {
	FrameRead  time.Duration
	FrameWrite time.Duration
	FullConfig time.Duration
}

// DefaultTiming mirrors the fpga.Port defaults (paper-calibrated: ~12.9 us
// frame readback, 100 us frame write, 120 ms full configuration).
func DefaultTiming() Timing {
	return Timing{
		FrameRead:  fpga.DefaultFrameReadTime,
		FrameWrite: fpga.DefaultFrameWriteTime,
		FullConfig: fpga.DefaultFullConfigTime,
	}
}

// Scale returns the timing model with every cost multiplied by k — used by
// canned scenarios that pin a scan cycle (e.g. the paper's 180 ms payload
// scan) on a scaled-down geometry.
func (t Timing) Scale(k float64) Timing {
	return Timing{
		FrameRead:  time.Duration(float64(t.FrameRead) * k),
		FrameWrite: time.Duration(float64(t.FrameWrite) * k),
		FullConfig: time.Duration(float64(t.FullConfig) * k),
	}
}

// PerFrame returns the time the strategy spends on one frame during a
// no-error scan pass: blind scrubbing pays a write per frame, every
// readback-based policy pays a read.
func (t Timing) PerFrame(s Strategy) time.Duration {
	if s == StrategyBlind {
		return t.FrameWrite
	}
	return t.FrameRead
}

// ScanCycle returns the no-error scan period over `frames` configuration
// frames plus `extra` duplicated frames (configuration redundancy scans its
// copies too; other strategies pass extra = 0).
func (t Timing) ScanCycle(s Strategy, frames, extra int) time.Duration {
	n := frames
	if s == StrategyRedundant {
		n += extra
	}
	return time.Duration(int64(n)) * t.PerFrame(s)
}
