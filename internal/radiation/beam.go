package radiation

import (
	"fmt"
	"time"

	"repro/internal/bitstream"
	"repro/internal/board"
	"repro/internal/device"
)

// Beam validation (paper §III-B, Figs. 11 and 12): the design runs in the
// simulated proton beam with the flux tuned to about one upset per
// observation window. Output errors are logged against the upsets found by
// configuration readback; each output error either was predicted by the SEU
// simulator's sensitivity map (a sensitive configuration bit was struck) or
// was not — hidden-state upsets (half-latches, flip-flops, control logic)
// produce the unpredicted remainder. The paper measured 97.6 % agreement.

// BeamOptions configure a beam run.
type BeamOptions struct {
	// Observations is the number of beam observation windows.
	Observations int
	// Window is the virtual duration of one observation (paper: 0.5 s).
	Window time.Duration
	// CyclesPerObservation is how many design clocks the comparator runs
	// per window (a scaled stand-in for 0.5 s at 20 MHz).
	CyclesPerObservation int
	// ResyncCycles bounds the post-repair settle check before escalating
	// to a full reconfiguration.
	ResyncCycles int
}

// DefaultBeamOptions returns the standard beam-test parameters.
func DefaultBeamOptions() BeamOptions {
	return BeamOptions{
		Observations:         400,
		Window:               500 * time.Millisecond,
		CyclesPerObservation: 40,
		ResyncCycles:         16,
	}
}

// BeamReport summarizes a beam run.
type BeamReport struct {
	Observations  int
	Strikes       int
	StrikesByKind map[StrikeKind]int

	OutputErrors      int
	PredictedErrors   int
	UnpredictedErrors int

	BitstreamUpsetsFound int
	Repairs              int
	FullReconfigs        int

	SimulatedTime time.Duration
}

// Correlation is the fraction of output errors the sensitivity map
// predicted — the paper's 97.6 % headline number.
func (r *BeamReport) Correlation() float64 {
	if r.OutputErrors == 0 {
		return 1
	}
	return float64(r.PredictedErrors) / float64(r.OutputErrors)
}

func (r *BeamReport) String() string {
	return fmt.Sprintf("beam: %d obs, %d strikes, %d output errors (%d predicted, %d not), correlation %.1f%%, %d bitstream upsets found, %d repairs, %d full reconfigs",
		r.Observations, r.Strikes, r.OutputErrors, r.PredictedErrors, r.UnpredictedErrors,
		100*r.Correlation(), r.BitstreamUpsetsFound, r.Repairs, r.FullReconfigs)
}

// RunBeam executes the accelerator test methodology of Fig. 12 against the
// testbed. sensitive is the SEU simulator's sensitivity map for the same
// design (bit address -> sensitive).
func RunBeam(bd *board.SLAAC1V, src *Source, sensitive map[device.BitAddr]bool, opts BeamOptions) (*BeamReport, error) {
	if opts.Observations <= 0 || opts.CyclesPerObservation <= 0 {
		return nil, fmt.Errorf("radiation: non-positive beam options")
	}
	g := bd.Geometry()
	golden := bd.DUT.ConfigMemory().Clone()
	book := bitstream.BuildCodebook(golden, nil)
	fullBS := bitstream.Full(golden)
	rep := &BeamReport{StrikesByKind: make(map[StrikeKind]int)}

	for obs := 0; obs < opts.Observations; obs++ {
		rep.Observations++
		rep.SimulatedTime += opts.Window

		// Draw this window's strikes and schedule them at random cycles.
		n := src.Poisson(opts.Window)
		strikeAt := make(map[int][]Strike)
		hitSensitive := false
		for i := 0; i < n; i++ {
			st := src.Draw(bd.DUT)
			rep.Strikes++
			rep.StrikesByKind[st.Kind]++
			cyc := src.rng.Intn(opts.CyclesPerObservation)
			strikeAt[cyc] = append(strikeAt[cyc], st)
			if st.Kind == StrikeConfig && sensitive[st.Addr] {
				hitSensitive = true
			}
		}

		// Run the observation, applying strikes as their cycles come up.
		outputError := false
		for cyc := 0; cyc < opts.CyclesPerObservation; cyc++ {
			for _, st := range strikeAt[cyc] {
				Apply(bd.DUT, st)
			}
			if !bd.Step() {
				outputError = true
			}
		}
		if outputError {
			rep.OutputErrors++
			if hitSensitive {
				rep.PredictedErrors++
			} else {
				rep.UnpredictedErrors++
			}
		}

		// Readback at regular intervals: find and repair bitstream upsets
		// by partial reconfiguration (Fig. 12's repair step).
		if bd.DUT.Unprogrammed() {
			if err := bd.Port.FullConfigure(fullBS); err != nil {
				return nil, err
			}
			rep.FullReconfigs++
			bd.ResetBoth()
			rep.SimulatedTime += board.AcceleratorLoopTime
			continue
		}
		for _, f := range bd.DUT.ConfigMemory().DiffFrames(golden) {
			// The scan would flag these frames by CRC; count and repair.
			fr, err := bd.Port.ReadFrame(f)
			if err != nil {
				return nil, err
			}
			if !book.Check(fr) {
				rep.BitstreamUpsetsFound++
			}
			if err := bd.Port.WriteFrame(golden.Frame(f)); err != nil {
				return nil, err
			}
			rep.Repairs++
		}
		rep.SimulatedTime += board.AcceleratorLoopTime

		// If an output error was observed, reset both designs; if they
		// still disagree (half-latch damage), full-reconfigure.
		if outputError {
			bd.ResetBoth()
			clean := true
			for i := 0; i < opts.ResyncCycles; i++ {
				if !bd.Step() {
					clean = false
					break
				}
			}
			if !clean {
				if err := bd.Port.FullConfigure(fullBS); err != nil {
					return nil, err
				}
				rep.FullReconfigs++
				bd.ResetBoth()
			}
		}
	}
	// Restore a pristine device for whoever uses the board next.
	if err := bd.Port.FullConfigure(fullBS); err != nil {
		return nil, err
	}
	bd.ResetBoth()
	_ = g
	return rep, nil
}

// SensitiveSet converts a list of sensitive bit addresses into the map
// RunBeam consumes.
func SensitiveSet(addrs []device.BitAddr) map[device.BitAddr]bool {
	m := make(map[device.BitAddr]bool, len(addrs))
	for _, a := range addrs {
		m[a] = true
	}
	return m
}
