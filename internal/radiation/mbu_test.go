package radiation

import (
	"math/rand"
	"testing"
)

func TestMBUSizeMatchesCDF(t *testing.T) {
	m := DefaultMBU()
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	counts := make([]int, m.MaxSize()+1)
	for i := 0; i < n; i++ {
		s := m.Size(rng.Float64())
		if s < 1 || s > m.MaxSize() {
			t.Fatalf("cluster size %d out of range [1,%d]", s, m.MaxSize())
		}
		counts[s]++
	}
	prev := 0.0
	for i, c := range m.SizeCDF {
		want := c - prev
		prev = c
		got := float64(counts[i+1]) / n
		if got < want-0.01 || got > want+0.01 {
			t.Errorf("size %d frequency %.4f, want %.4f +- 0.01", i+1, got, want)
		}
	}
}

func TestMBUSizeEdges(t *testing.T) {
	m := DefaultMBU()
	if got := m.Size(0); got != 1 {
		t.Errorf("Size(0) = %d, want 1", got)
	}
	if got := m.Size(0.9999999); got != m.MaxSize() {
		t.Errorf("Size(~1) = %d, want %d", got, m.MaxSize())
	}
	empty := MBU{}
	if got := empty.Size(0.5); got != 1 {
		t.Errorf("empty model Size = %d, want 1", got)
	}
	if empty.MaxSize() != 1 {
		t.Errorf("empty model MaxSize = %d, want 1", empty.MaxSize())
	}
}

func TestMBUSpansFrames(t *testing.T) {
	m := DefaultMBU()
	if m.SpansFrames(1, 0) {
		t.Error("single-bit cluster must never span frames")
	}
	if !m.SpansFrames(2, 0.1) {
		t.Error("u below FrameSpanProb must span")
	}
	if m.SpansFrames(2, 0.9) {
		t.Error("u above FrameSpanProb must not span")
	}
}
