// Package radiation models the paper's two radiation environments: the Low
// Earth Orbit the nine-FPGA payload flies in (1.2 upsets/hour in quiet
// conditions, 9.6/hour during solar flares, §I) and the Crocker cyclotron
// proton beam used for validation (flux tuned to about one upset per 0.5 s
// observation, §III-B).
//
// A strike hits either configuration memory — the 99.58 % of the sensitive
// cross-section the bitstream fault injector can reach — or the hidden
// state the paper identifies as invisible to readback: half-latch keepers,
// user flip-flops, and the configuration control logic. That partition is
// what makes the beam-vs-simulator correlation experiment (97.6 % in the
// paper) meaningful.
package radiation

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/device"
	"repro/internal/fpga"
)

// Paper upset rates for the nine-FPGA system.
const (
	// LEOQuietSystemRate is upsets/hour across all nine devices in low
	// radiation zones.
	LEOQuietSystemRate = 1.2
	// LEOFlareSystemRate is upsets/hour during solar flares.
	LEOFlareSystemRate = 9.6
	// SystemDevices is the number of Virtex parts in the flight system.
	SystemDevices = 9
)

// StrikeKind classifies what an upset hits.
type StrikeKind uint8

const (
	// StrikeConfig flips one configuration-memory bit.
	StrikeConfig StrikeKind = iota
	// StrikeHalfLatch flips a hidden keeper (not visible to readback, not
	// repaired by partial reconfiguration).
	StrikeHalfLatch
	// StrikeUserFF flips a user flip-flop (design state; bitstream clean).
	StrikeUserFF
	// StrikeControl upsets the configuration control logic: the device
	// becomes unprogrammed until fully reconfigured.
	StrikeControl
)

func (k StrikeKind) String() string {
	switch k {
	case StrikeConfig:
		return "config"
	case StrikeHalfLatch:
		return "half-latch"
	case StrikeUserFF:
		return "user-ff"
	case StrikeControl:
		return "control"
	}
	return "unknown"
}

// Strike is one upset event.
type Strike struct {
	Kind StrikeKind
	// Addr is set for StrikeConfig.
	Addr device.BitAddr
	// Site is set for StrikeHalfLatch.
	Site fpga.HalfLatchSite
	// R, C, K locate the flip-flop for StrikeUserFF.
	R, C, K int
}

// CrossSection weights the physical strike targets. The defaults follow the
// paper's partition: configuration bits dominate, hidden state is a small
// fraction (the paper attributes 99.58 % of the *sensitive* cross-section
// to configuration bits).
type CrossSection struct {
	// ConfigWeight is the per-configuration-bit weight (baseline 1).
	ConfigWeight float64
	// HalfLatchWeight is the per-keeper-site weight.
	HalfLatchWeight float64
	// FFWeight is the per-flip-flop weight.
	FFWeight float64
	// ControlWeight is the total weight of the configuration control
	// logic (one "site").
	ControlWeight float64
}

// DefaultCrossSection returns weights calibrated so that hidden-state
// upsets are a small fraction of all strikes — the paper attributes
// 99.58 % of the sensitive cross-section to configuration bits, with the
// remainder (half-latches, user state, control logic) responsible for the
// beam-vs-simulator disagreement (100 % - 97.6 %).
func DefaultCrossSection() CrossSection {
	return CrossSection{
		ConfigWeight:    1,
		HalfLatchWeight: 0.5,
		FFWeight:        0.5,
		ControlWeight:   24,
	}
}

// Source draws upset strikes for one device.
type Source struct {
	xs  CrossSection
	rng *rand.Rand
	// UpsetsPerSecond is the mean strike rate for the device under this
	// environment/flux.
	UpsetsPerSecond float64
}

// NewSource builds a strike source with the given per-device rate.
func NewSource(upsetsPerSecond float64, xs CrossSection, seed int64) *Source {
	return &Source{xs: xs, rng: rand.New(rand.NewSource(seed)), UpsetsPerSecond: upsetsPerSecond}
}

// LEOQuiet returns a per-device source at the paper's quiet-orbit rate.
func LEOQuiet(seed int64) *Source {
	return NewSource(LEOQuietSystemRate/SystemDevices/3600, DefaultCrossSection(), seed)
}

// LEOFlare returns a per-device source at the paper's solar-flare rate.
func LEOFlare(seed int64) *Source {
	return NewSource(LEOFlareSystemRate/SystemDevices/3600, DefaultCrossSection(), seed)
}

// BeamForObservation returns a proton-beam source whose flux produces on
// average one upset per observation window (the paper tuned the beam to
// ~1 upset per 0.5 s observation).
func BeamForObservation(window time.Duration, seed int64) *Source {
	return NewSource(1/window.Seconds(), DefaultCrossSection(), seed)
}

// Poisson draws the number of upsets in an interval.
func (s *Source) Poisson(interval time.Duration) int {
	lambda := s.UpsetsPerSecond * interval.Seconds()
	// Knuth's algorithm; lambda is small in every experiment.
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}

// NextArrival draws the waiting time to the next upset (exponential).
func (s *Source) NextArrival() time.Duration {
	if s.UpsetsPerSecond <= 0 {
		return time.Duration(math.MaxInt64)
	}
	secs := s.rng.ExpFloat64() / s.UpsetsPerSecond
	return time.Duration(secs * float64(time.Second))
}

// Draw picks a strike target on device f according to the cross-section.
func (s *Source) Draw(f *fpga.FPGA) Strike {
	g := f.Geometry()
	sites := f.HalfLatchSites()
	wConfig := s.xs.ConfigWeight * float64(g.TotalBits())
	wHL := s.xs.HalfLatchWeight * float64(len(sites))
	wFF := s.xs.FFWeight * float64(g.CLBs()*device.FFsPerCLB)
	wCtl := s.xs.ControlWeight
	total := wConfig + wHL + wFF + wCtl
	x := s.rng.Float64() * total
	switch {
	case x < wConfig:
		return Strike{Kind: StrikeConfig, Addr: device.BitAddr(s.rng.Int63n(g.TotalBits()))}
	case x < wConfig+wHL:
		return Strike{Kind: StrikeHalfLatch, Site: sites[s.rng.Intn(len(sites))]}
	case x < wConfig+wHL+wFF:
		clb := s.rng.Intn(g.CLBs())
		return Strike{
			Kind: StrikeUserFF,
			R:    clb / g.Cols, C: clb % g.Cols, K: s.rng.Intn(device.FFsPerCLB),
		}
	default:
		return Strike{Kind: StrikeControl}
	}
}

// Apply lands a strike on device f. Half-latch strikes may later recover
// spontaneously (the paper observed this under proton testing) — the caller
// models that via fpga.RestoreHalfLatch if desired.
func Apply(f *fpga.FPGA, st Strike) {
	switch st.Kind {
	case StrikeConfig:
		f.InjectBit(st.Addr)
	case StrikeHalfLatch:
		f.FlipHalfLatch(st.Site)
	case StrikeUserFF:
		f.SetFFValue(st.R, st.C, st.K, !f.FFValue(st.R, st.C, st.K))
	case StrikeControl:
		f.UpsetControlLogic()
	}
}
