package radiation

// Multi-bit upsets. A single heavy-ion or proton strike can deposit charge
// across several adjacent configuration cells; with shrinking process nodes
// the multi-cell fraction grows. The model follows the shape reported for
// Virtex-class parts: single-bit events dominate, two-bit events are a few
// percent, and larger clusters fall off quickly. Cluster geometry matters
// for configuration redundancy (Giordano et al., PAPERS.md): a cluster
// confined to one frame is always masked by a duplicated copy, while a
// cluster straddling two adjacent frames can corrupt both members of a
// duplicated pair.

// MBU is a multi-bit upset model: the distribution of cluster sizes
// produced by one strike, and the chance that a multi-cell cluster spans
// two adjacent configuration frames.
type MBU struct {
	// SizeCDF[i] is the probability that a strike upsets at most i+1 cells;
	// the last entry must be 1. An empty CDF means strictly single-bit
	// upsets.
	SizeCDF []float64
	// FrameSpanProb is the probability that a cluster of size >= 2 lands
	// across two adjacent frames instead of within one (clusters are
	// roughly isotropic; adjacent cells in the array map to both
	// neighbouring bits of one frame and the same bit of the next frame).
	FrameSpanProb float64
}

// DefaultMBU returns the model used by the mission simulator: 94 % singles,
// 4.5 % doubles, 1.2 % triples, 0.3 % quads, with 40 % of multi-cell
// clusters straddling a frame boundary.
func DefaultMBU() MBU {
	return MBU{
		SizeCDF:       []float64{0.94, 0.985, 0.997, 1},
		FrameSpanProb: 0.4,
	}
}

// Size maps a uniform draw u in [0,1) to a cluster size (>= 1).
func (m MBU) Size(u float64) int {
	for i, c := range m.SizeCDF {
		if u < c {
			return i + 1
		}
	}
	if len(m.SizeCDF) == 0 {
		return 1
	}
	return len(m.SizeCDF)
}

// SpansFrames maps a uniform draw to the cluster's orientation: true when a
// cluster of the given size corrupts two adjacent frames.
func (m MBU) SpansFrames(size int, u float64) bool {
	return size >= 2 && u < m.FrameSpanProb
}

// MaxSize returns the largest cluster the model can produce.
func (m MBU) MaxSize() int {
	if len(m.SizeCDF) == 0 {
		return 1
	}
	return len(m.SizeCDF)
}
