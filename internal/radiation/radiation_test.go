package radiation

import (
	"math"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/fpga"
	"repro/internal/place"
	"repro/internal/seu"
)

func TestPaperRates(t *testing.T) {
	q := LEOQuiet(1)
	f := LEOFlare(1)
	// Per-device rates: 1.2/9 and 9.6/9 per hour.
	wantQ := 1.2 / 9 / 3600
	wantF := 9.6 / 9 / 3600
	if math.Abs(q.UpsetsPerSecond-wantQ) > 1e-12 {
		t.Errorf("quiet rate = %g, want %g", q.UpsetsPerSecond, wantQ)
	}
	if math.Abs(f.UpsetsPerSecond-wantF) > 1e-12 {
		t.Errorf("flare rate = %g, want %g", f.UpsetsPerSecond, wantF)
	}
	if f.UpsetsPerSecond/q.UpsetsPerSecond != 8 {
		t.Error("flare/quiet ratio should be 8")
	}
}

func TestPoissonMeanMatchesRate(t *testing.T) {
	src := BeamForObservation(500*time.Millisecond, 2)
	n := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		n += src.Poisson(500 * time.Millisecond)
	}
	mean := float64(n) / trials
	if mean < 0.9 || mean > 1.1 {
		t.Errorf("beam tuned for ~1 upset/observation, measured %.3f", mean)
	}
}

func TestNextArrivalExponential(t *testing.T) {
	src := NewSource(2.0, DefaultCrossSection(), 3) // 2 per second
	var total time.Duration
	const trials = 2000
	for i := 0; i < trials; i++ {
		total += src.NextArrival()
	}
	mean := total.Seconds() / trials
	if mean < 0.4 || mean > 0.6 {
		t.Errorf("mean inter-arrival %.3fs, want ~0.5s", mean)
	}
	idle := NewSource(0, DefaultCrossSection(), 4)
	if idle.NextArrival() < time.Duration(math.MaxInt64)/2 {
		t.Error("zero-rate source should never fire")
	}
}

func TestDrawCoversAllStrikeKinds(t *testing.T) {
	f := fpga.New(device.Tiny())
	b := fpga.NewConfigBuilder(device.Tiny())
	if err := f.FullConfigure(b.FullBitstream()); err != nil {
		t.Fatal(err)
	}
	// Exaggerate hidden cross-sections so the test sees every kind quickly.
	xs := CrossSection{ConfigWeight: 1, HalfLatchWeight: 50, FFWeight: 50, ControlWeight: 20000}
	src := NewSource(1, xs, 5)
	seen := map[StrikeKind]int{}
	for i := 0; i < 3000; i++ {
		st := src.Draw(f)
		seen[st.Kind]++
		switch st.Kind {
		case StrikeConfig:
			if int64(st.Addr) < 0 || int64(st.Addr) >= f.Geometry().TotalBits() {
				t.Fatal("config strike out of range")
			}
		case StrikeUserFF:
			if st.R < 0 || st.R >= device.Tiny().Rows || st.K >= device.FFsPerCLB {
				t.Fatal("FF strike out of range")
			}
		}
	}
	for _, k := range []StrikeKind{StrikeConfig, StrikeHalfLatch, StrikeUserFF, StrikeControl} {
		if seen[k] == 0 {
			t.Errorf("strike kind %v never drawn (%v)", k, seen)
		}
		if k.String() == "unknown" {
			t.Errorf("kind %v has no name", k)
		}
	}
}

func TestApplyStrikes(t *testing.T) {
	g := device.Tiny()
	b := fpga.NewConfigBuilder(g)
	f := fpga.New(g)
	if err := f.FullConfigure(b.FullBitstream()); err != nil {
		t.Fatal(err)
	}
	Apply(f, Strike{Kind: StrikeConfig, Addr: 100})
	if !f.ConfigMemory().Get(100) {
		t.Error("config strike did not land")
	}
	site := fpga.HalfLatchSite{Kind: fpga.HLCE, R: 1, C: 1, FF: 0}
	Apply(f, Strike{Kind: StrikeHalfLatch, Site: site})
	if f.HalfLatchValue(site) {
		t.Error("half-latch strike did not land")
	}
	Apply(f, Strike{Kind: StrikeUserFF, R: 2, C: 2, K: 1})
	if !f.FFValue(2, 2, 1) {
		t.Error("FF strike did not land")
	}
	Apply(f, Strike{Kind: StrikeControl})
	if !f.Unprogrammed() {
		t.Error("control strike did not land")
	}
}

// beamFixture runs a short sensitivity campaign and a beam run for one
// catalog design.
func beamFixture(t *testing.T, seed int64) (*board.SLAAC1V, map[device.BitAddr]bool) {
	t.Helper()
	c := designs.LFSRCluster("beam-lfsr", 2, 2, 8)
	p, err := place.Place(c, device.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	bd, err := board.New(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	opts := seu.DefaultOptions()
	opts.Sample = 1.0 // the correlation experiment needs the exhaustive map
	opts.Seed = seed
	opts.ClassifyPersistence = false
	rep, err := seu.Run(bd, opts)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []device.BitAddr
	for _, bit := range rep.SensitiveBits {
		addrs = append(addrs, bit.Addr)
	}
	return bd, SensitiveSet(addrs)
}

func TestBeamCorrelationIsHighButImperfect(t *testing.T) {
	bd, sensitive := beamFixture(t, 11)
	src := BeamForObservation(500*time.Millisecond, 12)
	opts := DefaultBeamOptions()
	opts.Observations = 250
	rep, err := RunBeam(bd, src, sensitive, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strikes == 0 || rep.OutputErrors == 0 {
		t.Fatalf("beam produced nothing: %s", rep)
	}
	// The simulator's sensitivity map is sampled (and hidden state exists),
	// so agreement must be high but below 100%. The paper measured 97.6%.
	corr := rep.Correlation()
	if corr < 0.5 || corr > 1.0 {
		t.Errorf("correlation = %.3f: %s", corr, rep)
	}
	if rep.BitstreamUpsetsFound == 0 {
		t.Error("readback never found a bitstream upset")
	}
	if rep.String() == "" {
		t.Error("empty report")
	}
	// The board must be pristine afterwards.
	if mism, _ := bd.StepN(30); mism != 0 {
		t.Error("board dirty after beam run")
	}
}

func TestRunBeamValidation(t *testing.T) {
	bd, sens := beamFixture(t, 13)
	src := BeamForObservation(time.Second, 14)
	if _, err := RunBeam(bd, src, sens, BeamOptions{}); err == nil {
		t.Fatal("zero options accepted")
	}
}
