package synth

import (
	"testing"
	"testing/quick"

	"repro/internal/netlist"
)

func simFor(t *testing.T, build func(b *netlist.Builder)) *netlist.Simulator {
	t.Helper()
	b := netlist.NewBuilder("t")
	build(b)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := netlist.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAddMatchesIntegers(t *testing.T) {
	const w = 12
	s := simFor(t, func(b *netlist.Builder) {
		x := b.Input("x", w)
		y := b.Input("y", w)
		sum, cout := Add(b, x, y, netlist.Invalid)
		b.Output("s", sum)
		b.Output("c", []netlist.SignalID{cout})
	})
	f := func(x, y uint16) bool {
		xv, yv := uint64(x)&(1<<w-1), uint64(y)&(1<<w-1)
		s.SetInput("x", xv)
		s.SetInput("y", yv)
		sum, _ := s.Output("s")
		c, _ := s.Output("c")
		total := xv + yv
		return sum == total&(1<<w-1) && c == total>>w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddUnequalWidthsZeroExtends(t *testing.T) {
	s := simFor(t, func(b *netlist.Builder) {
		x := b.Input("x", 8)
		y := b.Input("y", 3)
		sum, cout := Add(b, x, y, netlist.Invalid)
		b.Output("s", sum)
		b.Output("c", []netlist.SignalID{cout})
	})
	s.SetInput("x", 250)
	s.SetInput("y", 7)
	sum, _ := s.Output("s")
	c, _ := s.Output("c")
	if total := sum | c<<8; total != 257 {
		t.Errorf("250+7 = %d", total)
	}
}

func TestAddWithCarryIn(t *testing.T) {
	s := simFor(t, func(b *netlist.Builder) {
		x := b.Input("x", 4)
		y := b.Input("y", 4)
		ci := b.Input("ci", 1)
		sum, cout := Add(b, x, y, ci[0])
		b.Output("s", sum)
		b.Output("c", []netlist.SignalID{cout})
	})
	s.SetInput("x", 7)
	s.SetInput("y", 8)
	s.SetInput("ci", 1)
	sum, _ := s.Output("s")
	if sum != 0 {
		t.Errorf("7+8+1 low bits = %d, want 0", sum)
	}
	if c, _ := s.Output("c"); c != 1 {
		t.Error("carry out missing")
	}
}

func TestAddTrunc(t *testing.T) {
	s := simFor(t, func(b *netlist.Builder) {
		x := b.Input("x", 6)
		y := b.Input("y", 6)
		b.Output("s", AddTrunc(b, x, y))
	})
	s.SetInput("x", 60)
	s.SetInput("y", 10)
	if sum, _ := s.Output("s"); sum != (60+10)&63 {
		t.Errorf("modular add = %d", sum)
	}
}

func TestMultiplyMatchesIntegers(t *testing.T) {
	const w = 8
	s := simFor(t, func(b *netlist.Builder) {
		x := b.Input("x", w)
		y := b.Input("y", w)
		b.Output("p", Multiply(b, x, y))
	})
	f := func(x, y uint8) bool {
		s.SetInput("x", uint64(x))
		s.SetInput("y", uint64(y))
		p, _ := s.Output("p")
		return p == uint64(x)*uint64(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultiplyAsymmetricWidths(t *testing.T) {
	s := simFor(t, func(b *netlist.Builder) {
		x := b.Input("x", 10)
		y := b.Input("y", 3)
		b.Output("p", Multiply(b, x, y))
	})
	s.SetInput("x", 1000)
	s.SetInput("y", 7)
	if p, _ := s.Output("p"); p != 7000 {
		t.Errorf("1000*7 = %d", p)
	}
}

func TestMultiplyDegenerate(t *testing.T) {
	b := netlist.NewBuilder("deg")
	if got := Multiply(b, nil, nil); got != nil {
		t.Error("empty multiply should be nil")
	}
}

func TestCounterCounts(t *testing.T) {
	const w = 6
	s := simFor(t, func(b *netlist.Builder) {
		b.Output("q", Counter(b, w))
	})
	for i := uint64(0); i < 80; i++ {
		q, _ := s.Output("q")
		if q != i&(1<<w-1) {
			t.Fatalf("cycle %d: counter = %d", i, q)
		}
		s.Step()
	}
}

func TestCounterCE(t *testing.T) {
	s := simFor(t, func(b *netlist.Builder) {
		ce := b.Input("ce", 1)
		b.Output("q", CounterCE(b, 4, ce[0]))
	})
	s.SetInput("ce", 0)
	s.StepN(5)
	if q, _ := s.Output("q"); q != 0 {
		t.Fatal("counter advanced with CE low")
	}
	s.SetInput("ce", 1)
	s.StepN(3)
	if q, _ := s.Output("q"); q != 3 {
		t.Fatalf("counter = %d after 3 enabled cycles", q)
	}
}

func TestRegisterAndRegisterCE(t *testing.T) {
	s := simFor(t, func(b *netlist.Builder) {
		x := b.Input("x", 4)
		ce := b.Input("ce", 1)
		b.Output("r", Register(b, x))
		b.Output("rce", RegisterCE(b, x, ce[0]))
	})
	s.SetInput("x", 9)
	s.SetInput("ce", 0)
	s.Step()
	if r, _ := s.Output("r"); r != 9 {
		t.Error("Register did not capture")
	}
	if r, _ := s.Output("rce"); r != 0 {
		t.Error("RegisterCE captured with CE low")
	}
	s.SetInput("ce", 1)
	s.Step()
	if r, _ := s.Output("rce"); r != 9 {
		t.Error("RegisterCE did not capture with CE high")
	}
}

func TestEqualComparator(t *testing.T) {
	s := simFor(t, func(b *netlist.Builder) {
		x := b.Input("x", 5)
		y := b.Input("y", 5)
		b.Output("eq", []netlist.SignalID{Equal(b, x, y)})
	})
	f := func(x, y uint8) bool {
		xv, yv := uint64(x&31), uint64(y&31)
		s.SetInput("x", xv)
		s.SetInput("y", yv)
		eq, _ := s.Output("eq")
		return (eq == 1) == (xv == yv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReduceOps(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 5, 8, 13} {
		s := simFor(t, func(b *netlist.Builder) {
			x := b.Input("x", w)
			b.Output("or", []netlist.SignalID{OrReduce(b, x)})
			b.Output("and", []netlist.SignalID{AndReduce(b, x)})
		})
		all := uint64(1)<<uint(w) - 1
		for _, v := range []uint64{0, 1, all, all >> 1, 0b1010 & all} {
			s.SetInput("x", v)
			or, _ := s.Output("or")
			and, _ := s.Output("and")
			if (or == 1) != (v != 0) {
				t.Errorf("w=%d v=%b: or=%d", w, v, or)
			}
			if (and == 1) != (v == all) {
				t.Errorf("w=%d v=%b: and=%d", w, v, and)
			}
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	s := simFor(t, func(b *netlist.Builder) {
		b.Output("or", []netlist.SignalID{OrReduce(b, nil)})
		b.Output("and", []netlist.SignalID{AndReduce(b, nil)})
	})
	if or, _ := s.Output("or"); or != 0 {
		t.Error("empty OR should be 0")
	}
	if and, _ := s.Output("and"); and != 1 {
		t.Error("empty AND should be 1")
	}
}

func TestConstBus(t *testing.T) {
	s := simFor(t, func(b *netlist.Builder) {
		b.Output("k", ConstBus(b, 8, 0xA5))
	})
	if k, _ := s.Output("k"); k != 0xA5 {
		t.Errorf("ConstBus = %#x", k)
	}
}
