// Package synth provides arithmetic and structural circuit constructors on
// top of the netlist builder: ripple-carry adders, array multipliers,
// counters, comparators, and register pipelines. The paper's benchmark
// designs (internal/designs) are composed from these blocks.
package synth

import (
	"repro/internal/netlist"
)

// Add builds an n-bit ripple-carry adder (full adders from XOR3/MAJ3 LUTs,
// the canonical Virtex mapping). Operands may differ in width; the shorter
// is zero-extended. Returns the sum (width = max) and the carry out.
func Add(b *netlist.Builder, x, y []netlist.SignalID, cin netlist.SignalID) (sum []netlist.SignalID, cout netlist.SignalID) {
	n := len(x)
	if len(y) > n {
		n = len(y)
	}
	zero := netlist.Invalid
	get := func(bus []netlist.SignalID, i int) netlist.SignalID {
		if i < len(bus) {
			return bus[i]
		}
		if zero == netlist.Invalid {
			zero = b.Const(false)
		}
		return zero
	}
	carry := cin
	if carry == netlist.Invalid {
		carry = b.Const(false)
	}
	sum = make([]netlist.SignalID, n)
	for i := 0; i < n; i++ {
		xi, yi := get(x, i), get(y, i)
		sum[i] = b.Xor3(xi, yi, carry)
		carry = b.Maj3(xi, yi, carry)
	}
	return sum, carry
}

// AddTrunc adds and keeps only the low len-x bits (modular add).
func AddTrunc(b *netlist.Builder, x, y []netlist.SignalID) []netlist.SignalID {
	sum, _ := Add(b, x, y, netlist.Invalid)
	return sum[:len(x)]
}

// Multiply builds a combinational array multiplier: len(x)+len(y) output
// bits from AND partial products reduced with ripple adders — the
// data-path-dominated structure of the paper's MULT designs.
func Multiply(b *netlist.Builder, x, y []netlist.SignalID) []netlist.SignalID {
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	// Row 0: x * y[0].
	acc := make([]netlist.SignalID, len(x))
	for i := range x {
		acc[i] = b.And(x[i], y[0])
	}
	var result []netlist.SignalID
	for j := 1; j < len(y); j++ {
		// result bit j-1 is final.
		result = append(result, acc[0])
		hi := acc[1:]
		row := make([]netlist.SignalID, len(x))
		for i := range x {
			row[i] = b.And(x[i], y[j])
		}
		sum, cout := Add(b, hi, row, netlist.Invalid)
		acc = append(sum, cout)
	}
	result = append(result, acc...)
	return result
}

// Register pipelines a bus through one FF stage (init 0).
func Register(b *netlist.Builder, bus []netlist.SignalID) []netlist.SignalID {
	out := make([]netlist.SignalID, len(bus))
	for i, s := range bus {
		out[i] = b.FF(s, false)
	}
	return out
}

// RegisterCE pipelines a bus through FFs sharing a clock enable.
func RegisterCE(b *netlist.Builder, bus []netlist.SignalID, ce netlist.SignalID) []netlist.SignalID {
	out := make([]netlist.SignalID, len(bus))
	for i, s := range bus {
		out[i] = b.FFCE(s, ce, false)
	}
	return out
}

// Counter builds an n-bit free-running binary counter (state feedback
// through an incrementer — the paper's Fig. 7 structure whose high-bit
// upset produces persistent errors). Returns the register outputs.
func Counter(b *netlist.Builder, n int) []netlist.SignalID {
	// Carry chain c_i = AND(q_0..q_{i-1}); d_i = q_i XOR c_i. The state
	// signals are allocated up front and bound to FFs after the increment
	// logic that reads them exists (BindFF closes the loop).
	q := make([]netlist.SignalID, n)
	for i := range q {
		q[i] = b.NewSignal()
	}
	carry := netlist.Invalid
	for i := 0; i < n; i++ {
		var di netlist.SignalID
		if i == 0 {
			di = b.Not(q[0])
			carry = q[0]
		} else {
			di = b.Xor(q[i], carry)
			carry = b.And(carry, q[i])
		}
		b.BindFF(di, q[i], false)
	}
	return q
}

// CounterCE builds an n-bit counter that advances only when ce is high.
func CounterCE(b *netlist.Builder, n int, ce netlist.SignalID) []netlist.SignalID {
	q := make([]netlist.SignalID, n)
	for i := range q {
		q[i] = b.NewSignal()
	}
	carry := netlist.Invalid
	for i := 0; i < n; i++ {
		var di netlist.SignalID
		if i == 0 {
			di = b.Not(q[0])
			carry = q[0]
		} else {
			di = b.Xor(q[i], carry)
			carry = b.And(carry, q[i])
		}
		b.BindFFCE(di, ce, q[i], false)
	}
	return q
}

// Equal builds a bus equality comparator.
func Equal(b *netlist.Builder, x, y []netlist.SignalID) netlist.SignalID {
	if len(x) != len(y) {
		panic("synth: Equal on unequal widths")
	}
	var diffs []netlist.SignalID
	for i := range x {
		diffs = append(diffs, b.Xor(x[i], y[i]))
	}
	return b.Not(OrReduce(b, diffs))
}

// OrReduce ORs a bus down to one bit.
func OrReduce(b *netlist.Builder, in []netlist.SignalID) netlist.SignalID {
	switch len(in) {
	case 0:
		return b.Const(false)
	case 1:
		return in[0]
	}
	var next []netlist.SignalID
	i := 0
	for ; i+2 <= len(in); i += 2 {
		next = append(next, b.Or(in[i], in[i+1]))
	}
	if i < len(in) {
		next = append(next, in[i])
	}
	return OrReduce(b, next)
}

// AndReduce ANDs a bus down to one bit.
func AndReduce(b *netlist.Builder, in []netlist.SignalID) netlist.SignalID {
	switch len(in) {
	case 0:
		return b.Const(true)
	case 1:
		return in[0]
	}
	var next []netlist.SignalID
	i := 0
	for ; i+4 <= len(in); i += 4 {
		next = append(next, b.And4(in[i], in[i+1], in[i+2], in[i+3]))
	}
	switch len(in) - i {
	case 3:
		next = append(next, b.And3(in[i], in[i+1], in[i+2]))
	case 2:
		next = append(next, b.And(in[i], in[i+1]))
	case 1:
		next = append(next, in[i])
	}
	return AndReduce(b, next)
}

// ConstBus materializes a constant of the given width.
func ConstBus(b *netlist.Builder, width int, v uint64) []netlist.SignalID {
	out := make([]netlist.SignalID, width)
	for i := range out {
		out[i] = b.Const(v&(1<<uint(i)) != 0)
	}
	return out
}

// ShiftChain registers in through n flip-flops and returns all n taps (tap
// i is in delayed by i+1 cycles). FF-dense delay structures like this fill
// CLB columns with state, which is what the conformance harness's random
// designs use it for.
func ShiftChain(b *netlist.Builder, in netlist.SignalID, n int) []netlist.SignalID {
	taps := make([]netlist.SignalID, n)
	cur := in
	for i := range taps {
		cur = b.FF(cur, false)
		taps[i] = cur
	}
	return taps
}
