package tmr

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/synth"
)

func TestTriplicatePreservesFunction(t *testing.T) {
	c := designs.Mult("m", 3)
	tm, err := Triplicate(c)
	if err != nil {
		t.Fatal(err)
	}
	st, stTMR := c.Stats(), tm.Stats()
	if stTMR.FFs != 3*st.FFs {
		t.Errorf("TMR FFs = %d, want %d", stTMR.FFs, 3*st.FFs)
	}
	if stTMR.LUTs < 3*st.LUTs {
		t.Errorf("TMR LUTs = %d, want >= %d (copies + voters)", stTMR.LUTs, 3*st.LUTs)
	}
	simA, err := netlist.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	simB, err := netlist.NewSimulator(tm)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		a, bv := uint64(i*5%8), uint64(i*3%8)
		simA.SetInput("A", a)
		simA.SetInput("B", bv)
		simB.SetInput("A", a)
		simB.SetInput("B", bv)
		simA.Step()
		simB.Step()
		va, _ := simA.Output("O")
		vb, _ := simB.Output("O")
		if va != vb {
			t.Fatalf("cycle %d: plain=%d tmr=%d", i, va, vb)
		}
	}
}

func TestTriplicateWithFeedbackAndCE(t *testing.T) {
	b := netlist.NewBuilder("ctr")
	ce := b.Input("ce", 1)
	ceb := b.Buf(ce[0])
	q := synth.CounterCE(b, 4, ceb)
	b.Output("O", q)
	c := b.MustBuild()
	tm, err := Triplicate(c)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netlist.NewSimulator(tm)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetInput("ce", 1)
	sim.StepN(5)
	if v, _ := sim.Output("O"); v != 5 {
		t.Fatalf("TMR counter = %d, want 5", v)
	}
}

func TestTMRMasksSingleCopyUpset(t *testing.T) {
	// Place the TMR'd design and corrupt one copy's LUT: the voted output
	// must stay correct.
	base := netlist.NewBuilder("ff")
	in := base.Input("A", 2)
	base.Output("O", []netlist.SignalID{base.FF(base.Xor(in[0], in[1]), false)})
	c := base.MustBuild()
	tm, err := Triplicate(c)
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(tm, device.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if err := place.Verify(p, 50, 33); err != nil {
		t.Fatal(err)
	}
	h, err := place.NewHarness(p)
	if err != nil {
		t.Fatal(err)
	}
	// Find a registered (copy) site and corrupt its LUT truth table
	// completely.
	var hit bool
	for _, s := range p.Sites {
		if !s.Registered {
			continue
		}
		g := p.Geom
		for i := 0; i < device.LUTBits; i++ {
			h.F.InjectBit(g.LUTBitAddr(s.R, s.C, s.O, i))
		}
		hit = true
		break
	}
	if !hit {
		t.Fatal("no registered site found")
	}
	// A single-copy upset must not change the voted output: O is the
	// registered XOR of the two input bits.
	for i := 0; i < 20; i++ {
		x := uint64(i % 4)
		h.SetInput("A", x)
		h.Step()
		got, _ := h.Output("O")
		exp := (x & 1) ^ ((x >> 1) & 1)
		if got != exp {
			t.Fatalf("cycle %d: voted output %d, want %d (TMR failed to mask)", i, got, exp)
		}
	}
}

func TestTriplicateRejectsInvalid(t *testing.T) {
	bad := &netlist.Circuit{Name: "bad", NumSignals: 1}
	if _, err := Triplicate(bad); err == nil {
		t.Fatal("invalid circuit accepted")
	}
}

func TestSelectiveIdentityWhenNothingProtected(t *testing.T) {
	c := designs.Mult("m", 3)
	out, err := Selective(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Nodes) != len(c.Nodes) {
		t.Fatalf("empty protection changed the circuit: %d vs %d nodes", len(out.Nodes), len(c.Nodes))
	}
}

func TestSelectivePreservesFunction(t *testing.T) {
	c := designs.Mult("m", 3)
	// Protect roughly half the nodes (the even ones).
	protect := map[int]bool{}
	for i := range c.Nodes {
		if i%2 == 0 {
			protect[i] = true
		}
	}
	st, err := Selective(c, protect)
	if err != nil {
		t.Fatal(err)
	}
	p, total := ProtectedCount(c, protect)
	if p == 0 || p >= total {
		t.Fatalf("protection accounting broken: %d/%d", p, total)
	}
	simA, err := netlist.NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	simB, err := netlist.NewSimulator(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		a, bv := uint64(i*3%8), uint64(i*5%8)
		simA.SetInput("A", a)
		simB.SetInput("A", a)
		simA.SetInput("B", bv)
		simB.SetInput("B", bv)
		simA.Step()
		simB.Step()
		va, _ := simA.Output("O")
		vb, _ := simB.Output("O")
		if va != vb {
			t.Fatalf("cycle %d: plain=%d selective=%d", i, va, vb)
		}
	}
	// Area cost is between plain and full TMR.
	full, err := Triplicate(c)
	if err != nil {
		t.Fatal(err)
	}
	if !(st.Stats().LUTs > c.Stats().LUTs && st.Stats().LUTs < full.Stats().LUTs) {
		t.Errorf("selective LUTs %d not between plain %d and full %d",
			st.Stats().LUTs, c.Stats().LUTs, full.Stats().LUTs)
	}
}

func TestSelectiveProtectsFeedback(t *testing.T) {
	// Protect every FF of a counter; an upset inside one protected copy
	// must be voted out.
	b := netlist.NewBuilder("ctr")
	q := synth.Counter(b, 4)
	b.Output("O", q)
	c := b.MustBuild()
	protect := map[int]bool{}
	for i, n := range c.Nodes {
		_ = n
		protect[i] = true // protect the whole counter (all nodes)
	}
	st, err := Selective(c, protect)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netlist.NewSimulator(st)
	if err != nil {
		t.Fatal(err)
	}
	sim.StepN(9)
	if v, _ := sim.Output("O"); v != 9 {
		t.Fatalf("selective-TMR counter = %d, want 9", v)
	}
}
