package tmr

import (
	"fmt"

	"repro/internal/netlist"
)

// Selective builds the partially-hardened version of a circuit: only the
// nodes in `protect` (e.g. the sensitive cross-section the SEU simulator's
// correlation table identifies) are triplicated; majority voters are placed
// exactly where a protected signal leaves the protected region — at an
// unprotected consumer or at an output port. This is the paper's
// "Selective Triple Module Redundancy ... applied to the sensitive cross
// section", which buys most of full TMR's protection at a fraction of its
// ~3x area cost.
func Selective(c *netlist.Circuit, protect map[int]bool) (*netlist.Circuit, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(protect) == 0 {
		cp := *c
		return &cp, nil
	}
	b := netlist.NewBuilder(c.Name + " sTMR")
	// Shared inputs.
	single := make(map[netlist.SignalID]netlist.SignalID, c.NumSignals)
	triple := make(map[netlist.SignalID][3]netlist.SignalID)
	for _, p := range c.Inputs {
		bits := b.Input(p.Name, p.Width())
		for i, orig := range p.Bits {
			single[orig] = bits[i]
		}
	}
	// Pre-allocate node outputs: protected nodes get three copies,
	// unprotected one.
	for i, n := range c.Nodes {
		if protect[i] {
			var t [3]netlist.SignalID
			for k := 0; k < 3; k++ {
				t[k] = b.NewSignal()
			}
			triple[n.Out] = t
		} else {
			single[n.Out] = b.NewSignal()
		}
	}
	// voted returns (and memoizes) the majority vote of a protected signal
	// for consumption outside the protected region.
	voters := make(map[netlist.SignalID]netlist.SignalID)
	voted := func(orig netlist.SignalID) netlist.SignalID {
		if v, ok := voters[orig]; ok {
			return v
		}
		t := triple[orig]
		v := b.Maj3(t[0], t[1], t[2])
		voters[orig] = v
		return v
	}
	// lookup resolves an input signal for copy k of a protected node
	// (k = 0..2) or for an unprotected node (k = -1).
	lookup := func(s netlist.SignalID, k int) netlist.SignalID {
		if t, ok := triple[s]; ok {
			if k >= 0 {
				return t[k]
			}
			return voted(s)
		}
		return single[s]
	}
	for i, n := range c.Nodes {
		copies := 1
		if protect[i] {
			copies = 3
		}
		for k := 0; k < copies; k++ {
			kk := k
			if copies == 1 {
				kk = -1
			}
			var out netlist.SignalID
			if protect[i] {
				out = triple[n.Out][k]
			} else {
				out = single[n.Out]
			}
			switch n.Kind {
			case netlist.NodeLUT:
				ins := make([]netlist.SignalID, len(n.In))
				for j, s := range n.In {
					ins[j] = lookup(s, kk)
				}
				b.BindLUT(n.Truth, ins, out)
			case netlist.NodeFF:
				if n.HasCE {
					b.BindFFCE(lookup(n.In[0], kk), lookup(n.In[1], kk), out, n.Init)
				} else {
					b.BindFF(lookup(n.In[0], kk), out, n.Init)
				}
			case netlist.NodeConst:
				b.BindConst(n.Init, out)
			}
		}
	}
	for _, p := range c.Outputs {
		bits := make([]netlist.SignalID, p.Width())
		for i, s := range p.Bits {
			bits[i] = lookup(s, -1)
		}
		b.Output(p.Name, bits)
	}
	out, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("tmr: selective: %w", err)
	}
	return out, nil
}

// ProtectedCount reports how many of a circuit's nodes a protection set
// covers (diagnostics for area-cost accounting).
func ProtectedCount(c *netlist.Circuit, protect map[int]bool) (protected, total int) {
	for i := range c.Nodes {
		if protect[i] {
			protected++
		}
	}
	return protected, len(c.Nodes)
}
