// Package tmr implements triple-module redundancy, the mitigation the paper
// recommends applying — selectively, guided by the SEU simulator's
// sensitivity map — to a design's sensitive cross-section: "Selective
// Triple Module Redundancy (TMR) or other mitigation techniques can then be
// selectively applied to the sensitive cross section" (§III-A).
package tmr

import (
	"fmt"

	"repro/internal/netlist"
)

// Triplicate builds the full-TMR version of a circuit: three copies share
// the input ports; every output bit is the 2-of-3 majority of the copies.
// A single configuration upset inside one copy cannot corrupt a voted
// output.
func Triplicate(c *netlist.Circuit) (*netlist.Circuit, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	b := netlist.NewBuilder(c.Name + " TMR")
	// Shared inputs.
	inMap := make(map[netlist.SignalID][3]netlist.SignalID)
	for _, p := range c.Inputs {
		bits := b.Input(p.Name, p.Width())
		for i, orig := range p.Bits {
			inMap[orig] = [3]netlist.SignalID{bits[i], bits[i], bits[i]}
		}
	}
	// Three copies of every node.
	sigMap := make(map[netlist.SignalID][3]netlist.SignalID, c.NumSignals)
	for k, v := range inMap {
		sigMap[k] = v
	}
	lookup := func(s netlist.SignalID, copyIdx int) netlist.SignalID {
		return sigMap[s][copyIdx]
	}
	// Nodes may reference signals defined by later nodes (feedback through
	// FFs), so pre-allocate all node output signals.
	for _, n := range c.Nodes {
		var trip [3]netlist.SignalID
		for k := 0; k < 3; k++ {
			trip[k] = b.NewSignal()
		}
		sigMap[n.Out] = trip
	}
	for _, n := range c.Nodes {
		for k := 0; k < 3; k++ {
			out := sigMap[n.Out][k]
			switch n.Kind {
			case netlist.NodeLUT:
				ins := make([]netlist.SignalID, len(n.In))
				for i, s := range n.In {
					ins[i] = lookup(s, k)
				}
				b.BindLUT(n.Truth, ins, out)
			case netlist.NodeFF:
				if n.HasCE {
					b.BindFFCE(lookup(n.In[0], k), lookup(n.In[1], k), out, n.Init)
				} else {
					b.BindFF(lookup(n.In[0], k), out, n.Init)
				}
			case netlist.NodeConst:
				b.BindConst(n.Init, out)
			}
		}
	}
	// Voted outputs.
	for _, p := range c.Outputs {
		voted := make([]netlist.SignalID, p.Width())
		for i, s := range p.Bits {
			t := sigMap[s]
			voted[i] = b.Maj3(t[0], t[1], t[2])
		}
		b.Output(p.Name, voted)
	}
	out, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("tmr: %w", err)
	}
	return out, nil
}
