package tmr

import (
	"testing"

	"repro/internal/board"
	"repro/internal/device"
	"repro/internal/netlist"
	"repro/internal/place"
)

const maj3Truth uint16 = 0xE8E8

func countVoters(c *netlist.Circuit) int {
	n := 0
	for _, node := range c.Nodes {
		if node.Kind == netlist.NodeLUT && node.Truth == maj3Truth {
			n++
		}
	}
	return n
}

// chainCircuit is the protect-set test fixture:
//
//	node 0: x = in0 XOR in1
//	node 1: q = FF(x)
//	node 2: y = NOT q
//	outputs O = [q, y]
func chainCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder("chain")
	in := b.Input("in", 2)
	x := b.LUT(0x6666, in[0], in[1])
	q := b.FF(x, false)
	y := b.LUT(0x5555, q)
	b.Output("O", []netlist.SignalID{q, y})
	return b.MustBuild()
}

// TestSelectiveVoterPlacement pins where Selective inserts majority voters:
// exactly at signals leaving the protected region (an unprotected consumer
// or an output port), memoized per signal, and never on protected-to-
// protected edges — while preserving function for every protect set.
func TestSelectiveVoterPlacement(t *testing.T) {
	cases := []struct {
		name    string
		protect map[int]bool
		voters  int
		ffs     int
	}{
		// No protection: circuit passes through untouched.
		{"none", map[int]bool{}, 0, 1},
		// x leaves the region into the unprotected FF: one voter.
		{"lut-only", map[int]bool{0: true}, 1, 1},
		// q feeds both the NOT and the output port: one memoized voter.
		{"ff-only", map[int]bool{1: true}, 1, 3},
		// q→y stays inside the region (no voter); q and y each cross to an
		// output port: two voters.
		{"ff-and-not", map[int]bool{1: true, 2: true}, 2, 3},
		// Fully protected: only the two output-port voters remain.
		{"all", map[int]bool{0: true, 1: true, 2: true}, 2, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := chainCircuit(t)
			s, err := Selective(c, tc.protect)
			if err != nil {
				t.Fatal(err)
			}
			if got := countVoters(s); got != tc.voters {
				t.Errorf("voters = %d, want %d", got, tc.voters)
			}
			if got := s.Stats().FFs; got != tc.ffs {
				t.Errorf("FFs = %d, want %d", got, tc.ffs)
			}
			simA, err := netlist.NewSimulator(c)
			if err != nil {
				t.Fatal(err)
			}
			simB, err := netlist.NewSimulator(s)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				v := uint64(i*7 % 4)
				simA.SetInput("in", v)
				simB.SetInput("in", v)
				simA.Step()
				simB.Step()
				va, _ := simA.Output("O")
				vb, _ := simB.Output("O")
				if va != vb {
					t.Fatalf("cycle %d: plain=%d selective=%d", i, va, vb)
				}
			}
		})
	}
}

// TestSelectiveVoterMinority exercises the voter on the fabric: with one FF
// copy of a protected triple corrupted (a minority), the voted output must
// stay correct; with two copies corrupted (a majority), the voter must
// produce the wrong value. This is the exact failure-masking contract
// partial TMR buys for the protected cross-section.
func TestSelectiveVoterMinority(t *testing.T) {
	b := netlist.NewBuilder("vote1")
	in := b.Input("in", 1)
	d := b.Buf(in[0])
	q := b.FF(d, false)
	b.Output("O", []netlist.SignalID{q})
	c := b.MustBuild()

	s, err := Selective(c, map[int]bool{1: true}) // protect the FF
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().FFs; got != 3 {
		t.Fatalf("FF copies = %d, want 3", got)
	}
	p, err := place.Place(s, device.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	bd, err := board.New(p, 11)
	if err != nil {
		t.Fatal(err)
	}

	// Locate the three placed FF copies.
	var ffSites []place.Site
	for _, site := range p.Sites {
		if site.Node >= 0 && s.Nodes[site.Node].Kind == netlist.NodeFF {
			ffSites = append(ffSites, site)
		}
	}
	if len(ffSites) != 3 {
		t.Fatalf("placed FF copies = %d, want 3", len(ffSites))
	}

	bd.StepN(4)
	if !bd.Match() {
		t.Fatal("boards out of lock-step before any fault")
	}

	flip := func(site place.Site) {
		v := bd.DUT.FFValue(site.R, site.C, site.O)
		bd.DUT.SetFFValue(site.R, site.C, site.O, !v)
	}

	// Minority: one corrupted copy is outvoted.
	flip(ffSites[0])
	bd.DUT.Settle()
	if !bd.Match() {
		t.Fatal("voter failed to mask a single corrupted copy")
	}
	// The upset also washes out at the next clock (the copy reloads from
	// the shared D input), so lock-step continues.
	if mism, _ := bd.StepN(4); mism != 0 {
		t.Fatalf("%d mismatching cycles after masked upset", mism)
	}

	// Majority: two corrupted copies outvote the survivor.
	flip(ffSites[0])
	flip(ffSites[1])
	bd.DUT.Settle()
	if bd.Match() {
		t.Fatal("voter produced the correct value with two of three copies corrupted")
	}
	// State upsets are transient: the next clock reloads all copies.
	if mism, _ := bd.StepN(4); mism != 0 {
		t.Fatalf("%d mismatching cycles after transient majority upset", mism)
	}
}
