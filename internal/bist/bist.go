// Package bist implements the paper's permanent-fault detection and
// isolation strategy (§II-B, Fig. 5): coverage-optimized built-in self-test
// configurations that exercise the fabric and are read out through the
// configuration interface, with the wire test driven by repeated partial
// reconfiguration of a single design. On the flight system these diagnostic
// configurations share flash space with mission algorithms, so minimizing
// the number of distinct configurations matters; the wire test needs one
// design plus a sequence of partial reconfigurations.
package bist

import (
	"context"
	"fmt"

	"repro/internal/device"
	"repro/internal/fpga"
)

// WireFault is one isolated permanent routing fault.
type WireFault struct {
	Seg device.Segment
	// StuckAt is the detected polarity.
	StuckAt bool
}

func (w WireFault) String() string {
	v := 0
	if w.StuckAt {
		v = 1
	}
	return fmt.Sprintf("%v stuck-at-%d", w.Seg, v)
}

// WireTestReport summarizes a wire-test campaign.
type WireTestReport struct {
	// WirDirections lists the slot groups tested.
	SlotsTested []int
	// Reconfigurations counts partial-reconfiguration steps (the paper's
	// design needed 20 to cover its 80 output-mux wires).
	Reconfigurations int
	// Readbacks counts capture passes (paper: 40).
	Readbacks int
	// WiresTested counts distinct wire segments exercised.
	WiresTested int
	Faults      []WireFault
}

func (r *WireTestReport) String() string {
	return fmt.Sprintf("wire BIST: %d slots x chains, %d partial reconfigurations, %d readbacks, %d wires tested, %d faults",
		len(r.SlotsTested), r.Reconfigurations, r.Readbacks, r.WiresTested, len(r.Faults))
}

// wirePlan describes the chain orientation for one testable slot group:
// west wires chain west-to-east along rows, east wires east-to-west, north
// wires north-to-south along columns, south wires south-to-north.
type wirePlan struct {
	slot    int  // input-mux slot under test (per output o)
	along   bool // true: chains run along rows; false: along columns
	forward bool // true: index increases away from the source edge
}

// WireTest runs the paper's wire test on a device: one base design,
// repeatedly partially reconfigured to select each wire of the tested
// groups, with a clock step and a state capture per polarity. Detected
// stuck-at faults are isolated to (CLB, slot) segments. The test loads its
// own configurations; the caller reloads the mission design afterwards,
// exactly as the flight procedure does.
func WireTest(f *fpga.FPGA, port *fpga.Port) (*WireTestReport, error) {
	return WireTestContext(context.Background(), f, port)
}

// WireTestContext is WireTest with cancellation: ctx is checked between
// wire classes, so an aborted test never stops mid-reconfiguration.
func WireTestContext(ctx context.Context, f *fpga.FPGA, port *fpga.Port) (*WireTestReport, error) {
	rep := &WireTestReport{}
	// Test the four neighbour-wire groups for each of the four CLB
	// outputs: 16 wire classes, covering every single-length wire the
	// fabric has (the analogue of the paper's 80-of-96 output-mux wires).
	for _, plan := range []wirePlan{
		{slot: 4, along: true, forward: true},   // west wires, chain W->E
		{slot: 8, along: true, forward: false},  // east wires, chain E->W
		{slot: 12, along: false, forward: true}, // north wires, chain N->S
		{slot: 16, along: false, forward: false},
	} {
		for o := 0; o < device.OutputsPerCLB; o++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := wireTestOne(f, port, plan, o, rep); err != nil {
				return nil, err
			}
		}
	}
	return rep, nil
}

// wireTestOne tests one (direction, output) wire class.
func wireTestOne(f *fpga.FPGA, port *fpga.Port, plan wirePlan, o int, rep *WireTestReport) error {
	g := f.Geometry()
	slot := plan.slot + o
	rep.SlotsTested = append(rep.SlotsTested, slot)

	// Build the test configuration: source line holds a constant, every
	// following line inverts its predecessor through the wire under test,
	// with the FF capturing the chain value.
	b := fpga.NewConfigBuilder(g)
	lines, depth := g.Cols, g.Rows // row chains: line = row? see below
	if plan.along {
		lines, depth = g.Rows, g.Cols
	}
	for line := 0; line < lines; line++ {
		for d := 0; d < depth; d++ {
			pos := d
			if !plan.forward {
				pos = depth - 1 - d
			}
			r, c := line, pos
			if !plan.along {
				r, c = pos, line
			}
			if d == 0 {
				b.SetLUT(r, c, o, fpga.TruthZero) // source constant
			} else {
				b.SetLUT(r, c, o, fpga.TruthNot)
				for in := 0; in < device.LUTInputs; in++ {
					b.RouteInput(r, c, o, in, slot)
				}
			}
			b.SetFF(r, c, o, false, device.CEConstOne, 0, false)
			// The FF samples the chain; output stays combinational so the
			// chain itself is unregistered.
		}
	}
	// First wire class loads the full design; each subsequent class is a
	// partial reconfiguration touching only the frames that differ — the
	// paper's "repeatedly partially reconfigured" single test design.
	if rep.Reconfigurations == 0 {
		if err := port.FullConfigure(b.FullBitstream()); err != nil {
			return err
		}
	} else {
		for _, fr := range f.ConfigMemory().DiffFrames(b.Memory()) {
			if err := port.WriteFrame(b.Memory().Frame(fr)); err != nil {
				return err
			}
		}
		f.Reset() // re-init the capture FFs for the new wire selection
	}
	rep.Reconfigurations++ // configuration step for this wire selection

	for _, sourceOne := range []bool{false, true} {
		if sourceOne {
			// Partial reconfiguration flips only the source line's LUTs to
			// constant one — the "next polarity" step.
			var frames []int
			seen := map[int]bool{}
			for line := 0; line < lines; line++ {
				r, c := line, 0
				if !plan.forward {
					r, c = line, depth-1
				}
				if !plan.along {
					r, c = c, r
				}
				for i := 0; i < device.LUTBits; i++ {
					a := g.LUTBitAddr(r, c, o, i)
					f.ConfigMemory().Set(a, true)
					if fr := a.Frame(g); !seen[fr] {
						seen[fr] = true
						frames = append(frames, fr)
					}
				}
			}
			for _, fr := range frames {
				if err := port.WriteFrame(f.ConfigMemory().Frame(fr)); err != nil {
					return err
				}
			}
			rep.Reconfigurations++
		}
		f.Step() // one clock: FFs capture the settled chain
		rep.Readbacks++
		// Capture and scan each chain for the first deviation.
		for line := 0; line < lines; line++ {
			for d := 1; d < depth; d++ {
				pos := d
				if !plan.forward {
					pos = depth - 1 - d
				}
				r, c := line, pos
				if !plan.along {
					r, c = pos, line
				}
				got, err := port.CaptureFF(r, c, o)
				if err != nil {
					return err
				}
				want := expectedChainValue(d, sourceOne)
				if got != want {
					// The wire feeding this CLB is the faulty segment; the
					// observed (wrong) input polarity names the stuck level.
					rep.Faults = append(rep.Faults, WireFault{
						Seg:     device.Segment{R: r, C: c, S: slot},
						StuckAt: !got, // inverter: output got => input was !got
					})
					break // further deviations downstream are shadowed
				}
			}
		}
	}
	rep.WiresTested += (depth - 1) * lines
	return nil
}

// expectedChainValue returns the value at chain depth d for the given
// source polarity: the source passes through d inverters.
func expectedChainValue(d int, sourceOne bool) bool {
	v := sourceOne
	if d%2 == 1 {
		v = !v
	}
	return v
}
