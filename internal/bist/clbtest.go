package bist

import (
	"context"
	"fmt"

	"repro/internal/device"
	"repro/internal/fpga"
)

// CLBFault names a faulty LUT/FF site found by the CLB test.
type CLBFault struct {
	R, C, Site int
}

// CLBTestReport summarizes a CLB self-test.
type CLBTestReport struct {
	SitesTested int
	Captures    int
	Faults      []CLBFault
}

func (r *CLBTestReport) String() string {
	return fmt.Sprintf("CLB BIST: %d sites tested, %d captures, %d faults", r.SitesTested, r.Captures, len(r.Faults))
}

// CLBTest exercises every LUT/FF site of the device: each site is
// configured as a self-toggling register (the scaled stand-in for the
// paper's cascaded 34-bit LFSR pattern registers), every site's state is
// captured on two consecutive clocks, and any site that fails to toggle —
// or toggles out of phase — is reported. Sampling two phases covers both
// stuck-at polarities on the local feedback wires and the register path.
func CLBTest(f *fpga.FPGA, port *fpga.Port) (*CLBTestReport, error) {
	return CLBTestContext(context.Background(), f, port)
}

// CLBTestContext is CLBTest with cancellation, checked between captures.
func CLBTestContext(ctx context.Context, f *fpga.FPGA, port *fpga.Port) (*CLBTestReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := f.Geometry()
	b := fpga.NewConfigBuilder(g)
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			for o := 0; o < device.OutputsPerCLB; o++ {
				// Toggle cell: LUT = NOT(own registered output o).
				b.SetLUT(r, c, o, fpga.TruthNot)
				for in := 0; in < device.LUTInputs; in++ {
					b.RouteInput(r, c, o, in, o) // own-output slot
				}
				b.SetFF(r, c, o, false, device.CEConstOne, 0, false)
				b.SetOutMux(r, c, o, true)
			}
		}
	}
	if err := port.FullConfigure(b.FullBitstream()); err != nil {
		return nil, err
	}
	rep := &CLBTestReport{SitesTested: g.CLBs() * device.OutputsPerCLB}

	// Two captures, one clock apart: a healthy cell reads (1, 0) — it
	// toggles from init 0 to 1, then back.
	snap := func() ([][]bool, error) {
		rep.Captures++
		out := make([][]bool, g.Cols)
		for c := 0; c < g.Cols; c++ {
			out[c] = make([]bool, g.Rows*device.FFsPerCLB)
			for k := 0; k < device.FFsPerCLB; k++ {
				col, err := port.CaptureColumn(c, k)
				if err != nil {
					return nil, err
				}
				for r := 0; r < g.Rows; r++ {
					out[c][r*device.FFsPerCLB+k] = col[r]
				}
			}
		}
		return out, nil
	}
	f.Step()
	s1, err := snap()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f.Step()
	s2, err := snap()
	if err != nil {
		return nil, err
	}
	for c := 0; c < g.Cols; c++ {
		for r := 0; r < g.Rows; r++ {
			for k := 0; k < device.FFsPerCLB; k++ {
				v1 := s1[c][r*device.FFsPerCLB+k]
				v2 := s2[c][r*device.FFsPerCLB+k]
				if !(v1 && !v2) {
					rep.Faults = append(rep.Faults, CLBFault{R: r, C: c, Site: k})
				}
			}
		}
	}
	return rep, nil
}

// BRAMFault names a failed block-RAM word.
type BRAMFault struct {
	Col, Block, Word int
	Got, Want        uint16
}

// BRAMTestReport summarizes the BRAM test.
type BRAMTestReport struct {
	WordsTested int
	Faults      []BRAMFault
}

func (r *BRAMTestReport) String() string {
	return fmt.Sprintf("BRAM BIST: %d words tested, %d faults", r.WordsTested, len(r.Faults))
}

// BRAMTest loads every block with the paper's address-in-data pattern
// ("each location contains its own address in both upper and lower byte"),
// reads the content back with the clock stopped, and reports mismatches.
func BRAMTest(f *fpga.FPGA, port *fpga.Port) (*BRAMTestReport, error) {
	return BRAMTestContext(context.Background(), f, port)
}

// BRAMTestContext is BRAMTest with cancellation, checked between blocks.
func BRAMTestContext(ctx context.Context, f *fpga.FPGA, port *fpga.Port) (*BRAMTestReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := f.Geometry()
	b := fpga.NewConfigBuilder(g)
	pattern := func(w int) uint16 { return uint16(w)<<8 | uint16(w) }
	for bc := 0; bc < g.BRAMCols; bc++ {
		for blk := 0; blk < g.BRAMBlocksPerCol(); blk++ {
			for w := 0; w < device.BRAMWords; w++ {
				b.SetBRAMWord(bc, blk, w, pattern(w))
			}
		}
	}
	if err := port.FullConfigure(b.FullBitstream()); err != nil {
		return nil, err
	}
	wasRunning := port.ClockRunning
	port.ClockRunning = false // §II-C: BRAM readback needs the clock stopped
	defer func() { port.ClockRunning = wasRunning }()

	rep := &BRAMTestReport{}
	for bc := 0; bc < g.BRAMCols; bc++ {
		for blk := 0; blk < g.BRAMBlocksPerCol(); blk++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Read the content frames back and reassemble each word.
			seen := map[int]bool{}
			for w := 0; w < device.BRAMWords; w++ {
				fr := g.BRAMContentBitAddr(bc, blk, w, 0).Frame(g)
				if !seen[fr] {
					seen[fr] = true
					if _, err := port.ReadFrame(fr); err != nil {
						return nil, err
					}
				}
			}
			for w := 0; w < device.BRAMWords; w++ {
				var got uint16
				for i := 0; i < device.BRAMWidth; i++ {
					if f.ConfigMemory().Get(g.BRAMContentBitAddr(bc, blk, w, i)) {
						got |= 1 << uint(i)
					}
				}
				rep.WordsTested++
				if got != pattern(w) {
					rep.Faults = append(rep.Faults, BRAMFault{Col: bc, Block: blk, Word: w, Got: got, Want: pattern(w)})
				}
			}
		}
	}
	return rep, nil
}
