package bist

import (
	"testing"

	"repro/internal/device"
	"repro/internal/fpga"
)

func freshDevice(t *testing.T) (*fpga.FPGA, *fpga.Port) {
	t.Helper()
	f := fpga.New(device.Tiny())
	b := fpga.NewConfigBuilder(device.Tiny())
	if err := f.FullConfigure(b.FullBitstream()); err != nil {
		t.Fatal(err)
	}
	return f, fpga.NewPort(f)
}

func TestWireTestCleanDevice(t *testing.T) {
	f, port := freshDevice(t)
	rep, err := WireTest(f, port)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Faults) != 0 {
		t.Fatalf("clean device reported faults: %v", rep.Faults)
	}
	if len(rep.SlotsTested) != 16 {
		t.Errorf("slots tested = %d, want 16", len(rep.SlotsTested))
	}
	// The paper's procedure: one design, a sequence of partial
	// reconfigurations, two capture passes per wire selection.
	if rep.Readbacks != 2*len(rep.SlotsTested) {
		t.Errorf("readbacks = %d, want %d", rep.Readbacks, 2*len(rep.SlotsTested))
	}
	if rep.Reconfigurations < len(rep.SlotsTested) {
		t.Errorf("reconfigurations = %d, want >= %d", rep.Reconfigurations, len(rep.SlotsTested))
	}
	g := device.Tiny()
	wantWires := 16 * (g.Rows - 1) * g.Cols // per class: (depth-1)*lines
	if rep.WiresTested != wantWires {
		t.Errorf("wires tested = %d, want %d", rep.WiresTested, wantWires)
	}
	if rep.String() == "" {
		t.Error("empty report")
	}
}

func TestWireTestIsolatesStuckAt(t *testing.T) {
	for _, stuck := range []bool{false, true} {
		f, port := freshDevice(t)
		seg := device.Segment{R: 3, C: 4, S: 6} // west wire, output 2
		f.SetStuck(seg, stuck)
		rep, err := WireTest(f, port)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, flt := range rep.Faults {
			if flt.Seg == seg && flt.StuckAt == stuck {
				found = true
			}
			if flt.Seg.S != seg.S {
				t.Errorf("fault attributed to wrong slot: %v", flt)
			}
		}
		if !found {
			t.Fatalf("stuck-at-%v at %v not isolated; faults=%v", stuck, seg, rep.Faults)
		}
	}
}

func TestWireTestIsolatesVerticalWire(t *testing.T) {
	f, port := freshDevice(t)
	seg := device.Segment{R: 5, C: 2, S: 13} // north wire, output 1
	f.SetStuck(seg, true)
	rep, err := WireTest(f, port)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, flt := range rep.Faults {
		if flt.Seg == seg {
			found = true
		}
	}
	if !found {
		t.Fatalf("vertical stuck wire not isolated: %v", rep.Faults)
	}
}

func TestCLBTestCleanDevice(t *testing.T) {
	f, port := freshDevice(t)
	rep, err := CLBTest(f, port)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Faults) != 0 {
		t.Fatalf("clean device reported CLB faults: %v", rep.Faults[:min(4, len(rep.Faults))])
	}
	g := device.Tiny()
	if rep.SitesTested != g.CLBs()*4 {
		t.Errorf("sites tested = %d", rep.SitesTested)
	}
	if rep.Captures != 2 {
		t.Errorf("captures = %d, want 2", rep.Captures)
	}
}

func TestCLBTestFindsBrokenCell(t *testing.T) {
	f, port := freshDevice(t)
	// A stuck local-feedback wire breaks one cell's toggle loop.
	seg := device.Segment{R: 2, C: 5, S: 1}
	f.SetStuck(seg, true)
	rep, err := CLBTest(f, port)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, flt := range rep.Faults {
		if flt.R == 2 && flt.C == 5 && flt.Site == 1 {
			found = true
		} else if flt.R != 2 || flt.C != 5 {
			t.Errorf("unrelated CLB flagged: %+v", flt)
		}
	}
	if !found {
		t.Fatalf("broken cell not found: %v", rep.Faults)
	}
}

func TestBRAMTestCleanAndCorrupt(t *testing.T) {
	f, port := freshDevice(t)
	rep, err := BRAMTest(f, port)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Faults) != 0 {
		t.Fatalf("clean BRAM reported faults: %v", rep.Faults)
	}
	g := device.Tiny()
	if rep.WordsTested != g.BRAMBlocks()*device.BRAMWords {
		t.Errorf("words tested = %d", rep.WordsTested)
	}

	// A hard-failed cell: corrupt one content bit after configuration.
	f2, port2 := freshDevice(t)
	// BRAMTest reconfigures; to emulate a HARD fault we flip the bit after
	// its internal configure step — easiest by running the test twice: the
	// helper below wraps the corrupt-then-verify sequence.
	rep2, err := bramTestWithFault(f2, port2, 0, 0, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Faults) != 1 || rep2.Faults[0].Word != 5 {
		t.Fatalf("hard BRAM fault not isolated: %v", rep2.Faults)
	}
}

// bramTestWithFault runs BRAMTest with a cell corruption injected after the
// pattern load (emulating a cell that cannot hold its value).
func bramTestWithFault(f *fpga.FPGA, port *fpga.Port, bc, blk, w, bit int) (*BRAMTestReport, error) {
	g := f.Geometry()
	b := fpga.NewConfigBuilder(g)
	pattern := func(w int) uint16 { return uint16(w)<<8 | uint16(w) }
	for col := 0; col < g.BRAMCols; col++ {
		for bl := 0; bl < g.BRAMBlocksPerCol(); bl++ {
			for word := 0; word < device.BRAMWords; word++ {
				b.SetBRAMWord(col, bl, word, pattern(word))
			}
		}
	}
	if err := port.FullConfigure(b.FullBitstream()); err != nil {
		return nil, err
	}
	f.InjectBit(g.BRAMContentBitAddr(bc, blk, w, bit))

	wasRunning := port.ClockRunning
	port.ClockRunning = false
	defer func() { port.ClockRunning = wasRunning }()
	rep := &BRAMTestReport{}
	for col := 0; col < g.BRAMCols; col++ {
		for bl := 0; bl < g.BRAMBlocksPerCol(); bl++ {
			for word := 0; word < device.BRAMWords; word++ {
				var got uint16
				for i := 0; i < device.BRAMWidth; i++ {
					if f.ConfigMemory().Get(g.BRAMContentBitAddr(col, bl, word, i)) {
						got |= 1 << uint(i)
					}
				}
				rep.WordsTested++
				if got != pattern(word) {
					rep.Faults = append(rep.Faults, BRAMFault{Col: col, Block: bl, Word: word, Got: got, Want: pattern(word)})
				}
			}
		}
	}
	return rep, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
