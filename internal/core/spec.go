package core

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/seu"
)

// ParseGeometry maps the CLI/wire spelling of a device geometry to the
// geometry itself. The empty string means the default experiment geometry
// (small), so job specs may omit the field.
func ParseGeometry(name string) (device.Geometry, error) {
	switch name {
	case "tiny":
		return device.Tiny(), nil
	case "", "small":
		return device.Small(), nil
	case "xqvr1000":
		return device.XQVR1000(), nil
	}
	return device.Geometry{}, fmt.Errorf("core: unknown geometry %q (tiny|small|xqvr1000)", name)
}

// CampaignSpec is the serializable form of one experiment configuration —
// the wire format shared by the CLI flag sets, campaign-service job specs,
// and checkpoint metadata. Boolean polarity matches Config: the zero value
// keeps triage and fastsim on. A spec resolves to a Config with Resolve;
// everything a campaign's outcome depends on is in here, which is what
// makes checkpointed jobs resumable across daemon restarts.
type CampaignSpec struct {
	// Design is the catalogued design name (designs.ByName).
	Design string `json:"design"`
	// Geom is the geometry spelling ParseGeometry accepts ("" = small).
	Geom      string  `json:"geom,omitempty"`
	Seed      int64   `json:"seed"`
	Sample    float64 `json:"sample"`
	MaxBits   int64   `json:"max_bits,omitempty"`
	Workers   int     `json:"workers"`
	NoTriage  bool    `json:"no_triage,omitempty"`
	NoFastSim bool    `json:"no_fastsim,omitempty"`
	// Kernel is the seu.ParseKernel spelling ("" = auto).
	Kernel string `json:"kernel,omitempty"`
}

// Resolve parses the spec's string fields and returns the Config it
// denotes.
func (s CampaignSpec) Resolve() (Config, error) {
	g, err := ParseGeometry(s.Geom)
	if err != nil {
		return Config{}, err
	}
	k, err := seu.ParseKernel(s.Kernel)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Geom:      g,
		Seed:      s.Seed,
		Sample:    s.Sample,
		MaxBits:   s.MaxBits,
		Workers:   s.Workers,
		NoTriage:  s.NoTriage,
		NoFastSim: s.NoFastSim,
		Kernel:    k,
	}, nil
}

// CampaignOptions maps the experiment scale onto injection-campaign
// options — the single place the Config→seu.Options translation lives.
func (cfg Config) CampaignOptions(classifyPersistence bool) seu.Options {
	opts := seu.DefaultOptions()
	opts.Sample = cfg.Sample
	opts.MaxBits = cfg.MaxBits
	opts.Seed = cfg.Seed
	opts.Workers = cfg.Workers
	opts.Triage = !cfg.NoTriage
	opts.FastSim = !cfg.NoFastSim
	opts.Kernel = cfg.Kernel
	opts.ClassifyPersistence = classifyPersistence
	return opts
}
