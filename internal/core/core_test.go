package core

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/payload"
)

// quickCfg keeps campaigns fast for unit tests. The catalog designs are
// sized for the Small geometry; a low sampling rate keeps the sweep quick
// while preserving family orderings.
func quickCfg() Config {
	return Config{Geom: device.Small(), Seed: 1, Sample: 0.02}
}

// tinyCfg is for the single-design experiments that fit on Tiny.
func tinyCfg() Config {
	return Config{Geom: device.Tiny(), Seed: 1, Sample: 0.25}
}

func TestTableIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign sweep")
	}
	cfg := quickCfg()
	rows, err := TableI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("Table I has %d rows, want 12", len(rows))
	}
	byName := map[string]TableIRow{}
	for _, r := range rows {
		byName[r.Design] = r
		if r.Injections == 0 {
			t.Errorf("%s: no injections", r.Design)
		}
		if r.String() == "" {
			t.Error("empty row string")
		}
	}
	// Within each family, sensitivity grows with area (the paper's core
	// observation).
	if !(byName["LFSR 72"].SensitivityPct > byName["LFSR 18"].SensitivityPct) {
		t.Errorf("LFSR sensitivity not growing: %+v vs %+v", byName["LFSR 72"], byName["LFSR 18"])
	}
	if !(byName["MULT 48"].SensitivityPct > byName["MULT 12"].SensitivityPct) {
		t.Errorf("MULT sensitivity not growing")
	}
	// Multiplier families are denser per slice than LFSRs (paper: ~25% vs
	// ~7.5% normalized).
	if !(byName["MULT 36"].NormalizedPct > byName["LFSR 36"].NormalizedPct) {
		t.Errorf("normalized sensitivity ordering broken: MULT %f vs LFSR %f",
			byName["MULT 36"].NormalizedPct, byName["LFSR 36"].NormalizedPct)
	}
}

func TestTableIIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign sweep")
	}
	cfg := quickCfg()
	rows, err := TableII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TableIIRow{}
	for _, r := range rows {
		byName[r.Design] = r
	}
	// Feed-forward multiply-add: ~0% persistence; LFSR: very high.
	if byName["54 Multiply-Add"].PersistencePct > 10 {
		t.Errorf("multiply-add persistence = %.1f%%, want ~0", byName["54 Multiply-Add"].PersistencePct)
	}
	if byName["LFSR 72"].PersistencePct < 50 {
		t.Errorf("LFSR persistence = %.1f%%, want high", byName["LFSR 72"].PersistencePct)
	}
	if !(byName["LFSR 72"].PersistencePct > byName["Filter Preproc."].PersistencePct) {
		t.Errorf("persistence ordering broken")
	}
}

func TestFig7TraceDiverges(t *testing.T) {
	cfg := quickCfg()
	cfg.Sample = 0.05
	tr, target, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if target < 0 || len(tr) != 100 {
		t.Fatalf("trace len %d target %d", len(tr), target)
	}
	for _, pt := range tr[:20] {
		if !pt.Match {
			t.Fatal("divergence before upset")
		}
	}
	diverged := 0
	for _, pt := range tr[60:] {
		if !pt.Match {
			diverged++
		}
	}
	if diverged < 30 {
		t.Errorf("persistent upset re-converged: %d/40 diverged after repair", diverged)
	}
}

func TestScrubDemo(t *testing.T) {
	cfg := quickCfg()
	rep, err := ScrubDemo(cfg, "MULT 12")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Detections) != 1 {
		t.Fatalf("detections = %v", rep.Detections)
	}
	if rep.ScanCycle <= 0 || rep.FrameBytes <= 0 {
		t.Error("missing scrub numbers")
	}
}

func TestMissionRuns(t *testing.T) {
	cfg := quickCfg()
	rep, err := Mission(cfg, "MULT 12", 20*time.Hour, []payload.FlareWindow{{Start: 0, End: 5 * time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Availability <= 0.99 || rep.Availability > 1 {
		t.Errorf("availability = %f", rep.Availability)
	}
}

func TestBuildUnknownDesign(t *testing.T) {
	if _, err := Build(quickCfg(), "GHOST"); err == nil {
		t.Fatal("unknown design accepted")
	}
}

func TestSelectiveTMRStudyPipeline(t *testing.T) {
	// The hardened design needs more room than Tiny offers.
	cfg := Config{Geom: device.Small(), Seed: 1, Sample: 0.04}
	rep, err := SelectiveTMRStudy(cfg, "MULT 12")
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProtectedNodes == 0 || rep.ProtectedNodes > rep.TotalNodes {
		t.Fatalf("protected %d of %d nodes", rep.ProtectedNodes, rep.TotalNodes)
	}
	if rep.SelectiveSlices <= rep.PlainSlices {
		t.Errorf("selective TMR did not grow the design: %d -> %d slices",
			rep.PlainSlices, rep.SelectiveSlices)
	}
	if rep.Plain.Failures == 0 {
		t.Fatal("plain campaign found nothing")
	}
	// On a fabric without placement-domain isolation the win shows up in
	// the area-normalized sensitivity: the hardened design is ~2x larger
	// but its sensitive cross-section does not scale with it (see
	// EXPERIMENTS.md for the domain-crossing discussion).
	if rep.Selective.NormalizedSensitivity() >= rep.Plain.NormalizedSensitivity() {
		t.Errorf("selective TMR did not reduce normalized sensitivity: %.4f -> %.4f",
			rep.Plain.NormalizedSensitivity(), rep.Selective.NormalizedSensitivity())
	}
}
