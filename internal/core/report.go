package core

import "repro/internal/seu"

// CampaignReport is the machine-readable form of one campaign Report,
// emitted by seusim -json and the campaign service for CI artifacts,
// golden-report regression corpora, and downstream analysis. It carries
// only deterministic fields — wall time is deliberately absent, and the
// per-kind maps marshal in fixed kind order — so re-running the same
// campaign produces byte-identical output.
type CampaignReport struct {
	Design           string         `json:"design"`
	Geometry         string         `json:"geometry"`
	Slices           int            `json:"slices"`
	UtilizationPct   float64        `json:"utilization_pct"`
	Injections       int64          `json:"injections"`
	Failures         int64          `json:"failures"`
	Persistent       int64          `json:"persistent"`
	TriageSkipped    int64          `json:"triage_skipped"`
	SensitivityPct   float64        `json:"sensitivity_pct"`
	NormalizedPct    float64        `json:"normalized_sensitivity_pct"`
	PersistencePct   float64        `json:"persistence_pct"`
	InjectionsByKind seu.KindCounts `json:"injections_by_kind"`
	FailuresByKind   seu.KindCounts `json:"failures_by_kind"`
	SimulatedTimeSec float64        `json:"simulated_time_seconds"`
	Sample           float64        `json:"sample"`
	Seed             int64          `json:"seed"`
	Workers          int            `json:"workers"`
	Triage           bool           `json:"triage"`
	FastSim          bool           `json:"fastsim"`
	Kernel           string         `json:"kernel"`
	CyclesSimulated  int64          `json:"cycles_simulated"`
	CyclesSkipped    int64          `json:"cycles_skipped"`
}

// NewCampaignReport pairs a campaign's Report with the Config that produced
// it.
func NewCampaignReport(rep *seu.Report, cfg Config) CampaignReport {
	return CampaignReport{
		Design:           rep.Design,
		Geometry:         rep.Geom.String(),
		Slices:           rep.SlicesUsed,
		UtilizationPct:   100 * float64(rep.SlicesUsed) / float64(rep.Geom.Slices()),
		Injections:       rep.Injections,
		Failures:         rep.Failures,
		Persistent:       rep.Persistent,
		TriageSkipped:    rep.TriageSkipped,
		SensitivityPct:   100 * rep.Sensitivity(),
		NormalizedPct:    100 * rep.NormalizedSensitivity(),
		PersistencePct:   100 * rep.PersistenceRatio(),
		InjectionsByKind: rep.InjectionsByKind,
		FailuresByKind:   rep.FailuresByKind,
		SimulatedTimeSec: rep.SimulatedTime.Seconds(),
		Sample:           cfg.Sample,
		Seed:             cfg.Seed,
		Workers:          cfg.Workers,
		Triage:           !cfg.NoTriage,
		FastSim:          !cfg.NoFastSim,
		Kernel:           cfg.Kernel.String(),
		CyclesSimulated:  rep.CyclesSimulated,
		CyclesSkipped:    rep.CyclesSkipped,
	}
}
