package core

import "flag"

// CampaignFlags is a CampaignSpec under construction by a flag set. The
// CLIs expose triage and fastsim as positive flags while the spec (like
// Config) stores the negated zero-is-on form, so the two booleans here
// bridge the polarity at Resolve time.
type CampaignFlags struct {
	Spec    CampaignSpec
	Triage  bool
	FastSim bool
}

// RegisterCampaignFlags registers the experiment-scale flags shared by
// seusim, raddrc, and campaignd job submission — -design, -geom, -seed,
// -sample, -maxbits, -workers, -triage, -fastsim, -kernel — on fs, seeded
// from def, and returns the destination the parsed values land in.
func RegisterCampaignFlags(fs *flag.FlagSet, def CampaignSpec) *CampaignFlags {
	cf := &CampaignFlags{Spec: def, Triage: !def.NoTriage, FastSim: !def.NoFastSim}
	fs.StringVar(&cf.Spec.Design, "design", def.Design, "catalogued design")
	fs.StringVar(&cf.Spec.Geom, "geom", def.Geom, "device geometry: tiny|small|xqvr1000")
	fs.Int64Var(&cf.Spec.Seed, "seed", def.Seed, "random seed")
	fs.Float64Var(&cf.Spec.Sample, "sample", def.Sample, "fraction of configuration bits to inject (1 = exhaustive)")
	fs.Int64Var(&cf.Spec.MaxBits, "maxbits", def.MaxBits, "cap injections per design at the first N selected bits (0 = no cap)")
	fs.IntVar(&cf.Spec.Workers, "workers", def.Workers, "parallel injection workers, each on a cloned board replica; results are identical at any count (0 = GOMAXPROCS)")
	fs.BoolVar(&cf.Triage, "triage", !def.NoTriage, "skip provably-inert configuration bits via static cone-of-influence analysis; reports are byte-identical either way")
	fs.BoolVar(&cf.FastSim, "fastsim", !def.NoFastSim, "use the activity-driven settling kernel and lock-step convergence early exit; reports are byte-identical either way")
	fs.StringVar(&cf.Spec.Kernel, "kernel", def.Kernel, "settling kernel: auto (follow -fastsim), event, sweep, or vector (64 fault universes per pass); reports are byte-identical at any choice")
	return cf
}

// Resolve folds the positive flag spellings back into the spec and returns
// the Config it denotes.
func (cf *CampaignFlags) Resolve() (Config, error) {
	return cf.ResolveSpec().Resolve()
}

// ResolveSpec folds the positive flag spellings back into the spec and
// returns it — the wire form campaignd job submission ships to the daemon.
func (cf *CampaignFlags) ResolveSpec() CampaignSpec {
	cf.Spec.NoTriage = !cf.Triage
	cf.Spec.NoFastSim = !cf.FastSim
	return cf.Spec
}
