package core

import (
	"flag"
	"fmt"
	"time"
)

// FabricSpec is the distributed-fabric configuration a campaignd node boots
// with. core carries only the plain settings struct — the coordinator,
// worker, and blob-store machinery live in internal/fabric, which consumes
// this — so CLIs and tests can describe a fabric without importing it.
type FabricSpec struct {
	// Mode selects the node's role: "off" (single-node, the default) or
	// "coordinator" (serve the fabric API and lease chunks to workers).
	Mode string
	// Blob selects the checkpoint blob backend: "" or "dir" for the local
	// directory store under the campaign dir, "mem" for an in-memory store,
	// or an http(s):// URL of a remote blob server (blobd).
	Blob string
	// LeaseTTL is how long a leased chunk may run before the coordinator
	// re-issues it to another worker (0 = fabric default).
	LeaseTTL time.Duration
	// RetainBlobs caps the blob count retention keeps (0 = unlimited).
	RetainBlobs int
	// RetainAge expires blobs older than this (0 = never).
	RetainAge time.Duration
}

// Coordinator reports whether this node should serve the fabric API.
func (fs FabricSpec) Coordinator() bool { return fs.Mode == "coordinator" }

// Validate rejects modes and blob schemes the node can't boot.
func (fs FabricSpec) Validate() error {
	switch fs.Mode {
	case "", "off", "coordinator":
	default:
		return fmt.Errorf("core: unknown fabric mode %q (want off or coordinator)", fs.Mode)
	}
	switch {
	case fs.Blob == "", fs.Blob == "dir", fs.Blob == "mem":
	case len(fs.Blob) > 7 && (fs.Blob[:7] == "http://" || fs.Blob[:8] == "https://"):
	default:
		return fmt.Errorf("core: unknown blob backend %q (want dir, mem, or an http(s) URL)", fs.Blob)
	}
	return nil
}

// RegisterFabricFlags registers the fabric node flags on fs, seeded from
// def, and returns the destination the parsed values land in.
func RegisterFabricFlags(fls *flag.FlagSet, def FabricSpec) *FabricSpec {
	spec := &def
	fls.StringVar(&spec.Mode, "fabric", def.Mode, "fabric role: off (single-node) or coordinator (lease chunks to campaignworker nodes)")
	fls.StringVar(&spec.Blob, "blob", def.Blob, "checkpoint blob store: dir (local), mem (in-memory), or an http(s) URL of a blobd")
	fls.DurationVar(&spec.LeaseTTL, "lease", def.LeaseTTL, "chunk lease TTL before the coordinator re-issues it to another worker (0 = default)")
	fls.IntVar(&spec.RetainBlobs, "retain-blobs", def.RetainBlobs, "retention: keep at most N checkpoint blobs (0 = unlimited)")
	fls.DurationVar(&spec.RetainAge, "retain-age", def.RetainAge, "retention: expire checkpoint blobs older than this (0 = never)")
	return spec
}
