// Package core is the public face of the reproduction: one call per paper
// experiment. It wires the benchmark designs through placement, the
// SLAAC-1V testbed, the SEU injector, the scrubbing fault manager, the
// radiation environments, the BIST suite, and the mitigation tools, and
// returns the rows/series each of the paper's tables and figures reports.
package core

import (
	"fmt"
	"time"

	"repro/internal/bitstream"
	"repro/internal/board"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/fpga"
	"repro/internal/halflatch"
	"repro/internal/netlist"
	"repro/internal/payload"
	"repro/internal/place"
	"repro/internal/radiation"
	"repro/internal/scrub"
	"repro/internal/seu"
	"repro/internal/tmr"
)

// Config selects the experiment scale.
type Config struct {
	// Geom is the device geometry experiments run on. The full XQVR1000
	// geometry works but makes exhaustive sweeps long; the default
	// experiment geometry keeps campaigns in seconds-to-minutes.
	Geom device.Geometry
	// Seed drives all randomness (stimulus, sampling, strikes).
	Seed int64
	// Sample is the injection sampling fraction (1 = exhaustive).
	Sample float64
	// MaxBits caps injections per design (0 = no cap).
	MaxBits int64
	// Workers is the injection-campaign parallelism: the number of board
	// replicas fault-injection experiments run on concurrently. Results
	// are deterministic at any value. 0 means GOMAXPROCS.
	Workers int
	// NoTriage disables the static cone-of-influence triage that injection
	// campaigns use to skip provably-inert configuration bits. The zero
	// value keeps triage on; reports are byte-identical either way.
	NoTriage bool
	// NoFastSim disables the activity-driven settling kernel and the
	// lock-step convergence early exit. The zero value keeps both on;
	// reports are byte-identical either way.
	NoFastSim bool
	// Kernel overrides the settling kernel independently of NoFastSim
	// (seu.KernelAuto, the zero value, follows it). Reports are
	// byte-identical at any choice.
	Kernel seu.Kernel
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config {
	return Config{Geom: device.Small(), Seed: 1, Sample: 1.0}
}

// Build places a catalogued design on the configured geometry.
func Build(cfg Config, name string) (*place.Placed, error) {
	spec, err := designs.ByName(name)
	if err != nil {
		return nil, err
	}
	return place.Place(spec.Build(), cfg.Geom)
}

// BuildCircuit places an arbitrary netlist.
func BuildCircuit(cfg Config, c *netlist.Circuit) (*place.Placed, error) {
	return place.Place(c, cfg.Geom)
}

// Testbed instantiates the SLAAC-1V harness for a placed design.
func Testbed(cfg Config, p *place.Placed) (*board.SLAAC1V, error) {
	return board.New(p, cfg.Seed)
}

// Sensitivity runs one injection campaign for a catalogued design.
func Sensitivity(cfg Config, name string, classifyPersistence bool) (*seu.Report, error) {
	p, err := Build(cfg, name)
	if err != nil {
		return nil, err
	}
	bd, err := Testbed(cfg, p)
	if err != nil {
		return nil, err
	}
	return seu.Run(bd, cfg.CampaignOptions(classifyPersistence))
}

// TableIRow is one row of the paper's Table I.
type TableIRow struct {
	Design         string
	Slices         int
	UtilizationPct float64
	Injections     int64
	Failures       int64
	SensitivityPct float64
	NormalizedPct  float64
}

func (r TableIRow) String() string {
	return fmt.Sprintf("%-16s %6d (%5.1f%%) %9d %8d %7.2f%% %7.1f%%",
		r.Design, r.Slices, r.UtilizationPct, r.Injections, r.Failures,
		r.SensitivityPct, r.NormalizedPct)
}

// TableI reproduces the paper's Table I: SEU sensitivity for the LFSR,
// VMULT, and MULT design families.
func TableI(cfg Config) ([]TableIRow, error) {
	var rows []TableIRow
	for _, spec := range designs.Catalog() {
		if !inTables(spec, 1) {
			continue
		}
		rep, err := Sensitivity(cfg, spec.Name, false)
		if err != nil {
			return nil, fmt.Errorf("core: Table I %s: %w", spec.Name, err)
		}
		rows = append(rows, TableIRow{
			Design:         spec.Name,
			Slices:         rep.SlicesUsed,
			UtilizationPct: 100 * float64(rep.SlicesUsed) / float64(rep.Geom.Slices()),
			Injections:     rep.Injections,
			Failures:       rep.Failures,
			SensitivityPct: 100 * rep.Sensitivity(),
			NormalizedPct:  100 * rep.NormalizedSensitivity(),
		})
	}
	return rows, nil
}

// TableIIRow is one row of the paper's Table II.
type TableIIRow struct {
	Design         string
	Slices         int
	SensitivityPct float64
	PersistencePct float64
}

func (r TableIIRow) String() string {
	return fmt.Sprintf("%-16s %6d %7.2f%% %7.1f%%",
		r.Design, r.Slices, r.SensitivityPct, r.PersistencePct)
}

// TableII reproduces the paper's Table II: error persistence per design.
func TableII(cfg Config) ([]TableIIRow, error) {
	var rows []TableIIRow
	for _, spec := range designs.Catalog() {
		if !inTables(spec, 2) {
			continue
		}
		rep, err := Sensitivity(cfg, spec.Name, true)
		if err != nil {
			return nil, fmt.Errorf("core: Table II %s: %w", spec.Name, err)
		}
		rows = append(rows, TableIIRow{
			Design:         spec.Name,
			Slices:         rep.SlicesUsed,
			SensitivityPct: 100 * rep.Sensitivity(),
			PersistencePct: 100 * rep.PersistenceRatio(),
		})
	}
	return rows, nil
}

func inTables(spec designs.Spec, table int) bool {
	for _, t := range spec.Tables {
		if t == table {
			return true
		}
	}
	return false
}

// Fig7 reproduces the paper's Fig. 7: upset a persistent state bit of the
// counter/adder design and trace expected vs actual output around the
// upset and its (ineffective) repair.
func Fig7(cfg Config) ([]seu.TracePoint, device.BitAddr, error) {
	p, err := Build(cfg, "36 Counter/Adder")
	if err != nil {
		return nil, 0, err
	}
	bd, err := Testbed(cfg, p)
	if err != nil {
		return nil, 0, err
	}
	// Locate a persistent bit with a short sampled campaign (the fixed
	// sample and uncapped sweep are part of the figure's definition, so
	// cfg's Sample/MaxBits deliberately do not apply).
	opts := cfg.CampaignOptions(true)
	opts.Sample = 0.2
	opts.MaxBits = 0
	rep, err := seu.Run(bd, opts)
	if err != nil {
		return nil, 0, err
	}
	var target device.BitAddr = -1
	for _, bit := range rep.SensitiveBits {
		if bit.Persistent {
			target = bit.Addr
			break
		}
	}
	if target < 0 {
		return nil, 0, fmt.Errorf("core: no persistent bit found in counter/adder")
	}
	bd.ResetBoth()
	// The paper's trace shows the upset near cycle 502; we centre the
	// window the same way at reduced scale.
	tr, err := seu.Trace(bd, target, 20, 20, 60)
	return tr, target, err
}

// BeamValidation reproduces the paper's accelerator validation (§III-B):
// an exhaustive sensitivity map followed by a simulated proton-beam run,
// reporting the correlation between beam-induced output errors and the
// simulator's predictions (paper: 97.6 %).
func BeamValidation(cfg Config, name string, observations int) (*radiation.BeamReport, *seu.Report, error) {
	p, err := Build(cfg, name)
	if err != nil {
		return nil, nil, err
	}
	bd, err := Testbed(cfg, p)
	if err != nil {
		return nil, nil, err
	}
	// The sensitivity map must stay uncapped: MaxBits would truncate the
	// address range the beam correlation is checked against.
	opts := cfg.CampaignOptions(false)
	opts.MaxBits = 0
	simRep, err := seu.Run(bd, opts)
	if err != nil {
		return nil, nil, err
	}
	var addrs []device.BitAddr
	for _, b := range simRep.SensitiveBits {
		addrs = append(addrs, b.Addr)
	}
	src := radiation.BeamForObservation(500*time.Millisecond, cfg.Seed+100)
	bopts := radiation.DefaultBeamOptions()
	if observations > 0 {
		bopts.Observations = observations
	}
	beamRep, err := radiation.RunBeam(bd, src, radiation.SensitiveSet(addrs), bopts)
	return beamRep, simRep, err
}

// ScrubReport carries the Fig. 4 numbers.
type ScrubReport struct {
	// ScanCycle is one board's (three devices') no-error readback cycle —
	// the paper's ~180 ms for three XQVR1000s at full geometry.
	ScanCycle time.Duration
	// RepairTime is the partial-reconfiguration cost of one frame repair.
	RepairTime time.Duration
	// FrameBytes is the repair granularity (156 bytes on the XQVR1000).
	FrameBytes int
	Detections []scrub.Detection
}

// ScrubDemo builds a three-device board running a catalogued design,
// injects an artificial SEU, and exercises the detect/repair loop.
func ScrubDemo(cfg Config, name string) (*ScrubReport, error) {
	p, err := Build(cfg, name)
	if err != nil {
		return nil, err
	}
	var ports []*fpga.Port
	var goldens []*bitstream.Memory
	bs := p.Bitstream()
	for i := 0; i < 3; i++ {
		f := fpga.New(cfg.Geom)
		if err := f.FullConfigure(bs); err != nil {
			return nil, err
		}
		ports = append(ports, fpga.NewPort(f))
		goldens = append(goldens, f.ConfigMemory().Clone())
	}
	mgr, err := scrub.New(ports, goldens, nil)
	if err != nil {
		return nil, err
	}
	rep := &ScrubReport{
		ScanCycle:  mgr.ScanCycleTime(),
		RepairTime: fpga.DefaultFrameWriteTime,
		FrameBytes: cfg.Geom.FrameBytes(),
	}
	if err := mgr.InsertArtificialSEU(1, 7, 33); err != nil {
		return nil, err
	}
	det, err := mgr.ScanOnce()
	if err != nil {
		return nil, err
	}
	rep.Detections = det
	return rep, nil
}

// HalfLatchReport carries the §III-C / Fig. 14 numbers.
type HalfLatchReport struct {
	Census          halflatch.Census
	Mitigated       int
	ErrorsBefore    int
	ErrorsAfter     int
	ResistanceRatio float64
}

// HalfLatchStudy runs the RadDRC experiment: census, mitigation, and a
// half-latch-only beam before and after (the paper measured ~100x).
func HalfLatchStudy(cfg Config, name string, observations int) (*HalfLatchReport, error) {
	p, err := Build(cfg, name)
	if err != nil {
		return nil, err
	}
	census, err := halflatch.Analyze(p)
	if err != nil {
		return nil, err
	}
	mitigated, n, err := halflatch.RadDRC(p)
	if err != nil {
		return nil, err
	}
	xs := radiation.CrossSection{HalfLatchWeight: 1}
	run := func(pl *place.Placed) (int, error) {
		bd, err := board.New(pl, cfg.Seed)
		if err != nil {
			return 0, err
		}
		bd.SetFastSim(!cfg.NoFastSim)
		src := radiation.NewSource(2, xs, cfg.Seed+7)
		rep, err := radiation.RunBeam(bd, src, nil, radiation.BeamOptions{
			Observations:         observations,
			Window:               500 * time.Millisecond,
			CyclesPerObservation: 20,
			ResyncCycles:         10,
		})
		if err != nil {
			return 0, err
		}
		return rep.OutputErrors, nil
	}
	before, err := run(p)
	if err != nil {
		return nil, err
	}
	after, err := run(mitigated)
	if err != nil {
		return nil, err
	}
	rep := &HalfLatchReport{Census: census, Mitigated: n, ErrorsBefore: before, ErrorsAfter: after}
	if after == 0 {
		rep.ResistanceRatio = float64(before) // lower bound: no failures at all
	} else {
		rep.ResistanceRatio = float64(before) / float64(after)
	}
	return rep, nil
}

// TMRStudy compares a design's configuration sensitivity before and after
// triple-module redundancy (the paper's selective-mitigation endpoint).
func TMRStudy(cfg Config, name string) (plain, hardened *seu.Report, err error) {
	spec, err := designs.ByName(name)
	if err != nil {
		return nil, nil, err
	}
	run := func(c *netlist.Circuit) (*seu.Report, error) {
		p, err := place.Place(c, cfg.Geom)
		if err != nil {
			return nil, err
		}
		bd, err := board.New(p, cfg.Seed)
		if err != nil {
			return nil, err
		}
		return seu.Run(bd, cfg.CampaignOptions(false))
	}
	plain, err = run(spec.Build())
	if err != nil {
		return nil, nil, err
	}
	trip, err := tmr.Triplicate(spec.Build())
	if err != nil {
		return nil, nil, err
	}
	hardened, err = run(trip)
	if err != nil {
		return nil, nil, err
	}
	return plain, hardened, nil
}

// Mission runs the payload availability experiment.
func Mission(cfg Config, name string, duration time.Duration, flares []payload.FlareWindow) (*payload.MissionReport, error) {
	p, err := Build(cfg, name)
	if err != nil {
		return nil, err
	}
	sys, err := payload.New(p, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return sys.RunMission(payload.MissionOptions{Duration: duration, Flares: flares, Seed: cfg.Seed})
}

// SelectiveTMRReport carries the selective-mitigation pipeline results: the
// paper's §III-A endpoint, where the correlation table drives TMR of only
// the sensitive cross-section.
type SelectiveTMRReport struct {
	Plain     *seu.Report
	Selective *seu.Report
	// ProtectedNodes / TotalNodes account the area targeting.
	ProtectedNodes int
	TotalNodes     int
	// Slices before/after quantify the area cost.
	PlainSlices     int
	SelectiveSlices int
}

// SelectiveTMRStudy runs the full §III-A mitigation pipeline on a
// catalogued design: sensitivity campaign -> correlation -> sensitive
// cross-section -> selective TMR of exactly those nodes -> re-campaign.
func SelectiveTMRStudy(cfg Config, name string) (*SelectiveTMRReport, error) {
	spec, err := designs.ByName(name)
	if err != nil {
		return nil, err
	}
	circuit := spec.Build()
	p, err := place.Place(circuit, cfg.Geom)
	if err != nil {
		return nil, err
	}
	bd, err := board.New(p, cfg.Seed)
	if err != nil {
		return nil, err
	}
	opts := cfg.CampaignOptions(false)
	plain, err := seu.Run(bd, opts)
	if err != nil {
		return nil, err
	}
	protect := seu.SensitiveNodes(p, plain)
	hardenedCircuit, err := tmr.Selective(circuit, protect)
	if err != nil {
		return nil, err
	}
	p2, err := place.Place(hardenedCircuit, cfg.Geom)
	if err != nil {
		return nil, err
	}
	bd2, err := board.New(p2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	hardened, err := seu.Run(bd2, opts)
	if err != nil {
		return nil, err
	}
	rep := &SelectiveTMRReport{
		Plain: plain, Selective: hardened,
		PlainSlices: p.SlicesUsed(), SelectiveSlices: p2.SlicesUsed(),
	}
	rep.ProtectedNodes, rep.TotalNodes = tmr.ProtectedCount(circuit, protect)
	return rep, nil
}
