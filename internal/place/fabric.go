package place

import (
	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/netlist"
)

// FromFabric wraps a raw-fabric configuration (built directly with
// fpga.ConfigBuilder) as a Placed, so designs using resources the netlist
// flow cannot express — SRL16 shift registers, BRAM ports, long-line
// wired-ANDs — run on the same board/seu harness as placed netlists.
//
// inputPins lists the device pins stimulus drives (empty for autonomous
// designs); outputNets lists the nets the comparator observes; sites lists
// the occupied LUT/FF sites so SlicesUsed reports utilization. The circuit
// attached to the result is a port-only shell: it names the design and its
// boundary, and must not be re-placed or simulated as a netlist.
func FromFabric(name string, g device.Geometry, m *bitstream.Memory, inputPins []int, outputNets []device.NetRef, sites []Site) *Placed {
	c := &netlist.Circuit{Name: name}
	var sig netlist.SignalID
	inBits := make([]netlist.SignalID, len(inputPins))
	for i := range inBits {
		inBits[i] = sig
		sig++
	}
	c.Inputs = []netlist.Port{{Name: "in", Bits: inBits}}
	outBits := make([]netlist.SignalID, len(outputNets))
	for i := range outBits {
		outBits[i] = sig
		sig++
	}
	c.Outputs = []netlist.Port{{Name: "out", Bits: outBits}}
	c.NumSignals = int(sig)

	return &Placed{
		Geom:       g,
		Circuit:    c,
		Memory:     m,
		InputPins:  map[string][]int{"in": append([]int(nil), inputPins...)},
		OutputNets: map[string][]device.NetRef{"out": append([]device.NetRef(nil), outputNets...)},
		Sites:      append([]Site(nil), sites...),
	}
}
