package place

import (
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/netlist"
)

// randomCircuit builds a random but valid clocked circuit: a few inputs, a
// soup of LUTs and FFs (including feedback through FFs), and an output port
// over a random selection of nodes.
func randomCircuit(rng *rand.Rand, nodes int) *netlist.Circuit {
	b := netlist.NewBuilder("random")
	nIn := 2 + rng.Intn(6)
	pool := b.Input("in", nIn)

	// Pre-allocate some feedback wires driven by FFs created later.
	nFB := 1 + rng.Intn(3)
	fb := make([]netlist.SignalID, nFB)
	for i := range fb {
		fb[i] = b.NewSignal()
		pool = append(pool, fb[i])
	}
	pick := func() netlist.SignalID { return pool[rng.Intn(len(pool))] }

	var outCandidates []netlist.SignalID
	for i := 0; i < nodes; i++ {
		switch rng.Intn(5) {
		case 0: // random-truth LUT, arity 1..4 (table replicated for arity)
			arity := 1 + rng.Intn(4)
			ins := make([]netlist.SignalID, arity)
			for k := range ins {
				ins[k] = pick()
			}
			truth := uint16(rng.Intn(1 << uint(1<<uint(arity))))
			// Replicate over unused inputs the way the builder constants do.
			full := uint16(0)
			mask := (1 << uint(arity)) - 1
			for idx := 0; idx < 16; idx++ {
				if truth&(1<<uint(idx&mask)) != 0 {
					full |= 1 << uint(idx)
				}
			}
			s := b.LUT(full, ins...)
			pool = append(pool, s)
			outCandidates = append(outCandidates, s)
		case 1: // FF
			s := b.FF(pick(), rng.Intn(2) == 0)
			pool = append(pool, s)
			outCandidates = append(outCandidates, s)
		case 2: // FF with routed CE
			s := b.FFCE(pick(), pick(), false)
			pool = append(pool, s)
			outCandidates = append(outCandidates, s)
		case 3: // const
			s := b.Const(rng.Intn(2) == 0)
			pool = append(pool, s)
			outCandidates = append(outCandidates, s)
		default: // gate
			s := b.Xor(pick(), pick())
			pool = append(pool, s)
			outCandidates = append(outCandidates, s)
		}
	}
	// Close the feedback loops.
	for _, f := range fb {
		b.BindFF(pick(), f, rng.Intn(2) == 0)
		outCandidates = append(outCandidates, f)
	}
	// Output port over a handful of node outputs.
	nOut := 1 + rng.Intn(6)
	outs := make([]netlist.SignalID, nOut)
	for i := range outs {
		outs[i] = outCandidates[rng.Intn(len(outCandidates))]
	}
	b.Output("o", outs)
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// TestPropertyRandomCircuitsPlaceAndMatch is the flow's big property test:
// ANY valid circuit that fits must place, route, and behave cycle-for-cycle
// like the netlist-level reference simulation.
func TestPropertyRandomCircuitsPlaceAndMatch(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			c := randomCircuit(rng, 8+rng.Intn(30))
			p, err := Place(c, device.Small())
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := Verify(p, 60, seed); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}

// TestPropertyPlacementInvariants checks structural invariants of the
// placer's output on random circuits: no two sites share a location, all
// sites are in the interior unless route-throughs serving pins, and stats
// are consistent.
func TestPropertyPlacementInvariants(t *testing.T) {
	g := device.Small()
	for seed := int64(100); seed < 112; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 10+rng.Intn(25))
		p, err := Place(c, g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		type loc struct{ r, c, o int }
		seen := map[loc]bool{}
		var rts int
		for _, s := range p.Sites {
			l := loc{s.R, s.C, s.O}
			if seen[l] {
				t.Fatalf("seed %d: duplicate site %v", seed, l)
			}
			seen[l] = true
			if s.R < 0 || s.R >= g.Rows || s.C < 0 || s.C >= g.Cols || s.O < 0 || s.O > 3 {
				t.Fatalf("seed %d: site out of bounds %v", seed, l)
			}
			if s.Node == -1 {
				rts++
			} else if s.R == 0 || s.R == g.Rows-1 || s.C == 0 || s.C == g.Cols-1 {
				t.Fatalf("seed %d: design site on the reserved edge ring %v", seed, l)
			}
		}
		if rts != p.RouteThroughs {
			t.Fatalf("seed %d: route-through count mismatch %d vs %d", seed, rts, p.RouteThroughs)
		}
		if p.LUTsUsed != len(p.Sites) {
			t.Fatalf("seed %d: LUTsUsed %d != sites %d", seed, p.LUTsUsed, len(p.Sites))
		}
	}
}
